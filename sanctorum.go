// Package sanctorum is the public facade of the Sanctorum
// reproduction: one call builds a simulated enclave-capable machine —
// cores, caches, DRAM regions or PMP, secure-booted security monitor,
// untrusted OS — on any of the three platform backends the paper
// discusses (Sanctum, Keystone, and an insecure baseline).
//
//	sys, _ := sanctorum.NewSystem(sanctorum.Options{Kind: sanctorum.Sanctum})
//	spec, _ := enclaves.Spec(layout, enclaves.Adder(layout), nil, regions, shared)
//	built, _ := sys.BuildEnclave(spec)
//	res, _ := sys.Enter(0, built.EID, built.TIDs[0], 1_000_000)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-artifact index.
package sanctorum

import (
	"crypto/ed25519"
	"fmt"

	"sanctorum/internal/fleet"
	"sanctorum/internal/hw/dram"
	"sanctorum/internal/hw/machine"
	"sanctorum/internal/os"
	"sanctorum/internal/platform/baseline"
	"sanctorum/internal/platform/keystone"
	"sanctorum/internal/platform/sanctum"
	"sanctorum/internal/sm"
	"sanctorum/internal/sm/api"
	"sanctorum/internal/sm/boot"
	"sanctorum/internal/telemetry"
)

// Kind selects the isolation backend.
type Kind = machine.IsolationKind

// Platform kinds.
const (
	// Baseline is the insecure control: no physical isolation.
	Baseline = machine.IsolationNone
	// Sanctum uses DRAM regions, a page-colored LLC and private page
	// walks (paper §VII-A).
	Sanctum = machine.IsolationSanctum
	// Keystone uses RISC-V PMP with an unpartitioned LLC (§VII-B).
	Keystone = machine.IsolationKeystone
)

// Options configures NewSystem. The zero value of every field has a
// sensible default.
type Options struct {
	Kind         Kind
	Cores        int    // default 2
	RegionShift  uint   // log2 region size; default 16 (64 KiB)
	RegionCount  int    // default 64 (Sanctum's region count)
	MonitorImage []byte // measured by secure boot; default a fixed image
	Seed         []byte // deterministic entropy seed; default fixed
	// SigningMeasurement is the measurement of the signing enclave to
	// hard-code into the monitor (§VI-C); zero disables attest-sign.
	SigningMeasurement [32]byte
	// Telemetry injects an existing registry (fleet shards share one);
	// nil creates a fresh registry. DisableTelemetry leaves the system
	// fully uninstrumented — the compile-out mode benchmarks compare
	// against.
	Telemetry        *telemetry.Registry
	DisableTelemetry bool
}

func (o *Options) fill() {
	if o.Cores == 0 {
		o.Cores = 2
	}
	if o.RegionShift == 0 {
		o.RegionShift = 17 // 128 KiB regions: 32 pages each
	}
	if o.RegionCount == 0 {
		o.RegionCount = 64
	}
	if o.MonitorImage == nil {
		o.MonitorImage = []byte("sanctorum reproduction monitor v1")
	}
	if o.Seed == nil {
		o.Seed = []byte("sanctorum-system")
	}
}

// System is a booted machine: hardware, monitor, untrusted OS, and the
// manufacturer PKI a remote verifier pins.
type System struct {
	Machine      *machine.Machine
	Monitor      *sm.Monitor
	OS           *os.OS
	Manufacturer *boot.Manufacturer
	Device       *boot.Device

	// Telemetry is the system's metrics registry (DESIGN.md §13); nil
	// when Options.DisableTelemetry was set.
	Telemetry *telemetry.Registry

	// KernelRegion and MetaRegion record the layout choices NewSystem
	// made: region 0 backs the OS kernel, RegionCount-2 the monitor's
	// metadata, RegionCount-1 the monitor image.
	KernelRegion int
	MetaRegion   int
	SMRegion     int
}

// NewSystem builds and boots a complete system.
func NewSystem(opts Options) (*System, error) {
	opts.fill()
	layout := dram.Layout{RegionShift: opts.RegionShift, RegionCount: opts.RegionCount}
	cfg := machine.DefaultConfig(opts.Kind)
	cfg.Cores = opts.Cores
	cfg.DRAM = layout
	cfg.Seed = opts.Seed
	m, err := machine.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("sanctorum: building machine: %w", err)
	}

	mfr := boot.NewManufacturer("sanctorum-works", append([]byte("mfr:"), opts.Seed...))
	dev := mfr.Provision("sim-device-0", append([]byte("dev:"), opts.Seed...))
	id, err := dev.Boot(opts.MonitorImage)
	if err != nil {
		return nil, fmt.Errorf("sanctorum: secure boot: %w", err)
	}

	smRegion := opts.RegionCount - 1
	metaRegion := opts.RegionCount - 2
	var plat sm.Platform
	switch opts.Kind {
	case Sanctum:
		plat = sanctum.New()
	case Keystone:
		plat = keystone.New(layout, []int{smRegion})
	default:
		plat = baseline.New()
	}
	mon, err := sm.New(sm.Config{
		Machine:        m,
		Platform:       plat,
		Identity:       id,
		SMRegions:      []int{smRegion},
		SigningEnclave: opts.SigningMeasurement,
	})
	if err != nil {
		return nil, fmt.Errorf("sanctorum: booting monitor: %w", err)
	}
	kernel, err := os.New(m, mon, 0, metaRegion)
	if err != nil {
		return nil, fmt.Errorf("sanctorum: starting OS: %w", err)
	}
	var reg *telemetry.Registry
	if !opts.DisableTelemetry {
		reg = opts.Telemetry
		if reg == nil {
			reg = telemetry.New()
		}
		mon.SetTelemetry(reg)
		kernel.Telemetry = reg
		// Converge the pre-existing counter surfaces (DESIGN.md §13):
		// the block engine's per-core stats and the smcall client's
		// retry counter stay the source of truth; the registry reads
		// them lazily at Snapshot, so their hot paths gain nothing.
		for _, c := range m.Cores {
			c := c
			reg.RegisterFunc("machine.block.compiled", func() uint64 { return c.BlockStats().Compiled })
			reg.RegisterFunc("machine.block.executions", func() uint64 { return c.BlockStats().Executions })
			reg.RegisterFunc("machine.block.instrs", func() uint64 { return c.BlockStats().Instrs })
		}
		reg.RegisterFunc("smcall.retries", kernel.SM.Retries)
	}
	return &System{
		Machine:      m,
		Monitor:      mon,
		OS:           kernel,
		Telemetry:    reg,
		Manufacturer: mfr,
		Device:       dev,
		KernelRegion: 0,
		MetaRegion:   metaRegion,
		SMRegion:     smRegion,
	}, nil
}

// TrustedRoot returns the manufacturer public key a remote verifier
// pins.
func (s *System) TrustedRoot() ed25519.PublicKey { return s.Manufacturer.RootKey() }

// BuildEnclave loads and initializes an enclave through the monitor's
// API (Fig 3), returning its eid, thread ids and measurement.
func (s *System) BuildEnclave(spec *os.EnclaveSpec) (*os.BuiltEnclave, error) {
	return s.OS.BuildEnclave(spec)
}

// Enter schedules an enclave thread on a core and runs it until the
// monitor hands control back (exit, AEX, or fault delegation). The
// returned error wraps the api.Error status, so callers can test it
// with errors.Is (e.g. errors.Is(err, api.ErrRetry)).
func (s *System) Enter(coreID int, eid, tid uint64, maxSteps int) (machine.RunResult, error) {
	if st := s.OS.EnterEnclave(coreID, eid, tid); st != 0 {
		return machine.RunResult{}, fmt.Errorf("sanctorum: enter_enclave: %w", st)
	}
	return s.Machine.Run(coreID, maxSteps)
}

// ABIVersion probes the monitor's unified call ABI version
// (api.Version layout: major<<16 | minor).
func (s *System) ABIVersion() (uint64, error) { return s.OS.ABIVersion() }

// GetField reads a public monitor metadata field (§VI-C) through the
// call ABI: the monitor writes the bytes into OS-owned memory and the
// OS model copies them out.
func (s *System) GetField(f api.Field) ([]byte, error) { return s.OS.GetField(f) }

// SendMail delivers an OS message to an enclave's armed mailbox through
// the call ABI, stamped with the reserved OS identity.
func (s *System) SendMail(recipientEID uint64, msg []byte) error {
	return s.OS.SendMail(recipientEID, msg)
}

// Resume re-runs a core that returned to the OS without re-entering
// through the monitor (e.g. to continue an OS user program).
func (s *System) Resume(coreID int, maxSteps int) (machine.RunResult, error) {
	return s.Machine.Run(coreID, maxSteps)
}

// Scheduling re-exports: the OS scheduler timeshares enclave threads
// across cores (internal/os/sched.go) on top of the machine's
// multi-hart scheduler.
type (
	// Task names one enclave thread to run.
	Task = os.Task
	// TaskResult reports one finished task.
	TaskResult = os.TaskResult
	// SchedConfig configures the scheduler (mode, preemption quantum).
	SchedConfig = os.SchedConfig
)

// Scheduler execution modes.
const (
	// Deterministic interleaves cores round-robin on one goroutine;
	// results and all modeled observables are bit-reproducible.
	Deterministic = machine.SchedDeterministic
	// Parallel runs one goroutine per core for genuine multi-hart
	// concurrency; aggregate results are correct, interleaving is not
	// reproducible.
	Parallel = machine.SchedParallel
)

// NewScheduler returns an OS scheduler over this system's cores.
func (s *System) NewScheduler(cfg SchedConfig) *os.Scheduler {
	return s.OS.NewScheduler(cfg)
}

// RunAll timeshares the tasks — N enclave threads — across the
// machine's cores until all have finished, with timer preemption per
// cfg, and returns per-task results in submission order.
func (s *System) RunAll(cfg SchedConfig, tasks []Task) []TaskResult {
	return s.OS.NewScheduler(cfg).RunAll(tasks)
}

// Serve consumes tasks from a channel until it is closed and every
// accepted task has finished: the system's long-running load-serving
// mode. Results return ordered by admission (near-simultaneous
// parallel-mode admissions may order arbitrarily between themselves).
func (s *System) Serve(cfg SchedConfig, tasks <-chan Task) []TaskResult {
	return s.OS.NewScheduler(cfg).Serve(tasks)
}

// GatewayConfig configures a request-serving gateway (internal/os).
type GatewayConfig = os.GatewayConfig

// NewPool builds a snapshot/clone worker pool over this system's OS
// (see internal/os.NewPool).
func (s *System) NewPool(spec *os.EnclaveSpec, cloneRegions []int, perClone int) (*os.Pool, error) {
	return os.NewPool(s.OS, spec, cloneRegions, perClone)
}

// NewGateway builds a ring-IPC request-serving gateway over pool
// workers (DESIGN.md §9): host requests are batched into mailbox-ring
// sends, parked workers wake through the monitor's IPI-routed wake
// sink, run under the OS scheduler, and stream stamped responses back.
func (s *System) NewGateway(pool *os.Pool, cfg GatewayConfig) (*os.Gateway, error) {
	return os.NewGateway(s.OS, s.Monitor, pool, cfg)
}

// SetupShared allocates an OS page, maps it at va in the OS page
// tables, and returns its physical address. This is the untrusted
// buffer enclaves and the OS exchange data through.
func (s *System) SetupShared(va uint64) (uint64, error) {
	return s.OS.MapUserPage(va)
}

// SharedRead reads from the shared buffer with OS rights.
func (s *System) SharedRead(pa uint64, n int) ([]byte, error) {
	return s.OS.ReadOwned(pa, n)
}

// SharedWrite writes to the shared buffer with OS rights.
func (s *System) SharedWrite(pa uint64, data []byte) error {
	return s.OS.WriteOwned(pa, data)
}

// SharedWriteWord stores one 64-bit word into the shared buffer.
func (s *System) SharedWriteWord(pa uint64, off int, v uint64) error {
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * uint(i)))
	}
	return s.OS.WriteOwned(pa+uint64(off), b[:])
}

// Fleet re-exports: the multi-machine sharding tier (internal/fleet,
// DESIGN.md §12).
type (
	// Fleet is a routing tier over N machine×monitor×pool×gateway
	// shards with cross-machine attested channels.
	Fleet = fleet.Fleet
	// FleetConfig configures the routing tier.
	FleetConfig = fleet.Config
	// FleetRequest is one session-keyed request.
	FleetRequest = fleet.Request
	// FleetHost is one booted machine handed to the fleet.
	FleetHost = fleet.Host
	// FleetChannel is an established cross-machine attested channel.
	FleetChannel = fleet.Channel
	// FleetHello and FleetOffer are the handshake halves — exported so
	// the adversary battery can replay and tamper with them.
	FleetHello = fleet.Hello
	FleetOffer = fleet.Offer
)

// FleetOptions configures NewFleet. Zero fields take defaults.
type FleetOptions struct {
	Kind   Kind
	Shards int // machines in the fleet; default 2
	Cores  int // cores per machine; default NewSystem's default
	Config FleetConfig
	// DisableTelemetry boots every shard uninstrumented and skips the
	// fleet-level registry (the telemetry-off benchmark mode).
	DisableTelemetry bool
}

// NewFleet boots Shards independent machines — each with its own
// secure-booted monitor and manufacturer PKI, seeded distinctly so no
// two machines share device keys — and assembles the routing tier over
// them. Every machine is booted with the fleet's signing-enclave
// measurement hard-coded, so cross-machine channels can attest.
func NewFleet(opts FleetOptions) (*Fleet, error) {
	if opts.Shards <= 0 {
		opts.Shards = 2
	}
	meas, err := fleet.SigningMeasurement()
	if err != nil {
		return nil, fmt.Errorf("sanctorum: fleet signing measurement: %w", err)
	}
	seed := opts.Config.Seed
	if seed == nil {
		seed = []byte("sanctorum-fleet")
	}
	// One registry serves the entire fleet: every shard's monitor and
	// gateway instrument into it, so same-named instruments (per-call
	// counters, ring depths) aggregate fleet-wide, and the routing tier
	// converges its own counters onto the same namespace.
	var reg *telemetry.Registry
	if !opts.DisableTelemetry {
		reg = telemetry.New()
	}
	opts.Config.Telemetry = reg
	hosts := make([]FleetHost, opts.Shards)
	for i := range hosts {
		sys, err := NewSystem(Options{
			Kind:               opts.Kind,
			Cores:              opts.Cores,
			Seed:               append(append([]byte(nil), seed...), byte(i)),
			SigningMeasurement: meas,
			Telemetry:          reg,
			DisableTelemetry:   opts.DisableTelemetry,
		})
		if err != nil {
			return nil, fmt.Errorf("sanctorum: fleet machine %d: %w", i, err)
		}
		hosts[i] = FleetHost{
			Machine:     sys.Machine,
			Monitor:     sys.Monitor,
			OS:          sys.OS,
			TrustedRoot: sys.TrustedRoot(),
		}
	}
	return fleet.New(hosts, opts.Config)
}

// SharedReadWord loads one 64-bit word from the shared buffer.
func (s *System) SharedReadWord(pa uint64, off int) (uint64, error) {
	b, err := s.OS.ReadOwned(pa+uint64(off), 8)
	if err != nil {
		return 0, err
	}
	var v uint64
	for i, x := range b {
		v |= uint64(x) << (8 * uint(i))
	}
	return v, nil
}
