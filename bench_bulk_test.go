// Bulk data plane throughput benchmark (EXPERIMENTS.md E21): MB/s of
// application payload served through the zero-copy scatter-gather path
// versus chunking the identical payload through 64-byte ring messages.
package sanctorum_test

import (
	"testing"
	"time"

	"sanctorum"
)

// BenchmarkBulkThroughput resolves the zero-copy plane's gain the only
// way a ratio survives a shared host: both sides inside ONE benchmark
// (the E18/E20 interleaved methodology). Each iteration moves the same
// 16 KiB payload to an echo worker twice — once staged into the
// monitor-granted buffer and described by a single scatter-gather
// message, once chunked into 256 plain 64-byte ring messages —
// alternating, so host-speed drift hits both halves equally and
// cancels from the ratio. The halves are reported as "bulk-MB/s" and
// "chunked-MB/s" on the single row; the benchjson gate holds
// bulk/chunked ≥ 5 (EXPERIMENTS.md E21).
func BenchmarkBulkThroughput(b *testing.B) {
	const pages = 4
	const size = pages * 4096
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i>>3) ^ 0x5A
	}

	// Bulk half: a BulkEchoServer worker with a granted buffer; the
	// host writes the payload into the shared buffer and sends one
	// descriptor message naming all of it.
	bulkSys, err := sanctorum.NewSystem(sanctorum.Options{Kind: sanctorum.Sanctum})
	if err != nil {
		b.Fatal(err)
	}
	bulkPool, bulkGW := bulkService(b, bulkSys, "echo", 1, pages)
	_, basePA, _ := bulkGW.BulkBuffer(0)
	bulkReq := [][]byte{sg([2]uint64{0, size})}
	serveBulk := func() time.Duration {
		start := time.Now()
		if err := bulkSys.OS.WriteOwned(basePA, payload); err != nil {
			b.Fatal(err)
		}
		if _, err := bulkGW.ProcessBulk(0, bulkReq); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}

	// Chunked half: the pre-§14 way — the same bytes as size/64 plain
	// ring messages through an ordinary echo gateway, every one copied
	// host→ring→enclave and back by the monitor.
	chunkSys, err := sanctorum.NewSystem(sanctorum.Options{Kind: sanctorum.Sanctum})
	if err != nil {
		b.Fatal(err)
	}
	chunkPool, chunkGW := ringService(b, chunkSys, "echo", 1, sanctorum.GatewayConfig{
		Sched: sanctorum.SchedConfig{Mode: sanctorum.Deterministic},
	})
	chunks := make([][]byte, size/64)
	for i := range chunks {
		chunks[i] = payload[i*64 : (i+1)*64]
	}
	serveChunked := func() time.Duration {
		start := time.Now()
		if _, err := chunkGW.Process(chunks); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}

	for i := 0; i < 2; i++ { // warm both stacks identically
		serveBulk()
		serveChunked()
	}
	var tBulk, tChunk time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tBulk += serveBulk()
		tChunk += serveChunked()
	}
	b.StopTimer()
	moved := float64(size) * float64(b.N)
	b.ReportMetric(moved/1e6/tBulk.Seconds(), "bulk-MB/s")
	b.ReportMetric(moved/1e6/tChunk.Seconds(), "chunked-MB/s")
	for _, c := range []interface{ Close() error }{bulkGW, bulkPool, chunkGW, chunkPool} {
		if err := c.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
