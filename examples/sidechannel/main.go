// Command sidechannel runs the paper's central isolation comparison
// (§VII-A vs §VII-B, experiment E9): a prime+probe attacker in the
// untrusted OS tries to recover an enclave's secret memory-access
// pattern through the shared last-level cache. On the Keystone-style
// platform (PMP isolation, shared LLC) the attack recovers the secret;
// on Sanctum (page-colored, partitioned LLC) the identical attack sees
// a flat timing profile.
package main

import (
	"fmt"
	"log"

	"sanctorum"
	"sanctorum/internal/adversary"
)

func attack(kind sanctorum.Kind, name string, secret byte) {
	sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: kind})
	if err != nil {
		log.Fatal(err)
	}
	calib, calibRegion, _, err := adversary.BuildVictim(sys, 0)
	if err != nil {
		log.Fatal(err)
	}
	victim, victimRegion, arrayIdx, err := adversary.BuildVictim(sys, secret)
	if err != nil {
		log.Fatal(err)
	}
	pp, err := adversary.NewPrimeProbe(sys, victimRegion, arrayIdx,
		adversary.PrimeRegionsFor(sys, victimRegion, calibRegion))
	if err != nil {
		log.Fatal(err)
	}
	res, err := pp.Run(calib.EID, calib.TIDs[0], victim.EID, victim.TIDs[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-9s secret=%d  probe deltas (cycles): %v\n", name, secret, res.Deltas)
	if res.Strength >= 50 {
		fmt.Printf("%-9s  -> attacker recovers secret = %d (signal %d cycles)\n",
			name, res.Guess, res.Strength)
	} else {
		fmt.Printf("%-9s  -> no signal (amplitude %d cycles): attack defeated\n",
			name, res.Strength)
	}
}

func main() {
	fmt.Println("prime+probe on the shared LLC: enclave performs one secret-dependent load")
	fmt.Println()
	for _, secret := range []byte{3, 6} {
		attack(sanctorum.Keystone, "keystone", secret)
		attack(sanctorum.Sanctum, "sanctum", secret)
		fmt.Println()
	}
	fmt.Println("shape matches the paper: Keystone's threat model excludes cache")
	fmt.Println("side channels; Sanctum's partitioned LLC closes them.")
}
