// Command enclave_service demonstrates the high-throughput messaging
// layer end to end (monitor calls 0x40–0x45, DESIGN.md §9): a
// key-value service runs inside enclave workers forked from one
// measured template, requests travel as batched mailbox-ring sends,
// parked workers wake through the monitor's IPI-routed park/wake
// protocol instead of OS polling, and every response comes back
// stamped by the monitor with the worker's identity and the template
// measurement — attestation-grade provenance at streaming rates.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"sanctorum"
	"sanctorum/internal/enclaves"
	"sanctorum/internal/sm/api"
)

func main() {
	sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: sanctorum.Sanctum})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("booted: 2-core Sanctum machine, security monitor, untrusted OS")
	if v, err := sys.ABIVersion(); err != nil || v>>16 != api.VersionMajor {
		log.Fatalf("ABI version probe: %#x, %v", v, err)
	}

	// The template: a ring-serving KV store. It has no shared window —
	// all traffic is ring IPC through the monitor — so one measured
	// image serves every clone; each worker discovers its own rings via
	// get_field(enclave_rings).
	l := enclaves.DefaultLayout()
	regions := sys.OS.FreeRegions()
	spec, err := enclaves.Spec(l, enclaves.RingKVServer(l), nil, regions[:1], nil)
	if err != nil {
		log.Fatal(err)
	}
	pool, err := sys.NewPool(spec, regions[1:3], 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("template built: eid=%#x measurement=%x…\n",
		pool.Template.EID, pool.Template.Measurement[:8])

	gw, err := sys.NewGateway(pool, sanctorum.GatewayConfig{
		Workers: 2,
		Batch:   8,
		Sched:   sanctorum.SchedConfig{Mode: sanctorum.Deterministic},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("gateway up: 2 ring-served workers forked from the template, parked")

	// Each worker keeps its own private store (clones diverge through
	// COW), so a get must reach the worker that holds the key. The
	// gateway's chunked round-robin is deterministic: with Batch=8 and
	// 16 requests per phase, each worker sees the same 8 keys in the
	// put phase and the get phase.
	var puts, gets [][]byte
	for k := uint64(0); k < 16; k++ {
		puts = append(puts, enclaves.RingKVRequest(enclaves.RingOpPut, k, 1000+k*k))
		gets = append(gets, enclaves.RingKVRequest(enclaves.RingOpGet, k, 0))
	}
	if _, err := gw.Process(puts); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored 16 keys across %d workers (%d scheduler waves so far)\n",
		len(puts)/8, gw.Waves)
	resps, err := gw.Process(gets)
	if err != nil {
		log.Fatal(err)
	}
	for k := uint64(0); k < 16; k++ {
		v := binary.LittleEndian.Uint64(resps[k])
		fmt.Printf("get %2d → %4d", k, v)
		if (k+1)%4 == 0 {
			fmt.Println()
		} else {
			fmt.Print("   ")
		}
		if v != 1000+k*k {
			log.Fatalf("key %d read %d, want %d", k, v, 1000+k*k)
		}
	}
	fmt.Printf("served %d requests in %d waves; every response stamped with the template measurement\n",
		gw.Served, gw.Waves)

	// Shutdown: destroying the rings wakes the parked workers into
	// failing parks — their signal to exit — and the pool recycles them.
	if err := gw.Close(); err != nil {
		log.Fatal(err)
	}
	if err := pool.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gateway closed: page refs=%d (leak-free teardown)\n",
		sys.Machine.Mem.TotalRefs())
	fmt.Println("done: batched ring IPC served a stateful enclave service with zero OS polling")
}
