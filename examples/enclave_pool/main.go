// Command enclave_pool demonstrates the snapshot/clone subsystem
// (monitor calls 0x30–0x32, DESIGN.md §8) as a serving system would
// use it: one template enclave is built and measured the slow way,
// frozen into a snapshot, and a burst of requests is served by workers
// forked from it copy-on-write — each fork costs O(page-table pages)
// instead of O(all pages + hashing), each worker starts from the
// template's measured initial state, diverges privately through COW,
// and recycles back into the pool when its request completes.
package main

import (
	"fmt"
	"log"

	"sanctorum"
	"sanctorum/internal/enclaves"
	"sanctorum/internal/hw/pt"
	"sanctorum/internal/os"
)

func main() {
	sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: sanctorum.Sanctum})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("booted: 2-core Sanctum machine, security monitor, untrusted OS")

	l := enclaves.DefaultLayout()
	tmplShared, err := sys.SetupShared(l.SharedVA)
	if err != nil {
		log.Fatal(err)
	}
	regions := sys.OS.FreeRegions()

	// The template: a stateful adder whose private data page starts at
	// a measured running total of 1000.
	dataInit := make([]byte, 8)
	dataInit[0] = 0xE8 // 1000 = 0x3E8
	dataInit[1] = 0x03
	spec, err := enclaves.Spec(l, enclaves.StatefulAdder(l), dataInit,
		regions[:1], []os.SharedMapping{{VA: l.SharedVA, PA: tmplShared}})
	if err != nil {
		log.Fatal(err)
	}

	// Build once (full measured load), snapshot, and back the pool with
	// two regions — two concurrent workers' page tables + COW copies.
	pool, err := os.NewPool(sys.OS, spec, regions[1:3], 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("template built: eid=%#x measurement=%x…\n",
		pool.Template.EID, pool.Template.Measurement[:8])
	fmt.Printf("snapshot %#x frozen: %d page refs held, template parked\n",
		pool.SnapID, sys.Machine.Mem.TotalRefs())

	// Serve a burst of requests through recycled clone workers. Each
	// request gets a fresh fork of the measured template: the running
	// total always starts at 1000, whatever earlier workers did.
	inputs := []uint64{5, 17, 3, 29, 11, 2}
	for i, n := range inputs {
		buf, err := sys.OS.AllocPagePA()
		if err != nil {
			log.Fatal(err)
		}
		w, err := pool.Acquire(buf)
		if err != nil {
			log.Fatal(err)
		}
		// Under Sanctum the shared window resolves through the OS page
		// tables: point it at this worker's buffer.
		if err := sys.OS.MapUser(l.SharedVA, buf, pt.R|pt.W|pt.U); err != nil {
			log.Fatal(err)
		}
		if err := sys.SharedWriteWord(buf, enclaves.ShInput, n); err != nil {
			log.Fatal(err)
		}
		res, err := sys.Enter(0, w.EID, w.TIDs[0], 1_000_000)
		if err != nil {
			log.Fatal(err)
		}
		out, err := sys.SharedReadWord(buf, enclaves.ShOutput)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("request %d: worker eid=%#x input=%2d → total=%4d (%d instructions, COW fault served)\n",
			i, w.EID, n, out, res.Steps)
		if out != 1000+n {
			log.Fatalf("worker diverged: %d, want %d", out, 1000+n)
		}
		if err := pool.Release(w); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("served %d requests through %d clones (%d recycled)\n",
		len(inputs), pool.Clones, pool.Recycled)

	// Teardown: release the snapshot, delete the template, and prove
	// the alias accounting drained.
	if err := pool.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pool closed: page refs=%d (leak-free teardown)\n",
		sys.Machine.Mem.TotalRefs())
	fmt.Println("done: every worker inherited the template's measurement; no worker write ever reached a frozen page")
}
