// Command local_attestation reproduces Fig 6 of the paper: enclave E2
// attests enclave E1 through the security monitor's mailboxes. The
// monitor stamps every delivery with the sender's measurement, so E2
// authenticates E1 with no cryptography at all — mutual trust in the
// monitor suffices. An impostor with different initial data is then
// detected, because the monitor stamps the impostor's true measurement.
package main

import (
	"fmt"
	"log"

	"sanctorum"
	"sanctorum/internal/enclaves"
	"sanctorum/internal/os"
	"sanctorum/internal/sm/api"
)

func main() {
	sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: sanctorum.Sanctum})
	if err != nil {
		log.Fatal(err)
	}
	lSend := enclaves.DefaultLayout()
	lRecv := enclaves.DefaultLayout()
	lRecv.SharedVA = 0x50002000
	regions := sys.OS.FreeRegions()
	sharedSendPA, _ := sys.SetupShared(lSend.SharedVA)
	sharedRecvPA, _ := sys.SetupShared(lRecv.SharedVA)

	msg := make([]byte, api.MailboxSize)
	copy(msg, "E1: the answer is 42")
	sendSpec, err := enclaves.Spec(lSend, enclaves.MailSender(lSend),
		enclaves.SenderDataInit(msg), regions[:1],
		[]os.SharedMapping{{VA: lSend.SharedVA, PA: sharedSendPA}})
	if err != nil {
		log.Fatal(err)
	}
	expected := os.ExpectedMeasurement(sendSpec)
	fmt.Printf("E2 expects sender measurement %x…\n", expected[:8])

	recvSpec, err := enclaves.Spec(lRecv, enclaves.MailReceiver(lRecv),
		enclaves.ReceiverDataInit(expected), regions[1:2],
		[]os.SharedMapping{{VA: lRecv.SharedVA, PA: sharedRecvPA}})
	if err != nil {
		log.Fatal(err)
	}
	e1, err := sys.BuildEnclave(sendSpec)
	if err != nil {
		log.Fatal(err)
	}
	e2, err := sys.BuildEnclave(recvSpec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("E1 eid=%#x  E2 eid=%#x\n", e1.EID, e2.EID)

	// ① E2 signals intent to receive from E1.
	sys.SharedWriteWord(sharedRecvPA, enclaves.ShInput, 0)
	sys.SharedWriteWord(sharedRecvPA, enclaves.ShPeerEID, e1.EID)
	sys.Enter(0, e2.EID, e2.TIDs[0], 100_000)
	fmt.Println("① E2 armed its mailbox for E1")

	// ② E1 sends its message.
	sys.SharedWriteWord(sharedSendPA, enclaves.ShPeerEID, e2.EID)
	sys.Enter(0, e1.EID, e1.TIDs[0], 100_000)
	fmt.Println("② E1 sent mail; the monitor stamped E1's measurement")

	// ③④ E2 fetches and validates.
	sys.SharedWriteWord(sharedRecvPA, enclaves.ShInput, 1)
	sys.Enter(0, e2.EID, e2.TIDs[0], 100_000)
	verdict, _ := sys.SharedReadWord(sharedRecvPA, enclaves.ShOutput)
	fmt.Printf("③④ E2 verdict: %d (1 = authentic)\n", verdict)
	if verdict != 1 {
		log.Fatal("genuine sender rejected")
	}

	// Impostor round: same code, attacker-chosen data.
	impostorMsg := make([]byte, api.MailboxSize)
	copy(impostorMsg, "E1: the answer is 43")
	impSpec, _ := enclaves.Spec(lSend, enclaves.MailSender(lSend),
		enclaves.SenderDataInit(impostorMsg), regions[2:3],
		[]os.SharedMapping{{VA: lSend.SharedVA, PA: sharedSendPA}})
	imp, err := sys.BuildEnclave(impSpec)
	if err != nil {
		log.Fatal(err)
	}
	sys.SharedWriteWord(sharedRecvPA, enclaves.ShInput, 0)
	sys.SharedWriteWord(sharedRecvPA, enclaves.ShPeerEID, imp.EID)
	sys.Enter(0, e2.EID, e2.TIDs[0], 100_000)
	sys.SharedWriteWord(sharedSendPA, enclaves.ShPeerEID, e2.EID)
	sys.Enter(0, imp.EID, imp.TIDs[0], 100_000)
	sys.SharedWriteWord(sharedRecvPA, enclaves.ShInput, 1)
	sys.Enter(0, e2.EID, e2.TIDs[0], 100_000)
	verdict, _ = sys.SharedReadWord(sharedRecvPA, enclaves.ShOutput)
	fmt.Printf("impostor verdict: %d (2 = measurement mismatch)\n", verdict)
	if verdict != 2 {
		log.Fatal("impostor not detected")
	}
	fmt.Println("local attestation complete: Fig 6 reproduced")
}
