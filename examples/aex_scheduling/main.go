// Command aex_scheduling demonstrates the asynchronous enclave exit
// machinery (paper §V-C, Figs 1 and 4): the untrusted OS time-slices an
// uncooperative enclave with timer interrupts. On every slice the
// monitor performs an AEX — saving the enclave's register file into
// SM-owned thread metadata and scrubbing the core — and the enclave
// resumes exactly where it was on the next entry. The OS observes
// steady progress but never a single enclave register.
package main

import (
	"fmt"
	"log"

	"sanctorum"
	"sanctorum/internal/enclaves"
	"sanctorum/internal/isa"
	"sanctorum/internal/os"
)

func main() {
	sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: sanctorum.Sanctum})
	if err != nil {
		log.Fatal(err)
	}
	l := enclaves.DefaultLayout()
	sharedPA, _ := sys.SetupShared(l.SharedVA)
	regions := sys.OS.FreeRegions()
	spec, err := enclaves.Spec(l, enclaves.Counter(l), nil, regions[:1],
		[]os.SharedMapping{{VA: l.SharedVA, PA: sharedPA}})
	if err != nil {
		log.Fatal(err)
	}
	built, err := sys.BuildEnclave(spec)
	if err != nil {
		log.Fatal(err)
	}
	core := sys.Machine.Cores[0]

	fmt.Println("slice  cause              counter  registers visible to OS")
	var last uint64
	for slice := 1; slice <= 5; slice++ {
		if st := sys.OS.EnterEnclave(0, built.EID, built.TIDs[0]); st != 0 {
			log.Fatalf("enter: %v", st)
		}
		core.TimerCmp = core.CPU.Cycles + 5000 // the OS's scheduling quantum
		res, err := sys.Machine.Run(0, 10_000_000)
		if err != nil {
			log.Fatal(err)
		}
		counter, _ := sys.SharedReadWord(sharedPA, enclaves.ShCounter)
		leaked := 0
		for r := 1; r < isa.NumRegs; r++ {
			if core.CPU.Regs[r] != 0 {
				leaked++
			}
		}
		fmt.Printf("%4d   %-18s %7d  %d non-zero\n",
			slice, res.Trap.Cause, counter, leaked)
		if counter <= last {
			log.Fatal("enclave did not make progress across AEX")
		}
		if leaked > 0 {
			log.Fatal("enclave registers leaked to the OS")
		}
		last = counter
	}
	fmt.Println("\nthe enclave resumed its loop across every de-scheduling;")
	fmt.Println("its architectural state never reached the OS (Fig 4 reproduced)")
}
