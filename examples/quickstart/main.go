// Command quickstart boots a simulated Sanctum machine, loads a small
// enclave through the security monitor's API, runs it, and checks its
// measurement against the verifier-side transcript replay — the
// smallest end-to-end tour of the reproduction.
package main

import (
	"fmt"
	"log"

	"sanctorum"
	"sanctorum/internal/enclaves"
	"sanctorum/internal/isa"
	"sanctorum/internal/os"
)

func main() {
	sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: sanctorum.Sanctum})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("booted: 2-core Sanctum machine, security monitor, untrusted OS")
	fmt.Printf("monitor measurement: %x\n", sys.Monitor.Identity().Measurement[:8])

	l := enclaves.DefaultLayout()
	sharedPA, err := sys.SetupShared(l.SharedVA)
	if err != nil {
		log.Fatal(err)
	}
	regions := sys.OS.FreeRegions()
	spec, err := enclaves.Spec(l, enclaves.Adder(l), nil, regions[:1],
		[]os.SharedMapping{{VA: l.SharedVA, PA: sharedPA}})
	if err != nil {
		log.Fatal(err)
	}
	built, err := sys.BuildEnclave(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enclave loaded: eid=%#x measurement=%x…\n", built.EID, built.Measurement[:8])

	if built.Measurement == os.ExpectedMeasurement(spec) {
		fmt.Println("measurement matches the verifier-side transcript replay ✓")
	} else {
		log.Fatal("measurement mismatch!")
	}

	const n = 100
	if err := sys.SharedWriteWord(sharedPA, enclaves.ShInput, n); err != nil {
		log.Fatal(err)
	}
	res, err := sys.Enter(0, built.EID, built.TIDs[0], 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	sum, _ := sys.SharedReadWord(sharedPA, enclaves.ShOutput)
	status := sys.Machine.Cores[0].CPU.Reg(isa.RegA0)
	fmt.Printf("enclave ran %d instructions, exit status %#x, sum(1..%d) = %d\n",
		res.Steps, status, n, sum)
	if sum != n*(n+1)/2 {
		log.Fatal("wrong answer from the enclave")
	}
	fmt.Println("done: OS never saw enclave memory, only the shared buffer")
}
