// Command fault_handling shows the two fault paths of the paper's
// Fig 1: an enclave without a handler takes an AEX and the fault is
// delegated to the OS; an enclave that registered a handler receives
// the fault privately (the mechanism enclaves use to implement their
// own demand paging) and the OS sees only a voluntary exit.
package main

import (
	"fmt"
	"log"

	"sanctorum"
	"sanctorum/internal/enclaves"
	"sanctorum/internal/isa"
	"sanctorum/internal/os"
)

func main() {
	sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: sanctorum.Sanctum})
	if err != nil {
		log.Fatal(err)
	}
	l := enclaves.DefaultLayout()
	sharedPA, _ := sys.SetupShared(l.SharedVA)
	regions := sys.OS.FreeRegions()

	// Case 1: no handler — the fault forces an AEX and reaches the OS.
	spec1, err := enclaves.Spec(l, enclaves.FaultingProgram(l), nil, regions[:1],
		[]os.SharedMapping{{VA: l.SharedVA, PA: sharedPA}})
	if err != nil {
		log.Fatal(err)
	}
	e1, err := sys.BuildEnclave(spec1)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Enter(0, e1.EID, e1.TIDs[0], 100_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("no handler:   OS received %v at enclave VA %#x (after AEX)\n",
		res.Trap.Cause, res.Trap.Value)

	// Case 2: handler registered — the enclave fields its own fault.
	spec2, err := enclaves.Spec(l, enclaves.FaultHandlerProgram(l), nil, regions[1:2],
		[]os.SharedMapping{{VA: l.SharedVA, PA: sharedPA}})
	if err != nil {
		log.Fatal(err)
	}
	e2, err := sys.BuildEnclave(spec2)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Enter(0, e2.EID, e2.TIDs[0], 100_000); err != nil {
		log.Fatal(err)
	}
	status := sys.Machine.Cores[0].CPU.Reg(isa.RegA0)
	cause, _ := sys.SharedReadWord(sharedPA, enclaves.ShOutput)
	faultVA, _ := sys.SharedReadWord(sharedPA, enclaves.ShOutput+8)
	fmt.Printf("with handler: enclave handled %v at %#x itself, exited with %d\n",
		isa.Cause(cause), faultVA, status)
	fmt.Println("Fig 1's fault-delegation fork reproduced")
}
