// Command fleet_service demonstrates the fleet layer (DESIGN.md §12):
// three independent machines — each with its own secure-booted
// monitor, manufacturer PKI, snapshot/clone pool and request gateway —
// behind one routing tier. Sessions consistent-hash onto shards; a
// shard drains by re-homing its sessions onto warmed-up clone workers
// elsewhere; and enclaves on two different machines get a private pipe
// only after a mutual remote-attestation handshake binds it to both
// machines' measurements.
package main

import (
	"fmt"
	"log"

	"sanctorum"
	"sanctorum/internal/enclaves"
	"sanctorum/internal/sm/api"
)

func main() {
	f, err := sanctorum.NewFleet(sanctorum.FleetOptions{
		Kind:   sanctorum.Sanctum,
		Shards: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	// A wave of echo requests across 12 sessions. Each session key
	// consistent-hashes to a shard, then sticks to one worker there.
	mkReqs := func(n int) []sanctorum.FleetRequest {
		reqs := make([]sanctorum.FleetRequest, n)
		for i := range reqs {
			payload := make([]byte, api.RingMsgSize)
			payload[0] = byte(i)
			reqs[i] = sanctorum.FleetRequest{
				Session: uint64(i%12) * 0x9E3779B97F4A7C15,
				Payload: payload,
			}
		}
		return reqs
	}
	reqs := mkReqs(36)
	// Trace the first request of the wave: the context is allocated at
	// the router and rides through shard selection, gateway dispatch,
	// the enclave ring and back, every span stamped in simulated cycles
	// (DESIGN.md §13) — so this trace replays bit-identically.
	tr := f.TraceNextRequest()
	resps, err := f.Process(reqs)
	if err != nil {
		log.Fatal(err)
	}
	for i := range reqs {
		if string(resps[i]) != string(enclaves.RingEchoExpected(reqs[i].Payload)) {
			log.Fatalf("response %d wrong", i)
		}
	}
	show := func(when string) {
		fmt.Printf("%s:\n", when)
		for i, st := range f.Stats() {
			state := "live"
			if st.Draining {
				state = "draining"
			}
			fmt.Printf("  shard %d: %2d sessions, %d workers, %3d served  [%s]\n",
				i, st.Sessions, st.Workers, st.Served, state)
		}
	}
	fmt.Printf("served %d requests across %d shards\n", f.Served, f.NumShards())
	fmt.Printf("\ntrace of request 0 (cycle-stamped spans, router → enclave → response):\n")
	fmt.Print(tr.Render())
	fmt.Println()
	show("after first wave")

	// Drain shard 1: its sessions re-home onto the remaining shards'
	// consistent-hash arcs, after each inheriting shard warms one more
	// snapshot-clone worker.
	moved, err := f.Drain(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndrained shard 1: %d sessions re-homed (warm-up before cutover)\n", moved)
	resps, err = f.Process(reqs)
	if err != nil {
		log.Fatal(err)
	}
	for i := range reqs {
		if string(resps[i]) != string(enclaves.RingEchoExpected(reqs[i].Payload)) {
			log.Fatalf("post-drain response %d wrong", i)
		}
	}
	show("after drain + second wave")

	// A cross-machine attested channel between shards 0 and 2: hellos
	// and offers travel over the NIC rings, each side verifies the
	// other's evidence against its pinned manufacturer root, and the
	// binding commits to both transcripts.
	ch, err := f.Connect(0, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nattested channel 0↔2 established, binding %x…\n", ch.Binding[:8])
	for _, dir := range []struct {
		from int
		msg  string
	}{{0, "hello from machine 0"}, {2, "hello from machine 2"}} {
		got, err := ch.Transfer(dir.from, []byte(dir.msg))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  shard %d → peer: %q delivered and authenticated\n", dir.from, got)
	}

	// The binding is load-bearing: a wire blob sealed for this channel
	// refuses to deliver with so much as one bit flipped.
	wire, err := ch.Seal(0, []byte("tamper me"))
	if err != nil {
		log.Fatal(err)
	}
	wire[5] ^= 1
	if _, err := ch.Deliver(2, wire); err == nil {
		log.Fatal("tampered wire delivered")
	} else {
		fmt.Printf("  tampered wire refused: %v\n", err)
	}
	fmt.Printf("\nfleet totals: served=%d spills=%d rebalanced=%d\n",
		f.Served, f.Spills, f.Rebalanced)

	// End-of-run observability: one unified snapshot covers every layer
	// — routing decisions, gateway latency, ring traffic, monitor calls
	// — in a single namespace, all clocked in simulated cycles.
	snap := f.Telemetry().Snapshot()
	fmt.Println("\nend-of-run metrics (selected from the unified registry):")
	for _, name := range []string{
		"fleet.served", "fleet.route.home", "fleet.route.spill",
		"fleet.drains", "fleet.rebalanced", "os.gateway.served",
		"os.gateway.waves", "sm.call.mailbox_ring_send.count",
		"sm.call.mailbox_ring_recv.count", "sm.call.enter_enclave.count",
	} {
		fmt.Printf("  counter   %-34s %d\n", name, snap.Counters[name])
	}
	for _, name := range []string{
		"os.gateway.request.cycles", "fleet.handshake.cycles",
	} {
		h := snap.Histograms[name]
		fmt.Printf("  histogram %-34s count=%d p50=%.0f p99=%.0f (cycles)\n",
			name, h.Count, h.P50, h.P99)
	}
}
