// Command remote_attestation reproduces Fig 7 of the paper end to end:
// a remote verifier performs key agreement with enclave E1, sends a
// nonce; E1 mails (nonce ‖ key-agreement share) to the signing enclave
// ES; ES has the monitor sign (E1's monitor-stamped measurement ‖ nonce
// ‖ share) with the boot-derived attestation key; the verifier checks
// the signature against the manufacturer PKI and then exchanges an
// authenticated message with E1 over the attested channel.
package main

import (
	"bytes"
	"crypto/rand"
	"fmt"
	"log"

	"sanctorum"
	"sanctorum/internal/attest"
	"sanctorum/internal/enclaves"
	"sanctorum/internal/os"
	"sanctorum/internal/sm/api"
)

func main() {
	lES := enclaves.DefaultLayout()
	lE1 := enclaves.DefaultLayout()
	lE1.SharedVA = 0x50002000

	// The signing enclave's measurement is hard-coded into the monitor
	// at boot; compute it from a placement-free spec template.
	esTemplate, err := enclaves.Spec(lES, enclaves.SigningEnclave(lES), nil, nil,
		[]os.SharedMapping{{VA: lES.SharedVA}})
	if err != nil {
		log.Fatal(err)
	}
	signingMeas := os.ExpectedMeasurement(esTemplate)

	sys, err := sanctorum.NewSystem(sanctorum.Options{
		Kind:               sanctorum.Sanctum,
		SigningMeasurement: signingMeas,
	})
	if err != nil {
		log.Fatal(err)
	}
	regions := sys.OS.FreeRegions()
	sharedESPA, _ := sys.SetupShared(lES.SharedVA)
	sharedE1PA, _ := sys.SetupShared(lE1.SharedVA)

	esSpec, _ := enclaves.Spec(lES, enclaves.SigningEnclave(lES), nil, regions[:1],
		[]os.SharedMapping{{VA: lES.SharedVA, PA: sharedESPA}})
	e1Spec, _ := enclaves.Spec(lE1, enclaves.AttestedClient(lE1),
		enclaves.ClientDataInit(), regions[1:2],
		[]os.SharedMapping{{VA: lE1.SharedVA, PA: sharedE1PA}})
	expectedE1 := os.ExpectedMeasurement(e1Spec)

	es, err := sys.BuildEnclave(esSpec)
	if err != nil {
		log.Fatal(err)
	}
	e1, err := sys.BuildEnclave(e1Spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("signing enclave ES eid=%#x, client E1 eid=%#x\n", es.EID, e1.EID)

	// ①② Remote verifier: key agreement + nonce.
	verifierKA, err := attest.NewKeyAgreement(rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	var nonce [attest.NonceSize]byte
	rand.Read(nonce[:])
	fmt.Printf("verifier nonce %x…\n", nonce[:8])

	// ES arms its mailbox for E1.
	sys.SharedWriteWord(sharedESPA, enclaves.ShInput, 0)
	sys.SharedWriteWord(sharedESPA, enclaves.ShPeerEID, e1.EID)
	sys.Enter(0, es.EID, es.TIDs[0], 1_000_000)

	// ③ E1 derives its share and mails (nonce ‖ share) to ES.
	sys.SharedWriteWord(sharedE1PA, enclaves.ShInput, 0)
	sys.SharedWriteWord(sharedE1PA, enclaves.ShPeerEID, es.EID)
	sys.SharedWrite(sharedE1PA+enclaves.ShNonce, nonce[:])
	sys.Enter(0, e1.EID, e1.TIDs[0], 1_000_000)
	fmt.Println("③ E1 mailed its request to ES")

	// ④⑤ ES fetches the monitor key's signature over the evidence.
	sys.SharedWriteWord(sharedESPA, enclaves.ShInput, 1)
	sys.Enter(0, es.EID, es.TIDs[0], 1_000_000)
	fmt.Println("④⑤ ES produced the attestation signature")

	// ⑥⑦ E1 receives it and assembles the response.
	sys.SharedWriteWord(sharedE1PA, enclaves.ShInput, 1)
	sys.SharedWrite(sharedE1PA+enclaves.ShPeerKA, verifierKA.Share())
	sys.Enter(0, e1.EID, e1.TIDs[0], 1_000_000)

	// ⑧⑨ Verifier receives and verifies.
	share, _ := sys.SharedRead(sharedE1PA+enclaves.ShShare, 32)
	sig, _ := sys.SharedRead(sharedE1PA+enclaves.ShSig, 64)
	chain, err := sys.GetField(api.FieldCertChain)
	if err != nil {
		log.Fatalf("get_field: %v", err)
	}
	ev := &attest.Evidence{
		EnclaveMeasurement: expectedE1,
		Nonce:              nonce,
		KAShare:            share,
		Signature:          sig,
		CertChain:          chain,
	}
	monitorMeas := sys.Monitor.Identity().Measurement
	pol := attest.Policy{
		TrustedRoot:     sys.TrustedRoot(),
		ExpectedEnclave: expectedE1,
		AcceptMonitor:   func(m []byte) bool { return bytes.Equal(m, monitorMeas[:]) },
	}
	if err := attest.Verify(ev, nonce, pol); err != nil {
		log.Fatalf("⑧⑨ attestation REJECTED: %v", err)
	}
	fmt.Println("⑧⑨ attestation verified against the manufacturer PKI ✓")

	// ⑩ The session key authenticates subsequent messages.
	sessionKey, _ := verifierKA.SessionKey(share)
	macBytes, _ := sys.SharedRead(sharedE1PA+enclaves.ShMACOut, 32)
	var tag [32]byte
	copy(tag[:], macBytes)
	if !attest.Open(sessionKey, enclaves.SessionPlaintext, tag) {
		log.Fatal("⑩ session MAC invalid")
	}
	fmt.Printf("⑩ authenticated channel established; message %q verified\n",
		enclaves.SessionPlaintext)
	fmt.Println("remote attestation complete: Fig 7 reproduced")
}
