// End-to-end tests for the enclave messaging layer (DESIGN.md §9):
// mailbox rings, park/wake scheduling, and the request-serving gateway
// over snapshot/clone pool workers.
package sanctorum_test

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"testing"

	"sanctorum"
	"sanctorum/internal/enclaves"
	"sanctorum/internal/isa"
	ios "sanctorum/internal/os"
	"sanctorum/internal/sm/api"
	"sanctorum/internal/telemetry"
)

// ringService builds a pool from the given ring-server program and a
// gateway of nWorkers over it.
func ringService(t testing.TB, sys *sanctorum.System, prog string, nWorkers int,
	cfg sanctorum.GatewayConfig) (*ios.Pool, *ios.Gateway) {
	t.Helper()
	l := enclaves.DefaultLayout()
	regions := sys.OS.FreeRegions()
	if len(regions) < 1+nWorkers {
		t.Fatalf("need %d free regions, have %d", 1+nWorkers, len(regions))
	}
	var spec *ios.EnclaveSpec
	var err error
	switch prog {
	case "echo":
		spec, err = enclaves.Spec(l, enclaves.RingEchoServer(l), nil, regions[:1], nil)
	case "kv":
		spec, err = enclaves.Spec(l, enclaves.RingKVServer(l), nil, regions[:1], nil)
	default:
		t.Fatalf("unknown ring server %q", prog)
	}
	if err != nil {
		t.Fatal(err)
	}
	pool, err := sys.NewPool(spec, regions[1:1+nWorkers], 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = nWorkers
	gw, err := sys.NewGateway(pool, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pool, gw
}

func echoPayload(i int) []byte {
	msg := make([]byte, api.RingMsgSize)
	binary.LittleEndian.PutUint64(msg, uint64(1000+i))
	binary.LittleEndian.PutUint64(msg[8:], ^uint64(i))
	msg[63] = byte(i)
	return msg
}

// TestEnclaveRingService serves an echo workload through the gateway
// on every platform backend: requests travel as batched ring sends,
// parked workers wake through the monitor, and every response comes
// back stamped with the worker's identity and the template
// measurement.
func TestEnclaveRingService(t *testing.T) {
	for _, kind := range []sanctorum.Kind{sanctorum.Sanctum, sanctorum.Keystone, sanctorum.Baseline} {
		t.Run(kind.String(), func(t *testing.T) {
			sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: kind})
			if err != nil {
				t.Fatal(err)
			}
			pool, gw := ringService(t, sys, "echo", 2, sanctorum.GatewayConfig{
				Sched: sanctorum.SchedConfig{Mode: sanctorum.Deterministic},
			})
			const n = 37 // odd on purpose: exercises partial final chunks
			reqs := make([][]byte, n)
			for i := range reqs {
				reqs[i] = echoPayload(i)
			}
			resps, err := gw.Process(reqs)
			if err != nil {
				t.Fatal(err)
			}
			for i := range reqs {
				want := enclaves.RingEchoExpected(reqs[i])
				if string(resps[i]) != string(want) {
					t.Fatalf("response %d = %x, want %x", i, resps[i][:16], want[:16])
				}
			}
			if gw.Served != n {
				t.Fatalf("gateway served %d, want %d", gw.Served, n)
			}
			if err := gw.Close(); err != nil {
				t.Fatal(err)
			}
			if err := pool.Close(); err != nil {
				t.Fatal(err)
			}
			if refs := sys.Machine.Mem.TotalRefs(); refs != 0 {
				t.Fatalf("page refs leaked: %d", refs)
			}
		})
	}
}

// TestRingKVService drives the stateful KV worker: puts land in one
// worker's private store, gets read them back, and a second worker —
// a clone of the same measured template — holds independent state.
func TestRingKVService(t *testing.T) {
	sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: sanctorum.Sanctum})
	if err != nil {
		t.Fatal(err)
	}
	// One worker, so every request hits the same private store.
	pool, gw := ringService(t, sys, "kv", 1, sanctorum.GatewayConfig{
		Sched: sanctorum.SchedConfig{Mode: sanctorum.Deterministic},
	})
	var reqs [][]byte
	for k := uint64(0); k < 10; k++ {
		reqs = append(reqs, enclaves.RingKVRequest(enclaves.RingOpPut, k, 100+k))
	}
	for k := uint64(0); k < 10; k++ {
		reqs = append(reqs, enclaves.RingKVRequest(enclaves.RingOpGet, k, 0))
	}
	reqs = append(reqs, enclaves.RingKVRequest(enclaves.RingOpGet, 99, 0)) // never written
	resps, err := gw.Process(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 10; k++ {
		if v := binary.LittleEndian.Uint64(resps[10+k]); v != 100+k {
			t.Errorf("get %d = %d, want %d", k, v, 100+k)
		}
		if key := binary.LittleEndian.Uint64(resps[10+k][8:]); key != k {
			t.Errorf("get %d echoed key %d", k, key)
		}
	}
	if v := binary.LittleEndian.Uint64(resps[20]); v != 0 {
		t.Errorf("unwritten key read %d, want 0", v)
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGatewayParallelServing runs the gateway's waves under the
// parallel scheduler — multiple workers genuinely concurrent on
// multiple cores, preempted by timer quanta — which puts the park/wake
// path, the ring transactions and the wake sink under -race in CI.
func TestGatewayParallelServing(t *testing.T) {
	sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: sanctorum.Sanctum, Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	pool, gw := ringService(t, sys, "echo", 3, sanctorum.GatewayConfig{
		Batch: 4,
		Sched: sanctorum.SchedConfig{
			Mode:          sanctorum.Parallel,
			QuantumCycles: 10_000,
		},
	})
	const n = 96
	reqs := make([][]byte, n)
	for i := range reqs {
		reqs[i] = echoPayload(i)
	}
	resps, err := gw.Process(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		want := enclaves.RingEchoExpected(reqs[i])
		if string(resps[i]) != string(want) {
			t.Fatalf("response %d = %x, want %x", i, resps[i][:16], want[:16])
		}
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRingParkWakeRace races the park/wake protocol directly, without
// the gateway's wave structure: a producer goroutine streams sends
// into the request ring while the consumer hart parks and re-parks,
// so the waiter registration, the wake-through-IPI delivery and the
// re-entry all overlap with live sends. Run under -race in CI.
func TestRingParkWakeRace(t *testing.T) {
	sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: sanctorum.Sanctum})
	if err != nil {
		t.Fatal(err)
	}
	sys.Machine.SetConcurrent(true)
	l := enclaves.DefaultLayout()
	regions := sys.OS.FreeRegions()
	spec, err := enclaves.Spec(l, enclaves.RingEchoServer(l), nil, regions[:1], nil)
	if err != nil {
		t.Fatal(err)
	}
	built, err := sys.BuildEnclave(spec)
	if err != nil {
		t.Fatal(err)
	}
	reqRing, _ := sys.OS.AllocMetaPage()
	respRing, _ := sys.OS.AllocMetaPage()
	if err := sys.OS.SM.RingCreate(reqRing, api.DomainOS, built.EID, 32); err != nil {
		t.Fatal(err)
	}
	if err := sys.OS.SM.RingCreate(respRing, built.EID, api.DomainOS, 32); err != nil {
		t.Fatal(err)
	}
	sendPA, _ := sys.OS.AllocPagePA()
	recvPA, _ := sys.OS.AllocPagePA()

	const total = 120
	wakes := make(chan struct{}, total+8)
	sys.Monitor.SetWakeSink(func(ring, eid, tid uint64) {
		if eid == built.EID {
			wakes <- struct{}{}
		}
	})

	// Startup: run the worker once so it discovers its rings and parks
	// (a send only wakes a registered waiter).
	if st := sys.OS.EnterEnclave(0, built.EID, built.TIDs[0]); st != api.OK {
		t.Fatalf("startup enter: %v", st)
	}
	if _, err := sys.Machine.Run(0, 10_000_000); err != nil {
		t.Fatal(err)
	}
	if a0 := sys.Machine.Cores[0].CPU.Reg(isa.RegA0); a0 != api.ParkedExitValue {
		t.Fatalf("worker did not park at startup: a0=%#x", a0)
	}

	// Producer: stream all requests, yielding through full rings. Runs
	// concurrently with the consumer hart below.
	go func() {
		for i := 0; i < total; {
			if err := sys.OS.WriteOwned(sendPA, echoPayload(i)); err != nil {
				t.Error(err)
				return
			}
			if _, err := sys.OS.SM.RingSend(reqRing, sendPA, 1); err != nil {
				if errors.Is(err, api.ErrInvalidState) {
					runtime.Gosched() // ring full: the consumer will drain
					continue
				}
				t.Errorf("send %d: %v", i, err)
				return
			}
			i++
		}
	}()

	served := 0
	for served < total {
		<-wakes
		// Enter may race the park transition (the wake can beat the
		// monitor's stopThread): retry until the thread is schedulable.
		for {
			st := sys.OS.EnterEnclave(0, built.EID, built.TIDs[0])
			if st == api.OK {
				break
			}
			runtime.Gosched()
		}
		res, err := sys.Machine.Run(0, 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if a0 := sys.Machine.Cores[0].CPU.Reg(isa.RegA0); a0 != api.ParkedExitValue {
			t.Fatalf("worker stopped %v with a0=%#x, want park", res.Reason, a0)
		}
		for {
			n, err := sys.OS.SM.RingRecv(respRing, recvPA, 8)
			if errors.Is(err, api.ErrInvalidState) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			served += n
		}
	}
	if served != total {
		t.Fatalf("served %d responses, want %d", served, total)
	}
}

// TestDeterministicGatewayReplay runs the identical gateway workload
// on two independently built systems under the deterministic scheduler
// and requires the runs to agree observable-by-observable: every
// response byte, the wave count, the modeled cycle counters of every
// core, and — because span stamps are simulated cycles, not wall clock
// — the rendered trace of an instrumented request (DESIGN.md §13).
func TestDeterministicGatewayReplay(t *testing.T) {
	run := func() ([][]byte, int, []uint64, string) {
		sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: sanctorum.Sanctum})
		if err != nil {
			t.Fatal(err)
		}
		pool, gw := ringService(t, sys, "kv", 2, sanctorum.GatewayConfig{
			Batch: 4,
			Sched: sanctorum.SchedConfig{Mode: sanctorum.Deterministic, QuantumCycles: 20_000},
		})
		var reqs [][]byte
		for i := uint64(0); i < 24; i++ {
			op := uint64(enclaves.RingOpPut)
			if i%3 == 2 {
				op = enclaves.RingOpGet
			}
			reqs = append(reqs, enclaves.RingKVRequest(op, i%7, i*i))
		}
		tr := telemetry.NewTrace(sys.Machine.CycleNow)
		gw.TraceRequest(tr, -1, 0)
		resps, err := gw.Process(reqs)
		if err != nil {
			t.Fatal(err)
		}
		waves := gw.Waves
		if err := gw.Close(); err != nil {
			t.Fatal(err)
		}
		if err := pool.Close(); err != nil {
			t.Fatal(err)
		}
		var cycles []uint64
		for _, c := range sys.Machine.Cores {
			cycles = append(cycles, c.CPU.Cycles)
		}
		return resps, waves, cycles, tr.Render()
	}
	aResp, aWaves, aCycles, aTrace := run()
	bResp, bWaves, bCycles, bTrace := run()
	if aWaves != bWaves {
		t.Fatalf("wave counts diverged: %d vs %d", aWaves, bWaves)
	}
	for i := range aResp {
		if string(aResp[i]) != string(bResp[i]) {
			t.Fatalf("response %d diverged: %x vs %x", i, aResp[i][:16], bResp[i][:16])
		}
	}
	if fmt.Sprint(aCycles) != fmt.Sprint(bCycles) {
		t.Fatalf("modeled cycles diverged: %v vs %v", aCycles, bCycles)
	}
	if aTrace == "" {
		t.Fatal("traced request produced no spans")
	}
	if aTrace != bTrace {
		t.Fatalf("traced-request spans diverged:\n%s\nvs\n%s", aTrace, bTrace)
	}
}
