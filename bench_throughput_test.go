// Execution-engine throughput benchmarks (EXPERIMENTS.md E12): retired
// instructions per host-second on a tight ALU+memory loop, per platform
// kind. These measure host speed of the interpreter fast path; the
// modeled cycle counts are asserted identical to the reference path by
// TestFastSlowEquivalence in internal/hw/machine.
package sanctorum_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"sanctorum/internal/asm"
	"sanctorum/internal/hw/machine"
	"sanctorum/internal/hw/mem"
	"sanctorum/internal/hw/pmp"
	"sanctorum/internal/hw/pt"
	"sanctorum/internal/isa"
)

// throughputMachine builds a one-purpose machine of the given isolation
// kind running a paged S-mode ALU+memory loop, so the benchmark
// exercises the full hot path: TLB, page walk, L1/L2 and physical
// memory. engine selects "reference" (per-step Decode, scanning TLB
// probe, page-map access per load), "fast-noblock" (the per-instruction
// fast path with the block tier disabled — the pre-§11 engine), or
// "fast" (fast path plus trace-compiled superinstruction blocks).
func throughputMachine(b testing.TB, kind machine.IsolationKind, engine string) *machine.Machine {
	b.Helper()
	cfg := machine.DefaultConfig(kind)
	cfg.DisableFastPath = engine == "reference"
	cfg.DisableBlockEngine = engine == "fast-noblock"
	m, err := machine.New(cfg)
	if err != nil {
		b.Fatal(err)
	}

	// Physical pages from region 1 onward: page tables first, then code
	// and data.
	nextPPN := cfg.DRAM.Base(1) >> mem.PageBits
	alloc := func() (uint64, error) {
		p := nextPPN
		nextPPN++
		return p, nil
	}
	builder, err := pt.NewBuilder(m.Mem, alloc)
	if err != nil {
		b.Fatal(err)
	}

	const codeVA, dataVA = uint64(0x10000), uint64(0x20000)
	prog := asm.New().
		Li64(isa.RegS0, dataVA).
		Label("loop").
		I(isa.OpLD, isa.RegT1, isa.RegS0, 0, 0).
		I(isa.OpADD, isa.RegT2, isa.RegT2, isa.RegT1, 0).
		I(isa.OpSD, 0, isa.RegS0, isa.RegT2, 8).
		I(isa.OpADDI, isa.RegT0, isa.RegT0, 0, 1).
		I(isa.OpXOR, isa.RegT2, isa.RegT2, isa.RegT0, 0).
		J("loop")
	bin, err := prog.Assemble(codeVA)
	if err != nil {
		b.Fatal(err)
	}

	codePPN, _ := alloc()
	dataPPN, _ := alloc()
	if err := builder.Map(codeVA, codePPN<<mem.PageBits, pt.R|pt.X); err != nil {
		b.Fatal(err)
	}
	if err := builder.Map(dataVA, dataPPN<<mem.PageBits, pt.R|pt.W); err != nil {
		b.Fatal(err)
	}
	if err := m.Mem.WriteBytes(codePPN<<mem.PageBits, bin); err != nil {
		b.Fatal(err)
	}

	c := m.Cores[0]
	c.Satp = builder.Root
	c.CPU.Mode = isa.PrivS
	c.CPU.PC = codeVA
	switch kind {
	case machine.IsolationSanctum:
		c.OSRegions = cfg.DRAM.Full()
	case machine.IsolationKeystone:
		if err := c.PMP.Configure(0, pmp.Entry{
			Valid: true, Base: 0, Size: m.Mem.Size(), Perm: pmp.R | pmp.W | pmp.X,
		}); err != nil {
			b.Fatal(err)
		}
	}
	return m
}

// multiCoreMachine builds an n-core Sanctum machine where every core
// runs its own copy of the tight ALU+memory loop on disjoint pages, so
// aggregate throughput measures the execution engine's multi-hart
// scaling with no guest-level sharing.
func multiCoreMachine(b *testing.B, cores int) *machine.Machine {
	b.Helper()
	cfg := machine.DefaultConfig(machine.IsolationSanctum)
	cfg.Cores = cores
	m, err := machine.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	nextPPN := cfg.DRAM.Base(1) >> mem.PageBits
	alloc := func() (uint64, error) {
		p := nextPPN
		nextPPN++
		return p, nil
	}
	for i := 0; i < cores; i++ {
		builder, err := pt.NewBuilder(m.Mem, alloc)
		if err != nil {
			b.Fatal(err)
		}
		const codeVA, dataVA = uint64(0x10000), uint64(0x20000)
		prog := asm.New().
			Li64(isa.RegS0, dataVA).
			Label("loop").
			I(isa.OpLD, isa.RegT1, isa.RegS0, 0, 0).
			I(isa.OpADD, isa.RegT2, isa.RegT2, isa.RegT1, 0).
			I(isa.OpSD, 0, isa.RegS0, isa.RegT2, 8).
			I(isa.OpADDI, isa.RegT0, isa.RegT0, 0, 1).
			I(isa.OpXOR, isa.RegT2, isa.RegT2, isa.RegT0, 0).
			J("loop")
		bin, err := prog.Assemble(codeVA)
		if err != nil {
			b.Fatal(err)
		}
		codePPN, _ := alloc()
		dataPPN, _ := alloc()
		if err := builder.Map(codeVA, codePPN<<mem.PageBits, pt.R|pt.X); err != nil {
			b.Fatal(err)
		}
		if err := builder.Map(dataVA, dataPPN<<mem.PageBits, pt.R|pt.W); err != nil {
			b.Fatal(err)
		}
		if err := m.Mem.WriteBytes(codePPN<<mem.PageBits, bin); err != nil {
			b.Fatal(err)
		}
		c := m.Cores[i]
		c.Satp = builder.Root
		c.CPU.Mode = isa.PrivS
		c.CPU.PC = codeVA
		c.OSRegions = cfg.DRAM.Full()
	}
	return m
}

// BenchmarkMultiCoreThroughput (EXPERIMENTS.md E13) reports aggregate
// retired instructions per host-second with all cores executing
// concurrently under the parallel scheduler, for 1/2/4 simulated
// cores. The hot path is lock-free per core (private TLB, L1, decode
// caches; atomic page table), so aggregate throughput scales with the
// host CPUs available to the goroutines — on a many-core host the
// 4-core aggregate approaches 4x the 1-core number, while a
// single-CPU host timeshares the harts and holds it near 1x. The
// per-core/instr-s metric exposes the concurrency machinery's overhead
// either way.
func BenchmarkMultiCoreThroughput(b *testing.B) {
	for _, cores := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("cores=%d", cores), func(b *testing.B) {
			m := multiCoreMachine(b, cores)
			ids := make([]int, cores)
			for i := range ids {
				ids[i] = i
			}
			sched := machine.NewScheduler(m, machine.SchedParallel)
			const batch = 8192
			var retired atomic.Int64
			slices := make([]atomic.Int64, cores)
			b.ResetTimer()
			sched.Drive(ids, func(coreID int) bool {
				res, err := m.Run(coreID, batch)
				if err != nil {
					b.Error(err)
					return false
				}
				retired.Add(int64(res.Steps))
				return slices[coreID].Add(1) < int64(b.N)
			})
			b.StopTimer()
			perSec := float64(retired.Load()) / b.Elapsed().Seconds()
			b.ReportMetric(perSec, "instr/s")
			b.ReportMetric(perSec/float64(cores), "per-core/instr-s")
		})
	}
}

// TestBlockTierInterleavedRatio measures the block tier's contribution
// with the interleaved A/B methodology EXPERIMENTS.md E18 reports:
// short alternating slices of the block and no-block engines within
// one process, so host-speed drift between measurement windows — which
// on a shared host reaches ±30% across the tens of seconds sequential
// sub-benchmarks span — hits both engines equally and cancels from the
// ratio. Report-only (skipped with -short): a perf assertion here
// would flake under parallel CI load; the enforced form lives in
// cmd/benchjson's within-run ratio floors.
func TestBlockTierInterleavedRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement only")
	}
	for _, kind := range []machine.IsolationKind{
		machine.IsolationNone, machine.IsolationSanctum, machine.IsolationKeystone,
	} {
		mBlk := throughputMachine(t, kind, "fast")
		mNo := throughputMachine(t, kind, "fast-noblock")
		const slice = 8192 * 20
		var tBlk, tNo time.Duration
		for _, m := range []*machine.Machine{mBlk, mNo} { // warmup: compile + heat caches
			if _, err := m.Run(0, slice); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 60; i++ {
			s := time.Now()
			if _, err := mBlk.Run(0, slice); err != nil {
				t.Fatal(err)
			}
			tBlk += time.Since(s)
			s = time.Now()
			if _, err := mNo.Run(0, slice); err != nil {
				t.Fatal(err)
			}
			tNo += time.Since(s)
		}
		t.Logf("%-10s block %8.0f ns/8192  noblock %8.0f ns/8192  block tier %.2fx",
			kind.String(), float64(tBlk.Nanoseconds())/60/20, float64(tNo.Nanoseconds())/60/20,
			float64(tNo)/float64(tBlk))
	}
}

// BenchmarkThroughput reports sustained interpreter throughput
// (instr/s) on the tight loop, for each platform kind, on three
// engines that must be cycle-identical: the reference interpreter,
// the per-instruction fast path with the block tier disabled (the
// pre-§11 engine), and the full fast path with trace-compiled blocks.
// The within-run ratios are the headline speedups — fast-noblock/fast
// is the block tier's contribution, reference/fast the total — and
// are immune to host-speed drift because all rows come from one
// process; cycle-exactness is asserted by TestFastSlowEquivalence.
func BenchmarkThroughput(b *testing.B) {
	for _, engine := range []string{"fast", "fast-noblock", "reference"} {
		for _, kind := range []machine.IsolationKind{
			machine.IsolationNone, machine.IsolationSanctum, machine.IsolationKeystone,
		} {
			b.Run(engine+"/"+kind.String(), func(b *testing.B) {
				m := throughputMachine(b, kind, engine)
				const batch = 8192
				retired := 0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := m.Run(0, batch)
					if err != nil {
						b.Fatal(err)
					}
					if res.Reason != machine.StopMaxSteps {
						b.Fatalf("unexpected stop: %v (trap %v)", res.Reason, res.Trap)
					}
					retired += res.Steps
				}
				b.StopTimer()
				b.ReportMetric(float64(retired)/b.Elapsed().Seconds(), "instr/s")
			})
		}
	}
}
