// Execution-engine throughput benchmarks (EXPERIMENTS.md E12): retired
// instructions per host-second on a tight ALU+memory loop, per platform
// kind. These measure host speed of the interpreter fast path; the
// modeled cycle counts are asserted identical to the reference path by
// TestFastSlowEquivalence in internal/hw/machine.
package sanctorum_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"sanctorum/internal/asm"
	"sanctorum/internal/hw/machine"
	"sanctorum/internal/hw/mem"
	"sanctorum/internal/hw/pmp"
	"sanctorum/internal/hw/pt"
	"sanctorum/internal/isa"
)

// throughputMachine builds a one-purpose machine of the given isolation
// kind running a paged S-mode ALU+memory loop, so the benchmark
// exercises the full hot path: TLB, page walk, L1/L2 and physical
// memory. reference selects the pre-optimization execution engine
// (per-step Decode, scanning TLB probe, page-map access per load).
func throughputMachine(b *testing.B, kind machine.IsolationKind, reference bool) *machine.Machine {
	b.Helper()
	cfg := machine.DefaultConfig(kind)
	cfg.DisableFastPath = reference
	m, err := machine.New(cfg)
	if err != nil {
		b.Fatal(err)
	}

	// Physical pages from region 1 onward: page tables first, then code
	// and data.
	nextPPN := cfg.DRAM.Base(1) >> mem.PageBits
	alloc := func() (uint64, error) {
		p := nextPPN
		nextPPN++
		return p, nil
	}
	builder, err := pt.NewBuilder(m.Mem, alloc)
	if err != nil {
		b.Fatal(err)
	}

	const codeVA, dataVA = uint64(0x10000), uint64(0x20000)
	prog := asm.New().
		Li64(isa.RegS0, dataVA).
		Label("loop").
		I(isa.OpLD, isa.RegT1, isa.RegS0, 0, 0).
		I(isa.OpADD, isa.RegT2, isa.RegT2, isa.RegT1, 0).
		I(isa.OpSD, 0, isa.RegS0, isa.RegT2, 8).
		I(isa.OpADDI, isa.RegT0, isa.RegT0, 0, 1).
		I(isa.OpXOR, isa.RegT2, isa.RegT2, isa.RegT0, 0).
		J("loop")
	bin, err := prog.Assemble(codeVA)
	if err != nil {
		b.Fatal(err)
	}

	codePPN, _ := alloc()
	dataPPN, _ := alloc()
	if err := builder.Map(codeVA, codePPN<<mem.PageBits, pt.R|pt.X); err != nil {
		b.Fatal(err)
	}
	if err := builder.Map(dataVA, dataPPN<<mem.PageBits, pt.R|pt.W); err != nil {
		b.Fatal(err)
	}
	if err := m.Mem.WriteBytes(codePPN<<mem.PageBits, bin); err != nil {
		b.Fatal(err)
	}

	c := m.Cores[0]
	c.Satp = builder.Root
	c.CPU.Mode = isa.PrivS
	c.CPU.PC = codeVA
	switch kind {
	case machine.IsolationSanctum:
		c.OSRegions = cfg.DRAM.Full()
	case machine.IsolationKeystone:
		if err := c.PMP.Configure(0, pmp.Entry{
			Valid: true, Base: 0, Size: m.Mem.Size(), Perm: pmp.R | pmp.W | pmp.X,
		}); err != nil {
			b.Fatal(err)
		}
	}
	return m
}

// multiCoreMachine builds an n-core Sanctum machine where every core
// runs its own copy of the tight ALU+memory loop on disjoint pages, so
// aggregate throughput measures the execution engine's multi-hart
// scaling with no guest-level sharing.
func multiCoreMachine(b *testing.B, cores int) *machine.Machine {
	b.Helper()
	cfg := machine.DefaultConfig(machine.IsolationSanctum)
	cfg.Cores = cores
	m, err := machine.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	nextPPN := cfg.DRAM.Base(1) >> mem.PageBits
	alloc := func() (uint64, error) {
		p := nextPPN
		nextPPN++
		return p, nil
	}
	for i := 0; i < cores; i++ {
		builder, err := pt.NewBuilder(m.Mem, alloc)
		if err != nil {
			b.Fatal(err)
		}
		const codeVA, dataVA = uint64(0x10000), uint64(0x20000)
		prog := asm.New().
			Li64(isa.RegS0, dataVA).
			Label("loop").
			I(isa.OpLD, isa.RegT1, isa.RegS0, 0, 0).
			I(isa.OpADD, isa.RegT2, isa.RegT2, isa.RegT1, 0).
			I(isa.OpSD, 0, isa.RegS0, isa.RegT2, 8).
			I(isa.OpADDI, isa.RegT0, isa.RegT0, 0, 1).
			I(isa.OpXOR, isa.RegT2, isa.RegT2, isa.RegT0, 0).
			J("loop")
		bin, err := prog.Assemble(codeVA)
		if err != nil {
			b.Fatal(err)
		}
		codePPN, _ := alloc()
		dataPPN, _ := alloc()
		if err := builder.Map(codeVA, codePPN<<mem.PageBits, pt.R|pt.X); err != nil {
			b.Fatal(err)
		}
		if err := builder.Map(dataVA, dataPPN<<mem.PageBits, pt.R|pt.W); err != nil {
			b.Fatal(err)
		}
		if err := m.Mem.WriteBytes(codePPN<<mem.PageBits, bin); err != nil {
			b.Fatal(err)
		}
		c := m.Cores[i]
		c.Satp = builder.Root
		c.CPU.Mode = isa.PrivS
		c.CPU.PC = codeVA
		c.OSRegions = cfg.DRAM.Full()
	}
	return m
}

// BenchmarkMultiCoreThroughput (EXPERIMENTS.md E13) reports aggregate
// retired instructions per host-second with all cores executing
// concurrently under the parallel scheduler, for 1/2/4 simulated
// cores. The hot path is lock-free per core (private TLB, L1, decode
// caches; atomic page table), so aggregate throughput scales with the
// host CPUs available to the goroutines — on a many-core host the
// 4-core aggregate approaches 4x the 1-core number, while a
// single-CPU host timeshares the harts and holds it near 1x. The
// per-core/instr-s metric exposes the concurrency machinery's overhead
// either way.
func BenchmarkMultiCoreThroughput(b *testing.B) {
	for _, cores := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("cores=%d", cores), func(b *testing.B) {
			m := multiCoreMachine(b, cores)
			ids := make([]int, cores)
			for i := range ids {
				ids[i] = i
			}
			sched := machine.NewScheduler(m, machine.SchedParallel)
			const batch = 8192
			var retired atomic.Int64
			slices := make([]atomic.Int64, cores)
			b.ResetTimer()
			sched.Drive(ids, func(coreID int) bool {
				res, err := m.Run(coreID, batch)
				if err != nil {
					b.Error(err)
					return false
				}
				retired.Add(int64(res.Steps))
				return slices[coreID].Add(1) < int64(b.N)
			})
			b.StopTimer()
			perSec := float64(retired.Load()) / b.Elapsed().Seconds()
			b.ReportMetric(perSec, "instr/s")
			b.ReportMetric(perSec/float64(cores), "per-core/instr-s")
		})
	}
}

// BenchmarkThroughput reports sustained interpreter throughput
// (instr/s) on the tight loop, for each platform kind, on the fast
// engine and on the reference engine it must be cycle-identical to.
// The fast/reference ratio is the PR's headline speedup; the
// cycle-exactness of the pair is asserted by TestFastSlowEquivalence.
func BenchmarkThroughput(b *testing.B) {
	for _, engine := range []string{"fast", "reference"} {
		for _, kind := range []machine.IsolationKind{
			machine.IsolationNone, machine.IsolationSanctum, machine.IsolationKeystone,
		} {
			b.Run(engine+"/"+kind.String(), func(b *testing.B) {
				m := throughputMachine(b, kind, engine == "reference")
				const batch = 8192
				retired := 0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := m.Run(0, batch)
					if err != nil {
						b.Fatal(err)
					}
					if res.Reason != machine.StopMaxSteps {
						b.Fatalf("unexpected stop: %v (trap %v)", res.Reason, res.Trap)
					}
					retired += res.Steps
				}
				b.StopTimer()
				b.ReportMetric(float64(retired)/b.Elapsed().Seconds(), "instr/s")
			})
		}
	}
}
