// Park/wake edge cases under fault injection (DESIGN.md §10): the
// model checker's adversarial lock hook aimed at the ring layer's
// narrowest windows — wake racing destroy, double park, and parking
// against a concurrently-filling ring. The concurrent case runs under
// -race in CI.
package sanctorum_test

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"

	"sanctorum"
	"sanctorum/internal/enclaves"
	"sanctorum/internal/isa"
	"sanctorum/internal/sm"
	"sanctorum/internal/sm/api"
)

// ringWorker builds one ring-echo worker with the given thread count
// plus its request/response rings, and returns the built enclave and
// ring ids.
func ringWorker(t *testing.T, sys *sanctorum.System, nThreads int) (eid uint64, tids []uint64, reqRing, respRing uint64) {
	t.Helper()
	l := enclaves.DefaultLayout()
	regions := sys.OS.FreeRegions()
	spec, err := enclaves.SpecN(l, enclaves.RingEchoServer(l), nil, regions[:1], nil, nThreads)
	if err != nil {
		t.Fatal(err)
	}
	built, err := sys.BuildEnclave(spec)
	if err != nil {
		t.Fatal(err)
	}
	reqRing, _ = sys.OS.AllocMetaPage()
	respRing, _ = sys.OS.AllocMetaPage()
	if err := sys.OS.SM.RingCreate(reqRing, api.DomainOS, built.EID, 8); err != nil {
		t.Fatal(err)
	}
	if err := sys.OS.SM.RingCreate(respRing, built.EID, api.DomainOS, 8); err != nil {
		t.Fatal(err)
	}
	return built.EID, built.TIDs, reqRing, respRing
}

// runWorker enters the thread on the core and runs it until the
// monitor hands the core back, returning the guest's a0 (the park
// marker or exit status).
func runWorker(t *testing.T, sys *sanctorum.System, core int, eid, tid uint64) uint64 {
	t.Helper()
	st := api.ErrRetry
	for attempt := 0; attempt < 128 && st == api.ErrRetry; attempt++ {
		st = sys.OS.EnterEnclave(core, eid, tid)
	}
	if st != api.OK {
		t.Fatalf("enter core %d: %v", core, st)
	}
	if _, err := sys.Machine.Run(core, 10_000_000); err != nil {
		t.Fatal(err)
	}
	return sys.Machine.Cores[core].CPU.Reg(isa.RegA0)
}

// TestWakeRacingDestroy injects the adversarial preemption the
// interleaving explorer aims at ring teardown: ring_destroy completes
// — waking the parked consumer and freeing the ring id — inside
// ring_send's window between fetching the ring and locking it. The
// send must be refused by the dead-ring recheck, the destroy's wake
// must not be lost, and the woken worker's re-executed park must
// observe the shutdown.
func TestWakeRacingDestroy(t *testing.T) {
	sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: sanctorum.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	eid, tids, reqRing, respRing := ringWorker(t, sys, 1)
	var wakes []sm.LockPoint // reuse the pair shape: Kind unused
	var wakeTIDs []uint64
	sys.Monitor.SetWakeSink(func(ring, weid, wtid uint64) {
		wakes = append(wakes, sm.LockPoint{ID: ring})
		wakeTIDs = append(wakeTIDs, wtid)
	})
	if a0 := runWorker(t, sys, 0, eid, tids[0]); a0 != api.ParkedExitValue {
		t.Fatalf("worker did not park: a0=%#x", a0)
	}

	armed := true
	sys.Monitor.SetLockFaultHook(func(lp sm.LockPoint) bool {
		if !armed || lp.Kind != sm.LockRing || lp.ID != reqRing {
			return false
		}
		armed = false
		if err := sys.OS.SM.RingDestroy(reqRing); err != nil {
			t.Errorf("racing destroy: %v", err)
		}
		return false
	})
	stage, _ := sys.OS.AllocPagePA()
	_, err = sys.OS.SM.RingSend(reqRing, stage, 1)
	sys.Monitor.SetLockFaultHook(nil)
	if err == nil {
		t.Fatal("ring_send landed on a destroyed ring")
	}
	if !errors.Is(err, api.ErrInvalidValue) {
		t.Fatalf("send against dead ring: %v, want ErrInvalidValue", err)
	}
	if len(wakes) != 1 || wakes[0].ID != reqRing || wakeTIDs[0] != tids[0] {
		t.Fatalf("destroy posted wakes %v/%v, want exactly one for the parked worker", wakes, wakeTIDs)
	}
	// The woken worker re-executes its park, which now fails — the
	// shutdown signal — and the guest exits.
	if a0 := runWorker(t, sys, 0, eid, tids[0]); a0 != enclaves.WorkerExitStatus {
		t.Fatalf("woken worker a0=%#x, want exit status %#x", a0, enclaves.WorkerExitStatus)
	}
	if err := sys.Monitor.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := sys.OS.SM.RingDestroy(respRing); err != nil {
		t.Fatal(err)
	}
	if err := sys.OS.SM.DeleteEnclave(eid); err != nil {
		t.Fatal(err)
	}
	if err := sys.Monitor.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDoubleParkRefused parks one thread of a two-thread worker on the
// request ring, then has the sibling thread attempt the same park: the
// monitor must refuse the second waiter (one-waiter contract), keep the
// first registration intact, and the refused guest treats it as
// shutdown.
func TestDoubleParkRefused(t *testing.T) {
	sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: sanctorum.Baseline, Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	eid, tids, reqRing, respRing := ringWorker(t, sys, 2)
	if a0 := runWorker(t, sys, 0, eid, tids[0]); a0 != api.ParkedExitValue {
		t.Fatalf("first thread did not park: a0=%#x", a0)
	}
	if a0 := runWorker(t, sys, 1, eid, tids[1]); a0 != enclaves.WorkerExitStatus {
		t.Fatalf("second parker a0=%#x, want refusal-driven exit %#x", a0, enclaves.WorkerExitStatus)
	}
	shot := sys.Monitor.CaptureState().Rings[reqRing]
	if shot.WaiterEID != eid || shot.WaiterTID != tids[0] {
		t.Fatalf("waiter = %#x/%#x, want first thread %#x/%#x intact",
			shot.WaiterEID, shot.WaiterTID, eid, tids[0])
	}
	if err := sys.Monitor.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Shutdown: destroying the ring wakes the remaining waiter, whose
	// re-executed park fails.
	if err := sys.OS.SM.RingDestroy(reqRing); err != nil {
		t.Fatal(err)
	}
	if a0 := runWorker(t, sys, 0, eid, tids[0]); a0 != enclaves.WorkerExitStatus {
		t.Fatalf("woken waiter a0=%#x, want exit %#x", a0, enclaves.WorkerExitStatus)
	}
	if err := sys.OS.SM.RingDestroy(respRing); err != nil {
		t.Fatal(err)
	}
	if err := sys.OS.SM.DeleteEnclave(eid); err != nil {
		t.Fatal(err)
	}
	if err := sys.Monitor.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestParkOnFillingRingUnderFaults streams sends into the request ring
// from a producer goroutine while the consumer hart parks and re-parks,
// with the fault hook spuriously failing a fraction of the producer's
// ring-lock acquisitions — ErrRetry storms landing exactly in the
// park/wake window. No send may be lost, no wake dropped, and the
// invariant suite must hold at every park. Runs under -race in CI.
func TestParkOnFillingRingUnderFaults(t *testing.T) {
	sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: sanctorum.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	sys.Machine.SetConcurrent(true)
	eid, tids, reqRing, respRing := ringWorker(t, sys, 1)

	const total = 96
	wakes := make(chan struct{}, total+8)
	sys.Monitor.SetWakeSink(func(ring, weid, wtid uint64) {
		if weid == eid {
			wakes <- struct{}{}
		}
	})
	// Spurious-failure storm on the request ring's lock, every third
	// acquisition. The hook is called from both the producer goroutine
	// and the consumer hart, so it must be atomic; the guest re-issues
	// a park refused with ErrRetry and its send loop likewise retries,
	// so both sides absorb the storm.
	var acquisitions atomic.Uint64
	sys.Monitor.SetLockFaultHook(func(lp sm.LockPoint) bool {
		if lp.Kind != sm.LockRing || lp.ID != reqRing {
			return false
		}
		return acquisitions.Add(1)%3 == 0
	})
	defer sys.Monitor.SetLockFaultHook(nil)

	if a0 := runWorker(t, sys, 0, eid, tids[0]); a0 != api.ParkedExitValue {
		t.Fatalf("worker did not park: a0=%#x", a0)
	}
	sendPA, _ := sys.OS.AllocPagePA()
	recvPA, _ := sys.OS.AllocPagePA()
	go func() {
		for i := 0; i < total; {
			if err := sys.OS.WriteOwned(sendPA, echoPayload(i)); err != nil {
				t.Error(err)
				return
			}
			if _, err := sys.OS.SM.RingSend(reqRing, sendPA, 1); err != nil {
				if errors.Is(err, api.ErrInvalidState) {
					runtime.Gosched() // ring full: the consumer will drain
					continue
				}
				t.Errorf("send %d: %v", i, err)
				return
			}
			i++
		}
	}()

	served := 0
	for served < total {
		<-wakes
		for {
			st := sys.OS.EnterEnclave(0, eid, tids[0])
			if st == api.OK {
				break
			}
			runtime.Gosched()
		}
		if _, err := sys.Machine.Run(0, 10_000_000); err != nil {
			t.Fatal(err)
		}
		if a0 := sys.Machine.Cores[0].CPU.Reg(isa.RegA0); a0 != api.ParkedExitValue {
			t.Fatalf("worker stopped with a0=%#x, want park", a0)
		}
		if err := sys.Monitor.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		for {
			n, err := sys.OS.SM.RingRecv(respRing, recvPA, 8)
			if errors.Is(err, api.ErrInvalidState) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			served += n
		}
	}
	if served != total {
		t.Fatalf("served %d responses, want %d", served, total)
	}
	if stormed := acquisitions.Load(); stormed < total {
		t.Fatalf("fault hook saw only %d ring acquisitions over %d messages", stormed, total)
	}
}
