module sanctorum

go 1.23
