module sanctorum

go 1.24
