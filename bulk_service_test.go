// End-to-end tests for the zero-copy bulk data plane (DESIGN.md §14):
// monitor-granted shared buffers, scatter-gather descriptor rings, and
// the gateway's ProcessBulk path over them.
package sanctorum_test

import (
	"bytes"
	"fmt"
	"testing"

	"sanctorum"
	"sanctorum/internal/enclaves"
	ios "sanctorum/internal/os"
	"sanctorum/internal/sm/api"
)

// sg builds a scatter-gather descriptor message as a byte slice.
func sg(descs ...[2]uint64) []byte {
	d := api.EncodeBulkDescs(descs...)
	return d[:]
}

// bulkService builds a pool from the given bulk-server program and a
// gateway with a bulkPages-page granted buffer per worker.
func bulkService(t testing.TB, sys *sanctorum.System, prog string, nWorkers, bulkPages int) (*ios.Pool, *ios.Gateway) {
	t.Helper()
	l := enclaves.DefaultLayout()
	regions := sys.OS.FreeRegions()
	if len(regions) < 2+nWorkers {
		t.Fatalf("need %d free regions, have %d", 2+nWorkers, len(regions))
	}
	sharedPA, err := sys.SetupShared(l.SharedVA)
	if err != nil {
		t.Fatal(err)
	}
	var program = enclaves.BulkEchoServer(l)
	if prog == "kv" {
		program = enclaves.BulkKVServer(l)
	}
	spec, err := enclaves.BulkSpec(l, program, regions[:1], sharedPA)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := sys.NewPool(spec, regions[1:1+nWorkers], 1)
	if err != nil {
		t.Fatal(err)
	}
	gw, err := sys.NewGateway(pool, sanctorum.GatewayConfig{
		Workers:    nWorkers,
		BulkPages:  bulkPages,
		BulkRegion: regions[1+nWorkers],
		Sched:      sanctorum.SchedConfig{Mode: sanctorum.Deterministic},
	})
	if err != nil {
		t.Fatal(err)
	}
	return pool, gw
}

// fillPattern writes a deterministic per-worker byte pattern.
func fillPattern(buf []byte, seed byte) {
	for i := range buf {
		buf[i] = byte(i>>3) ^ seed
	}
}

// TestBulkEchoService serves scatter-gather checksum requests through
// the gateway on every platform backend: request data is staged in each
// worker's granted buffer, 64-byte descriptor messages name spans of
// it, and the enclave's checksums prove it dereferenced its mapping —
// with every worker holding a distinct window VA, which is what makes
// the plane work under Sanctum's single OS page table.
func TestBulkEchoService(t *testing.T) {
	for _, kind := range []sanctorum.Kind{sanctorum.Sanctum, sanctorum.Keystone, sanctorum.Baseline} {
		t.Run(kind.String(), func(t *testing.T) {
			sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: kind})
			if err != nil {
				t.Fatal(err)
			}
			const nWorkers, bulkPages = 2, 16
			pool, gw := bulkService(t, sys, "echo", nWorkers, bulkPages)
			for w := 0; w < nWorkers; w++ {
				grant, basePA, size := gw.BulkBuffer(w)
				if grant == 0 || size != bulkPages*4096 {
					t.Fatalf("worker %d: grant %#x size %d", w, grant, size)
				}
				buf := make([]byte, size)
				fillPattern(buf, byte(w))
				if err := sys.OS.WriteOwned(basePA, buf); err != nil {
					t.Fatal(err)
				}
				reqs := [][]byte{
					sg([2]uint64{0, 4096}),
					sg([2]uint64{0, 8192}, [2]uint64{3 * 4096, 4096}),
					sg([2]uint64{8, 4088}, [2]uint64{2 * 4096, 8192}, [2]uint64{uint64(size - 4096), 4096}),
					sg([2]uint64{0, uint64(size)}),
				}
				out, err := gw.ProcessBulk(w, reqs)
				if err != nil {
					t.Fatalf("worker %d: %v", w, err)
				}
				for i, req := range reqs {
					want := enclaves.BulkEchoExpected(req, buf)
					if !bytes.Equal(out[i], want) {
						t.Errorf("worker %d request %d:\n got %x\nwant %x", w, i, out[i], want)
					}
				}
			}
			if err := gw.Close(); err != nil {
				t.Fatal(err)
			}
			if err := pool.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDeterministicBulkReplay runs the identical bulk workload on two
// independently built systems under the deterministic scheduler and
// requires the runs to agree observable-by-observable: every response
// byte, the wave count, the modeled cycle counters of every core, and
// the full telemetry snapshot — which includes the bulk-plane
// instruments (sm.bulk.bytes, sm.bulk.grants, sm.bulk.descs), so the
// zero-copy path is provably replay-stable while instrumented.
func TestDeterministicBulkReplay(t *testing.T) {
	run := func() ([][]byte, int, []uint64, string) {
		sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: sanctorum.Sanctum})
		if err != nil {
			t.Fatal(err)
		}
		const bulkPages = 8
		pool, gw := bulkService(t, sys, "echo", 1, bulkPages)
		_, basePA, size := gw.BulkBuffer(0)
		buf := make([]byte, size)
		fillPattern(buf, 0x3C)
		if err := sys.OS.WriteOwned(basePA, buf); err != nil {
			t.Fatal(err)
		}
		var reqs [][]byte
		for i := uint64(0); i < 12; i++ {
			off := (i % uint64(bulkPages)) * 4096
			reqs = append(reqs, sg([2]uint64{off, 4096}))
		}
		resps, err := gw.ProcessBulk(0, reqs)
		if err != nil {
			t.Fatal(err)
		}
		waves := gw.Waves
		if err := gw.Close(); err != nil {
			t.Fatal(err)
		}
		if err := pool.Close(); err != nil {
			t.Fatal(err)
		}
		var cycles []uint64
		for _, c := range sys.Machine.Cores {
			cycles = append(cycles, c.CPU.Cycles)
		}
		return resps, waves, cycles, sys.Telemetry.Snapshot().Text()
	}
	aResp, aWaves, aCycles, aSnap := run()
	bResp, bWaves, bCycles, bSnap := run()
	if aWaves != bWaves {
		t.Fatalf("wave counts diverged: %d vs %d", aWaves, bWaves)
	}
	for i := range aResp {
		if !bytes.Equal(aResp[i], bResp[i]) {
			t.Fatalf("response %d diverged: %x vs %x", i, aResp[i], bResp[i])
		}
	}
	if fmt.Sprint(aCycles) != fmt.Sprint(bCycles) {
		t.Fatalf("modeled cycles diverged: %v vs %v", aCycles, bCycles)
	}
	if aSnap != bSnap {
		t.Fatalf("telemetry snapshots diverged:\n%s\nvs\n%s", aSnap, bSnap)
	}
}

// TestBulkKVService round-trips multi-KB values through the bulk KV
// worker: put copies a described span out of the shared buffer into
// private enclave slot pages, get copies it back into a different span
// — so the value provably survived inside the enclave, not the buffer.
func TestBulkKVService(t *testing.T) {
	for _, kind := range []sanctorum.Kind{sanctorum.Sanctum, sanctorum.Keystone, sanctorum.Baseline} {
		t.Run(kind.String(), func(t *testing.T) {
			sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: kind})
			if err != nil {
				t.Fatal(err)
			}
			pool, gw := bulkService(t, sys, "kv", 1, 8)
			_, basePA, size := gw.BulkBuffer(0)
			const valLen = 2048
			val := make([]byte, valLen)
			fillPattern(val, 0xA5)
			if err := sys.OS.WriteOwned(basePA, val); err != nil {
				t.Fatal(err)
			}
			put := enclaves.BulkKVRequest(enclaves.RingOpPut, 5, 0, valLen)
			out, err := gw.ProcessBulk(0, [][]byte{put})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out[0], put) {
				t.Fatalf("put response not echoed: %x", out[0])
			}
			// Scrub the buffer, then get the value back into another span.
			if err := sys.OS.WriteOwned(basePA, make([]byte, size)); err != nil {
				t.Fatal(err)
			}
			get := enclaves.BulkKVRequest(enclaves.RingOpGet, 5, 4096, valLen)
			if _, err := gw.ProcessBulk(0, [][]byte{get}); err != nil {
				t.Fatal(err)
			}
			got, err := sys.OS.ReadOwned(basePA+4096, valLen)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, val) {
				t.Fatalf("value did not survive the enclave round trip")
			}
			// A key that misses (slot never put) reads back zeroes.
			miss := enclaves.BulkKVRequest(enclaves.RingOpGet, 6, 0, valLen)
			if _, err := gw.ProcessBulk(0, [][]byte{miss}); err != nil {
				t.Fatal(err)
			}
			got, err = sys.OS.ReadOwned(basePA, valLen)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, make([]byte, valLen)) {
				t.Fatalf("missing key read back nonzero bytes")
			}
			if err := gw.Close(); err != nil {
				t.Fatal(err)
			}
			if err := pool.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
