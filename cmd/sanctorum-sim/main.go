// Command sanctorum-sim runs a configurable multi-enclave scenario on
// the simulated machine and reports scheduling and cache statistics —
// a quick way to poke at the system from the command line.
//
//	sanctorum-sim -platform sanctum -enclaves 3 -slices 4 -quantum 4000
package main

import (
	"flag"
	"fmt"
	"log"

	"sanctorum"
	"sanctorum/internal/enclaves"
	ios "sanctorum/internal/os"
	"sanctorum/internal/sm/api"
)

func main() {
	platform := flag.String("platform", "sanctum", "isolation backend: sanctum | keystone | baseline")
	nEnclaves := flag.Int("enclaves", 2, "number of counter enclaves to time-slice")
	slices := flag.Int("slices", 3, "scheduling rounds")
	quantum := flag.Uint64("quantum", 4000, "timer quantum in cycles")
	flag.Parse()

	var kind sanctorum.Kind
	switch *platform {
	case "sanctum":
		kind = sanctorum.Sanctum
	case "keystone":
		kind = sanctorum.Keystone
	case "baseline":
		kind = sanctorum.Baseline
	default:
		log.Fatalf("unknown platform %q", *platform)
	}
	sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: kind})
	if err != nil {
		log.Fatal(err)
	}
	// Probe the monitor call ABI before issuing any other call — the
	// client contract for a versioned dispatch surface.
	if v, err := sys.ABIVersion(); err != nil || v>>16 != api.VersionMajor {
		log.Fatalf("monitor ABI version %#x unusable (want major %d): %v",
			v, api.VersionMajor, err)
	}
	fmt.Printf("machine: %d cores, %d regions × %d KiB, %v isolation\n",
		len(sys.Machine.Cores), sys.Machine.DRAM.RegionCount,
		sys.Machine.DRAM.RegionSize()/1024, kind)

	type enclave struct {
		built    *ios.BuiltEnclave
		sharedPA uint64
	}
	var encs []enclave
	for i := 0; i < *nEnclaves; i++ {
		l := enclaves.DefaultLayout()
		l.SharedVA = 0x50000000 + uint64(i)*0x2000
		sharedPA, err := sys.SetupShared(l.SharedVA)
		if err != nil {
			log.Fatal(err)
		}
		regions := sys.OS.FreeRegions()
		if len(regions) == 0 {
			log.Fatal("out of regions")
		}
		spec, err := enclaves.Spec(l, enclaves.Counter(l), nil, regions[:1],
			[]ios.SharedMapping{{VA: l.SharedVA, PA: sharedPA}})
		if err != nil {
			log.Fatal(err)
		}
		built, err := sys.BuildEnclave(spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("enclave %d: eid=%#x measurement=%x…\n", i, built.EID, built.Measurement[:6])
		encs = append(encs, enclave{built, sharedPA})
	}

	core := sys.Machine.Cores[0]
	aexCount := 0
	for s := 0; s < *slices; s++ {
		for i, e := range encs {
			if st := sys.OS.EnterEnclave(0, e.built.EID, e.built.TIDs[0]); st != 0 {
				log.Fatalf("enter enclave %d: %v", i, st)
			}
			core.TimerCmp = core.CPU.Cycles + *quantum
			res, err := sys.Machine.Run(0, 100_000_000)
			if err != nil {
				log.Fatal(err)
			}
			if res.Trap != nil && res.Trap.Cause.IsInterrupt() {
				aexCount++
			}
			counter, _ := sys.SharedReadWord(e.sharedPA, enclaves.ShCounter)
			fmt.Printf("slice %d enclave %d: %-17v counter=%d cycles=%d\n",
				s, i, res.Trap.Cause, counter, core.CPU.Cycles)
		}
	}

	fmt.Println()
	fmt.Printf("AEXs performed:   %d\n", aexCount)
	fmt.Printf("L2: %d hits / %d misses / %d evictions (%d live lines)\n",
		sys.Machine.L2.Hits, sys.Machine.L2.Misses, sys.Machine.L2.Evictions, sys.Machine.L2.Live())
	fmt.Printf("core0 TLB: %d hits / %d misses / %d flushes\n",
		core.TLB.Hits, core.TLB.Misses, core.TLB.Flushes)
	fmt.Printf("core0 L1: %d hits / %d misses\n", core.L1.Hits, core.L1.Misses)
	fmt.Printf("physical pages touched: %d\n", sys.Machine.Mem.TouchedPages())
}
