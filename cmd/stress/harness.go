package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"sanctorum"
	"sanctorum/internal/enclaves"
	"sanctorum/internal/sm/api"
	"sanctorum/internal/telemetry"
)

// Config parameterizes one soak.
type Config struct {
	Duration   time.Duration
	Workers    int
	Wave       int    // requests per gateway wave
	ChurnEvery int    // churn period in waves; 0 disables churn
	Quantum    uint64 // scheduler quantum cycles
}

// Results is one soak's outcome: the latency distribution (per-request
// nanoseconds) plus the work and churn counters.
type Results struct {
	Served      int
	Waves       int
	PoolChurn   int // worker fork+recycle cycles completed
	SnapChurn   int // snapshot take+release cycles completed
	Elapsed     time.Duration
	P50         float64 // per-request ns at each percentile
	P99         float64
	P999        float64
	Mean        float64
	ReqPerSec   float64
	Calibration float64
}

// Run executes the soak: an echo-serving gateway over a pool of cloned
// workers under the parallel scheduler with a storm-grade quantum,
// with pool and snapshot churn interleaved between waves.
func Run(cfg Config) (*Results, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Wave < 1 {
		cfg.Wave = 8
	}
	sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: sanctorum.Baseline, Cores: 4})
	if err != nil {
		return nil, err
	}
	l := enclaves.DefaultLayout()
	regions := sys.OS.FreeRegions()
	// Template + one region per worker + one spare for the churned
	// worker + one for the snapshot-churn enclave.
	need := 1 + cfg.Workers + 2
	if len(regions) < need {
		return nil, fmt.Errorf("stress: need %d free regions, have %d", need, len(regions))
	}
	spec, err := enclaves.Spec(l, enclaves.RingEchoServer(l), nil, regions[:1], nil)
	if err != nil {
		return nil, err
	}
	pool, err := sys.NewPool(spec, regions[1:1+cfg.Workers+1], 1)
	if err != nil {
		return nil, err
	}
	gw, err := sys.NewGateway(pool, sanctorum.GatewayConfig{
		Workers: cfg.Workers,
		Batch:   4,
		Sched: sanctorum.SchedConfig{
			Mode:          sanctorum.Parallel,
			QuantumCycles: cfg.Quantum,
		},
	})
	if err != nil {
		return nil, err
	}

	// Side enclave for snapshot/release cycling: built and sealed the
	// slow way, never entered, so it is always snapshottable.
	churnSpec, err := enclaves.Spec(l, enclaves.RingEchoServer(l), nil,
		regions[1+cfg.Workers+1:need], nil)
	if err != nil {
		return nil, err
	}
	churnEnc, err := sys.BuildEnclave(churnSpec)
	if err != nil {
		return nil, err
	}

	reqs := make([][]byte, cfg.Wave)
	for i := range reqs {
		msg := make([]byte, api.RingMsgSize)
		msg[0], msg[8], msg[63] = byte(i), byte(i>>1), byte(i)
		reqs[i] = msg
	}
	want := make([][]byte, cfg.Wave)
	for i := range reqs {
		want[i] = enclaves.RingEchoExpected(reqs[i])
	}

	res := &Results{Calibration: calibrate()}
	// Per-request wall latency goes into a telemetry histogram (the
	// same log-bucketed math the cycle-clocked registry uses); the
	// percentiles below read off it instead of a sorted sample slice.
	// Wall time is fine here — the soak measures the host, not the
	// simulation, and nothing in it needs replay determinism.
	lat := telemetry.NewHistogram()
	deadline := time.Now().Add(cfg.Duration)
	start := time.Now()
	for time.Now().Before(deadline) {
		t0 := time.Now()
		resps, err := gw.Process(reqs)
		dt := time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("stress: wave %d: %w", res.Waves, err)
		}
		for i := range resps {
			if string(resps[i]) != string(want[i]) {
				return nil, fmt.Errorf("stress: wave %d response %d corrupted", res.Waves, i)
			}
		}
		lat.Observe(uint64(dt.Nanoseconds()) / uint64(cfg.Wave))
		res.Waves++
		res.Served += cfg.Wave

		if cfg.ChurnEvery > 0 && res.Waves%cfg.ChurnEvery == 0 {
			// Pool churn: fork one extra worker from the snapshot and
			// recycle it — create, grants, clone, delete, region clean.
			w, err := pool.Acquire(0)
			if err != nil {
				return nil, fmt.Errorf("stress: pool churn acquire: %w", err)
			}
			if err := pool.Release(w); err != nil {
				return nil, fmt.Errorf("stress: pool churn release: %w", err)
			}
			res.PoolChurn++
			// Snapshot churn: freeze and thaw the side enclave.
			snapID, err := sys.OS.AllocMetaPage()
			if err != nil {
				return nil, fmt.Errorf("stress: snapshot churn: %w", err)
			}
			if err := sys.OS.SM.SnapshotEnclave(churnEnc.EID, snapID); err != nil {
				return nil, fmt.Errorf("stress: snapshot churn take: %w", err)
			}
			if err := sys.OS.SM.ReleaseSnapshot(snapID); err != nil {
				return nil, fmt.Errorf("stress: snapshot churn release: %w", err)
			}
			sys.OS.ReleaseMetaPage(snapID)
			res.SnapChurn++
		}
	}
	res.Elapsed = time.Since(start)

	if err := gw.Close(); err != nil {
		return nil, fmt.Errorf("stress: gateway close: %w", err)
	}
	if err := pool.Close(); err != nil {
		return nil, fmt.Errorf("stress: pool close: %w", err)
	}
	if err := sys.OS.SM.DeleteEnclave(churnEnc.EID); err != nil {
		return nil, fmt.Errorf("stress: churn enclave teardown: %w", err)
	}
	if err := sys.Monitor.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("stress: post-soak invariants: %w", err)
	}

	res.P50 = lat.Quantile(0.50)
	res.P99 = lat.Quantile(0.99)
	res.P999 = lat.Quantile(0.999)
	res.Mean = lat.Mean()
	if res.Elapsed > 0 {
		res.ReqPerSec = float64(res.Served) / res.Elapsed.Seconds()
	}
	return res, nil
}

// calibrate mirrors cmd/benchjson's host-speed probe (the same fixed
// xorshift workload), so stress JSONs compare across hosts with the
// same normalization.
func calibrate() float64 {
	best := 0.0
	for i := 0; i < 5; i++ {
		start := time.Now()
		x := uint64(0x9E3779B97F4A7C15)
		for j := 0; j < 1<<26; j++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		ns := float64(time.Since(start).Nanoseconds())
		if x == 0 { // never: defeat dead-code elimination
			fmt.Println()
		}
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// Gate applies the machine-independent tail targets, returning one
// message per violation.
func (r *Results) Gate(maxP99, maxP999 float64) []string {
	var msgs []string
	if r.P50 <= 0 {
		return []string{"no latency samples collected"}
	}
	if ratio := r.P99 / r.P50; ratio > maxP99 {
		msgs = append(msgs, fmt.Sprintf("p99/p50 = %.2f× exceeds the %.0f× ceiling", ratio, maxP99))
	}
	if ratio := r.P999 / r.P50; ratio > maxP999 {
		msgs = append(msgs, fmt.Sprintf("p999/p50 = %.2f× exceeds the %.0f× ceiling", ratio, maxP999))
	}
	return msgs
}

// Print writes the human-readable soak report.
func (r *Results) Print(w io.Writer) {
	fmt.Fprintf(w, "stress: %d requests in %v (%.0f req/s), %d waves\n",
		r.Served, r.Elapsed.Round(time.Millisecond), r.ReqPerSec, r.Waves)
	fmt.Fprintf(w, "  latency/request: p50 %.0f ns  p99 %.0f ns  p999 %.0f ns  mean %.0f ns\n",
		r.P50, r.P99, r.P999, r.Mean)
	fmt.Fprintf(w, "  tails: p99/p50 %.2f×  p999/p50 %.2f×\n", r.P99/r.P50, r.P999/r.P50)
	fmt.Fprintf(w, "  churn: %d pool fork+recycle, %d snapshot take+release\n",
		r.PoolChurn, r.SnapChurn)
}

// benchFile mirrors cmd/benchjson's JSON schema so stress runs flow
// through the same compare gate.
type benchFile struct {
	Schema        int                    `json:"schema"`
	GoVersion     string                 `json:"go"`
	CalibrationNs float64                `json:"calibration_ns"`
	Benchmarks    map[string]benchResult `json:"benchmarks"`
}

type benchResult struct {
	NsPerOp     float64            `json:"ns_per_op"`
	OpsPerSec   float64            `json:"ops_per_sec"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// WriteJSON emits the percentiles as benchjson pseudo-benchmarks
// (StressGateway/p50 …) plus the throughput row carrying the churn
// counters, in cmd/benchjson's File schema.
func (r *Results) WriteJSON(path string) error {
	row := func(ns float64) benchResult {
		br := benchResult{NsPerOp: ns}
		if ns > 0 {
			br.OpsPerSec = 1e9 / ns
		}
		return br
	}
	tput := row(r.Mean)
	tput.Metrics = map[string]float64{
		"req/s":      r.ReqPerSec,
		"pool-churn": float64(r.PoolChurn),
		"snap-churn": float64(r.SnapChurn),
	}
	doc := benchFile{
		Schema:        1,
		GoVersion:     runtime.Version(),
		CalibrationNs: r.Calibration,
		Benchmarks: map[string]benchResult{
			"StressGateway/p50":  row(r.P50),
			"StressGateway/p99":  row(r.P99),
			"StressGateway/p999": row(r.P999),
			"StressGateway/mean": tput,
		},
	}
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return writeFile(path, append(blob, '\n'))
}

func writeFile(path string, blob []byte) error {
	return os.WriteFile(path, blob, 0o644)
}
