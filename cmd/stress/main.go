// Command stress is the endurance battery (EXPERIMENTS.md E17): a
// Stress-SGX-style soak that serves sustained gateway load over the
// snapshot/clone pool and mailbox-ring stack while adversarial churn
// runs alongside — pool workers forked and recycled, snapshots taken
// and released, and a deliberately low scheduler quantum driving
// preemption storms through the park/wake path. It records every
// request's latency and emits p50/p99/p999 histograms as benchjson
// pseudo-benchmarks, so the tail-latency ratio targets join the CI
// benchmark gate (cmd/benchjson compare enforces them whenever the
// stress benchmarks are present).
//
//	stress -duration 5s -workers 2 -out STRESS.json [-gate]
//
// -gate additionally enforces the machine-independent tail targets
// in-process (p99/p50 and p999/p50 ceilings) and exits non-zero on a
// violation, so a soak doubles as a pass/fail check without a
// baseline file.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"
)

func main() {
	cfg := Config{}
	flag.DurationVar(&cfg.Duration, "duration", 5*time.Second, "soak length")
	flag.IntVar(&cfg.Workers, "workers", 2, "gateway pool workers")
	flag.IntVar(&cfg.Wave, "wave", 8, "requests per gateway wave (one latency sample each)")
	flag.IntVar(&cfg.ChurnEvery, "churn-every", 16, "pool-churn and snapshot-churn period, in waves (0 disables)")
	flag.Uint64Var(&cfg.Quantum, "quantum", 2_000, "scheduler quantum in cycles (low = preemption storms)")
	out := flag.String("out", "", "write benchjson-schema JSON here")
	gate := flag.Bool("gate", false, "enforce tail-ratio targets and exit non-zero on violation")
	maxP99 := flag.Float64("max-p99-ratio", 8, "gate: p99 may exceed p50 by at most this factor")
	maxP999 := flag.Float64("max-p999-ratio", 40, "gate: p999 may exceed p50 by at most this factor")
	flag.Parse()

	res, err := Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stress:", err)
		os.Exit(1)
	}
	res.Print(os.Stdout)
	if *out != "" {
		if err := res.WriteJSON(*out); err != nil {
			fmt.Fprintln(os.Stderr, "stress:", err)
			os.Exit(1)
		}
		fmt.Printf("stress: wrote %s\n", *out)
	}
	if *gate {
		if msgs := res.Gate(*maxP99, *maxP999); len(msgs) > 0 {
			fmt.Fprintln(os.Stderr, "\nstress: FAIL")
			for _, m := range msgs {
				fmt.Fprintln(os.Stderr, "  -", m)
			}
			os.Exit(1)
		}
		fmt.Println("stress: PASS")
	}
}
