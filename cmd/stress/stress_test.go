package main

import (
	"testing"
	"time"
)

// TestSoakSmoke runs a short soak end-to-end — gateway waves, pool and
// snapshot churn, teardown, post-soak invariants — and sanity-checks
// the distribution. The full-length battery is cmd/stress itself
// (EXPERIMENTS.md E17); this keeps the harness compiling and honest
// under go test and -race.
func TestSoakSmoke(t *testing.T) {
	res, err := Run(Config{
		Duration:   500 * time.Millisecond,
		Workers:    2,
		Wave:       8,
		ChurnEvery: 8,
		Quantum:    2_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Served == 0 || res.Waves == 0 {
		t.Fatalf("soak served nothing: %+v", res)
	}
	if res.PoolChurn == 0 || res.SnapChurn == 0 {
		t.Fatalf("churn never ran: pool %d, snap %d", res.PoolChurn, res.SnapChurn)
	}
	if res.P50 <= 0 || res.P99 < res.P50 || res.P999 < res.P99 {
		t.Fatalf("percentiles out of order: p50 %.0f p99 %.0f p999 %.0f",
			res.P50, res.P99, res.P999)
	}
	if msgs := res.Gate(1e9, 1e9); len(msgs) != 0 {
		t.Fatalf("gate with absurd ceilings still failed: %v", msgs)
	}
}
