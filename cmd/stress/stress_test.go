package main

import (
	"encoding/json"
	"math/rand"
	"os"
	"sort"
	"testing"
	"time"

	"sanctorum/internal/telemetry"
)

// TestSoakSmoke runs a short soak end-to-end — gateway waves, pool and
// snapshot churn, teardown, post-soak invariants — and sanity-checks
// the distribution. The full-length battery is cmd/stress itself
// (EXPERIMENTS.md E17); this keeps the harness compiling and honest
// under go test and -race.
func TestSoakSmoke(t *testing.T) {
	res, err := Run(Config{
		Duration:   500 * time.Millisecond,
		Workers:    2,
		Wave:       8,
		ChurnEvery: 8,
		Quantum:    2_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Served == 0 || res.Waves == 0 {
		t.Fatalf("soak served nothing: %+v", res)
	}
	if res.PoolChurn == 0 || res.SnapChurn == 0 {
		t.Fatalf("churn never ran: pool %d, snap %d", res.PoolChurn, res.SnapChurn)
	}
	if res.P50 <= 0 || res.P99 < res.P50 || res.P999 < res.P99 {
		t.Fatalf("percentiles out of order: p50 %.0f p99 %.0f p999 %.0f",
			res.P50, res.P99, res.P999)
	}
	if msgs := res.Gate(1e9, 1e9); len(msgs) != 0 {
		t.Fatalf("gate with absurd ceilings still failed: %v", msgs)
	}
}

// TestHistogramMatchesBespokePercentiles replays the exact computation
// the harness used to hand-roll — sorted-slice index percentiles —
// against the telemetry histogram that replaced it, on a latency-shaped
// sample set. The histogram's log-bucketed values must stay within one
// bucket width (1/16 relative) of the bespoke answers, which keeps the
// Gate tail ratios (p99/p50, p999/p50) giving identical verdicts.
func TestHistogramMatchesBespokePercentiles(t *testing.T) {
	bespoke := func(sorted []float64, q float64) float64 {
		i := int(q * float64(len(sorted)))
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	rng := rand.New(rand.NewSource(17))
	h := telemetry.NewHistogram()
	var samples []float64
	for i := 0; i < 50000; i++ {
		// Log-normal-ish tail like a real soak: a tight body with rare
		// large excursions.
		v := 3000 + rng.Intn(2000)
		if rng.Intn(100) == 0 {
			v += rng.Intn(60000)
		}
		h.Observe(uint64(v))
		samples = append(samples, float64(v))
	}
	sort.Float64s(samples)
	for _, q := range []float64{0.50, 0.99, 0.999} {
		exact, got := bespoke(samples, q), h.Quantile(q)
		if rel := (got - exact) / exact; rel > 1.0/16 || rel < -1.0/16 {
			t.Fatalf("q=%.3f: histogram %.1f vs bespoke %.1f (rel %.4f)", q, got, exact, rel)
		}
	}
}

// TestGateVerdictOnBaseline loads STRESS_BASELINE.json and checks the
// CI gate gives the same verdict on its recorded percentiles as it
// always has: the baseline passes its own ceilings (p99/p50 ≤ 8,
// p999/p50 ≤ 40) with margin far wider than the histogram's ≤6%
// bucket error, so switching the percentile math cannot flip the gate.
func TestGateVerdictOnBaseline(t *testing.T) {
	raw, err := os.ReadFile("../../STRESS_BASELINE.json")
	if err != nil {
		t.Skipf("no baseline: %v", err)
	}
	var doc struct {
		Benchmarks map[string]struct {
			NsPerOp float64 `json:"ns_per_op"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	res := &Results{
		P50:  doc.Benchmarks["StressGateway/p50"].NsPerOp,
		P99:  doc.Benchmarks["StressGateway/p99"].NsPerOp,
		P999: doc.Benchmarks["StressGateway/p999"].NsPerOp,
	}
	if res.P50 == 0 {
		t.Fatal("baseline missing StressGateway/p50")
	}
	if msgs := res.Gate(8, 40); len(msgs) != 0 {
		t.Fatalf("baseline fails its own gate: %v", msgs)
	}
	// The worst the histogram can do is inflate a tail by one bucket
	// (+1/16) while deflating p50 by one bucket (-1/16); even then the
	// verdict must hold.
	skewed := &Results{P50: res.P50 * (1 - 1.0/16), P99: res.P99 * (1 + 1.0/16), P999: res.P999 * (1 + 1.0/16)}
	if msgs := skewed.Gate(8, 40); len(msgs) != 0 {
		t.Fatalf("gate verdict not robust to bucket error: %v", msgs)
	}
}
