// Command tcbcount reproduces the paper's §VII-A TCB-size analysis
// (experiment E8). The paper reports 5785 LOC total for the Sanctum SM
// (C: 5264, asm: 521), of which most is cryptography, C library
// routines and boot plumbing, leaving 1011 LOC of non-platform-specific
// monitor logic. This tool applies the same decomposition to this
// repository: the trusted monitor core is a small fraction of the tree,
// with crypto a comparable fraction of the *trusted* code — the shape
// the paper's argument rests on.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

type category struct {
	name    string
	trusted bool
	desc    string
	match   func(path string) bool
}

func prefix(p string) func(string) bool {
	return func(path string) bool { return strings.HasPrefix(path, p) }
}

var categories = []category{
	// Listed before "monitor core" because they live in internal/sm/ for
	// unexported-field access but are verification scaffolding, not part
	// of the shipped SM image: the invariant checker is only invoked by
	// tests and the model checker, and the fault hook is nil outside
	// fault-injection runs. A production build would drop both files.
	{"verification & clients", false, "model checker, invariant suite, fault hooks, retry-aware client", func(p string) bool {
		return strings.HasPrefix(p, "internal/mc/") || strings.HasPrefix(p, "internal/smcall/") ||
			p == "internal/sm/invariant.go" || p == "internal/sm/fault.go"
	}},
	{"monitor core", true, "lifecycles, measurement, mailboxes, traps (≈ paper's 1011 LOC core)", prefix("internal/sm/")},
	{"crypto (trusted)", true, "sha3, kdf, certificates (≈ paper's bundled tiny_sha3 etc.)", prefix("internal/crypto/")},
	{"platform adapters", true, "Sanctum / Keystone / baseline backends", prefix("internal/platform/")},
	{"hardware simulator", false, "substitute for silicon: memory, caches, MMU, cores", func(p string) bool {
		return strings.HasPrefix(p, "internal/hw/") || strings.HasPrefix(p, "internal/isa/") || strings.HasPrefix(p, "internal/asm/")
	}},
	{"untrusted OS model", false, "resource manager outside the TCB", prefix("internal/os/")},
	{"verifier (remote party)", false, "attestation verification, key agreement", prefix("internal/attest/")},
	{"enclave programs", false, "SRV64 workloads", prefix("internal/enclaves/")},
	{"adversaries", false, "prime+probe attacker, malicious-OS battery", prefix("internal/adversary/")},
	{"fleet infrastructure", false, "multi-machine sharding, session routing, attested channels", prefix("internal/fleet/")},
	// The telemetry plane is observation, not policy: the monitor's
	// dispatch/ring hooks (internal/sm/telemetry.go, counted under
	// monitor core above) only write into these untrusted instruments,
	// and nothing in the TCB reads them back.
	{"telemetry (untrusted)", false, "metrics registry, histograms, request tracing", prefix("internal/telemetry/")},
	{"facade/examples/tools", false, "public API, examples, commands", func(p string) bool {
		return strings.HasPrefix(p, "examples/") || strings.HasPrefix(p, "cmd/") || !strings.Contains(p, "/")
	}},
}

func countLines(path string) (code int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	inBlock := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if inBlock {
			if strings.Contains(line, "*/") {
				inBlock = false
			}
			continue
		}
		if strings.HasPrefix(line, "//") {
			continue
		}
		if strings.HasPrefix(line, "/*") {
			if !strings.Contains(line, "*/") {
				inBlock = true
			}
			continue
		}
		code++
	}
	return code, sc.Err()
}

func main() {
	maxCore := flag.Int("max-core", 0,
		"fail (exit 1) if the trusted monitor core exceeds this many non-test LOC; 0 disables")
	flag.Parse()
	root := "."
	if flag.NArg() > 0 {
		root = flag.Arg(0)
	}
	totals := map[string]int{}
	testTotals := map[string]int{}
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		rel = filepath.ToSlash(rel)
		n, err := countLines(path)
		if err != nil {
			return err
		}
		for _, c := range categories {
			if c.match(rel) {
				if strings.HasSuffix(rel, "_test.go") {
					testTotals[c.name] += n
				} else {
					totals[c.name] += n
				}
				break
			}
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcbcount:", err)
		os.Exit(1)
	}

	fmt.Println("TCB decomposition (non-test Go LOC), cf. paper §VII-A:")
	fmt.Println()
	fmt.Printf("  %-26s %8s %8s  %s\n", "category", "code", "tests", "role")
	var trusted, total, testTotal int
	names := make([]string, 0, len(categories))
	for _, c := range categories {
		names = append(names, c.name)
	}
	sort.SliceStable(names, func(i, j int) bool { return totals[names[i]] > totals[names[j]] })
	for _, name := range names {
		var c category
		for _, cc := range categories {
			if cc.name == name {
				c = cc
			}
		}
		mark := " "
		if c.trusted {
			mark = "*"
			trusted += totals[name]
		}
		total += totals[name]
		testTotal += testTotals[name]
		fmt.Printf("%s %-26s %8d %8d  %s\n", mark, name, totals[name], testTotals[name], c.desc)
	}
	fmt.Println()
	fmt.Printf("  trusted (*) LOC:   %6d  (paper: 5785 total SM image)\n", trusted)
	smCore := totals["monitor core"]
	fmt.Printf("  monitor-core LOC:  %6d  (paper: 1011 non-platform-specific)\n", smCore)
	fmt.Printf("  total (non-test):  %6d   tests: %d\n", total, testTotal)
	fmt.Printf("  core/trusted ratio: %.0f%%  (paper: %.0f%%)\n",
		100*float64(smCore)/float64(trusted), 100*1011.0/5785.0)
	if *maxCore > 0 {
		if smCore > *maxCore {
			fmt.Fprintf(os.Stderr,
				"tcbcount: trusted monitor core is %d LOC, over the declared %d LOC budget\n",
				smCore, *maxCore)
			os.Exit(1)
		}
		fmt.Printf("  core budget:       %6d  (%d LOC headroom)\n", *maxCore, *maxCore-smCore)
	}
}
