// Command benchjson is the CI benchmark-regression gate. It has three
// modes:
//
//	benchjson run -out BENCH_PR5.json [-benchtime 0.3s] [-count 3]
//	benchjson compare BASELINE.json NEW.json [-threshold 0.15]
//	benchjson gate -baseline BASELINE.json -out BENCH_PR5.json [-retries 2]
//
// `run` executes the repository's tracked benchmarks (Throughput,
// Dispatch, CloneColdStart, ServeThroughput, GatewayServe, FleetServe)
// via `go test -bench` — keeping the fastest of -count repetitions per
// benchmark — and writes one JSON document with ns/op, ops/sec,
// allocs/op and every custom metric, plus a host-speed calibration (a
// fixed pure-Go workload timed at run time).
//
// `compare` fails (exit 1) when any throughput-relevant number
// regressed more than the threshold against the committed baseline,
// after normalizing by the calibration ratio so a slower CI runner is
// not mistaken for a slower monitor. It also enforces the absolute
// ratio targets that are machine-independent by construction: batched
// ring send/recv must amortize the per-message monitor overhead ≥5×
// (EXPERIMENTS.md E16), a snapshot clone must stay ≥5× cheaper than a
// full measured build (E15), and a 4-shard fleet must beat a 1-shard
// fleet's aggregate throughput by a floor keyed on the runner's cores
// (E19 — shard concurrency is real OS-thread parallelism, so the
// floor is read off the benchmark's own "cpus" metric).
//
// `gate` is what CI runs: a `run` followed by the `compare` checks,
// re-measuring only the suites that look regressed (merging by
// fastest run) up to -retries times before failing. Nanosecond-scale
// benchmarks on shared runners see transient spikes well past any
// sane threshold; a genuine regression survives every retry — its
// floor really is slower — while a noise spike does not.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark's numbers.
type Result struct {
	NsPerOp     float64            `json:"ns_per_op"`
	OpsPerSec   float64            `json:"ops_per_sec"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// File is the JSON document both modes speak.
type File struct {
	Schema        int               `json:"schema"`
	GoVersion     string            `json:"go"`
	CalibrationNs float64           `json:"calibration_ns"`
	Benchmarks    map[string]Result `json:"benchmarks"`
}

// suites lists the tracked benchmarks: package → -bench pattern.
var suites = []struct {
	pkg     string
	pattern string
}{
	{".", "^BenchmarkThroughput$"},
	{".", "^BenchmarkCloneColdStart$"},
	{".", "^BenchmarkServeThroughput$"},
	{".", "^BenchmarkGatewayServe$"},
	{".", "^BenchmarkFleetServe$"},
	{".", "^BenchmarkTelemetryOverhead$"},
	{".", "^BenchmarkBulkThroughput$"},
	{"./internal/sm", "^BenchmarkDispatch$"},
}

// ratioChecks are machine-independent targets enforced on the new run:
// numerator / denominator must be at least min. A check whose
// benchmarks are both absent is skipped — stress soak files (E17)
// carry only the StressGateway rows — but exactly one half missing is
// still a failure (a renamed or dropped benchmark, not a different
// file kind).
var ratioChecks = []struct {
	name, num, den string
	min            float64
}{
	{"ring batching amortization (E16)",
		"BenchmarkServeThroughput/per-message", "BenchmarkServeThroughput/batched", 5},
	{"snapshot clone vs full build (E15)",
		"BenchmarkCloneColdStart/full-build", "BenchmarkCloneColdStart/clone", 5},
	// The block-compilation tier (E18). Two families of floors, both
	// within-run ratios (one process, so host-speed drift cancels to
	// first order — but the rows still run ~tens of seconds apart, so
	// the shared-host window drift of up to ±30% does NOT cancel; the
	// floors below are the measured steady ratios with that margin
	// taken off, i.e. regression tripwires, not targets):
	//
	//   fast-noblock/fast — the block tier's own contribution on top of
	//   the per-instruction fast path. Interleaved A/B measurement puts
	//   the true ratio at ~2.0x per kind; floor 1.4.
	//
	//   reference/fast — the whole fast-path stack. Measured 4-6x
	//   across windows; floor 3.
	{"block tier over per-instruction fast path, none (E18)",
		"BenchmarkThroughput/fast-noblock/none", "BenchmarkThroughput/fast/none", 1.4},
	{"block tier over per-instruction fast path, sanctum (E18)",
		"BenchmarkThroughput/fast-noblock/sanctum", "BenchmarkThroughput/fast/sanctum", 1.4},
	{"block tier over per-instruction fast path, keystone (E18)",
		"BenchmarkThroughput/fast-noblock/keystone", "BenchmarkThroughput/fast/keystone", 1.4},
	{"full fast path vs reference, none (E18)",
		"BenchmarkThroughput/reference/none", "BenchmarkThroughput/fast/none", 3},
	{"full fast path vs reference, sanctum (E18)",
		"BenchmarkThroughput/reference/sanctum", "BenchmarkThroughput/fast/sanctum", 3},
	{"full fast path vs reference, keystone (E18)",
		"BenchmarkThroughput/reference/keystone", "BenchmarkThroughput/fast/keystone", 3},
}

// telemetryOverheadFloor is the minimum off-ns/req / on-ns/req ratio
// for the BenchmarkTelemetryOverhead rows (DESIGN.md §13): the
// telemetry-off half may beat the telemetry-on half by at most ~5%.
// Both halves come from ONE benchmark row — alternating waves inside
// the same process — because separate benchmark rows drift apart by
// more than the 5% budget on a shared host; that is why this check
// reads the row's metrics rather than living in the static
// ratioChecks table above.
const telemetryOverheadFloor = 0.95

// bulkSpeedupFloor is the minimum bulk-MB/s / chunked-MB/s ratio for
// the BenchmarkBulkThroughput row (EXPERIMENTS.md E21): the zero-copy
// scatter-gather plane must move payload at least 5× faster than
// chunking the same bytes through 64-byte ring messages. Both halves
// come from ONE interleaved row (the E20 methodology), so the ratio is
// machine-independent by construction; the measured steady ratio is
// ~20×, so 5 is a regression tripwire, not a target.
const bulkSpeedupFloor = 5

// fleetScalingFloor is the minimum shards=1 / shards=4 ns ratio for
// BenchmarkFleetServe (EXPERIMENTS.md E19), keyed on the harness's
// GOMAXPROCS as reported by the benchmark's "cpus" metric. Fleet
// shards run on real OS threads, so the achievable aggregate scaling
// is bounded by the host's cores: a 4-core runner must show near-
// linear gains, a 1-core runner can at best break even and only has
// to stay within routing-overhead distance of the single shard.
// Floors sit well under the measured steady ratios — they are
// regression tripwires, not targets.
func fleetScalingFloor(cpus float64) float64 {
	switch {
	case cpus >= 4:
		return 1.8
	case cpus >= 3:
		return 1.5
	case cpus >= 2:
		return 1.2
	default:
		return 0.7
	}
}

// maxRatioChecks are ceilings: numerator / denominator must stay at
// most max. The endurance soak's tail-latency targets (E17) live here;
// the same both-absent-skip rule applies, so ordinary benchmark files
// without StressGateway rows are unaffected.
var maxRatioChecks = []struct {
	name, num, den string
	max            float64
}{
	{"endurance p99 tail (E17)",
		"StressGateway/p99", "StressGateway/p50", 8},
	{"endurance p999 tail (E17)",
		"StressGateway/p999", "StressGateway/p50", 40},
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "run":
		cmdRun(os.Args[2:])
	case "compare":
		cmdCompare(os.Args[2:])
	case "gate":
		cmdGate(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: benchjson run -out FILE [-benchtime D] [-count N]")
	fmt.Fprintln(os.Stderr, "       benchjson compare BASELINE.json NEW.json [-threshold F]")
	fmt.Fprintln(os.Stderr, "       benchjson gate -baseline FILE -out FILE [-threshold F] [-retries N]")
	os.Exit(2)
}

// runSuites executes the tracked suites whose index passes keep (nil =
// all), merging results into `into` by fastest run.
func runSuites(benchtime string, count int, keep func(i int) bool, into map[string]Result) error {
	for i, s := range suites {
		if keep != nil && !keep(i) {
			continue
		}
		cmd := exec.Command("go", "test", "-run", "^$",
			"-bench", s.pattern, "-benchtime", benchtime,
			"-count", strconv.Itoa(count), "-benchmem", s.pkg)
		cmd.Stderr = os.Stderr
		raw, err := cmd.Output()
		if err != nil {
			return fmt.Errorf("%s %q: %w", s.pkg, s.pattern, err)
		}
		parseBench(string(raw), into)
	}
	return nil
}

// suiteOf maps a benchmark name back to its suite index.
func suiteOf(name string) int {
	for i, s := range suites {
		prefix := strings.Trim(strings.SplitN(s.pattern, "/", 2)[0], "^$")
		if name == prefix || strings.HasPrefix(name, prefix+"/") {
			return i
		}
	}
	return -1
}

func writeDoc(doc File, out string) {
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	out := fs.String("out", "BENCH_PR5.json", "output JSON path")
	benchtime := fs.String("benchtime", "0.3s", "go test -benchtime value")
	count := fs.Int("count", 3, "go test -count value (fastest run kept)")
	fs.Parse(args)

	doc := File{
		Schema:        1,
		GoVersion:     runtime.Version(),
		CalibrationNs: calibrate(),
		Benchmarks:    map[string]Result{},
	}
	if err := runSuites(*benchtime, *count, nil, doc.Benchmarks); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines parsed")
		os.Exit(1)
	}
	// Calibrate again now that minutes have passed and keep the floor:
	// one calibration samples a single load window, and on a shared
	// host windows drift by ±20% — enough to swamp the regression
	// threshold when the baseline's window and the gate's window
	// disagree. The benchmarks keep their fastest runs, so the
	// calibration must be the matching least-loaded floor (the gate
	// applies the same rule across its retries).
	if cal := calibrate(); cal < doc.CalibrationNs {
		doc.CalibrationNs = cal
	}
	writeDoc(doc, *out)
	names := sortedNames(doc.Benchmarks)
	fmt.Printf("benchjson: %d benchmarks → %s (calibration %.0f ns)\n",
		len(names), *out, doc.CalibrationNs)
	for _, n := range names {
		r := doc.Benchmarks[n]
		fmt.Printf("  %-48s %12.1f ns/op %14.0f ops/s %6.0f allocs/op\n",
			n, r.NsPerOp, r.OpsPerSec, r.AllocsPerOp)
	}
}

// calibrate times a fixed pure-Go workload (xorshift over 1<<26
// words), taking the best of five runs. Its only job is to measure
// relative host speed, so `compare` can tell a slow runner from a slow
// monitor.
func calibrate() float64 {
	best := float64(0)
	for i := 0; i < 5; i++ {
		start := time.Now()
		x := uint64(0x9E3779B97F4A7C15)
		for j := 0; j < 1<<26; j++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		ns := float64(time.Since(start).Nanoseconds())
		if x == 0 { // never: defeat dead-code elimination
			fmt.Fprintln(os.Stderr, "")
		}
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// parseBench extracts benchmark lines from `go test -bench` output:
// name, iteration count, then value/unit pairs.
func parseBench(out string, into map[string]Result) {
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip the GOMAXPROCS suffix
			}
		}
		r := Result{Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
				if v > 0 {
					r.OpsPerSec = 1e9 / v
				}
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			default:
				r.Metrics[fields[i+1]] = v
			}
		}
		// With -count > 1 the same benchmark repeats; keep the fastest
		// run — the standard way to damp scheduler noise in a gate.
		if prev, seen := into[name]; seen && prev.NsPerOp > 0 && prev.NsPerOp <= r.NsPerOp {
			continue
		}
		into[name] = r
	}
}

// evaluate applies the regression threshold and the ratio targets,
// printing one verdict line per check, and returns the failure
// messages plus the names of the benchmarks that looked regressed
// (for the gate's targeted re-measurement).
func evaluate(base, cur File, threshold float64) (failures, suspects []string) {
	// Normalize by relative host speed: a runner where the calibration
	// workload takes 2× longer is expected to take 2× longer on every
	// benchmark, so only slowdowns beyond that ratio count.
	scale := 1.0
	if base.CalibrationNs > 0 && cur.CalibrationNs > 0 {
		scale = cur.CalibrationNs / base.CalibrationNs
	}
	fmt.Printf("benchjson: host-speed scale %.3f (baseline cal %.0f ns, this run %.0f ns)\n",
		scale, base.CalibrationNs, cur.CalibrationNs)

	for _, name := range sortedNames(base.Benchmarks) {
		b := base.Benchmarks[name]
		c, present := cur.Benchmarks[name]
		if !present {
			failures = append(failures, fmt.Sprintf("%s: missing from this run", name))
			continue
		}
		if b.NsPerOp <= 0 || c.NsPerOp <= 0 {
			continue
		}
		norm := c.NsPerOp / scale
		reg := norm/b.NsPerOp - 1
		verdict := "ok"
		if reg > threshold {
			verdict = "REGRESSED"
			suspects = append(suspects, name)
			failures = append(failures, fmt.Sprintf(
				"%s: %.1f ns/op vs baseline %.1f ns/op (%+.0f%% normalized, limit +%.0f%%)",
				name, c.NsPerOp, b.NsPerOp, reg*100, threshold*100))
		}
		fmt.Printf("  %-48s %12.1f → %10.1f ns/op  %+6.1f%%  %s\n",
			name, b.NsPerOp, norm, reg*100, verdict)
	}
	for _, rc := range ratioChecks {
		num, okN := cur.Benchmarks[rc.num]
		den, okD := cur.Benchmarks[rc.den]
		if !okN && !okD {
			continue // different file kind (e.g. a stress soak)
		}
		if !okN || !okD || den.NsPerOp <= 0 {
			failures = append(failures, fmt.Sprintf("%s: benchmarks missing", rc.name))
			continue
		}
		ratio := num.NsPerOp / den.NsPerOp
		verdict := "ok"
		if ratio < rc.min {
			verdict = "BELOW TARGET"
			suspects = append(suspects, rc.num, rc.den)
			failures = append(failures, fmt.Sprintf("%s: ratio %.2f× below the %.0f× target",
				rc.name, ratio, rc.min))
		}
		fmt.Printf("  %-48s %38.2f×  (target ≥%g×)  %s\n", rc.name, ratio, rc.min, verdict)
	}
	// The fleet-scaling check (E19) is a ratio floor whose target
	// depends on the runner's parallelism, so it cannot live in the
	// static ratioChecks table: the floor is picked per run from the
	// benchmark's own "cpus" metric. Both-absent skip as usual.
	{
		num, okN := cur.Benchmarks["BenchmarkFleetServe/shards=1"]
		den, okD := cur.Benchmarks["BenchmarkFleetServe/shards=4"]
		switch {
		case !okN && !okD:
			// different file kind
		case !okN || !okD || den.NsPerOp <= 0:
			failures = append(failures, "fleet aggregate scaling (E19): benchmarks missing")
		default:
			min := fleetScalingFloor(den.Metrics["cpus"])
			ratio := num.NsPerOp / den.NsPerOp
			name := fmt.Sprintf("fleet aggregate scaling (E19, %g cpus)", den.Metrics["cpus"])
			verdict := "ok"
			if ratio < min {
				verdict = "BELOW TARGET"
				suspects = append(suspects, "BenchmarkFleetServe/shards=1", "BenchmarkFleetServe/shards=4")
				failures = append(failures, fmt.Sprintf("%s: ratio %.2f× below the %g× floor",
					name, ratio, min))
			}
			fmt.Printf("  %-48s %38.2f×  (target ≥%g×)  %s\n", name, ratio, min, verdict)
		}
	}
	// The telemetry-overhead floors (E20) read both halves of the
	// comparison from one interleaved row's metrics, so they also
	// cannot live in the static ratioChecks table. A missing row is a
	// failure only in a file that has the serving benchmarks at all —
	// stress soak files skip, same as the fleet-scaling check.
	for _, tc := range []struct{ name, row string }{
		{"gateway telemetry overhead ≤5% (E20)", "BenchmarkTelemetryOverhead/gateway"},
		{"fleet telemetry overhead ≤5% (E20)", "BenchmarkTelemetryOverhead/fleet"},
	} {
		row, ok := cur.Benchmarks[tc.row]
		if !ok {
			if _, serving := cur.Benchmarks["BenchmarkGatewayServe/telemetry"]; serving {
				failures = append(failures, tc.name+": benchmark missing")
			}
			continue // different file kind (e.g. a stress soak)
		}
		on, off := row.Metrics["on-ns/req"], row.Metrics["off-ns/req"]
		if on <= 0 || off <= 0 {
			failures = append(failures, tc.name+": on/off metrics missing")
			continue
		}
		ratio := off / on
		verdict := "ok"
		if ratio < telemetryOverheadFloor {
			verdict = "BELOW TARGET"
			suspects = append(suspects, tc.row)
			failures = append(failures, fmt.Sprintf("%s: ratio %.2f× below the %g× floor",
				tc.name, ratio, telemetryOverheadFloor))
		}
		fmt.Printf("  %-48s %38.2f×  (target ≥%g×)  %s\n", tc.name, ratio, telemetryOverheadFloor, verdict)
	}
	// The bulk-plane speedup (E21) also reads both halves from one
	// interleaved row's metrics. Same skip rule: a missing row only
	// fails files that carry the serving benchmarks at all.
	{
		const name = "bulk zero-copy vs chunked messages (E21)"
		row, ok := cur.Benchmarks["BenchmarkBulkThroughput"]
		if !ok {
			if _, serving := cur.Benchmarks["BenchmarkGatewayServe/telemetry"]; serving {
				failures = append(failures, name+": benchmark missing")
			}
		} else {
			bulk, chunked := row.Metrics["bulk-MB/s"], row.Metrics["chunked-MB/s"]
			if bulk <= 0 || chunked <= 0 {
				failures = append(failures, name+": MB/s metrics missing")
			} else {
				ratio := bulk / chunked
				verdict := "ok"
				if ratio < bulkSpeedupFloor {
					verdict = "BELOW TARGET"
					suspects = append(suspects, "BenchmarkBulkThroughput")
					failures = append(failures, fmt.Sprintf("%s: ratio %.2f× below the %g× floor",
						name, ratio, float64(bulkSpeedupFloor)))
				}
				fmt.Printf("  %-48s %38.2f×  (target ≥%g×)  %s\n", name, ratio, float64(bulkSpeedupFloor), verdict)
			}
		}
	}
	for _, rc := range maxRatioChecks {
		num, okN := cur.Benchmarks[rc.num]
		den, okD := cur.Benchmarks[rc.den]
		if !okN && !okD {
			continue // ordinary benchmark file, no stress rows
		}
		if !okN || !okD || den.NsPerOp <= 0 {
			failures = append(failures, fmt.Sprintf("%s: benchmarks missing", rc.name))
			continue
		}
		ratio := num.NsPerOp / den.NsPerOp
		verdict := "ok"
		if ratio > rc.max {
			verdict = "ABOVE CEILING"
			suspects = append(suspects, rc.num, rc.den)
			failures = append(failures, fmt.Sprintf("%s: ratio %.2f× above the %.0f× ceiling",
				rc.name, ratio, rc.max))
		}
		fmt.Printf("  %-48s %38.2f×  (ceiling ≤%.0f×)  %s\n", rc.name, ratio, rc.max, verdict)
	}
	return failures, suspects
}

func cmdCompare(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.15, "max allowed throughput regression (fraction)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
	}
	failures, _ := evaluate(load(fs.Arg(0)), load(fs.Arg(1)), *threshold)
	if len(failures) > 0 {
		fmt.Fprintln(os.Stderr, "\nbenchjson: FAIL")
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  -", f)
		}
		os.Exit(1)
	}
	fmt.Println("benchjson: PASS")
}

// cmdGate is the CI entry point: measure, compare, and re-measure only
// the suites that look regressed before deciding. Transient host noise
// on nanosecond benchmarks routinely exceeds any sane threshold; a
// genuine regression survives every retry because its floor really is
// slower, while a noise spike loses to the fastest-run merge.
func cmdGate(args []string) {
	fs := flag.NewFlagSet("gate", flag.ExitOnError)
	baseline := fs.String("baseline", "BENCH_BASELINE.json", "committed baseline JSON")
	out := fs.String("out", "BENCH_PR5.json", "output JSON path (uploaded as a CI artifact)")
	benchtime := fs.String("benchtime", "0.3s", "go test -benchtime value")
	count := fs.Int("count", 3, "go test -count value (fastest run kept)")
	threshold := fs.Float64("threshold", 0.15, "max allowed throughput regression (fraction)")
	retries := fs.Int("retries", 2, "targeted re-measurements before failing")
	fs.Parse(args)

	base := load(*baseline)
	doc := File{
		Schema:        1,
		GoVersion:     runtime.Version(),
		CalibrationNs: calibrate(),
		Benchmarks:    map[string]Result{},
	}
	if err := runSuites(*benchtime, *count, nil, doc.Benchmarks); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	// Same floor rule as cmdRun: re-sample calibration after the
	// suites so the scale reflects the least-loaded window seen, not
	// whichever window the first sample happened to land in.
	if cal := calibrate(); cal < doc.CalibrationNs {
		doc.CalibrationNs = cal
	}
	var failures []string
	for attempt := 0; ; attempt++ {
		var suspects []string
		failures, suspects = evaluate(base, doc, *threshold)
		if len(failures) == 0 || attempt >= *retries {
			break
		}
		rerun := map[int]bool{}
		for _, name := range suspects {
			if i := suiteOf(name); i >= 0 {
				rerun[i] = true
			}
		}
		if len(rerun) == 0 {
			break // missing benchmarks: a retry cannot help
		}
		fmt.Printf("benchjson: re-measuring %d suite(s) (attempt %d of %d)\n",
			len(rerun), attempt+1, *retries)
		// Re-calibrate too, keeping the fastest sample: the benchmarks
		// keep their fastest runs, so the host-speed scale must be the
		// matching least-loaded floor — a genuinely slow host floors
		// high on both and still scales correctly.
		if cal := calibrate(); cal < doc.CalibrationNs {
			doc.CalibrationNs = cal
		}
		if err := runSuites(*benchtime, *count, func(i int) bool { return rerun[i] }, doc.Benchmarks); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	writeDoc(doc, *out)
	if len(failures) > 0 {
		fmt.Fprintln(os.Stderr, "\nbenchjson: FAIL")
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  -", f)
		}
		os.Exit(1)
	}
	fmt.Println("benchjson: PASS")
}

func load(path string) File {
	blob, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	var f File
	if err := json.Unmarshal(blob, &f); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", path, err)
		os.Exit(1)
	}
	return f
}

func sortedNames(m map[string]Result) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
