// Command doccheck is the CI documentation gate: every relative link
// in the repo's top-level markdown files must resolve to a real file
// or directory, and README.md must mention every examples/* directory
// so new examples cannot land without a front-door pointer.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

var linkRE = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

func main() {
	var broken []string
	mds, _ := filepath.Glob("*.md")
	for _, md := range mds {
		data, err := os.ReadFile(md)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, m := range linkRE.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			if _, err := os.Stat(filepath.Join(filepath.Dir(md), target)); err != nil {
				broken = append(broken, fmt.Sprintf("%s: broken link %q", md, m[1]))
			}
		}
	}
	readme, err := os.ReadFile("README.md")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	examples, _ := os.ReadDir("examples")
	for _, e := range examples {
		if e.IsDir() && !strings.Contains(string(readme), "examples/"+e.Name()) {
			broken = append(broken, fmt.Sprintf("README.md: examples/%s is not mentioned", e.Name()))
		}
	}
	for _, b := range broken {
		fmt.Fprintln(os.Stderr, b)
	}
	if len(broken) > 0 {
		os.Exit(1)
	}
	fmt.Printf("doccheck: %d markdown files ok, %d examples covered\n", len(mds), len(examples))
}
