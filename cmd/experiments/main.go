// Command experiments regenerates every paper artifact in one run and
// prints a paper-vs-measured table (the data behind EXPERIMENTS.md).
package main

import (
	"fmt"
	"os"

	"sanctorum"
	"sanctorum/internal/adversary"
	"sanctorum/internal/enclaves"
	"sanctorum/internal/isa"
	ios "sanctorum/internal/os"
	"sanctorum/internal/sm/api"
)

type result struct {
	id, artifact, expected, measured string
	pass                             bool
}

func main() {
	var results []result
	add := func(id, artifact, expected, measured string, pass bool) {
		results = append(results, result{id, artifact, expected, measured, pass})
	}

	// E1/E3/E4 — lifecycle and event routing, via the quickstart flow.
	for _, kind := range []sanctorum.Kind{sanctorum.Sanctum, sanctorum.Keystone} {
		sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: kind})
		if err != nil {
			fatal(err)
		}
		// Probe the versioned call ABI before driving the monitor.
		if v, err := sys.ABIVersion(); err != nil || v>>16 != api.VersionMajor {
			fatal(fmt.Errorf("monitor ABI version %#x unusable: %v", v, err))
		}
		l := enclaves.DefaultLayout()
		sharedPA, _ := sys.SetupShared(l.SharedVA)
		regions := sys.OS.FreeRegions()
		spec, _ := enclaves.Spec(l, enclaves.Adder(l), nil, regions[:1],
			[]ios.SharedMapping{{VA: l.SharedVA, PA: sharedPA}})
		built, err := sys.BuildEnclave(spec)
		if err != nil {
			fatal(err)
		}
		sys.SharedWriteWord(sharedPA, enclaves.ShInput, 10)
		res, err := sys.Enter(0, built.EID, built.TIDs[0], 1_000_000)
		if err != nil {
			fatal(err)
		}
		sum, _ := sys.SharedReadWord(sharedPA, enclaves.ShOutput)
		ok := res.Reason == 0 && sum == 55 &&
			built.Measurement == ios.ExpectedMeasurement(spec)
		add("E1/E3", fmt.Sprintf("Fig 1+3 lifecycle (%v)", kind),
			"create→load→init→enter→exit; replayable measurement",
			fmt.Sprintf("sum=55:%v meas-match:%v", sum == 55,
				built.Measurement == ios.ExpectedMeasurement(spec)), ok)
	}

	// E4 — AEX (Fig 4).
	{
		sys, _ := sanctorum.NewSystem(sanctorum.Options{Kind: sanctorum.Sanctum})
		l := enclaves.DefaultLayout()
		sharedPA, _ := sys.SetupShared(l.SharedVA)
		regions := sys.OS.FreeRegions()
		spec, _ := enclaves.Spec(l, enclaves.Counter(l), nil, regions[:1],
			[]ios.SharedMapping{{VA: l.SharedVA, PA: sharedPA}})
		built, _ := sys.BuildEnclave(spec)
		sys.OS.EnterEnclave(0, built.EID, built.TIDs[0])
		core := sys.Machine.Cores[0]
		core.TimerCmp = core.CPU.Cycles + 3000
		sys.Machine.Run(0, 1_000_000)
		c1, _ := sys.SharedReadWord(sharedPA, enclaves.ShCounter)
		// The AEX must have scrubbed the core before the OS saw it.
		leaked := 0
		for r := 1; r < isa.NumRegs; r++ {
			if core.CPU.Regs[r] != 0 {
				leaked++
			}
		}
		sys.OS.EnterEnclave(0, built.EID, built.TIDs[0])
		core.TimerCmp = core.CPU.Cycles + 1500
		sys.Machine.Run(0, int(c1))
		c2, _ := sys.SharedReadWord(sharedPA, enclaves.ShCounter)
		add("E4", "Fig 4 AEX + resume",
			"progress across de-scheduling; zero register leakage",
			fmt.Sprintf("counter %d→%d, %d regs leaked", c1, c2, leaked),
			c2 > c1 && leaked == 0)
	}

	// E5/E6 — mailboxes and local attestation (Figs 5, 6).
	{
		sys, _ := sanctorum.NewSystem(sanctorum.Options{Kind: sanctorum.Sanctum})
		lS, lR := enclaves.DefaultLayout(), enclaves.DefaultLayout()
		lR.SharedVA = 0x50002000
		regions := sys.OS.FreeRegions()
		shS, _ := sys.SetupShared(lS.SharedVA)
		shR, _ := sys.SetupShared(lR.SharedVA)
		msg := make([]byte, api.MailboxSize)
		copy(msg, "hello")
		sSpec, _ := enclaves.Spec(lS, enclaves.MailSender(lS), enclaves.SenderDataInit(msg),
			regions[:1], []ios.SharedMapping{{VA: lS.SharedVA, PA: shS}})
		expected := ios.ExpectedMeasurement(sSpec)
		rSpec, _ := enclaves.Spec(lR, enclaves.MailReceiver(lR), enclaves.ReceiverDataInit(expected),
			regions[1:2], []ios.SharedMapping{{VA: lR.SharedVA, PA: shR}})
		s, _ := sys.BuildEnclave(sSpec)
		r, _ := sys.BuildEnclave(rSpec)
		sys.SharedWriteWord(shR, enclaves.ShInput, 0)
		sys.SharedWriteWord(shR, enclaves.ShPeerEID, s.EID)
		sys.Enter(0, r.EID, r.TIDs[0], 100_000)
		sys.SharedWriteWord(shS, enclaves.ShPeerEID, r.EID)
		sys.Enter(0, s.EID, s.TIDs[0], 100_000)
		sys.SharedWriteWord(shR, enclaves.ShInput, 1)
		sys.Enter(0, r.EID, r.TIDs[0], 100_000)
		verdict, _ := sys.SharedReadWord(shR, enclaves.ShOutput)
		add("E5/E6", "Figs 5+6 mailbox local attestation",
			"receiver authenticates sender by SM-stamped measurement",
			fmt.Sprintf("verdict=%d", verdict), verdict == 1)
	}

	// E9 — the isolation comparison.
	for _, kind := range []sanctorum.Kind{sanctorum.Keystone, sanctorum.Sanctum} {
		sys, _ := sanctorum.NewSystem(sanctorum.Options{Kind: kind})
		calib, calibRegion, _, err := adversary.BuildVictim(sys, 0)
		if err != nil {
			fatal(err)
		}
		victim, victimRegion, arrayIdx, err := adversary.BuildVictim(sys, 5)
		if err != nil {
			fatal(err)
		}
		pp, err := adversary.NewPrimeProbe(sys, victimRegion, arrayIdx,
			adversary.PrimeRegionsFor(sys, victimRegion, calibRegion))
		if err != nil {
			fatal(err)
		}
		res, err := pp.Run(calib.EID, calib.TIDs[0], victim.EID, victim.TIDs[0])
		if err != nil {
			fatal(err)
		}
		if kind == sanctorum.Keystone {
			add("E9", "prime+probe on shared LLC (keystone)",
				"attack recovers the secret (outside Keystone's threat model)",
				fmt.Sprintf("guess=%d signal=%d cycles", res.Guess, res.Strength),
				res.Guess == 5 && res.Strength >= 50)
		} else {
			add("E9", "prime+probe on partitioned LLC (sanctum)",
				"no signal: page coloring closes the channel",
				fmt.Sprintf("signal=%d cycles", res.Strength),
				res.Strength < 16)
		}
	}

	// E10 — malicious OS battery.
	for _, kind := range []sanctorum.Kind{sanctorum.Sanctum, sanctorum.Keystone} {
		sys, _ := sanctorum.NewSystem(sanctorum.Options{Kind: kind})
		wins, err := adversary.MaliciousOSBattery(sys)
		if err != nil {
			fatal(err)
		}
		add("E10", fmt.Sprintf("malicious-OS battery (%v)", kind),
			"every API/memory/DMA attack refused",
			fmt.Sprintf("%d adversary wins", len(wins)), len(wins) == 0)
	}
	{
		sys, _ := sanctorum.NewSystem(sanctorum.Options{Kind: sanctorum.Baseline})
		wins, err := adversary.MaliciousOSBattery(sys)
		if err != nil {
			fatal(err)
		}
		add("E10", "malicious-OS battery (baseline control)",
			"memory attacks succeed without an isolation primitive",
			fmt.Sprintf("%d adversary wins", len(wins)), len(wins) > 0)
	}

	// E18 — block-compilation tier: a hot enclave loop is promoted into
	// fused superinstruction blocks, and the per-core counters account
	// for where instructions retired. The counter enclave spins a tight
	// loop until the timer fires, the steady-state shape the tier exists
	// for; across a de-schedule + re-enter the blocks must survive the
	// domain switch via revalidation rather than recompiling.
	for _, kind := range []sanctorum.Kind{sanctorum.Sanctum, sanctorum.Keystone} {
		sys, _ := sanctorum.NewSystem(sanctorum.Options{Kind: kind})
		l := enclaves.DefaultLayout()
		sharedPA, _ := sys.SetupShared(l.SharedVA)
		regions := sys.OS.FreeRegions()
		spec, _ := enclaves.Spec(l, enclaves.Counter(l), nil, regions[:1],
			[]ios.SharedMapping{{VA: l.SharedVA, PA: sharedPA}})
		built, _ := sys.BuildEnclave(spec)
		core := sys.Machine.Cores[0]
		steps := 0
		for round := 0; round < 2; round++ {
			sys.OS.EnterEnclave(0, built.EID, built.TIDs[0])
			// No timer armed: the run stays in the timer-idle hot loop
			// where the block tier engages, until the step budget stops
			// it mid-loop.
			res, err := sys.Machine.Run(0, 150_000)
			if err != nil {
				fatal(err)
			}
			steps += res.Steps
			// De-schedule with an external interrupt (AEX back to the
			// OS), forcing a domain switch before the next round.
			sys.Machine.InterruptCore(0)
			res, err = sys.Machine.Run(0, 50_000)
			if err != nil {
				fatal(err)
			}
			steps += res.Steps
		}
		bs := core.BlockStats()
		frac := 100 * float64(bs.Instrs) / float64(steps)
		add("E18", fmt.Sprintf("block compilation of hot enclave loop (%v)", kind),
			"hot loop promoted; most instructions retire in blocks; blocks survive re-entry",
			fmt.Sprintf("compiled=%d exec=%d instrs=%d/%d (%.0f%%) bails=%d reval=%d inval=%d",
				bs.Compiled, bs.Executions, bs.Instrs, steps, frac,
				bs.GuardBails, bs.Revalidations, bs.Invalidations),
			bs.Compiled >= 1 && frac > 50)
	}

	// E19 — fleet layer: sessions route onto independent machines, a
	// drained shard's sessions re-home after clone warm-up, and two
	// machines' enclaves get a channel only through mutual remote
	// attestation, every message bound to the transcripts.
	{
		f, err := sanctorum.NewFleet(sanctorum.FleetOptions{Kind: sanctorum.Sanctum, Shards: 2})
		if err != nil {
			fatal(err)
		}
		reqs := make([]sanctorum.FleetRequest, 24)
		for i := range reqs {
			payload := make([]byte, api.RingMsgSize)
			payload[0] = byte(i)
			reqs[i] = sanctorum.FleetRequest{
				Session: uint64(i%8) * 0x9E3779B97F4A7C15, Payload: payload,
			}
		}
		resps, err := f.Process(reqs)
		if err != nil {
			fatal(err)
		}
		echoOK := true
		for i := range reqs {
			if string(resps[i]) != string(enclaves.RingEchoExpected(reqs[i].Payload)) {
				echoOK = false
			}
		}
		victim := 0
		if f.Stats()[1].Sessions > f.Stats()[0].Sessions {
			victim = 1
		}
		moved, err := f.Drain(victim)
		if err != nil {
			fatal(err)
		}
		resps, err = f.Process(reqs)
		if err != nil {
			fatal(err)
		}
		for i := range reqs {
			if string(resps[i]) != string(enclaves.RingEchoExpected(reqs[i].Payload)) {
				echoOK = false
			}
		}
		ch, err := f.Connect(0, 1)
		if err != nil {
			fatal(err)
		}
		got, err := ch.Transfer(victim, []byte("cross-machine"))
		xferOK := err == nil && string(got) == "cross-machine"
		wire, _ := ch.Seal(0, []byte("tamper"))
		wire[4] ^= 1
		_, tampErr := ch.Deliver(1, wire)
		add("E19", "fleet sharding + cross-machine attested channel",
			"sessions survive a shard drain; channel only via mutual attestation; tampering refused",
			fmt.Sprintf("echo:%v drained=%d moved=%d transfer:%v tamper-refused:%v",
				echoOK, victim, moved, xferOK, tampErr != nil),
			echoOK && moved > 0 && xferOK && tampErr != nil)
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	// E20 — cycle-clocked telemetry plane: one traced request crosses
	// every layer boundary (router → shard → gateway → ring → worker →
	// ring → gateway) with monotone simulated-cycle stamps, and the
	// unified registry snapshot covers all five layers' namespaces
	// without the instrumented run losing determinism (the replay tests
	// enforce bit-identity; here we check coverage and span shape).
	{
		f, err := sanctorum.NewFleet(sanctorum.FleetOptions{Kind: sanctorum.Sanctum, Shards: 2})
		if err != nil {
			fatal(err)
		}
		reqs := make([]sanctorum.FleetRequest, 24)
		for i := range reqs {
			payload := make([]byte, api.RingMsgSize)
			payload[0] = byte(i)
			reqs[i] = sanctorum.FleetRequest{
				Session: uint64(i%8) * 0x9E3779B97F4A7C15, Payload: payload,
			}
		}
		tr := f.TraceNextRequest()
		if _, err := f.Process(reqs); err != nil {
			fatal(err)
		}
		spans := tr.Spans()
		wantLayers := []string{"router", "router", "shard", "gateway", "ring", "worker", "ring", "gateway"}
		chainOK := len(spans) == len(wantLayers)
		if chainOK {
			for i, s := range spans {
				if s.Layer != wantLayers[i] {
					chainOK = false
				}
			}
		}
		monotone, closed := true, true
		var prevBegin uint64
		for i, s := range spans {
			if i > 0 && s.Begin < prevBegin {
				monotone = false
			}
			prevBegin = s.Begin
			if s.End < s.Begin {
				closed = false
			}
		}
		snap := f.Telemetry().Snapshot()
		covered := snap.Counters["fleet.served"] == uint64(len(reqs)) &&
			snap.Counters["os.gateway.served"] == uint64(len(reqs)) &&
			snap.Counters["sm.call.mailbox_ring_send.count"] > 0 &&
			snap.Histograms["os.gateway.request.cycles"].Count == uint64(len(reqs)) &&
			snap.Histograms["sm.ring.recv.batch"].Count > 0
		add("E20", "cycle-clocked telemetry plane (fleet→enclave trace + unified registry)",
			"complete span chain with monotone cycle stamps; every layer visible in one snapshot",
			fmt.Sprintf("spans=%d chain:%v monotone:%v closed:%v layers-covered:%v",
				len(spans), chainOK, monotone, closed, covered),
			chainOK && monotone && closed && covered)
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	fmt.Println("Sanctorum reproduction — experiment summary (see EXPERIMENTS.md)")
	fmt.Println()
	allPass := true
	for _, r := range results {
		status := "PASS"
		if !r.pass {
			status = "FAIL"
			allPass = false
		}
		fmt.Printf("[%s] %-6s %s\n", status, r.id, r.artifact)
		fmt.Printf("         paper:    %s\n", r.expected)
		fmt.Printf("         measured: %s\n", r.measured)
	}
	fmt.Println()
	if !allPass {
		fmt.Println("RESULT: some experiments FAILED")
		os.Exit(1)
	}
	fmt.Println("RESULT: all experiments reproduce the paper's shape")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
