// Command obsdump exercises the cycle-clocked telemetry plane end to
// end (DESIGN.md §13, experiment E20): it boots a small fleet, traces
// one request from the router through shard selection, gateway
// dispatch, the enclave ring and back, then dumps the unified metrics
// registry — every layer's counters, gauges and latency histograms in
// one namespace, all stamped in simulated cycles rather than wall
// clock, so two runs of this command print byte-identical numbers.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sanctorum"
	"sanctorum/internal/enclaves"
	"sanctorum/internal/sm/api"
)

func main() {
	asJSON := flag.Bool("json", false, "emit the metrics snapshot as JSON instead of text")
	shards := flag.Int("shards", 2, "machines in the fleet")
	waves := flag.Int("waves", 3, "request waves to process before dumping")
	flag.Parse()

	f, err := sanctorum.NewFleet(sanctorum.FleetOptions{
		Kind:   sanctorum.Sanctum,
		Shards: *shards,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	reqs := make([]sanctorum.FleetRequest, 24)
	for i := range reqs {
		payload := make([]byte, api.RingMsgSize)
		payload[0] = byte(i)
		reqs[i] = sanctorum.FleetRequest{
			Session: uint64(i%8) * 0x9E3779B97F4A7C15,
			Payload: payload,
		}
	}

	// Arm the tracer for the first wave: its first request carries a
	// trace context across every layer boundary it crosses.
	tr := f.TraceNextRequest()
	for w := 0; w < *waves; w++ {
		resps, err := f.Process(reqs)
		if err != nil {
			log.Fatalf("obsdump: wave %d: %v", w, err)
		}
		for i := range reqs {
			if string(resps[i]) != string(enclaves.RingEchoExpected(reqs[i].Payload)) {
				log.Fatalf("obsdump: wave %d response %d corrupted", w, i)
			}
		}
	}

	if *asJSON {
		blob, err := f.Telemetry().Snapshot().JSON()
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(blob)
		fmt.Println()
		return
	}

	fmt.Printf("trace of request 0, wave 0 (cycle-stamped spans):\n")
	os.Stdout.WriteString(tr.Render())
	fmt.Printf("\nmetrics snapshot after %d waves × %d requests:\n", *waves, len(reqs))
	os.Stdout.WriteString(f.Telemetry().Snapshot().Text())
}
