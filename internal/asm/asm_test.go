package asm

import (
	"encoding/binary"
	"testing"

	"sanctorum/internal/isa"
)

func word(t *testing.T, bin []byte, i int) isa.Instr {
	t.Helper()
	return isa.Decode(binary.LittleEndian.Uint64(bin[i*isa.InstrSize:]))
}

func TestForwardAndBackwardBranches(t *testing.T) {
	p := New()
	p.Label("start")
	p.Li(1, 0)                           // 0
	p.Branch(isa.OpBEQ, 1, 0, "forward") // 1: +16
	p.Nop()                              // 2
	p.Label("forward")
	p.Branch(isa.OpBNE, 1, 2, "start") // 3: -24
	bin, err := p.Assemble(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := word(t, bin, 1).Imm; got != 16 {
		t.Errorf("forward branch imm = %d, want 16", got)
	}
	if got := word(t, bin, 3).Imm; got != -24 {
		t.Errorf("backward branch imm = %d, want -24", got)
	}
}

func TestJalAndCall(t *testing.T) {
	p := New()
	p.Call("fn") // 0
	p.Halt()     // 1
	p.Label("fn")
	p.Ret() // 2
	bin, err := p.Assemble(0)
	if err != nil {
		t.Fatal(err)
	}
	in := word(t, bin, 0)
	if in.Op != isa.OpJAL || in.Rd != isa.RegRA || in.Imm != 16 {
		t.Fatalf("call encoded as %v", in)
	}
}

func TestLaResolvesAbsolute(t *testing.T) {
	p := New()
	p.La(5, "data") // 0
	p.Halt()        // 1
	p.Label("data")
	p.Data64(0xDEAD) // 2
	const base = 0x40000000
	bin, err := p.Assemble(base)
	if err != nil {
		t.Fatal(err)
	}
	in := word(t, bin, 0)
	if in.Op != isa.OpLI || uint64(in.Imm) != base+2*isa.InstrSize {
		t.Fatalf("la encoded as %v", in)
	}
	if got := p.Symbols(base)["data"]; got != base+2*isa.InstrSize {
		t.Fatalf("symbol = %#x", got)
	}
}

func TestLaOutOfRangeFails(t *testing.T) {
	p := New()
	p.La(5, "x")
	p.Label("x")
	if _, err := p.Assemble(1 << 40); err == nil {
		t.Fatal("address beyond int32 accepted")
	}
}

func TestUndefinedLabel(t *testing.T) {
	p := New()
	p.J("nowhere")
	if _, err := p.Assemble(0); err == nil {
		t.Fatal("undefined label accepted")
	}
}

func TestDuplicateLabel(t *testing.T) {
	p := New()
	p.Label("a").Nop().Label("a")
	if _, err := p.Assemble(0); err == nil {
		t.Fatal("duplicate label accepted")
	}
}

func TestUnalignedBase(t *testing.T) {
	p := New()
	p.Nop()
	if _, err := p.Assemble(4); err == nil {
		t.Fatal("unaligned base accepted")
	}
}

func TestLi64SmallUsesOneWord(t *testing.T) {
	p := New()
	p.Li64(3, 42)
	if p.Len() != isa.InstrSize {
		t.Fatalf("len = %d, want one instruction", p.Len())
	}
	p2 := New()
	p2.Li64(3, 0xFFFFFFFFFFFFFFFF) // = -1, fits as sext imm
	if p2.Len() != isa.InstrSize {
		t.Fatalf("-1 took %d bytes", p2.Len())
	}
}

// Li64 must produce the exact constant when executed.
func TestLi64Execution(t *testing.T) {
	for _, v := range []uint64{0, 42, 0x8000_0000, 0xDEADBEEF_CAFEF00D, 1 << 63, ^uint64(0)} {
		p := New()
		p.Li64(3, v)
		p.Halt()
		bin, err := p.Assemble(0)
		if err != nil {
			t.Fatal(err)
		}
		cpu, bus := execBin(t, bin)
		_ = bus
		if cpu.Regs[3] != v {
			t.Errorf("Li64(%#x) produced %#x", v, cpu.Regs[3])
		}
	}
}

// Fibonacci via the assembler end-to-end on the interpreter.
func TestFibonacciProgram(t *testing.T) {
	p := New()
	p.Li(1, 0) // a
	p.Li(2, 1) // b
	p.Li(3, 10)
	p.Label("loop")
	p.I(isa.OpADD, 4, 1, 2, 0) // t = a+b
	p.Mv(1, 2)
	p.Mv(2, 4)
	p.I(isa.OpADDI, 3, 3, 0, -1)
	p.Branch(isa.OpBNE, 3, 0, "loop")
	p.Halt()
	bin, err := p.Assemble(0)
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := execBin(t, bin)
	if cpu.Regs[1] != 55 { // fib(10)
		t.Fatalf("fib = %d, want 55", cpu.Regs[1])
	}
}

// Data words are addressable and loadable via La.
func TestDataAccess(t *testing.T) {
	p := New()
	p.La(1, "tbl")
	p.I(isa.OpLD, 2, 1, 0, 8) // second entry
	p.Halt()
	p.Label("tbl")
	p.Data64(111, 222, 333)
	bin, err := p.Assemble(0)
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := execBin(t, bin)
	if cpu.Regs[2] != 222 {
		t.Fatalf("loaded %d, want 222", cpu.Regs[2])
	}
}

// --- minimal bus for executing assembled binaries ---

type sliceBus struct{ mem []byte }

func (b *sliceBus) FetchInstr(va uint64) (uint64, uint64, *isa.MemFault) {
	if va+8 > uint64(len(b.mem)) {
		return 0, 1, &isa.MemFault{Kind: isa.FaultAccess, Addr: va}
	}
	return binary.LittleEndian.Uint64(b.mem[va:]), 1, nil
}

func (b *sliceBus) Load(va uint64, width int) (uint64, uint64, *isa.MemFault) {
	if va+uint64(width) > uint64(len(b.mem)) {
		return 0, 1, &isa.MemFault{Kind: isa.FaultAccess, Addr: va}
	}
	var v uint64
	for i := width - 1; i >= 0; i-- {
		v = v<<8 | uint64(b.mem[va+uint64(i)])
	}
	return v, 1, nil
}

func (b *sliceBus) Store(va uint64, width int, val uint64) (uint64, *isa.MemFault) {
	if va+uint64(width) > uint64(len(b.mem)) {
		return 1, &isa.MemFault{Kind: isa.FaultAccess, Addr: va}
	}
	for i := 0; i < width; i++ {
		b.mem[va+uint64(i)] = byte(val >> (8 * uint(i)))
	}
	return 1, nil
}

func execBin(t *testing.T, bin []byte) (*isa.CPU, *sliceBus) {
	t.Helper()
	bus := &sliceBus{mem: make([]byte, 65536)}
	copy(bus.mem, bin)
	cpu := &isa.CPU{}
	for i := 0; i < 100000; i++ {
		if tr := cpu.Step(bus); tr != nil {
			if tr.Cause != isa.CauseHalt {
				t.Fatalf("unexpected trap: %v", tr)
			}
			return cpu, bus
		}
	}
	t.Fatal("program did not halt")
	return nil, nil
}
