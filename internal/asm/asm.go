// Package asm is a small label-resolving assembler for SRV64 programs.
// OS processes, enclave binaries, and adversarial payloads throughout
// the repository are written against it; Assemble produces the byte
// image that the untrusted OS hands to the security monitor's
// load_page calls (and which the SM therefore measures).
package asm

import (
	"encoding/binary"
	"fmt"
	"math"

	"sanctorum/internal/isa"
)

type fixupKind uint8

const (
	fixRelative fixupKind = iota // imm = (target - here) in bytes
	fixAbsolute                  // imm = base + target*8; must fit int32
)

type fixup struct {
	word  int
	label string
	kind  fixupKind
}

// TempReg is reserved for assembler-expanded sequences (Li64); programs
// should not use it for their own values.
const TempReg = 31

// Program accumulates instructions, data and labels.
type Program struct {
	words  []uint64
	labels map[string]int
	fixups []fixup
	errs   []error
}

// New returns an empty program.
func New() *Program {
	return &Program{labels: make(map[string]int)}
}

// Len returns the current size of the program in bytes.
func (p *Program) Len() int { return len(p.words) * isa.InstrSize }

// I appends a raw instruction.
func (p *Program) I(op isa.Op, rd, rs1, rs2 uint8, imm int32) *Program {
	p.words = append(p.words, isa.Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2, Imm: imm}.Encode())
	return p
}

// Label defines name at the current position.
func (p *Program) Label(name string) *Program {
	if _, dup := p.labels[name]; dup {
		p.errs = append(p.errs, fmt.Errorf("asm: duplicate label %q", name))
		return p
	}
	p.labels[name] = len(p.words)
	return p
}

// Branch appends a conditional branch to a label.
func (p *Program) Branch(op isa.Op, rs1, rs2 uint8, label string) *Program {
	p.fixups = append(p.fixups, fixup{word: len(p.words), label: label, kind: fixRelative})
	return p.I(op, 0, rs1, rs2, 0)
}

// Jal appends a jump-and-link to a label.
func (p *Program) Jal(rd uint8, label string) *Program {
	p.fixups = append(p.fixups, fixup{word: len(p.words), label: label, kind: fixRelative})
	return p.I(isa.OpJAL, rd, 0, 0, 0)
}

// La loads the absolute address of a label into rd. The resolved
// address must fit in a sign-extended 32-bit immediate.
func (p *Program) La(rd uint8, label string) *Program {
	p.fixups = append(p.fixups, fixup{word: len(p.words), label: label, kind: fixAbsolute})
	return p.I(isa.OpLI, rd, 0, 0, 0)
}

// Convenience pseudo-instructions.

// Li loads a 32-bit signed immediate.
func (p *Program) Li(rd uint8, v int32) *Program { return p.I(isa.OpLI, rd, 0, 0, v) }

// Li64 loads an arbitrary 64-bit constant using TempReg.
func (p *Program) Li64(rd uint8, v uint64) *Program {
	if int64(v) >= math.MinInt32 && int64(v) <= math.MaxInt32 {
		return p.Li(rd, int32(int64(v)))
	}
	p.Li(rd, int32(uint32(v>>32)))
	p.I(isa.OpSLLI, rd, rd, 0, 32)
	p.Li(TempReg, int32(uint32(v)))
	p.I(isa.OpSLLI, TempReg, TempReg, 0, 32)
	p.I(isa.OpSRLI, TempReg, TempReg, 0, 32)
	return p.I(isa.OpOR, rd, rd, TempReg, 0)
}

// Mv copies rs1 into rd.
func (p *Program) Mv(rd, rs1 uint8) *Program { return p.I(isa.OpADDI, rd, rs1, 0, 0) }

// Call jumps to a label, linking in ra.
func (p *Program) Call(label string) *Program { return p.Jal(isa.RegRA, label) }

// J jumps to a label without linking.
func (p *Program) J(label string) *Program { return p.Jal(isa.RegZero, label) }

// Ret returns via ra.
func (p *Program) Ret() *Program { return p.I(isa.OpJALR, isa.RegZero, isa.RegRA, 0, 0) }

// Ecall appends an environment call.
func (p *Program) Ecall() *Program { return p.I(isa.OpECALL, 0, 0, 0, 0) }

// Halt stops the core.
func (p *Program) Halt() *Program { return p.I(isa.OpHALT, 0, 0, 0, 0) }

// Nop appends a no-op.
func (p *Program) Nop() *Program { return p.I(isa.OpNOP, 0, 0, 0, 0) }

// Data64 appends raw 8-byte data words (give them labels to address them).
func (p *Program) Data64(vals ...uint64) *Program {
	p.words = append(p.words, vals...)
	return p
}

// Assemble resolves all labels against the given base virtual address
// and returns the binary image.
func (p *Program) Assemble(base uint64) ([]byte, error) {
	if len(p.errs) > 0 {
		return nil, p.errs[0]
	}
	if base%isa.InstrSize != 0 {
		return nil, fmt.Errorf("asm: base %#x not %d-byte aligned", base, isa.InstrSize)
	}
	out := make([]uint64, len(p.words))
	copy(out, p.words)
	for _, f := range p.fixups {
		target, ok := p.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("asm: undefined label %q", f.label)
		}
		in := isa.Decode(out[f.word])
		switch f.kind {
		case fixRelative:
			off := int64(target-f.word) * isa.InstrSize
			if off < math.MinInt32 || off > math.MaxInt32 {
				return nil, fmt.Errorf("asm: branch to %q out of range (%d bytes)", f.label, off)
			}
			in.Imm = int32(off)
		case fixAbsolute:
			addr := base + uint64(target)*isa.InstrSize
			if int64(addr) < math.MinInt32 || int64(addr) > math.MaxInt32 {
				return nil, fmt.Errorf("asm: address of %q (%#x) does not fit in an immediate", f.label, addr)
			}
			in.Imm = int32(addr)
		}
		out[f.word] = in.Encode()
	}
	bin := make([]byte, len(out)*isa.InstrSize)
	for i, w := range out {
		binary.LittleEndian.PutUint64(bin[i*isa.InstrSize:], w)
	}
	return bin, nil
}

// Symbols returns the address of every label for a given base.
func (p *Program) Symbols(base uint64) map[string]uint64 {
	syms := make(map[string]uint64, len(p.labels))
	for name, idx := range p.labels {
		syms[name] = base + uint64(idx)*isa.InstrSize
	}
	return syms
}
