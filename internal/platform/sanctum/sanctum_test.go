package sanctum

import (
	"testing"

	"sanctorum/internal/hw/machine"
	"sanctorum/internal/hw/mem"
	"sanctorum/internal/hw/pt"
	"sanctorum/internal/hw/tlb"
	"sanctorum/internal/os"
	"sanctorum/internal/sm"
	"sanctorum/internal/sm/api"
	"sanctorum/internal/sm/boot"
)

func newMachine(t *testing.T) *machine.Machine {
	t.Helper()
	m, err := machine.New(machine.DefaultConfig(machine.IsolationSanctum))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestApplyViewsProgramCoreState(t *testing.T) {
	m := newMachine(t)
	p := New()
	c := m.Cores[0]

	osSet := m.DRAM.Full().Clear(7)
	if err := p.ApplyOSView(c, osSet); err != nil {
		t.Fatal(err)
	}
	if c.EnclaveMode || c.ESatp != 0 || c.EvMask != 0 || c.EncRegions != 0 {
		t.Fatalf("OS view left enclave state: %+v", c)
	}
	if c.OSRegions != osSet {
		t.Fatalf("OS regions %#x, want %#x", c.OSRegions, osSet)
	}

	view := sm.EnclaveView{
		RootPPN:   42,
		EvBase:    0x4000000000,
		EvMask:    ^uint64(1<<21 - 1),
		Regions:   m.DRAM.Full().Clear(0) & 0xF0,
		OSRegions: osSet,
	}
	if err := p.ApplyEnclaveView(c, view); err != nil {
		t.Fatal(err)
	}
	if !c.EnclaveMode || c.ESatp != 42 || c.EvBase != view.EvBase ||
		c.EncRegions != view.Regions || c.OSRegions != osSet {
		t.Fatalf("enclave view not programmed: %+v", c)
	}

	refreshed := osSet.Clear(3)
	if err := p.RefreshOSRegions(c, refreshed); err != nil {
		t.Fatal(err)
	}
	if c.OSRegions != refreshed || !c.EnclaveMode {
		t.Fatal("refresh disturbed the enclave view")
	}
}

func TestCleanRegionScrubsMemoryAndCaches(t *testing.T) {
	m := newMachine(t)
	p := New()
	r := 3
	base := m.DRAM.Base(r)
	if err := m.Mem.WriteBytes(base+100, []byte{0xAA, 0xBB}); err != nil {
		t.Fatal(err)
	}
	m.L2.Access(base + 100)
	m.Cores[0].L1.Access(base + 100)
	m.Cores[1].L1.Access(base + 100)

	if err := p.CleanRegion(m, r); err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 2)
	if err := m.Mem.ReadBytes(base+100, b); err != nil {
		t.Fatal(err)
	}
	if b[0] != 0 || b[1] != 0 {
		t.Fatalf("region contents survived cleaning: %x", b)
	}
	if m.L2.Probe(base + 100) {
		t.Fatal("L2 line survived cleaning")
	}
	for i, c := range m.Cores {
		if c.L1.Probe(base + 100) {
			t.Fatalf("core %d L1 line survived cleaning", i)
		}
	}
}

func TestShootdownRegionFlushesAllTLBs(t *testing.T) {
	m := newMachine(t)
	p := New()
	r := 5
	inside := m.DRAM.Base(r) >> mem.PageBits
	outside := m.DRAM.Base(r+1) >> mem.PageBits
	for _, c := range m.Cores {
		c.TLB.Insert(tlb.Entry{VPN: 0x100, PPN: inside})
		c.TLB.Insert(tlb.Entry{VPN: 0x200, PPN: outside})
	}
	p.ShootdownRegion(m, r)
	for i, c := range m.Cores {
		if _, hit := c.TLB.Lookup(0x100); hit {
			t.Fatalf("core %d kept a translation into the shot-down region", i)
		}
		if _, hit := c.TLB.Lookup(0x200); !hit {
			t.Fatalf("core %d lost an unrelated translation", i)
		}
	}
}

// TestUnifiedABIOnSanctum drives the full enclave-build sequence over
// the monitor's unified call ABI — batched submissions through the
// smcall client — on the Sanctum backend, and checks the dispatch
// layer's per-domain authorization holds with region isolation active.
func TestUnifiedABIOnSanctum(t *testing.T) {
	m := newMachine(t)
	mfr := boot.NewManufacturer("acme", []byte("seed"))
	dev := mfr.Provision("dev", []byte("root-secret"))
	id, err := dev.Boot([]byte("sanctum abi test"))
	if err != nil {
		t.Fatal(err)
	}
	smRegion := m.DRAM.RegionCount - 1
	mon, err := sm.New(sm.Config{
		Machine: m, Platform: New(), Identity: id, SMRegions: []int{smRegion},
	})
	if err != nil {
		t.Fatal(err)
	}
	o, err := os.New(m, mon, 0, m.DRAM.RegionCount-2)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := o.ABIVersion(); err != nil || v != api.Version {
		t.Fatalf("abi version %#x (%v), want %#x", v, err, uint64(api.Version))
	}

	evBase, evMask := uint64(0x4000000000), ^uint64(1<<21-1)
	spec := &os.EnclaveSpec{
		EvBase: evBase, EvMask: evMask, Regions: []int{3},
		Pages: []os.EnclavePage{
			{VA: evBase, Perms: pt.R | pt.X, Data: []byte{0x13}},
			{VA: evBase + 0x1000, Perms: pt.R | pt.W, Data: []byte("data")},
		},
		Threads: []os.ThreadSpec{{EntryVA: evBase, StackVA: evBase + 0x2000}},
	}
	built, err := o.BuildEnclave(spec)
	if err != nil {
		t.Fatal(err)
	}
	if built.Measurement != os.ExpectedMeasurement(spec) {
		t.Fatal("ABI-built measurement does not match the replayed transcript")
	}
	// The granted region left the OS domain on this backend: the
	// monitor reports it enclave-owned and the per-core Sanctum view
	// lost it.
	st, owner, err := o.SM.RegionInfo(3)
	if err != nil || st != api.RegionOwned || owner != built.EID {
		t.Fatalf("region 3 after grant: state=%v owner=%#x err=%v", st, owner, err)
	}
	if m.Cores[0].OSRegions.Has(3) {
		t.Fatal("core 0 OS view still contains the enclave's region")
	}
	if err := o.WriteOwned(m.DRAM.Base(3), []byte{1}); err == nil {
		t.Fatal("OS wrote into the enclave-owned region")
	}
	// The host cannot speak for the enclave through the same surface.
	resp := mon.Dispatch(api.Request{Caller: built.EID, Call: api.CallMyEnclaveID})
	if resp.Status != api.ErrUnauthorized {
		t.Fatalf("forged enclave caller: %v, want ErrUnauthorized", resp.Status)
	}
}
