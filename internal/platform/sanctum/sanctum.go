// Package sanctum implements the MIT Sanctum processor backend of the
// security monitor (paper §VII-A): memory is isolated as fixed-size
// DRAM regions whose cache footprints are disjoint in the page-colored
// LLC, enclave virtual ranges are translated by a private page walk,
// and region re-allocation triggers TLB shootdowns under the page-walk
// invariant.
package sanctum

import (
	"sanctorum/internal/hw/dram"
	"sanctorum/internal/hw/machine"
	"sanctorum/internal/hw/mem"
	"sanctorum/internal/hw/tlb"
	"sanctorum/internal/sm"
)

// Platform is the Sanctum isolation backend.
type Platform struct{}

var _ sm.Platform = Platform{}

// New returns the Sanctum platform adapter.
func New() Platform { return Platform{} }

// Kind implements sm.Platform.
func (Platform) Kind() machine.IsolationKind { return machine.IsolationSanctum }

// ApplyOSView programs a core for untrusted execution: enclave
// translation state cleared, OS region bitmap installed. The OS manages
// its own page-table root (Satp) — Sanctum only constrains which
// physical regions any translation may reach.
func (Platform) ApplyOSView(c *machine.Core, osRegions dram.Bitmap) error {
	c.EnclaveMode = false
	c.ESatp = 0
	c.EvBase, c.EvMask = 0, 0
	c.EncRegions = 0
	c.OSRegions = osRegions
	return nil
}

// ApplyEnclaveView programs a core to run an enclave: the private page
// walk root (ESatp) serves evrange, the enclave's region bitmap bounds
// it, and accesses outside evrange continue through the OS root against
// the OS bitmap (shared memory, §V-C).
func (Platform) ApplyEnclaveView(c *machine.Core, v sm.EnclaveView) error {
	c.EnclaveMode = true
	c.ESatp = v.RootPPN
	c.EvBase, c.EvMask = v.EvBase, v.EvMask
	c.EncRegions = v.Regions
	c.OSRegions = v.OSRegions
	return nil
}

// RefreshOSRegions updates the OS bitmap without disturbing the rest of
// the core state.
func (Platform) RefreshOSRegions(c *machine.Core, osRegions dram.Bitmap) error {
	c.OSRegions = osRegions
	return nil
}

// CleanRegion zeroes a region's memory and flushes its footprint from
// the shared LLC and every private L1, so the next owner observes
// neither data nor cache-tag state from the previous one (Fig 2:
// clean(resource)). The per-core L1 flushes are delivered through each
// core's IPI mailbox: a running hart performs its own flush at an
// instruction boundary, an idle hart's flush executes synchronously on
// this goroutine. The call returns only after every hart acknowledged.
func (Platform) CleanRegion(m *machine.Machine, r int) error {
	base := m.DRAM.Base(r)
	size := m.DRAM.RegionSize()
	if err := m.Mem.ZeroRange(base, size); err != nil {
		return err
	}
	l2Line := m.L2.Config().LineBits
	m.L2.FlushIf(func(lineAddr uint64) bool {
		return m.DRAM.RegionOf(lineAddr<<l2Line) == r
	})
	for _, c := range m.Cores {
		m.RunOn(c.ID, machine.NoHart, func(c *machine.Core) {
			l1Line := c.L1.Config().LineBits
			c.L1.FlushIf(func(lineAddr uint64) bool {
				return m.DRAM.RegionOf(lineAddr<<l1Line) == r
			})
		})
	}
	return nil
}

// ShootdownRegion removes all TLB translations targeting region r on
// every core (the page-walk invariant of §VII-A requires this whenever
// a region changes protection domain). Each core's flush travels as an
// inter-processor interrupt acknowledged at an instruction boundary;
// the call returns once all cores have acknowledged, which is when the
// paper's invariant is re-established machine-wide.
func (Platform) ShootdownRegion(m *machine.Machine, r int) {
	layout := m.DRAM
	for _, c := range m.Cores {
		m.RunOn(c.ID, machine.NoHart, func(c *machine.Core) {
			c.TLB.FlushIf(func(e tlb.Entry) bool {
				return layout.RegionOf(e.PPN<<mem.PageBits) == r
			})
		})
	}
}
