package keystone

import (
	"testing"

	"sanctorum/internal/hw/dram"
	"sanctorum/internal/hw/machine"
	"sanctorum/internal/hw/pmp"
	"sanctorum/internal/hw/pt"
	"sanctorum/internal/os"
	"sanctorum/internal/sm"
	"sanctorum/internal/sm/api"
	"sanctorum/internal/sm/boot"
)

func newMachine(t *testing.T) (*machine.Machine, *Platform) {
	t.Helper()
	cfg := machine.DefaultConfig(machine.IsolationKeystone)
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	smRegion := cfg.DRAM.RegionCount - 1
	return m, New(cfg.DRAM, []int{smRegion})
}

func TestOSViewDeniesSMAndEnclaveRegions(t *testing.T) {
	m, p := newMachine(t)
	c := m.Cores[0]
	smRegion := m.DRAM.RegionCount - 1
	encRegion := 4

	p.NoteEnclaveRegions(dram.Bitmap(0).Set(encRegion))
	osSet := m.DRAM.Full().Clear(smRegion).Clear(encRegion)
	if err := p.ApplyOSView(c, osSet); err != nil {
		t.Fatal(err)
	}
	if c.PMP.Check(m.DRAM.Base(smRegion), 8, pmp.R, pmp.ModeS) {
		t.Fatal("OS view grants access to the SM region")
	}
	if c.PMP.Check(m.DRAM.Base(encRegion), 8, pmp.R, pmp.ModeS) {
		t.Fatal("OS view grants access to an enclave-owned region")
	}
	if !c.PMP.Check(m.DRAM.Base(1), 8, pmp.R|pmp.W, pmp.ModeS) {
		t.Fatal("OS view denies an OS-owned region")
	}
}

func TestEnclaveViewOpensOwnRegionsOnly(t *testing.T) {
	m, p := newMachine(t)
	c := m.Cores[0]
	smRegion := m.DRAM.RegionCount - 1
	own := dram.Bitmap(0).Set(6)
	other := dram.Bitmap(0).Set(7)
	p.NoteEnclaveRegions(own | other)

	if err := p.ApplyEnclaveView(c, sm.EnclaveView{
		RootPPN: 99,
		Regions: own,
	}); err != nil {
		t.Fatal(err)
	}
	if c.Satp != 99 {
		t.Fatalf("enclave satp %d", c.Satp)
	}
	if !c.PMP.Check(m.DRAM.Base(6), 8, pmp.R|pmp.W|pmp.X, pmp.ModeU) {
		t.Fatal("enclave denied its own region")
	}
	if c.PMP.Check(m.DRAM.Base(7), 8, pmp.R, pmp.ModeU) {
		t.Fatal("enclave granted another enclave's region")
	}
	if c.PMP.Check(m.DRAM.Base(smRegion), 8, pmp.R, pmp.ModeU) {
		t.Fatal("enclave granted the SM region")
	}
}

func TestRefreshOSRegionsRecomputesDenySet(t *testing.T) {
	m, p := newMachine(t)
	c := m.Cores[0]
	smRegion := m.DRAM.RegionCount - 1
	// Regions 2 and 3 leave the OS set (granted away): they must become
	// inaccessible on refresh without a full ApplyOSView.
	osSet := m.DRAM.Full().Clear(smRegion).Clear(2).Clear(3)
	if err := p.RefreshOSRegions(c, osSet); err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{2, 3, smRegion} {
		if c.PMP.Check(m.DRAM.Base(r), 8, pmp.R, pmp.ModeS) {
			t.Fatalf("refresh left region %d accessible", r)
		}
	}
	if !c.PMP.Check(m.DRAM.Base(1), 8, pmp.R, pmp.ModeS) {
		t.Fatal("refresh revoked an OS-owned region")
	}
}

// TestPMPEntryExhaustion models the real Keystone limitation: more
// protected regions than PMP entries cannot be expressed.
func TestPMPEntryExhaustion(t *testing.T) {
	m, p := newMachine(t)
	c := m.Cores[0]
	var deny dram.Bitmap
	for r := 0; r < pmp.NumEntries; r++ { // denies + catch-all > NumEntries
		deny = deny.Set(r)
	}
	p.NoteEnclaveRegions(deny)
	if err := p.ApplyOSView(c, m.DRAM.Full()&^deny); err == nil {
		t.Fatal("programming more deny entries than the PMP holds succeeded")
	}
}

// TestUnifiedABIOnKeystone drives the enclave-build sequence over the
// unified call ABI on the PMP backend: the batched client path must
// produce the canonical measurement, and a granted region must vanish
// from the OS's PMP-checked view.
func TestUnifiedABIOnKeystone(t *testing.T) {
	m, p := newMachine(t)
	mfr := boot.NewManufacturer("acme", []byte("seed"))
	dev := mfr.Provision("dev", []byte("root-secret"))
	id, err := dev.Boot([]byte("keystone abi test"))
	if err != nil {
		t.Fatal(err)
	}
	mon, err := sm.New(sm.Config{
		Machine: m, Platform: p, Identity: id,
		SMRegions: []int{m.DRAM.RegionCount - 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	o, err := os.New(m, mon, 0, m.DRAM.RegionCount-2)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := o.ABIVersion(); err != nil || v != api.Version {
		t.Fatalf("abi version %#x (%v), want %#x", v, err, uint64(api.Version))
	}

	evBase, evMask := uint64(0x4000000000), ^uint64(1<<21-1)
	spec := &os.EnclaveSpec{
		EvBase: evBase, EvMask: evMask, Regions: []int{3},
		Pages: []os.EnclavePage{
			{VA: evBase, Perms: pt.R | pt.X, Data: []byte{0x13}},
		},
		Threads: []os.ThreadSpec{{EntryVA: evBase, StackVA: evBase + 0x2000}},
	}
	built, err := o.BuildEnclave(spec)
	if err != nil {
		t.Fatal(err)
	}
	if built.Measurement != os.ExpectedMeasurement(spec) {
		t.Fatal("ABI-built measurement does not match the replayed transcript")
	}
	st, owner, err := o.SM.RegionInfo(3)
	if err != nil || st != api.RegionOwned || owner != built.EID {
		t.Fatalf("region 3 after grant: state=%v owner=%#x err=%v", st, owner, err)
	}
	if err := o.WriteOwned(m.DRAM.Base(3), []byte{1}); err == nil {
		t.Fatal("OS wrote into the enclave-owned region despite PMP")
	}
	resp := mon.Dispatch(api.Request{Caller: built.EID, Call: api.CallMyEnclaveID})
	if resp.Status != api.ErrUnauthorized {
		t.Fatalf("forged enclave caller: %v, want ErrUnauthorized", resp.Status)
	}
}
