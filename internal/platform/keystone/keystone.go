// Package keystone implements the Keystone backend of the security
// monitor (paper §VII-B): isolation comes from RISC-V Physical Memory
// Protection instead of Sanctum's hardware changes. The monitor's state
// and every enclave's memory are expressed as PMP entries; the LLC is
// NOT partitioned — exactly the threat-model difference the paper
// notes, and the one the side-channel experiments (E9) demonstrate.
//
// Entry layout per core: entry 0 denies the SM's own regions; the next
// entries deny (while the OS runs) or skip (while the owning enclave
// runs) each enclave-owned region; the final entry is an allow-all
// catch-all. Deny-before-allow priority does the rest. A machine whose
// enclaves collectively own more regions than PMP entries cannot be
// expressed — grants then fail with ErrNoResources, a real Keystone
// limitation (PMP entry exhaustion).
package keystone

import (
	"fmt"
	"sync"

	"sanctorum/internal/hw/dram"
	"sanctorum/internal/hw/machine"
	"sanctorum/internal/hw/mem"
	"sanctorum/internal/hw/pmp"
	"sanctorum/internal/hw/tlb"
	"sanctorum/internal/sm"
)

// Platform is the Keystone isolation backend.
type Platform struct {
	smRegions dram.Bitmap
	layout    dram.Layout

	// mu guards enclaveOwned: view switches on different harts update
	// it concurrently. PMP programming itself is per-core state and is
	// covered by the caller's core ownership.
	mu sync.Mutex

	// enclaveOwned tracks regions owned by any enclave so OS views can
	// deny them. It is maintained from the views the monitor applies.
	enclaveOwned dram.Bitmap
}

var _ sm.Platform = (*Platform)(nil)

// New returns a Keystone platform adapter. smRegions are the monitor's
// own regions (protected from all S/U-mode software).
func New(layout dram.Layout, smRegions []int) *Platform {
	p := &Platform{layout: layout}
	for _, r := range smRegions {
		p.smRegions = p.smRegions.Set(r)
	}
	return p
}

// Kind implements sm.Platform.
func (p *Platform) Kind() machine.IsolationKind { return machine.IsolationKeystone }

// NoteEnclaveRegions informs the adapter of the current set of
// enclave-owned regions. The monitor's region bookkeeping drives this
// through the view-refresh calls; it is exported for tests.
func (p *Platform) NoteEnclaveRegions(b dram.Bitmap) {
	p.mu.Lock()
	p.enclaveOwned = b
	p.mu.Unlock()
}

// program writes the PMP entry set: deny entries for every region in
// deny, then a catch-all allow.
func (p *Platform) program(c *machine.Core, deny dram.Bitmap) error {
	denies := deny.Regions()
	if len(denies)+1 > pmp.NumEntries {
		return fmt.Errorf("keystone: %d deny entries exceed the %d-entry PMP", len(denies), pmp.NumEntries)
	}
	i := 0
	for _, r := range denies {
		if err := c.PMP.Configure(i, pmp.Entry{
			Valid: true,
			Base:  p.layout.Base(r),
			Size:  p.layout.RegionSize(),
			Perm:  0, // no access for S/U
		}); err != nil {
			return err
		}
		i++
	}
	// Catch-all allow for the rest of memory.
	if err := c.PMP.Configure(pmp.NumEntries-1, pmp.Entry{
		Valid: true,
		Base:  0,
		Size:  p.layout.MemorySize(),
		Perm:  pmp.R | pmp.W | pmp.X,
	}); err != nil {
		return err
	}
	// Clear stale entries between the denies and the catch-all.
	for ; i < pmp.NumEntries-1; i++ {
		if err := c.PMP.Clear(i); err != nil {
			return err
		}
	}
	return nil
}

// ApplyOSView hides the SM and every enclave-owned region from the OS.
// The enclave's address space root is dropped; the OS re-installs its
// own Satp when it schedules something.
func (p *Platform) ApplyOSView(c *machine.Core, osRegions dram.Bitmap) error {
	c.EnclaveMode = false
	c.Satp = 0
	c.ESatp = 0
	c.EvBase, c.EvMask = 0, 0
	c.EncRegions = 0
	c.OSRegions = osRegions
	p.mu.Lock()
	deny := p.smRegions | p.enclaveOwned
	p.mu.Unlock()
	// Everything not owned by the OS (and not plain available) is
	// denied: SM regions plus enclave-owned regions.
	return p.program(c, deny)
}

// ApplyEnclaveView opens the running enclave's own regions while still
// denying the SM and all other enclaves. Keystone enclaves translate
// every access through their own page table (loaded into Satp).
func (p *Platform) ApplyEnclaveView(c *machine.Core, v sm.EnclaveView) error {
	c.EnclaveMode = true
	c.Satp = v.RootPPN // the enclave brings its own address space
	c.EvBase, c.EvMask = v.EvBase, v.EvMask
	c.OSRegions = v.OSRegions
	p.mu.Lock()
	p.enclaveOwned |= v.Regions
	deny := (p.smRegions | p.enclaveOwned) &^ v.Regions
	p.mu.Unlock()
	return p.program(c, deny)
}

// RefreshOSRegions reprograms the deny set after region transitions.
func (p *Platform) RefreshOSRegions(c *machine.Core, osRegions dram.Bitmap) error {
	c.OSRegions = osRegions
	// Regions owned by neither the OS nor the SM are enclave-owned or
	// in transition; deny them all to S/U software on this core.
	full := p.layout.Full()
	p.mu.Lock()
	p.enclaveOwned = full &^ osRegions &^ p.smRegions
	deny := p.smRegions | p.enclaveOwned
	p.mu.Unlock()
	return p.program(c, deny)
}

// CleanRegion zeroes the region and flushes its cache footprint. The
// shared LLC is not partitioned under Keystone, but cleaning on
// re-allocation is still required for confidentiality of the contents.
// Per-core L1 flushes travel as IPI mailbox requests acknowledged at
// instruction boundaries.
func (p *Platform) CleanRegion(m *machine.Machine, r int) error {
	base := m.DRAM.Base(r)
	if err := m.Mem.ZeroRange(base, m.DRAM.RegionSize()); err != nil {
		return err
	}
	l2Line := m.L2.Config().LineBits
	m.L2.FlushIf(func(lineAddr uint64) bool {
		return m.DRAM.RegionOf(lineAddr<<l2Line) == r
	})
	for _, c := range m.Cores {
		m.RunOn(c.ID, machine.NoHart, func(c *machine.Core) {
			l1Line := c.L1.Config().LineBits
			c.L1.FlushIf(func(lineAddr uint64) bool {
				return m.DRAM.RegionOf(lineAddr<<l1Line) == r
			})
		})
	}
	return nil
}

// ShootdownRegion invalidates TLB entries into the region on all cores,
// as IPIs acknowledged at instruction boundaries; returns once every
// core has acknowledged.
func (p *Platform) ShootdownRegion(m *machine.Machine, r int) {
	layout := m.DRAM
	for _, c := range m.Cores {
		m.RunOn(c.ID, machine.NoHart, func(c *machine.Core) {
			c.TLB.FlushIf(func(e tlb.Entry) bool {
				return layout.RegionOf(e.PPN<<mem.PageBits) == r
			})
		})
	}
}
