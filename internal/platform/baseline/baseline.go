// Package baseline is the insecure control platform for the paper's
// comparison experiments: it implements the sm.Platform interface with
// no physical memory protection at all (the machine's IsolationNone
// mode lets every access through). The monitor's state machine still
// runs — measurements, lifecycles, mailboxes — but nothing stops the
// OS from reading enclave memory directly, which is exactly what the
// E10 experiments demonstrate (and why the paper's hardware
// requirements in §IV-B are requirements).
package baseline

import (
	"sanctorum/internal/hw/dram"
	"sanctorum/internal/hw/machine"
	"sanctorum/internal/hw/mem"
	"sanctorum/internal/hw/tlb"
	"sanctorum/internal/sm"
)

// Platform is the no-isolation backend.
type Platform struct{}

var _ sm.Platform = Platform{}

// New returns the baseline platform adapter.
func New() Platform { return Platform{} }

// Kind implements sm.Platform.
func (Platform) Kind() machine.IsolationKind { return machine.IsolationNone }

// ApplyOSView clears enclave state; nothing is protected.
func (Platform) ApplyOSView(c *machine.Core, osRegions dram.Bitmap) error {
	c.EnclaveMode = false
	c.Satp = 0
	c.ESatp = 0
	c.EvBase, c.EvMask = 0, 0
	c.OSRegions = osRegions
	return nil
}

// ApplyEnclaveView installs the enclave's address space without any
// physical confinement (Keystone-style single root, no PMP).
func (Platform) ApplyEnclaveView(c *machine.Core, v sm.EnclaveView) error {
	c.EnclaveMode = true
	c.Satp = v.RootPPN
	c.EvBase, c.EvMask = v.EvBase, v.EvMask
	c.OSRegions = v.OSRegions
	return nil
}

// RefreshOSRegions records the bitmap; it is not enforced.
func (Platform) RefreshOSRegions(c *machine.Core, osRegions dram.Bitmap) error {
	c.OSRegions = osRegions
	return nil
}

// CleanRegion still scrubs contents (the monitor logic requires it).
func (Platform) CleanRegion(m *machine.Machine, r int) error {
	if err := m.Mem.ZeroRange(m.DRAM.Base(r), m.DRAM.RegionSize()); err != nil {
		return err
	}
	l2Line := m.L2.Config().LineBits
	m.L2.FlushIf(func(lineAddr uint64) bool {
		return m.DRAM.RegionOf(lineAddr<<l2Line) == r
	})
	return nil
}

// ShootdownRegion invalidates TLB entries into the region, via each
// core's IPI mailbox (acknowledged at instruction boundaries).
func (Platform) ShootdownRegion(m *machine.Machine, r int) {
	layout := m.DRAM
	for _, c := range m.Cores {
		m.RunOn(c.ID, machine.NoHart, func(c *machine.Core) {
			c.TLB.FlushIf(func(e tlb.Entry) bool {
				return layout.RegionOf(e.PPN<<mem.PageBits) == r
			})
		})
	}
}
