package baseline

import (
	"testing"

	"sanctorum/internal/hw/machine"
	"sanctorum/internal/hw/mem"
	"sanctorum/internal/hw/tlb"
	"sanctorum/internal/sm"
)

func newMachine(t *testing.T) *machine.Machine {
	t.Helper()
	m, err := machine.New(machine.DefaultConfig(machine.IsolationNone))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestViewsCarryNoProtection pins the baseline's defining property: the
// monitor state machine runs, but the views install no isolation — the
// control arm of the E10 comparison.
func TestViewsCarryNoProtection(t *testing.T) {
	m := newMachine(t)
	p := New()
	c := m.Cores[0]
	if err := p.ApplyEnclaveView(c, sm.EnclaveView{RootPPN: 7, EvBase: 0x1000, EvMask: ^uint64(0xFFF)}); err != nil {
		t.Fatal(err)
	}
	if c.Satp != 7 || !c.EnclaveMode {
		t.Fatalf("enclave view not recorded: %+v", c)
	}
	if c.PMP != nil {
		t.Fatal("baseline machine has a PMP unit")
	}
	if err := p.ApplyOSView(c, m.DRAM.Full()); err != nil {
		t.Fatal(err)
	}
	if c.EnclaveMode || c.Satp != 0 {
		t.Fatal("OS view left enclave state")
	}
}

func TestCleanRegionStillScrubs(t *testing.T) {
	m := newMachine(t)
	p := New()
	r := 2
	base := m.DRAM.Base(r)
	if err := m.Mem.WriteBytes(base, []byte{0xFF}); err != nil {
		t.Fatal(err)
	}
	m.L2.Access(base)
	if err := p.CleanRegion(m, r); err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 1)
	if err := m.Mem.ReadBytes(base, b); err != nil {
		t.Fatal(err)
	}
	if b[0] != 0 {
		t.Fatal("contents survived cleaning")
	}
	if m.L2.Probe(base) {
		t.Fatal("L2 footprint survived cleaning")
	}
}

func TestShootdownRegionFlushesTLBs(t *testing.T) {
	m := newMachine(t)
	p := New()
	r := 4
	for _, c := range m.Cores {
		c.TLB.Insert(tlb.Entry{VPN: 1, PPN: m.DRAM.Base(r) >> mem.PageBits})
		c.TLB.Insert(tlb.Entry{VPN: 2, PPN: m.DRAM.Base(r+1) >> mem.PageBits})
	}
	p.ShootdownRegion(m, r)
	for i, c := range m.Cores {
		if _, hit := c.TLB.Lookup(1); hit {
			t.Fatalf("core %d kept a shot-down translation", i)
		}
		if _, hit := c.TLB.Lookup(2); !hit {
			t.Fatalf("core %d lost an unrelated translation", i)
		}
	}
}
