package baseline

import (
	"testing"

	"sanctorum/internal/hw/machine"
	"sanctorum/internal/hw/mem"
	"sanctorum/internal/hw/pt"
	"sanctorum/internal/hw/tlb"
	"sanctorum/internal/os"
	"sanctorum/internal/sm"
	"sanctorum/internal/sm/api"
	"sanctorum/internal/sm/boot"
)

func newMachine(t *testing.T) *machine.Machine {
	t.Helper()
	m, err := machine.New(machine.DefaultConfig(machine.IsolationNone))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestViewsCarryNoProtection pins the baseline's defining property: the
// monitor state machine runs, but the views install no isolation — the
// control arm of the E10 comparison.
func TestViewsCarryNoProtection(t *testing.T) {
	m := newMachine(t)
	p := New()
	c := m.Cores[0]
	if err := p.ApplyEnclaveView(c, sm.EnclaveView{RootPPN: 7, EvBase: 0x1000, EvMask: ^uint64(0xFFF)}); err != nil {
		t.Fatal(err)
	}
	if c.Satp != 7 || !c.EnclaveMode {
		t.Fatalf("enclave view not recorded: %+v", c)
	}
	if c.PMP != nil {
		t.Fatal("baseline machine has a PMP unit")
	}
	if err := p.ApplyOSView(c, m.DRAM.Full()); err != nil {
		t.Fatal(err)
	}
	if c.EnclaveMode || c.Satp != 0 {
		t.Fatal("OS view left enclave state")
	}
}

func TestCleanRegionStillScrubs(t *testing.T) {
	m := newMachine(t)
	p := New()
	r := 2
	base := m.DRAM.Base(r)
	if err := m.Mem.WriteBytes(base, []byte{0xFF}); err != nil {
		t.Fatal(err)
	}
	m.L2.Access(base)
	if err := p.CleanRegion(m, r); err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 1)
	if err := m.Mem.ReadBytes(base, b); err != nil {
		t.Fatal(err)
	}
	if b[0] != 0 {
		t.Fatal("contents survived cleaning")
	}
	if m.L2.Probe(base) {
		t.Fatal("L2 footprint survived cleaning")
	}
}

func TestShootdownRegionFlushesTLBs(t *testing.T) {
	m := newMachine(t)
	p := New()
	r := 4
	for _, c := range m.Cores {
		c.TLB.Insert(tlb.Entry{VPN: 1, PPN: m.DRAM.Base(r) >> mem.PageBits})
		c.TLB.Insert(tlb.Entry{VPN: 2, PPN: m.DRAM.Base(r+1) >> mem.PageBits})
	}
	p.ShootdownRegion(m, r)
	for i, c := range m.Cores {
		if _, hit := c.TLB.Lookup(1); hit {
			t.Fatalf("core %d kept a shot-down translation", i)
		}
		if _, hit := c.TLB.Lookup(2); !hit {
			t.Fatalf("core %d lost an unrelated translation", i)
		}
	}
}

// TestUnifiedABIOnBaseline runs the same ABI-driven enclave build on
// the insecure control backend: the dispatch surface (call table,
// domain authorization, measurement discipline) must behave identically
// even when the platform provides no physical isolation.
func TestUnifiedABIOnBaseline(t *testing.T) {
	m := newMachine(t)
	mfr := boot.NewManufacturer("acme", []byte("seed"))
	dev := mfr.Provision("dev", []byte("root-secret"))
	id, err := dev.Boot([]byte("baseline abi test"))
	if err != nil {
		t.Fatal(err)
	}
	mon, err := sm.New(sm.Config{
		Machine: m, Platform: New(), Identity: id,
		SMRegions: []int{m.DRAM.RegionCount - 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	o, err := os.New(m, mon, 0, m.DRAM.RegionCount-2)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := o.ABIVersion(); err != nil || v != api.Version {
		t.Fatalf("abi version %#x (%v), want %#x", v, err, uint64(api.Version))
	}

	evBase, evMask := uint64(0x4000000000), ^uint64(1<<21-1)
	spec := &os.EnclaveSpec{
		EvBase: evBase, EvMask: evMask, Regions: []int{3},
		Pages: []os.EnclavePage{
			{VA: evBase, Perms: pt.R | pt.X, Data: []byte{0x13}},
		},
		Threads: []os.ThreadSpec{{EntryVA: evBase, StackVA: evBase + 0x2000}},
	}
	built, err := o.BuildEnclave(spec)
	if err != nil {
		t.Fatal(err)
	}
	if built.Measurement != os.ExpectedMeasurement(spec) {
		t.Fatal("ABI-built measurement does not match the replayed transcript")
	}
	// Even without physical isolation the monitor's bookkeeping — the
	// security state machine the ABI fronts — must refuse API-level
	// theft: the region reads enclave-owned and cannot be re-granted.
	st, owner, err := o.SM.RegionInfo(3)
	if err != nil || st != api.RegionOwned || owner != built.EID {
		t.Fatalf("region 3 after grant: state=%v owner=%#x err=%v", st, owner, err)
	}
	if err := o.SM.GrantRegion(3, api.DomainOS); err == nil {
		t.Fatal("re-granted an enclave-owned region through the ABI")
	}
	resp := mon.Dispatch(api.Request{Caller: built.EID, Call: api.CallMyEnclaveID})
	if resp.Status != api.ErrUnauthorized {
		t.Fatalf("forged enclave caller: %v, want ErrUnauthorized", resp.Status)
	}
}
