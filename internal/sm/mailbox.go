package sm

import "sanctorum/internal/sm/api"

// MailboxState is the state of one mailbox (paper Fig 5, extended with
// the explicit expecting state implied by accept_mail's anti-DoS rule).
type MailboxState uint8

// Mailbox states.
const (
	// MailboxEmpty: not accepting; sends are refused (DoS protection).
	MailboxEmpty MailboxState = iota
	// MailboxExpecting: the recipient declared a sender via accept_mail.
	MailboxExpecting
	// MailboxFull: holds one message until get_mail drains it.
	MailboxFull
)

func (s MailboxState) String() string {
	switch s {
	case MailboxEmpty:
		return "empty"
	case MailboxExpecting:
		return "expecting"
	case MailboxFull:
		return "full"
	default:
		return "mailbox-state-?"
	}
}

// Mailbox is a single-message authenticated channel in an enclave's
// metadata (§VI-B). The monitor stamps each delivery with the sender's
// measurement, which is what makes local attestation work: recipients
// trust the monitor, not the message path.
type Mailbox struct {
	State          MailboxState
	ExpectedSender uint64 // eid (or api.DomainOS) allowed to deliver
	SenderMeas     [32]byte
	Msg            [api.MailboxSize]byte
}

// acceptMail arms mailbox idx to receive from expectedSender
// (accept_mail by the recipient enclave, Fig 5).
func (mon *Monitor) acceptMail(e *Enclave, idx int, expectedSender uint64) api.Error {
	if idx < 0 || idx >= len(e.Mailboxes) {
		return api.ErrInvalidValue
	}
	if !mon.tryLock(&e.mu, LockEnclave, e.ID) {
		return api.ErrRetry
	}
	defer e.mu.Unlock()
	mb := &e.Mailboxes[idx]
	if mb.State == MailboxFull {
		return api.ErrInvalidState
	}
	mb.State = MailboxExpecting
	mb.ExpectedSender = expectedSender
	return api.OK
}

// deliverMail places a message in the recipient's mailbox if the
// recipient is expecting this sender (send_mail, Fig 5). senderMeas is
// the measurement the monitor attests for the sender; the OS sends with
// the reserved DomainOS identity and an all-zero measurement.
func (mon *Monitor) deliverMail(senderID uint64, senderMeas [32]byte, recipientEID uint64, msg []byte) api.Error {
	if len(msg) != api.MailboxSize {
		return api.ErrInvalidValue
	}
	rec, st := mon.lookupEnclave(recipientEID)
	if st != api.OK {
		return st
	}
	defer rec.mu.Unlock()
	if rec.State != EnclaveInitialized {
		return api.ErrInvalidState
	}
	for i := range rec.Mailboxes {
		mb := &rec.Mailboxes[i]
		if mb.State == MailboxExpecting && mb.ExpectedSender == senderID {
			mb.State = MailboxFull
			mb.SenderMeas = senderMeas
			copy(mb.Msg[:], msg)
			return api.OK
		}
	}
	// No armed mailbox for this sender: refused, thwarting DoS by
	// unsolicited senders (§VI-B).
	return api.ErrInvalidState
}

// SendMailFromOS lets the untrusted OS send a message (Fig 5 allows
// sends "by any enclave or OS"); it carries the reserved OS identity
// and a zero measurement, so no enclave can mistake it for an enclave.
func (mon *Monitor) SendMailFromOS(recipientEID uint64, msg []byte) api.Error {
	padded := make([]byte, api.MailboxSize)
	if len(msg) > api.MailboxSize {
		return api.ErrInvalidValue
	}
	copy(padded, msg)
	return mon.deliverMail(api.DomainOS, [32]byte{}, recipientEID, padded)
}

// getMail drains mailbox idx (get_mail by the recipient, Fig 5),
// returning the message and the monitor-attested sender measurement.
func (mon *Monitor) getMail(e *Enclave, idx int) ([]byte, [32]byte, api.Error) {
	var zero [32]byte
	if idx < 0 || idx >= len(e.Mailboxes) {
		return nil, zero, api.ErrInvalidValue
	}
	if !mon.tryLock(&e.mu, LockEnclave, e.ID) {
		return nil, zero, api.ErrRetry
	}
	defer e.mu.Unlock()
	mb := &e.Mailboxes[idx]
	if mb.State != MailboxFull {
		return nil, zero, api.ErrInvalidState
	}
	msg := append([]byte(nil), mb.Msg[:]...)
	meas := mb.SenderMeas
	mb.State = MailboxEmpty
	mb.ExpectedSender = 0
	mb.SenderMeas = zero
	mb.Msg = [api.MailboxSize]byte{}
	return msg, meas, api.OK
}
