package sm

// Fault injection for the §V-A transaction layer. Every TryLock a
// monitor transaction performs is routed through Monitor.tryLock, a
// single choke point that consults an optional hook before touching
// the mutex. The hook serves the model checker (internal/mc) and the
// adversary test battery two ways:
//
//   - Returning true forces a spurious acquire failure: the
//     transaction fails with ErrRetry exactly as if another hart held
//     the lock, without any real contention. Driving this from a
//     seeded schedule produces ErrRetry storms that prove the retry
//     discipline converges.
//   - Returning false after running a racing operation synchronously
//     inside the hook emulates an adversarially timed preemption: the
//     victim transaction resumes against mutated state at the worst
//     possible instant, deterministically. The lookup/free re-checks
//     (lookupEnclave, lookupThread, lookupSnapshot, lookupRing) are
//     tested exactly this way.
//
// The hook is monitor test/verification surface, not ABI: production
// paths never install one, and the fast path is a single atomic nil
// check.

import "sync/atomic"

// LockKind classifies the transaction locks of §V-A for fault hooks.
type LockKind uint8

// Lock classes, one per monitor object kind carrying a transaction
// lock. LockCore is the core's run-ownership acquisition in
// enter_enclave (machine.Core.TryAcquire), not a mutex.
const (
	LockEnclave LockKind = iota
	LockThread
	LockSnapshot
	LockRing
	LockGrant
	LockRegion
	LockCoreSlot
	LockCore
)

func (k LockKind) String() string {
	switch k {
	case LockEnclave:
		return "enclave"
	case LockThread:
		return "thread"
	case LockSnapshot:
		return "snapshot"
	case LockRing:
		return "ring"
	case LockGrant:
		return "grant"
	case LockRegion:
		return "region"
	case LockCoreSlot:
		return "core-slot"
	case LockCore:
		return "core"
	default:
		return "lock-kind-?"
	}
}

// LockPoint identifies one transaction-lock acquisition at runtime:
// the lock class and the object id (eid, tid, snapshot id, ring id,
// region index, or core id).
type LockPoint struct {
	Kind LockKind
	ID   uint64
}

// FaultHook decides the fate of one lock acquisition: true forces a
// spurious failure (the transaction sees contention and fails with
// ErrRetry); false lets the acquisition proceed normally. The hook may
// run monitor calls synchronously before returning false to model an
// adversarially timed preemption, but must not re-enter the monitor
// when that would re-reach the same lock (classic re-entrancy).
type FaultHook func(LockPoint) bool

// SetLockFaultHook installs or (with nil) removes the transaction-lock
// fault hook. Safe to call concurrently with monitor traffic; in-flight
// transactions observe the hook atomically per acquisition.
func (mon *Monitor) SetLockFaultHook(fn FaultHook) {
	if fn == nil {
		mon.lockHook.Store(nil)
		return
	}
	mon.lockHook.Store(&fn)
}

// lockHookPtr is the atomic hook cell; a named type keeps the Monitor
// struct declaration readable.
type lockHookPtr = atomic.Pointer[FaultHook]
