package sm

import (
	"sync"

	"sanctorum/internal/isa"
	"sanctorum/internal/sm/api"
)

// ThreadState is the lifecycle state of an enclave thread (paper Fig 4).
type ThreadState uint8

// Thread states.
const (
	// ThreadAvailable: exists, bound to no enclave.
	ThreadAvailable ThreadState = iota
	// ThreadOffered: assigned by the OS, awaiting accept_thread.
	ThreadOffered
	// ThreadAssigned: bound to an enclave, not on a core.
	ThreadAssigned
	// ThreadRunning: executing on a core.
	ThreadRunning
)

func (s ThreadState) String() string {
	switch s {
	case ThreadAvailable:
		return "available"
	case ThreadOffered:
		return "offered"
	case ThreadAssigned:
		return "assigned"
	case ThreadRunning:
		return "running"
	default:
		return "thread-state-?"
	}
}

// Thread is the monitor's metadata for one enclave thread. Like
// enclaves, the thread ID is the physical address of its metadata page
// in SM-owned memory.
type Thread struct {
	mu sync.Mutex

	ID    uint64
	State ThreadState
	Owner uint64 // owning eid when offered/assigned/running
	dead  bool   // set by delete_thread under mu; a racing lookup re-checks

	EntryPC uint64
	EntrySP uint64

	CoreID int // core while running

	// AEX context (paper §V-C): register file and PC saved on an
	// asynchronous enclave exit, plus the flag the enclave can inspect.
	AEXValid bool
	aexRegs  [isa.NumRegs]uint64
	aexPC    uint64

	// Enclave-registered fault handler and the context saved when the
	// monitor delegates a fault to it.
	FaultPC   uint64
	FaultSP   uint64
	inFault   bool
	faultRegs [isa.NumRegs]uint64
	faultPC   uint64
}

func (t *Thread) clearContext() {
	t.EntryPC, t.EntrySP = 0, 0
	t.AEXValid, t.aexPC = false, 0
	t.aexRegs = [isa.NumRegs]uint64{}
	t.FaultPC, t.FaultSP = 0, 0
	t.inFault, t.faultPC = false, 0
	t.faultRegs = [isa.NumRegs]uint64{}
}

// lookupThread fetches and transaction-locks a thread; contention fails
// the transaction with ErrRetry (§V-A). The dead re-check closes the
// lookup/free race: without it, an assign_thread racing delete_thread
// could mutate the orphaned object and report success for a thread
// that no longer exists.
func (mon *Monitor) lookupThread(tid uint64) (*Thread, api.Error) {
	mon.objMu.RLock()
	t := mon.threads[tid]
	mon.objMu.RUnlock()
	if t == nil {
		return nil, api.ErrInvalidValue
	}
	if !mon.tryLock(&t.mu, LockThread, tid) {
		return nil, api.ErrRetry
	}
	if t.dead {
		t.mu.Unlock()
		return nil, api.ErrInvalidValue
	}
	return t, api.OK
}

// loadThreadLocked creates a thread during enclave loading (Fig 3/4:
// load_thread by the OS, CallLoadThread). The thread is measured into
// the enclave and is immediately in the assigned state. The caller
// holds e's transaction lock.
func (mon *Monitor) loadThreadLocked(e *Enclave, tid, entryPC, entrySP uint64) api.Error {
	if e.State != EnclaveLoading {
		return api.ErrInvalidState
	}
	if !e.InEvrange(entryPC) {
		return api.ErrInvalidValue
	}
	mon.objMu.Lock()
	defer mon.objMu.Unlock()
	if _, exists := mon.threads[tid]; exists {
		return api.ErrInvalidValue
	}
	if st := mon.allocMetaPage(tid); st != api.OK {
		return st
	}
	t := &Thread{ID: tid, State: ThreadAssigned, Owner: e.ID, EntryPC: entryPC, EntrySP: entrySP}
	mon.threads[tid] = t
	e.Threads[tid] = t
	e.meas.ExtendThread(entryPC, entrySP)
	return api.OK
}

// createThread creates an unbound thread after enclave initialization
// (Fig 4: the available state, CallCreateThread). It is not measured;
// an enclave must explicitly accept it.
func (mon *Monitor) createThread(tid uint64) api.Error {
	mon.objMu.Lock()
	defer mon.objMu.Unlock()
	if _, exists := mon.threads[tid]; exists {
		return api.ErrInvalidValue
	}
	if st := mon.allocMetaPage(tid); st != api.OK {
		return st
	}
	mon.threads[tid] = &Thread{ID: tid, State: ThreadAvailable}
	return api.OK
}

// assignThread offers an available thread to an initialized enclave
// (Fig 4: assign_thread by the OS, CallAssignThread).
func (mon *Monitor) assignThread(eid, tid uint64) api.Error {
	e, st := mon.lookupEnclave(eid)
	if st != api.OK {
		return st
	}
	defer e.mu.Unlock()
	if e.State != EnclaveInitialized {
		return api.ErrInvalidState
	}
	t, st := mon.lookupThread(tid)
	if st != api.OK {
		return st
	}
	defer t.mu.Unlock()
	if t.State != ThreadAvailable {
		return api.ErrInvalidState
	}
	t.State, t.Owner = ThreadOffered, eid
	return api.OK
}

// unassignThread takes a non-running thread away from an enclave
// (Fig 4: unassign_thread by the OS, CallUnassignThread). The thread
// context is scrubbed so no enclave state leaks through the metadata.
func (mon *Monitor) unassignThread(tid uint64) api.Error {
	t, st := mon.lookupThread(tid)
	if st != api.OK {
		return st
	}
	defer t.mu.Unlock()
	switch t.State {
	case ThreadOffered, ThreadAssigned:
	default:
		return api.ErrInvalidState
	}
	mon.objMu.RLock()
	e := mon.enclaves[t.Owner]
	mon.objMu.RUnlock()
	if e != nil {
		if !mon.tryLock(&e.mu, LockEnclave, t.Owner) {
			return api.ErrRetry
		}
		delete(e.Threads, tid)
		e.mu.Unlock()
	}
	t.State, t.Owner = ThreadAvailable, 0
	t.clearContext()
	return api.OK
}

// acceptThread completes the OS's offer (Fig 4: accept_thread by the
// enclave). The enclave provides the entry point for the new thread.
// Called from the enclave's trap context with no locks held; the
// enclave's own lock is taken because the thread table is enclave
// state.
func (mon *Monitor) acceptThread(e *Enclave, tid, entryPC, entrySP uint64) api.Error {
	if !e.InEvrange(entryPC) {
		return api.ErrInvalidValue
	}
	t, st := mon.lookupThread(tid)
	if st != api.OK {
		return st
	}
	defer t.mu.Unlock()
	if t.State != ThreadOffered || t.Owner != e.ID {
		return api.ErrInvalidState
	}
	if !mon.tryLock(&e.mu, LockEnclave, e.ID) {
		return api.ErrRetry
	}
	defer e.mu.Unlock()
	t.State = ThreadAssigned
	t.EntryPC, t.EntrySP = entryPC, entrySP
	e.Threads[tid] = t
	return api.OK
}

// releaseThread lets an enclave give a thread back (Fig 4:
// release_thread by the enclave).
func (mon *Monitor) releaseThread(e *Enclave, tid uint64) api.Error {
	t, st := mon.lookupThread(tid)
	if st != api.OK {
		return st
	}
	defer t.mu.Unlock()
	if t.State != ThreadAssigned || t.Owner != e.ID {
		return api.ErrInvalidState
	}
	if !mon.tryLock(&e.mu, LockEnclave, e.ID) {
		return api.ErrRetry
	}
	defer e.mu.Unlock()
	delete(e.Threads, tid)
	t.State, t.Owner = ThreadAvailable, 0
	t.clearContext()
	return api.OK
}

// deleteThread destroys an available thread (Fig 4: delete_thread by
// the OS, CallDeleteThread).
func (mon *Monitor) deleteThread(tid uint64) api.Error {
	t, st := mon.lookupThread(tid)
	if st != api.OK {
		return st
	}
	defer t.mu.Unlock()
	if t.State != ThreadAvailable {
		return api.ErrInvalidState
	}
	t.dead = true
	mon.objMu.Lock()
	delete(mon.threads, tid)
	mon.freeMetaPage(tid)
	mon.objMu.Unlock()
	return api.OK
}

// enterEnclave schedules an enclave thread onto a core (Fig 4:
// enter_enclave by the OS, CallEnterEnclave). The monitor cleans the
// core, programs the enclave view, and points execution at the thread's
// entry; the OS then drives the core with machine.Run. On entry,
// register a0 tells the enclave whether an AEX context is pending (it
// may CallResumeAEX).
//
// The call must come from the core's driver while the core is idle (a
// core already inside Run fails the core-slot transaction). Contention
// on the enclave, the thread, the core slot, or the core's run mutex —
// e.g. two harts racing to schedule threads of one enclave, or an IPI
// poster briefly holding the idle core — fails with ErrRetry.
func (mon *Monitor) enterEnclave(coreID int, eid, tid uint64) api.Error {
	if coreID < 0 || coreID >= len(mon.machine.Cores) {
		return api.ErrInvalidValue
	}
	e, st := mon.lookupEnclave(eid)
	if st != api.OK {
		return st
	}
	defer e.mu.Unlock()
	if e.State != EnclaveInitialized {
		return api.ErrInvalidState
	}
	t, st := mon.lookupThread(tid)
	if st != api.OK {
		return st
	}
	defer t.mu.Unlock()
	if t.State != ThreadAssigned || t.Owner != eid {
		return api.ErrInvalidState
	}

	slot := &mon.cores[coreID]
	if !mon.tryLock(&slot.mu, LockCoreSlot, uint64(coreID)) {
		return api.ErrRetry
	}
	if slot.owner != api.DomainOS {
		slot.mu.Unlock()
		return api.ErrInvalidState
	}
	core := mon.machine.Cores[coreID]
	// Core microarchitectural state may only be touched while holding
	// the core's run ownership; an idle core's runMu is free (or held
	// momentarily by an IPI poster, in which case the transaction
	// fails and the caller retries). The fault hook covers this
	// acquisition too — it is a §V-A transaction step like any mutex.
	if mon.lockFault(LockCore, uint64(coreID)) || !core.TryAcquire() {
		slot.mu.Unlock()
		return api.ErrRetry
	}
	slot.owner, slot.tid = eid, tid
	slot.mu.Unlock()
	osRegions := mon.osRegions()

	// Re-allocating the core resource to the enclave domain: clean it.
	core.ClearMicroarch()
	core.ClearArchState()
	err := mon.plat.ApplyEnclaveView(core, EnclaveView{
		RootPPN: e.RootPPN,
		EvBase:  e.EvBase,
		EvMask:  e.EvMask,
		// The access view includes regions borrowed from a snapshot
		// template, so a clone can read its aliased pages.
		Regions:   e.accessRegions(),
		OSRegions: osRegions,
	})
	if err != nil {
		core.Release()
		slot.mu.Lock()
		slot.owner, slot.tid = api.DomainOS, 0
		slot.mu.Unlock()
		return api.ErrNoResources
	}
	core.CPU.Mode = isa.PrivU
	core.CPU.PC = t.EntryPC
	core.CPU.Halted = false
	core.CPU.SetReg(isa.RegSP, t.EntrySP)
	if t.AEXValid {
		core.CPU.SetReg(isa.RegA0, 1)
	}
	core.Release()
	t.State = ThreadRunning
	t.CoreID = coreID
	e.running++
	return api.OK
}

// stopThread moves a running thread off its core: shared tail of
// exit_enclave and AEX. It runs in the core's own trap context (the
// hart holds its runMu), so touching the core is safe; the thread and
// enclave locks are taken blocking — an AEX cannot fail — which is
// safe because those locks are only ever held briefly and never while
// waiting on another hart (DESIGN.md §5).
func (mon *Monitor) stopThread(core, exitValue uint64, saveAEX bool) {
	coreID := int(core)
	slot := &mon.cores[coreID]
	slot.mu.Lock()
	eid, tid := slot.owner, slot.tid
	slot.owner, slot.tid = api.DomainOS, 0
	slot.mu.Unlock()
	mon.objMu.RLock()
	e := mon.enclaves[eid]
	t := mon.threads[tid]
	mon.objMu.RUnlock()
	osRegions := mon.osRegions()

	c := mon.machine.Cores[coreID]
	if t != nil {
		t.mu.Lock()
		if saveAEX {
			t.AEXValid = true
			t.aexRegs = c.CPU.Regs
			t.aexPC = c.CPU.PC
		}
		t.State = ThreadAssigned
		t.CoreID = -1
		t.mu.Unlock()
	}
	if e != nil {
		e.mu.Lock()
		e.running--
		e.mu.Unlock()
	}
	// Clean the core before the OS domain gets it back.
	c.ClearMicroarch()
	c.ClearArchState()
	mon.plat.ApplyOSView(c, osRegions)
	c.CPU.Mode = isa.PrivU
	// An explicit exit may pass one register of results to the OS.
	c.CPU.SetReg(isa.RegA0, exitValue)
}
