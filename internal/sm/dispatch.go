package sm

import (
	"sanctorum/internal/hw/machine"
	"sanctorum/internal/sm/api"
)

// This file is the monitor's single dispatch surface: every monitor
// call — from the untrusted OS and from enclaves alike — is an
// api.Request routed through one table by call number, with the
// caller-domain authorization applied in exactly one place (paper §V-A:
// the SM exposes the same register-convention API to all untrusted
// software). The enclave trap path (trap.go) and the host-side
// Dispatch/DispatchBatch entries both land in dispatch below.

// Caller domains a call may be invoked from.
const (
	domainOS      uint8 = 1 << 0
	domainEnclave uint8 = 1 << 1
)

// callContext is the machine context of an enclave ECALL: the trapping
// core and the enclave/thread executing on it. Host-side dispatches
// carry a nil context — which is itself the privilege boundary: only a
// trapping core can speak for an enclave, so a host Request claiming an
// enclave caller is refused before any handler runs.
type callContext struct {
	core    *machine.Core
	enclave *Enclave
	thread  *Thread

	// transferred is set by control-transfer handlers (exit, resume):
	// the handler already programmed the core and the trap path must
	// not write back a status or advance the PC.
	transferred bool
	disp        machine.Disposition
}

func (ctx *callContext) transfer(d machine.Disposition) {
	ctx.transferred = true
	ctx.disp = d
}

// callDef describes one ABI call: which domains may invoke it and how.
// Calls that operate on a caller-named enclave under its transaction
// lock (the enclave-build sequence) provide encHandler instead of
// handler; dispatch acquires the lock, and DispatchBatch keeps it
// across consecutive same-enclave requests to amortize the per-call
// locking.
type callDef struct {
	name    string
	domains uint8
	handler func(mon *Monitor, req api.Request, ctx *callContext) api.Response
	// encHandler runs with the enclave named by Args[0] looked up and
	// transaction-locked.
	encHandler func(mon *Monitor, e *Enclave, req api.Request) api.Response
}

func ok(values ...uint64) api.Response {
	r := api.Response{Status: api.OK}
	copy(r.Values[:], values)
	return r
}

// fail wraps a status — a known error or a relayed transaction result —
// into a Response with no values.
func fail(st api.Error) api.Response { return api.Response{Status: st} }

// callTable is the one routing table of the ABI. The call-number
// inventory (arguments, results, error sets) is documented in DESIGN.md
// §"Monitor call ABI".
var callTable = map[api.Call]callDef{
	// Probe — any domain.
	api.CallGetABIVersion: {name: "get_abi_version", domains: domainOS | domainEnclave,
		handler: func(mon *Monitor, req api.Request, ctx *callContext) api.Response {
			return ok(api.Version)
		}},

	// Enclave-domain calls (trap context only).
	api.CallExitEnclave:     {name: "exit_enclave", domains: domainEnclave, handler: hExitEnclave},
	api.CallGetRandom:       {name: "get_random", domains: domainEnclave, handler: hGetRandom},
	api.CallAcceptMail:      {name: "accept_mail", domains: domainEnclave, handler: hAcceptMail},
	api.CallGetMail:         {name: "get_mail", domains: domainEnclave, handler: hGetMail},
	api.CallAcceptThread:    {name: "accept_thread", domains: domainEnclave, handler: hAcceptThread},
	api.CallReleaseThread:   {name: "release_thread", domains: domainEnclave, handler: hReleaseThread},
	api.CallAcceptRegion:    {name: "accept_region", domains: domainEnclave, handler: hAcceptRegion},
	api.CallAttestSign:      {name: "attest_sign", domains: domainEnclave, handler: hAttestSign},
	api.CallResumeAEX:       {name: "resume_aex", domains: domainEnclave, handler: hResumeAEX},
	api.CallSetFaultHandler: {name: "set_fault_handler", domains: domainEnclave, handler: hSetFaultHandler},
	api.CallResumeFault:     {name: "resume_fault", domains: domainEnclave, handler: hResumeFault},
	api.CallMyEnclaveID:     {name: "my_enclave_id", domains: domainEnclave, handler: hMyEnclaveID},
	api.CallKADerive:        {name: "ka_derive", domains: domainEnclave, handler: hKADerive},
	api.CallKACombine:       {name: "ka_combine", domains: domainEnclave, handler: hKACombine},
	api.CallMAC:             {name: "mac", domains: domainEnclave, handler: hMAC},

	// Dual-domain calls: one number, per-domain argument convention.
	api.CallSendMail:    {name: "send_mail", domains: domainOS | domainEnclave, handler: hSendMail},
	api.CallGetField:    {name: "get_field", domains: domainOS | domainEnclave, handler: hGetField},
	api.CallBlockRegion: {name: "block_region", domains: domainOS | domainEnclave, handler: hBlockRegion},

	// OS-domain calls (Figs 2–4 resource management).
	api.CallCreateEnclave: {name: "create_enclave", domains: domainOS,
		handler: func(mon *Monitor, req api.Request, ctx *callContext) api.Response {
			return fail(mon.createEnclave(req.Args[0], req.Args[1], req.Args[2]))
		}},
	api.CallAllocPageTable: {name: "allocate_page_table", domains: domainOS,
		encHandler: func(mon *Monitor, e *Enclave, req api.Request) api.Response {
			return fail(mon.allocatePageTableLocked(e, req.Args[1], int(req.Args[2])))
		}},
	api.CallLoadPage: {name: "load_page", domains: domainOS,
		encHandler: func(mon *Monitor, e *Enclave, req api.Request) api.Response {
			return fail(mon.loadPageLocked(e, req.Args[1], req.Args[2], req.Args[3]))
		}},
	api.CallMapShared: {name: "map_shared", domains: domainOS,
		encHandler: func(mon *Monitor, e *Enclave, req api.Request) api.Response {
			return fail(mon.mapSharedLocked(e, req.Args[1], req.Args[2]))
		}},
	api.CallInitEnclave: {name: "init_enclave", domains: domainOS,
		encHandler: func(mon *Monitor, e *Enclave, req api.Request) api.Response {
			return fail(mon.initEnclaveLocked(e))
		}},
	api.CallDeleteEnclave: {name: "delete_enclave", domains: domainOS,
		handler: func(mon *Monitor, req api.Request, ctx *callContext) api.Response {
			return fail(mon.deleteEnclave(req.Args[0]))
		}},
	api.CallEnclaveStatus: {name: "enclave_status", domains: domainOS,
		encHandler: func(mon *Monitor, e *Enclave, req api.Request) api.Response {
			state, st := mon.enclaveStatusLocked(e, req.Args[1])
			if st != api.OK {
				return fail(st)
			}
			return ok(state)
		}},
	api.CallLoadThread: {name: "load_thread", domains: domainOS,
		encHandler: func(mon *Monitor, e *Enclave, req api.Request) api.Response {
			return fail(mon.loadThreadLocked(e, req.Args[1], req.Args[2], req.Args[3]))
		}},
	api.CallCreateThread: {name: "create_thread", domains: domainOS,
		handler: func(mon *Monitor, req api.Request, ctx *callContext) api.Response {
			return fail(mon.createThread(req.Args[0]))
		}},
	api.CallAssignThread: {name: "assign_thread", domains: domainOS,
		handler: func(mon *Monitor, req api.Request, ctx *callContext) api.Response {
			return fail(mon.assignThread(req.Args[0], req.Args[1]))
		}},
	api.CallUnassignThread: {name: "unassign_thread", domains: domainOS,
		handler: func(mon *Monitor, req api.Request, ctx *callContext) api.Response {
			return fail(mon.unassignThread(req.Args[0]))
		}},
	api.CallDeleteThread: {name: "delete_thread", domains: domainOS,
		handler: func(mon *Monitor, req api.Request, ctx *callContext) api.Response {
			return fail(mon.deleteThread(req.Args[0]))
		}},
	api.CallEnterEnclave: {name: "enter_enclave", domains: domainOS,
		handler: func(mon *Monitor, req api.Request, ctx *callContext) api.Response {
			// int() maps any register value ≥ 2^63 to a negative number,
			// which the core-range check refuses.
			return fail(mon.enterEnclave(int(req.Args[0]), req.Args[1], req.Args[2]))
		}},
	api.CallRegionInfo: {name: "region_info", domains: domainOS,
		handler: func(mon *Monitor, req api.Request, ctx *callContext) api.Response {
			state, owner, st := mon.regionInfo(indexArg(req.Args[0]))
			if st != api.OK {
				return fail(st)
			}
			return ok(uint64(state), owner)
		}},
	api.CallGrantRegion: {name: "grant_region", domains: domainOS,
		handler: func(mon *Monitor, req api.Request, ctx *callContext) api.Response {
			return fail(mon.grantRegion(indexArg(req.Args[0]), req.Args[1]))
		}},
	api.CallCleanRegion: {name: "clean_region", domains: domainOS,
		handler: func(mon *Monitor, req api.Request, ctx *callContext) api.Response {
			return fail(mon.cleanRegion(indexArg(req.Args[0])))
		}},

	// Mailbox-ring calls (0x40–0x45, ABI minor 2): streaming IPC with
	// batched send/recv and park/wake scheduling (DESIGN.md §9).
	api.CallRingCreate: {name: "mailbox_ring_create", domains: domainOS,
		handler: func(mon *Monitor, req api.Request, ctx *callContext) api.Response {
			return fail(mon.ringCreate(req.Args[0], req.Args[1], req.Args[2], req.Args[3]))
		}},
	api.CallRingSend: {name: "mailbox_ring_send", domains: domainOS | domainEnclave, handler: hRingSend},
	api.CallRingRecv: {name: "mailbox_ring_recv", domains: domainOS | domainEnclave, handler: hRingRecv},
	api.CallRingPark: {name: "thread_park", domains: domainEnclave, handler: hRingPark},
	api.CallRingWake: {name: "mailbox_ring_wake", domains: domainOS | domainEnclave, handler: hRingWake},
	api.CallRingDestroy: {name: "mailbox_ring_destroy", domains: domainOS,
		handler: func(mon *Monitor, req api.Request, ctx *callContext) api.Response {
			return fail(mon.ringDestroy(req.Args[0]))
		}},

	// Bulk-grant calls (0x50–0x54, ABI minor 3): the zero-copy data
	// plane — monitor-granted shared buffers with scatter-gather
	// descriptors over the rings (DESIGN.md §14).
	api.CallBulkGrant: {name: "bulk_grant", domains: domainOS,
		handler: func(mon *Monitor, req api.Request, ctx *callContext) api.Response {
			return fail(mon.bulkGrant(req.Args[0], req.Args[1], req.Args[2], req.Args[3], req.Args[4]))
		}},
	api.CallBulkMap: {name: "bulk_map", domains: domainEnclave, handler: hBulkMap},
	api.CallBulkRevoke: {name: "bulk_revoke", domains: domainOS,
		handler: func(mon *Monitor, req api.Request, ctx *callContext) api.Response {
			return fail(mon.bulkRevoke(req.Args[0]))
		}},
	api.CallBulkSend: {name: "bulk_send", domains: domainOS | domainEnclave, handler: hBulkSend},
	api.CallBulkRecv: {name: "bulk_recv", domains: domainOS | domainEnclave, handler: hBulkRecv},

	// Snapshot/clone calls (0x30–0x32, ABI minor 1): fork-from-measured-
	// template lifecycle (DESIGN.md §8).
	api.CallSnapshotEnclave: {name: "snapshot_enclave", domains: domainOS,
		handler: func(mon *Monitor, req api.Request, ctx *callContext) api.Response {
			return fail(mon.snapshotEnclave(req.Args[0], req.Args[1]))
		}},
	api.CallCloneEnclave: {name: "clone_enclave", domains: domainOS,
		handler: func(mon *Monitor, req api.Request, ctx *callContext) api.Response {
			return fail(mon.cloneEnclave(req.Args[0], req.Args[1], req.Args[2], req.Args[3]))
		}},
	api.CallReleaseSnapshot: {name: "release_snapshot", domains: domainOS,
		handler: func(mon *Monitor, req api.Request, ctx *callContext) api.Response {
			return fail(mon.releaseSnapshot(req.Args[0]))
		}},
}

// indexArg narrows a register argument to a small index (region or
// mailbox), mapping anything that does not round-trip to -1 so the
// range checks in the transactions reject it.
func indexArg(v uint64) int {
	i := int(v)
	if i < 0 || uint64(i) != v {
		return -1
	}
	return i
}

// Dispatch executes one monitor call from host-side untrusted software
// (the OS of the paper's threat model) and returns its Response. It is
// the OS half of the unified ABI: the same call table and the same
// authorization the enclave trap path uses, so every privilege check
// lives here. Host callers may only speak for the OS domain — Requests
// with an enclave Caller are refused with ErrUnauthorized, because an
// enclave identity can only be established by a core trapping out of
// that enclave.
//
// Contended calls fail with api.ErrRetry having changed no state; the
// smcall client centralizes the retry discipline.
func (mon *Monitor) Dispatch(req api.Request) api.Response {
	return mon.dispatch(req, nil)
}

// dispatch is the single routing point for both entries. ctx is nil for
// host-side (OS) calls and carries the trapping core for enclave calls.
// When the facade wired a telemetry registry, every call is observed
// here: count, ErrRetry count, and a cycle-clocked latency histogram,
// sharded by the trapping core. Without one, the cost is one nil check.
func (mon *Monitor) dispatch(req api.Request, ctx *callContext) api.Response {
	t := mon.tele
	if t == nil {
		return mon.dispatchCall(req, ctx)
	}
	ci := t.call(req.Call)
	if ci == nil {
		return mon.dispatchCall(req, ctx)
	}
	// The latency clock is the trapping core's own cycle counter, read
	// plainly — dispatch runs on that core's goroutine, and only the
	// core itself retires cycles during the call. Host-side calls
	// (ctx == nil) retire zero simulated cycles by definition, so only
	// enclave-side calls feed the cycle histogram: counting thousands
	// of definitional zeros would cost atomics and carry no signal
	// (DESIGN.md §13), and summing the global clock here would only
	// pick up other cores' concurrent progress.
	if ctx == nil {
		resp := mon.dispatchCall(req, ctx)
		ci.count.Inc(0)
		if resp.Status == api.ErrRetry {
			ci.retries.Inc(0)
		}
		return resp
	}
	shard := ctx.core.ID
	begin := ctx.core.CPU.Cycles
	resp := mon.dispatchCall(req, ctx)
	ci.count.Inc(shard)
	ci.cycles.ObserveOn(shard, ctx.core.CPU.Cycles-begin)
	if resp.Status == api.ErrRetry {
		ci.retries.Inc(shard)
	}
	return resp
}

func (mon *Monitor) dispatchCall(req api.Request, ctx *callContext) api.Response {
	def, known := callTable[req.Call]
	if !known {
		return fail(api.ErrNotSupported)
	}
	if ctx == nil {
		if req.Caller != api.DomainOS || def.domains&domainOS == 0 {
			return fail(api.ErrUnauthorized)
		}
	} else if def.domains&domainEnclave == 0 {
		return fail(api.ErrUnauthorized)
	}
	if def.encHandler != nil {
		e, st := mon.lookupEnclave(req.Args[0])
		if st != api.OK {
			return fail(st)
		}
		defer e.mu.Unlock()
		return def.encHandler(mon, e, req)
	}
	return def.handler(mon, req, ctx)
}

// DispatchBatch submits a sequence of OS-domain calls in order,
// returning one Response per Request. A batch is a sequence, not a
// transaction: each element has exactly the semantics of a lone
// Dispatch, and an element's failure does not roll back its
// predecessors. Two things distinguish it from a caller-side loop:
//
//   - Lock amortization: consecutive requests naming the same enclave
//     (the hot enclave-build sequence — allocate tables, load N pages,
//     init) hold the enclave's transaction lock once across the run
//     instead of acquiring and releasing it per call.
//   - Contention cut: the first ErrRetry stops the batch at that
//     element; it and every later element return ErrRetry unexecuted,
//     so the caller can re-submit the tail without re-running the
//     completed prefix (the smcall client does this automatically).
func (mon *Monitor) DispatchBatch(reqs []api.Request) []api.Response {
	out := make([]api.Response, len(reqs))
	var held *Enclave
	var heldID uint64
	release := func() {
		if held != nil {
			held.mu.Unlock()
			held = nil
		}
	}
	defer release()
	for i := range reqs {
		req := reqs[i]
		def, known := callTable[req.Call]
		if known && def.encHandler != nil &&
			req.Caller == api.DomainOS && def.domains&domainOS != 0 {
			if held == nil || heldID != req.Args[0] {
				release()
				e, st := mon.lookupEnclave(req.Args[0])
				if st == api.ErrRetry {
					for j := i; j < len(reqs); j++ {
						out[j] = fail(api.ErrRetry)
					}
					return out
				}
				if st != api.OK {
					out[i] = fail(st)
					continue
				}
				held, heldID = e, req.Args[0]
			}
			if t := mon.tele; t != nil {
				out[i] = t.observeEnc(mon, def, held, req)
			} else {
				out[i] = def.encHandler(mon, held, req)
			}
		} else {
			// Anything else — including unknown or unauthorized calls —
			// takes the single-call path; the held lock is released
			// first so a call touching the same enclave through another
			// lock order (grant, delete) cannot self-deadlock.
			release()
			out[i] = mon.dispatch(req, nil)
		}
		if out[i].Status == api.ErrRetry {
			release()
			for j := i + 1; j < len(reqs); j++ {
				out[j] = fail(api.ErrRetry)
			}
			return out
		}
	}
	return out
}

// --- Enclave-domain handlers (ctx is always non-nil: the table only
// routes these from a trap context) ---

func hExitEnclave(mon *Monitor, req api.Request, ctx *callContext) api.Response {
	mon.stopThread(uint64(ctx.core.ID), req.Args[0], false)
	ctx.transfer(machine.DispReturnToOS)
	return ok()
}

func hResumeAEX(mon *Monitor, req api.Request, ctx *callContext) api.Response {
	t := ctx.thread
	t.mu.Lock()
	if !t.AEXValid {
		t.mu.Unlock()
		return fail(api.ErrInvalidState)
	}
	ctx.core.CPU.Regs = t.aexRegs
	ctx.core.CPU.PC = t.aexPC
	t.AEXValid = false
	t.mu.Unlock()
	ctx.transfer(machine.DispResume)
	return ok()
}

func hResumeFault(mon *Monitor, req api.Request, ctx *callContext) api.Response {
	t := ctx.thread
	t.mu.Lock()
	if !t.inFault {
		t.mu.Unlock()
		return fail(api.ErrInvalidState)
	}
	ctx.core.CPU.Regs = t.faultRegs
	ctx.core.CPU.PC = t.faultPC
	t.inFault = false
	t.mu.Unlock()
	ctx.transfer(machine.DispResume)
	return ok()
}

func hSetFaultHandler(mon *Monitor, req api.Request, ctx *callContext) api.Response {
	pc, sp := req.Args[0], req.Args[1]
	if pc != 0 && !ctx.enclave.InEvrange(pc) {
		return fail(api.ErrInvalidValue)
	}
	t := ctx.thread
	t.mu.Lock()
	t.FaultPC, t.FaultSP = pc, sp
	t.mu.Unlock()
	return ok()
}

func hGetRandom(mon *Monitor, req api.Request, ctx *callContext) api.Response {
	var b [8]byte
	mon.machine.Entropy.Read(b[:])
	var v uint64
	for i, x := range b {
		v |= uint64(x) << (8 * uint(i))
	}
	return ok(v)
}

func hMyEnclaveID(mon *Monitor, req api.Request, ctx *callContext) api.Response {
	return ok(ctx.enclave.ID)
}

func hAcceptMail(mon *Monitor, req api.Request, ctx *callContext) api.Response {
	return fail(mon.acceptMail(ctx.enclave, indexArg(req.Args[0]), req.Args[1]))
}

func hGetMail(mon *Monitor, req api.Request, ctx *callContext) api.Response {
	e := ctx.enclave
	msg, senderMeas, st := mon.getMail(e, indexArg(req.Args[0]))
	if st != api.OK {
		return fail(st)
	}
	out := append(append([]byte(nil), senderMeas[:]...), msg...)
	if !mon.writeEnclave(e, req.Args[1], out) {
		return fail(api.ErrInvalidValue)
	}
	return ok()
}

func hAcceptThread(mon *Monitor, req api.Request, ctx *callContext) api.Response {
	return fail(mon.acceptThread(ctx.enclave, req.Args[0], req.Args[1], req.Args[2]))
}

func hReleaseThread(mon *Monitor, req api.Request, ctx *callContext) api.Response {
	return fail(mon.releaseThread(ctx.enclave, req.Args[0]))
}

func hAcceptRegion(mon *Monitor, req api.Request, ctx *callContext) api.Response {
	return fail(mon.acceptRegion(ctx.enclave, indexArg(req.Args[0])))
}

func hAttestSign(mon *Monitor, req api.Request, ctx *callContext) api.Response {
	sig, st := mon.attestSign(ctx.enclave, req.Args[0], req.Args[1])
	if st != api.OK {
		return fail(st)
	}
	if !mon.writeEnclave(ctx.enclave, req.Args[2], sig) {
		return fail(api.ErrInvalidValue)
	}
	return ok()
}

func hKADerive(mon *Monitor, req api.Request, ctx *callContext) api.Response {
	return fail(mon.kaDerive(ctx.enclave, req.Args[0], req.Args[1]))
}

func hKACombine(mon *Monitor, req api.Request, ctx *callContext) api.Response {
	return fail(mon.kaCombine(ctx.enclave, req.Args[0], req.Args[1], req.Args[2]))
}

func hMAC(mon *Monitor, req api.Request, ctx *callContext) api.Response {
	return fail(mon.macService(ctx.enclave, req.Args[0], req.Args[1], req.Args[2], req.Args[3]))
}

// --- Dual-domain handlers: ctx non-nil means the enclave convention,
// nil the OS convention ---

func hSendMail(mon *Monitor, req api.Request, ctx *callContext) api.Response {
	if ctx != nil {
		e := ctx.enclave
		msg, okRead := mon.readEnclave(e, req.Args[1], api.MailboxSize)
		if !okRead {
			return fail(api.ErrInvalidValue)
		}
		return fail(mon.deliverMail(e.ID, e.Measurement, req.Args[0], msg))
	}
	// OS convention: a1 = source PA in OS-owned memory, a2 = length.
	// The message carries the reserved OS identity and a zero
	// measurement, so no enclave can mistake it for an enclave.
	n := req.Args[2]
	if n > api.MailboxSize {
		return fail(api.ErrInvalidValue)
	}
	padded := make([]byte, api.MailboxSize)
	if n > 0 {
		if !mon.osOwnsRange(req.Args[1], n) {
			return fail(api.ErrInvalidValue)
		}
		if err := mon.machine.Mem.ReadBytes(req.Args[1], padded[:n]); err != nil {
			return fail(api.ErrInvalidValue)
		}
	}
	return fail(mon.deliverMail(api.DomainOS, [32]byte{}, req.Args[0], padded))
}

func hGetField(mon *Monitor, req api.Request, ctx *callContext) api.Response {
	var caller *Enclave
	if ctx != nil {
		caller = ctx.enclave
	}
	data, st := mon.fieldBytes(api.Field(req.Args[0]), caller)
	if st != api.OK {
		return fail(st)
	}
	if uint64(len(data)) > req.Args[2] {
		return fail(api.ErrInvalidValue)
	}
	if ctx != nil {
		if !mon.writeEnclave(caller, req.Args[1], data) {
			return fail(api.ErrInvalidValue)
		}
	} else {
		if !mon.osOwnsRange(req.Args[1], uint64(len(data))) {
			return fail(api.ErrInvalidValue)
		}
		if err := mon.machine.Mem.WriteBytes(req.Args[1], data); err != nil {
			return fail(api.ErrInvalidValue)
		}
	}
	return ok(uint64(len(data)))
}

func hBlockRegion(mon *Monitor, req api.Request, ctx *callContext) api.Response {
	owner := api.DomainOS
	if ctx != nil {
		owner = ctx.enclave.ID
	}
	return fail(mon.blockRegionAs(owner, indexArg(req.Args[0])))
}
