package sm

import (
	"testing"

	"sanctorum/internal/sm/api"
)

// monSnapshot wraps the shared invariant suite (invariant.go): one
// CaptureState/Equal implementation serves these sweeps, the
// internal/mc interleaving explorer, and the adversary battery. The
// full-fidelity capture strictly subsumes the old ad-hoc counts, so a
// refused call that mutated any object field — not just map sizes —
// now fails the error-leaves-state-untouched tests.
type monSnapshot struct{ *StateSnapshot }

func snapshot(mon *Monitor) monSnapshot { return monSnapshot{mon.CaptureState()} }

func (s monSnapshot) equal(o monSnapshot) bool {
	return s.StateSnapshot.Equal(o.StateSnapshot)
}

// osOnlyCalls and enclaveOnlyCalls enumerate the single-domain halves
// of the call table for the wrong-domain sweeps. Kept literal — not
// derived from callTable — so a routing change that silently moved a
// call across domains would fail the test rather than retune it.
var osOnlyCalls = []api.Call{
	api.CallCreateEnclave, api.CallAllocPageTable, api.CallLoadPage,
	api.CallMapShared, api.CallInitEnclave, api.CallDeleteEnclave,
	api.CallEnclaveStatus, api.CallLoadThread, api.CallCreateThread,
	api.CallAssignThread, api.CallUnassignThread, api.CallDeleteThread,
	api.CallEnterEnclave, api.CallRegionInfo, api.CallGrantRegion,
	api.CallCleanRegion,
	api.CallSnapshotEnclave, api.CallCloneEnclave, api.CallReleaseSnapshot,
	api.CallRingCreate, api.CallRingDestroy,
}

var enclaveOnlyCalls = []api.Call{
	api.CallExitEnclave, api.CallGetRandom, api.CallAcceptMail,
	api.CallGetMail, api.CallAcceptThread, api.CallReleaseThread,
	api.CallAcceptRegion, api.CallAttestSign, api.CallResumeAEX,
	api.CallSetFaultHandler, api.CallResumeFault, api.CallMyEnclaveID,
	api.CallKADerive, api.CallKACombine, api.CallMAC,
	api.CallRingPark,
}

func TestDispatchUnknownCallNumbers(t *testing.T) {
	f := newFixture(t)
	before := snapshot(f.mon)
	for _, call := range []api.Call{0x00, 0x13, 0x1E, 0x33, 0x3F, 0x46, 0x100, 0xFFFF, 1 << 40, ^api.Call(0)} {
		resp := f.mon.Dispatch(api.OSRequest(call, 1, 2, 3, 4, 5, 6))
		if resp.Status != api.ErrNotSupported {
			t.Errorf("undefined call %#x: %v, want ErrNotSupported", uint64(call), resp.Status)
		}
		if resp.Values != ([2]uint64{}) {
			t.Errorf("undefined call %#x leaked values %v", uint64(call), resp.Values)
		}
	}
	if !snapshot(f.mon).equal(before) {
		t.Fatal("an undefined call mutated monitor state")
	}
}

func TestDispatchRefusesWrongDomain(t *testing.T) {
	f := newFixture(t)
	eid := f.createLoading(t, 0, 10)
	f.loadMinimal(t, eid, 1)
	f.InitEnclave(eid)
	before := snapshot(f.mon)

	// Enclave-only calls from the OS domain.
	for _, call := range enclaveOnlyCalls {
		if resp := f.mon.Dispatch(api.OSRequest(call, 1, 2, 3)); resp.Status != api.ErrUnauthorized {
			t.Errorf("OS invoked enclave call %#x: %v, want ErrUnauthorized", uint64(call), resp.Status)
		}
	}
	// Host-side requests may not impersonate an enclave at all — for
	// any call, including dual-domain and OS-only ones: the enclave
	// identity is derived from a trapping core, never caller-supplied.
	allCalls := append(append([]api.Call{}, osOnlyCalls...), enclaveOnlyCalls...)
	allCalls = append(allCalls, api.CallSendMail, api.CallGetField,
		api.CallBlockRegion, api.CallGetABIVersion,
		api.CallRingSend, api.CallRingRecv, api.CallRingWake)
	for _, call := range allCalls {
		req := api.Request{Caller: eid, Call: call, Args: [6]uint64{eid, 2, 3}}
		if resp := f.mon.Dispatch(req); resp.Status != api.ErrUnauthorized {
			t.Errorf("forged enclave caller for call %#x: %v, want ErrUnauthorized",
				uint64(call), resp.Status)
		}
	}
	// OS-only calls from a (simulated) enclave trap context: the same
	// path trap.go drives, with a live enclave and thread.
	f.mon.objMu.RLock()
	e := f.mon.enclaves[eid]
	f.mon.objMu.RUnlock()
	ctx := &callContext{core: f.m.Cores[0], enclave: e, thread: &Thread{}}
	for _, call := range osOnlyCalls {
		req := api.Request{Caller: eid, Call: call, Args: [6]uint64{eid, 2, 3}}
		if resp := f.mon.dispatch(req, ctx); resp.Status != api.ErrUnauthorized {
			t.Errorf("enclave invoked OS call %#x: %v, want ErrUnauthorized", uint64(call), resp.Status)
		}
		if ctx.transferred {
			t.Fatalf("refused call %#x transferred control", uint64(call))
		}
	}
	if !snapshot(f.mon).equal(before) {
		t.Fatal("a wrong-domain call mutated monitor state")
	}
}

func TestDispatchOutOfRangeArguments(t *testing.T) {
	f := newFixture(t)
	eid := f.createLoading(t, 0, 10)
	// A sealed second enclave, so the snapshot-call sweeps exercise the
	// argument checks past the lifecycle check.
	sealed := f.createLoading(t, 4, 11)
	f.loadMinimal(t, sealed, 5)
	if st := f.InitEnclave(sealed); st != api.OK {
		t.Fatalf("init sealed: %v", st)
	}
	before := snapshot(f.mon)
	huge := ^uint64(0)
	cases := []struct {
		name string
		req  api.Request
		want api.Error
	}{
		{"region index past end", api.OSRequest(api.CallRegionInfo, 64), api.ErrInvalidValue},
		{"region index 2^63", api.OSRequest(api.CallRegionInfo, 1<<63), api.ErrInvalidValue},
		{"region index all-ones", api.OSRequest(api.CallRegionInfo, huge), api.ErrInvalidValue},
		{"grant to unknown owner", api.OSRequest(api.CallGrantRegion, 3, 0xDEAD000), api.ErrInvalidValue},
		{"grant out-of-range region", api.OSRequest(api.CallGrantRegion, huge, api.DomainOS), api.ErrInvalidValue},
		{"block out-of-range region", api.OSRequest(api.CallBlockRegion, 1<<32), api.ErrInvalidValue},
		{"clean out-of-range region", api.OSRequest(api.CallCleanRegion, huge), api.ErrInvalidValue},
		{"create with bad evrange", api.OSRequest(api.CallCreateEnclave, f.metaPage(5), 0x1000, 0), api.ErrInvalidValue},
		{"create outside metadata region", api.OSRequest(api.CallCreateEnclave, 0x1000, testEvBase, testEvMask), api.ErrInvalidValue},
		{"table level past top", api.OSRequest(api.CallAllocPageTable, eid, 0, 99), api.ErrInvalidValue},
		{"table level all-ones", api.OSRequest(api.CallAllocPageTable, eid, 0, huge), api.ErrInvalidValue},
		{"load into unknown enclave", api.OSRequest(api.CallLoadPage, 0xBAD, testEvBase, 0x1000, 1), api.ErrInvalidValue},
		{"status of unknown enclave", api.OSRequest(api.CallEnclaveStatus, 0xBAD, 0), api.ErrInvalidValue},
		{"status into non-OS memory", api.OSRequest(api.CallEnclaveStatus, eid, f.meta), api.ErrInvalidValue},
		{"delete unknown thread", api.OSRequest(api.CallDeleteThread, 0xBAD), api.ErrInvalidValue},
		{"enter on core past end", api.OSRequest(api.CallEnterEnclave, 5, eid, 0), api.ErrInvalidValue},
		{"enter on core all-ones", api.OSRequest(api.CallEnterEnclave, huge, eid, 0), api.ErrInvalidValue},
		{"send to unknown recipient", api.OSRequest(api.CallSendMail, 0xBAD, 0x1000, api.MailboxSize), api.ErrInvalidValue},
		{"send oversized message", api.OSRequest(api.CallSendMail, eid, 0x1000, api.MailboxSize+1), api.ErrInvalidValue},
		{"get_field unknown selector", api.OSRequest(api.CallGetField, 99, 0x1000, 4096), api.ErrInvalidValue},
		{"get_field into non-OS memory", api.OSRequest(api.CallGetField, uint64(api.FieldSMMeasurement), f.meta, 4096), api.ErrInvalidValue},
		{"snapshot unknown enclave", api.OSRequest(api.CallSnapshotEnclave, 0xBAD, f.metaPage(8)), api.ErrInvalidValue},
		{"snapshot a loading enclave", api.OSRequest(api.CallSnapshotEnclave, eid, f.metaPage(8)), api.ErrInvalidState},
		{"snapshot id outside metadata region", api.OSRequest(api.CallSnapshotEnclave, sealed, 0x1000), api.ErrInvalidValue},
		{"snapshot id unaligned", api.OSRequest(api.CallSnapshotEnclave, sealed, f.metaPage(8)+4), api.ErrInvalidValue},
		{"snapshot id all-ones", api.OSRequest(api.CallSnapshotEnclave, sealed, huge), api.ErrInvalidValue},
		{"clone from unknown snapshot", api.OSRequest(api.CallCloneEnclave, eid, 0xBAD, f.metaPage(8), 0), api.ErrInvalidValue},
		{"clone from all-ones snapshot", api.OSRequest(api.CallCloneEnclave, eid, huge, f.metaPage(8), 0), api.ErrInvalidValue},
		{"clone into unknown enclave", api.OSRequest(api.CallCloneEnclave, 0xBAD, f.metaPage(8), f.metaPage(9), 0), api.ErrInvalidValue},
		{"clone into a sealed enclave", api.OSRequest(api.CallCloneEnclave, sealed, f.metaPage(8), f.metaPage(9), 0), api.ErrInvalidState},
		{"release unknown snapshot", api.OSRequest(api.CallReleaseSnapshot, 0xBAD), api.ErrInvalidValue},
		{"release snapshot id all-ones", api.OSRequest(api.CallReleaseSnapshot, huge), api.ErrInvalidValue},
		{"ring id outside metadata region", api.OSRequest(api.CallRingCreate, 0x1000, 0, 0, 4), api.ErrInvalidValue},
		{"ring id all-ones", api.OSRequest(api.CallRingCreate, huge, 0, 0, 4), api.ErrInvalidValue},
		{"ring capacity all-ones", api.OSRequest(api.CallRingCreate, f.metaPage(8), 0, 0, huge), api.ErrInvalidValue},
		{"ring producer junk eid", api.OSRequest(api.CallRingCreate, f.metaPage(8), 0xBAD, 0, 4), api.ErrInvalidValue},
		{"send to unknown ring", api.OSRequest(api.CallRingSend, 0xBAD, 0x1000, 1), api.ErrInvalidValue},
		{"send count all-ones", api.OSRequest(api.CallRingSend, f.metaPage(8), 0x1000, huge), api.ErrInvalidValue},
		{"recv from unknown ring", api.OSRequest(api.CallRingRecv, 0xBAD, 0x1000, 1), api.ErrInvalidValue},
		{"wake unknown ring", api.OSRequest(api.CallRingWake, 0xBAD), api.ErrInvalidValue},
		{"destroy unknown ring", api.OSRequest(api.CallRingDestroy, huge), api.ErrInvalidValue},
	}
	for _, c := range cases {
		if resp := f.mon.Dispatch(c.req); resp.Status != c.want {
			t.Errorf("%s: %v, want %v", c.name, resp.Status, c.want)
		}
	}
	if !snapshot(f.mon).equal(before) {
		t.Fatal("an out-of-range argument mutated monitor state")
	}
}

// TestDispatchBatchSequentialEquivalence drives a full enclave build —
// once as individual Dispatch calls, once as one batch — and requires
// identical statuses and identical measurements, including across a
// deliberately failing element (the batch must not stop at it).
func TestDispatchBatchSequentialEquivalence(t *testing.T) {
	f := newFixture(t)
	build := func(slot int, region int, viaBatch bool) ([2]uint64, []api.Error) {
		eid := f.metaPage(slot)
		src := f.m.DRAM.Base(1) // OS-owned source page
		reqs := []api.Request{
			api.OSRequest(api.CallCreateEnclave, eid, testEvBase, testEvMask),
			api.OSRequest(api.CallGrantRegion, uint64(region), eid),
			api.OSRequest(api.CallAllocPageTable, eid, 0, 2),
			api.OSRequest(api.CallAllocPageTable, eid, testEvBase, 1),
			api.OSRequest(api.CallAllocPageTable, eid, testEvBase, 0),
			api.OSRequest(api.CallLoadPage, eid, testEvBase, src, 1 /* pt.R */),
			api.OSRequest(api.CallLoadPage, eid, testEvBase, src, 1), // duplicate VA: must fail
			api.OSRequest(api.CallLoadThread, eid, f.metaPage(slot+1), testEvBase, testEvBase+0x800),
			api.OSRequest(api.CallInitEnclave, eid),
			api.OSRequest(api.CallEnclaveStatus, eid, 0),
		}
		var statuses []api.Error
		var resps []api.Response
		if viaBatch {
			resps = f.mon.DispatchBatch(reqs)
		} else {
			for _, r := range reqs {
				resps = append(resps, f.mon.Dispatch(r))
			}
		}
		for _, r := range resps {
			statuses = append(statuses, r.Status)
		}
		_, meas, st := f.mon.EnclaveInfo(eid)
		if st != api.OK {
			t.Fatalf("enclave info after build: %v", st)
		}
		var sig [2]uint64
		for i := 0; i < 8; i++ {
			sig[i/4] ^= uint64(meas[i]) << (8 * uint(i%4))
		}
		return sig, statuses
	}
	sigSeq, stSeq := build(0, 10, false)
	sigBat, stBat := build(2, 11, true)
	if len(stSeq) != len(stBat) {
		t.Fatalf("status count %d vs %d", len(stSeq), len(stBat))
	}
	for i := range stSeq {
		if stSeq[i] != stBat[i] {
			t.Fatalf("element %d: sequential %v, batched %v", i, stSeq[i], stBat[i])
		}
	}
	if stSeq[6] != api.ErrInvalidValue {
		t.Fatalf("duplicate load should fail in both paths: %v", stSeq[6])
	}
	if sigSeq != sigBat {
		t.Fatal("batched build measured differently from sequential build")
	}
}

// TestDispatchBatchContentionCut locks an enclave from "another hart"
// and requires the batch to stop at the first element targeting it,
// reporting ErrRetry for the unexecuted tail without touching state.
func TestDispatchBatchContentionCut(t *testing.T) {
	f := newFixture(t)
	eid := f.createLoading(t, 0, 10)
	f.mon.objMu.RLock()
	e := f.mon.enclaves[eid]
	f.mon.objMu.RUnlock()
	e.mu.Lock() // the contending transaction
	defer e.mu.Unlock()

	resps := f.mon.DispatchBatch([]api.Request{
		api.OSRequest(api.CallRegionInfo, 10), // independent: must execute
		api.OSRequest(api.CallAllocPageTable, eid, 0, 2),
		api.OSRequest(api.CallInitEnclave, eid),
	})
	if resps[0].Status != api.OK {
		t.Fatalf("independent prefix element: %v", resps[0].Status)
	}
	if resps[1].Status != api.ErrRetry || resps[2].Status != api.ErrRetry {
		t.Fatalf("contended tail: %v, %v — want ErrRetry, ErrRetry",
			resps[1].Status, resps[2].Status)
	}
}

// FuzzDispatch throws arbitrary requests at the monitor: nothing may
// panic, and any request claiming a non-OS caller must be refused
// without reaching a handler.
func FuzzDispatch(f *testing.F) {
	fx := newFixture(f)
	eid := fx.metaPage(0)
	if st := fx.CreateEnclave(eid, testEvBase, testEvMask); st != api.OK {
		f.Fatalf("fixture enclave: %v", st)
	}
	f.Add(uint64(0), uint64(0x20), eid, testEvBase, testEvMask, uint64(0))
	f.Add(eid, uint64(0x0F), uint64(0), uint64(0), uint64(0), uint64(0))
	f.Add(uint64(0), uint64(0x2D), uint64(1)<<63, uint64(0), uint64(0), uint64(0))
	f.Add(uint64(1), uint64(0x1F), uint64(0), uint64(0), uint64(0), uint64(0))
	f.Add(uint64(0), uint64(0x30), eid, eid+0x1000, uint64(0), uint64(0))
	f.Add(uint64(0), uint64(0x31), eid, eid+0x1000, eid+0x2000, uint64(0))
	f.Add(uint64(0), uint64(0x32), eid+0x1000, uint64(0), uint64(0), uint64(0))
	f.Add(uint64(0), uint64(0x40), eid+0x1000, uint64(0), uint64(0), uint64(8))
	f.Add(uint64(0), uint64(0x41), eid+0x1000, uint64(0x1000), uint64(2), uint64(0))
	f.Add(uint64(0), uint64(0x42), eid+0x1000, uint64(0x1000), uint64(2), uint64(0))
	f.Add(uint64(0), uint64(0x44), eid+0x1000, uint64(0), uint64(0), uint64(0))
	f.Add(uint64(0), uint64(0x45), eid+0x1000, uint64(0), uint64(0), uint64(0))
	f.Fuzz(func(t *testing.T, caller, call, a0, a1, a2, a3 uint64) {
		resp := fx.mon.Dispatch(api.Request{
			Caller: caller,
			Call:   api.Call(call),
			Args:   [6]uint64{a0, a1, a2, a3},
		})
		if caller != api.DomainOS &&
			resp.Status != api.ErrUnauthorized && resp.Status != api.ErrNotSupported {
			t.Fatalf("non-OS caller %#x got %v for call %#x", caller, resp.Status, call)
		}
	})
}
