package sm

import (
	"sanctorum/internal/hw/machine"
	"sanctorum/internal/hw/mem"
	"sanctorum/internal/hw/pt"
	"sanctorum/internal/isa"
	"sanctorum/internal/sm/api"
)

// HandleTrap is the monitor's machine-mode event entry point (paper
// Fig 1): every trap and interrupt on any core lands here. OS events
// are delegated to the OS — after an AEX if an enclave was running;
// enclave ECALLs are monitor API calls; faults may be delivered to an
// enclave-registered handler.
func (mon *Monitor) HandleTrap(c *machine.Core, tr *isa.Trap) machine.Disposition {
	slot := mon.readSlot(c.ID)
	enclaveRunning := slot.owner != api.DomainOS

	switch {
	case tr.Cause == isa.CauseHalt:
		// HALT is not a sanctioned enclave exit; treat it as a forced
		// exit so the core never reaches the OS with enclave state.
		if enclaveRunning {
			mon.stopThread(uint64(c.ID), 0, false)
		}
		return machine.DispHalt

	case tr.Cause.IsInterrupt():
		// The OS is always able to de-schedule an enclave by
		// interrupting it (§IV): perform an AEX, then delegate.
		if enclaveRunning {
			mon.stopThread(uint64(c.ID), 0, true)
		}
		return machine.DispReturnToOS

	case tr.Cause == isa.CauseECallU:
		if enclaveRunning {
			return mon.enclaveCall(c, slot)
		}
		// An ordinary process syscall: the monitor only forwards it.
		return machine.DispReturnToOS

	case tr.Cause.IsPageFault():
		if enclaveRunning {
			// A store fault may be a copy-on-write alias (snapshot
			// clones, frozen templates): the monitor copies the page
			// into the enclave's own memory and retries the store
			// before any fault is delivered anywhere.
			if tr.Cause == isa.CauseStorePageFault {
				if disp, handled := mon.cowFault(c, slot, tr); handled {
					return disp
				}
			}
			return mon.enclaveFault(c, slot, tr)
		}
		return machine.DispReturnToOS

	default:
		// Access faults, illegal instructions, breakpoints, misaligned
		// accesses: enclaves take an AEX; the OS gets the event.
		if enclaveRunning {
			mon.stopThread(uint64(c.ID), 0, true)
		}
		return machine.DispReturnToOS
	}
}

// slotView is a consistent snapshot of one core slot.
type slotView struct {
	owner uint64
	tid   uint64
}

// readSlot snapshots which domain core id currently executes.
func (mon *Monitor) readSlot(id int) slotView {
	s := &mon.cores[id]
	s.mu.Lock()
	v := slotView{owner: s.owner, tid: s.tid}
	s.mu.Unlock()
	return v
}

// enclaveFault delivers a fault to the enclave's registered handler if
// possible (enclaves can implement demand paging, §V-A), otherwise
// performs an AEX and delegates to the OS.
func (mon *Monitor) enclaveFault(c *machine.Core, slot slotView, tr *isa.Trap) machine.Disposition {
	mon.objMu.RLock()
	t := mon.threads[slot.tid]
	mon.objMu.RUnlock()
	if t != nil {
		t.mu.Lock()
		if t.FaultPC != 0 && !t.inFault {
			t.inFault = true
			t.faultRegs = c.CPU.Regs
			t.faultPC = c.CPU.PC
			handlerPC, handlerSP := t.FaultPC, t.FaultSP
			t.mu.Unlock()
			c.CPU.PC = handlerPC
			c.CPU.SetReg(isa.RegSP, handlerSP)
			c.CPU.SetReg(isa.RegA0, uint64(tr.Cause))
			c.CPU.SetReg(isa.RegA1, tr.Value)
			return machine.DispResume
		}
		t.mu.Unlock()
	}
	mon.stopThread(uint64(c.ID), 0, true)
	return machine.DispReturnToOS
}

// enclaveCall funnels an ECALL from a running enclave into the unified
// dispatch table (§V-A: the SM API is implemented via machine events,
// much like a system call). The enclave's identity is derived from the
// trapping core's slot — never from anything the guest supplies — which
// is what makes Caller trustworthy for the per-domain authorization in
// dispatch.
func (mon *Monitor) enclaveCall(c *machine.Core, slot slotView) machine.Disposition {
	mon.objMu.RLock()
	e := mon.enclaves[slot.owner]
	t := mon.threads[slot.tid]
	mon.objMu.RUnlock()
	if e == nil || t == nil {
		mon.stopThread(uint64(c.ID), 0, false)
		return machine.DispReturnToOS
	}

	req := api.Request{
		Caller: e.ID,
		Call:   api.Call(c.CPU.Reg(isa.RegA7)),
		Args: [6]uint64{
			c.CPU.Reg(isa.RegA0), c.CPU.Reg(isa.RegA1), c.CPU.Reg(isa.RegA2),
			c.CPU.Reg(isa.RegA3), c.CPU.Reg(isa.RegA4), c.CPU.Reg(isa.RegA5),
		},
	}
	ctx := callContext{core: c, enclave: e, thread: t}
	resp := mon.dispatch(req, &ctx)
	if ctx.transferred {
		// Exit or resume: the handler already programmed the core.
		return ctx.disp
	}
	c.CPU.SetReg(isa.RegA0, uint64(resp.Status))
	c.CPU.SetReg(isa.RegA1, resp.Values[0])
	c.CPU.PC += isa.InstrSize
	return machine.DispResume
}

// enclaveVAtoPA translates an enclave virtual address through the
// enclave's private page tables with M-mode authority, confining every
// step of the walk to the enclave's own regions and the final target
// to its access view (own regions plus any borrowed from a snapshot
// template — a clone's table pages are always its own, but its aliased
// data pages live in the template's regions).
func (mon *Monitor) enclaveVAtoPA(e *Enclave, va uint64, acc pt.Access) (uint64, bool) {
	if !e.InEvrange(va) {
		return 0, false
	}
	layout := mon.machine.DRAM
	read := func(pa uint64) (uint64, bool) {
		if !e.Regions.ContainsRange(layout, pa, 8) {
			return 0, false
		}
		v, err := mon.machine.Mem.Load(pa, 8)
		return v, err == nil
	}
	res, fault := pt.Walk(read, e.RootPPN, va&pt.VAMask, acc, true)
	if fault != nil {
		return 0, false
	}
	if !e.accessRegions().ContainsRange(layout, res.PA, 1) {
		return 0, false
	}
	return res.PA, true
}

// readEnclave copies n bytes out of enclave memory at va.
func (mon *Monitor) readEnclave(e *Enclave, va uint64, n int) ([]byte, bool) {
	out := make([]byte, 0, n)
	for n > 0 {
		pa, ok := mon.enclaveVAtoPA(e, va, pt.Load)
		if !ok {
			return nil, false
		}
		chunk := int(mem.PageSize - pa&mem.PageMask)
		if chunk > n {
			chunk = n
		}
		buf := make([]byte, chunk)
		if err := mon.machine.Mem.ReadBytes(pa, buf); err != nil {
			return nil, false
		}
		out = append(out, buf...)
		va += uint64(chunk)
		n -= chunk
	}
	return out, true
}

// writeEnclave copies data into enclave memory at va. A destination
// page the enclave still aliases copy-on-write is resolved through the
// same copy protocol a guest store would trigger, so monitor services
// writing into a clone (get_mail, get_field, attestation and
// key-agreement outputs) behave exactly as they do on the directly
// built template.
func (mon *Monitor) writeEnclave(e *Enclave, va uint64, data []byte) bool {
	for len(data) > 0 {
		pa, ok := mon.enclaveVAtoPA(e, va, pt.Store)
		if !ok {
			if !mon.resolveCOWForWrite(e, va) {
				return false
			}
			if pa, ok = mon.enclaveVAtoPA(e, va, pt.Store); !ok {
				return false
			}
		}
		chunk := int(mem.PageSize - pa&mem.PageMask)
		if chunk > len(data) {
			chunk = len(data)
		}
		if err := mon.machine.Mem.WriteBytes(pa, data[:chunk]); err != nil {
			return false
		}
		data = data[chunk:]
		va += uint64(chunk)
	}
	return true
}
