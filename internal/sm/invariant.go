package sm

// Shared invariant suite (DESIGN.md §10). CaptureState copies every
// piece of monitor state a refused call must leave untouched into a
// plain-data StateSnapshot, and Monitor.CheckInvariants validates the
// global consistency conditions the lifecycle state machine promises:
// metadata-page accounting, region-ownership partition, refcount sums,
// the no-writable-while-COW rule, ring waiter liveness, and the
// thread/enclave/core cross-references. One suite serves three
// consumers — dispatch_test's error-leaves-state-untouched sweeps, the
// internal/mc interleaving explorer, and the adversary battery —
// replacing the ad-hoc per-test copies the PR 3 fuzz harness grew.
//
// Both entry points require a quiescent monitor: no hart is mutating
// monitor state and no core is mid-run. Each object's lock is taken
// opportunistically while copying; a lock a contention test holds (to
// simulate "another hart" pinning a transaction) is skipped and the
// object read directly — the holder is, by the quiescence contract,
// not writing.

import (
	"fmt"
	"reflect"
	"sort"
	"sync"

	"sanctorum/internal/hw/dram"
	"sanctorum/internal/hw/mem"
	"sanctorum/internal/hw/pt"
	"sanctorum/internal/sm/api"
)

// EnclaveShot is one enclave's invariant-relevant state.
type EnclaveShot struct {
	State       EnclaveState
	Regions     dram.Bitmap
	Borrowed    dram.Bitmap
	RootPPN     uint64
	Measurement [32]byte
	Running     int
	CloneOf     uint64
	SnapID      uint64 // live snapshot frozen over this template (0 = none)
	LoadCursor  int
	Threads     []uint64
	Mapped      []uint64
	COW         map[uint64]uint64 // va -> frozen ppn still aliased
	ROAliases   []uint64
	Mailboxes   [api.MailboxesPerEnclave]Mailbox
}

// ThreadShot is one thread's invariant-relevant state.
type ThreadShot struct {
	State    ThreadState
	Owner    uint64
	EntryPC  uint64
	EntrySP  uint64
	CoreID   int
	AEXValid bool
}

// SnapshotShot is one snapshot's invariant-relevant state.
type SnapshotShot struct {
	TemplateID uint64
	Meas       [32]byte
	Regions    dram.Bitmap
	Pages      int
	Clones     int
}

// RingShot is one ring's invariant-relevant state.
type RingShot struct {
	Producer  uint64
	Consumer  uint64
	Capacity  int
	Count     int
	WaiterEID uint64
	WaiterTID uint64
}

// RegionShot is one DRAM region's state and owner.
type RegionShot struct {
	State RegionState
	Owner uint64
}

// CoreShot is one core slot's scheduled domain.
type CoreShot struct {
	Owner uint64
	TID   uint64
}

// StateSnapshot is a moment-in-time copy of the monitor's entire
// security state machine, in plain comparable data.
type StateSnapshot struct {
	Enclaves  map[uint64]EnclaveShot
	Threads   map[uint64]ThreadShot
	Snapshots map[uint64]SnapshotShot
	Rings     map[uint64]RingShot
	MetaPages []uint64
	Regions   []RegionShot
	Cores     []CoreShot
	OSBitmap  uint64
	PageRefs  uint64
}

func sortedU64(m map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// snapLock acquires mu if it is free and returns the matching release;
// a held lock (a pinned contention-test transaction) is left alone and
// the caller reads the quiescent object directly.
func snapLock(mu *sync.Mutex) func() {
	if mu.TryLock() {
		return mu.Unlock
	}
	return func() {}
}

// CaptureState snapshots the monitor's full state (see the package
// comment above for the quiescence contract).
func (mon *Monitor) CaptureState() *StateSnapshot {
	s := &StateSnapshot{
		Enclaves:  make(map[uint64]EnclaveShot),
		Threads:   make(map[uint64]ThreadShot),
		Snapshots: make(map[uint64]SnapshotShot),
		Rings:     make(map[uint64]RingShot),
	}
	// Collect object pointers under objMu, then copy each under its own
	// lock — never both at once (deleteEnclave holds object locks while
	// taking objMu, so nesting the other way could deadlock).
	mon.objMu.RLock()
	s.MetaPages = sortedU64(mon.metaPages)
	enclaves := make(map[uint64]*Enclave, len(mon.enclaves))
	for id, e := range mon.enclaves {
		enclaves[id] = e
	}
	threads := make(map[uint64]*Thread, len(mon.threads))
	for id, t := range mon.threads {
		threads[id] = t
	}
	snapshots := make(map[uint64]*Snapshot, len(mon.snapshots))
	for id, sn := range mon.snapshots {
		snapshots[id] = sn
	}
	rings := make(map[uint64]*Ring, len(mon.rings))
	for id, r := range mon.rings {
		rings[id] = r
	}
	mon.objMu.RUnlock()

	for id, e := range enclaves {
		unlock := snapLock(&e.mu)
		shot := EnclaveShot{
			State: e.State, Regions: e.Regions, Borrowed: e.Borrowed,
			RootPPN: e.RootPPN, Measurement: e.Measurement,
			Running: e.running, CloneOf: e.CloneOf,
			LoadCursor: e.loadCursor, Mailboxes: e.Mailboxes,
			Mapped: sortedU64(e.mapped),
		}
		if e.snap != nil {
			shot.SnapID = e.snap.ID
		}
		for tid := range e.Threads {
			shot.Threads = append(shot.Threads, tid)
		}
		sort.Slice(shot.Threads, func(i, j int) bool { return shot.Threads[i] < shot.Threads[j] })
		if len(e.cow) > 0 {
			shot.COW = make(map[uint64]uint64, len(e.cow))
			for va, pg := range e.cow {
				shot.COW[va] = pg.ppn
			}
		}
		shot.ROAliases = append([]uint64(nil), e.roAliases...)
		sort.Slice(shot.ROAliases, func(i, j int) bool { return shot.ROAliases[i] < shot.ROAliases[j] })
		unlock()
		s.Enclaves[id] = shot
	}
	for id, t := range threads {
		unlock := snapLock(&t.mu)
		s.Threads[id] = ThreadShot{State: t.State, Owner: t.Owner,
			EntryPC: t.EntryPC, EntrySP: t.EntrySP, CoreID: t.CoreID, AEXValid: t.AEXValid}
		unlock()
	}
	for id, sn := range snapshots {
		unlock := snapLock(&sn.mu)
		s.Snapshots[id] = SnapshotShot{TemplateID: sn.TemplateID, Meas: sn.Meas,
			Regions: sn.Regions, Pages: len(sn.pages), Clones: sn.clones}
		unlock()
	}
	for id, r := range rings {
		unlock := snapLock(&r.mu)
		s.Rings[id] = RingShot{Producer: r.Producer, Consumer: r.Consumer,
			Capacity: len(r.slots), Count: r.count,
			WaiterEID: r.waiterEID, WaiterTID: r.waiterTID}
		unlock()
	}
	for i := range mon.regions {
		rm := &mon.regions[i]
		unlock := snapLock(&rm.mu)
		s.Regions = append(s.Regions, RegionShot{State: rm.state, Owner: rm.owner})
		unlock()
	}
	for i := range mon.cores {
		slot := &mon.cores[i]
		unlock := snapLock(&slot.mu)
		s.Cores = append(s.Cores, CoreShot{Owner: slot.owner, TID: slot.tid})
		unlock()
	}
	s.OSBitmap = mon.osBitmap.Load()
	s.PageRefs = mon.machine.Mem.TotalRefs()
	return s
}

// Equal reports whether two snapshots are bit-identical.
func (s *StateSnapshot) Equal(o *StateSnapshot) bool { return reflect.DeepEqual(s, o) }

// Diff names the first top-level sections where two snapshots differ,
// for failure messages.
func (s *StateSnapshot) Diff(o *StateSnapshot) string {
	av, bv := reflect.ValueOf(*s), reflect.ValueOf(*o)
	t := av.Type()
	var out []string
	for i := 0; i < t.NumField(); i++ {
		if !reflect.DeepEqual(av.Field(i).Interface(), bv.Field(i).Interface()) {
			out = append(out, fmt.Sprintf("%s: %+v != %+v",
				t.Field(i).Name, av.Field(i).Interface(), bv.Field(i).Interface()))
		}
	}
	if len(out) == 0 {
		return "no difference"
	}
	return fmt.Sprintf("%d field(s) differ: %v", len(out), out)
}

// CheckInvariants validates the monitor's global consistency
// conditions against a fresh capture, returning the first violation
// found (nil when all hold). Same quiescence contract as CaptureState.
func (mon *Monitor) CheckInvariants() error {
	s := mon.CaptureState()

	// Metadata accounting: the allocated page set is exactly the union
	// of the four object-id spaces, each page SM-owned.
	ids := make(map[uint64]string)
	claim := func(id uint64, kind string) error {
		if prev, dup := ids[id]; dup {
			return fmt.Errorf("metadata page %#x claimed by both %s and %s", id, prev, kind)
		}
		ids[id] = kind
		return nil
	}
	for id := range s.Enclaves {
		if err := claim(id, "enclave"); err != nil {
			return err
		}
	}
	for id := range s.Threads {
		if err := claim(id, "thread"); err != nil {
			return err
		}
	}
	for id := range s.Snapshots {
		if err := claim(id, "snapshot"); err != nil {
			return err
		}
	}
	for id := range s.Rings {
		if err := claim(id, "ring"); err != nil {
			return err
		}
	}
	if len(ids) != len(s.MetaPages) {
		return fmt.Errorf("metadata pages %d != live objects %d (leak or orphan)",
			len(s.MetaPages), len(ids))
	}
	layout := mon.machine.DRAM
	for _, pa := range s.MetaPages {
		kind, ok := ids[pa]
		if !ok {
			return fmt.Errorf("metadata page %#x has no owning object", pa)
		}
		r := layout.RegionOf(pa)
		if pa&mem.PageMask != 0 || r < 0 || s.Regions[r].Owner != api.DomainSM {
			return fmt.Errorf("%s metadata page %#x not in SM-owned memory", kind, pa)
		}
	}

	// Region partition: the live OS bitmap matches the locked states,
	// owned-by-enclave regions and enclave bitmaps cross-reference
	// exactly, and pending grants name live enclaves.
	for r, rm := range s.Regions {
		osOwned := rm.State == RegionOwned && rm.Owner == api.DomainOS
		if osOwned != (s.OSBitmap&(1<<uint(r)) != 0) {
			return fmt.Errorf("region %d: osBitmap bit %v but state %v/%#x",
				r, !osOwned, rm.State, rm.Owner)
		}
		if rm.State == RegionBlocked && rm.Owner != api.DomainOS {
			return fmt.Errorf("region %d blocked but owner %#x (must revert to OS)", r, rm.Owner)
		}
		if rm.Owner != api.DomainOS && rm.Owner != api.DomainSM {
			e, live := s.Enclaves[rm.Owner]
			if !live {
				return fmt.Errorf("region %d %v by dead enclave %#x", r, rm.State, rm.Owner)
			}
			if rm.State == RegionOwned && !e.Regions.Has(r) {
				return fmt.Errorf("region %d owned by %#x but not in its bitmap", r, rm.Owner)
			}
		}
	}
	for eid, e := range s.Enclaves {
		for _, r := range e.Regions.Regions() {
			if s.Regions[r].State != RegionOwned || s.Regions[r].Owner != eid {
				return fmt.Errorf("enclave %#x claims region %d held as %v/%#x",
					eid, r, s.Regions[r].State, s.Regions[r].Owner)
			}
		}
	}

	// Refcount sum: every physical reference is either a snapshot's
	// frozen-page hold or a clone's live alias (COW or read-only).
	var want uint64
	for _, sn := range s.Snapshots {
		want += uint64(sn.Pages)
	}
	for _, e := range s.Enclaves {
		if e.CloneOf != 0 {
			want += uint64(len(e.COW) + len(e.ROAliases))
		}
	}
	if s.PageRefs != want {
		return fmt.Errorf("page refcounts %d, want %d (snapshots + clone aliases)",
			s.PageRefs, want)
	}

	// Enclave lifecycle, thread cross-references, snapshot linkage.
	for eid, e := range s.Enclaves {
		if e.State != EnclaveLoading && e.State != EnclaveInitialized {
			return fmt.Errorf("enclave %#x in map with state %v", eid, e.State)
		}
		running := 0
		for _, tid := range e.Threads {
			t, live := s.Threads[tid]
			if !live {
				return fmt.Errorf("enclave %#x lists dead thread %#x", eid, tid)
			}
			if t.Owner != eid || (t.State != ThreadAssigned && t.State != ThreadRunning) {
				return fmt.Errorf("enclave %#x lists thread %#x in state %v owner %#x",
					eid, tid, t.State, t.Owner)
			}
			if t.State == ThreadRunning {
				running++
			}
		}
		if running != e.Running {
			return fmt.Errorf("enclave %#x running=%d but %d threads on cores", eid, e.Running, running)
		}
		if e.CloneOf != 0 {
			sn, live := s.Snapshots[e.CloneOf]
			if !live {
				return fmt.Errorf("clone %#x of dead snapshot %#x", eid, e.CloneOf)
			}
			if e.Borrowed != sn.Regions {
				return fmt.Errorf("clone %#x borrows %v, snapshot covers %v", eid, e.Borrowed, sn.Regions)
			}
		}
		if e.SnapID != 0 {
			if sn, live := s.Snapshots[e.SnapID]; !live || sn.TemplateID != eid {
				return fmt.Errorf("template %#x names snapshot %#x which does not point back", eid, e.SnapID)
			}
		}
	}
	for tid, t := range s.Threads {
		if (t.State == ThreadAvailable) != (t.Owner == 0) {
			return fmt.Errorf("thread %#x state %v with owner %#x", tid, t.State, t.Owner)
		}
		if t.Owner != 0 {
			e, live := s.Enclaves[t.Owner]
			if !live {
				return fmt.Errorf("thread %#x owned by dead enclave %#x", tid, t.Owner)
			}
			member := false
			for _, m := range e.Threads {
				member = member || m == tid
			}
			if member == (t.State == ThreadOffered) {
				return fmt.Errorf("thread %#x state %v, enclave membership %v", tid, t.State, member)
			}
		}
		if t.State == ThreadRunning {
			if t.CoreID < 0 || t.CoreID >= len(s.Cores) ||
				s.Cores[t.CoreID].Owner != t.Owner || s.Cores[t.CoreID].TID != tid {
				return fmt.Errorf("running thread %#x not scheduled on its core %d", tid, t.CoreID)
			}
		}
	}
	for snapID, sn := range s.Snapshots {
		tpl, live := s.Enclaves[sn.TemplateID]
		if !live || tpl.SnapID != snapID || tpl.CloneOf != 0 {
			return fmt.Errorf("snapshot %#x template %#x broken linkage", snapID, sn.TemplateID)
		}
		if sn.Regions&^tpl.Regions != 0 {
			return fmt.Errorf("snapshot %#x covers regions %v outside template's %v",
				snapID, sn.Regions, tpl.Regions)
		}
		clones := 0
		for _, e := range s.Enclaves {
			if e.CloneOf == snapID {
				clones++
			}
		}
		if clones != sn.Clones {
			return fmt.Errorf("snapshot %#x records %d clones, found %d", snapID, sn.Clones, clones)
		}
	}

	// Rings: endpoints and parked waiters must name live objects, and a
	// registered waiter implies the ring was empty when it parked (every
	// enqueue and wake pops the waiter) — a non-empty ring holding one
	// is a lost wake.
	for id, r := range s.Rings {
		for _, who := range []uint64{r.Producer, r.Consumer} {
			if who != api.DomainOS {
				if _, live := s.Enclaves[who]; !live {
					return fmt.Errorf("ring %#x endpoint %#x is dead", id, who)
				}
			}
		}
		if r.WaiterTID != 0 {
			t, live := s.Threads[r.WaiterTID]
			if !live || t.Owner != r.WaiterEID || r.WaiterEID != r.Consumer {
				return fmt.Errorf("ring %#x waiter %#x/%#x is orphaned", id, r.WaiterEID, r.WaiterTID)
			}
			if r.Count > 0 {
				return fmt.Errorf("ring %#x holds %d messages with a registered waiter (lost wake)",
					id, r.Count)
			}
		}
	}
	for c, slot := range s.Cores {
		if slot.Owner == api.DomainOS {
			if slot.TID != 0 {
				return fmt.Errorf("core %d OS-owned with tid %#x", c, slot.TID)
			}
			continue
		}
		t, live := s.Threads[slot.TID]
		if _, elive := s.Enclaves[slot.Owner]; !elive || !live ||
			t.State != ThreadRunning || t.Owner != slot.Owner || t.CoreID != c {
			return fmt.Errorf("core %d scheduled for %#x/%#x inconsistently", c, slot.Owner, slot.TID)
		}
	}

	return mon.checkPageTables()
}

// checkPageTables walks every enclave's live leaf PTEs to enforce the
// copy-on-write rule: no page is simultaneously writable-by-PTE and
// COW-marked, every recorded COW alias has its W bit cleared and its
// frozen page marked, and snapshot frozen pages are marked while the
// snapshot lives.
func (mon *Monitor) checkPageTables() error {
	mon.objMu.RLock()
	enclaves := make([]*Enclave, 0, len(mon.enclaves))
	for _, e := range mon.enclaves {
		enclaves = append(enclaves, e)
	}
	snapshots := make([]*Snapshot, 0, len(mon.snapshots))
	for _, sn := range mon.snapshots {
		snapshots = append(snapshots, sn)
	}
	mon.objMu.RUnlock()
	for _, e := range enclaves {
		unlock := snapLock(&e.mu)
		err := func() error {
			for va := range e.mapped {
				if !e.InEvrange(va) {
					continue // shared windows map OS pages, never COW
				}
				pteAddr, ok := mon.leafPTEAddr(e, va)
				if !ok {
					continue
				}
				pte, lerr := mon.machine.Mem.Load(pteAddr, 8)
				if lerr != nil || pte&pt.V == 0 {
					continue
				}
				pa := pt.PPNOf(pte) << mem.PageBits
				if pte&pt.W != 0 && mon.machine.Mem.IsCOW(pa) {
					return fmt.Errorf("enclave %#x va %#x: PTE writable on COW-marked page %#x",
						e.ID, va, pa)
				}
				if pg, frozen := e.cow[va]; frozen {
					if pte&pt.W != 0 {
						return fmt.Errorf("enclave %#x va %#x: COW alias with W set", e.ID, va)
					}
					if !mon.machine.Mem.IsCOW(pg.ppn << mem.PageBits) {
						return fmt.Errorf("enclave %#x va %#x: frozen page %#x not COW-marked",
							e.ID, va, pg.ppn)
					}
				}
			}
			return nil
		}()
		unlock()
		if err != nil {
			return err
		}
	}
	for _, sn := range snapshots {
		unlock := snapLock(&sn.mu)
		pages := append([]snapPage(nil), sn.pages...)
		id := sn.ID
		unlock()
		for _, pg := range pages {
			pa := pg.ppn << mem.PageBits
			if !mon.machine.Mem.IsCOW(pa) {
				return fmt.Errorf("snapshot %#x frozen page %#x lost its COW mark", id, pa)
			}
			if mon.machine.Mem.PageRefs(pa) == 0 {
				return fmt.Errorf("snapshot %#x frozen page %#x has zero refs", id, pa)
			}
		}
	}
	return nil
}
