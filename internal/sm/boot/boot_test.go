package boot

import (
	"bytes"
	"crypto/ed25519"
	"testing"
)

func fixture(t *testing.T) (*Manufacturer, *Device) {
	t.Helper()
	m := NewManufacturer("acme", []byte("mfr-seed"))
	d := m.Provision("dev-001", []byte("fused-secret-001"))
	return m, d
}

func TestBootProducesVerifiableChain(t *testing.T) {
	m, d := fixture(t)
	id, err := d.Boot([]byte("monitor image v1"))
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := id.Chain.Verify(m.RootKey())
	if err != nil {
		t.Fatalf("chain rejected: %v", err)
	}
	if !bytes.Equal(leaf.Measurement, id.Measurement[:]) {
		t.Fatal("monitor cert does not carry the boot measurement")
	}
	if !leaf.SubjectKey.Equal(id.AttestPub) {
		t.Fatal("monitor cert key mismatch")
	}
}

func TestKeysBoundToMeasurement(t *testing.T) {
	_, d := fixture(t)
	a, _ := d.Boot([]byte("image A"))
	b, _ := d.Boot([]byte("image B"))
	if a.AttestPub.Equal(b.AttestPub) {
		t.Fatal("different images produced the same attestation key")
	}
	a2, _ := d.Boot([]byte("image A"))
	if !a.AttestPub.Equal(a2.AttestPub) {
		t.Fatal("same image produced different keys across boots")
	}
}

func TestKeysBoundToDevice(t *testing.T) {
	m, _ := fixture(t)
	d1 := m.Provision("dev-A", []byte("secret-A"))
	d2 := m.Provision("dev-B", []byte("secret-B"))
	img := []byte("same image")
	idA, _ := d1.Boot(img)
	idB, _ := d2.Boot(img)
	if idA.AttestPub.Equal(idB.AttestPub) {
		t.Fatal("two devices derived the same monitor key")
	}
	if idA.Measurement != idB.Measurement {
		t.Fatal("same image measured differently on two devices")
	}
}

func TestSignaturesVerifyUnderChainKey(t *testing.T) {
	m, d := fixture(t)
	id, _ := d.Boot([]byte("image"))
	msg := []byte("attestation evidence")
	sig := ed25519.Sign(id.AttestPriv, msg)
	leaf, err := id.Chain.Verify(m.RootKey())
	if err != nil {
		t.Fatal(err)
	}
	if !ed25519.Verify(leaf.SubjectKey, msg, sig) {
		t.Fatal("signature does not verify under the certified key")
	}
}

func TestForeignManufacturerRejected(t *testing.T) {
	_, d := fixture(t)
	other := NewManufacturer("evil", []byte("other-seed"))
	id, _ := d.Boot([]byte("image"))
	if _, err := id.Chain.Verify(other.RootKey()); err == nil {
		t.Fatal("chain accepted under a foreign root")
	}
}

func TestEmptyImageRejected(t *testing.T) {
	_, d := fixture(t)
	if _, err := d.Boot(nil); err == nil {
		t.Fatal("empty monitor image accepted")
	}
}
