// Package boot implements the secure boot protocol the paper assumes
// (§IV-A, reference [7]): at reset, the boot ROM measures the security
// monitor image and derives the monitor's attestation key pair from the
// device root secret and that measurement, so a modified monitor boots
// with different, unlinkable keys. The manufacturer PKI then certifies
// the device key, and the device key certifies the monitor key together
// with the monitor measurement — the chain a remote verifier walks.
package boot

import (
	"crypto/ed25519"
	"fmt"

	"sanctorum/internal/crypto/cert"
	"sanctorum/internal/crypto/kdf"
	"sanctorum/internal/crypto/sha3"
)

// Identity is the monitor's boot-derived cryptographic identity.
type Identity struct {
	// Measurement is the SHA3-256 of the monitor image.
	Measurement [32]byte
	// AttestPriv/AttestPub form the monitor's attestation key pair,
	// derived deterministically from (device secret, measurement).
	AttestPriv ed25519.PrivateKey
	AttestPub  ed25519.PublicKey
	// DevicePub identifies the device.
	DevicePub ed25519.PublicKey
	// Chain is monitor → device → manufacturer, leaf first.
	Chain cert.Chain
}

// Manufacturer is the root of the PKI; in production it lives with the
// hardware vendor, in this reproduction it is instantiated by tests and
// examples.
type Manufacturer struct {
	Name string
	priv ed25519.PrivateKey
	pub  ed25519.PublicKey
	root *cert.Certificate
}

// NewManufacturer creates a PKI root with a deterministic key derived
// from seed (use a random seed outside tests).
func NewManufacturer(name string, seed []byte) *Manufacturer {
	key := ed25519.NewKeyFromSeed(kdf.Derive(seed, "manufacturer-root", []byte(name), ed25519.SeedSize))
	m := &Manufacturer{
		Name: name,
		priv: key,
		pub:  key.Public().(ed25519.PublicKey),
	}
	m.root = &cert.Certificate{
		Role: cert.RoleManufacturer, Subject: name, SubjectKey: m.pub, Issuer: name,
	}
	m.root.Sign(m.priv)
	return m
}

// RootKey returns the trusted root public key a verifier pins.
func (m *Manufacturer) RootKey() ed25519.PublicKey { return m.pub }

// Device models one manufactured unit: a unique root secret fused at
// the factory, and a device key certified by the manufacturer.
type Device struct {
	Serial     string
	rootSecret []byte
	priv       ed25519.PrivateKey
	pub        ed25519.PublicKey
	devCert    *cert.Certificate
	mfr        *Manufacturer
}

// Provision creates a device under the manufacturer with the given fused
// root secret.
func (m *Manufacturer) Provision(serial string, rootSecret []byte) *Device {
	devKey := ed25519.NewKeyFromSeed(kdf.Derive(rootSecret, "device-key", []byte(serial), ed25519.SeedSize))
	d := &Device{
		Serial:     serial,
		rootSecret: append([]byte(nil), rootSecret...),
		priv:       devKey,
		pub:        devKey.Public().(ed25519.PublicKey),
		mfr:        m,
	}
	d.devCert = &cert.Certificate{
		Role: cert.RoleDevice, Subject: serial, SubjectKey: d.pub, Issuer: m.Name,
	}
	d.devCert.Sign(m.priv)
	return d
}

// Boot performs the measured boot of a monitor image: it measures the
// image, derives the monitor attestation key pair bound to that
// measurement, and issues the monitor certificate. Two different images
// yield unrelated keys on the same device; the same image yields the
// same keys across boots (the property remote attestation relies on).
func (d *Device) Boot(monitorImage []byte) (*Identity, error) {
	if len(monitorImage) == 0 {
		return nil, fmt.Errorf("boot: empty monitor image")
	}
	meas := sha3.Sum256(monitorImage)
	seed := kdf.Derive(d.rootSecret, "monitor-attestation-key", meas[:], ed25519.SeedSize)
	priv := ed25519.NewKeyFromSeed(seed)
	pub := priv.Public().(ed25519.PublicKey)

	smCert := &cert.Certificate{
		Role:        cert.RoleMonitor,
		Subject:     "sanctorum@" + d.Serial,
		SubjectKey:  pub,
		Issuer:      d.Serial,
		Measurement: meas[:],
	}
	smCert.Sign(d.priv)

	return &Identity{
		Measurement: meas,
		AttestPriv:  priv,
		AttestPub:   pub,
		DevicePub:   d.pub,
		Chain:       cert.Chain{smCert, d.devCert, d.mfr.root},
	}, nil
}
