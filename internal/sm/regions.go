package sm

import (
	"sync"

	"sanctorum/internal/sm/api"
)

// RegionState is the ABI-level region lifecycle state (paper Fig 2),
// aliased so monitor-internal code and callers share one definition.
type RegionState = api.RegionState

// Region states, re-exported for monitor-side code and tests.
const (
	RegionOwned     = api.RegionOwned
	RegionPending   = api.RegionPending
	RegionBlocked   = api.RegionBlocked
	RegionAvailable = api.RegionAvailable
)

// regionMeta is the monitor's metadata for one DRAM region. The mutex
// is the region's §V-A transaction lock: every transition TryLocks it
// and fails with ErrRetry under contention. Whichever transaction
// changes ownership also maintains the monitor's live osBitmap before
// releasing the lock, so the atomic bitmap is always consistent with
// the locked states.
type regionMeta struct {
	mu    sync.Mutex
	state RegionState
	owner uint64 // DomainOS, DomainSM, or eid
}

// regionInfo reports a region's state and owner (CallRegionInfo).
func (mon *Monitor) regionInfo(r int) (RegionState, uint64, api.Error) {
	if r < 0 || r >= len(mon.regions) {
		return 0, 0, api.ErrInvalidValue
	}
	rm := &mon.regions[r]
	if !mon.tryLock(&rm.mu, LockRegion, uint64(r)) {
		return 0, 0, api.ErrRetry
	}
	defer rm.mu.Unlock()
	return rm.state, rm.owner, api.OK
}

// grantRegion re-allocates an available region to a new owner, or — for
// a loading enclave or the SM — transfers it directly. Called by the
// untrusted OS (grant(resource, new_owner) in Fig 2, CallGrantRegion).
// Granting to the SM turns the region into a metadata region (§V-B:
// metadata must wholly reside in SM-owned memory).
func (mon *Monitor) grantRegion(r int, newOwner uint64) api.Error {
	if r < 0 || r >= len(mon.regions) {
		return api.ErrInvalidValue
	}
	rm := &mon.regions[r]
	if !mon.tryLock(&rm.mu, LockRegion, uint64(r)) {
		return api.ErrRetry
	}
	defer rm.mu.Unlock()

	// The OS may give away a region it owns, or re-allocate a cleaned
	// one; it may never touch regions in other states.
	switch rm.state {
	case RegionAvailable:
	case RegionOwned:
		if rm.owner != api.DomainOS {
			return api.ErrUnauthorized
		}
	default:
		return api.ErrInvalidState
	}

	switch newOwner {
	case api.DomainOS:
		rm.state, rm.owner = RegionOwned, api.DomainOS
		mon.setOSOwned(r, true)
	case api.DomainSM:
		rm.state, rm.owner = RegionOwned, api.DomainSM
		mon.setOSOwned(r, false)
		mon.objMu.Lock()
		mon.metaRgn[r] = true
		mon.objMu.Unlock()
	default:
		mon.objMu.RLock()
		e := mon.enclaves[newOwner]
		mon.objMu.RUnlock()
		if e == nil {
			return api.ErrInvalidValue
		}
		if !mon.tryLock(&e.mu, LockEnclave, newOwner) {
			return api.ErrRetry
		}
		defer e.mu.Unlock()
		switch e.State {
		case EnclaveLoading:
			// Grants during loading take effect immediately; they must
			// precede any page loads so the ascending-page invariant
			// can be established over the final region set.
			if e.pagesFrozen {
				return api.ErrInvalidState
			}
			rm.state, rm.owner = RegionOwned, newOwner
			e.Regions = e.Regions.Set(r)
		case EnclaveInitialized:
			// Running enclaves must accept offered resources (Fig 2).
			rm.state, rm.owner = RegionPending, newOwner
		default:
			return api.ErrInvalidState
		}
		mon.setOSOwned(r, false)
	}

	mon.refreshViews()
	return api.OK
}

// blockRegionAs relinquishes a region on behalf of its owner
// (block(resource) in Fig 2, CallBlockRegion): the OS from a host-side
// Request, an enclave from its trap context.
func (mon *Monitor) blockRegionAs(owner uint64, r int) api.Error {
	if r < 0 || r >= len(mon.regions) {
		return api.ErrInvalidValue
	}
	rm := &mon.regions[r]
	if !mon.tryLock(&rm.mu, LockRegion, uint64(r)) {
		return api.ErrRetry
	}
	defer rm.mu.Unlock()
	// Take every lock the transaction needs before mutating anything,
	// so a contention failure leaves no state half-changed.
	var e *Enclave
	if owner != api.DomainOS && owner != api.DomainSM {
		mon.objMu.RLock()
		e = mon.enclaves[owner]
		mon.objMu.RUnlock()
		if e != nil {
			if !mon.tryLock(&e.mu, LockEnclave, owner) {
				return api.ErrRetry
			}
			defer e.mu.Unlock()
		}
	}
	if rm.state != RegionOwned {
		return api.ErrInvalidState
	}
	if rm.owner != owner {
		return api.ErrUnauthorized
	}
	if e != nil && e.snap != nil {
		// A frozen template's regions hold pages clones alias; they
		// cannot leave the template until the snapshot is released.
		return api.ErrInvalidState
	}
	// Ownership reverts to the OS pool immediately: nothing reads the
	// old owner once the state is Blocked (clean_region resets it
	// anyway), and leaving it would let a region name an enclave that
	// has since been deleted.
	rm.state, rm.owner = RegionBlocked, api.DomainOS
	if owner == api.DomainOS {
		mon.setOSOwned(r, false)
	}
	if e != nil {
		e.Regions = e.Regions.Clear(r)
	}

	mon.refreshViews()
	return api.OK
}

// cleanRegion scrubs a blocked region and makes it available
// (clean(resource) by the OS in Fig 2, CallCleanRegion). The monitor
// zeroes the region, flushes its cache footprint, and shoots down TLB
// entries on every core — the cross-core work travels as
// inter-processor mailbox requests that running harts acknowledge at
// instruction boundaries — before the region can reach a new protection
// domain. OS (no-hart) context only.
func (mon *Monitor) cleanRegion(r int) api.Error {
	if r < 0 || r >= len(mon.regions) {
		return api.ErrInvalidValue
	}
	rm := &mon.regions[r]
	if !mon.tryLock(&rm.mu, LockRegion, uint64(r)) {
		return api.ErrRetry
	}
	defer rm.mu.Unlock()
	if rm.state != RegionBlocked {
		return api.ErrInvalidState
	}
	// Defense in depth for the snapshot subsystem: a region whose pages
	// still carry alias references (frozen snapshot pages with live
	// clones) must never be scrubbed — the block/delete guards already
	// prevent reaching here, but the refcount is the ground truth.
	layout := mon.machine.DRAM
	if mon.machine.Mem.RangeHasRefs(layout.Base(r), layout.RegionSize()) {
		return api.ErrInvalidState
	}
	if err := mon.plat.CleanRegion(mon.machine, r); err != nil {
		return api.ErrInvalidValue
	}
	mon.plat.ShootdownRegion(mon.machine, r)
	rm.state, rm.owner = RegionAvailable, api.DomainOS

	mon.refreshViews()
	return api.OK
}

// acceptRegion completes a pending grant (accept_resource by the
// enclave, Fig 2).
func (mon *Monitor) acceptRegion(e *Enclave, r int) api.Error {
	if r < 0 || r >= len(mon.regions) {
		return api.ErrInvalidValue
	}
	rm := &mon.regions[r]
	if !mon.tryLock(&rm.mu, LockRegion, uint64(r)) {
		return api.ErrRetry
	}
	defer rm.mu.Unlock()
	if !mon.tryLock(&e.mu, LockEnclave, e.ID) {
		return api.ErrRetry
	}
	defer e.mu.Unlock()
	if rm.state != RegionPending || rm.owner != e.ID {
		return api.ErrInvalidState
	}
	rm.state = RegionOwned
	e.Regions = e.Regions.Set(r)

	mon.refreshViews()
	return api.OK
}
