package sm

import (
	"bytes"
	"testing"

	"sanctorum/internal/hw/pt"
	"sanctorum/internal/isa"
	"sanctorum/internal/sm/api"
)

// buildTemplate loads a two-page enclave — one R|X code page with
// recognizable contents, one R|W data page — with one thread, and
// seals it. Returns the eid (thread at slot+1).
func (f *fixture) buildTemplate(t testing.TB, slot, region int) uint64 {
	t.Helper()
	eid := f.createLoading(t, slot, region)
	for _, alloc := range [][2]uint64{{0, 2}, {testEvBase, 1}, {testEvBase, 0}} {
		if st := f.AllocatePageTable(eid, alloc[0], int(alloc[1])); st != api.OK {
			t.Fatalf("alloc table: %v", st)
		}
	}
	f.m.Mem.WriteBytes(0x1000, bytes.Repeat([]byte{0xC0}, 64))
	if st := f.LoadPage(eid, testEvBase, 0x1000, pt.R|pt.X); st != api.OK {
		t.Fatalf("load code: %v", st)
	}
	f.m.Mem.WriteBytes(0x2000, bytes.Repeat([]byte{0xDA}, 64))
	if st := f.LoadPage(eid, testEvBase+0x1000, 0x2000, pt.R|pt.W); st != api.OK {
		t.Fatalf("load data: %v", st)
	}
	if st := f.LoadThread(eid, f.metaPage(slot+1), testEvBase, testEvBase+0x800); st != api.OK {
		t.Fatalf("load thread: %v", st)
	}
	if st := f.InitEnclave(eid); st != api.OK {
		t.Fatalf("init: %v", st)
	}
	return eid
}

// prepClone creates an untouched Loading enclave with the template's
// evrange and one granted region — the state clone_enclave requires.
func (f *fixture) prepClone(t testing.TB, slot, region int) uint64 {
	t.Helper()
	eid := f.metaPage(slot)
	if st := f.CreateEnclave(eid, testEvBase, testEvMask); st != api.OK {
		t.Fatalf("create clone shell: %v", st)
	}
	if st := f.GrantRegion(region, eid); st != api.OK {
		t.Fatalf("grant clone region: %v", st)
	}
	return eid
}

func TestSnapshotCloneLifecycle(t *testing.T) {
	f := newFixture(t)
	if refs := f.m.Mem.TotalRefs(); refs != 0 {
		t.Fatalf("baseline refs = %d", refs)
	}
	tmpl := f.buildTemplate(t, 0, 10)
	snapID := f.metaPage(2)
	if st := f.SnapshotEnclave(tmpl, snapID); st != api.OK {
		t.Fatalf("snapshot: %v", st)
	}
	// Two private pages frozen: the snapshot holds one reference each.
	if refs := f.m.Mem.TotalRefs(); refs != 2 {
		t.Fatalf("refs after snapshot = %d, want 2", refs)
	}
	// A second snapshot of the same template is refused.
	if st := f.SnapshotEnclave(tmpl, f.metaPage(3)); st != api.ErrInvalidState {
		t.Fatalf("double snapshot: %v", st)
	}
	// The template cannot be deleted or its region blocked while the
	// snapshot lives.
	if st := f.DeleteEnclave(tmpl); st != api.ErrInvalidState {
		t.Fatalf("delete frozen template: %v", st)
	}
	if st := f.mon.blockRegionAs(tmpl, 10); st != api.ErrInvalidState {
		t.Fatalf("block frozen template region: %v", st)
	}

	clone := f.prepClone(t, 4, 11)
	tidBase := f.metaPage(5)
	if st := f.CloneEnclave(clone, snapID, tidBase, 0); st != api.OK {
		t.Fatalf("clone: %v", st)
	}
	state, meas, st := f.mon.EnclaveInfo(clone)
	if st != api.OK || state != EnclaveInitialized {
		t.Fatalf("clone state: %v/%v", state, st)
	}
	_, tmplMeas, _ := f.mon.EnclaveInfo(tmpl)
	if meas != tmplMeas {
		t.Fatal("clone did not inherit the template measurement")
	}
	// One thread recreated, assigned to the clone.
	f.mon.objMu.RLock()
	th := f.mon.threads[tidBase]
	f.mon.objMu.RUnlock()
	if th == nil || th.State != ThreadAssigned || th.Owner != clone {
		t.Fatalf("clone thread: %+v", th)
	}
	if th.EntryPC != testEvBase || th.EntrySP != testEvBase+0x800 {
		t.Fatalf("clone thread spec: pc=%#x sp=%#x", th.EntryPC, th.EntrySP)
	}
	// The clone added one alias reference per frozen page.
	if refs := f.m.Mem.TotalRefs(); refs != 4 {
		t.Fatalf("refs after clone = %d, want 4", refs)
	}
	// The clone reads the template's pages through its own tables.
	f.mon.objMu.RLock()
	ce := f.mon.enclaves[clone]
	f.mon.objMu.RUnlock()
	if got, ok := f.mon.readEnclave(ce, testEvBase+0x1000, 4); !ok || !bytes.Equal(got, []byte{0xDA, 0xDA, 0xDA, 0xDA}) {
		t.Fatalf("clone read of aliased data page: %v %x", ok, got)
	}
	// Releasing the snapshot with a live clone must fail.
	if st := f.ReleaseSnapshot(snapID); st != api.ErrInvalidState {
		t.Fatalf("release with live clone: %v", st)
	}
	// Cleaning a region holding referenced pages must fail even if
	// forced into the blocked state.
	f.mon.regions[10].state = RegionBlocked
	if st := f.CleanRegion(10); st != api.ErrInvalidState {
		t.Fatalf("clean referenced region: %v", st)
	}
	f.mon.regions[10].state = RegionOwned

	// Delete the clone: its references die, the snapshot's remain.
	if st := f.DeleteEnclave(clone); st != api.OK {
		t.Fatalf("delete clone: %v", st)
	}
	if st := f.DeleteThread(tidBase); st != api.OK {
		t.Fatalf("delete clone thread: %v", st)
	}
	if refs := f.m.Mem.TotalRefs(); refs != 2 {
		t.Fatalf("refs after clone delete = %d, want 2", refs)
	}
	// Release: refs to baseline, template thaws and can be deleted.
	if st := f.ReleaseSnapshot(snapID); st != api.OK {
		t.Fatalf("release: %v", st)
	}
	if refs := f.m.Mem.TotalRefs(); refs != 0 {
		t.Fatalf("refs after release = %d, want 0", refs)
	}
	if st := f.ReleaseSnapshot(snapID); st != api.ErrInvalidValue {
		t.Fatalf("double release: %v", st)
	}
	if st := f.DeleteEnclave(tmpl); st != api.OK {
		t.Fatalf("delete thawed template: %v", st)
	}
	// Both regions clean back to available.
	for _, r := range []int{10, 11} {
		if st := f.CleanRegion(r); st != api.OK {
			t.Fatalf("clean region %d: %v", r, st)
		}
	}
}

func TestCloneValidation(t *testing.T) {
	f := newFixture(t)
	tmpl := f.buildTemplate(t, 0, 10)
	snapID := f.metaPage(2)
	if st := f.SnapshotEnclave(tmpl, snapID); st != api.OK {
		t.Fatalf("snapshot: %v", st)
	}

	// Mismatched evrange.
	bad := f.metaPage(4)
	if st := f.CreateEnclave(bad, testEvBase+(1<<30), testEvMask); st != api.OK {
		t.Fatalf("create: %v", st)
	}
	if st := f.GrantRegion(11, bad); st != api.OK {
		t.Fatalf("grant: %v", st)
	}
	if st := f.CloneEnclave(bad, snapID, f.metaPage(5), 0); st != api.ErrInvalidValue {
		t.Fatalf("evrange mismatch: %v", st)
	}
	if st := f.DeleteEnclave(bad); st != api.OK {
		t.Fatalf("delete: %v", st)
	}
	if st := f.CleanRegion(11); st != api.OK {
		t.Fatalf("clean: %v", st)
	}

	// No regions granted: no memory for the clone's page tables.
	poor := f.metaPage(4)
	if st := f.CreateEnclave(poor, testEvBase, testEvMask); st != api.OK {
		t.Fatalf("create poor: %v", st)
	}
	if st := f.CloneEnclave(poor, snapID, f.metaPage(5), 0); st != api.ErrNoResources {
		t.Fatalf("clone with no regions: %v", st)
	}

	// An enclave that already allocated tables cannot be a clone shell.
	touched := f.createLoading(t, 6, 12)
	if st := f.AllocatePageTable(touched, 0, 2); st != api.OK {
		t.Fatalf("alloc: %v", st)
	}
	if st := f.CloneEnclave(touched, snapID, f.metaPage(7), 0); st != api.ErrInvalidState {
		t.Fatalf("clone into touched enclave: %v", st)
	}

	// tid base colliding with an allocated metadata page.
	shell := f.prepClone(t, 8, 13)
	if st := f.CloneEnclave(shell, snapID, tmpl, 0); st != api.ErrInvalidValue {
		t.Fatalf("tid collides with template eid: %v", st)
	}
	if st := f.CloneEnclave(shell, snapID, f.metaPage(9)+4, 0); st != api.ErrInvalidValue {
		t.Fatalf("unaligned tid base: %v", st)
	}
	// Shared-window override on a template with no shared mappings.
	if st := f.CloneEnclave(shell, snapID, f.metaPage(9), 0x3000); st != api.ErrInvalidValue {
		t.Fatalf("shared override without shared window: %v", st)
	}
	// A valid clone still works after all the refusals, and a clone
	// cannot itself be snapshotted.
	if st := f.CloneEnclave(shell, snapID, f.metaPage(9), 0); st != api.OK {
		t.Fatalf("valid clone: %v", st)
	}
	if st := f.SnapshotEnclave(shell, f.metaPage(11)); st != api.ErrInvalidState {
		t.Fatalf("snapshot of a clone: %v", st)
	}
}

// TestCOWFaultCopiesPage drives the monitor's copy-then-retry protocol
// directly: a store page fault on a clone's aliased data page must
// copy the frozen page into the clone's own memory, restore W on the
// new PTE, drop the alias reference, and leave the template page
// untouched.
func TestCOWFaultCopiesPage(t *testing.T) {
	f := newFixture(t)
	tmpl := f.buildTemplate(t, 0, 10)
	snapID := f.metaPage(2)
	if st := f.SnapshotEnclave(tmpl, snapID); st != api.OK {
		t.Fatalf("snapshot: %v", st)
	}
	clone := f.prepClone(t, 4, 11)
	if st := f.CloneEnclave(clone, snapID, f.metaPage(5), 0); st != api.OK {
		t.Fatalf("clone: %v", st)
	}
	f.mon.objMu.RLock()
	ce := f.mon.enclaves[clone]
	f.mon.objMu.RUnlock()

	dataVA := testEvBase + 0x1000
	// The physical backstop refuses in-place writes to the frozen page.
	pgBefore, _ := f.mon.enclaveVAtoPA(ce, dataVA, pt.Load)
	if err := f.m.Mem.Store(pgBefore, 8, 0xBAD); err == nil {
		t.Fatal("physical store to a frozen page succeeded")
	}

	refsBefore := f.m.Mem.TotalRefs()
	tr := &isa.Trap{Cause: isa.CauseStorePageFault, PC: testEvBase, Value: dataVA + 0x18}
	disp, handled := f.mon.cowFault(f.m.Cores[0], slotView{owner: clone}, tr)
	if !handled || disp != 0 /* machine.DispResume */ {
		t.Fatalf("cowFault: handled=%v disp=%v", handled, disp)
	}
	if refs := f.m.Mem.TotalRefs(); refs != refsBefore-1 {
		t.Fatalf("refs after COW copy = %d, want %d", refs, refsBefore-1)
	}
	// The clone's translation moved to a new, writable page with the
	// template contents; the template still maps the frozen page.
	pgAfter, ok := f.mon.enclaveVAtoPA(ce, dataVA, pt.Store)
	if !ok {
		t.Fatal("clone data page not writable after COW copy")
	}
	if pgAfter == pgBefore {
		t.Fatal("COW fault did not move the clone to a private copy")
	}
	buf := make([]byte, 4)
	f.m.Mem.ReadBytes(pgAfter, buf)
	if !bytes.Equal(buf, []byte{0xDA, 0xDA, 0xDA, 0xDA}) {
		t.Fatalf("private copy contents %x", buf)
	}
	// Writes to the private copy succeed and do not reach the frozen
	// template page.
	if err := f.m.Mem.Store(pgAfter, 8, 0x1122334455667788); err != nil {
		t.Fatalf("store to private copy: %v", err)
	}
	f.m.Mem.ReadBytes(pgBefore, buf)
	if !bytes.Equal(buf, []byte{0xDA, 0xDA, 0xDA, 0xDA}) {
		t.Fatal("write to the private copy leaked into the frozen page")
	}
	// A second fault on the same VA is no longer a COW fault: it takes
	// the spurious path (translation now writable → stale-TLB resume)
	// and the clone's cow map no longer lists the page.
	if _, handled := f.mon.cowFault(f.m.Cores[0], slotView{owner: clone}, tr); !handled {
		t.Fatal("spurious refault after resolution not resumed")
	}
	if _, still := ce.cow[dataVA]; still {
		t.Fatal("resolved page still in the clone's cow map")
	}
}

// TestMonitorWriteResolvesCOW checks that the monitor's own copy-in
// paths (writeEnclave: mail delivery, get_field, crypto-service
// outputs) trigger the same copy-on-write resolution a guest store
// would: a clone receiving monitor-written data into a never-written
// data page behaves exactly like its directly built template, and the
// frozen page stays intact.
func TestMonitorWriteResolvesCOW(t *testing.T) {
	f := newFixture(t)
	tmpl := f.buildTemplate(t, 0, 10)
	snapID := f.metaPage(2)
	if st := f.SnapshotEnclave(tmpl, snapID); st != api.OK {
		t.Fatalf("snapshot: %v", st)
	}
	clone := f.prepClone(t, 4, 11)
	if st := f.CloneEnclave(clone, snapID, f.metaPage(5), 0); st != api.OK {
		t.Fatalf("clone: %v", st)
	}
	f.mon.objMu.RLock()
	ce := f.mon.enclaves[clone]
	f.mon.objMu.RUnlock()

	dataVA := testEvBase + 0x1000
	frozenPA, _ := f.mon.enclaveVAtoPA(ce, dataVA, pt.Load)
	refsBefore := f.m.Mem.TotalRefs()
	if ok := f.mon.writeEnclave(ce, dataVA+8, []byte{1, 2, 3}); !ok {
		t.Fatal("monitor write into a COW alias failed")
	}
	if refs := f.m.Mem.TotalRefs(); refs != refsBefore-1 {
		t.Fatalf("refs after monitor-triggered COW copy = %d, want %d", refs, refsBefore-1)
	}
	newPA, ok := f.mon.enclaveVAtoPA(ce, dataVA, pt.Store)
	if !ok || newPA == frozenPA {
		t.Fatalf("clone still on the frozen page after monitor write (ok=%v)", ok)
	}
	got := make([]byte, 4)
	f.m.Mem.ReadBytes(newPA+8, got)
	if !bytes.Equal(got, []byte{1, 2, 3, 0xDA}) {
		t.Fatalf("private copy after monitor write: %x", got)
	}
	buf := make([]byte, 4)
	f.m.Mem.ReadBytes(frozenPA+8, buf)
	if !bytes.Equal(buf, []byte{0xDA, 0xDA, 0xDA, 0xDA}) {
		t.Fatal("monitor write leaked into the frozen page")
	}
}

// TestTemplateCOWDoesNotUnderflowRefs reproduces the review finding:
// a frozen template is allowed to run and copy-on-write its own
// pages; that resolution must not drop the snapshot's reference, and
// releasing the snapshot afterwards must neither panic nor leak.
func TestTemplateCOWDoesNotUnderflowRefs(t *testing.T) {
	f := newFixture(t)
	tmpl := f.buildTemplate(t, 0, 10)
	snapID := f.metaPage(2)
	if st := f.SnapshotEnclave(tmpl, snapID); st != api.OK {
		t.Fatalf("snapshot: %v", st)
	}
	f.mon.objMu.RLock()
	te := f.mon.enclaves[tmpl]
	f.mon.objMu.RUnlock()

	dataVA := testEvBase + 0x1000
	refsBefore := f.m.Mem.TotalRefs()
	tr := &isa.Trap{Cause: isa.CauseStorePageFault, PC: testEvBase, Value: dataVA}
	if _, handled := f.mon.cowFault(f.m.Cores[0], slotView{owner: tmpl}, tr); !handled {
		t.Fatal("template COW fault not handled")
	}
	// The snapshot's reference survives the template's own copy.
	if refs := f.m.Mem.TotalRefs(); refs != refsBefore {
		t.Fatalf("template COW copy moved refs: %d, want %d", refs, refsBefore)
	}
	if _, ok := f.mon.enclaveVAtoPA(te, dataVA, pt.Store); !ok {
		t.Fatal("template data page not writable after its COW copy")
	}
	// Release must drop exactly the snapshot's references — to zero,
	// without underflow — even though the template diverged.
	if st := f.ReleaseSnapshot(snapID); st != api.OK {
		t.Fatalf("release after template divergence: %v", st)
	}
	if refs := f.m.Mem.TotalRefs(); refs != 0 {
		t.Fatalf("refs after release = %d, want 0", refs)
	}
	if st := f.DeleteEnclave(tmpl); st != api.OK {
		t.Fatalf("delete template: %v", st)
	}
}

// TestFieldEnclaveIdentity checks the attestation-evidence rule: a
// clone shares the template measurement but reports its own enclave ID
// with origin=1.
func TestFieldEnclaveIdentity(t *testing.T) {
	f := newFixture(t)
	tmpl := f.buildTemplate(t, 0, 10)
	snapID := f.metaPage(2)
	if st := f.SnapshotEnclave(tmpl, snapID); st != api.OK {
		t.Fatalf("snapshot: %v", st)
	}
	clone := f.prepClone(t, 4, 11)
	if st := f.CloneEnclave(clone, snapID, f.metaPage(5), 0); st != api.OK {
		t.Fatalf("clone: %v", st)
	}
	f.mon.objMu.RLock()
	te, ce := f.mon.enclaves[tmpl], f.mon.enclaves[clone]
	f.mon.objMu.RUnlock()

	tID, st := f.mon.fieldBytes(api.FieldEnclaveIdentity, te)
	if st != api.OK || len(tID) != 48 {
		t.Fatalf("template identity: %v (%d bytes)", st, len(tID))
	}
	cID, st := f.mon.fieldBytes(api.FieldEnclaveIdentity, ce)
	if st != api.OK || len(cID) != 48 {
		t.Fatalf("clone identity: %v (%d bytes)", st, len(cID))
	}
	if !bytes.Equal(tID[:32], cID[:32]) {
		t.Fatal("identity measurements differ between template and clone")
	}
	if bytes.Equal(tID[32:40], cID[32:40]) {
		t.Fatal("identity eids identical between template and clone")
	}
	if tID[40] != 0 {
		t.Fatal("template identity claims clone origin")
	}
	if cID[40] != 1 {
		t.Fatal("clone identity does not declare its snapshot origin")
	}
	// The OS cannot read the identity field.
	if _, st := f.mon.fieldBytes(api.FieldEnclaveIdentity, nil); st != api.ErrUnauthorized {
		t.Fatalf("OS read of enclave identity: %v", st)
	}
}
