package sm

import (
	"encoding/binary"
	"hash"

	"sanctorum/internal/crypto/sha3"
)

// Measurement is the running cryptographic measurement of an enclave's
// initial state (paper §VI-A). Every monitor operation that affects the
// initial state — creation, page-table allocation, page loads, thread
// loads — extends the hash; init_enclave finalizes it. Physical
// addresses are never absorbed, so two enclaves with identical virtual
// layouts and contents measure identically regardless of placement.
type Measurement struct {
	h     hash.Hash
	final [32]byte
	done  bool
}

// Measurement transcript op codes.
const (
	measOpCreate    uint64 = 0x6350 // 'cP'
	measOpPageTable uint64 = 0x7450 // 'tP'
	measOpPage      uint64 = 0x6450 // 'dP'
	measOpThread    uint64 = 0x6850 // 'hP'
	measOpShared    uint64 = 0x7350 // 'sP'
)

// NewMeasurement starts a measurement transcript.
func NewMeasurement() *Measurement {
	return &Measurement{h: sha3.New256()}
}

func (m *Measurement) word(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	m.h.Write(b[:])
}

// ExtendCreate absorbs enclave creation parameters: the virtual range
// only — the eid is a physical address and is deliberately excluded.
func (m *Measurement) ExtendCreate(evBase, evMask uint64) {
	m.word(measOpCreate)
	m.word(evBase)
	m.word(evMask)
}

// ExtendPageTable absorbs a page-table allocation for (va, level).
func (m *Measurement) ExtendPageTable(va uint64, level int) {
	m.word(measOpPageTable)
	m.word(va)
	m.word(uint64(level))
}

// ExtendPage absorbs a loaded page: its virtual address, permissions and
// full content.
func (m *Measurement) ExtendPage(va uint64, perms uint64, content []byte) {
	m.word(measOpPage)
	m.word(va)
	m.word(perms)
	m.h.Write(content)
}

// ExtendThread absorbs a thread load: entry PC and entry SP.
func (m *Measurement) ExtendThread(entryPC, entrySP uint64) {
	m.word(measOpThread)
	m.word(entryPC)
	m.word(entrySP)
}

// ExtendShared absorbs a shared-window mapping: only its virtual
// address — the backing physical page is untrusted OS memory whose
// placement and contents are outside the enclave's initial state.
func (m *Measurement) ExtendShared(va uint64) {
	m.word(measOpShared)
	m.word(va)
}

// Finalize computes the final measurement; further extends are invalid.
func (m *Measurement) Finalize() [32]byte {
	if !m.done {
		copy(m.final[:], m.h.Sum(nil))
		m.done = true
	}
	return m.final
}

// Value returns the finalized measurement.
func (m *Measurement) Value() [32]byte { return m.final }
