package sm

import (
	"bytes"
	"encoding/binary"
	"testing"

	"sanctorum/internal/sm/api"
)

// ringFixture sets up a fixture with an OS→OS loopback ring of the
// given capacity, plus an OS staging page for payload traffic.
func ringFixture(t testing.TB, capacity int) (*fixture, uint64, uint64) {
	t.Helper()
	f := newFixture(t)
	ringID := f.metaPage(12)
	if st := f.call(api.CallRingCreate, ringID, api.DomainOS, api.DomainOS, uint64(capacity)); st != api.OK {
		t.Fatalf("ring_create: %v", st)
	}
	stagePA := f.m.DRAM.Base(1) // OS-owned
	return f, ringID, stagePA
}

// stageMsgs writes count distinct payloads at stagePA and returns them.
func stageMsgs(t testing.TB, f *fixture, stagePA uint64, count int, tag byte) [][]byte {
	t.Helper()
	var out [][]byte
	buf := make([]byte, count*api.RingMsgSize)
	for i := 0; i < count; i++ {
		msg := buf[i*api.RingMsgSize : (i+1)*api.RingMsgSize]
		msg[0] = tag
		msg[1] = byte(i)
		msg[api.RingMsgSize-1] = ^byte(i)
		out = append(out, msg)
	}
	if err := f.m.Mem.WriteBytes(stagePA, buf); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRingSendRecvRoundTrip(t *testing.T) {
	f, ringID, stagePA := ringFixture(t, 8)
	msgs := stageMsgs(t, f, stagePA, 3, 0xA1)
	resp := f.mon.Dispatch(api.OSRequest(api.CallRingSend, ringID, stagePA, 3))
	if resp.Status != api.OK || resp.Values[0] != 3 {
		t.Fatalf("send: %v, n=%d", resp.Status, resp.Values[0])
	}
	outPA := stagePA + 0x1000
	resp = f.mon.Dispatch(api.OSRequest(api.CallRingRecv, ringID, outPA, 8))
	if resp.Status != api.OK || resp.Values[0] != 3 {
		t.Fatalf("recv: %v, n=%d", resp.Status, resp.Values[0])
	}
	records := make([]byte, 3*api.RingRecordSize)
	if err := f.m.Mem.ReadBytes(outPA, records); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		rec := records[i*api.RingRecordSize : (i+1)*api.RingRecordSize]
		// OS sender stamp: zero measurement, DomainOS id.
		if !bytes.Equal(rec[:32], make([]byte, 32)) {
			t.Errorf("record %d: non-zero measurement for an OS send", i)
		}
		if sender := binary.LittleEndian.Uint64(rec[32:40]); sender != api.DomainOS {
			t.Errorf("record %d: sender %#x, want DomainOS", i, sender)
		}
		if !bytes.Equal(rec[api.RingStampSize:], msgs[i]) {
			t.Errorf("record %d payload mismatch", i)
		}
	}
	// Drained: the next recv refuses.
	if st := f.call(api.CallRingRecv, ringID, outPA, 1); st != api.ErrInvalidState {
		t.Fatalf("recv on empty ring: %v, want ErrInvalidState", st)
	}
}

// TestRingFullAndPartialSend exercises the capacity edge: a full ring
// refuses a send outright, a nearly full one takes what fits, and
// FIFO order survives wraparound.
func TestRingFullAndPartialSend(t *testing.T) {
	f, ringID, stagePA := ringFixture(t, 4)
	stageMsgs(t, f, stagePA, 4, 0xB0)
	outPA := stagePA + 0x1000

	// Fill via two sends, then overflow.
	if resp := f.mon.Dispatch(api.OSRequest(api.CallRingSend, ringID, stagePA, 3)); resp.Values[0] != 3 {
		t.Fatalf("fill send: %+v", resp)
	}
	resp := f.mon.Dispatch(api.OSRequest(api.CallRingSend, ringID, stagePA, 3))
	if resp.Status != api.OK || resp.Values[0] != 1 {
		t.Fatalf("partial send into 1 free slot: %v n=%d, want OK n=1", resp.Status, resp.Values[0])
	}
	before := snapshot(f.mon)
	if st := f.call(api.CallRingSend, ringID, stagePA, 1); st != api.ErrInvalidState {
		t.Fatalf("send to full ring: %v, want ErrInvalidState", st)
	}
	if !snapshot(f.mon).equal(before) {
		t.Fatal("a refused send mutated monitor state")
	}
	// Drain two, send two (wraps), then drain everything in order.
	if resp := f.mon.Dispatch(api.OSRequest(api.CallRingRecv, ringID, outPA, 2)); resp.Values[0] != 2 {
		t.Fatalf("drain 2: %+v", resp)
	}
	stageMsgs(t, f, stagePA, 2, 0xC0)
	if resp := f.mon.Dispatch(api.OSRequest(api.CallRingSend, ringID, stagePA, 2)); resp.Values[0] != 2 {
		t.Fatalf("wrap send: %+v", resp)
	}
	var got []byte
	for {
		resp := f.mon.Dispatch(api.OSRequest(api.CallRingRecv, ringID, outPA, 3))
		if resp.Status == api.ErrInvalidState {
			break
		}
		if resp.Status != api.OK {
			t.Fatalf("drain: %v", resp.Status)
		}
		n := int(resp.Values[0])
		records := make([]byte, n*api.RingRecordSize)
		if err := f.m.Mem.ReadBytes(outPA, records); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			got = append(got, records[i*api.RingRecordSize+api.RingStampSize],
				records[i*api.RingRecordSize+api.RingStampSize+1])
		}
	}
	want := []byte{0xB0, 2, 0xB0, 0, 0xC0, 0, 0xC0, 1}
	if !bytes.Equal(got, want) {
		t.Fatalf("FIFO across wraparound: %x, want %x", got, want)
	}
}

// TestRingBatchSequentialEquivalence sends N messages one per call and
// N messages in one batched call, and requires the recv side to
// observe identical records either way.
func TestRingBatchSequentialEquivalence(t *testing.T) {
	const n = 8
	run := func(batched bool) []byte {
		f, ringID, stagePA := ringFixture(t, 16)
		stageMsgs(t, f, stagePA, n, 0xD0)
		if batched {
			resp := f.mon.Dispatch(api.OSRequest(api.CallRingSend, ringID, stagePA, n))
			if resp.Status != api.OK || resp.Values[0] != n {
				t.Fatalf("batched send: %+v", resp)
			}
		} else {
			for i := 0; i < n; i++ {
				resp := f.mon.Dispatch(api.OSRequest(api.CallRingSend, ringID,
					stagePA+uint64(i)*api.RingMsgSize, 1))
				if resp.Status != api.OK || resp.Values[0] != 1 {
					t.Fatalf("sequential send %d: %+v", i, resp)
				}
			}
		}
		outPA := stagePA + 0x1000
		var records []byte
		for {
			resp := f.mon.Dispatch(api.OSRequest(api.CallRingRecv, ringID, outPA, 3))
			if resp.Status == api.ErrInvalidState {
				break
			}
			if resp.Status != api.OK {
				t.Fatalf("recv: %v", resp.Status)
			}
			chunk := make([]byte, int(resp.Values[0])*api.RingRecordSize)
			if err := f.m.Mem.ReadBytes(outPA, chunk); err != nil {
				t.Fatal(err)
			}
			records = append(records, chunk...)
		}
		return records
	}
	seq, bat := run(false), run(true)
	if !bytes.Equal(seq, bat) {
		t.Fatal("batched send produced different records from sequential sends")
	}
}

// TestRingAuthorization covers the identity checks: only the producer
// sends and wakes, only the consumer receives, and argument abuse is
// refused without touching state.
func TestRingAuthorization(t *testing.T) {
	f := newFixture(t)
	// A sealed enclave to use as a non-OS endpoint.
	eid := f.createLoading(t, 0, 10)
	f.loadMinimal(t, eid, 1)
	if st := f.InitEnclave(eid); st != api.OK {
		t.Fatalf("init: %v", st)
	}
	ringID := f.metaPage(12)
	// Ring produced by the enclave, consumed by the OS.
	if st := f.call(api.CallRingCreate, ringID, eid, api.DomainOS, 4); st != api.OK {
		t.Fatalf("ring_create: %v", st)
	}
	stagePA := f.m.DRAM.Base(1)
	before := snapshot(f.mon)
	cases := []struct {
		name string
		req  api.Request
		want api.Error
	}{
		{"OS send on enclave-producer ring", api.OSRequest(api.CallRingSend, ringID, stagePA, 1), api.ErrUnauthorized},
		{"OS wake on enclave-producer ring", api.OSRequest(api.CallRingWake, ringID), api.ErrUnauthorized},
		{"send to unknown ring", api.OSRequest(api.CallRingSend, f.metaPage(14), stagePA, 1), api.ErrInvalidValue},
		{"send with zero count", api.OSRequest(api.CallRingSend, ringID, stagePA, 0), api.ErrInvalidValue},
		{"send past the batch bound", api.OSRequest(api.CallRingSend, ringID, stagePA, api.RingMaxBatch+1), api.ErrInvalidValue},
		{"recv into non-OS memory", api.OSRequest(api.CallRingRecv, ringID, f.meta, 1), api.ErrInvalidState},
		{"create with duplicate id", api.OSRequest(api.CallRingCreate, ringID, 0, 0, 4), api.ErrInvalidValue},
		{"create with enclave-id ring name", api.OSRequest(api.CallRingCreate, eid, 0, 0, 4), api.ErrInvalidValue},
		{"create naming unknown producer", api.OSRequest(api.CallRingCreate, f.metaPage(14), 0xBAD, 0, 4), api.ErrInvalidValue},
		{"create with zero capacity", api.OSRequest(api.CallRingCreate, f.metaPage(14), 0, 0, 0), api.ErrInvalidValue},
		{"create past max capacity", api.OSRequest(api.CallRingCreate, f.metaPage(14), 0, 0, api.RingMaxCapacity+1), api.ErrInvalidValue},
		{"destroy unknown ring", api.OSRequest(api.CallRingDestroy, f.metaPage(14)), api.ErrInvalidValue},
	}
	for _, c := range cases {
		if resp := f.mon.Dispatch(c.req); resp.Status != c.want {
			t.Errorf("%s: %v, want %v", c.name, resp.Status, c.want)
		}
	}
	if !snapshot(f.mon).equal(before) {
		t.Fatal("a refused ring call mutated monitor state")
	}
	// OS recv on its own consumer side of an empty ring: empty, not
	// unauthorized.
	if st := f.call(api.CallRingRecv, ringID, stagePA, 1); st != api.ErrInvalidState {
		t.Fatalf("recv on empty consumer ring: %v, want ErrInvalidState", st)
	}
	// Destroy, then every call on the freed id fails.
	if st := f.call(api.CallRingDestroy, ringID); st != api.OK {
		t.Fatalf("destroy: %v", st)
	}
	if st := f.call(api.CallRingDestroy, ringID); st != api.ErrInvalidValue {
		t.Fatalf("double destroy: %v, want ErrInvalidValue", st)
	}
	if st := f.call(api.CallRingRecv, ringID, stagePA, 1); st != api.ErrInvalidValue {
		t.Fatalf("recv on destroyed ring: %v, want ErrInvalidValue", st)
	}
}

// TestRingBlocksEndpointDeletion pins the eid-reuse guard: an enclave
// that is a live ring endpoint cannot be deleted (a recreated enclave
// at the freed metadata page would inherit the rings and their queued
// messages); destroying the rings unblocks the deletion.
func TestRingBlocksEndpointDeletion(t *testing.T) {
	f := newFixture(t)
	eid := f.createLoading(t, 0, 10)
	f.loadMinimal(t, eid, 1)
	if st := f.InitEnclave(eid); st != api.OK {
		t.Fatalf("init: %v", st)
	}
	ringID := f.metaPage(12)
	if st := f.call(api.CallRingCreate, ringID, api.DomainOS, eid, 4); st != api.OK {
		t.Fatalf("ring_create: %v", st)
	}
	if st := f.DeleteEnclave(eid); st != api.ErrInvalidState {
		t.Fatalf("delete of a ring endpoint: %v, want ErrInvalidState", st)
	}
	if st := f.call(api.CallRingDestroy, ringID); st != api.OK {
		t.Fatalf("destroy: %v", st)
	}
	if st := f.DeleteEnclave(eid); st != api.OK {
		t.Fatalf("delete after ring destruction: %v", st)
	}
}

// TestRingContention verifies the §V-A transaction discipline: a ring
// lock held by "another hart" fails send, recv, wake and destroy with
// ErrRetry, state untouched.
func TestRingContention(t *testing.T) {
	f, ringID, stagePA := ringFixture(t, 4)
	stageMsgs(t, f, stagePA, 1, 0xE0)
	f.mon.objMu.RLock()
	r := f.mon.rings[ringID]
	f.mon.objMu.RUnlock()
	r.mu.Lock() // the contending transaction
	defer r.mu.Unlock()
	before := snapshot(f.mon)
	for _, c := range []api.Call{api.CallRingSend, api.CallRingRecv, api.CallRingWake, api.CallRingDestroy} {
		if st := f.call(c, ringID, stagePA, 1); st != api.ErrRetry {
			t.Errorf("call %#x under contention: %v, want ErrRetry", uint64(c), st)
		}
	}
	if !snapshot(f.mon).equal(before) {
		t.Fatal("a contended ring call mutated monitor state")
	}
}

// TestRingWakeSink verifies wake delivery plumbing host-side: wakes
// with no waiter report 0 and reach no sink; destroy frees the ring id
// for reuse as a fresh monitor object.
func TestRingWakeSink(t *testing.T) {
	f, ringID, _ := ringFixture(t, 4)
	var woken []uint64
	f.mon.SetWakeSink(func(ring, eid, tid uint64) { woken = append(woken, ring) })
	resp := f.mon.Dispatch(api.OSRequest(api.CallRingWake, ringID))
	if resp.Status != api.OK || resp.Values[0] != 0 {
		t.Fatalf("wake with no waiter: %+v, want OK/0", resp)
	}
	if len(woken) != 0 {
		t.Fatalf("sink fired %d times with no waiter", len(woken))
	}
	if st := f.call(api.CallRingDestroy, ringID); st != api.OK {
		t.Fatalf("destroy: %v", st)
	}
	// The freed metadata page is a valid name for a new object.
	if st := f.call(api.CallRingCreate, ringID, api.DomainOS, api.DomainOS, 2); st != api.OK {
		t.Fatalf("recreate on freed id: %v", st)
	}
}
