package sm

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"

	"sanctorum/internal/hw/dram"
	"sanctorum/internal/hw/machine"
	"sanctorum/internal/hw/mem"
	"sanctorum/internal/hw/pt"
	"sanctorum/internal/sm/api"
	"sanctorum/internal/sm/boot"
)

// mockPlatform is a no-isolation platform for white-box monitor tests;
// the real backends are exercised by internal/integration.
type mockPlatform struct {
	cleaned    []int
	shotdown   []int
	enterCalls int
}

func (p *mockPlatform) Kind() machine.IsolationKind { return machine.IsolationNone }
func (p *mockPlatform) ApplyOSView(c *machine.Core, b dram.Bitmap) error {
	c.OSRegions = b
	c.EnclaveMode = false
	return nil
}
func (p *mockPlatform) ApplyEnclaveView(c *machine.Core, v EnclaveView) error {
	p.enterCalls++
	c.EnclaveMode = true
	c.ESatp = v.RootPPN
	c.EvBase, c.EvMask = v.EvBase, v.EvMask
	return nil
}
func (p *mockPlatform) RefreshOSRegions(c *machine.Core, b dram.Bitmap) error {
	c.OSRegions = b
	return nil
}
func (p *mockPlatform) CleanRegion(m *machine.Machine, r int) error {
	p.cleaned = append(p.cleaned, r)
	return m.Mem.ZeroRange(m.DRAM.Base(r), m.DRAM.RegionSize())
}
func (p *mockPlatform) ShootdownRegion(m *machine.Machine, r int) {
	p.shotdown = append(p.shotdown, r)
}

type fixture struct {
	m    *machine.Machine
	mon  *Monitor
	plat *mockPlatform
	meta uint64 // base of the metadata region
}

const (
	testEvBase = uint64(0x4000000000)
	testEvMask = ^uint64(1<<30 - 1)
)

func newFixture(t testing.TB) *fixture {
	t.Helper()
	cfg := machine.DefaultConfig(machine.IsolationNone)
	cfg.DRAM = dram.Layout{RegionShift: 16, RegionCount: 64}
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mfr := boot.NewManufacturer("acme", []byte("seed"))
	dev := mfr.Provision("dev", []byte("root-secret"))
	id, err := dev.Boot([]byte("sanctorum test image"))
	if err != nil {
		t.Fatal(err)
	}
	plat := &mockPlatform{}
	mon, err := New(Config{
		Machine:   m,
		Platform:  plat,
		Identity:  id,
		SMRegions: []int{63},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Region 62 becomes the metadata region.
	if st := mon.Dispatch(api.OSRequest(api.CallGrantRegion, 62, api.DomainSM)).Status; st != api.OK {
		t.Fatalf("grant metadata region: %v", st)
	}
	return &fixture{m: m, mon: mon, plat: plat, meta: m.DRAM.Base(62)}
}

func (f *fixture) metaPage(i int) uint64 { return f.meta + uint64(i)*mem.PageSize }

// ABI-path call helpers: the white-box tests drive the same Dispatch
// surface the OS and the adversary battery use, so the deprecated
// compat shims are exercised nowhere outside compat_test.go. The
// signatures mirror the old method surface to keep the tests readable.
func (f *fixture) call(c api.Call, args ...uint64) api.Error {
	return f.mon.Dispatch(api.OSRequest(c, args...)).Status
}

func (f *fixture) CreateEnclave(eid, evBase, evMask uint64) api.Error {
	return f.call(api.CallCreateEnclave, eid, evBase, evMask)
}

func (f *fixture) AllocatePageTable(eid, va uint64, level int) api.Error {
	return f.call(api.CallAllocPageTable, eid, va, uint64(level))
}

func (f *fixture) LoadPage(eid, va, srcPA, perms uint64) api.Error {
	return f.call(api.CallLoadPage, eid, va, srcPA, perms)
}

func (f *fixture) MapShared(eid, va, pa uint64) api.Error {
	return f.call(api.CallMapShared, eid, va, pa)
}

func (f *fixture) InitEnclave(eid uint64) api.Error   { return f.call(api.CallInitEnclave, eid) }
func (f *fixture) DeleteEnclave(eid uint64) api.Error { return f.call(api.CallDeleteEnclave, eid) }

func (f *fixture) LoadThread(eid, tid, entryPC, entrySP uint64) api.Error {
	return f.call(api.CallLoadThread, eid, tid, entryPC, entrySP)
}

func (f *fixture) CreateThread(tid uint64) api.Error { return f.call(api.CallCreateThread, tid) }

func (f *fixture) AssignThread(eid, tid uint64) api.Error {
	return f.call(api.CallAssignThread, eid, tid)
}

func (f *fixture) UnassignThread(tid uint64) api.Error { return f.call(api.CallUnassignThread, tid) }
func (f *fixture) DeleteThread(tid uint64) api.Error   { return f.call(api.CallDeleteThread, tid) }

func (f *fixture) EnterEnclave(coreID int, eid, tid uint64) api.Error {
	return f.call(api.CallEnterEnclave, uint64(coreID), eid, tid)
}

func (f *fixture) RegionInfo(r int) (RegionState, uint64, api.Error) {
	resp := f.mon.Dispatch(api.OSRequest(api.CallRegionInfo, uint64(r)))
	return RegionState(resp.Values[0]), resp.Values[1], resp.Status
}

func (f *fixture) GrantRegion(r int, newOwner uint64) api.Error {
	return f.call(api.CallGrantRegion, uint64(r), newOwner)
}

func (f *fixture) BlockRegion(r int) api.Error { return f.call(api.CallBlockRegion, uint64(r)) }
func (f *fixture) CleanRegion(r int) api.Error { return f.call(api.CallCleanRegion, uint64(r)) }

func (f *fixture) SnapshotEnclave(eid, snapID uint64) api.Error {
	return f.call(api.CallSnapshotEnclave, eid, snapID)
}

func (f *fixture) CloneEnclave(eid, snapID, tidBase, sharedPA uint64) api.Error {
	return f.call(api.CallCloneEnclave, eid, snapID, tidBase, sharedPA)
}

func (f *fixture) ReleaseSnapshot(snapID uint64) api.Error {
	return f.call(api.CallReleaseSnapshot, snapID)
}

// createLoading creates a loading enclave with one granted region.
func (f *fixture) createLoading(t testing.TB, slot int, region int) uint64 {
	t.Helper()
	eid := f.metaPage(slot)
	if st := f.CreateEnclave(eid, testEvBase, testEvMask); st != api.OK {
		t.Fatalf("create: %v", st)
	}
	if st := f.GrantRegion(region, eid); st != api.OK {
		t.Fatalf("grant: %v", st)
	}
	return eid
}

// loadMinimal gives the enclave page tables, one code page, one thread.
func (f *fixture) loadMinimal(t testing.TB, eid uint64, slot int) uint64 {
	t.Helper()
	for _, alloc := range [][2]uint64{{0, 2}, {testEvBase, 1}, {testEvBase, 0}} {
		if st := f.AllocatePageTable(eid, alloc[0], int(alloc[1])); st != api.OK {
			t.Fatalf("alloc table level %d: %v", alloc[1], st)
		}
	}
	src := uint64(0x1000) // region 0 belongs to the OS
	if st := f.LoadPage(eid, testEvBase, src, pt.R|pt.X); st != api.OK {
		t.Fatalf("load page: %v", st)
	}
	tid := f.metaPage(slot)
	if st := f.LoadThread(eid, tid, testEvBase, testEvBase+0x800); st != api.OK {
		t.Fatalf("load thread: %v", st)
	}
	return tid
}

// --- Region state machine (E2, Fig 2) ---

func TestRegionInitialOwnership(t *testing.T) {
	f := newFixture(t)
	st, owner, _ := f.RegionInfo(0)
	if st != RegionOwned || owner != api.DomainOS {
		t.Fatalf("region 0: %v/%#x", st, owner)
	}
	st, owner, _ = f.RegionInfo(63)
	if st != RegionOwned || owner != api.DomainSM {
		t.Fatalf("SM region: %v/%#x", st, owner)
	}
}

func TestRegionBlockCleanCycle(t *testing.T) {
	f := newFixture(t)
	f.m.Mem.Store(f.m.DRAM.Base(5)+64, 8, 0x5EC12E7)
	if st := f.BlockRegion(5); st != api.OK {
		t.Fatalf("block: %v", st)
	}
	if st, _, _ := f.RegionInfo(5); st != RegionBlocked {
		t.Fatalf("state after block: %v", st)
	}
	// Blocked regions cannot be granted or re-blocked.
	if st := f.GrantRegion(5, api.DomainSM); st != api.ErrInvalidState {
		t.Fatalf("grant blocked: %v", st)
	}
	if st := f.BlockRegion(5); st != api.ErrInvalidState {
		t.Fatalf("double block: %v", st)
	}
	if st := f.CleanRegion(5); st != api.OK {
		t.Fatalf("clean: %v", st)
	}
	if st, _, _ := f.RegionInfo(5); st != RegionAvailable {
		t.Fatalf("state after clean: %v", st)
	}
	if v, _ := f.m.Mem.Load(f.m.DRAM.Base(5)+64, 8); v != 0 {
		t.Fatal("clean did not scrub memory")
	}
	// Available → grant back to OS.
	if st := f.GrantRegion(5, api.DomainOS); st != api.OK {
		t.Fatalf("re-grant: %v", st)
	}
}

func TestRegionIllegalTransitions(t *testing.T) {
	f := newFixture(t)
	if st := f.CleanRegion(7); st != api.ErrInvalidState {
		t.Errorf("clean owned region: %v", st)
	}
	if st := f.BlockRegion(63); st != api.ErrUnauthorized {
		t.Errorf("OS blocking SM region: %v", st)
	}
	if st := f.GrantRegion(63, api.DomainOS); st != api.ErrUnauthorized {
		t.Errorf("OS stealing SM region: %v", st)
	}
	if st := f.GrantRegion(-1, api.DomainOS); st != api.ErrInvalidValue {
		t.Errorf("negative region: %v", st)
	}
	if st := f.GrantRegion(64, api.DomainOS); st != api.ErrInvalidValue {
		t.Errorf("out-of-range region: %v", st)
	}
	if st := f.GrantRegion(3, 0xDEAD000); st != api.ErrInvalidValue {
		t.Errorf("grant to nonexistent enclave: %v", st)
	}
}

func TestGrantToLoadingEnclaveFrozenAfterAllocation(t *testing.T) {
	f := newFixture(t)
	eid := f.createLoading(t, 0, 10)
	if st := f.AllocatePageTable(eid, 0, 2); st != api.OK {
		t.Fatalf("root alloc: %v", st)
	}
	// After the first allocation the page list is frozen.
	if st := f.GrantRegion(11, eid); st != api.ErrInvalidState {
		t.Fatalf("late grant: %v", st)
	}
}

// --- Enclave lifecycle (E3, Fig 3) ---

func TestEnclaveLifecycleHappyPath(t *testing.T) {
	f := newFixture(t)
	eid := f.createLoading(t, 0, 10)
	tid := f.loadMinimal(t, eid, 1)
	if st := f.InitEnclave(eid); st != api.OK {
		t.Fatalf("init: %v", st)
	}
	state, meas, _ := f.mon.EnclaveInfo(eid)
	if state != EnclaveInitialized {
		t.Fatalf("state: %v", state)
	}
	if meas == ([32]byte{}) {
		t.Fatal("empty measurement")
	}
	if st := f.DeleteEnclave(eid); st != api.OK {
		t.Fatalf("delete: %v", st)
	}
	// Its region is blocked now.
	if st, _, _ := f.RegionInfo(10); st != RegionBlocked {
		t.Fatalf("region after delete: %v", st)
	}
	// The thread reverted to available and can be deleted.
	if st := f.DeleteThread(tid); st != api.OK {
		t.Fatalf("delete thread: %v", st)
	}
}

func TestEnclaveLifecycleIllegalEdges(t *testing.T) {
	f := newFixture(t)
	eid := f.createLoading(t, 0, 10)
	// Init without page tables.
	if st := f.InitEnclave(eid); st != api.ErrInvalidState {
		t.Fatalf("init without root: %v", st)
	}
	f.loadMinimal(t, eid, 1)
	if st := f.InitEnclave(eid); st != api.OK {
		t.Fatal("init failed")
	}
	// No loading ops after init.
	if st := f.LoadPage(eid, testEvBase+0x1000, 0x1000, pt.R); st != api.ErrInvalidState {
		t.Fatalf("load after init: %v", st)
	}
	if st := f.AllocatePageTable(eid, testEvBase, 0); st != api.ErrInvalidState {
		t.Fatalf("table after init: %v", st)
	}
	if st := f.InitEnclave(eid); st != api.ErrInvalidState {
		t.Fatalf("double init: %v", st)
	}
	if st := f.LoadThread(eid, f.metaPage(2), testEvBase, 0); st != api.ErrInvalidState {
		t.Fatalf("load thread after init: %v", st)
	}
}

func TestCreateEnclaveValidation(t *testing.T) {
	f := newFixture(t)
	cases := []struct {
		name           string
		eid            uint64
		evBase, evMask uint64
	}{
		{"unaligned eid", f.metaPage(0) + 4, testEvBase, testEvMask},
		{"eid outside metadata region", 0x1000, testEvBase, testEvMask},
		{"zero mask", f.metaPage(0), testEvBase, 0},
		{"non-contiguous mask", f.metaPage(0), 0, ^uint64(0x0F0F)},
		{"mask finer than a page", f.metaPage(0), 0, ^uint64(0xFF)},
		{"unaligned base", f.metaPage(0), testEvBase | 0x1000, testEvMask},
	}
	for _, c := range cases {
		if st := f.CreateEnclave(c.eid, c.evBase, c.evMask); st != api.ErrInvalidValue {
			t.Errorf("%s: %v", c.name, st)
		}
	}
	// Duplicate eid.
	if st := f.CreateEnclave(f.metaPage(0), testEvBase, testEvMask); st != api.OK {
		t.Fatal("valid create failed")
	}
	if st := f.CreateEnclave(f.metaPage(0), testEvBase, testEvMask); st != api.ErrInvalidValue {
		t.Errorf("duplicate eid: %v", st)
	}
}

func TestLoadPageValidation(t *testing.T) {
	f := newFixture(t)
	eid := f.createLoading(t, 0, 10)
	for _, alloc := range [][2]uint64{{0, 2}, {testEvBase, 1}, {testEvBase, 0}} {
		f.AllocatePageTable(eid, alloc[0], int(alloc[1]))
	}
	if st := f.LoadPage(eid, testEvBase|4, 0x1000, pt.R); st != api.ErrInvalidValue {
		t.Errorf("unaligned va: %v", st)
	}
	if st := f.LoadPage(eid, 0x123000, 0x1000, pt.R); st != api.ErrInvalidValue {
		t.Errorf("va outside evrange: %v", st)
	}
	if st := f.LoadPage(eid, testEvBase, 0x1000, 0); st != api.ErrInvalidValue {
		t.Errorf("empty perms: %v", st)
	}
	if st := f.LoadPage(eid, testEvBase, 0x1000, pt.U); st != api.ErrInvalidValue {
		t.Errorf("non-rwx perms bits: %v", st)
	}
	// Source in SM memory must be rejected.
	if st := f.LoadPage(eid, testEvBase, f.meta, pt.R); st != api.ErrInvalidValue {
		t.Errorf("source in SM metadata region: %v", st)
	}
	// Source in the enclave's own (granted) region is no longer OS memory.
	if st := f.LoadPage(eid, testEvBase, f.m.DRAM.Base(10), pt.R); st != api.ErrInvalidValue {
		t.Errorf("source in enclave region: %v", st)
	}
	if st := f.LoadPage(eid, testEvBase, 0x1000, pt.R); st != api.OK {
		t.Fatalf("valid load failed: %v", st)
	}
	// Aliasing the same VA is forbidden.
	if st := f.LoadPage(eid, testEvBase, 0x1000, pt.R); st != api.ErrInvalidValue {
		t.Errorf("alias load: %v", st)
	}
	// Page tables after data are forbidden (§VI-A).
	if st := f.AllocatePageTable(eid, testEvBase+(1<<21), 0); st != api.ErrInvalidState {
		t.Errorf("table after data: %v", st)
	}
}

func TestPageTableTopDownOrder(t *testing.T) {
	f := newFixture(t)
	eid := f.createLoading(t, 0, 10)
	// Level 0 before its parents must fail.
	if st := f.AllocatePageTable(eid, testEvBase, 0); st != api.ErrInvalidState {
		t.Fatalf("orphan leaf table: %v", st)
	}
	if st := f.AllocatePageTable(eid, 0, 2); st != api.OK {
		t.Fatal("root")
	}
	if st := f.AllocatePageTable(eid, 0, 2); st != api.ErrInvalidValue {
		t.Fatalf("double root: %v", st)
	}
	if st := f.AllocatePageTable(eid, testEvBase, 0); st != api.ErrInvalidState {
		t.Fatalf("leaf before mid: %v", st)
	}
	if st := f.AllocatePageTable(eid, testEvBase, 1); st != api.OK {
		t.Fatal("mid")
	}
	if st := f.AllocatePageTable(eid, testEvBase, 1); st != api.ErrInvalidValue {
		t.Fatalf("duplicate mid: %v", st)
	}
	if st := f.AllocatePageTable(eid, testEvBase, 0); st != api.OK {
		t.Fatal("leaf")
	}
}

// --- Measurement (E3/E6 foundations, §VI-A) ---

func TestMeasurementIndependentOfPlacement(t *testing.T) {
	f := newFixture(t)
	content := bytes.Repeat([]byte{7}, 64)
	build := func(slot, region int) [32]byte {
		eid := f.createLoading(t, slot, region)
		for _, alloc := range [][2]uint64{{0, 2}, {testEvBase, 1}, {testEvBase, 0}} {
			f.AllocatePageTable(eid, alloc[0], int(alloc[1]))
		}
		src := uint64(0x2000)
		f.m.Mem.WriteBytes(src, content)
		if st := f.LoadPage(eid, testEvBase, src, pt.R|pt.X); st != api.OK {
			t.Fatalf("load: %v", st)
		}
		f.LoadThread(eid, f.metaPage(slot+1), testEvBase, testEvBase+0x800)
		if st := f.InitEnclave(eid); st != api.OK {
			t.Fatalf("init: %v", st)
		}
		_, meas, _ := f.mon.EnclaveInfo(eid)
		return meas
	}
	m1 := build(0, 10)
	m2 := build(2, 20) // same layout, different eid + physical region
	if m1 != m2 {
		t.Fatal("measurement depends on physical placement")
	}
}

func TestMeasurementSensitiveToContentAndLayout(t *testing.T) {
	f := newFixture(t)
	build := func(slot, region int, content byte, perms uint64, entry uint64) [32]byte {
		eid := f.createLoading(t, slot, region)
		for _, alloc := range [][2]uint64{{0, 2}, {testEvBase, 1}, {testEvBase, 0}} {
			f.AllocatePageTable(eid, alloc[0], int(alloc[1]))
		}
		src := uint64(0x2000 + uint64(slot)*0x1000)
		f.m.Mem.WriteBytes(src, bytes.Repeat([]byte{content}, 32))
		f.LoadPage(eid, testEvBase, src, perms)
		f.LoadThread(eid, f.metaPage(slot+1), entry, 0)
		f.InitEnclave(eid)
		_, meas, _ := f.mon.EnclaveInfo(eid)
		return meas
	}
	base := build(0, 10, 1, pt.R|pt.X, testEvBase)
	if base == build(2, 11, 2, pt.R|pt.X, testEvBase) {
		t.Error("content change not reflected")
	}
	if base == build(4, 12, 1, pt.R|pt.W|pt.X, testEvBase) {
		t.Error("permission change not reflected")
	}
	if base == build(6, 13, 1, pt.R|pt.X, testEvBase+0x100) {
		t.Error("entry point change not reflected")
	}
}

func TestMeasurementTranscriptUnit(t *testing.T) {
	a, b := NewMeasurement(), NewMeasurement()
	a.ExtendCreate(1, 2)
	b.ExtendCreate(1, 2)
	a.ExtendPage(0x1000, pt.R, make([]byte, 4096))
	b.ExtendPage(0x1000, pt.R, make([]byte, 4096))
	if a.Finalize() != b.Finalize() {
		t.Fatal("identical transcripts disagree")
	}
	c := NewMeasurement()
	c.ExtendCreate(1, 2)
	c.ExtendPageTable(0x1000, 0) // different op with similar operands
	c.ExtendPage(0x1000, pt.R, make([]byte, 4096))
	if a.Value() == c.Finalize() {
		t.Fatal("op codes do not separate transcript records")
	}
}

// --- Thread state machine (E4, Fig 4) ---

func TestThreadStateMachine(t *testing.T) {
	f := newFixture(t)
	eid := f.createLoading(t, 0, 10)
	f.loadMinimal(t, eid, 1)
	f.InitEnclave(eid)
	e := f.mon.enclaves[eid]

	tid := f.metaPage(3)
	if st := f.CreateThread(tid); st != api.OK {
		t.Fatalf("create thread: %v", st)
	}
	// Accept before assign must fail.
	if st := f.mon.acceptThread(e, tid, testEvBase, 0); st != api.ErrInvalidState {
		t.Fatalf("accept unoffered: %v", st)
	}
	if st := f.AssignThread(eid, tid); st != api.OK {
		t.Fatalf("assign: %v", st)
	}
	// Assigning again must fail (offered, not available).
	if st := f.AssignThread(eid, tid); st != api.ErrInvalidState {
		t.Fatalf("double assign: %v", st)
	}
	// Enclave accepts with an entry point inside evrange.
	if st := f.mon.acceptThread(e, tid, testEvBase+0x100, testEvBase+0x900); st != api.OK {
		t.Fatalf("accept: %v", st)
	}
	// Accepting an entry outside evrange must fail for a fresh offer.
	tid2 := f.metaPage(4)
	f.CreateThread(tid2)
	f.AssignThread(eid, tid2)
	if st := f.mon.acceptThread(e, tid2, 0x1234000, 0); st != api.ErrInvalidValue {
		t.Fatalf("accept with foreign entry: %v", st)
	}
	// Release and delete.
	if st := f.mon.releaseThread(e, tid); st != api.OK {
		t.Fatalf("release: %v", st)
	}
	if st := f.DeleteThread(tid); st != api.OK {
		t.Fatalf("delete: %v", st)
	}
	// Deleting an assigned (measured) thread must fail.
	var measuredTID uint64
	for id := range e.Threads {
		measuredTID = id
	}
	if st := f.DeleteThread(measuredTID); st != api.ErrInvalidState {
		t.Fatalf("delete assigned thread: %v", st)
	}
	// Unassign scrubs and frees it.
	if st := f.UnassignThread(measuredTID); st != api.OK {
		t.Fatalf("unassign: %v", st)
	}
	if st := f.DeleteThread(measuredTID); st != api.OK {
		t.Fatalf("delete after unassign: %v", st)
	}
}

func TestEnterEnclaveValidation(t *testing.T) {
	f := newFixture(t)
	eid := f.createLoading(t, 0, 10)
	tid := f.loadMinimal(t, eid, 1)
	// Not initialized yet.
	if st := f.EnterEnclave(0, eid, tid); st != api.ErrInvalidState {
		t.Fatalf("enter loading enclave: %v", st)
	}
	f.InitEnclave(eid)
	if st := f.EnterEnclave(5, eid, tid); st != api.ErrInvalidValue {
		t.Fatalf("bad core: %v", st)
	}
	if st := f.EnterEnclave(0, eid, 0xBAD); st != api.ErrInvalidValue {
		t.Fatalf("bad tid: %v", st)
	}
	if st := f.EnterEnclave(0, eid, tid); st != api.OK {
		t.Fatalf("enter: %v", st)
	}
	// Same thread cannot be entered twice.
	if st := f.EnterEnclave(1, eid, tid); st != api.ErrInvalidState {
		t.Fatalf("double enter: %v", st)
	}
	// Core is busy.
	if st := f.DeleteEnclave(eid); st != api.ErrInvalidState {
		t.Fatalf("delete with running thread: %v", st)
	}
	// The core state now belongs to the enclave domain.
	if !f.m.Cores[0].EnclaveMode {
		t.Fatal("core not in enclave mode after enter")
	}
	// Stop it via the monitor's internal path (as ExitEnclave would).
	f.mon.stopThread(0, 7, false)
	if f.m.Cores[0].EnclaveMode {
		t.Fatal("core still in enclave mode after stop")
	}
	if f.m.Cores[0].CPU.Reg(10) != 7 {
		t.Fatal("exit value not delivered")
	}
	if st := f.DeleteEnclave(eid); st != api.OK {
		t.Fatalf("delete after stop: %v", st)
	}
}

// --- Mailboxes (E5, Fig 5) ---

func TestMailboxStateMachine(t *testing.T) {
	f := newFixture(t)
	eidA := f.createLoading(t, 0, 10)
	f.loadMinimal(t, eidA, 1)
	f.InitEnclave(eidA)
	a := f.mon.enclaves[eidA]

	eidB := f.createLoading(t, 2, 11)
	f.loadMinimal(t, eidB, 3)
	f.InitEnclave(eidB)
	b := f.mon.enclaves[eidB]

	msg := make([]byte, api.MailboxSize)
	copy(msg, "hello from B")

	// Unsolicited send is refused (DoS protection).
	if st := f.mon.deliverMail(eidB, b.Measurement, eidA, msg); st != api.ErrInvalidState {
		t.Fatalf("unsolicited send: %v", st)
	}
	// Accept from the wrong sender does not help.
	if st := f.mon.acceptMail(a, 0, 0xDEAD000); st != api.OK {
		t.Fatalf("accept: %v", st)
	}
	if st := f.mon.deliverMail(eidB, b.Measurement, eidA, msg); st != api.ErrInvalidState {
		t.Fatalf("send to mismatched accept: %v", st)
	}
	// Proper accept/send/get round trip.
	if st := f.mon.acceptMail(a, 1, eidB); st != api.OK {
		t.Fatalf("accept: %v", st)
	}
	if st := f.mon.deliverMail(eidB, b.Measurement, eidA, msg); st != api.OK {
		t.Fatalf("send: %v", st)
	}
	got, senderMeas, st := f.mon.getMail(a, 1)
	if st != api.OK {
		t.Fatalf("get: %v", st)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("message corrupted")
	}
	if senderMeas != b.Measurement {
		t.Fatal("sender measurement not stamped by the monitor")
	}
	// The mailbox drained back to empty.
	if _, _, st := f.mon.getMail(a, 1); st != api.ErrInvalidState {
		t.Fatalf("double get: %v", st)
	}
	// OS mail carries the zero measurement.
	f.mon.acceptMail(a, 0, api.DomainOS)
	if st := f.mon.SendMailFromOS(eidA, []byte("os ping")); st != api.OK {
		t.Fatalf("os send: %v", st)
	}
	_, senderMeas, _ = f.mon.getMail(a, 0)
	if senderMeas != ([32]byte{}) {
		t.Fatal("OS mail forged a measurement")
	}
}

func TestMailboxBounds(t *testing.T) {
	f := newFixture(t)
	eid := f.createLoading(t, 0, 10)
	f.loadMinimal(t, eid, 1)
	f.InitEnclave(eid)
	e := f.mon.enclaves[eid]
	if st := f.mon.acceptMail(e, -1, 0); st != api.ErrInvalidValue {
		t.Errorf("negative index: %v", st)
	}
	if st := f.mon.acceptMail(e, api.MailboxesPerEnclave, 0); st != api.ErrInvalidValue {
		t.Errorf("index past end: %v", st)
	}
	if st := f.mon.SendMailFromOS(eid, make([]byte, api.MailboxSize+1)); st != api.ErrInvalidValue {
		t.Errorf("oversized message: %v", st)
	}
	if st := f.mon.deliverMail(api.DomainOS, [32]byte{}, 0xBAD, make([]byte, api.MailboxSize)); st != api.ErrInvalidValue {
		t.Errorf("unknown recipient: %v", st)
	}
}

// --- Fields and attestation plumbing ---

func TestGetFieldOS(t *testing.T) {
	f := newFixture(t)
	meas, st := f.mon.GetField(api.FieldSMMeasurement)
	if st != api.OK || len(meas) != 32 {
		t.Fatalf("measurement: %v (%d bytes)", st, len(meas))
	}
	if !bytes.Equal(meas, f.mon.Identity().Measurement[:]) {
		t.Fatal("wrong measurement returned")
	}
	pk, st := f.mon.GetField(api.FieldSMPublicKey)
	if st != api.OK || len(pk) != 32 {
		t.Fatalf("pubkey: %v", st)
	}
	chain, st := f.mon.GetField(api.FieldCertChain)
	if st != api.OK || len(chain) == 0 {
		t.Fatalf("chain: %v", st)
	}
	if _, st := f.mon.GetField(api.FieldEnclaveMeasurement); st != api.ErrUnauthorized {
		t.Fatalf("enclave field for OS: %v", st)
	}
	if _, st := f.mon.GetField(api.Field(99)); st != api.ErrInvalidValue {
		t.Fatalf("unknown field: %v", st)
	}
}

func TestAttestSignRestrictedToSigningEnclave(t *testing.T) {
	f := newFixture(t)
	eid := f.createLoading(t, 0, 10)
	f.loadMinimal(t, eid, 1)
	f.InitEnclave(eid)
	e := f.mon.enclaves[eid]
	// No signing enclave configured in this fixture.
	if _, st := f.mon.attestSign(e, testEvBase, 32); st != api.ErrNotSupported {
		t.Fatalf("sign with no config: %v", st)
	}
	// Configure some other measurement: still unauthorized.
	f.mon.signingMeasurement = [32]byte{1, 2, 3}
	if _, st := f.mon.attestSign(e, testEvBase, 32); st != api.ErrUnauthorized {
		t.Fatalf("sign from non-signing enclave: %v", st)
	}
	// Authorized, but length bounds still apply.
	f.mon.signingMeasurement = e.Measurement
	if _, st := f.mon.attestSign(e, testEvBase, 0); st != api.ErrInvalidValue {
		t.Fatalf("zero length: %v", st)
	}
	if _, st := f.mon.attestSign(e, testEvBase, maxSignInput+1); st != api.ErrInvalidValue {
		t.Fatalf("oversized: %v", st)
	}
	sig, st := f.mon.attestSign(e, testEvBase, 32)
	if st != api.OK || len(sig) != 64 {
		t.Fatalf("sign: %v (%d bytes)", st, len(sig))
	}
}

// --- Concurrency (E11, §V-A transaction semantics) ---

func TestConcurrentAPITransactions(t *testing.T) {
	f := newFixture(t)
	eid := f.createLoading(t, 0, 10)
	f.loadMinimal(t, eid, 1)
	f.InitEnclave(eid)

	const workers = 8
	var wg sync.WaitGroup
	var concurrent, ok, other int64
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				st := f.BlockRegion(30)
				if st == api.OK {
					for f.CleanRegion(30) != api.OK {
					}
					for f.GrantRegion(30, api.DomainOS) != api.OK {
					}
				}
				mu.Lock()
				switch st {
				case api.ErrConcurrentCall:
					concurrent++
				case api.OK:
					ok++
				default:
					other++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if ok == 0 {
		t.Fatal("no transaction ever succeeded")
	}
	// The region must end in a sane state.
	st, owner, errc := f.RegionInfo(30)
	if errc != api.OK || st != RegionOwned || owner != api.DomainOS {
		t.Fatalf("final region state: %v/%v/%#x", errc, st, owner)
	}
	t.Logf("ok=%d concurrent=%d invalid-state=%d", ok, concurrent, other)
}

// Property: any sequence of block/clean/grant calls keeps each region in
// a legal state and never gives one region two owners.
func TestRegionStateMachineProperty(t *testing.T) {
	f := newFixture(t)
	step := func(action uint8, region uint8) bool {
		r := int(region) % 8 // stay in OS-owned low regions
		switch action % 3 {
		case 0:
			f.BlockRegion(r)
		case 1:
			f.CleanRegion(r)
		case 2:
			f.GrantRegion(r, api.DomainOS)
		}
		st, owner, errc := f.RegionInfo(r)
		if errc != api.OK {
			return false
		}
		switch st {
		case RegionOwned, RegionPending:
			return owner == api.DomainOS || owner == api.DomainSM || owner >= 0x1000
		case RegionBlocked, RegionAvailable:
			return true
		default:
			return false
		}
	}
	if err := quick.Check(step, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
