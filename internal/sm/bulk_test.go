package sm

// White-box edge tests for the bulk data plane (bulk.go, DESIGN.md
// §14), driven host-side through Dispatch over an OS↔OS loopback grant
// and ring — the same surface the gateway and the adversary battery
// use, with no enclaves in the way of the descriptor machinery.

import (
	"bytes"
	"encoding/binary"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"sanctorum/internal/hw/mem"
	"sanctorum/internal/sm/api"
)

// bulkFixture sets up an OS↔OS ring plus an OS↔OS grant over a
// pages-page buffer in region 2, with a staging page in region 1.
func bulkFixture(t testing.TB, pages uint64) (f *fixture, ringID, grantID, bufPA, stagePA uint64) {
	t.Helper()
	f = newFixture(t)
	ringID = f.metaPage(12)
	if st := f.call(api.CallRingCreate, ringID, api.DomainOS, api.DomainOS, 8); st != api.OK {
		t.Fatalf("ring_create: %v", st)
	}
	grantID = f.metaPage(13)
	bufPA = f.m.DRAM.Base(2)
	if st := f.call(api.CallBulkGrant, grantID, bufPA, pages, api.DomainOS, api.DomainOS); st != api.OK {
		t.Fatalf("bulk_grant: %v", st)
	}
	stagePA = f.m.DRAM.Base(1)
	return f, ringID, grantID, bufPA, stagePA
}

// stageSG writes a descriptor message at stagePA and returns it.
func stageSG(t testing.TB, f *fixture, stagePA uint64, descs ...[2]uint64) []byte {
	t.Helper()
	msg := api.EncodeBulkDescs(descs...)
	if err := f.m.Mem.WriteBytes(stagePA, msg[:]); err != nil {
		t.Fatal(err)
	}
	return msg[:]
}

// TestBulkDescBounds walks the descriptor-validation edges: zero
// length, offset+length wraparound, one byte past the grant, and the
// boundary-exact spans that must be accepted.
func TestBulkDescBounds(t *testing.T) {
	const pages = 4
	f, ringID, grantID, _, stagePA := bulkFixture(t, pages)
	size := uint64(pages * mem.PageSize)
	send := func(descs ...[2]uint64) api.Error {
		stageSG(t, f, stagePA, descs...)
		return f.call(api.CallBulkSend, ringID, stagePA, 1, grantID)
	}
	if st := send([2]uint64{0, 0}); st != api.ErrInvalidValue {
		t.Errorf("zero-length descriptor: %v, want ErrInvalidValue", st)
	}
	if st := send([2]uint64{^uint64(0) - 255, 512}); st != api.ErrInvalidValue {
		t.Errorf("wraparound descriptor: %v, want ErrInvalidValue", st)
	}
	if st := send([2]uint64{1, size}); st != api.ErrInvalidValue {
		t.Errorf("descriptor one past the grant: %v, want ErrInvalidValue", st)
	}
	// Boundary-exact spans: the whole buffer, and the last word alone.
	for _, d := range [][2]uint64{{0, size}, {size - 8, 8}} {
		if st := send(d); st != api.OK {
			t.Fatalf("boundary-exact descriptor %v: %v", d, st)
		}
		if st := f.call(api.CallBulkRecv, ringID, stagePA+0x1000, 8, grantID); st != api.OK {
			t.Fatalf("draining boundary send: %v", st)
		}
	}
	if st := f.call(api.CallBulkRevoke, grantID); st != api.OK {
		t.Fatalf("revoke: %v", st)
	}
	if refs := f.m.Mem.TotalRefs(); refs != 0 {
		t.Fatalf("refs after revoke = %d", refs)
	}
}

// TestBulkMaxDescriptors round-trips a full three-descriptor message
// and verifies the payload survives byte-identical — then forges a
// fourth descriptor into the count word and must be refused.
func TestBulkMaxDescriptors(t *testing.T) {
	f, ringID, grantID, _, stagePA := bulkFixture(t, 4)
	msg := stageSG(t, f, stagePA,
		[2]uint64{0, 4096}, [2]uint64{8192, 128}, [2]uint64{4096, 64})
	if st := f.call(api.CallBulkSend, ringID, stagePA, 1, grantID); st != api.OK {
		t.Fatalf("max-descriptor send: %v", st)
	}
	outPA := stagePA + 0x1000
	resp := f.mon.Dispatch(api.OSRequest(api.CallBulkRecv, ringID, outPA, 8, grantID))
	if resp.Status != api.OK || resp.Values[0] != 1 {
		t.Fatalf("recv: %v, n=%d", resp.Status, resp.Values[0])
	}
	rec := make([]byte, api.RingRecordSize)
	if err := f.m.Mem.ReadBytes(outPA, rec); err != nil {
		t.Fatal(err)
	}
	if sender := binary.LittleEndian.Uint64(rec[32:40]); sender != api.DomainOS {
		t.Errorf("sender stamp %#x, want DomainOS", sender)
	}
	if !bytes.Equal(rec[api.RingStampSize:], msg) {
		t.Errorf("descriptor payload did not survive the ring")
	}
	over := api.EncodeBulkDescs([2]uint64{0, 64})
	binary.LittleEndian.PutUint64(over[8:], api.BulkMaxDescs+1)
	if err := f.m.Mem.WriteBytes(stagePA, over[:]); err != nil {
		t.Fatal(err)
	}
	if st := f.call(api.CallBulkSend, ringID, stagePA, 1, grantID); st != api.ErrInvalidValue {
		t.Errorf("forged descriptor count: %v, want ErrInvalidValue", st)
	}
	if st := f.call(api.CallBulkRevoke, grantID); st != api.OK {
		t.Fatalf("revoke: %v", st)
	}
}

// TestBulkRevokeRacesInFlightSend hammers the dead/inflight protocol
// under the race detector: a producer streams descriptor messages, a
// consumer drains them, and a revoker spins until it wins. The
// invariant is that the revoke only ever succeeds with nothing in
// flight — so once it lands, the plane is fully drained, every later
// use of the id is refused, and no page pin survives.
func TestBulkRevokeRacesInFlightSend(t *testing.T) {
	f, ringID, grantID, _, stagePA := bulkFixture(t, 2)
	outPA := stagePA + 0x1000
	msg := api.EncodeBulkDescs([2]uint64{0, 4096})
	if err := f.m.Mem.WriteBytes(stagePA, msg[:]); err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var sent, received atomic.Int64
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // producer
		defer wg.Done()
		for i := 0; i < 200 && !stop.Load(); {
			switch st := f.call(api.CallBulkSend, ringID, stagePA, 1, grantID); st {
			case api.OK:
				sent.Add(1)
				i++
			case api.ErrRetry, api.ErrInvalidState: // contention, ring full
				runtime.Gosched()
			case api.ErrInvalidValue: // grant revoked under us
				return
			default:
				panic(st)
			}
		}
	}()
	go func() { // consumer
		defer wg.Done()
		for !stop.Load() {
			resp := f.mon.Dispatch(api.OSRequest(api.CallBulkRecv, ringID, outPA, 8, grantID))
			switch resp.Status {
			case api.OK:
				received.Add(int64(resp.Values[0]))
			case api.ErrRetry, api.ErrInvalidState: // contention, ring empty
				runtime.Gosched()
			case api.ErrInvalidValue: // grant revoked under us
				if stop.Load() {
					return
				}
				runtime.Gosched()
			default:
				panic(resp.Status)
			}
		}
	}()
	var refused int
	for {
		st := f.call(api.CallBulkRevoke, grantID)
		if st == api.OK {
			break
		}
		if st == api.ErrInvalidState {
			refused++
		} else if st != api.ErrRetry {
			t.Errorf("revoke: %v", st)
			break
		}
		runtime.Gosched()
	}
	stop.Store(true)
	wg.Wait()
	t.Logf("sent=%d received=%d revoke refusals=%d", sent.Load(), received.Load(), refused)
	if sent.Load() != received.Load() {
		t.Errorf("revoke won with %d descriptors unaccounted for",
			sent.Load()-received.Load())
	}
	if st := f.call(api.CallBulkSend, ringID, stagePA, 1, grantID); st != api.ErrInvalidValue {
		t.Errorf("send on revoked grant: %v, want ErrInvalidValue", st)
	}
	if st := f.call(api.CallBulkRevoke, grantID); st != api.ErrInvalidValue {
		t.Errorf("double revoke: %v, want ErrInvalidValue", st)
	}
	if refs := f.m.Mem.TotalRefs(); refs != 0 {
		t.Errorf("refs after revoke = %d", refs)
	}
}
