package sm

// Enclave snapshot & copy-on-write clone (DESIGN.md §8). A snapshot
// freezes an initialized enclave — the template — read-only and
// records its measured layout: page-table shape, data pages, shared
// windows, thread entry specs, measurement. A clone is a fresh enclave
// whose page tables the monitor builds in the clone's own memory in
// O(page-table pages), with every data-page PTE aliasing the
// snapshot's physical page; writable pages alias with the W bit
// cleared and are copied into the clone's own memory on the first
// write fault (copy-then-retry). The clone's identity inherits the
// template measurement — the fork provably starts from the measured
// initial state — while its enclave ID stays per-clone, and
// FieldEnclaveIdentity exposes the distinction to attestation
// evidence.
//
// Page ownership is refcounted on physical memory (mem.Retain /
// ReleaseRef): the snapshot holds one reference per frozen page and
// each clone one per page it still aliases, so the delete/release
// order is enforced structurally — a template with a live snapshot
// cannot be deleted, a snapshot with live clones cannot be released,
// and a region holding referenced pages cannot be cleaned.

import (
	"sort"
	"sync"

	"sanctorum/internal/hw/dram"
	"sanctorum/internal/hw/machine"
	"sanctorum/internal/hw/mem"
	"sanctorum/internal/hw/pt"
	"sanctorum/internal/isa"
	"sanctorum/internal/sm/api"
)

// Snapshot is the monitor's metadata for one frozen template. Like
// enclaves and threads, its ID is the physical address of a metadata
// page in SM-owned memory, so snapshot names are unforgeable. The
// mutex is the snapshot's §V-A transaction lock, taken with TryLock.
type Snapshot struct {
	mu sync.Mutex

	ID         uint64
	TemplateID uint64
	Meas       [32]byte
	EvBase     uint64
	EvMask     uint64
	// Regions are the template's regions holding the frozen pages;
	// clones borrow them into their access view.
	Regions dram.Bitmap

	tables  []tableSlot
	pages   []snapPage
	shared  []sharedSlot
	threads []threadTemplate

	clones int
	dead   bool // set by release under mu; a racing lookup re-checks
}

// lookupSnapshot fetches and transaction-locks a snapshot; contention
// fails with ErrRetry (§V-A). The dead re-check closes the lookup/free
// race: a clone_enclave that fetched the pointer before a concurrent
// release removed it must not fork from the dissolved snapshot — the
// template has already thawed, so the "frozen" pages it would alias
// are writable again, which breaks clone isolation.
func (mon *Monitor) lookupSnapshot(snapID uint64) (*Snapshot, api.Error) {
	mon.objMu.RLock()
	snap := mon.snapshots[snapID]
	mon.objMu.RUnlock()
	if snap == nil {
		return nil, api.ErrInvalidValue
	}
	if !mon.tryLock(&snap.mu, LockSnapshot, snapID) {
		return nil, api.ErrRetry
	}
	if snap.dead {
		snap.mu.Unlock()
		return nil, api.ErrInvalidValue
	}
	return snap, api.OK
}

// tableSlot records one page-table page of the template in canonical
// allocation order (root first, then top-down by normalized prefix).
type tableSlot struct {
	prefix uint64
	level  int
}

// snapPage is one frozen private data page: its virtual page, physical
// page number, and original leaf-PTE flag bits (W included even when
// the live PTEs carry it cleared).
type snapPage struct {
	va    uint64
	ppn   uint64
	perms uint64
}

// sharedSlot is one untrusted shared-window mapping of the template.
type sharedSlot struct {
	va uint64
	pa uint64
}

// threadTemplate is one measured thread's entry spec.
type threadTemplate struct {
	entryPC uint64
	entrySP uint64
}

// snapshotEnclave implements CallSnapshotEnclave: freeze the template
// and register the snapshot. The template must be initialized, parked
// (no running threads), and neither already snapshotted nor itself a
// clone (chained forks would layer alias graphs; the OS can instead
// build a new template from the clone's spec).
func (mon *Monitor) snapshotEnclave(eid, snapID uint64) api.Error {
	e, st := mon.lookupEnclave(eid)
	if st != api.OK {
		return st
	}
	defer e.mu.Unlock()
	if e.State != EnclaveInitialized || e.running > 0 {
		return api.ErrInvalidState
	}
	if e.snap != nil || e.CloneOf != 0 {
		return api.ErrInvalidState
	}

	// Collect thread entry specs first — the only step that can still
	// fail with ErrRetry — so a contended transaction changes nothing.
	var tids []uint64
	for tid := range e.Threads {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	var threads []threadTemplate
	for _, tid := range tids {
		t := e.Threads[tid]
		if !mon.tryLock(&t.mu, LockThread, tid) {
			return api.ErrRetry
		}
		if t.State == ThreadAssigned {
			threads = append(threads, threadTemplate{entryPC: t.EntryPC, entrySP: t.EntrySP})
		}
		t.mu.Unlock()
	}

	// Claim the snapshot's metadata page; this is the commit point —
	// everything after is infallible reads of the enclave's own tables
	// plus the freeze itself.
	mon.objMu.Lock()
	if st := mon.allocMetaPage(snapID); st != api.OK {
		mon.objMu.Unlock()
		return st
	}
	mon.objMu.Unlock()

	snap := &Snapshot{
		ID:         snapID,
		TemplateID: eid,
		Meas:       e.Measurement,
		EvBase:     e.EvBase,
		EvMask:     e.EvMask,
		Regions:    e.Regions,
		threads:    threads,
		tables:     canonicalTables(e),
	}

	if e.cow == nil {
		e.cow = make(map[uint64]snapPage)
	}
	for _, va := range sortedMappedVAs(e) {
		pteAddr, ok := mon.leafPTEAddr(e, va)
		if !ok {
			continue // unreachable: every mapped VA has its leaf table
		}
		pte, err := mon.machine.Mem.Load(pteAddr, 8)
		if err != nil || pte&pt.V == 0 {
			continue
		}
		if !e.InEvrange(va) {
			snap.shared = append(snap.shared, sharedSlot{va: va, pa: pt.PPNOf(pte) << mem.PageBits})
			continue
		}
		pg := snapPage{va: va, ppn: pt.PPNOf(pte), perms: pte & 0xFF}
		snap.pages = append(snap.pages, pg)
		pa := pg.ppn << mem.PageBits
		mon.machine.Mem.Retain(pa)
		mon.machine.Mem.MarkCOW(pa)
		if pte&pt.W != 0 {
			// Freeze: the template itself now faults on writes and
			// copies like any clone would — the frozen page is the
			// snapshot's, not the template's, from here on.
			mon.machine.Mem.Store(pteAddr, 8, pte&^pt.W)
			e.cow[va] = pg
		}
	}

	mon.objMu.Lock()
	mon.snapshots[snapID] = snap
	mon.objMu.Unlock()
	e.snap = snap
	// Mirror the measurement into the snapshot's metadata page, as the
	// enclave lifecycle does for its own.
	mon.machine.Mem.WriteBytes(snapID+8, snap.Meas[:])

	// The template last ran before this transaction (running == 0, and
	// every exit cleans the core), so no writable translations linger;
	// the region shootdown is the §VII-A page-walk-invariant hygiene
	// for the permission downgrade, delivered over the IPI mailboxes.
	for _, r := range snap.Regions.Regions() {
		mon.plat.ShootdownRegion(mon.machine, r)
	}
	return api.OK
}

// canonicalTables lists an enclave's page-table pages in the canonical
// build order: root first, then each level top-down by ascending
// normalized prefix — the order cloneEnclave replays so parents always
// exist before children.
func canonicalTables(e *Enclave) []tableSlot {
	out := make([]tableSlot, 0, len(e.ptPages))
	for key := range e.ptPages {
		out = append(out, tableSlot{prefix: key.prefix, level: key.level})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].level != out[j].level {
			return out[i].level > out[j].level
		}
		return out[i].prefix < out[j].prefix
	})
	return out
}

// sortedMappedVAs returns the enclave's mapped virtual pages ascending,
// so snapshot construction is deterministic.
func sortedMappedVAs(e *Enclave) []uint64 {
	vas := make([]uint64, 0, len(e.mapped))
	for va := range e.mapped {
		vas = append(vas, va)
	}
	sort.Slice(vas, func(i, j int) bool { return vas[i] < vas[j] })
	return vas
}

// leafPTEAddr returns the physical address of the leaf PTE mapping va
// in the enclave's own tables.
func (mon *Monitor) leafPTEAddr(e *Enclave, va uint64) (uint64, bool) {
	leaf, ok := e.ptPages[ptKey{level: 0, prefix: vaPrefix(va, 0)}]
	if !ok {
		return 0, false
	}
	return leaf<<mem.PageBits + pt.VPN(va, 0)*pt.EntrySize, true
}

// cloneEnclave implements CallCloneEnclave: fork a sealed worker from a
// snapshot. eid names a Loading enclave the OS created with the
// template's evrange and granted regions but no pages — the clone's
// own memory holds its page tables and future COW copies. The build is
// O(snapshot tables + mapped pages): no page contents are copied and
// nothing is hashed; the measurement identity is inherited.
func (mon *Monitor) cloneEnclave(eid, snapID, tidBase, sharedPA uint64) api.Error {
	e, st := mon.lookupEnclave(eid)
	if st != api.OK {
		return st
	}
	defer e.mu.Unlock()
	if e.State != EnclaveLoading {
		return api.ErrInvalidState
	}
	if e.pagesFrozen || e.RootPPN != 0 || len(e.mapped) != 0 || len(e.ptPages) != 0 {
		return api.ErrInvalidState // clone only into an untouched enclave
	}

	snap, st := mon.lookupSnapshot(snapID)
	if st != api.OK {
		return st
	}
	defer snap.mu.Unlock()

	if e.EvBase != snap.EvBase || e.EvMask != snap.EvMask {
		return api.ErrInvalidValue // the inherited measurement covers the evrange
	}
	if sharedPA != 0 {
		if len(snap.shared) != 1 || sharedPA&mem.PageMask != 0 ||
			!mon.osOwnsRange(sharedPA, mem.PageSize) {
			return api.ErrInvalidValue
		}
	}
	// Capacity: the clone's own regions must hold every table page.
	capacity := uint64(e.Regions.Count()) * mon.machine.DRAM.PagesPerRegion()
	if uint64(len(snap.tables)) > capacity {
		return api.ErrNoResources
	}

	// Validate every clone thread id before committing any.
	n := len(snap.threads)
	if n > 0 && (tidBase == 0 || tidBase&mem.PageMask != 0) {
		return api.ErrInvalidValue
	}
	mon.objMu.Lock()
	for i := 0; i < n; i++ {
		tid := tidBase + uint64(i)*mem.PageSize
		if !mon.inMetaRegion(tid) || mon.metaPages[tid] {
			mon.objMu.Unlock()
			return api.ErrInvalidValue
		}
	}
	for i := 0; i < n; i++ {
		tid := tidBase + uint64(i)*mem.PageSize
		mon.allocMetaPage(tid) // cannot fail: validated above under objMu
		spec := snap.threads[i]
		t := &Thread{ID: tid, State: ThreadAssigned, Owner: eid,
			EntryPC: spec.entryPC, EntrySP: spec.entrySP}
		mon.threads[tid] = t
		e.Threads[tid] = t
	}
	mon.objMu.Unlock()

	// Replay the template's page-table shape into the clone's own
	// memory — the O(page-table pages) part of the fork.
	mon.freezePagesLocked(e)
	for _, ts := range snap.tables {
		ppn, okPage := e.nextPageLocked()
		if !okPage {
			// Unreachable: capacity was checked against the frozen page
			// list above.
			return api.ErrNoResources
		}
		mon.machine.Mem.ZeroPage(ppn << mem.PageBits)
		e.ptPages[ptKey{level: ts.level, prefix: ts.prefix}] = ppn
		if ts.level == pt.Levels-1 {
			e.RootPPN = ppn
			continue
		}
		parent := e.ptPages[ptKey{level: ts.level + 1, prefix: ts.prefix >> 9}]
		va := ts.prefix << (mem.PageBits + 9*uint(ts.level+1))
		pteAddr := parent<<mem.PageBits + pt.VPN(va, ts.level+1)*pt.EntrySize
		mon.machine.Mem.Store(pteAddr, 8, pt.MakePTE(parentPTEChild(ppn), pt.V))
	}

	// Alias every data page copy-on-write; read-only pages alias with
	// their original permissions, writable ones with W cleared.
	if e.cow == nil {
		e.cow = make(map[uint64]snapPage)
	}
	for _, pg := range snap.pages {
		pteAddr, ok := mon.leafPTEAddr(e, pg.va)
		if !ok {
			return api.ErrInvalidState // unreachable: tables replayed above
		}
		perms := pg.perms
		if perms&pt.W != 0 {
			e.cow[pg.va] = pg
			perms &^= pt.W
		} else {
			e.roAliases = append(e.roAliases, pg.ppn)
		}
		mon.machine.Mem.Store(pteAddr, 8, pt.MakePTE(pg.ppn, perms))
		mon.machine.Mem.Retain(pg.ppn << mem.PageBits)
		e.mapped[pg.va] = true
	}
	for _, sh := range snap.shared {
		pa := sh.pa
		if sharedPA != 0 {
			pa = sharedPA
		}
		pteAddr, ok := mon.leafPTEAddr(e, sh.va)
		if !ok {
			return api.ErrInvalidState // unreachable
		}
		mon.machine.Mem.Store(pteAddr, 8, pt.MakePTE(pa>>mem.PageBits, pt.R|pt.W|pt.V|pt.U))
		e.mapped[sh.va] = true
	}

	// Seal with the inherited identity: the clone's initial state is
	// exactly the template's measured initial state, so the template
	// measurement is its measurement; the enclave ID stays per-clone
	// (FieldEnclaveIdentity reports origin=1 for evidence).
	e.State = EnclaveInitialized
	e.Measurement = snap.Meas
	e.meas = nil
	e.CloneOf = snapID
	e.Borrowed = snap.Regions
	snap.clones++
	mon.machine.Mem.Store(eid, 8, uint64(e.State))
	mon.machine.Mem.WriteBytes(eid+8, e.Measurement[:])
	return api.OK
}

// parentPTEChild is the PPN stored in a parent table entry for a child
// table page (identity — named for readability at the call site).
func parentPTEChild(ppn uint64) uint64 { return ppn }

// releaseSnapshot implements CallReleaseSnapshot: dissolve a snapshot
// with no outstanding clones. The template thaws — every page still
// aliased copy-on-write gets its W bit back — and the snapshot's page
// references drop, returning the refcounts to baseline.
func (mon *Monitor) releaseSnapshot(snapID uint64) api.Error {
	snap, st := mon.lookupSnapshot(snapID)
	if st != api.OK {
		return st
	}
	defer snap.mu.Unlock()
	if snap.clones > 0 {
		return api.ErrInvalidState
	}
	e, st := mon.lookupEnclave(snap.TemplateID)
	if st != api.OK {
		return st // ErrRetry under contention; the template cannot be gone
	}
	defer e.mu.Unlock()
	if e.running > 0 {
		return api.ErrInvalidState // park the template before thawing it
	}

	for _, pg := range snap.pages {
		pa := pg.ppn << mem.PageBits
		mon.machine.Mem.ClearCOW(pa)
		if _, frozen := e.cow[pg.va]; frozen {
			// Still aliased by the template: restore the original PTE.
			// Pages the template already copied point elsewhere; the
			// orphaned frozen page stays in the template's region until
			// that region is cleaned.
			if pteAddr, ok := mon.leafPTEAddr(e, pg.va); ok {
				mon.machine.Mem.Store(pteAddr, 8, pt.MakePTE(pg.ppn, pg.perms))
			}
			delete(e.cow, pg.va)
		}
		mon.machine.Mem.ReleaseRef(pa)
	}
	e.snap = nil
	snap.dead = true

	mon.objMu.Lock()
	delete(mon.snapshots, snapID)
	mon.freeMetaPage(snapID)
	mon.objMu.Unlock()

	for _, r := range snap.Regions.Regions() {
		mon.plat.ShootdownRegion(mon.machine, r)
	}
	return api.OK
}

// resolveCOWLocked performs the copy half of the copy-then-retry
// protocol for one page the enclave still aliases copy-on-write: take
// the next free physical page from the enclave's own frozen page list,
// copy the frozen contents, and repoint the leaf PTE with write
// permission restored. The caller holds e's transaction lock and is
// responsible for translation shootdowns. Only clones drop an alias
// reference — a template resolving its own COW fault never Retained:
// the single snapshot-held reference must survive (clones may still be
// forked from, or alias, the frozen page) and is dropped exactly once
// at release_snapshot.
func (mon *Monitor) resolveCOWLocked(e *Enclave, vaPage uint64) bool {
	pg, isCOW := e.cow[vaPage]
	if !isCOW {
		return false
	}
	ppn, okPage := e.nextPageLocked()
	if !okPage {
		return false // no pages left for the copy: surface the fault
	}
	var buf [mem.PageSize]byte
	if mon.machine.Mem.ReadBytes(pg.ppn<<mem.PageBits, buf[:]) != nil ||
		mon.machine.Mem.WriteBytes(ppn<<mem.PageBits, buf[:]) != nil {
		return false
	}
	pteAddr, ok := mon.leafPTEAddr(e, vaPage)
	if !ok {
		return false
	}
	mon.machine.Mem.Store(pteAddr, 8, pt.MakePTE(ppn, pg.perms))
	delete(e.cow, vaPage)
	if e.CloneOf != 0 {
		mon.machine.Mem.ReleaseRef(pg.ppn << mem.PageBits)
	}
	return true
}

// resolveCOWForWrite lets the monitor's own copy-in paths
// (writeEnclave: get_mail, get_field, attestation and key-agreement
// outputs) trigger the same copy-on-write resolution a guest store
// would, so a clone behaves exactly like its directly built template.
// Contention on the enclave's transaction lock fails the resolution
// (the caller's call reports a retryable failure). Every hart gets a
// targeted shootdown through its IPI mailbox — including the current
// one, whose mailbox drains at the instruction boundary right after
// the trap returns; the monitor's own writes go through physical
// memory and never consult a TLB.
func (mon *Monitor) resolveCOWForWrite(e *Enclave, va uint64) bool {
	vaPage := va &^ uint64(mem.PageMask)
	if !mon.tryLock(&e.mu, LockEnclave, e.ID) {
		return false
	}
	resolved := mon.resolveCOWLocked(e, vaPage)
	e.mu.Unlock()
	if !resolved {
		return false
	}
	vpn := (vaPage & pt.VAMask) >> mem.PageBits
	for _, c := range mon.machine.Cores {
		mon.machine.PostIPI(c.ID, func(oc *machine.Core) {
			oc.TLB.FlushPage(vpn)
		})
	}
	return true
}

// cowFault resolves a store page fault on a copy-on-write alias: copy
// the frozen page into the faulting enclave's own memory, repoint the
// leaf PTE with write permission restored, shoot the stale translation
// down, and retry the store (the PC is not advanced). Returns handled
// = false for anything that is not a resolvable COW fault — the caller
// falls through to the ordinary enclave fault path, and contended
// transactions resolve through the OS re-entering the thread.
func (mon *Monitor) cowFault(c *machine.Core, slot slotView, tr *isa.Trap) (machine.Disposition, bool) {
	mon.objMu.RLock()
	e := mon.enclaves[slot.owner]
	mon.objMu.RUnlock()
	if e == nil {
		return 0, false
	}
	vaPage := tr.Value &^ uint64(mem.PageMask)
	if !mon.tryLock(&e.mu, LockEnclave, slot.owner) {
		return 0, false // contended: AEX; the OS re-enters and the store retries
	}
	defer e.mu.Unlock()

	vpn := (vaPage & pt.VAMask) >> mem.PageBits
	if _, isCOW := e.cow[vaPage]; !isCOW {
		// Spurious fault: another hart may have resolved this page
		// between our fault and the lock. If the translation is now
		// writable, only the local TLB entry was stale — drop it and
		// retry; otherwise it is a genuine fault.
		if _, ok := mon.enclaveVAtoPA(e, tr.Value, pt.Store); ok {
			c.TLB.FlushPage(vpn)
			return machine.DispResume, true
		}
		return 0, false
	}
	if !mon.resolveCOWLocked(e, vaPage) {
		return 0, false
	}

	// The faulting hart drops its own stale translation inline (it owns
	// its core inside the trap); other harts get a targeted shootdown
	// through their IPI mailboxes, fire-and-forget — a hart that races
	// ahead on a stale read-only entry refaults into the spurious path
	// above. RunOn must not be used here: two harts in simultaneous COW
	// faults would wait on each other's instruction boundaries.
	c.TLB.FlushPage(vpn)
	for _, other := range mon.machine.Cores {
		if other.ID != c.ID {
			mon.machine.PostIPI(other.ID, func(oc *machine.Core) {
				oc.TLB.FlushPage(vpn)
			})
		}
	}
	return machine.DispResume, true
}
