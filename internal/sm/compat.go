package sm

import "sanctorum/internal/sm/api"

// This file is the staging shim for the pre-ABI method surface: each
// method builds the equivalent api.Request and funnels it through
// Monitor.Dispatch, so the call table and its per-domain authorization
// remain the only privilege boundary. New code — internal/os in
// particular — should use the smcall client (or Dispatch directly)
// instead; these wrappers exist so white-box tests and older tools
// migrate gradually and will be removed once nothing links them.

// CreateEnclave starts the enclave lifecycle (Fig 3).
//
// Deprecated: use Dispatch with api.CallCreateEnclave or the smcall
// client.
func (mon *Monitor) CreateEnclave(eid, evBase, evMask uint64) api.Error {
	return mon.Dispatch(api.OSRequest(api.CallCreateEnclave, eid, evBase, evMask)).Status
}

// AllocatePageTable allocates one enclave page-table page.
//
// Deprecated: use Dispatch with api.CallAllocPageTable or the smcall
// client.
func (mon *Monitor) AllocatePageTable(eid, va uint64, level int) api.Error {
	return mon.Dispatch(api.OSRequest(api.CallAllocPageTable, eid, va, uint64(level))).Status
}

// LoadPage loads one measured page of enclave initial state.
//
// Deprecated: use Dispatch with api.CallLoadPage or the smcall client.
func (mon *Monitor) LoadPage(eid, va, srcPA, perms uint64) api.Error {
	return mon.Dispatch(api.OSRequest(api.CallLoadPage, eid, va, srcPA, perms)).Status
}

// MapShared maps an OS-owned page as an untrusted shared window.
//
// Deprecated: use Dispatch with api.CallMapShared or the smcall client.
func (mon *Monitor) MapShared(eid, va, pa uint64) api.Error {
	return mon.Dispatch(api.OSRequest(api.CallMapShared, eid, va, pa)).Status
}

// InitEnclave seals the enclave and finalizes its measurement.
//
// Deprecated: use Dispatch with api.CallInitEnclave or the smcall
// client.
func (mon *Monitor) InitEnclave(eid uint64) api.Error {
	return mon.Dispatch(api.OSRequest(api.CallInitEnclave, eid)).Status
}

// DeleteEnclave tears an enclave down.
//
// Deprecated: use Dispatch with api.CallDeleteEnclave or the smcall
// client.
func (mon *Monitor) DeleteEnclave(eid uint64) api.Error {
	return mon.Dispatch(api.OSRequest(api.CallDeleteEnclave, eid)).Status
}

// LoadThread creates a measured thread during enclave loading.
//
// Deprecated: use Dispatch with api.CallLoadThread or the smcall
// client.
func (mon *Monitor) LoadThread(eid, tid, entryPC, entrySP uint64) api.Error {
	return mon.Dispatch(api.OSRequest(api.CallLoadThread, eid, tid, entryPC, entrySP)).Status
}

// CreateThread creates an unbound, unmeasured thread.
//
// Deprecated: use Dispatch with api.CallCreateThread or the smcall
// client.
func (mon *Monitor) CreateThread(tid uint64) api.Error {
	return mon.Dispatch(api.OSRequest(api.CallCreateThread, tid)).Status
}

// AssignThread offers an available thread to an initialized enclave.
//
// Deprecated: use Dispatch with api.CallAssignThread or the smcall
// client.
func (mon *Monitor) AssignThread(eid, tid uint64) api.Error {
	return mon.Dispatch(api.OSRequest(api.CallAssignThread, eid, tid)).Status
}

// UnassignThread takes a non-running thread away from its enclave.
//
// Deprecated: use Dispatch with api.CallUnassignThread or the smcall
// client.
func (mon *Monitor) UnassignThread(tid uint64) api.Error {
	return mon.Dispatch(api.OSRequest(api.CallUnassignThread, tid)).Status
}

// DeleteThread destroys an available thread.
//
// Deprecated: use Dispatch with api.CallDeleteThread or the smcall
// client.
func (mon *Monitor) DeleteThread(tid uint64) api.Error {
	return mon.Dispatch(api.OSRequest(api.CallDeleteThread, tid)).Status
}

// EnterEnclave schedules an enclave thread onto an idle core.
//
// Deprecated: use Dispatch with api.CallEnterEnclave or the smcall
// client.
func (mon *Monitor) EnterEnclave(coreID int, eid, tid uint64) api.Error {
	return mon.Dispatch(api.OSRequest(api.CallEnterEnclave, uint64(coreID), eid, tid)).Status
}

// RegionInfo reports a region's lifecycle state and owner.
//
// Deprecated: use Dispatch with api.CallRegionInfo or the smcall
// client.
func (mon *Monitor) RegionInfo(r int) (RegionState, uint64, api.Error) {
	resp := mon.Dispatch(api.OSRequest(api.CallRegionInfo, uint64(r)))
	return RegionState(resp.Values[0]), resp.Values[1], resp.Status
}

// GrantRegion re-allocates an available or OS-owned region.
//
// Deprecated: use Dispatch with api.CallGrantRegion or the smcall
// client.
func (mon *Monitor) GrantRegion(r int, newOwner uint64) api.Error {
	return mon.Dispatch(api.OSRequest(api.CallGrantRegion, uint64(r), newOwner)).Status
}

// BlockRegion relinquishes an OS-owned region.
//
// Deprecated: use Dispatch with api.CallBlockRegion or the smcall
// client.
func (mon *Monitor) BlockRegion(r int) api.Error {
	return mon.Dispatch(api.OSRequest(api.CallBlockRegion, uint64(r))).Status
}

// CleanRegion scrubs a blocked region and makes it available.
//
// Deprecated: use Dispatch with api.CallCleanRegion or the smcall
// client.
func (mon *Monitor) CleanRegion(r int) api.Error {
	return mon.Dispatch(api.OSRequest(api.CallCleanRegion, uint64(r))).Status
}

// EnclaveInfo exposes an enclave's state and measurement to host-side
// tests and tools directly, without an OS-memory staging buffer. The
// ABI path for the same information is api.CallEnclaveStatus, which
// writes the measurement into OS-owned memory; keep this helper out of
// OS-model code.
func (mon *Monitor) EnclaveInfo(eid uint64) (EnclaveState, [32]byte, api.Error) {
	e, st := mon.lookupEnclave(eid)
	if st != api.OK {
		return 0, [32]byte{}, st
	}
	defer e.mu.Unlock()
	return e.State, e.Measurement, api.OK
}
