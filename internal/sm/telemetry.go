package sm

import (
	"sanctorum/internal/sm/api"
	"sanctorum/internal/telemetry"
)

// monTelemetry caches the monitor's instrument handles so the dispatch
// and ring hot paths never touch the registry (no map lookups, no
// allocation). Per-call instruments live in a dense array indexed by
// call number — one bounds check instead of a second map probe in the
// ~tens-of-ns dispatch path. The clock is the machine's summed
// per-core modeled cycle counter: telemetry stamps are simulated
// cycles, never wall time, so instrumented runs replay bit-identically.
//
// A nil *monTelemetry (the default — only the facade wires one) is the
// disabled mode: instrumented sites pay a single nil check.
type monTelemetry struct {
	clock func() uint64
	calls []*callInstr

	ringSendBatch *telemetry.Histogram // messages per successful send
	ringRecvBatch *telemetry.Histogram // messages per successful recv
	ringDepth     *telemetry.Gauge     // queued messages across all rings
	ringParks     *telemetry.Counter
	ringWakes     *telemetry.Counter
	ringParkWait  *telemetry.Histogram // cycles between park and wake

	bulkBytes  *telemetry.Counter   // payload bytes granted passage by bulk_send
	bulkGrants *telemetry.Gauge     // live grants
	bulkDescs  *telemetry.Histogram // descriptors per bulk message
}

// callInstr is one monitor call's instrument set.
type callInstr struct {
	count   *telemetry.Counter
	retries *telemetry.Counter
	cycles  *telemetry.Histogram
}

// call returns the instruments for c, nil for calls outside the table.
func (tl *monTelemetry) call(c api.Call) *callInstr {
	if i := int(c); i >= 0 && i < len(tl.calls) {
		return tl.calls[i]
	}
	return nil
}

// SetTelemetry instruments the monitor against reg: every dispatch-
// table entry gets count / ErrRetry / latency-cycles instruments, and
// the mailbox rings get depth, park/wake and batch-size instruments.
// Instrument handles are resolved here, once; the hot paths only
// touch cached pointers. Passing a nil registry disables telemetry.
func (mon *Monitor) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		mon.tele = nil
		return
	}
	tl := &monTelemetry{clock: mon.machine.CycleNow}
	maxCall := api.Call(0)
	for c := range callTable {
		if c > maxCall {
			maxCall = c
		}
	}
	tl.calls = make([]*callInstr, int(maxCall)+1)
	for c, def := range callTable {
		tl.calls[int(c)] = &callInstr{
			count:   reg.Counter("sm.call." + def.name + ".count"),
			retries: reg.Counter("sm.call." + def.name + ".retries"),
			cycles:  reg.Histogram("sm.call." + def.name + ".cycles"),
		}
	}
	tl.ringSendBatch = reg.Histogram("sm.ring.send.batch")
	tl.ringRecvBatch = reg.Histogram("sm.ring.recv.batch")
	tl.ringDepth = reg.Gauge("sm.ring.depth")
	tl.ringParks = reg.Counter("sm.ring.parks")
	tl.ringWakes = reg.Counter("sm.ring.wakes")
	tl.ringParkWait = reg.Histogram("sm.ring.parkwait.cycles")
	tl.bulkBytes = reg.Counter("sm.bulk.bytes")
	tl.bulkGrants = reg.Gauge("sm.bulk.grants")
	tl.bulkDescs = reg.Histogram("sm.bulk.descs")
	mon.tele = tl
}

// observeEnc wraps a batched enclave-handler invocation with the same
// per-call instruments the single-call path records.
func (tl *monTelemetry) observeEnc(mon *Monitor, def callDef, held *Enclave, req api.Request) api.Response {
	ci := tl.call(req.Call)
	if ci == nil {
		return def.encHandler(mon, held, req)
	}
	// Batched enclave handlers run host-side: no core retires cycles
	// during the call, so — like host-side dispatch — they count but
	// feed no definitional zeros into the cycle histogram.
	resp := def.encHandler(mon, held, req)
	ci.count.Inc(0)
	if resp.Status == api.ErrRetry {
		ci.retries.Inc(0)
	}
	return resp
}
