// Package api defines the security monitor's unified call ABI: the one
// contract between all untrusted software — OS and enclaves alike — and
// the monitor (paper §V-A, Fig 3). Every monitor operation is a call
// number plus up to six register-sized arguments, submitted as a
// Request and answered with a Response; the monitor routes by call
// number and authorizes by caller domain in a single dispatch point
// (sm.Monitor.Dispatch).
//
// Enclaves invoke the monitor through the ECALL instruction with the
// call number in a7 and arguments in a0..a5; the status returns in a0
// and the first result value in a1. The untrusted OS — host Go code
// standing in for an S-mode kernel in this reproduction — submits the
// same Requests through Monitor.Dispatch (or batched through
// Monitor.DispatchBatch), normally via the typed smcall client, which
// also centralizes the §V-A retry discipline for ErrRetry.
//
// The ABI is versioned: CallGetABIVersion reports Version, and callers
// are expected to probe it before relying on calls newer than major 1.
package api

import (
	"encoding/binary"
	"fmt"
)

// Error is the status returned by every monitor call, in a0. It
// implements the Go error interface, so statuses flow through error
// wrapping and errors.Is against the exported sentinel values; OK is
// the zero Error and should be converted with Err rather than returned
// as a non-nil error.
type Error uint64

// Monitor call status codes.
const (
	OK Error = iota
	// ErrInvalidValue: a parameter failed validation (bad alignment,
	// out-of-range address, unknown ID).
	ErrInvalidValue
	// ErrInvalidState: the operation is illegal in the object's current
	// lifecycle state (e.g. loading a page into an initialized enclave).
	ErrInvalidState
	// ErrConcurrentCall: another transaction holds one of the object
	// locks; the caller should retry (paper §V-A: the SM fails
	// transactions in case of a concurrent operation). New code should
	// use the ErrRetry name; this spelling is kept for ABI stability.
	ErrConcurrentCall
	// ErrUnauthorized: the caller does not own the object or lacks the
	// privilege for the call (including calls outside the caller's
	// domain: an enclave invoking an OS-only call or vice versa).
	ErrUnauthorized
	// ErrNoResources: allocation failed (metadata space, PMP entries,
	// enclave physical pages, free mailboxes).
	ErrNoResources
	// ErrNotSupported: the call number is unknown or not available to
	// this caller.
	ErrNotSupported
)

// ErrRetry is the transaction-contention status of the paper's §V-A
// locking discipline: monitor calls take fine-grained per-object locks
// with try-lock semantics and fail — rather than block — when another
// hart's transaction holds one of them. The caller (untrusted OS or
// enclave) is expected to simply retry; no monitor state changed. It is
// the same ABI value as the legacy ErrConcurrentCall name, so existing
// guest binaries and callers are unaffected. The smcall client retries
// it centrally with bounded backoff.
const ErrRetry = ErrConcurrentCall

func (e Error) String() string {
	switch e {
	case OK:
		return "ok"
	case ErrInvalidValue:
		return "invalid-value"
	case ErrInvalidState:
		return "invalid-state"
	case ErrConcurrentCall:
		return "concurrent-call"
	case ErrUnauthorized:
		return "unauthorized"
	case ErrNoResources:
		return "no-resources"
	case ErrNotSupported:
		return "not-supported"
	default:
		return fmt.Sprintf("error(%d)", uint64(e))
	}
}

// Error implements the error interface by delegating to String, so a
// status wraps cleanly with %w and matches its sentinel under
// errors.Is.
func (e Error) Error() string { return e.String() }

// Err converts a status into a Go error: nil for OK, the status value
// itself otherwise.
func (e Error) Err() error {
	if e == OK {
		return nil
	}
	return e
}

// ABI version, reported by CallGetABIVersion in Values[0]/a1. The major
// half bumps on incompatible changes to existing calls; the minor half
// bumps when calls are added.
const (
	VersionMajor = 1
	// Minor 1 added the snapshot/clone calls (0x30–0x32) and the
	// FieldEnclaveIdentity selector. Minor 2 added the mailbox-ring
	// calls (0x40–0x45) and the FieldEnclaveRings selector. Minor 3
	// added the bulk-grant calls (0x50–0x54) and the FieldEnclaveGrants
	// selector.
	VersionMinor = 3
	// Version packs major and minor into the single register the probe
	// returns.
	Version = VersionMajor<<16 | VersionMinor
)

// Call is a monitor call number (register a7).
type Call uint64

// Request is one monitor call as submitted to Monitor.Dispatch: the
// caller's protection domain, the call number, and the a0..a5 argument
// registers. Caller is DomainOS for the untrusted OS; enclave callers
// never populate it themselves — the monitor derives the calling
// enclave's identity from the trapping core, and host-side Requests
// claiming an enclave caller are refused with ErrUnauthorized.
type Request struct {
	Caller uint64
	Call   Call
	Args   [6]uint64
}

// Response is the result of one monitor call: the a0 status and the
// a1/a2 result registers. Enclave callers receive Values[0] in a1;
// OS-side calls with two results (e.g. CallRegionInfo) use both.
type Response struct {
	Status Error
	Values [2]uint64
}

// OSRequest builds a Request from the OS domain with up to six
// arguments; extra arguments are a programming error and are dropped.
func OSRequest(call Call, args ...uint64) Request {
	r := Request{Caller: DomainOS, Call: call}
	copy(r.Args[:], args)
	return r
}

// Enclave-invocable call numbers (a7). These run in the trapping
// enclave's domain; the OS cannot invoke them (except where a call is
// explicitly dual-domain, noted per call).
const (
	// CallExitEnclave ends the current thread's execution slice and
	// returns the core to the OS. a0 carries an enclave-defined result.
	CallExitEnclave Call = 0x01
	// CallGetRandom returns entropy from the trusted source in a1.
	CallGetRandom Call = 0x02
	// CallAcceptMail(a0=mailbox index, a1=expected sender eid).
	CallAcceptMail Call = 0x03
	// CallSendMail delivers a mailbox message. Dual-domain: an enclave
	// passes (a0=recipient eid, a1=message VA) and the monitor reads
	// MailboxSize bytes from enclave memory; the OS passes
	// (a0=recipient eid, a1=source PA in OS-owned memory, a2=length ≤
	// MailboxSize, zero-padded) and is stamped with the reserved OS
	// identity and a zero measurement.
	CallSendMail Call = 0x04
	// CallGetMail(a0=mailbox index, a1=output VA). The monitor writes
	// the 32-byte sender measurement followed by the message bytes.
	CallGetMail Call = 0x05
	// CallAcceptThread(a0=tid, a1=entry PC, a2=entry SP).
	CallAcceptThread Call = 0x06
	// CallReleaseThread(a0=tid).
	CallReleaseThread Call = 0x07
	// CallAcceptRegion(a0=region index).
	CallAcceptRegion Call = 0x08
	// CallBlockRegion(a0=region index) blocks a region the caller owns.
	// Dual-domain: the owner is the calling enclave from a trap, the OS
	// from a host-side Request (block(resource) in Fig 2).
	CallBlockRegion Call = 0x09
	// CallGetField reads monitor metadata (§VI-C). Dual-domain: an
	// enclave passes (a0=field id, a1=output VA, a2=max length); the OS
	// passes (a0=field id, a1=output PA in OS-owned memory, a2=max
	// length). Returns the byte count in a1/Values[0].
	CallGetField Call = 0x0A
	// CallAttestSign(a0=input VA, a1=input length, a2=output VA) signs
	// the input with the SM attestation key. Restricted to the signing
	// enclave (see DESIGN.md: the signature is computed by the monitor
	// on the signing enclave's behalf because the simulated ISA does not
	// run Ed25519; the trust structure — only the hard-coded signing
	// enclave measurement may use the key — is preserved).
	CallAttestSign Call = 0x0B
	// CallResumeAEX restores the register file saved by the last
	// asynchronous enclave exit and continues from the interrupted PC.
	CallResumeAEX Call = 0x0C
	// CallSetFaultHandler(a0=handler PC, a1=handler SP) registers an
	// enclave-virtual fault handler for this thread.
	CallSetFaultHandler Call = 0x0D
	// CallResumeFault returns from the enclave fault handler to the
	// faulting context.
	CallResumeFault Call = 0x0E
	// CallMyEnclaveID returns the caller's eid in a1.
	CallMyEnclaveID Call = 0x0F
	// CallKADerive(a0=private scalar VA, a1=output VA) writes the
	// X25519 public share for an enclave-held 32-byte private scalar.
	// This and the two calls below are the monitor's crypto service:
	// the simulated ISA cannot run curve arithmetic, so enclaves invoke
	// the monitor for it, with all key material living in enclave
	// memory (see DESIGN.md's substitution table).
	CallKADerive Call = 0x10
	// CallKACombine(a0=private scalar VA, a1=peer share VA, a2=output
	// VA) writes the 32-byte session key.
	CallKACombine Call = 0x11
	// CallMAC(a0=key VA, a1=message VA, a2=message length, a3=output
	// VA) writes a 32-byte authenticator.
	CallMAC Call = 0x12
)

// CallGetABIVersion reports the ABI version (Version) in a1/Values[0].
// Any caller domain may probe it.
const CallGetABIVersion Call = 0x1F

// OS-invocable call numbers. These are the resource-management verbs of
// Figs 2–4: the untrusted OS proposes, the monitor verifies. Enclaves
// invoking them are refused with ErrUnauthorized.
const (
	// CallCreateEnclave(a0=eid, a1=evBase, a2=evMask) starts the
	// enclave lifecycle (Fig 3). eid must be a free page inside an SM
	// metadata region.
	CallCreateEnclave Call = 0x20
	// CallAllocPageTable(a0=eid, a1=va, a2=level) allocates the enclave
	// page-table page covering va at the given level, top-down.
	CallAllocPageTable Call = 0x21
	// CallLoadPage(a0=eid, a1=va, a2=source PA in OS memory, a3=perms)
	// copies one page of initial contents into the enclave and maps it.
	CallLoadPage Call = 0x22
	// CallMapShared(a0=eid, a1=va outside evrange, a2=OS-owned PA) maps
	// an untrusted shared window through the enclave's tables (§VII-B).
	CallMapShared Call = 0x23
	// CallInitEnclave(a0=eid) seals the enclave and finalizes its
	// measurement.
	CallInitEnclave Call = 0x24
	// CallDeleteEnclave(a0=eid) tears the enclave down; owned regions
	// become blocked.
	CallDeleteEnclave Call = 0x25
	// CallEnclaveStatus(a0=eid, a1=measurement output PA or 0) reports
	// the enclave lifecycle state in Values[0]; when a1 is non-zero the
	// monitor writes the 32-byte measurement to that OS-owned address
	// (the measurement of an initialized enclave is public —
	// attestation, not secrecy, protects it).
	CallEnclaveStatus Call = 0x26
	// CallLoadThread(a0=eid, a1=tid, a2=entry PC, a3=entry SP) creates
	// a measured thread during loading (Fig 4).
	CallLoadThread Call = 0x27
	// CallCreateThread(a0=tid) creates an unbound, unmeasured thread.
	CallCreateThread Call = 0x28
	// CallAssignThread(a0=eid, a1=tid) offers an available thread to an
	// initialized enclave.
	CallAssignThread Call = 0x29
	// CallUnassignThread(a0=tid) takes a non-running thread away; its
	// context is scrubbed.
	CallUnassignThread Call = 0x2A
	// CallDeleteThread(a0=tid) destroys an available thread.
	CallDeleteThread Call = 0x2B
	// CallEnterEnclave(a0=core id, a1=eid, a2=tid) schedules a thread
	// onto an idle OS-owned core.
	CallEnterEnclave Call = 0x2C
	// CallRegionInfo(a0=region index) reports a region's lifecycle
	// state in Values[0] and its owner in Values[1].
	CallRegionInfo Call = 0x2D
	// CallGrantRegion(a0=region index, a1=new owner) re-allocates an
	// available or OS-owned region (grant(resource, new_owner), Fig 2).
	CallGrantRegion Call = 0x2E
	// CallCleanRegion(a0=region index) scrubs a blocked region and
	// makes it available (clean(resource), Fig 2).
	CallCleanRegion Call = 0x2F
)

// Snapshot/clone call numbers (ABI minor 1). A snapshot freezes an
// initialized enclave — the template — read-only and records its
// measured layout; clones are fresh enclaves whose data pages alias
// the snapshot's pages copy-on-write and whose measurement identity is
// inherited from the template, which turns the O(all pages + hashing)
// measured build into an O(page-table pages) fork (DESIGN.md §8).
const (
	// CallSnapshotEnclave(a0=eid, a1=snapshot id) freezes an
	// initialized, non-running enclave's pages read-only and registers
	// the snapshot under the given id — a free page inside an SM
	// metadata region, exactly like enclave and thread ids.
	CallSnapshotEnclave Call = 0x30
	// CallCloneEnclave(a0=eid, a1=snapshot id, a2=tid base, a3=shared
	// PA override or 0) builds a fresh enclave from a snapshot: eid
	// names a Loading enclave with granted regions, a matching evrange
	// and nothing loaded; the monitor allocates its page tables in its
	// own memory, aliases the snapshot's data pages copy-on-write, and
	// seals it with the template measurement. Template thread i is
	// recreated under tid = tidBase + i*4096 (free metadata pages). A
	// non-zero a3 rebases the template's single shared window onto
	// that OS-owned page, giving each clone a private untrusted buffer.
	CallCloneEnclave Call = 0x31
	// CallReleaseSnapshot(a0=snapshot id) dissolves a snapshot with no
	// outstanding clones: the template's pages thaw (write permissions
	// restored) and the id is freed. Refused with ErrInvalidState while
	// any clone still aliases the snapshot's pages.
	CallReleaseSnapshot Call = 0x32
)

// Mailbox-ring call numbers (ABI minor 2). Rings are the streaming
// counterpart of the single-slot mailboxes (§VI-B): a fixed-capacity
// FIFO of fixed-size messages in monitor-tracked memory, named — like
// enclaves, threads and snapshots — by a free SM metadata page, so ring
// ids are unforgeable. Each ring has one producer and one consumer
// protection domain fixed at creation (DomainOS or an eid); send is
// authorized against the producer, recv against the consumer, and the
// monitor stamps every message with the sender's identity and
// measurement, so provenance is attestation-grade exactly as for
// mailboxes. Send and recv move up to RingMaxBatch messages per call,
// which amortizes the per-call monitor overhead; thread_park lets an
// enclave consumer block on an empty ring, and a send to a parked ring
// wakes it through the inter-processor mailboxes instead of OS polling.
const (
	// CallRingCreate(a0=ring id, a1=producer, a2=consumer, a3=capacity)
	// registers a ring. ring id must be a free page inside an SM
	// metadata region; producer/consumer are DomainOS or existing eids;
	// capacity is in messages, 1..RingMaxCapacity.
	CallRingCreate Call = 0x40
	// CallRingSend delivers up to a2 messages (1..RingMaxBatch) of
	// RingMsgSize bytes each, contiguous at the source address.
	// Dual-domain: an enclave producer passes (a0=ring id, a1=source
	// VA, a2=count); the OS passes (a0=ring id, a1=source PA in
	// OS-owned memory, a2=count). Transfers min(count, free slots)
	// messages and returns the count in a1/Values[0]; a full ring
	// refuses with ErrInvalidState having transferred nothing. A send
	// that finds the consumer parked wakes it.
	CallRingSend Call = 0x41
	// CallRingRecv drains up to a2 messages (1..RingMaxBatch) into the
	// destination, each written as a RingRecordSize record:
	// sender measurement[32] ‖ sender id[8] ‖ payload[RingMsgSize].
	// Dual-domain like send, authorized against the consumer. Returns
	// the record count in a1/Values[0]; an empty ring refuses with
	// ErrInvalidState.
	CallRingRecv Call = 0x42
	// CallRingPark(a0=ring id) blocks the calling enclave thread on an
	// empty ring (thread_park). A non-empty ring returns immediately
	// with the message count in a1. Otherwise the monitor registers the
	// thread as the ring's waiter and performs an AEX-style exit with
	// ParkedExitValue in the OS's a0; the saved context re-executes
	// this ECALL on resume, so a woken thread simply re-checks the
	// ring. One waiter per ring; a second thread parking is refused
	// with ErrInvalidState.
	CallRingPark Call = 0x43
	// CallRingWake(a0=ring id) explicitly wakes the ring's parked
	// waiter, if any (send wakes implicitly). Producer-only; returns 1
	// in a1 if a waiter was woken, 0 otherwise.
	CallRingWake Call = 0x44
	// CallRingDestroy(a0=ring id) unregisters a ring and frees its id.
	// Undelivered messages are dropped; a parked waiter is woken, and
	// its re-executed park fails with ErrInvalidValue — the consumer's
	// shutdown signal.
	CallRingDestroy Call = 0x45
)

// Bulk-grant call numbers (ABI minor 3). A grant pins a span of
// OS-owned pages as an untrusted shared buffer between a fixed
// producer/consumer domain pair — the Fig 2 region-ownership machinery
// narrowed to page granularity, with the page refcounts as ground
// truth: granted pages cannot be scrubbed (clean_region refuses ranges
// holding references) and the grant cannot be revoked while
// scatter-gather descriptors into it are still queued in a ring. Ring
// messages then carry descriptors — (offset, length) lists validated
// against the grant bounds at send time — so multi-KB payloads move
// through the buffer with zero monitor copies on the data path; the
// monitor only ever copies the 64-byte descriptor message (DESIGN.md
// §14).
const (
	// CallBulkGrant(a0=grant id, a1=base PA, a2=page count, a3=producer,
	// a4=consumer) registers a grant over [base, base+pages*4096) in
	// OS-owned memory and pins every page with an alias reference.
	// grant id must be a free page inside an SM metadata region;
	// producer/consumer are DomainOS or existing eids; page count is
	// 1..BulkMaxPages. OS-only.
	CallBulkGrant Call = 0x50
	// CallBulkMap(a0=grant id, a1=va) maps the grant's pages read-write
	// into the calling enclave's tables at va — page-aligned, outside
	// the evrange, with the covering leaf page tables already allocated
	// (clones inherit the template's tables, so a template built with a
	// shared window at the same 2 MiB leaf satisfies this). The caller
	// must be one of the grant's endpoints; each endpoint maps at most
	// once. Enclave-only — the accept half of the grant handshake.
	CallBulkMap Call = 0x51
	// CallBulkRevoke(a0=grant id) unmaps the grant from every endpoint
	// that mapped it (with targeted shootdowns), drops the page pins,
	// and frees the id. Refused with ErrInvalidState while any
	// scatter-gather descriptor into the grant is still queued in a
	// ring — in-flight data keeps the buffer alive. OS-only.
	CallBulkRevoke Call = 0x52
	// CallBulkSend is CallRingSend for scatter-gather messages: each
	// 64-byte payload must parse as a descriptor list into a3's grant
	// (BulkTag ‖ count ‖ (offset, length)×BulkMaxDescs), validated
	// against the grant bounds before anything is published. Dual-
	// domain: (a0=ring id, a1=source VA/PA, a2=count, a3=grant id); the
	// sender must be both the ring's producer and a grant endpoint.
	// Queued descriptors count as in-flight on the grant until
	// received; a plain CallRingRecv refuses them with ErrInvalidValue.
	CallBulkSend Call = 0x53
	// CallBulkRecv is CallRingRecv for scatter-gather messages: drains
	// up to a2 descriptor records for a3's grant from the ring head
	// (stopping early at a plain message) and releases their in-flight
	// pins. Dual-domain like recv; the caller must be both the ring's
	// consumer and a grant endpoint.
	CallBulkRecv Call = 0x54
)

// Bulk-grant geometry. A descriptor message is one RingMsgSize payload:
// BulkTag[8] ‖ descriptor count[8] ‖ (offset[8] ‖ length[8]) ×
// BulkMaxDescs — exactly 64 bytes. Offsets and lengths are in bytes
// relative to the grant base; every descriptor must have length > 0,
// offset+length ≤ the grant's byte size (no wraparound), and no two
// descriptors in one message may overlap.
const (
	// BulkTag marks a payload as a descriptor list ("blkd" in ASCII).
	// It is a parse anchor, not a capability — authority comes from the
	// grant id argument and the send-time bounds checks.
	BulkTag uint64 = 0x646B6C62
	// BulkMaxDescs is the descriptor capacity of one message.
	BulkMaxDescs = 3
	// BulkMaxPages bounds a grant's size in pages (256 KiB).
	BulkMaxPages = 64
)

// EncodeBulkDescs builds one descriptor message payload from (offset,
// length) pairs: BulkTag ‖ count ‖ the pairs, zero-padded. It encodes
// whatever it is given — including the adversarial shapes the monitor
// must refuse — so tests can drive the validator; callers wanting a
// deliverable message must respect the descriptor rules themselves.
// More than BulkMaxDescs pairs are truncated. The slots beyond the
// descriptors (payload[16+16·len(descs):]) are application-defined;
// bulk servers carry their opcode and key there.
func EncodeBulkDescs(descs ...[2]uint64) [RingMsgSize]byte {
	var msg [RingMsgSize]byte
	if len(descs) > BulkMaxDescs {
		descs = descs[:BulkMaxDescs]
	}
	binary.LittleEndian.PutUint64(msg[0:], BulkTag)
	binary.LittleEndian.PutUint64(msg[8:], uint64(len(descs)))
	for i, d := range descs {
		binary.LittleEndian.PutUint64(msg[16+16*i:], d[0])
		binary.LittleEndian.PutUint64(msg[24+16*i:], d[1])
	}
	return msg
}

// DecodeBulkDescs parses a received descriptor payload back into
// (offset, length) pairs, with no validation beyond the tag and count
// shape — the monitor already validated a delivered message at send
// time. Returns nil if the payload is not a descriptor message.
func DecodeBulkDescs(payload []byte) [][2]uint64 {
	if len(payload) < RingMsgSize || binary.LittleEndian.Uint64(payload) != BulkTag {
		return nil
	}
	n := binary.LittleEndian.Uint64(payload[8:])
	if n == 0 || n > BulkMaxDescs {
		return nil
	}
	out := make([][2]uint64, n)
	for i := range out {
		out[i][0] = binary.LittleEndian.Uint64(payload[16+16*i:])
		out[i][1] = binary.LittleEndian.Uint64(payload[24+16*i:])
	}
	return out
}

// Ring geometry. Messages are fixed-size; recv prepends the
// monitor-attested sender stamp to each.
const (
	// RingMsgSize is the fixed ring message payload size in bytes.
	RingMsgSize = 64
	// RingStampSize is the per-message sender stamp a recv writes:
	// measurement[32] ‖ sender id[8].
	RingStampSize = 40
	// RingRecordSize is one recv output record: stamp ‖ payload.
	RingRecordSize = RingStampSize + RingMsgSize
	// RingMaxCapacity bounds a ring's capacity in messages.
	RingMaxCapacity = 1024
	// RingMaxBatch bounds the messages one send/recv call may move.
	RingMaxBatch = 32
)

// ParkedExitValue is the a0 value the OS observes when an enclave
// thread parks on an empty ring (CallRingPark): the monitor performs an
// AEX-style exit with this marker so schedulers can tell "parked, wake
// pending" from an ordinary exit_enclave. ("park" in ASCII.)
const ParkedExitValue uint64 = 0x6B726170

// RegionState is the lifecycle state of a DRAM region resource as
// reported by CallRegionInfo, implementing the paper's Fig 2 state
// machine.
type RegionState uint8

// Region states.
const (
	// RegionOwned: exclusively held by a protection domain.
	RegionOwned RegionState = iota
	// RegionPending: granted by the OS to an initialized enclave but
	// not yet accepted (accept_resource completes the transition).
	RegionPending
	// RegionBlocked: relinquished by its owner; unusable until cleaned.
	RegionBlocked
	// RegionAvailable: cleaned and ready for re-allocation.
	RegionAvailable
)

func (s RegionState) String() string {
	switch s {
	case RegionOwned:
		return "owned"
	case RegionPending:
		return "pending"
	case RegionBlocked:
		return "blocked"
	case RegionAvailable:
		return "available"
	default:
		return "region-state-?"
	}
}

// EnclaveState is the lifecycle state of an enclave as reported by
// CallEnclaveStatus (paper Fig 3).
type EnclaveState uint8

// Enclave states.
const (
	// EnclaveLoading: created; the OS may grant resources and load
	// contents, all of which the monitor measures.
	EnclaveLoading EnclaveState = iota
	// EnclaveInitialized: sealed; threads may be scheduled; contents
	// can no longer be altered through the API.
	EnclaveInitialized
	// EnclaveDead: deleted; kept only transiently for error reporting.
	EnclaveDead
)

func (s EnclaveState) String() string {
	switch s {
	case EnclaveLoading:
		return "loading"
	case EnclaveInitialized:
		return "initialized"
	case EnclaveDead:
		return "dead"
	default:
		return "enclave-state-?"
	}
}

// Field identifies monitor metadata readable via get_field (§VI-C).
type Field uint64

// get_field selectors.
const (
	// FieldSMMeasurement is the 32-byte monitor measurement.
	FieldSMMeasurement Field = 1
	// FieldSMPublicKey is the monitor's attestation public key.
	FieldSMPublicKey Field = 2
	// FieldCertChain is the marshalled manufacturer→device→monitor
	// certificate chain.
	FieldCertChain Field = 3
	// FieldEnclaveMeasurement is the calling enclave's own measurement
	// (valid only for enclave callers).
	FieldEnclaveMeasurement Field = 4
	// FieldEnclaveIdentity is the calling enclave's full attestation
	// identity (valid only for enclave callers): 48 bytes laid out as
	// measurement[32] ‖ eid[8] ‖ origin[8], where origin is 0 for an
	// enclave built and measured directly and 1 for a clone inheriting
	// a snapshot template's measurement. Evidence built over this field
	// distinguishes the (shared) template measurement from the
	// (per-clone) enclave identity.
	FieldEnclaveIdentity Field = 5
	// FieldEnclaveRings lists the mailbox rings the calling enclave is
	// an endpoint of (valid only for enclave callers), in ring-creation
	// order: one 16-byte entry per ring, laid out as ring id[8] ‖
	// role[8] with role 0 for consumer and 1 for producer. Ring ids are
	// SM metadata pages a guest cannot guess, so this is how a cloned
	// worker — whose measured image cannot embed per-clone names —
	// discovers its own request/response rings.
	FieldEnclaveRings Field = 6
	// FieldEnclaveGrants lists the bulk grants the calling enclave is an
	// endpoint of (valid only for enclave callers), in grant-creation
	// order: one 24-byte entry per grant, laid out as grant id[8] ‖
	// role[8] ‖ byte size[8] with role 0 for consumer and 1 for
	// producer. Like FieldEnclaveRings, this is how a cloned worker —
	// whose measured image cannot embed per-clone names — discovers the
	// shared buffer it should bulk_map.
	FieldEnclaveGrants Field = 7
)

// Reserved protection-domain constants (paper §V-C: the SM and
// untrusted software are identified via reserved constants; enclave IDs
// are metadata physical addresses, which are page-aligned and therefore
// never collide with these).
const (
	DomainOS uint64 = 0
	DomainSM uint64 = 1
)

// MailboxSize is the fixed mailbox message size in bytes.
const MailboxSize = 128

// MailboxesPerEnclave is the number of mailboxes in each enclave's
// metadata structure.
const MailboxesPerEnclave = 4
