// Package api defines the security monitor's call numbers, error codes
// and ABI constants — the contract between the untrusted OS, enclaves,
// and the monitor (paper §V-A). Enclaves invoke the monitor through the
// ECALL instruction with the call number in a7 and arguments in a0..a5;
// results return in a0 (status) and a1 (value). The untrusted OS, which
// in this reproduction is Go code standing in for an S-mode kernel,
// calls the same entry points through the Monitor's exported methods.
package api

import "fmt"

// Error is the status returned by every monitor call, in a0.
type Error uint64

// Monitor call status codes.
const (
	OK Error = iota
	// ErrInvalidValue: a parameter failed validation (bad alignment,
	// out-of-range address, unknown ID).
	ErrInvalidValue
	// ErrInvalidState: the operation is illegal in the object's current
	// lifecycle state (e.g. loading a page into an initialized enclave).
	ErrInvalidState
	// ErrConcurrentCall: another transaction holds one of the object
	// locks; the caller should retry (paper §V-A: the SM fails
	// transactions in case of a concurrent operation). New code should
	// use the ErrRetry name; this spelling is kept for ABI stability.
	ErrConcurrentCall
	// ErrUnauthorized: the caller does not own the object or lacks the
	// privilege for the call.
	ErrUnauthorized
	// ErrNoResources: allocation failed (metadata space, PMP entries,
	// enclave physical pages, free mailboxes).
	ErrNoResources
	// ErrNotSupported: the call number is unknown or not available to
	// this caller.
	ErrNotSupported
)

// ErrRetry is the transaction-contention status of the paper's §V-A
// locking discipline: monitor calls take fine-grained per-object locks
// with try-lock semantics and fail — rather than block — when another
// hart's transaction holds one of them. The caller (untrusted OS or
// enclave) is expected to simply retry; no monitor state changed. It is
// the same ABI value as the legacy ErrConcurrentCall name, so existing
// guest binaries and callers are unaffected.
const ErrRetry = ErrConcurrentCall

func (e Error) String() string {
	switch e {
	case OK:
		return "ok"
	case ErrInvalidValue:
		return "invalid-value"
	case ErrInvalidState:
		return "invalid-state"
	case ErrConcurrentCall:
		return "concurrent-call"
	case ErrUnauthorized:
		return "unauthorized"
	case ErrNoResources:
		return "no-resources"
	case ErrNotSupported:
		return "not-supported"
	default:
		return fmt.Sprintf("error(%d)", uint64(e))
	}
}

// Call is a monitor call number (register a7).
type Call uint64

// Enclave-invocable call numbers. The OS-side API is exposed as Go
// methods on the Monitor; these numbers exist for the trap path.
const (
	// CallExitEnclave ends the current thread's execution slice and
	// returns the core to the OS. a0 carries an enclave-defined result.
	CallExitEnclave Call = 0x01
	// CallGetRandom returns entropy from the trusted source in a1.
	CallGetRandom Call = 0x02
	// CallAcceptMail(a0=mailbox index, a1=expected sender eid).
	CallAcceptMail Call = 0x03
	// CallSendMail(a0=recipient eid, a1=message VA).
	CallSendMail Call = 0x04
	// CallGetMail(a0=mailbox index, a1=output VA). The monitor writes
	// the 32-byte sender measurement followed by the message bytes.
	CallGetMail Call = 0x05
	// CallAcceptThread(a0=tid).
	CallAcceptThread Call = 0x06
	// CallReleaseThread(a0=tid).
	CallReleaseThread Call = 0x07
	// CallAcceptRegion(a0=region index).
	CallAcceptRegion Call = 0x08
	// CallBlockRegion(a0=region index) blocks a region the enclave owns.
	CallBlockRegion Call = 0x09
	// CallGetField(a0=field id, a1=output VA, a2=max length).
	CallGetField Call = 0x0A
	// CallAttestSign(a0=input VA, a1=input length, a2=output VA) signs
	// the input with the SM attestation key. Restricted to the signing
	// enclave (see DESIGN.md: the signature is computed by the monitor
	// on the signing enclave's behalf because the simulated ISA does not
	// run Ed25519; the trust structure — only the hard-coded signing
	// enclave measurement may use the key — is preserved).
	CallAttestSign Call = 0x0B
	// CallResumeAEX restores the register file saved by the last
	// asynchronous enclave exit and continues from the interrupted PC.
	CallResumeAEX Call = 0x0C
	// CallSetFaultHandler(a0=handler PC, a1=handler SP) registers an
	// enclave-virtual fault handler for this thread.
	CallSetFaultHandler Call = 0x0D
	// CallResumeFault returns from the enclave fault handler to the
	// faulting context.
	CallResumeFault Call = 0x0E
	// CallMyEnclaveID returns the caller's eid in a1.
	CallMyEnclaveID Call = 0x0F
	// CallKADerive(a0=private scalar VA, a1=output VA) writes the
	// X25519 public share for an enclave-held 32-byte private scalar.
	// This and the two calls below are the monitor's crypto service:
	// the simulated ISA cannot run curve arithmetic, so enclaves invoke
	// the monitor for it, with all key material living in enclave
	// memory (see DESIGN.md's substitution table).
	CallKADerive Call = 0x10
	// CallKACombine(a0=private scalar VA, a1=peer share VA, a2=output
	// VA) writes the 32-byte session key.
	CallKACombine Call = 0x11
	// CallMAC(a0=key VA, a1=message VA, a2=message length, a3=output
	// VA) writes a 32-byte authenticator.
	CallMAC Call = 0x12
)

// Field identifies monitor metadata readable via get_field (§VI-C).
type Field uint64

// get_field selectors.
const (
	// FieldSMMeasurement is the 32-byte monitor measurement.
	FieldSMMeasurement Field = 1
	// FieldSMPublicKey is the monitor's attestation public key.
	FieldSMPublicKey Field = 2
	// FieldCertChain is the marshalled manufacturer→device→monitor
	// certificate chain.
	FieldCertChain Field = 3
	// FieldEnclaveMeasurement is the calling enclave's own measurement
	// (valid only for enclave callers).
	FieldEnclaveMeasurement Field = 4
)

// Reserved protection-domain constants (paper §V-C: the SM and
// untrusted software are identified via reserved constants; enclave IDs
// are metadata physical addresses, which are page-aligned and therefore
// never collide with these).
const (
	DomainOS uint64 = 0
	DomainSM uint64 = 1
)

// MailboxSize is the fixed mailbox message size in bytes.
const MailboxSize = 128

// MailboxesPerEnclave is the number of mailboxes in each enclave's
// metadata structure.
const MailboxesPerEnclave = 4
