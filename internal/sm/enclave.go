package sm

import (
	"sort"
	"sync"

	"sanctorum/internal/hw/dram"
	"sanctorum/internal/hw/mem"
	"sanctorum/internal/hw/pt"
	"sanctorum/internal/sm/api"
)

// EnclaveState is the ABI-level enclave lifecycle state (paper Fig 3),
// aliased so monitor-internal code and callers share one definition.
type EnclaveState = api.EnclaveState

// Enclave states, re-exported for monitor-side code and tests.
const (
	EnclaveLoading     = api.EnclaveLoading
	EnclaveInitialized = api.EnclaveInitialized
	EnclaveDead        = api.EnclaveDead
)

// Enclave is the monitor's metadata for one enclave. The enclave ID is
// the physical address of its metadata page inside an SM-owned metadata
// region (§V-C), which guarantees IDs are unforgeable names for
// SM-private state.
type Enclave struct {
	mu sync.Mutex

	ID     uint64
	State  EnclaveState
	EvBase uint64
	EvMask uint64

	// Regions is the set of DRAM regions this enclave owns.
	Regions dram.Bitmap

	// RootPPN is the enclave's private page-table root, the first page
	// of its physical address space (§VI-A).
	RootPPN uint64

	// Page allocation for loading: the enclave's physical pages sorted
	// ascending; loadCursor is the next page to consume, which enforces
	// the paper's monotonically-increasing physical load order.
	pages       []uint64
	loadCursor  int
	pagesFrozen bool // set at first allocation; no further region grants
	dataStarted bool // set at first data page; no further table pages

	// ptPages maps (level, index-path prefix) to the PPN of an
	// allocated page-table page, so the monitor can validate top-down
	// construction without re-walking memory.
	ptPages map[ptKey]uint64

	// mapped tracks loaded VAs to enforce the injective, no-alias
	// virtual→physical mapping the measurement relies on.
	mapped map[uint64]bool

	meas        *Measurement
	Measurement [32]byte // valid once initialized

	Threads   map[uint64]*Thread
	running   int // threads currently on cores
	Mailboxes [api.MailboxesPerEnclave]Mailbox

	// Snapshot/clone state (DESIGN.md §8). snap is non-nil while a live
	// snapshot freezes this enclave's pages (the template side);
	// CloneOf names the snapshot this enclave was forked from (the
	// clone side, 0 for a directly built enclave). Borrowed is the set
	// of template regions a clone's aliased pages live in: part of the
	// enclave's access view but never of its owned-region accounting —
	// deleting the clone must not block the template's regions.
	snap     *Snapshot
	CloneOf  uint64
	Borrowed dram.Bitmap

	// cow maps each virtual page still aliasing a frozen snapshot page
	// copy-on-write (the PTE's W bit is cleared) to that frozen page; a
	// store fault on one of these is resolved by the monitor's
	// copy-then-retry protocol. Populated on the template when the
	// snapshot freezes its writable pages, and on every clone. roAliases
	// lists the frozen pages a clone aliases read-only (never copied,
	// released at clone deletion).
	cow       map[uint64]snapPage
	roAliases []uint64
}

type ptKey struct {
	level  int
	prefix uint64 // va >> (PageBits + 9*(level+1))
}

// createEnclave starts the lifecycle (Fig 3: create_enclave by the OS,
// CallCreateEnclave). eid must be a free page inside an SM metadata
// region; evBase/evMask define the enclave virtual range.
func (mon *Monitor) createEnclave(eid, evBase, evMask uint64) api.Error {
	if !validEvrange(evBase, evMask) {
		return api.ErrInvalidValue
	}
	mon.objMu.Lock()
	defer mon.objMu.Unlock()
	if _, exists := mon.enclaves[eid]; exists {
		return api.ErrInvalidValue
	}
	if st := mon.allocMetaPage(eid); st != api.OK {
		return st
	}
	e := &Enclave{
		ID:      eid,
		State:   EnclaveLoading,
		EvBase:  evBase,
		EvMask:  evMask,
		ptPages: make(map[ptKey]uint64),
		mapped:  make(map[uint64]bool),
		meas:    NewMeasurement(),
		Threads: make(map[uint64]*Thread),
	}
	e.meas.ExtendCreate(evBase, evMask)
	mon.enclaves[eid] = e
	// Mirror the lifecycle state into the metadata page so SM-owned
	// memory actually holds it (and tests can assert the OS cannot
	// read it).
	mon.machine.Mem.Store(eid, 8, uint64(e.State))
	return api.OK
}

// validEvrange requires a left-contiguous mask covering at least one
// page and a base aligned to the mask.
func validEvrange(base, mask uint64) bool {
	if mask == 0 {
		return false
	}
	low := ^mask
	if low&(low+1) != 0 { // low bits must be 2^k - 1
		return false
	}
	if low < mem.PageMask {
		return false
	}
	return base&low == 0
}

// InEvrange reports whether va falls within the enclave virtual range.
func (e *Enclave) InEvrange(va uint64) bool {
	return va&e.EvMask == e.EvBase
}

// accessRegions returns the DRAM regions this enclave's accesses may
// reach: the regions it owns plus any borrowed from a snapshot
// template (a clone reads its aliased pages there). Ownership
// accounting — deletion, blocking — uses Regions alone.
func (e *Enclave) accessRegions() dram.Bitmap { return e.Regions | e.Borrowed }

// lookupEnclave fetches and transaction-locks an enclave; contention on
// the enclave's lock fails the transaction with ErrRetry (§V-A). The
// dead re-check closes the lookup/free race: a hart that fetched the
// pointer before a concurrent delete removed it must not operate on
// the orphaned object — a ring could attach to a deleted enclave and
// survive into a recreated one under the same eid.
func (mon *Monitor) lookupEnclave(eid uint64) (*Enclave, api.Error) {
	mon.objMu.RLock()
	e := mon.enclaves[eid]
	mon.objMu.RUnlock()
	if e == nil {
		return nil, api.ErrInvalidValue
	}
	if !mon.tryLock(&e.mu, LockEnclave, eid) {
		return nil, api.ErrRetry
	}
	if e.State == EnclaveDead {
		e.mu.Unlock()
		return nil, api.ErrInvalidValue
	}
	return e, api.OK
}

// freezePagesLocked fixes the enclave's physical page list from its
// owned regions. After this point region grants to the loading enclave
// are refused, so the ascending-allocation invariant is meaningful.
func (mon *Monitor) freezePagesLocked(e *Enclave) {
	if e.pagesFrozen {
		return
	}
	e.pagesFrozen = true
	layout := mon.machine.DRAM
	regions := e.Regions.Regions()
	sort.Ints(regions)
	for _, r := range regions {
		base := layout.Base(r) >> mem.PageBits
		for p := uint64(0); p < layout.PagesPerRegion(); p++ {
			e.pages = append(e.pages, base+p)
		}
	}
}

// nextPageLocked consumes the next physical page in ascending order.
func (e *Enclave) nextPageLocked() (uint64, bool) {
	if e.loadCursor >= len(e.pages) {
		return 0, false
	}
	p := e.pages[e.loadCursor]
	e.loadCursor++
	return p, true
}

// allocatePageTableLocked allocates the enclave page-table page that
// holds the PTEs for va at the given level (2 = root, 0 = leaf table),
// in the enclave's own memory (Fig 3: allocate_page_table by the OS,
// CallAllocPageTable). Tables must be allocated top-down and before any
// data page, which places them at the base of the enclave's physical
// space as §VI-A requires. The caller holds e's transaction lock.
func (mon *Monitor) allocatePageTableLocked(e *Enclave, va uint64, level int) api.Error {
	if e.State != EnclaveLoading {
		return api.ErrInvalidState
	}
	if e.dataStarted {
		return api.ErrInvalidState
	}
	if level < 0 || level >= pt.Levels {
		return api.ErrInvalidValue
	}
	// Tables may also serve VAs outside evrange: Keystone enclaves map
	// an OS-provided shared window through their own tables (§VII-B).
	mon.freezePagesLocked(e)

	key := ptKey{level: level, prefix: vaPrefix(va, level)}
	if _, dup := e.ptPages[key]; dup {
		return api.ErrInvalidValue
	}

	// The parent table must already exist (top-down construction).
	var parentPPN uint64
	if level == pt.Levels-1 {
		if e.RootPPN != 0 {
			return api.ErrInvalidValue // root already allocated
		}
	} else {
		parent, ok := e.ptPages[ptKey{level: level + 1, prefix: vaPrefix(va, level+1)}]
		if !ok {
			return api.ErrInvalidState
		}
		parentPPN = parent
	}

	ppn, ok := e.nextPageLocked()
	if !ok {
		return api.ErrNoResources
	}
	mon.machine.Mem.ZeroPage(ppn << mem.PageBits)
	e.ptPages[key] = ppn
	if level == pt.Levels-1 {
		e.RootPPN = ppn
	} else {
		pteAddr := parentPPN<<mem.PageBits + pt.VPN(va, level+1)*pt.EntrySize
		mon.machine.Mem.Store(pteAddr, 8, pt.MakePTE(ppn, pt.V))
	}
	// Measure the table's normalized VA prefix, not raw caller bits.
	e.meas.ExtendPageTable(vaPrefix(va, level)<<(mem.PageBits+9*uint(level+1)), level)
	return api.OK
}

func vaPrefix(va uint64, level int) uint64 {
	return (va & pt.VAMask) >> (mem.PageBits + 9*uint(level+1))
}

// NormalizeTableVA returns the virtual-address prefix the monitor
// measures for a page-table allocation at the given level. Verifiers
// replaying a measurement transcript (internal/os, internal/attest)
// must use the same normalization.
func NormalizeTableVA(va uint64, level int) uint64 {
	return vaPrefix(va, level) << (mem.PageBits + 9*uint(level+1))
}

// loadPageLocked copies one page of initial contents from untrusted OS
// memory into the enclave's next physical page and maps it at va
// (Fig 3: load_page by the OS, CallLoadPage). perms is a combination of
// pt.R/pt.W/pt.X. The caller holds e's transaction lock.
func (mon *Monitor) loadPageLocked(e *Enclave, va, srcPA, perms uint64) api.Error {
	if e.State != EnclaveLoading {
		return api.ErrInvalidState
	}
	if va&mem.PageMask != 0 || !e.InEvrange(va) {
		return api.ErrInvalidValue
	}
	if perms&^uint64(pt.R|pt.W|pt.X) != 0 || perms == 0 {
		return api.ErrInvalidValue
	}
	if e.mapped[va] {
		return api.ErrInvalidValue // aliasing is forbidden (§VI-A)
	}
	// The source must be OS-owned untrusted memory.
	if !mon.osOwnsRange(srcPA, mem.PageSize) {
		return api.ErrInvalidValue
	}
	leaf, ok := e.ptPages[ptKey{level: 0, prefix: vaPrefix(va, 0)}]
	if !ok {
		return api.ErrInvalidState // leaf table missing
	}
	ppn, okPage := e.nextPageLocked()
	if !okPage {
		return api.ErrNoResources
	}

	var content [mem.PageSize]byte
	if err := mon.machine.Mem.ReadBytes(srcPA, content[:]); err != nil {
		return api.ErrInvalidValue
	}
	if err := mon.machine.Mem.WriteBytes(ppn<<mem.PageBits, content[:]); err != nil {
		return api.ErrInvalidValue
	}
	pteAddr := leaf<<mem.PageBits + pt.VPN(va, 0)*pt.EntrySize
	mon.machine.Mem.Store(pteAddr, 8, pt.MakePTE(ppn, perms|pt.V|pt.U))

	e.mapped[va] = true
	e.dataStarted = true
	e.meas.ExtendPage(va, perms, content[:])
	return api.OK
}

// mapSharedLocked maps an OS-owned physical page into the enclave's
// page tables at a virtual address outside evrange: the Keystone-style
// untrusted shared buffer (§VII-B, CallMapShared). The mapping's
// address is measured (it is configuration) but its contents are not
// (they are untrusted by definition and the OS can change them at any
// time). The caller holds e's transaction lock.
func (mon *Monitor) mapSharedLocked(e *Enclave, va, pa uint64) api.Error {
	if e.State != EnclaveLoading {
		return api.ErrInvalidState
	}
	if va&mem.PageMask != 0 || pa&mem.PageMask != 0 {
		return api.ErrInvalidValue
	}
	if e.InEvrange(va) {
		return api.ErrInvalidValue // the private range must hold only private pages
	}
	if e.mapped[va] {
		return api.ErrInvalidValue
	}
	if !mon.osOwnsRange(pa, mem.PageSize) {
		return api.ErrInvalidValue
	}
	leaf, ok := e.ptPages[ptKey{level: 0, prefix: vaPrefix(va, 0)}]
	if !ok {
		return api.ErrInvalidState
	}
	pteAddr := leaf<<mem.PageBits + pt.VPN(va, 0)*pt.EntrySize
	mon.machine.Mem.Store(pteAddr, 8, pt.MakePTE(pa>>mem.PageBits, pt.R|pt.W|pt.V|pt.U))
	e.mapped[va] = true
	e.meas.ExtendShared(va)
	return api.OK
}

// osOwnsRange reports whether [pa, pa+n) lies wholly in OS-owned
// regions, against the live atomic bitmap (no locks taken).
func (mon *Monitor) osOwnsRange(pa, n uint64) bool {
	return mon.osRegions().ContainsRange(mon.machine.DRAM, pa, n)
}

// initEnclaveLocked seals the enclave (Fig 3: init_enclave by the OS,
// CallInitEnclave): the measurement is finalized and threads become
// schedulable. The caller holds e's transaction lock.
func (mon *Monitor) initEnclaveLocked(e *Enclave) api.Error {
	if e.State != EnclaveLoading {
		return api.ErrInvalidState
	}
	if e.RootPPN == 0 {
		return api.ErrInvalidState // an enclave without page tables cannot run
	}
	e.Measurement = e.meas.Finalize()
	e.State = EnclaveInitialized
	mon.machine.Mem.Store(e.ID, 8, uint64(e.State))
	mon.machine.Mem.WriteBytes(e.ID+8, e.Measurement[:])
	return api.OK
}

// enclaveStatusLocked reports the enclave lifecycle state and, when
// measOutPA is non-zero, writes the 32-byte measurement to that
// OS-owned physical address (CallEnclaveStatus). The caller holds e's
// transaction lock.
func (mon *Monitor) enclaveStatusLocked(e *Enclave, measOutPA uint64) (uint64, api.Error) {
	if measOutPA != 0 {
		if !mon.osOwnsRange(measOutPA, uint64(len(e.Measurement))) {
			return 0, api.ErrInvalidValue
		}
		if err := mon.machine.Mem.WriteBytes(measOutPA, e.Measurement[:]); err != nil {
			return 0, api.ErrInvalidValue
		}
	}
	return uint64(e.State), api.OK
}

// deleteEnclave tears an enclave down (Fig 3: delete_enclave by the
// OS, CallDeleteEnclave): refused while any thread is scheduled; all
// owned regions become blocked and must be cleaned before
// re-allocation; threads revert to the available pool.
//
// Snapshot interactions: a template with a live snapshot cannot be
// deleted (its frozen pages back outstanding clones — the snapshot
// must be released first, which in turn requires zero clones), so page
// reclamation is deferred behind the refcounted alias graph rather
// than risked. Deleting a clone releases its alias references and
// decrements the snapshot's clone count; the clone's own regions (page
// tables, COW copies) block and clean normally.
//
// The transaction acquires every lock it will need — the enclave, the
// snapshot it clones (if any), all of its threads, and every region it
// owns or has pending — with TryLock before mutating anything, so
// under contention it fails with ErrRetry having changed no state
// (§V-A).
func (mon *Monitor) deleteEnclave(eid uint64) api.Error {
	e, st := mon.lookupEnclave(eid)
	if st != api.OK {
		return st
	}
	defer e.mu.Unlock()
	if e.running > 0 {
		return api.ErrInvalidState
	}
	if e.snap != nil {
		return api.ErrInvalidState // live snapshot: release it first
	}
	// A live mailbox-ring endpoint blocks deletion, like a live
	// snapshot: a freed eid could otherwise be recreated and inherit
	// the dead enclave's rings — including undelivered messages meant
	// for the previous tenant. The OS destroys the rings first.
	// Endpoint identities are immutable after ring creation, and
	// ringCreate registers only while holding the endpoint enclave's
	// lock (held here for the whole transaction), so the scan cannot
	// race a new attachment.
	mon.objMu.RLock()
	for _, r := range mon.rings {
		if r.Producer == eid || r.Consumer == eid {
			mon.objMu.RUnlock()
			return api.ErrInvalidState
		}
	}
	// Bulk-grant endpoints block deletion for the same reason (and so a
	// revoke can rely on its endpoints existing); bulkGrant registers
	// only while holding the endpoint enclave's lock, so the scan
	// cannot race a new attachment either.
	for _, g := range mon.grants {
		if g.Producer == eid || g.Consumer == eid {
			mon.objMu.RUnlock()
			return api.ErrInvalidState
		}
	}
	mon.objMu.RUnlock()
	var snap *Snapshot
	if e.CloneOf != 0 {
		mon.objMu.RLock()
		snap = mon.snapshots[e.CloneOf]
		mon.objMu.RUnlock()
		if snap != nil {
			if !mon.tryLock(&snap.mu, LockSnapshot, e.CloneOf) {
				return api.ErrRetry
			}
			defer snap.mu.Unlock()
		}
	}
	var lockedThreads []*Thread
	var lockedRegions []int
	unlockAll := func() {
		for _, th := range lockedThreads {
			th.mu.Unlock()
		}
		for _, r := range lockedRegions {
			mon.regions[r].mu.Unlock()
		}
	}
	for _, th := range e.Threads {
		if !mon.tryLock(&th.mu, LockThread, th.ID) {
			unlockAll()
			return api.ErrRetry
		}
		lockedThreads = append(lockedThreads, th)
	}
	// Threads offered to this enclave are not yet in e.Threads, but
	// their Owner field names it; leaving that dangling would let a new
	// enclave recreated under the freed eid accept_thread a thread the
	// dead tenant was offered. Scan the global table — membership is
	// checked under each thread's own lock (Owner is thread state), and
	// holding e.mu excludes new offers racing the scan.
	mon.objMu.RLock()
	others := make([]*Thread, 0, len(mon.threads))
	for tid, th := range mon.threads {
		if _, mine := e.Threads[tid]; !mine {
			others = append(others, th)
		}
	}
	mon.objMu.RUnlock()
	var offered []*Thread
	for _, th := range others {
		if !mon.tryLock(&th.mu, LockThread, th.ID) {
			unlockAll()
			return api.ErrRetry
		}
		if th.State == ThreadOffered && th.Owner == eid {
			offered = append(offered, th)
			lockedThreads = append(lockedThreads, th)
		} else {
			th.mu.Unlock()
		}
	}
	// Every region lock, owned or pending, before the first mutation. A
	// contended region — even one that turns out not to involve this
	// enclave — fails the delete; conservative, and the caller retries.
	for r := range mon.regions {
		rm := &mon.regions[r]
		if !mon.tryLock(&rm.mu, LockRegion, uint64(r)) {
			unlockAll()
			return api.ErrRetry
		}
		if e.Regions.Has(r) || (rm.state == RegionPending && rm.owner == eid) {
			lockedRegions = append(lockedRegions, r)
		} else {
			rm.mu.Unlock()
		}
	}
	// All locks held; mutate — only regions whose locks we kept (the
	// others may be mid-transaction on another hart, and holding e.mu
	// guarantees no new grant can attach this enclave to them). Owned
	// regions hold enclave secrets until cleaned; pending grants revert
	// to the OS.
	for _, r := range lockedRegions {
		rm := &mon.regions[r]
		if e.Regions.Has(r) {
			// Ownership reverts to the OS pool at block time (the owner
			// field has no meaning once the bitmap link is severed, and a
			// blocked region must never name a dead enclave); the secrets
			// stay sealed until clean_region scrubs the region.
			rm.state, rm.owner = RegionBlocked, api.DomainOS
		} else if rm.state == RegionPending && rm.owner == eid {
			rm.state, rm.owner = RegionOwned, api.DomainOS
			mon.setOSOwned(r, true)
		}
	}

	// A clone's alias references die with it: one per page still
	// aliased copy-on-write, one per read-only alias, and the
	// snapshot's clone count. The frozen pages themselves live in the
	// template's regions and are untouched.
	if snap != nil {
		for _, pg := range e.cow {
			mon.machine.Mem.ReleaseRef(pg.ppn << mem.PageBits)
		}
		for _, ppn := range e.roAliases {
			mon.machine.Mem.ReleaseRef(ppn << mem.PageBits)
		}
		e.cow, e.roAliases = nil, nil
		snap.clones--
	}

	mon.objMu.Lock()
	for tid, th := range e.Threads {
		th.State = ThreadAvailable
		th.Owner = 0
		th.clearContext()
		delete(e.Threads, tid)
	}
	for _, th := range offered {
		th.State = ThreadAvailable
		th.Owner = 0
		th.clearContext()
	}
	delete(mon.enclaves, eid)
	mon.freeMetaPage(eid)
	mon.objMu.Unlock()
	unlockAll()
	mon.refreshViews()

	e.State = EnclaveDead
	return api.OK
}
