package sm

// The deprecated compat shims (compat.go) are exercised here and only
// here: every other test and tool speaks the unified ABI (Dispatch,
// the smcall client, or the fixture's ABI-path helpers). This test
// drives one full enclave lifecycle through the shims and checks each
// is still a faithful one-call wrapper over the dispatch surface, so
// the shims can be deleted the moment external users are gone without
// silently having rotted first.

import (
	"testing"

	"sanctorum/internal/hw/pt"
	"sanctorum/internal/sm/api"
)

func TestCompatShimsStillFaithful(t *testing.T) {
	f := newFixture(t)

	if st, owner, errc := f.mon.RegionInfo(0); errc != api.OK || st != RegionOwned || owner != api.DomainOS {
		t.Fatalf("RegionInfo shim: %v/%v/%#x", errc, st, owner)
	}
	if st := f.mon.BlockRegion(20); st != api.OK {
		t.Fatalf("BlockRegion shim: %v", st)
	}
	if st := f.mon.CleanRegion(20); st != api.OK {
		t.Fatalf("CleanRegion shim: %v", st)
	}
	if st := f.mon.GrantRegion(20, api.DomainOS); st != api.OK {
		t.Fatalf("GrantRegion shim: %v", st)
	}

	eid := f.metaPage(0)
	if st := f.mon.CreateEnclave(eid, testEvBase, testEvMask); st != api.OK {
		t.Fatalf("CreateEnclave shim: %v", st)
	}
	if st := f.mon.GrantRegion(10, eid); st != api.OK {
		t.Fatalf("GrantRegion shim (to enclave): %v", st)
	}
	for _, alloc := range [][2]uint64{{0, 2}, {testEvBase, 1}, {testEvBase, 0}, {0x50000000, 1}, {0x50000000, 0}} {
		if st := f.mon.AllocatePageTable(eid, alloc[0], int(alloc[1])); st != api.OK {
			t.Fatalf("AllocatePageTable shim: %v", st)
		}
	}
	if st := f.mon.LoadPage(eid, testEvBase, 0x1000, pt.R|pt.X); st != api.OK {
		t.Fatalf("LoadPage shim: %v", st)
	}
	if st := f.mon.MapShared(eid, 0x50000000, 0x2000); st != api.OK {
		t.Fatalf("MapShared shim: %v", st)
	}
	tid := f.metaPage(1)
	if st := f.mon.LoadThread(eid, tid, testEvBase, testEvBase+0x800); st != api.OK {
		t.Fatalf("LoadThread shim: %v", st)
	}
	if st := f.mon.InitEnclave(eid); st != api.OK {
		t.Fatalf("InitEnclave shim: %v", st)
	}

	tid2 := f.metaPage(2)
	if st := f.mon.CreateThread(tid2); st != api.OK {
		t.Fatalf("CreateThread shim: %v", st)
	}
	if st := f.mon.AssignThread(eid, tid2); st != api.OK {
		t.Fatalf("AssignThread shim: %v", st)
	}
	if st := f.mon.UnassignThread(tid2); st != api.OK {
		t.Fatalf("UnassignThread shim: %v", st)
	}
	if st := f.mon.DeleteThread(tid2); st != api.OK {
		t.Fatalf("DeleteThread shim: %v", st)
	}

	if st := f.mon.EnterEnclave(0, eid, tid); st != api.OK {
		t.Fatalf("EnterEnclave shim: %v", st)
	}
	f.mon.stopThread(0, 0, false)
	if st := f.mon.DeleteEnclave(eid); st != api.OK {
		t.Fatalf("DeleteEnclave shim: %v", st)
	}
	if st := f.mon.DeleteThread(tid); st != api.OK {
		t.Fatalf("DeleteThread shim (measured thread): %v", st)
	}
}
