package sm

// Mailbox rings (DESIGN.md §9): the streaming counterpart of the
// single-slot mailboxes of §VI-B. A ring is a fixed-capacity FIFO of
// fixed-size messages living in monitor-tracked memory, named by an SM
// metadata page (unforgeable, like every other monitor object), with
// one producer and one consumer protection domain fixed at creation.
// Send and recv move up to api.RingMaxBatch messages per monitor call,
// so the per-call overhead (trap or Dispatch, authorization, ring
// transaction) amortizes across a batch; every message is stamped with
// the monitor-attested sender identity and measurement, preserving the
// mailbox system's attestation-grade provenance at streaming rates.
//
// The park/wake protocol is what removes OS polling from the serving
// path: an enclave consumer that finds its ring empty parks
// (CallRingPark) — the monitor registers it as the ring's waiter and
// performs an AEX-style exit with api.ParkedExitValue, saving a
// context whose resume re-executes the park ECALL — and the next send
// wakes it by posting a request through the PR 2 inter-processor
// mailboxes to the OS's registered wake sink. The sink is the
// simulation's analogue of the inter-processor interrupt a hardware
// monitor would raise at the kernel: a notification only, carrying no
// authority (the OS still schedules through enter_enclave, and the
// monitor still verifies).

import (
	"encoding/binary"
	"sync"

	"sanctorum/internal/hw/machine"
	"sanctorum/internal/sm/api"
)

// Ring is the monitor's metadata for one mailbox ring. The mutex is
// the ring's §V-A transaction lock, taken with TryLock; contended
// calls fail with ErrRetry having changed nothing.
type Ring struct {
	mu sync.Mutex

	ID       uint64
	Producer uint64 // api.DomainOS or an eid
	Consumer uint64
	seq      uint64 // creation order, for FieldEnclaveRings
	dead     bool   // set by destroy under mu; a racing lookup re-checks

	slots []ringMsg
	head  int // oldest undelivered message
	count int

	// Parked consumer thread (0 = none). Registered by ring_park on an
	// empty ring, popped by the next send, an explicit wake, or
	// destroy.
	waiterEID uint64
	waiterTID uint64

	// parkStamp is the telemetry cycle stamp taken when the waiter
	// parked (guarded by mu); the wake path reads it to record the
	// park→wake wait. Zero when telemetry is disabled.
	parkStamp uint64

	// scratch is the ring's recv staging buffer, reused across calls
	// (guarded by mu like the slots) so batched recv allocates nothing
	// per message.
	scratch []byte
}

// ringMsg is one queued message with its monitor-attested stamp. grant
// is zero for a plain message and the grant id for a scatter-gather
// descriptor message (bulk.go) — the two are never mixed on delivery:
// plain recv refuses a descriptor head, bulk recv drains only its own
// grant's run.
type ringMsg struct {
	sender  uint64
	meas    [32]byte
	grant   uint64
	payload [api.RingMsgSize]byte
}

// headRunLocked counts the consecutive messages at the ring head
// stamped with the given grant id (zero = plain), up to max. Caller
// holds r.mu.
func (r *Ring) headRunLocked(grant uint64, max int) int {
	n := max
	if n > r.count {
		n = r.count
	}
	for i := 0; i < n; i++ {
		if r.slots[(r.head+i)%len(r.slots)].grant != grant {
			return i
		}
	}
	return n
}

// takeWaiterLocked pops the parked waiter, if any. Caller holds r.mu.
func (r *Ring) takeWaiterLocked() (eid, tid uint64) {
	eid, tid = r.waiterEID, r.waiterTID
	r.waiterEID, r.waiterTID = 0, 0
	return eid, tid
}

// lookupRing fetches and transaction-locks a ring; contention fails
// the transaction with ErrRetry (§V-A). The dead re-check closes the
// lookup/destroy race: a hart that fetched the pointer before a
// concurrent destroy removed it must not operate on the orphaned
// object (messages would vanish, and a recreated ring under the same
// id would split into two objects).
func (mon *Monitor) lookupRing(id uint64) (*Ring, api.Error) {
	mon.objMu.RLock()
	r := mon.rings[id]
	mon.objMu.RUnlock()
	if r == nil {
		return nil, api.ErrInvalidValue
	}
	if !mon.tryLock(&r.mu, LockRing, id) {
		return nil, api.ErrRetry
	}
	if r.dead {
		r.mu.Unlock()
		return nil, api.ErrInvalidValue
	}
	return r, api.OK
}

// SetWakeSink registers the untrusted OS's wake notification handler.
// When a send (or explicit wake, or destroy) finds a parked consumer,
// the monitor posts a request through a core's IPI mailbox whose body
// invokes fn(ringID, eid, tid) — the simulation analogue of the
// inter-processor interrupt a hardware monitor raises to tell the
// kernel a thread became runnable. fn runs on whatever goroutine
// drains the mailbox (the posting one if the core is idle, the core's
// own at its next instruction boundary if it is running), so it must
// be quick and goroutine-safe, and must not call back into the
// monitor.
func (mon *Monitor) SetWakeSink(fn func(ringID, eid, tid uint64)) {
	mon.wakeSink.Store(fn)
}

// postWake routes one wake to the OS sink through core 0's IPI
// mailbox, waiting for the acknowledgment (RunOn) so a wake is never
// stranded in the mailbox of a core that just went idle — the wake is
// the only signal the OS has that a parked thread became runnable.
// from is the posting hart (machine.NoHart for host-side calls): a
// sender trapping on core 0 itself delivers inline, which is exactly
// its own instruction boundary. The wake stays advisory: a stale one
// costs the OS a failed enter_enclave, never monitor state.
func (mon *Monitor) postWake(from int, ringID, eid, tid uint64) {
	v := mon.wakeSink.Load()
	if v == nil {
		return
	}
	sink := v.(func(uint64, uint64, uint64))
	mon.machine.RunOn(0, from, func(*machine.Core) { sink(ringID, eid, tid) })
}

// ringCreate implements CallRingCreate (OS-domain): register a ring
// between a fixed producer and consumer. Endpoints are DomainOS or
// existing enclaves; the reserved SM identity is refused. The ring id
// is claimed exactly like enclave, thread and snapshot ids — a free
// page inside an SM metadata region. Each enclave endpoint is held
// under its transaction lock while the ring registers, which — paired
// with deleteEnclave's endpoint guard — excludes the race where a
// ring attaches to an enclave mid-deletion and survives it: either
// the create sees the enclave and the delete then refuses, or the
// delete wins and the create fails (retry or unknown id).
func (mon *Monitor) ringCreate(ringID, producer, consumer, capacity uint64) api.Error {
	if capacity == 0 || capacity > api.RingMaxCapacity {
		return api.ErrInvalidValue
	}
	endpoints := []uint64{producer}
	if consumer != producer {
		endpoints = append(endpoints, consumer)
	}
	for _, who := range endpoints {
		if who == api.DomainOS {
			continue
		}
		e, st := mon.lookupEnclave(who)
		if st != api.OK {
			return st
		}
		defer e.mu.Unlock()
	}
	mon.objMu.Lock()
	defer mon.objMu.Unlock()
	if st := mon.allocMetaPage(ringID); st != api.OK {
		return st
	}
	mon.ringSeq++
	mon.rings[ringID] = &Ring{
		ID:       ringID,
		Producer: producer,
		Consumer: consumer,
		seq:      mon.ringSeq,
		slots:    make([]ringMsg, capacity),
	}
	return api.OK
}

// ringDestroy implements CallRingDestroy (OS-domain): unregister the
// ring, free its id, and wake any parked consumer — whose re-executed
// park then fails with ErrInvalidValue, the consumer's shutdown
// signal. Undelivered messages are dropped (the ring is monitor
// memory; nothing leaks to any untrusted domain).
func (mon *Monitor) ringDestroy(ringID uint64) api.Error {
	r, st := mon.lookupRing(ringID)
	if st != api.OK {
		return st
	}
	weid, wtid := r.takeWaiterLocked()
	r.dead = true
	queued := r.count
	// Undelivered scatter-gather descriptors die with the ring; their
	// in-flight pins on the grants must die too, or the grants could
	// never be revoked. Counted under r.mu, released under objMu so a
	// concurrent bulk_revoke sees a consistent grant table.
	sgQueued := make(map[uint64]int64)
	for i := 0; i < r.count; i++ {
		if gid := r.slots[(r.head+i)%len(r.slots)].grant; gid != 0 {
			sgQueued[gid]++
		}
	}
	mon.objMu.Lock()
	delete(mon.rings, ringID)
	mon.freeMetaPage(ringID)
	for gid, c := range sgQueued {
		if g := mon.grants[gid]; g != nil {
			g.inflight.Add(-c)
		}
	}
	mon.objMu.Unlock()
	r.mu.Unlock()
	if t := mon.tele; t != nil && queued > 0 {
		// Undelivered messages die with the ring; keep the fleet-wide
		// depth gauge honest.
		t.ringDepth.Add(-int64(queued))
	}
	if wtid != 0 {
		mon.postWake(machine.NoHart, ringID, weid, wtid)
	}
	return api.OK
}

// ringEnqueue appends up to count messages to the ring under its
// transaction lock, waking a parked consumer. fill(i, dst) copies
// message i's payload into a free slot — straight from the staged
// source, so batched sends allocate nothing per message; it runs with
// the lock held but only touches slots not yet published (a failure
// aborts before the count advances). sender and meas are the
// monitor-attested stamp; grant is zero for plain messages and the
// grant id for scatter-gather descriptors (bulk.go). Returns the count
// actually enqueued.
func (mon *Monitor) ringEnqueue(from int, ringID, sender uint64, meas [32]byte, grant uint64, count int,
	fill func(i int, dst []byte) api.Error) (uint64, api.Error) {
	r, st := mon.lookupRing(ringID)
	if st != api.OK {
		return 0, st
	}
	if r.Producer != sender {
		r.mu.Unlock()
		return 0, api.ErrUnauthorized
	}
	space := len(r.slots) - r.count
	if space == 0 {
		r.mu.Unlock()
		return 0, api.ErrInvalidState
	}
	n := count
	if n > space {
		n = space
	}
	for i := 0; i < n; i++ {
		slot := &r.slots[(r.head+r.count+i)%len(r.slots)]
		if st := fill(i, slot.payload[:]); st != api.OK {
			r.mu.Unlock()
			return 0, st
		}
		slot.sender = sender
		slot.meas = meas
		slot.grant = grant
	}
	r.count += n
	weid, wtid := r.takeWaiterLocked()
	stamp := r.parkStamp
	r.mu.Unlock()
	if t := mon.tele; t != nil {
		t.ringSendBatch.ObserveOn(from, uint64(n))
		t.ringDepth.Add(int64(n))
		if wtid != 0 {
			t.ringWakes.Inc(from)
			t.ringParkWait.ObserveOn(from, t.clock()-stamp)
		}
	}
	if wtid != 0 {
		mon.postWake(from, ringID, weid, wtid)
	}
	return uint64(n), api.OK
}

// ringRecords serializes the ring's oldest n messages as recv records
// (measurement ‖ sender id ‖ payload) into the ring's scratch buffer,
// valid until the lock is released. Caller holds r.mu.
func (r *Ring) ringRecords(n int) []byte {
	if cap(r.scratch) < api.RingMaxBatch*api.RingRecordSize {
		r.scratch = make([]byte, api.RingMaxBatch*api.RingRecordSize)
	}
	out := r.scratch[:n*api.RingRecordSize]
	for i := 0; i < n; i++ {
		slot := &r.slots[(r.head+i)%len(r.slots)]
		rec := out[i*api.RingRecordSize:]
		copy(rec, slot.meas[:])
		binary.LittleEndian.PutUint64(rec[32:], slot.sender)
		copy(rec[api.RingStampSize:api.RingRecordSize], slot.payload[:])
	}
	return out
}

// popLocked drops the oldest n messages. Caller holds r.mu.
func (r *Ring) popLocked(n int) {
	r.head = (r.head + n) % len(r.slots)
	r.count -= n
}

// ringBytesForEnclave serves FieldEnclaveRings: the rings the caller
// is an endpoint of, in creation order, as ring id[8] ‖ role[8]
// entries (role 0 = consumer, 1 = producer).
func (mon *Monitor) ringBytesForEnclave(eid uint64) []byte {
	type entry struct {
		seq  uint64
		id   uint64
		role uint64
	}
	var entries []entry
	mon.objMu.RLock()
	for _, r := range mon.rings {
		if r.Consumer == eid {
			entries = append(entries, entry{seq: r.seq, id: r.ID, role: 0})
		}
		if r.Producer == eid {
			entries = append(entries, entry{seq: r.seq, id: r.ID, role: 1})
		}
	}
	mon.objMu.RUnlock()
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0 && entries[j-1].seq > entries[j].seq; j-- {
			entries[j-1], entries[j] = entries[j], entries[j-1]
		}
	}
	out := make([]byte, 0, len(entries)*16)
	var word [8]byte
	for _, en := range entries {
		binary.LittleEndian.PutUint64(word[:], en.id)
		out = append(out, word[:]...)
		binary.LittleEndian.PutUint64(word[:], en.role)
		out = append(out, word[:]...)
	}
	return out
}

// --- dispatch handlers ---

// batchLen validates a send/recv count argument and returns it.
func batchLen(count uint64) (int, bool) {
	if count == 0 || count > api.RingMaxBatch {
		return 0, false
	}
	return int(count), true
}

// hRingSend is the dual-domain send handler. Enclave payloads are
// read through the enclave's tables before the ring transaction (the
// read has no side effects, so a contended ring still means no state
// changed); OS payloads are range-checked up front and then copied
// from physical memory straight into the slots — no intermediate
// buffer on the hot batched path.
func hRingSend(mon *Monitor, req api.Request, ctx *callContext) api.Response {
	n, okCount := batchLen(req.Args[2])
	if !okCount {
		return fail(api.ErrInvalidValue)
	}
	var sender uint64
	var meas [32]byte
	var fill func(i int, dst []byte) api.Error
	from := machine.NoHart
	if ctx != nil {
		from = ctx.core.ID
		sender, meas = ctx.enclave.ID, ctx.enclave.Measurement
		msgs, okRead := mon.readEnclave(ctx.enclave, req.Args[1], n*api.RingMsgSize)
		if !okRead {
			return fail(api.ErrInvalidValue)
		}
		fill = func(i int, dst []byte) api.Error {
			copy(dst, msgs[i*api.RingMsgSize:])
			return api.OK
		}
	} else {
		sender = api.DomainOS
		srcPA := req.Args[1]
		if !mon.osOwnsRange(srcPA, uint64(n)*api.RingMsgSize) {
			return fail(api.ErrInvalidValue)
		}
		fill = func(i int, dst []byte) api.Error {
			if err := mon.machine.Mem.ReadBytes(srcPA+uint64(i)*api.RingMsgSize, dst); err != nil {
				return api.ErrInvalidValue
			}
			return api.OK
		}
	}
	sent, st := mon.ringEnqueue(from, req.Args[0], sender, meas, 0, n, fill)
	if st != api.OK {
		return fail(st)
	}
	return ok(sent)
}

// hRingRecv is the dual-domain recv handler. The records are written
// while the ring transaction holds the lock and popped only after the
// copy-out succeeded, so a recv into an invalid buffer consumes
// nothing.
func hRingRecv(mon *Monitor, req api.Request, ctx *callContext) api.Response {
	max, okCount := batchLen(req.Args[2])
	if !okCount {
		return fail(api.ErrInvalidValue)
	}
	var caller uint64 = api.DomainOS
	if ctx != nil {
		caller = ctx.enclave.ID
	}
	r, st := mon.lookupRing(req.Args[0])
	if st != api.OK {
		return fail(st)
	}
	defer r.mu.Unlock()
	if r.Consumer != caller {
		return fail(api.ErrUnauthorized)
	}
	if r.count == 0 {
		return fail(api.ErrInvalidState)
	}
	// A scatter-gather descriptor head (bulk.go) must go through
	// bulk_recv, which knows the grant and releases the in-flight pins;
	// a plain recv draining it would strand the grant un-revocable.
	n := r.headRunLocked(0, max)
	if n == 0 {
		return fail(api.ErrInvalidValue)
	}
	out := r.ringRecords(n)
	if ctx != nil {
		// Writing into a clone may resolve a COW alias; the enclave
		// transaction lock it takes is never held while anyone waits on
		// a ring lock, so the order ring → enclave cannot deadlock.
		if !mon.writeEnclave(ctx.enclave, req.Args[1], out) {
			return fail(api.ErrInvalidValue)
		}
	} else {
		if !mon.osOwnsRange(req.Args[1], uint64(len(out))) {
			return fail(api.ErrInvalidValue)
		}
		if err := mon.machine.Mem.WriteBytes(req.Args[1], out); err != nil {
			return fail(api.ErrInvalidValue)
		}
	}
	r.popLocked(n)
	if t := mon.tele; t != nil {
		shard := 0
		if ctx != nil {
			shard = ctx.core.ID
		}
		t.ringRecvBatch.ObserveOn(shard, uint64(n))
		t.ringDepth.Add(-int64(n))
	}
	return ok(uint64(n))
}

// hRingPark implements thread_park (enclave trap context only). A
// non-empty ring returns immediately; an empty one registers the
// thread as the ring's waiter and performs an AEX-style exit whose
// saved context re-executes this ECALL on resume — so a woken thread
// transparently re-checks the ring, and a spurious wake simply parks
// again. The ring lock is released before stopThread's blocking
// thread/enclave acquisitions, keeping ring locks leaves of the lock
// order.
func hRingPark(mon *Monitor, req api.Request, ctx *callContext) api.Response {
	r, st := mon.lookupRing(req.Args[0])
	if st != api.OK {
		return fail(st)
	}
	if r.Consumer != ctx.enclave.ID {
		r.mu.Unlock()
		return fail(api.ErrUnauthorized)
	}
	if r.count > 0 {
		n := uint64(r.count)
		r.mu.Unlock()
		return ok(n)
	}
	if r.waiterTID != 0 && r.waiterTID != ctx.thread.ID {
		r.mu.Unlock()
		return fail(api.ErrInvalidState)
	}
	r.waiterEID, r.waiterTID = ctx.enclave.ID, ctx.thread.ID
	if t := mon.tele; t != nil {
		r.parkStamp = t.clock()
		t.ringParks.Inc(ctx.core.ID)
	}
	r.mu.Unlock()
	// AEX-save with the park marker: the PC is not advanced (the trap
	// path advances it only for non-transfer calls), so resume_aex
	// re-executes the park.
	mon.stopThread(uint64(ctx.core.ID), api.ParkedExitValue, true)
	ctx.transfer(machine.DispReturnToOS)
	return ok()
}

// hRingWake is the dual-domain explicit wake, authorized against the
// producer (wake-spoofing by any other domain is refused).
func hRingWake(mon *Monitor, req api.Request, ctx *callContext) api.Response {
	caller, from := api.DomainOS, machine.NoHart
	if ctx != nil {
		caller, from = ctx.enclave.ID, ctx.core.ID
	}
	r, st := mon.lookupRing(req.Args[0])
	if st != api.OK {
		return fail(st)
	}
	if r.Producer != caller {
		r.mu.Unlock()
		return fail(api.ErrUnauthorized)
	}
	weid, wtid := r.takeWaiterLocked()
	stamp := r.parkStamp
	r.mu.Unlock()
	if wtid == 0 {
		return ok(0)
	}
	if t := mon.tele; t != nil {
		t.ringWakes.Inc(from)
		t.ringParkWait.ObserveOn(from, t.clock()-stamp)
	}
	mon.postWake(from, req.Args[0], weid, wtid)
	return ok(1)
}
