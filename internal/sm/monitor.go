// Package sm implements Sanctorum, the security monitor of the paper:
// a small, trusted, machine-mode component that verifies the untrusted
// OS's resource-management decisions against a security state machine
// and performs the privileged state changes itself. The monitor is not
// a kernel — it makes no allocation decisions — it only refuses unsafe
// ones (paper §V).
//
// The monitor registers itself as the simulated machine's firmware, so
// every trap and interrupt on any core reaches it before any untrusted
// software, exactly as in the paper's Fig 1. All untrusted software
// speaks one call ABI (internal/sm/api): enclaves reach it through the
// ECALL instruction and the trap path (trap.go); the untrusted OS —
// host Go code standing in for S-mode — submits the same api.Request
// values through Monitor.Dispatch or DispatchBatch, normally via the
// smcall client. Both entries land in the single routing table in
// dispatch.go, where the per-caller-domain authorization lives; the
// legacy exported methods (compat.go) are thin deprecated shims over
// Dispatch kept to stage the migration.
//
// # Concurrency model (paper §V-A)
//
// The monitor is built for many harts calling it at once. There is no
// global monitor lock; instead:
//
//   - Every object — enclave, thread, DRAM region, core slot — carries
//     its own transaction lock, acquired with TryLock. A call that
//     cannot take a lock fails with api.ErrRetry ("the SM fails
//     transactions in case of a concurrent operation") without having
//     changed any state; callers retry.
//   - The object maps and the metadata-page set sit behind objMu, a
//     reader/writer lock held only for map operations, never while
//     waiting for another hart.
//   - The OS-owned region set is a single atomic bitmap (osBitmap),
//     updated by whichever transaction moves a region and read without
//     locks by the DMA policy and ownership checks.
//   - Cross-core state (TLB shootdowns, per-core view refreshes) moves
//     through the machine's inter-processor mailboxes: the monitor
//     posts IPIs that target harts acknowledge at instruction
//     boundaries; requests to idle harts execute synchronously on the
//     poster. Blocking lock acquisitions (stopThread's AEX save) never
//     nest and never wait on IPI acknowledgments, which keeps the
//     monitor deadlock-free; see DESIGN.md §5 for the full discipline.
package sm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sanctorum/internal/hw/dram"
	"sanctorum/internal/hw/machine"
	"sanctorum/internal/hw/mem"
	"sanctorum/internal/sm/api"
	"sanctorum/internal/sm/boot"
)

// Platform abstracts the isolation backend (§VII): the monitor's logic
// is identical for Sanctum and Keystone; only how a protection domain's
// memory is made exclusive differs.
type Platform interface {
	// Kind identifies the backend.
	Kind() machine.IsolationKind
	// ApplyOSView programs a core for untrusted OS/process execution:
	// no enclave state, OS-owned regions accessible. Called with the
	// target core quiescent (boot, or the core's own trap context).
	ApplyOSView(c *machine.Core, osRegions dram.Bitmap) error
	// ApplyEnclaveView programs a core to run an enclave thread. Called
	// with the target core quiescent.
	ApplyEnclaveView(c *machine.Core, view EnclaveView) error
	// RefreshOSRegions updates the OS-accessible region set on a core
	// without otherwise disturbing it (used on region re-allocation).
	// The monitor delivers it via the core's IPI mailbox.
	RefreshOSRegions(c *machine.Core, osRegions dram.Bitmap) error
	// CleanRegion scrubs a DRAM region: zeroes its memory and flushes
	// its cache footprint everywhere. Per-core cache flushes are
	// delivered as IPIs. Called from OS (no-hart) context only.
	CleanRegion(m *machine.Machine, r int) error
	// ShootdownRegion invalidates all TLB translations into region r on
	// every core (the paper's page-walk invariant maintenance), as IPIs
	// the cores acknowledge at instruction boundaries. Called from OS
	// (no-hart) context only; returns once every core has acknowledged.
	ShootdownRegion(m *machine.Machine, r int)
}

// EnclaveView is the per-core state describing a running enclave.
type EnclaveView struct {
	RootPPN   uint64      // enclave private page-table root
	EvBase    uint64      // enclave virtual range base
	EvMask    uint64      // enclave virtual range mask
	Regions   dram.Bitmap // enclave-owned DRAM regions
	OSRegions dram.Bitmap // regions the OS currently owns (shared access)
}

// Config configures the monitor at boot.
type Config struct {
	Machine  *machine.Machine
	Platform Platform
	Identity *boot.Identity
	// SMRegions are the DRAM regions holding the monitor image and its
	// static state; they belong to the SM domain from boot onward.
	SMRegions []int
	// SigningEnclave is the expected measurement of the signing enclave
	// (§VI-C), hard-coded into the monitor at build/boot time.
	SigningEnclave [32]byte
}

// Monitor is the security monitor instance for one machine.
type Monitor struct {
	machine *machine.Machine
	plat    Platform
	id      *boot.Identity

	signingMeasurement [32]byte

	// tele holds the cached telemetry instruments (telemetry.go); nil
	// until the untrusted facade calls SetTelemetry, so an unwired
	// monitor pays one nil check per dispatch.
	tele *monTelemetry

	// objMu guards the object maps and the metadata bookkeeping; it is
	// held only across map reads/writes. The objects themselves carry
	// their own transaction locks (per-enclave, per-thread, per-region,
	// per-core-slot), taken with TryLock so transactions fail with
	// ErrRetry instead of blocking (§V-A).
	objMu     sync.RWMutex
	metaRgn   map[int]bool    // SM regions usable for metadata
	metaPages map[uint64]bool // allocated metadata pages, by phys addr
	enclaves  map[uint64]*Enclave
	threads   map[uint64]*Thread
	snapshots map[uint64]*Snapshot
	rings     map[uint64]*Ring
	ringSeq   uint64 // ring creation order (under objMu)
	grants    map[uint64]*Grant
	grantSeq  uint64 // grant creation order (under objMu)

	regions []regionMeta
	cores   []coreSlot

	// wakeSink is the OS's park/wake notification handler (SetWakeSink);
	// wakes travel to it through the IPI mailboxes (ring.go).
	wakeSink atomic.Value

	// osBitmap is the live set of OS-owned regions (state==Owned &&
	// owner==DomainOS), maintained atomically by region transactions so
	// the DMA filter and ownership checks read it without locking.
	osBitmap atomic.Uint64

	// lockHook is the optional transaction-lock fault hook (fault.go),
	// consulted by tryLock before every TryLock acquisition.
	lockHook lockHookPtr
}

// lockFault consults the fault hook (fault.go) for one acquisition;
// true means the acquisition must fail spuriously.
func (mon *Monitor) lockFault(kind LockKind, id uint64) bool {
	h := mon.lockHook.Load()
	return h != nil && (*h)(LockPoint{Kind: kind, ID: id})
}

// tryLock is the transaction layer's single TryLock choke point: every
// §V-A transaction-lock acquisition routes through it so the fault
// hook can observe or refuse any acquisition. The fast path with no
// hook installed is one atomic nil check.
func (mon *Monitor) tryLock(mu *sync.Mutex, kind LockKind, id uint64) bool {
	if mon.lockFault(kind, id) {
		return false
	}
	return mu.TryLock()
}

// coreSlot tracks which protection domain a core currently executes.
// Its lock is the per-core transaction lock of §V-A: enter/exit
// transactions and trap dispatch take it briefly; it is never held
// while waiting on another hart.
type coreSlot struct {
	mu    sync.Mutex
	owner uint64 // api.DomainOS or an eid
	tid   uint64 // running thread when owner is an enclave
}

// New boots the monitor on a machine: claims the SM's own regions,
// assigns every other region to the untrusted OS, installs the DMA
// policy and the OS view on every core, and registers the monitor as
// the machine's firmware.
func New(cfg Config) (*Monitor, error) {
	if cfg.Machine == nil || cfg.Platform == nil || cfg.Identity == nil {
		return nil, fmt.Errorf("sm: incomplete configuration")
	}
	if cfg.Platform.Kind() != cfg.Machine.Kind {
		return nil, fmt.Errorf("sm: platform kind %v does not match machine %v",
			cfg.Platform.Kind(), cfg.Machine.Kind)
	}
	mon := &Monitor{
		machine:            cfg.Machine,
		plat:               cfg.Platform,
		id:                 cfg.Identity,
		signingMeasurement: cfg.SigningEnclave,
		regions:            make([]regionMeta, cfg.Machine.DRAM.RegionCount),
		metaRgn:            make(map[int]bool),
		metaPages:          make(map[uint64]bool),
		enclaves:           make(map[uint64]*Enclave),
		threads:            make(map[uint64]*Thread),
		snapshots:          make(map[uint64]*Snapshot),
		rings:              make(map[uint64]*Ring),
		grants:             make(map[uint64]*Grant),
		cores:              make([]coreSlot, len(cfg.Machine.Cores)),
	}
	for i := range mon.regions {
		mon.regions[i] = regionMeta{state: RegionOwned, owner: api.DomainOS}
	}
	for _, r := range cfg.SMRegions {
		if r < 0 || r >= len(mon.regions) {
			return nil, fmt.Errorf("sm: SM region %d out of range", r)
		}
		mon.regions[r] = regionMeta{state: RegionOwned, owner: api.DomainSM}
	}
	for i := range mon.cores {
		mon.cores[i].owner = api.DomainOS
	}
	var osBitmap dram.Bitmap
	for r := range mon.regions {
		if mon.regions[r].owner == api.DomainOS {
			osBitmap = osBitmap.Set(r)
		}
	}
	mon.osBitmap.Store(uint64(osBitmap))
	for _, c := range cfg.Machine.Cores {
		if err := cfg.Platform.ApplyOSView(c, osBitmap); err != nil {
			return nil, fmt.Errorf("sm: programming core %d: %w", c.ID, err)
		}
	}
	// The DMA filter (§IV-B1) is installed exactly once and reads the
	// live bitmap, so region transitions need not republish it and
	// concurrent DMA checks are race-free.
	layout := cfg.Machine.DRAM
	cfg.Machine.DMAAllowed = func(pa, n uint64) bool {
		return dram.Bitmap(mon.osBitmap.Load()).ContainsRange(layout, pa, n)
	}
	cfg.Machine.Firmware = mon
	return mon, nil
}

// Identity returns the monitor's boot identity (public parts are also
// available through GetField).
func (mon *Monitor) Identity() *boot.Identity { return mon.id }

// osRegions returns the live bitmap of OS-owned regions.
func (mon *Monitor) osRegions() dram.Bitmap {
	return dram.Bitmap(mon.osBitmap.Load())
}

// setOSOwned adds or removes region r from the live OS-owned bitmap.
// Called by region transactions while holding the region's lock.
func (mon *Monitor) setOSOwned(r int, owned bool) {
	if owned {
		mon.osBitmap.Or(1 << uint(r))
	} else {
		mon.osBitmap.And(^uint64(1 << uint(r)))
	}
}

// refreshViews pushes the current OS region set to every core through
// its IPI mailbox: running harts pick the update up at their next
// instruction boundary, idle harts are programmed synchronously on the
// calling goroutine, and a hart refreshing itself from a trap handler
// applies it at the boundary right after the trap returns. Called after
// any region transition; the DMA policy needs no republish (it reads
// the live bitmap).
//
// The bitmap is read inside the posted request — at apply time, on the
// target hart — not snapshotted at post time: two region transactions
// on different regions can post concurrently, and FIFO mailbox order
// need not match their bitmap-update order, so a post-time snapshot
// could finish with a stale view installed. Reading live means the
// last applied request always reflects every update that preceded it.
func (mon *Monitor) refreshViews() {
	for id := range mon.machine.Cores {
		slot := &mon.cores[id]
		mon.machine.PostIPI(id, func(c *machine.Core) {
			osBitmap := mon.osRegions()
			slot.mu.Lock()
			osOwned := slot.owner == api.DomainOS
			slot.mu.Unlock()
			if osOwned {
				mon.plat.RefreshOSRegions(c, osBitmap)
			} else {
				// Enclave cores keep their enclave view but see the
				// updated OS set for shared accesses.
				c.OSRegions = osBitmap
			}
		})
	}
}

// inMetaRegion returns whether pa lies inside an SM metadata region.
// Caller holds objMu.
func (mon *Monitor) inMetaRegion(pa uint64) bool {
	r := mon.machine.DRAM.RegionOf(pa)
	return r >= 0 && mon.metaRgn[r]
}

// allocMetaPage claims the metadata page at pa (page-aligned, inside a
// metadata region, unused). Caller holds objMu for writing.
func (mon *Monitor) allocMetaPage(pa uint64) api.Error {
	if pa&mem.PageMask != 0 || !mon.inMetaRegion(pa) {
		return api.ErrInvalidValue
	}
	if mon.metaPages[pa] {
		return api.ErrInvalidValue
	}
	mon.metaPages[pa] = true
	return api.OK
}

func (mon *Monitor) freeMetaPage(pa uint64) {
	delete(mon.metaPages, pa)
	mon.machine.Mem.ZeroPage(pa)
}
