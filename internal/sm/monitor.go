// Package sm implements Sanctorum, the security monitor of the paper:
// a small, trusted, machine-mode component that verifies the untrusted
// OS's resource-management decisions against a security state machine
// and performs the privileged state changes itself. The monitor is not
// a kernel — it makes no allocation decisions — it only refuses unsafe
// ones (paper §V).
//
// The monitor registers itself as the simulated machine's firmware, so
// every trap and interrupt on any core reaches it before any untrusted
// software, exactly as in the paper's Fig 1. The untrusted OS calls the
// exported methods of Monitor (standing in for ECALLs from S-mode);
// enclaves call the monitor through the ECALL instruction, dispatched
// in trap.go.
package sm

import (
	"fmt"
	"sync"

	"sanctorum/internal/hw/dram"
	"sanctorum/internal/hw/machine"
	"sanctorum/internal/hw/mem"
	"sanctorum/internal/sm/api"
	"sanctorum/internal/sm/boot"
)

// Platform abstracts the isolation backend (§VII): the monitor's logic
// is identical for Sanctum and Keystone; only how a protection domain's
// memory is made exclusive differs.
type Platform interface {
	// Kind identifies the backend.
	Kind() machine.IsolationKind
	// ApplyOSView programs a core for untrusted OS/process execution:
	// no enclave state, OS-owned regions accessible.
	ApplyOSView(c *machine.Core, osRegions dram.Bitmap) error
	// ApplyEnclaveView programs a core to run an enclave thread.
	ApplyEnclaveView(c *machine.Core, view EnclaveView) error
	// RefreshOSRegions updates the OS-accessible region set on a core
	// without otherwise disturbing it (used on region re-allocation).
	RefreshOSRegions(c *machine.Core, osRegions dram.Bitmap) error
	// CleanRegion scrubs a DRAM region: zeroes its memory and flushes
	// its cache footprint everywhere.
	CleanRegion(m *machine.Machine, r int) error
	// ShootdownRegion invalidates all TLB translations into region r on
	// every core (the paper's page-walk invariant maintenance).
	ShootdownRegion(m *machine.Machine, r int)
}

// EnclaveView is the per-core state describing a running enclave.
type EnclaveView struct {
	RootPPN   uint64      // enclave private page-table root
	EvBase    uint64      // enclave virtual range base
	EvMask    uint64      // enclave virtual range mask
	Regions   dram.Bitmap // enclave-owned DRAM regions
	OSRegions dram.Bitmap // regions the OS currently owns (shared access)
}

// Config configures the monitor at boot.
type Config struct {
	Machine  *machine.Machine
	Platform Platform
	Identity *boot.Identity
	// SMRegions are the DRAM regions holding the monitor image and its
	// static state; they belong to the SM domain from boot onward.
	SMRegions []int
	// SigningEnclave is the expected measurement of the signing enclave
	// (§VI-C), hard-coded into the monitor at build/boot time.
	SigningEnclave [32]byte
}

// Monitor is the security monitor instance for one machine.
type Monitor struct {
	machine *machine.Machine
	plat    Platform
	id      *boot.Identity

	signingMeasurement [32]byte

	// mu guards the object maps, the core table, the metadata page set
	// and region-set recomputation. Individual objects carry their own
	// transaction locks (paper §V-A: fine-grained locks, transactions
	// fail on contention).
	mu        sync.Mutex
	regions   []regionMeta
	metaRgn   map[int]bool    // SM regions usable for metadata
	metaPages map[uint64]bool // allocated metadata pages, by phys addr
	enclaves  map[uint64]*Enclave
	threads   map[uint64]*Thread
	cores     []coreSlot
}

// coreSlot tracks which protection domain a core currently executes.
type coreSlot struct {
	owner uint64 // api.DomainOS or an eid
	tid   uint64 // running thread when owner is an enclave
}

// New boots the monitor on a machine: claims the SM's own regions,
// assigns every other region to the untrusted OS, installs the DMA
// policy and the OS view on every core, and registers the monitor as
// the machine's firmware.
func New(cfg Config) (*Monitor, error) {
	if cfg.Machine == nil || cfg.Platform == nil || cfg.Identity == nil {
		return nil, fmt.Errorf("sm: incomplete configuration")
	}
	if cfg.Platform.Kind() != cfg.Machine.Kind {
		return nil, fmt.Errorf("sm: platform kind %v does not match machine %v",
			cfg.Platform.Kind(), cfg.Machine.Kind)
	}
	mon := &Monitor{
		machine:            cfg.Machine,
		plat:               cfg.Platform,
		id:                 cfg.Identity,
		signingMeasurement: cfg.SigningEnclave,
		regions:            make([]regionMeta, cfg.Machine.DRAM.RegionCount),
		metaRgn:            make(map[int]bool),
		metaPages:          make(map[uint64]bool),
		enclaves:           make(map[uint64]*Enclave),
		threads:            make(map[uint64]*Thread),
		cores:              make([]coreSlot, len(cfg.Machine.Cores)),
	}
	for i := range mon.regions {
		mon.regions[i] = regionMeta{state: RegionOwned, owner: api.DomainOS}
	}
	for _, r := range cfg.SMRegions {
		if r < 0 || r >= len(mon.regions) {
			return nil, fmt.Errorf("sm: SM region %d out of range", r)
		}
		mon.regions[r] = regionMeta{state: RegionOwned, owner: api.DomainSM}
	}
	for i := range mon.cores {
		mon.cores[i] = coreSlot{owner: api.DomainOS}
	}
	osBitmap := mon.osRegionsLocked()
	for _, c := range cfg.Machine.Cores {
		if err := cfg.Platform.ApplyOSView(c, osBitmap); err != nil {
			return nil, fmt.Errorf("sm: programming core %d: %w", c.ID, err)
		}
	}
	mon.installDMAPolicyLocked(osBitmap)
	cfg.Machine.Firmware = mon
	return mon, nil
}

// Identity returns the monitor's boot identity (public parts are also
// available through GetField).
func (mon *Monitor) Identity() *boot.Identity { return mon.id }

// osRegionsLocked computes the bitmap of OS-owned regions. Callers hold
// mon.mu or are in single-threaded setup.
func (mon *Monitor) osRegionsLocked() dram.Bitmap {
	var b dram.Bitmap
	for r := range mon.regions {
		if mon.regions[r].state == RegionOwned && mon.regions[r].owner == api.DomainOS {
			b = b.Set(r)
		}
	}
	return b
}

// installDMAPolicyLocked restricts DMA to OS-owned memory (§IV-B1).
func (mon *Monitor) installDMAPolicyLocked(osBitmap dram.Bitmap) {
	layout := mon.machine.DRAM
	mon.machine.DMAAllowed = func(pa, n uint64) bool {
		return osBitmap.ContainsRange(layout, pa, n)
	}
}

// refreshViewsLocked pushes the current OS region set to every core and
// reinstalls the DMA policy; called after any region transition.
func (mon *Monitor) refreshViewsLocked() {
	osBitmap := mon.osRegionsLocked()
	for i, c := range mon.machine.Cores {
		if mon.cores[i].owner == api.DomainOS {
			mon.plat.RefreshOSRegions(c, osBitmap)
		} else {
			// Enclave cores keep their enclave view but see the updated
			// OS set for shared accesses.
			c.OSRegions = osBitmap
		}
	}
	mon.installDMAPolicyLocked(osBitmap)
}

// metaPageRange returns whether [pa, pa+n) lies inside an SM metadata
// region.
func (mon *Monitor) inMetaRegion(pa uint64) bool {
	r := mon.machine.DRAM.RegionOf(pa)
	return r >= 0 && mon.metaRgn[r]
}

// allocMetaPage claims the metadata page at pa (page-aligned, inside a
// metadata region, unused). Caller holds mon.mu.
func (mon *Monitor) allocMetaPage(pa uint64) api.Error {
	if pa&mem.PageMask != 0 || !mon.inMetaRegion(pa) {
		return api.ErrInvalidValue
	}
	if mon.metaPages[pa] {
		return api.ErrInvalidValue
	}
	mon.metaPages[pa] = true
	return api.OK
}

func (mon *Monitor) freeMetaPage(pa uint64) {
	delete(mon.metaPages, pa)
	mon.machine.Mem.ZeroPage(pa)
}
