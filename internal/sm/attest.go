package sm

import (
	"crypto/ecdh"
	"crypto/ed25519"
	"encoding/binary"

	"sanctorum/internal/crypto/kdf"
	"sanctorum/internal/sm/api"
)

// maxSignInput bounds attestation signing requests.
const maxSignInput = 1024

// GetField returns public monitor metadata to the untrusted OS (§VI-C:
// the SM stores its certificates and exposes them via a public API).
func (mon *Monitor) GetField(f api.Field) ([]byte, api.Error) {
	return mon.fieldBytes(f, nil)
}

// fieldBytes serves get_field for both OS and enclave callers.
func (mon *Monitor) fieldBytes(f api.Field, caller *Enclave) ([]byte, api.Error) {
	switch f {
	case api.FieldSMMeasurement:
		return append([]byte(nil), mon.id.Measurement[:]...), api.OK
	case api.FieldSMPublicKey:
		return append([]byte(nil), mon.id.AttestPub...), api.OK
	case api.FieldCertChain:
		return mon.id.Chain.Marshal(), api.OK
	case api.FieldEnclaveMeasurement:
		if caller == nil {
			return nil, api.ErrUnauthorized
		}
		return append([]byte(nil), caller.Measurement[:]...), api.OK
	case api.FieldEnclaveIdentity:
		// measurement[32] ‖ eid[8] ‖ origin[8]: the full attestation
		// identity. A clone shares its template's measurement but keeps
		// a per-clone enclave ID, and origin=1 marks the measurement as
		// inherited through a snapshot fork rather than measured over
		// this enclave's own load sequence (DESIGN.md §8).
		if caller == nil {
			return nil, api.ErrUnauthorized
		}
		out := make([]byte, 48)
		copy(out, caller.Measurement[:])
		binary.LittleEndian.PutUint64(out[32:], caller.ID)
		if caller.CloneOf != 0 {
			binary.LittleEndian.PutUint64(out[40:], 1)
		}
		return out, api.OK
	case api.FieldEnclaveRings:
		// Ring id[8] ‖ role[8] per ring the caller is an endpoint of,
		// in creation order — how a cloned worker, whose measured image
		// cannot embed per-clone names, discovers its own rings.
		if caller == nil {
			return nil, api.ErrUnauthorized
		}
		return mon.ringBytesForEnclave(caller.ID), api.OK
	case api.FieldEnclaveGrants:
		// Grant id[8] ‖ role[8] ‖ byte size[8] per grant the caller is
		// an endpoint of, in creation order — how a cloned worker
		// discovers the shared buffer it should bulk_map.
		if caller == nil {
			return nil, api.ErrUnauthorized
		}
		return mon.grantBytesForEnclave(caller.ID), api.OK
	default:
		return nil, api.ErrInvalidValue
	}
}

// attestSign signs enclave-supplied bytes with the monitor attestation
// key. Only the signing enclave — identified by the measurement
// hard-coded at boot (§VI-C) — may invoke it. The signature itself is
// computed by the monitor on the signing enclave's behalf (see
// DESIGN.md's substitution table: the simulated ISA does not run
// Ed25519, and the trust relation "only code measuring as the signing
// enclave can produce attestations" is preserved exactly).
func (mon *Monitor) attestSign(e *Enclave, inVA, inLen uint64) ([]byte, api.Error) {
	if mon.signingMeasurement == ([32]byte{}) {
		return nil, api.ErrNotSupported
	}
	if e.Measurement != mon.signingMeasurement {
		return nil, api.ErrUnauthorized
	}
	if inLen == 0 || inLen > maxSignInput {
		return nil, api.ErrInvalidValue
	}
	data, ok := mon.readEnclave(e, inVA, int(inLen))
	if !ok {
		return nil, api.ErrInvalidValue
	}
	return ed25519.Sign(mon.id.AttestPriv, data), api.OK
}

// The three calls below form the monitor's crypto service for enclave
// code (see api.CallKADerive): the simulated ISA cannot run curve
// arithmetic, so the monitor — which enclaves already trust uncondi-
// tionally — performs it on key material that never leaves enclave
// memory plus the monitor.

// kaDerive writes the X25519 public share for an enclave private scalar.
func (mon *Monitor) kaDerive(e *Enclave, privVA, outVA uint64) api.Error {
	scalar, ok := mon.readEnclave(e, privVA, 32)
	if !ok {
		return api.ErrInvalidValue
	}
	priv, err := ecdh.X25519().NewPrivateKey(scalar)
	if err != nil {
		return api.ErrInvalidValue
	}
	if !mon.writeEnclave(e, outVA, priv.PublicKey().Bytes()) {
		return api.ErrInvalidValue
	}
	return api.OK
}

// kaCombine derives the session key from the enclave's private scalar
// and a peer public share.
func (mon *Monitor) kaCombine(e *Enclave, privVA, peerVA, outVA uint64) api.Error {
	scalar, ok := mon.readEnclave(e, privVA, 32)
	if !ok {
		return api.ErrInvalidValue
	}
	peerBytes, ok := mon.readEnclave(e, peerVA, 32)
	if !ok {
		return api.ErrInvalidValue
	}
	priv, err := ecdh.X25519().NewPrivateKey(scalar)
	if err != nil {
		return api.ErrInvalidValue
	}
	peer, err := ecdh.X25519().NewPublicKey(peerBytes)
	if err != nil {
		return api.ErrInvalidValue
	}
	secret, err := priv.ECDH(peer)
	if err != nil {
		return api.ErrInvalidValue
	}
	key := kdf.SessionKey(secret, priv.PublicKey().Bytes(), peerBytes)
	if !mon.writeEnclave(e, outVA, key) {
		return api.ErrInvalidValue
	}
	return api.OK
}

// macService computes a keyed authenticator over enclave memory.
func (mon *Monitor) macService(e *Enclave, keyVA, msgVA, msgLen, outVA uint64) api.Error {
	if msgLen == 0 || msgLen > maxSignInput {
		return api.ErrInvalidValue
	}
	key, ok := mon.readEnclave(e, keyVA, 32)
	if !ok {
		return api.ErrInvalidValue
	}
	msg, ok := mon.readEnclave(e, msgVA, int(msgLen))
	if !ok {
		return api.ErrInvalidValue
	}
	tag := kdf.MAC(key, msg)
	if !mon.writeEnclave(e, outVA, tag[:]) {
		return api.ErrInvalidValue
	}
	return api.OK
}
