package sm

import (
	"testing"

	"sanctorum/internal/hw/mem"
	"sanctorum/internal/hw/pt"
	"sanctorum/internal/sm/api"
	"sanctorum/internal/telemetry"
)

// BenchmarkDispatch measures the cost the unified ABI adds to one
// monitor call: the same region_info transaction invoked through the
// internal function (the pre-ABI direct-method path) and through the
// full Dispatch route (table lookup, domain authorization, argument
// narrowing). The difference is the dispatch overhead every call now
// pays for having exactly one privilege boundary.
func BenchmarkDispatch(b *testing.B) {
	f := newFixture(b)
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, st := f.mon.regionInfo(3); st != api.OK {
				b.Fatal(st)
			}
		}
	})
	b.Run("dispatch", func(b *testing.B) {
		req := api.OSRequest(api.CallRegionInfo, 3)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if resp := f.mon.Dispatch(req); resp.Status != api.OK {
				b.Fatal(resp.Status)
			}
		}
	})
}

// TestDispatchZeroAlloc pins the dispatch path's allocation behaviour:
// a steady-state monitor call must not allocate. The Request travels by
// value through the handler table precisely so it cannot escape; a
// regression here puts a GC allocation on every ABI call.
func TestDispatchZeroAlloc(t *testing.T) {
	f := newFixture(t)
	req := api.OSRequest(api.CallRegionInfo, 3)
	avg := testing.AllocsPerRun(1000, func() {
		if resp := f.mon.Dispatch(req); resp.Status != api.OK {
			t.Fatal(resp.Status)
		}
	})
	if avg != 0 {
		t.Fatalf("Dispatch allocates %.2f objects per call, want 0", avg)
	}
	// The same holds instrumented: the telemetry plane's per-call
	// counter and cycle histogram are sharded atomics with no heap
	// traffic, so turning observability on cannot put an allocation on
	// the monitor-call hot path (DESIGN.md §13).
	f.mon.SetTelemetry(telemetry.New())
	avg = testing.AllocsPerRun(1000, func() {
		if resp := f.mon.Dispatch(req); resp.Status != api.OK {
			t.Fatal(resp.Status)
		}
	})
	if avg != 0 {
		t.Fatalf("instrumented Dispatch allocates %.2f objects per call, want 0", avg)
	}
}

// buildReqs is the canonical enclave-build call sequence (create, one
// grant, three tables, nPages loads, one thread, init) as ABI requests.
func buildReqs(f *fixture, slot, region, nPages int) []api.Request {
	eid := f.metaPage(slot)
	src := f.m.DRAM.Base(1) // OS-owned source page
	reqs := []api.Request{
		api.OSRequest(api.CallCreateEnclave, eid, testEvBase, testEvMask),
		api.OSRequest(api.CallGrantRegion, uint64(region), eid),
		api.OSRequest(api.CallAllocPageTable, eid, 0, 2),
		api.OSRequest(api.CallAllocPageTable, eid, testEvBase, 1),
		api.OSRequest(api.CallAllocPageTable, eid, testEvBase, 0),
	}
	for p := 0; p < nPages; p++ {
		reqs = append(reqs, api.OSRequest(api.CallLoadPage, eid,
			testEvBase+uint64(p)*mem.PageSize, src, uint64(pt.R|pt.X)))
	}
	reqs = append(reqs,
		api.OSRequest(api.CallLoadThread, eid, f.metaPage(slot+1), testEvBase, testEvBase+0x800),
		api.OSRequest(api.CallInitEnclave, eid),
		api.OSRequest(api.CallEnclaveStatus, eid, 0),
	)
	return reqs
}

func teardownBuilt(b *testing.B, f *fixture, slot, region int) {
	b.Helper()
	eid := f.metaPage(slot)
	if st := f.mon.deleteEnclave(eid); st != api.OK {
		b.Fatalf("delete: %v", st)
	}
	if st := f.mon.deleteThread(f.metaPage(slot + 1)); st != api.OK {
		b.Fatalf("delete thread: %v", st)
	}
	if st := f.mon.cleanRegion(region); st != api.OK {
		b.Fatalf("clean: %v", st)
	}
	if st := f.mon.grantRegion(region, api.DomainOS); st != api.OK {
		b.Fatalf("grant back: %v", st)
	}
}

// BenchmarkDispatchBatch compares the hot multi-call sequence — an
// enclave build of create + tables + 12 load_page + init — submitted as
// individual Dispatch calls versus one DispatchBatch, which holds the
// enclave's transaction lock across consecutive same-enclave elements
// instead of re-acquiring it per call.
func BenchmarkDispatchBatch(b *testing.B) {
	const nPages = 12
	run := func(b *testing.B, batched bool) {
		f := newFixture(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			reqs := buildReqs(f, 0, 10, nPages)
			if batched {
				for _, resp := range f.mon.DispatchBatch(reqs) {
					if resp.Status != api.OK {
						b.Fatal(resp.Status)
					}
				}
			} else {
				for _, req := range reqs {
					if resp := f.mon.Dispatch(req); resp.Status != api.OK {
						b.Fatal(resp.Status)
					}
				}
			}
			b.StopTimer()
			teardownBuilt(b, f, 0, 10)
			b.StartTimer()
		}
	}
	b.Run("sequential", func(b *testing.B) { run(b, false) })
	b.Run("batched", func(b *testing.B) { run(b, true) })

	// The build sequence is dominated by page copies and measurement
	// hashing, which drown the locking cost — so also isolate the
	// amortization itself with a metadata-only burst: 64 enclave_status
	// calls against one enclave, where per-call lock traffic is the
	// entire cost.
	const burst = 64
	statusRun := func(b *testing.B, batched bool) {
		f := newFixture(b)
		eid := f.createLoading(b, 0, 10)
		reqs := make([]api.Request, burst)
		for i := range reqs {
			reqs[i] = api.OSRequest(api.CallEnclaveStatus, eid, 0)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if batched {
				for _, resp := range f.mon.DispatchBatch(reqs) {
					if resp.Status != api.OK {
						b.Fatal(resp.Status)
					}
				}
			} else {
				for j := range reqs {
					if resp := f.mon.Dispatch(reqs[j]); resp.Status != api.OK {
						b.Fatal(resp.Status)
					}
				}
			}
		}
	}
	b.Run("status-burst-sequential", func(b *testing.B) { statusRun(b, false) })
	b.Run("status-burst-batched", func(b *testing.B) { statusRun(b, true) })
}
