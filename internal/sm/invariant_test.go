package sm

import (
	"strings"
	"testing"

	"sanctorum/internal/sm/api"
)

// TestCheckInvariantsThroughLifecycle runs the full invariant suite at
// every station of a representative lifecycle — fresh boot, sealed
// template, live snapshot with a clone, rings, a blocked region — so
// the checker's happy paths are exercised by the monitor's own test
// package, not only by the external model checker.
func TestCheckInvariantsThroughLifecycle(t *testing.T) {
	f := newFixture(t)
	check := func(when string) {
		t.Helper()
		if err := f.mon.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", when, err)
		}
	}
	check("fresh boot")

	tmpl := f.buildTemplate(t, 0, 10)
	check("sealed template")

	snapID := f.metaPage(2)
	if st := f.SnapshotEnclave(tmpl, snapID); st != api.OK {
		t.Fatalf("snapshot: %v", st)
	}
	clone := f.prepClone(t, 4, 11)
	if st := f.CloneEnclave(clone, snapID, f.metaPage(5), 0); st != api.OK {
		t.Fatalf("clone: %v", st)
	}
	check("snapshot with live clone")

	ring := f.metaPage(6)
	if st := f.call(api.CallRingCreate, ring, api.DomainOS, clone, 8); st != api.OK {
		t.Fatalf("ring create: %v", st)
	}
	check("ring attached")

	if st := f.BlockRegion(7); st != api.OK {
		t.Fatalf("block: %v", st)
	}
	check("blocked region")
	if st := f.CleanRegion(7); st != api.OK {
		t.Fatalf("clean: %v", st)
	}

	if st := f.call(api.CallRingDestroy, ring); st != api.OK {
		t.Fatalf("ring destroy: %v", st)
	}
	if st := f.DeleteEnclave(clone); st != api.OK {
		t.Fatalf("delete clone: %v", st)
	}
	if st := f.ReleaseSnapshot(snapID); st != api.OK {
		t.Fatalf("release snapshot: %v", st)
	}
	if st := f.DeleteEnclave(tmpl); st != api.OK {
		t.Fatalf("delete template: %v", st)
	}
	check("after teardown")
}

// TestCheckInvariantsDetectsCorruption plants targeted corruptions
// directly in the metadata — the kind a lifecycle bug would leave
// behind — and requires the checker to name each one.
func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	f := newFixture(t)

	// A blocked region whose owner did not revert to the OS: the stale
	// dead-eid bug the model checker originally surfaced.
	if st := f.BlockRegion(5); st != api.OK {
		t.Fatalf("block: %v", st)
	}
	f.mon.regions[5].owner = 0xDEAD0000
	err := f.mon.CheckInvariants()
	if err == nil || !strings.Contains(err.Error(), "must revert to OS") {
		t.Fatalf("stale blocked owner not caught: %v", err)
	}
	f.mon.regions[5].owner = api.DomainOS
	if st := f.CleanRegion(5); st != api.OK {
		t.Fatalf("clean: %v", st)
	}

	// A metadata page with no owning object: a leak.
	f.mon.metaPages[0xBAD000] = true
	err = f.mon.CheckInvariants()
	if err == nil || !strings.Contains(err.Error(), "leak or orphan") {
		t.Fatalf("orphaned metadata page not caught: %v", err)
	}
	delete(f.mon.metaPages, 0xBAD000)

	if err := f.mon.CheckInvariants(); err != nil {
		t.Fatalf("state not restored: %v", err)
	}
}

// TestSnapshotDiffNamesChangedSections pins the failure-message
// helper: equal captures report no difference, and a region grant
// shows up as a Regions-section diff.
func TestSnapshotDiffNamesChangedSections(t *testing.T) {
	f := newFixture(t)
	a := f.mon.CaptureState()
	if d := a.Diff(f.mon.CaptureState()); d != "no difference" {
		t.Fatalf("identical captures diff: %s", d)
	}
	if st := f.GrantRegion(9, api.DomainSM); st != api.OK {
		t.Fatalf("grant: %v", st)
	}
	b := f.mon.CaptureState()
	if a.Equal(b) {
		t.Fatal("captures equal across a region grant")
	}
	if d := a.Diff(b); !strings.Contains(d, "Regions") {
		t.Fatalf("diff does not name the Regions section: %s", d)
	}
}

// TestLockFaultHookForcesRetry exercises the §V-A fault hook from the
// monitor's own package: a hook refusing region-lock acquisitions
// turns a grant into ErrRetry with state untouched, removing the hook
// restores service, and every lock class prints a distinct name.
func TestLockFaultHookForcesRetry(t *testing.T) {
	f := newFixture(t)
	before := snapshot(f.mon)
	var seen []LockPoint
	f.mon.SetLockFaultHook(func(lp LockPoint) bool {
		seen = append(seen, lp)
		return lp.Kind == LockRegion
	})
	if st := f.GrantRegion(5, api.DomainSM); st != api.ErrRetry {
		t.Fatalf("grant under fault: %v, want ErrRetry", st)
	}
	if len(seen) == 0 || seen[len(seen)-1].Kind != LockRegion || seen[len(seen)-1].ID != 5 {
		t.Fatalf("hook observed %v, want a LockRegion/5 acquisition", seen)
	}
	if !snapshot(f.mon).equal(before) {
		t.Fatal("refused grant mutated state")
	}
	f.mon.SetLockFaultHook(nil)
	if st := f.GrantRegion(5, api.DomainSM); st != api.OK {
		t.Fatalf("grant after hook removed: %v", st)
	}

	kinds := []LockKind{LockEnclave, LockThread, LockSnapshot, LockRing,
		LockRegion, LockCoreSlot, LockCore, LockKind(250)}
	names := map[string]bool{}
	for _, k := range kinds {
		names[k.String()] = true
	}
	if len(names) != len(kinds) || !names["lock-kind-?"] {
		t.Fatalf("lock kinds do not print distinctly: %v", names)
	}
}
