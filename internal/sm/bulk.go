package sm

// Bulk grants (DESIGN.md §14): the zero-copy data plane. A grant pins
// a span of OS-owned pages as an untrusted shared buffer between a
// fixed producer/consumer pair — the region-ownership machinery of §IV
// narrowed to page granularity, with the physical page refcounts as
// ground truth: a granted page carries an alias reference, so
// clean_region refuses to scrub it for as long as the grant lives.
// Ring messages then carry scatter-gather descriptors — (offset,
// length) lists validated against the grant bounds at send time — so
// multi-KB payloads move through the buffer with zero monitor copies
// on the data path; the monitor only ever copies the 64-byte
// descriptor message itself.
//
// Lifecycle (the state machine of DESIGN.md §14): bulk_grant registers
// the buffer and pins its pages; each endpoint enclave accepts with
// bulk_map, which writes the PTEs into its own tables (outside the
// evrange, like a Keystone shared window — the OS maps its side in its
// own untrusted page tables, no monitor call needed); bulk_revoke
// unmaps every endpoint with targeted shootdowns, drops the pins, and
// frees the id — refused with ErrInvalidState while any descriptor
// into the grant is still queued in a ring, because in-flight data
// keeps the buffer alive.
//
// Concurrency: the grant's mutex is its §V-A transaction lock, taken
// with TryLock by map and revoke. The send/recv hot paths never take
// it — they use the dead/inflight atomics, ordered so the two cannot
// both win: send publishes inflight before checking dead, revoke
// publishes dead before checking inflight (both sequentially
// consistent), so either the send sees the revoke and aborts, or the
// revoke sees the send's descriptors and refuses. This keeps grant
// locks out of the ring lock order entirely: a ring-transaction holder
// never waits on a grant.

import (
	"encoding/binary"
	"sync"
	"sync/atomic"

	"sanctorum/internal/hw/machine"
	"sanctorum/internal/hw/mem"
	"sanctorum/internal/hw/pt"
	"sanctorum/internal/sm/api"
)

// Grant is the monitor's metadata for one bulk buffer grant, named —
// like every monitor object — by a free SM metadata page.
type Grant struct {
	mu sync.Mutex

	ID       uint64
	BasePA   uint64
	Pages    uint64
	Producer uint64 // api.DomainOS or an eid
	Consumer uint64
	seq      uint64 // creation order, for FieldEnclaveGrants

	// maps records where each enclave endpoint bulk_mapped the buffer
	// (eid → va), guarded by mu. The OS side never appears here: the
	// buffer is OS-owned memory the OS reaches through its own tables.
	maps map[uint64]uint64

	// dead and inflight are the revoke/send race protocol (see the
	// package comment above): send never takes mu, so a ring-lock
	// holder never waits on a grant transaction.
	dead     atomic.Bool
	inflight atomic.Int64 // descriptors queued in rings
}

// bytes returns the grant's size in bytes.
func (g *Grant) bytes() uint64 { return g.Pages * mem.PageSize }

// isEndpoint reports whether who (DomainOS or an eid) is one of the
// grant's fixed endpoints.
func (g *Grant) isEndpoint(who uint64) bool {
	return who == g.Producer || who == g.Consumer
}

// lookupGrant fetches and transaction-locks a grant; contention fails
// the transaction with ErrRetry (§V-A). The dead re-check closes the
// lookup/revoke race exactly as lookupRing does for rings.
func (mon *Monitor) lookupGrant(id uint64) (*Grant, api.Error) {
	mon.objMu.RLock()
	g := mon.grants[id]
	mon.objMu.RUnlock()
	if g == nil {
		return nil, api.ErrInvalidValue
	}
	if !mon.tryLock(&g.mu, LockGrant, id) {
		return nil, api.ErrRetry
	}
	if g.dead.Load() {
		g.mu.Unlock()
		return nil, api.ErrInvalidValue
	}
	return g, api.OK
}

// peekGrant fetches a grant without locking it, for the send/recv hot
// paths, which synchronize through the dead/inflight atomics instead.
// A pointer to a grant revoked after the fetch is harmless: its dead
// flag is set, so the send protocol aborts.
func (mon *Monitor) peekGrant(id uint64) *Grant {
	mon.objMu.RLock()
	g := mon.grants[id]
	mon.objMu.RUnlock()
	return g
}

// bulkGrant implements CallBulkGrant (OS-domain): register a grant over
// [basePA, basePA+pages·4096) in OS-owned memory between a fixed
// producer and consumer, pinning every page with an alias reference.
// Endpoint enclaves are held under their transaction locks while the
// grant registers — paired with deleteEnclave's endpoint guard, the
// same exclusion ringCreate uses, so a grant can never attach to an
// enclave mid-deletion and survive it.
func (mon *Monitor) bulkGrant(grantID, basePA, pages, producer, consumer uint64) api.Error {
	if pages == 0 || pages > api.BulkMaxPages {
		return api.ErrInvalidValue
	}
	if basePA&mem.PageMask != 0 {
		return api.ErrInvalidValue
	}
	size := pages * mem.PageSize
	if basePA+size < basePA {
		return api.ErrInvalidValue // physical wraparound
	}
	if !mon.osOwnsRange(basePA, size) {
		return api.ErrInvalidValue
	}
	endpoints := []uint64{producer}
	if consumer != producer {
		endpoints = append(endpoints, consumer)
	}
	for _, who := range endpoints {
		if who == api.DomainOS {
			continue
		}
		e, st := mon.lookupEnclave(who)
		if st != api.OK {
			return st
		}
		defer e.mu.Unlock()
	}
	mon.objMu.Lock()
	defer mon.objMu.Unlock()
	if st := mon.allocMetaPage(grantID); st != api.OK {
		return st
	}
	for p := uint64(0); p < pages; p++ {
		mon.machine.Mem.Retain(basePA + p*mem.PageSize)
	}
	mon.grantSeq++
	mon.grants[grantID] = &Grant{
		ID:       grantID,
		BasePA:   basePA,
		Pages:    pages,
		Producer: producer,
		Consumer: consumer,
		seq:      mon.grantSeq,
		maps:     make(map[uint64]uint64),
	}
	if t := mon.tele; t != nil {
		t.bulkGrants.Add(1)
	}
	return api.OK
}

// hBulkMap implements CallBulkMap (enclave trap context only): the
// accept half of the grant handshake. The calling enclave maps the
// grant's pages read-write into its own tables at va — page-aligned,
// outside the evrange, with the covering leaf tables already allocated
// (a template built with a shared window at the same 2 MiB leaf
// satisfies this, and its clones inherit the tables). Every page is
// validated before the first PTE is written, so a failed map changes
// nothing. Lock order: grant → enclave, same side as bulkRevoke.
//
// The mapping is deliberately not recorded in e.mapped: it is
// post-measurement untrusted window state, not enclave image — a
// snapshot of the enclave must not capture it and a clone must not
// inherit it (each clone bulk_maps its own grant). Double-mapping is
// excluded by the PTE-must-be-invalid check instead.
func hBulkMap(mon *Monitor, req api.Request, ctx *callContext) api.Response {
	g, st := mon.lookupGrant(req.Args[0])
	if st != api.OK {
		return fail(st)
	}
	defer g.mu.Unlock()
	e := ctx.enclave
	if !g.isEndpoint(e.ID) {
		return fail(api.ErrUnauthorized)
	}
	if _, already := g.maps[e.ID]; already {
		return fail(api.ErrInvalidState)
	}
	va := req.Args[1]
	if va&mem.PageMask != 0 || va+g.bytes() < va {
		return fail(api.ErrInvalidValue)
	}
	if !mon.tryLock(&e.mu, LockEnclave, e.ID) {
		return fail(api.ErrRetry)
	}
	defer e.mu.Unlock()
	pteAddrs := make([]uint64, g.Pages)
	for p := uint64(0); p < g.Pages; p++ {
		pva := va + p*mem.PageSize
		if e.InEvrange(pva) || e.mapped[pva] {
			return fail(api.ErrInvalidValue)
		}
		pteAddr, okLeaf := mon.leafPTEAddr(e, pva)
		if !okLeaf {
			return fail(api.ErrInvalidState) // leaf table missing
		}
		if pte, err := mon.machine.Mem.Load(pteAddr, 8); err != nil || pte&pt.V != 0 {
			return fail(api.ErrInvalidValue) // VA already translates
		}
		pteAddrs[p] = pteAddr
	}
	for p := uint64(0); p < g.Pages; p++ {
		ppn := g.BasePA>>mem.PageBits + p
		mon.machine.Mem.Store(pteAddrs[p], 8, pt.MakePTE(ppn, pt.R|pt.W|pt.V|pt.U))
	}
	g.maps[e.ID] = va
	return ok()
}

// bulkRevoke implements CallBulkRevoke (OS, no-hart context only):
// unmap the grant from every endpoint that mapped it, drop the page
// pins, free the id, and shoot down the mapped translations on every
// core. Refused with ErrInvalidState while descriptors into the grant
// are queued in a ring — the dead/inflight protocol guarantees a
// concurrent bulk_send either lands before the refusal or aborts.
//
// Endpoint enclaves are locked in the fixed producer-then-consumer
// order (never Go map order — replay determinism), and every lock is
// taken before the first mutation so contention fails with ErrRetry
// having changed nothing. The shootdown runs after all locks are
// released: RunOn waits for instruction boundaries, and a hart blocked
// in stopThread's lock acquisition never reaches one, so waiting on
// acknowledgments while holding enclave locks could deadlock. The
// window is benign — the grant is already unregistered, and a stale
// translation reaches only OS-owned memory the enclave could touch
// moments earlier; by return, every core has acknowledged the flush.
func (mon *Monitor) bulkRevoke(grantID uint64) api.Error {
	g, st := mon.lookupGrant(grantID)
	if st != api.OK {
		return st
	}
	type mapping struct {
		e  *Enclave
		va uint64
	}
	var mappings []mapping
	unwind := func() {
		for _, m := range mappings {
			m.e.mu.Unlock()
		}
		g.mu.Unlock()
	}
	endpoints := []uint64{g.Producer}
	if g.Consumer != g.Producer {
		endpoints = append(endpoints, g.Consumer)
	}
	for _, who := range endpoints {
		va, isMapped := g.maps[who]
		if !isMapped {
			continue
		}
		// The endpoint must still exist: deleteEnclave refuses while the
		// enclave is a grant endpoint.
		e, st := mon.lookupEnclave(who)
		if st != api.OK {
			unwind()
			return st
		}
		mappings = append(mappings, mapping{e: e, va: va})
	}
	g.dead.Store(true)
	if g.inflight.Load() != 0 {
		g.dead.Store(false) // rollback: queued descriptors keep it alive
		unwind()
		return api.ErrInvalidState
	}
	var vpns []uint64
	for _, m := range mappings {
		for p := uint64(0); p < g.Pages; p++ {
			pva := m.va + p*mem.PageSize
			pteAddr, okLeaf := mon.leafPTEAddr(m.e, pva)
			if okLeaf { // always true: bulk_map verified the leaf
				mon.machine.Mem.Store(pteAddr, 8, 0)
			}
			vpns = append(vpns, (pva&pt.VAMask)>>mem.PageBits)
		}
		delete(g.maps, m.e.ID)
	}
	for p := uint64(0); p < g.Pages; p++ {
		mon.machine.Mem.ReleaseRef(g.BasePA + p*mem.PageSize)
	}
	mon.objMu.Lock()
	delete(mon.grants, grantID)
	mon.freeMetaPage(grantID)
	mon.objMu.Unlock()
	unwind()
	for id := range mon.machine.Cores {
		mon.machine.RunOn(id, machine.NoHart, func(c *machine.Core) {
			for _, vpn := range vpns {
				c.TLB.FlushPage(vpn)
			}
		})
	}
	if t := mon.tele; t != nil {
		t.bulkGrants.Add(-1)
	}
	return api.OK
}

// bulkDesc is one parsed scatter-gather descriptor.
type bulkDesc struct{ off, ln uint64 }

// parseBulkDescs validates one 64-byte descriptor message against a
// grant's byte size: the BulkTag anchor, a descriptor count in
// 1..BulkMaxDescs, and per descriptor length > 0, no offset+length
// wraparound, offset+length within the grant, and no pairwise overlap
// inside the message. Returns the descriptors and their total byte
// count. Trailing payload bytes beyond the last descriptor are
// application-defined (a bulk server reads its opcode there) and not
// the monitor's concern.
func parseBulkDescs(payload []byte, grantBytes uint64) (descs [api.BulkMaxDescs]bulkDesc, n int, total uint64, st api.Error) {
	if len(payload) < api.RingMsgSize {
		return descs, 0, 0, api.ErrInvalidValue
	}
	if binary.LittleEndian.Uint64(payload) != api.BulkTag {
		return descs, 0, 0, api.ErrInvalidValue
	}
	nd := binary.LittleEndian.Uint64(payload[8:])
	if nd == 0 || nd > api.BulkMaxDescs {
		return descs, 0, 0, api.ErrInvalidValue
	}
	n = int(nd)
	for i := 0; i < n; i++ {
		off := binary.LittleEndian.Uint64(payload[16+16*i:])
		ln := binary.LittleEndian.Uint64(payload[24+16*i:])
		if ln == 0 {
			return descs, 0, 0, api.ErrInvalidValue
		}
		if off+ln < off {
			return descs, 0, 0, api.ErrInvalidValue // wraparound
		}
		if off+ln > grantBytes {
			return descs, 0, 0, api.ErrInvalidValue // out of bounds
		}
		for j := 0; j < i; j++ {
			if off < descs[j].off+descs[j].ln && descs[j].off < off+ln {
				return descs, 0, 0, api.ErrInvalidValue // overlap
			}
		}
		descs[i] = bulkDesc{off: off, ln: ln}
		total += ln
	}
	return descs, n, total, api.OK
}

// hBulkSend is the dual-domain scatter-gather send handler: CallRingSend
// with every payload validated as a descriptor list into the named
// grant before anything is published, and the queued descriptors
// counted in-flight on the grant until received. The sender must be
// both the ring's producer (checked by the ring transaction) and a
// grant endpoint (checked here).
func hBulkSend(mon *Monitor, req api.Request, ctx *callContext) api.Response {
	n, okCount := batchLen(req.Args[2])
	if !okCount {
		return fail(api.ErrInvalidValue)
	}
	g := mon.peekGrant(req.Args[3])
	if g == nil {
		return fail(api.ErrInvalidValue)
	}
	var sender uint64
	var meas [32]byte
	var msgs []byte
	from := machine.NoHart
	if ctx != nil {
		from = ctx.core.ID
		sender, meas = ctx.enclave.ID, ctx.enclave.Measurement
		var okRead bool
		msgs, okRead = mon.readEnclave(ctx.enclave, req.Args[1], n*api.RingMsgSize)
		if !okRead {
			return fail(api.ErrInvalidValue)
		}
	} else {
		sender = api.DomainOS
		srcPA := req.Args[1]
		if !mon.osOwnsRange(srcPA, uint64(n)*api.RingMsgSize) {
			return fail(api.ErrInvalidValue)
		}
		msgs = make([]byte, n*api.RingMsgSize)
		if err := mon.machine.Mem.ReadBytes(srcPA, msgs); err != nil {
			return fail(api.ErrInvalidValue)
		}
	}
	if !g.isEndpoint(sender) {
		return fail(api.ErrUnauthorized)
	}
	// Validate every message before publishing any: a bad descriptor in
	// message k must not leave messages 0..k-1 queued.
	var msgBytes [api.RingMaxBatch]uint64
	var msgDescs [api.RingMaxBatch]uint64
	size := g.bytes()
	for i := 0; i < n; i++ {
		_, nd, total, st := parseBulkDescs(msgs[i*api.RingMsgSize:(i+1)*api.RingMsgSize], size)
		if st != api.OK {
			return fail(st)
		}
		msgBytes[i] = total
		msgDescs[i] = uint64(nd)
	}
	// Publish in-flight before checking dead (the revoke protocol's
	// mirror image): a racing revoke either sees our count and refuses,
	// or has already marked the grant dead and we abort here.
	g.inflight.Add(int64(n))
	if g.dead.Load() {
		g.inflight.Add(-int64(n))
		return fail(api.ErrInvalidValue)
	}
	sent, st := mon.ringEnqueue(from, req.Args[0], sender, meas, g.ID, n,
		func(i int, dst []byte) api.Error {
			copy(dst, msgs[i*api.RingMsgSize:])
			return api.OK
		})
	if st != api.OK {
		g.inflight.Add(-int64(n))
		return fail(st)
	}
	if int(sent) < n {
		g.inflight.Add(-int64(n - int(sent))) // ring filled up mid-batch
	}
	if t := mon.tele; t != nil {
		var total uint64
		for i := uint64(0); i < sent; i++ {
			total += msgBytes[i]
			t.bulkDescs.ObserveOn(from, msgDescs[i])
		}
		t.bulkBytes.Add(from, total)
	}
	return ok(sent)
}

// hBulkRecv is the dual-domain scatter-gather recv handler: drain the
// run of descriptor records for the named grant at the ring head
// (stopping early at a plain message or one for another grant) and
// release their in-flight pins. The caller must be both the ring's
// consumer and a grant endpoint.
func hBulkRecv(mon *Monitor, req api.Request, ctx *callContext) api.Response {
	max, okCount := batchLen(req.Args[2])
	if !okCount {
		return fail(api.ErrInvalidValue)
	}
	g := mon.peekGrant(req.Args[3])
	if g == nil {
		return fail(api.ErrInvalidValue)
	}
	var caller uint64 = api.DomainOS
	if ctx != nil {
		caller = ctx.enclave.ID
	}
	if !g.isEndpoint(caller) {
		return fail(api.ErrUnauthorized)
	}
	r, st := mon.lookupRing(req.Args[0])
	if st != api.OK {
		return fail(st)
	}
	defer r.mu.Unlock()
	if r.Consumer != caller {
		return fail(api.ErrUnauthorized)
	}
	if r.count == 0 {
		return fail(api.ErrInvalidState)
	}
	n := r.headRunLocked(g.ID, max)
	if n == 0 {
		return fail(api.ErrInvalidValue) // head message is not this grant's
	}
	out := r.ringRecords(n)
	if ctx != nil {
		if !mon.writeEnclave(ctx.enclave, req.Args[1], out) {
			return fail(api.ErrInvalidValue)
		}
	} else {
		if !mon.osOwnsRange(req.Args[1], uint64(len(out))) {
			return fail(api.ErrInvalidValue)
		}
		if err := mon.machine.Mem.WriteBytes(req.Args[1], out); err != nil {
			return fail(api.ErrInvalidValue)
		}
	}
	r.popLocked(n)
	g.inflight.Add(-int64(n))
	if t := mon.tele; t != nil {
		shard := 0
		if ctx != nil {
			shard = ctx.core.ID
		}
		t.ringRecvBatch.ObserveOn(shard, uint64(n))
		t.ringDepth.Add(-int64(n))
	}
	return ok(uint64(n))
}

// grantBytesForEnclave serves FieldEnclaveGrants: the grants the caller
// is an endpoint of, in creation order, as grant id[8] ‖ role[8] ‖
// byte size[8] entries (role 0 = consumer, 1 = producer).
func (mon *Monitor) grantBytesForEnclave(eid uint64) []byte {
	type entry struct {
		seq  uint64
		id   uint64
		role uint64
		size uint64
	}
	var entries []entry
	mon.objMu.RLock()
	for _, g := range mon.grants {
		if g.Consumer == eid {
			entries = append(entries, entry{seq: g.seq, id: g.ID, role: 0, size: g.bytes()})
		}
		if g.Producer == eid {
			entries = append(entries, entry{seq: g.seq, id: g.ID, role: 1, size: g.bytes()})
		}
	}
	mon.objMu.RUnlock()
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0 && entries[j-1].seq > entries[j].seq; j-- {
			entries[j-1], entries[j] = entries[j], entries[j-1]
		}
	}
	out := make([]byte, 0, len(entries)*24)
	var word [8]byte
	for _, en := range entries {
		binary.LittleEndian.PutUint64(word[:], en.id)
		out = append(out, word[:]...)
		binary.LittleEndian.PutUint64(word[:], en.role)
		out = append(out, word[:]...)
		binary.LittleEndian.PutUint64(word[:], en.size)
		out = append(out, word[:]...)
	}
	return out
}
