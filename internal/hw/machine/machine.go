// Package machine assembles the simulated hardware platform: SRV64
// cores with per-core TLBs and L1 caches, a shared L2/LLC, sparse
// physical memory, DRAM regions or PMP as the isolation primitive, a
// DMA engine, and trap dispatch into machine-mode firmware.
//
// This package is the reproduction's substitute for the RISC-V hardware
// the paper's security monitor runs on (see DESIGN.md §2): the security
// monitor registers itself as the Firmware trap handler and manipulates
// cores, translation state and physical memory with M-mode authority,
// while untrusted OS code is confined to the S/U-mode access paths this
// package exposes.
package machine

import (
	"fmt"

	"sanctorum/internal/hw/cache"
	"sanctorum/internal/hw/dram"
	"sanctorum/internal/hw/mem"
	"sanctorum/internal/hw/pmp"
	"sanctorum/internal/hw/tlb"
	"sanctorum/internal/hw/trng"
	"sanctorum/internal/isa"
)

// IsolationKind selects the platform's memory isolation primitive.
type IsolationKind int

// Isolation primitives.
const (
	// IsolationNone applies no physical memory checks: the insecure
	// baseline used for comparison experiments.
	IsolationNone IsolationKind = iota
	// IsolationSanctum isolates memory as DRAM regions with per-domain
	// region bitmaps and a private page walk for enclave VAs (§VII-A).
	IsolationSanctum
	// IsolationKeystone isolates memory with per-core PMP units (§VII-B).
	IsolationKeystone
)

func (k IsolationKind) String() string {
	switch k {
	case IsolationNone:
		return "none"
	case IsolationSanctum:
		return "sanctum"
	case IsolationKeystone:
		return "keystone"
	default:
		return fmt.Sprintf("isolation(%d)", int(k))
	}
}

// Disposition is the firmware's verdict on a trap.
type Disposition int

// Trap dispositions.
const (
	// DispResume continues executing on the core (the firmware handled
	// the event, e.g. delivered it to an enclave handler).
	DispResume Disposition = iota
	// DispReturnToOS stops the run loop and returns control to the
	// untrusted OS (Go-level caller), e.g. after an AEX.
	DispReturnToOS
	// DispHalt stops the core permanently.
	DispHalt
)

// Firmware handles machine-mode events: every trap and interrupt on any
// core lands here first, exactly as all events reach the security
// monitor before any untrusted software (paper Fig 1).
type Firmware interface {
	HandleTrap(c *Core, tr *isa.Trap) Disposition
}

// Config describes a machine.
type Config struct {
	Cores      int
	DRAM       dram.Layout
	Kind       IsolationKind
	TLBEntries int
	L1         cache.Config
	L2         cache.Config
	Seed       []byte // deterministic entropy seed; nil for host CSPRNG
}

// DefaultConfig returns a 2-core machine with the default DRAM layout
// and modest cache sizes. The L2 partition function is installed by
// New when the Sanctum isolation kind is selected.
func DefaultConfig(kind IsolationKind) Config {
	return Config{
		Cores:      2,
		DRAM:       dram.DefaultLayout(),
		Kind:       kind,
		TLBEntries: 32,
		L1:         cache.Config{Sets: 64, Ways: 4, LineBits: 6, HitCycles: 2, MissCycles: 0},
		L2:         cache.Config{Sets: 1024, Ways: 8, LineBits: 6, HitCycles: 12, MissCycles: 100},
		Seed:       []byte("sanctorum-sim"),
	}
}

// Machine is the simulated hardware platform.
type Machine struct {
	Mem      *mem.Phys
	DRAM     dram.Layout
	L2       *cache.Cache
	Kind     IsolationKind
	Cores    []*Core
	Firmware Firmware
	Entropy  trng.Source

	// DMAAllowed is the SM-installed DMA filter (§IV-B1: the SM must be
	// able to restrict DMA). nil denies all DMA.
	DMAAllowed func(pa, n uint64) bool
}

// New builds a machine from the configuration.
func New(cfg Config) (*Machine, error) {
	if err := cfg.DRAM.Validate(); err != nil {
		return nil, err
	}
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("machine: need at least one core")
	}
	l2cfg := cfg.L2
	if cfg.Kind == IsolationSanctum {
		// Page-colored LLC: each DRAM region owns a disjoint set group.
		layout := cfg.DRAM
		l2cfg.Partitions = layout.RegionCount
		l2cfg.PartitionOf = func(pa uint64) int {
			if r := layout.RegionOf(pa); r >= 0 {
				return r
			}
			return 0
		}
		if l2cfg.Sets%l2cfg.Partitions != 0 {
			return nil, fmt.Errorf("machine: %d L2 sets not divisible by %d regions",
				l2cfg.Sets, l2cfg.Partitions)
		}
	}
	var entropy trng.Source
	if cfg.Seed != nil {
		entropy = trng.NewDeterministic(cfg.Seed)
	} else {
		entropy = trng.NewSystem()
	}
	m := &Machine{
		Mem:     mem.New(cfg.DRAM.MemorySize()),
		DRAM:    cfg.DRAM,
		L2:      cache.New(l2cfg),
		Kind:    cfg.Kind,
		Entropy: entropy,
	}
	for i := 0; i < cfg.Cores; i++ {
		c := &Core{
			ID:      i,
			TLB:     tlb.New(cfg.TLBEntries),
			L1:      cache.New(cfg.L1),
			machine: m,
		}
		if cfg.Kind == IsolationKeystone {
			c.PMP = new(pmp.Unit)
		}
		m.Cores = append(m.Cores, c)
	}
	return m, nil
}

// Core is one simulated hart plus the per-core hardware the paper's
// threat model names: TLB, private L1, timer, and the isolation state
// that the security monitor programs on protection-domain switches.
type Core struct {
	ID  int
	CPU isa.CPU
	TLB *tlb.TLB
	L1  *cache.Cache

	// Satp is the page-table root PPN for non-enclave VAs (and for all
	// VAs under Keystone, where the enclave brings its own table). Zero
	// means bare (identity) translation.
	Satp uint64

	// Sanctum per-core isolation registers (§VII-A).
	ESatp      uint64      // enclave page-table root for evrange
	EvBase     uint64      // enclave virtual range base
	EvMask     uint64      // enclave virtual range mask
	OSRegions  dram.Bitmap // DRAM regions the OS domain may touch
	EncRegions dram.Bitmap // DRAM regions the running enclave may touch

	// Keystone per-core PMP unit (nil unless IsolationKeystone).
	PMP *pmp.Unit

	// EnclaveMode is set by the SM while the core runs enclave code.
	EnclaveMode bool

	// TimerCmp fires a timer interrupt when CPU.Cycles passes it; zero
	// disables the timer. The untrusted OS uses this to force an AEX.
	TimerCmp uint64

	pendingIRQ bool // external interrupt latched by InterruptCore

	machine *Machine
}

// Machine returns the machine this core belongs to.
func (c *Core) Machine() *Machine { return c.machine }

// InEvrange reports whether va falls in the enclave virtual range
// programmed on this core.
func (c *Core) InEvrange(va uint64) bool {
	return c.EvMask != 0 && va&c.EvMask == c.EvBase
}

// ClearMicroarch flushes the core's TLB and private L1 cache: the
// "cleaning" of a core resource on protection-domain re-allocation.
func (c *Core) ClearMicroarch() {
	c.TLB.Flush()
	c.L1.FlushAll()
}

// ClearArchState zeroes the architectural registers, as the SM must do
// before handing a core from an enclave to the OS.
func (c *Core) ClearArchState() {
	c.CPU.Regs = [isa.NumRegs]uint64{}
}
