// Package machine assembles the simulated hardware platform: SRV64
// cores with per-core TLBs and L1 caches, a shared L2/LLC, sparse
// physical memory, DRAM regions or PMP as the isolation primitive, a
// DMA engine, and trap dispatch into machine-mode firmware.
//
// This package is the reproduction's substitute for the RISC-V hardware
// the paper's security monitor runs on (see DESIGN.md §2): the security
// monitor registers itself as the Firmware trap handler and manipulates
// cores, translation state and physical memory with M-mode authority,
// while untrusted OS code is confined to the S/U-mode access paths this
// package exposes.
package machine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sanctorum/internal/hw/cache"
	"sanctorum/internal/hw/dram"
	"sanctorum/internal/hw/mem"
	"sanctorum/internal/hw/pmp"
	"sanctorum/internal/hw/tlb"
	"sanctorum/internal/hw/trng"
	"sanctorum/internal/isa"
)

// IsolationKind selects the platform's memory isolation primitive.
type IsolationKind int

// Isolation primitives.
const (
	// IsolationNone applies no physical memory checks: the insecure
	// baseline used for comparison experiments.
	IsolationNone IsolationKind = iota
	// IsolationSanctum isolates memory as DRAM regions with per-domain
	// region bitmaps and a private page walk for enclave VAs (§VII-A).
	IsolationSanctum
	// IsolationKeystone isolates memory with per-core PMP units (§VII-B).
	IsolationKeystone
)

func (k IsolationKind) String() string {
	switch k {
	case IsolationNone:
		return "none"
	case IsolationSanctum:
		return "sanctum"
	case IsolationKeystone:
		return "keystone"
	default:
		return fmt.Sprintf("isolation(%d)", int(k))
	}
}

// Disposition is the firmware's verdict on a trap.
type Disposition int

// Trap dispositions.
const (
	// DispResume continues executing on the core (the firmware handled
	// the event, e.g. delivered it to an enclave handler).
	DispResume Disposition = iota
	// DispReturnToOS stops the run loop and returns control to the
	// untrusted OS (Go-level caller), e.g. after an AEX.
	DispReturnToOS
	// DispHalt stops the core permanently.
	DispHalt
)

// Firmware handles machine-mode events: every trap and interrupt on any
// core lands here first, exactly as all events reach the security
// monitor before any untrusted software (paper Fig 1).
type Firmware interface {
	HandleTrap(c *Core, tr *isa.Trap) Disposition
}

// Config describes a machine.
type Config struct {
	Cores      int
	DRAM       dram.Layout
	Kind       IsolationKind
	TLBEntries int
	L1         cache.Config
	L2         cache.Config
	Seed       []byte // deterministic entropy seed; nil for host CSPRNG

	// DisableFastPath makes every core use the reference execution
	// path (per-step Decode, full TLB probe, page-map access on every
	// byte). Modeled cycles and all microarchitectural observables are
	// identical either way — equivalence tests run the same workload
	// both ways and compare — so this exists only for those tests and
	// for bisecting fast-path bugs.
	DisableFastPath bool

	// DisableBlockEngine keeps the fast path per-instruction, without
	// the trace-compiled block tier (block.go). Like DisableFastPath it
	// changes no modeled observable; it exists for equivalence testing
	// and for bisecting block-engine bugs.
	DisableBlockEngine bool

	// BlockThreshold overrides the execution count at which a hot
	// control-transfer target is block-compiled; 0 selects the default.
	// Tests use low values to force promotion on short workloads.
	BlockThreshold int
}

// DefaultConfig returns a 2-core machine with the default DRAM layout
// and modest cache sizes. The L2 partition function is installed by
// New when the Sanctum isolation kind is selected.
func DefaultConfig(kind IsolationKind) Config {
	return Config{
		Cores:      2,
		DRAM:       dram.DefaultLayout(),
		Kind:       kind,
		TLBEntries: 32,
		L1:         cache.Config{Sets: 64, Ways: 4, LineBits: 6, HitCycles: 2, MissCycles: 0},
		L2:         cache.Config{Sets: 1024, Ways: 8, LineBits: 6, HitCycles: 12, MissCycles: 100},
		Seed:       []byte("sanctorum-sim"),
	}
}

// Machine is the simulated hardware platform.
type Machine struct {
	Mem      *mem.Phys
	DRAM     dram.Layout
	L2       *cache.Cache
	Kind     IsolationKind
	Cores    []*Core
	Firmware Firmware
	Entropy  trng.Source

	// DMAAllowed is the SM-installed DMA filter (§IV-B1: the SM must be
	// able to restrict DMA). nil denies all DMA.
	DMAAllowed func(pa, n uint64) bool

	// cyclePub mirrors each core's CPU.Cycles into a padded atomic
	// slot so the telemetry clock can be read from any goroutine while
	// cores run in parallel mode. Cores publish at trap dispatch and
	// at Run exit; between publishes the mirror lags but never moves
	// backwards, so CycleNow is monotone per observer and — being
	// derived purely from modeled cycles — bit-identical across
	// deterministic replays.
	cyclePub []cycleSlot
}

type cycleSlot struct {
	v atomic.Uint64
	_ [56]byte
}

// CycleNow sums the published per-core cycle counters. It is the time
// base for every telemetry stamp: simulated cycles, never wall clock.
func (m *Machine) CycleNow() uint64 {
	var sum uint64
	for i := range m.cyclePub {
		sum += m.cyclePub[i].v.Load()
	}
	return sum
}

// publishCycles mirrors c's cycle counter; called only from c's own
// run goroutine.
func (m *Machine) publishCycles(c *Core) {
	m.cyclePub[c.ID].v.Store(c.CPU.Cycles)
}

// flushDecodeCaches drops every core's decoded-instruction cache. It
// is installed as the physical memory's code-write hook, so any write
// into a page feeding a decode cache — guest stores (self-modifying
// code), SM scrubs, DMA — lands here. The generations are atomics, so
// the hook is safe to fire from any hart.
func (m *Machine) flushDecodeCaches() {
	for _, c := range m.Cores {
		c.icGen.Add(1)
	}
}

// SetConcurrent prepares the machine for genuinely parallel multi-hart
// execution: the shared L2 starts serializing its accesses. Per-core
// state needs no locks (each core is driven by one goroutine) and
// physical memory is always hart-safe. It is a one-way latch — once a
// machine has gone concurrent, OS goroutines may keep issuing monitor
// calls that touch the L2 after any particular parallel run ends, so
// the locking stays on. Deterministic single-goroutine machines never
// latch it and the PR 1 fast path is untouched.
func (m *Machine) SetConcurrent(on bool) {
	m.L2.SetShared(on)
}

// markCodePage records that a physical page feeds a decode cache.
func (m *Machine) markCodePage(pa uint64) {
	m.Mem.MarkCodePage(pa)
}

// New builds a machine from the configuration.
func New(cfg Config) (*Machine, error) {
	if err := cfg.DRAM.Validate(); err != nil {
		return nil, err
	}
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("machine: need at least one core")
	}
	l2cfg := cfg.L2
	if cfg.Kind == IsolationSanctum {
		// Page-colored LLC: each DRAM region owns a disjoint set group.
		layout := cfg.DRAM
		l2cfg.Partitions = layout.RegionCount
		l2cfg.PartitionOf = func(pa uint64) int {
			if r := layout.RegionOf(pa); r >= 0 {
				return r
			}
			return 0
		}
		if l2cfg.Sets%l2cfg.Partitions != 0 {
			return nil, fmt.Errorf("machine: %d L2 sets not divisible by %d regions",
				l2cfg.Sets, l2cfg.Partitions)
		}
	}
	var entropy trng.Source
	if cfg.Seed != nil {
		entropy = trng.NewDeterministic(cfg.Seed)
	} else {
		entropy = trng.NewSystem()
	}
	m := &Machine{
		Mem:     mem.New(cfg.DRAM.MemorySize()),
		DRAM:    cfg.DRAM,
		L2:      cache.New(l2cfg),
		Kind:    cfg.Kind,
		Entropy: entropy,
	}
	m.Mem.SetCodeWriteHook(m.flushDecodeCaches)
	m.cyclePub = make([]cycleSlot, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		c := &Core{
			ID:       i,
			TLB:      tlb.New(cfg.TLBEntries),
			L1:       cache.New(cfg.L1),
			machine:  m,
			fastPath: !cfg.DisableFastPath,
			sanctum:  cfg.Kind == IsolationSanctum,
			l1Hit:    cfg.L1.HitCycles,
			icache:   new([icEntries]icEntry),
		}
		c.icGen.Store(1)
		c.fetchWin.Reset(m.Mem)
		c.dataWin.Reset(m.Mem)
		if c.fastPath && !cfg.DisableBlockEngine {
			c.blockHot = defaultBlockHot
			if cfg.BlockThreshold > 0 {
				c.blockHot = uint16(cfg.BlockThreshold)
			}
			c.blocks = new([bcEntries]*block)
			c.icHot = new([icEntries]uint16)
			c.seqPC = ^uint64(0)
		}
		// Tearing down translations (core cleaning, shootdown on region
		// re-allocation) also drops the decoded-instruction cache.
		c.TLB.OnInvalidate = c.invalidateDecodeCache
		if cfg.Kind == IsolationKeystone {
			c.PMP = new(pmp.Unit)
		}
		m.Cores = append(m.Cores, c)
	}
	return m, nil
}

// Core is one simulated hart plus the per-core hardware the paper's
// threat model names: TLB, private L1, timer, and the isolation state
// that the security monitor programs on protection-domain switches.
type Core struct {
	ID  int
	CPU isa.CPU
	TLB *tlb.TLB
	L1  *cache.Cache

	// Satp is the page-table root PPN for non-enclave VAs (and for all
	// VAs under Keystone, where the enclave brings its own table). Zero
	// means bare (identity) translation.
	Satp uint64

	// Sanctum per-core isolation registers (§VII-A).
	ESatp      uint64      // enclave page-table root for evrange
	EvBase     uint64      // enclave virtual range base
	EvMask     uint64      // enclave virtual range mask
	OSRegions  dram.Bitmap // DRAM regions the OS domain may touch
	EncRegions dram.Bitmap // DRAM regions the running enclave may touch

	// Keystone per-core PMP unit (nil unless IsolationKeystone).
	PMP *pmp.Unit

	// EnclaveMode is set by the SM while the core runs enclave code.
	EnclaveMode bool

	// TimerCmp fires a timer interrupt when CPU.Cycles passes it; zero
	// disables the timer. The untrusted OS uses this to force an AEX.
	// It is owned by whoever drives the core: written only while the
	// core is outside Run (or by the firmware inside a trap).
	TimerCmp uint64

	// pending is the core's asynchronous-event word, polled once per
	// instruction: bit 0 latches an external interrupt (InterruptCore),
	// bit 1 flags a non-architectural IPI mailbox delivery. One atomic
	// load covers both, and on the host ISAs we target an atomic load
	// is a plain load, so cross-core preemption costs the hot loop
	// nothing. It sits among the hot fast-path fields; the cold IPI
	// mailbox state lives at the end of the struct.
	pending atomic.Uint32

	machine *Machine

	// Fast-path execution state. None of it is architectural and none
	// of it affects modeled cycles or cache/TLB statistics; it only
	// removes host-side work (map lookups, per-step Decode) from the
	// hot loop. fastPath selects it; Config.DisableFastPath clears it.
	fastPath bool
	sanctum  bool                // machine.Kind == IsolationSanctum, dereference-free
	l1Hit    uint64              // L1 hit latency, the cycle cost of every fast-path hit
	icGen    atomic.Uint64       // decode-cache generation; entries from older gens are dead
	icache   *[icEntries]icEntry // direct-mapped decoded-instruction cache, keyed by VA
	fetchTC  transCache
	loadTC   transCache
	storeTC  transCache
	dataRef  cache.LineRef // L1 line of the last data access
	fetchWin mem.Window    // last code page touched
	dataWin  mem.Window    // last data page touched
	irqTrap  isa.Trap      // reusable interrupt trap buffer

	// Block-engine state (block.go). seqPC tracks fetch sequentiality
	// so block lookup and heat counting run only at control-transfer
	// targets; blockHot is the promotion threshold (0 = engine off);
	// icHot are the heat counters, indexed like the decode cache.
	seqPC    uint64
	blockHot uint16
	blocks   *[bcEntries]*block
	icHot    *[icEntries]uint16
	brun     blockRun
	bstats   BlockStats

	// Cold cross-hart coordination state, kept at the end so it never
	// shares a cache line with the per-instruction fields above. ipi is
	// the core's inter-processor mailbox (shootdowns, view updates);
	// see ipi.go. runMu is held for the whole of Run, so whoever
	// acquires it owns the core's microarchitectural state — either the
	// core's own driver, or an IPI poster executing a request on an
	// idle core's behalf.
	ipi   ipiMailbox
	runMu sync.Mutex
}

// icEntries is the per-core decoded-instruction cache size (slots of
// one instruction word each, direct-mapped on the word's VA).
const icEntries = 1024

// icEntry caches everything about one instruction fetch: the decoded
// word plus the validity conditions under which the whole reference
// fetch pipeline — TLB probe, L1 access, page-map load, Decode — is
// guaranteed to reproduce exactly this outcome. When every generation
// matches, the fetch reduces to the same statistic updates the
// reference path would make (TLB hit, L1 hit with LRU touch) at a few
// nanoseconds; when any layer moved, the fetch re-runs that layer.
// The entry is exactly one host cache line (64 bytes): the hit check
// touches no second line. The TLB generation and the privilege mode
// are packed into one word (tgMode) — the pack is injective, so one
// equality compare validates both. The raw instruction word is not
// stored: Decode is lossless, so Instr.Encode reconstructs it on the
// cold illegal-instruction path.
type icEntry struct {
	va     uint64
	gen    uint64 // core's icGen: killed by code writes, TLB teardown, domain switches
	tgMode uint64 // TLB generation <<2 | privilege mode at validation
	root   uint64 // page-table root the translation came from
	pa     uint64
	in     isa.Instr
	lref   cache.LineRef // L1 line holding the instruction word
}

// tgMode packs a TLB generation and a privilege mode into one
// comparable word. Priv fits in two bits; generations stay far below
// 2^62 (one bump per TLB insert or flush).
func tgMode(tlbGen uint64, mode isa.Priv) uint64 { return tlbGen<<2 | uint64(mode) }

// transCache is a one-entry last-translation cache in front of the TLB
// for one access class. It short-circuits only accesses the TLB itself
// would serve: the entry is dead as soon as the TLB's generation moves
// (any Insert, Flush or FlushIf), and it still charges the TLB hit
// statistic, so Hits/Misses stay bit-identical to the reference path.
type transCache struct {
	gen    uint64 // TLB generation the entry was filled at; 0 = invalid
	vpn    uint64
	paPage uint64 // physical page base
	root   uint64 // page-table root the translation came from
	mode   isa.Priv
}

// invalidateDecodeCache drops the core's decoded-instruction cache; it
// is wired to the TLB's OnInvalidate hook so translation teardown
// (domain switches, shootdowns) also kills cached decodes.
func (c *Core) invalidateDecodeCache() { c.icGen.Add(1) }

// Machine returns the machine this core belongs to.
func (c *Core) Machine() *Machine { return c.machine }

// InEvrange reports whether va falls in the enclave virtual range
// programmed on this core.
func (c *Core) InEvrange(va uint64) bool {
	return c.EvMask != 0 && va&c.EvMask == c.EvBase
}

// ClearMicroarch flushes the core's TLB and private L1 cache: the
// "cleaning" of a core resource on protection-domain re-allocation.
// The TLB flush also drops the decoded-instruction cache and the
// last-translation caches, so no fast-path state crosses a domain
// switch.
func (c *Core) ClearMicroarch() {
	c.TLB.Flush()
	c.L1.FlushAll()
}

// ClearArchState zeroes the architectural registers, as the SM must do
// before handing a core from an enclave to the OS.
func (c *Core) ClearArchState() {
	c.CPU.Regs = [isa.NumRegs]uint64{}
}
