package machine

import (
	"fmt"
	"sync"
)

// SchedMode selects how the Scheduler drives the machine's harts.
type SchedMode int

// Scheduler modes.
const (
	// SchedDeterministic interleaves the cores round-robin on one
	// goroutine, a fixed quantum of host-driver slices at a time. Every
	// architectural observable — registers, cycles, cache and TLB
	// statistics, trap order — is a pure function of the inputs, so
	// tests and experiments are bit-reproducible.
	SchedDeterministic SchedMode = iota
	// SchedParallel runs one goroutine per core: genuinely concurrent
	// multi-hart execution for throughput. Aggregate behavior is
	// correct under the monitor's invariants but interleaving (and so
	// per-run statistics) is host-scheduling dependent.
	SchedParallel
)

func (m SchedMode) String() string {
	switch m {
	case SchedDeterministic:
		return "deterministic"
	case SchedParallel:
		return "parallel"
	default:
		return fmt.Sprintf("sched(%d)", int(m))
	}
}

// Scheduler drives all (or a subset of) the machine's cores through a
// per-core driver function, in either execution mode. It is the
// machine-layer half of multi-hart execution: the OS layer decides what
// runs on each core (internal/os.Scheduler); this type decides how the
// per-core drivers share host time.
type Scheduler struct {
	M    *Machine
	Mode SchedMode
}

// NewScheduler returns a scheduler for the machine. Parallel mode flips
// the machine into concurrent operation (shared-structure locking) for
// the duration of each Drive call.
func NewScheduler(m *Machine, mode SchedMode) *Scheduler {
	return &Scheduler{M: m, Mode: mode}
}

// Drive runs one driver slice per core until every driver has reported
// completion. slice(coreID) performs one bounded unit of work on the
// core — typically program the core, Run it for a quantum of steps, and
// service the result — and returns false when that core has nothing
// left to do.
//
// In deterministic mode the cores are sliced round-robin in core-ID
// order on the calling goroutine: core i's k-th slice always follows
// core i-1's k-th slice, so the interleaving (and everything downstream
// of it) is reproducible. In parallel mode each core's slices run on a
// dedicated goroutine until done; Drive returns when all goroutines
// finish. In both modes slice is invoked for one core from at most one
// goroutine at a time.
func (s *Scheduler) Drive(coreIDs []int, slice func(coreID int) bool) {
	switch s.Mode {
	case SchedParallel:
		s.M.SetConcurrent(true)
		var wg sync.WaitGroup
		for _, id := range coreIDs {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				for slice(id) {
				}
			}(id)
		}
		wg.Wait()
	default:
		live := make(map[int]bool, len(coreIDs))
		for _, id := range coreIDs {
			live[id] = true
		}
		remaining := len(live)
		for remaining > 0 {
			for _, id := range coreIDs {
				if !live[id] {
					continue
				}
				if !slice(id) {
					live[id] = false
					remaining--
				}
			}
		}
	}
}
