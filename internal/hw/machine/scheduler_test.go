package machine

import (
	"sync/atomic"
	"testing"

	"sanctorum/internal/asm"
	"sanctorum/internal/hw/mem"
	"sanctorum/internal/hw/pt"
	"sanctorum/internal/isa"
)

// loopMachine builds an n-core machine where every core runs its own
// copy of a tight S-mode ALU loop on private pages (no firmware; the
// cores never trap).
func loopMachine(t testing.TB, cores int) *Machine {
	t.Helper()
	cfg := DefaultConfig(IsolationNone)
	cfg.Cores = cores
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nextPPN := cfg.DRAM.Base(1) >> mem.PageBits
	alloc := func() (uint64, error) {
		p := nextPPN
		nextPPN++
		return p, nil
	}
	for i := 0; i < cores; i++ {
		builder, err := pt.NewBuilder(m.Mem, alloc)
		if err != nil {
			t.Fatal(err)
		}
		const codeVA, dataVA = uint64(0x10000), uint64(0x20000)
		prog := asm.New().
			Li64(isa.RegS0, dataVA).
			Label("loop").
			I(isa.OpLD, isa.RegT1, isa.RegS0, 0, 0).
			I(isa.OpADD, isa.RegT2, isa.RegT2, isa.RegT1, 0).
			I(isa.OpSD, 0, isa.RegS0, isa.RegT2, 8).
			I(isa.OpADDI, isa.RegT0, isa.RegT0, 0, 1).
			J("loop")
		bin, err := prog.Assemble(codeVA)
		if err != nil {
			t.Fatal(err)
		}
		codePPN, _ := alloc()
		dataPPN, _ := alloc()
		if err := builder.Map(codeVA, codePPN<<mem.PageBits, pt.R|pt.X); err != nil {
			t.Fatal(err)
		}
		if err := builder.Map(dataVA, dataPPN<<mem.PageBits, pt.R|pt.W); err != nil {
			t.Fatal(err)
		}
		if err := m.Mem.WriteBytes(codePPN<<mem.PageBits, bin); err != nil {
			t.Fatal(err)
		}
		c := m.Cores[i]
		c.Satp = builder.Root
		c.CPU.Mode = isa.PrivS
		c.CPU.PC = codeVA
	}
	return m
}

// TestSchedulerDeterministicOrder checks that deterministic Drive
// slices the cores round-robin in core-ID order and stops each core
// exactly when its driver reports completion.
func TestSchedulerDeterministicOrder(t *testing.T) {
	m := loopMachine(t, 3)
	var order []int
	slices := map[int]int{}
	s := NewScheduler(m, SchedDeterministic)
	s.Drive([]int{0, 1, 2}, func(coreID int) bool {
		order = append(order, coreID)
		slices[coreID]++
		if _, err := m.Run(coreID, 100); err != nil {
			t.Fatal(err)
		}
		return slices[coreID] < coreID+2 // core i runs i+2 slices
	})
	want := []int{0, 1, 2, 0, 1, 2, 1, 2, 2}
	if len(order) != len(want) {
		t.Fatalf("slice order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("slice order %v, want %v", order, want)
		}
	}
	for id, c := range m.Cores {
		wantSteps := uint64(100 * (id + 2))
		if c.CPU.Cycles == 0 {
			t.Fatalf("core %d never ran", id)
		}
		if got := c.CPU.Regs[isa.RegT0]; got > wantSteps {
			t.Fatalf("core %d retired too much: t0=%d", id, got)
		}
	}
}

// TestSchedulerParallelRunsAllCores drives four cores in parallel mode
// and requires every core to have made progress.
func TestSchedulerParallelRunsAllCores(t *testing.T) {
	m := loopMachine(t, 4)
	var total atomic.Int64
	slices := make([]atomic.Int64, 4)
	s := NewScheduler(m, SchedParallel)
	s.Drive([]int{0, 1, 2, 3}, func(coreID int) bool {
		res, err := m.Run(coreID, 5_000)
		if err != nil {
			t.Error(err)
			return false
		}
		total.Add(int64(res.Steps))
		return slices[coreID].Add(1) < 10
	})
	if got := total.Load(); got != 4*10*5_000 {
		t.Fatalf("retired %d instructions in parallel mode, want %d", got, 4*10*5_000)
	}
	for i := range m.Cores {
		if m.Cores[i].CPU.Cycles == 0 {
			t.Fatalf("core %d never ran", i)
		}
	}
}

// TestIPIIdleCoreExecutesSynchronously posts to a core that is not
// running and requires the request to have run before PostIPI returns.
func TestIPIIdleCoreExecutesSynchronously(t *testing.T) {
	m := loopMachine(t, 2)
	ran := false
	m.PostIPI(1, func(c *Core) {
		if c.ID != 1 {
			t.Errorf("IPI ran on core %d", c.ID)
		}
		ran = true
	})
	if !ran {
		t.Fatal("IPI to idle core did not execute synchronously")
	}
}

// TestIPIRunningCoreAcknowledgesAtBoundary targets a running core with
// RunOn from another goroutine: the request must execute on the core
// between instructions (or, if the run already finished, on the idle
// core), and RunOn must not return before the acknowledgment.
func TestIPIRunningCoreAcknowledgesAtBoundary(t *testing.T) {
	m := loopMachine(t, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Long-running slice; the IPI is typically served mid-run.
		if _, err := m.Run(0, 5_000_000); err != nil {
			t.Error(err)
		}
	}()
	acked := make(chan uint64, 1)
	m.RunOn(0, NoHart, func(c *Core) {
		acked <- c.CPU.Cycles
	})
	select {
	case <-acked:
	default:
		t.Fatal("RunOn returned before the IPI was acknowledged")
	}
	<-done
}

// TestInterruptCoreCrossGoroutine latches an external interrupt from
// another goroutine; without firmware the run loop must surface it as
// an error (trap with no firmware), proving delivery at an instruction
// boundary rather than a lost or torn latch.
func TestInterruptCoreCrossGoroutine(t *testing.T) {
	m := loopMachine(t, 1)
	errc := make(chan error, 1)
	go func() {
		_, err := m.Run(0, 1_000_000_000)
		errc <- err
	}()
	m.InterruptCore(0)
	if err := <-errc; err != ErrNoFirmware {
		t.Fatalf("run after cross-goroutine interrupt: %v, want ErrNoFirmware", err)
	}
}
