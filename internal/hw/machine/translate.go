package machine

import (
	"sanctorum/internal/hw/cache"
	"sanctorum/internal/hw/dram"
	"sanctorum/internal/hw/mem"
	"sanctorum/internal/hw/pmp"
	"sanctorum/internal/hw/pt"
	"sanctorum/internal/hw/tlb"
	"sanctorum/internal/isa"
)

// ptAccessPerm maps a page-table access class to the PMP permission it
// requires.
func ptAccessPerm(acc pt.Access) pmp.Perm {
	switch acc {
	case pt.Fetch:
		return pmp.X
	case pt.Store:
		return pmp.W
	default:
		return pmp.R
	}
}

func pmpMode(p isa.Priv) pmp.Mode {
	switch p {
	case isa.PrivM:
		return pmp.ModeM
	case isa.PrivS:
		return pmp.ModeS
	default:
		return pmp.ModeU
	}
}

// physOK applies the platform's isolation primitive to a physical
// access. regions is the Sanctum region bitmap of the domain on whose
// behalf the access happens (ignored for other isolation kinds).
func (c *Core) physOK(pa uint64, n uint64, acc pt.Access, mode isa.Priv, regions dram.Bitmap) bool {
	if pa+n < pa || pa+n > c.machine.Mem.Size() {
		return false
	}
	switch c.machine.Kind {
	case IsolationSanctum:
		if mode == isa.PrivM {
			return true
		}
		return regions.ContainsRange(c.machine.DRAM, pa, n)
	case IsolationKeystone:
		return c.PMP.Check(pa, n, ptAccessPerm(acc), pmpMode(mode))
	default:
		return true
	}
}

// walkRoot selects the page-table root and the Sanctum region bitmap
// governing a virtual access on this core. Under Sanctum, enclave-mode
// accesses inside evrange use the enclave's private tables and regions
// (the private page walk of §VII-A); everything else uses the OS root.
func (c *Core) walkRoot(va uint64) (root uint64, regions dram.Bitmap) {
	if c.sanctum && c.EnclaveMode && c.InEvrange(va) {
		return c.ESatp, c.EncRegions
	}
	return c.Satp, c.OSRegions
}

// translate resolves va for an access of width bytes of the given
// access class and privilege mode, returning the physical address and
// the cycle cost of any page walk. The width is what the isolation
// primitive checks: a 1-byte load at the last byte of a permitted
// region must pass, and an 8-byte load there must fault.
func (c *Core) translate(va uint64, width uint64, acc pt.Access, mode isa.Priv) (pa uint64, cycles uint64, fault *isa.MemFault) {
	root, regions := c.walkRoot(va)

	// Bare translation: identity map, physical checks still apply.
	if root == 0 {
		if !c.physOK(va, width, acc, mode, regions) {
			return 0, 0, &isa.MemFault{Kind: isa.FaultAccess, Addr: va}
		}
		return va, 0, nil
	}

	vpn := (va & pt.VAMask) >> mem.PageBits
	if e, ok := c.TLB.Lookup(vpn); ok {
		if !tlbPermOK(e.Perms, acc, mode) {
			return 0, 0, &isa.MemFault{Kind: isa.FaultPage, Addr: va}
		}
		return e.PPN<<mem.PageBits | va&mem.PageMask, 0, nil
	}

	// Hardware page walk. Each PTE fetch goes through the shared L2 so
	// walk latency is modeled; PTE reads are checked against the active
	// domain's physical permissions, which is how Sanctum guarantees the
	// walk itself cannot escape the protection domain.
	var walkCycles uint64
	read := func(pteAddr uint64) (uint64, bool) {
		if !c.physOK(pteAddr, 8, pt.Load, mode, regions) {
			return 0, false
		}
		_, cyc := c.machine.L2.Access(pteAddr)
		walkCycles += cyc
		v, err := c.machine.Mem.Load(pteAddr, 8)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	res, wfault := pt.Walk(read, root, va&pt.VAMask, acc, mode == isa.PrivU)
	if wfault != nil {
		kind := isa.FaultPage
		if wfault.Kind == pt.FaultPhysAccess {
			kind = isa.FaultAccess
		}
		return 0, walkCycles, &isa.MemFault{Kind: kind, Addr: va}
	}
	if !c.physOK(res.PA, width, acc, mode, regions) {
		return 0, walkCycles, &isa.MemFault{Kind: isa.FaultAccess, Addr: va}
	}
	c.TLB.Insert(tlb.Entry{VPN: vpn, PPN: res.PA >> mem.PageBits, Perms: res.Perms})
	return res.PA, walkCycles, nil
}

// translateFast is translate through a one-entry last-translation
// cache. The short-circuit fires only for accesses the TLB itself
// would serve with the same entry — same VPN, same mode, same walk
// root, and no TLB mutation since the fill — and it charges the TLB
// hit statistic, so the observable TLB state is identical to the
// reference path. Everything else falls through to translate, which
// refills the cache on success.
func (c *Core) translateFast(tc *transCache, va uint64, width uint64, acc pt.Access) (uint64, uint64, *isa.MemFault) {
	mode := c.CPU.Mode
	root, _ := c.walkRoot(va)
	if root != 0 {
		vpn := (va & pt.VAMask) >> mem.PageBits
		if tc.gen == c.TLB.Gen() && tc.vpn == vpn && tc.root == root && tc.mode == mode {
			c.TLB.Hits++
			return tc.paPage | va&mem.PageMask, 0, nil
		}
		pa, cycles, fault := c.translate(va, width, acc, mode)
		if fault == nil {
			// The TLB now holds this VPN with perms that pass for this
			// access class and mode, so future same-page accesses are
			// guaranteed TLB hits until the generation moves.
			*tc = transCache{
				gen:    c.TLB.Gen(),
				vpn:    vpn,
				paPage: pa &^ uint64(mem.PageMask),
				root:   root,
				mode:   mode,
			}
		}
		return pa, cycles, fault
	}
	return c.translate(va, width, acc, mode)
}

func tlbPermOK(perms uint64, acc pt.Access, mode isa.Priv) bool {
	if mode == isa.PrivU && perms&pt.U == 0 {
		return false
	}
	if mode != isa.PrivU && perms&pt.U != 0 {
		return false
	}
	switch acc {
	case pt.Fetch:
		return perms&pt.X != 0
	case pt.Load:
		return perms&pt.R != 0
	default:
		return perms&pt.W != 0
	}
}

// cachedAccess charges the L1/L2 hierarchy for a data or fetch access.
func (c *Core) cachedAccess(pa uint64) uint64 {
	hit, cyc := c.L1.Access(pa)
	if hit {
		return cyc
	}
	_, l2cyc := c.machine.L2.Access(pa)
	return cyc + l2cyc
}

// cachedAccessRef is cachedAccess through a LineRef, so the next
// same-line access can skip the L1 set scan via TouchFast.
func (c *Core) cachedAccessRef(pa uint64, ref *cache.LineRef) uint64 {
	hit, cyc := c.L1.AccessRef(pa, ref)
	if hit {
		return cyc
	}
	_, l2cyc := c.machine.L2.Access(pa)
	return cyc + l2cyc
}
