package machine

import (
	"testing"

	"sanctorum/internal/asm"
	"sanctorum/internal/hw/dram"
	"sanctorum/internal/hw/mem"
	"sanctorum/internal/hw/pmp"
	"sanctorum/internal/hw/pt"
	"sanctorum/internal/hw/tlb"
	"sanctorum/internal/isa"
)

// The fast-path execution engine (decoded-instruction cache, indexed
// TLB with last-translation caches, page windows) must be
// architecturally invisible: same final state, same modeled cycles,
// same TLB and cache statistics as the reference engine, including
// under self-modifying code and translation teardown. These tests pin
// that invariant.

// newEquivMachine builds one machine of each engine flavor with an
// identical paged S-mode workload loaded.
func newEquivMachine(t *testing.T, kind IsolationKind, reference bool, prog *asm.Program) (*Machine, *Core) {
	t.Helper()
	cfg := smallConfig(kind)
	cfg.DisableFastPath = reference
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	next := uint64(0x20000) >> mem.PageBits
	alloc := func() (uint64, error) { p := next; next++; return p, nil }
	b, err := pt.NewBuilder(m.Mem, alloc)
	if err != nil {
		t.Fatal(err)
	}
	const codeVA, dataVA = uint64(0x10000), uint64(0x40000)
	// Two code pages (writable, for the self-modifying sequence) and
	// three data pages to force TLB fills beyond the first access.
	for p := uint64(0); p < 2; p++ {
		if err := b.Map(codeVA+p*mem.PageSize, 0x10000+p*mem.PageSize, pt.R|pt.W|pt.X); err != nil {
			t.Fatal(err)
		}
	}
	for p := uint64(0); p < 3; p++ {
		if err := b.Map(dataVA+p*mem.PageSize, 0x50000+p*mem.PageSize, pt.R|pt.W); err != nil {
			t.Fatal(err)
		}
	}
	bin, err := prog.Assemble(codeVA)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Mem.WriteBytes(0x10000, bin); err != nil {
		t.Fatal(err)
	}
	c := m.Cores[0]
	c.Satp = b.Root
	c.CPU.Mode = isa.PrivS
	c.CPU.PC = codeVA
	switch kind {
	case IsolationSanctum:
		c.OSRegions = m.DRAM.Full()
	case IsolationKeystone:
		if err := c.PMP.Configure(0, pmp.Entry{
			Valid: true, Base: 0, Size: m.Mem.Size(), Perm: pmp.R | pmp.W | pmp.X,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return m, c
}

// mixedWorkload is the equivalence program: ALU traffic, loads and
// stores across several pages, branches, a cycle-counter read, a
// self-modifying store over upcoming code, an ECALL and a misaligned
// load (both skipped by the firmware), then HALT.
func mixedWorkload() *asm.Program {
	p := asm.New()
	p.Li64(isa.RegS0, 0x40000) // data page 0
	p.Li(isa.RegT0, 0)         // loop counter
	p.Li(isa.RegT1, 25)        // iterations
	p.Label("loop")
	// Strided stores/loads across three data pages.
	p.I(isa.OpMUL, 8, isa.RegT0, isa.RegT0, 0) // s0' = i*i (reuses x8 below)
	p.I(isa.OpANDI, 8, 8, 0, 0x1FF8)
	p.I(isa.OpADD, 8, 8, isa.RegS0, 0)
	p.I(isa.OpSD, 0, 8, isa.RegT0, 0x2000)
	p.I(isa.OpLD, 9, 8, 0, 0x2000)
	p.I(isa.OpADD, 10, 10, 9, 0)
	p.I(isa.OpRDCYCLE, 11, 0, 0, 0)
	p.I(isa.OpXOR, 12, 12, 11, 0)
	p.I(isa.OpADDI, isa.RegT0, isa.RegT0, 0, 1)
	p.Branch(isa.OpBLT, isa.RegT0, isa.RegT1, "loop")
	// Self-modifying code: overwrite "patchme" (initially LI x13, 1)
	// with LI x13, 42, then execute it.
	p.La(14, "patchme")
	p.La(15, "newword")
	p.I(isa.OpLD, 16, 15, 0, 0)
	p.I(isa.OpSD, 0, 14, 16, 0)
	p.Label("patchme")
	p.Li(13, 1)
	// An ECALL and a misaligned load; the test firmware skips both.
	p.Ecall()
	p.I(isa.OpLD, 17, isa.RegS0, 0, 3)
	p.Halt()
	p.Label("newword")
	p.Data64(isa.Instr{Op: isa.OpLI, Rd: 13, Imm: 42}.Encode())
	return p
}

// skipFirmware resumes after every non-halt trap by skipping the
// trapping instruction, recording the trap stream.
type skipFirmware struct {
	causes []isa.Cause
	values []uint64
}

func (f *skipFirmware) HandleTrap(c *Core, tr *isa.Trap) Disposition {
	f.causes = append(f.causes, tr.Cause)
	f.values = append(f.values, tr.Value)
	if tr.Cause == isa.CauseHalt {
		return DispHalt
	}
	c.CPU.PC += isa.InstrSize
	return DispResume
}

func TestFastSlowEquivalence(t *testing.T) {
	for _, kind := range []IsolationKind{IsolationNone, IsolationSanctum, IsolationKeystone} {
		t.Run(kind.String(), func(t *testing.T) {
			run := func(reference bool) (*Machine, *Core, *skipFirmware, RunResult) {
				m, c := newEquivMachine(t, kind, reference, mixedWorkload())
				fw := &skipFirmware{}
				m.Firmware = fw
				res, err := m.Run(0, 100_000)
				if err != nil {
					t.Fatal(err)
				}
				return m, c, fw, res
			}
			fm, fc, ffw, fres := run(false)
			rm, rc, rfw, rres := run(true)

			if fres.Reason != StopHalt || rres.Reason != StopHalt {
				t.Fatalf("stop reasons: fast %v, reference %v", fres.Reason, rres.Reason)
			}
			if fres.Steps != rres.Steps {
				t.Errorf("steps: fast %d, reference %d", fres.Steps, rres.Steps)
			}
			if fc.CPU.Regs != rc.CPU.Regs {
				t.Errorf("register files differ:\nfast %v\nref  %v", fc.CPU.Regs, rc.CPU.Regs)
			}
			if fc.CPU.PC != rc.CPU.PC || fc.CPU.Cycles != rc.CPU.Cycles {
				t.Errorf("pc/cycles: fast %#x/%d, reference %#x/%d",
					fc.CPU.PC, fc.CPU.Cycles, rc.CPU.PC, rc.CPU.Cycles)
			}
			if fc.CPU.Regs[13] != 42 {
				t.Errorf("self-modified instruction executed stale decode: x13 = %d", fc.CPU.Regs[13])
			}
			if fc.TLB.Hits != rc.TLB.Hits || fc.TLB.Misses != rc.TLB.Misses ||
				fc.TLB.Flushes != rc.TLB.Flushes || fc.TLB.Shootdown != rc.TLB.Shootdown {
				t.Errorf("TLB stats: fast %d/%d/%d/%d, reference %d/%d/%d/%d",
					fc.TLB.Hits, fc.TLB.Misses, fc.TLB.Flushes, fc.TLB.Shootdown,
					rc.TLB.Hits, rc.TLB.Misses, rc.TLB.Flushes, rc.TLB.Shootdown)
			}
			if fc.L1.Hits != rc.L1.Hits || fc.L1.Misses != rc.L1.Misses || fc.L1.Evictions != rc.L1.Evictions {
				t.Errorf("L1 stats: fast %d/%d/%d, reference %d/%d/%d",
					fc.L1.Hits, fc.L1.Misses, fc.L1.Evictions, rc.L1.Hits, rc.L1.Misses, rc.L1.Evictions)
			}
			if fm.L2.Hits != rm.L2.Hits || fm.L2.Misses != rm.L2.Misses || fm.L2.Evictions != rm.L2.Evictions {
				t.Errorf("L2 stats: fast %d/%d/%d, reference %d/%d/%d",
					fm.L2.Hits, fm.L2.Misses, fm.L2.Evictions, rm.L2.Hits, rm.L2.Misses, rm.L2.Evictions)
			}
			if len(ffw.causes) != len(rfw.causes) {
				t.Fatalf("trap streams differ in length: %v vs %v", ffw.causes, rfw.causes)
			}
			for i := range ffw.causes {
				if ffw.causes[i] != rfw.causes[i] || ffw.values[i] != rfw.values[i] {
					t.Errorf("trap %d: fast %v/%#x, reference %v/%#x",
						i, ffw.causes[i], ffw.values[i], rfw.causes[i], rfw.values[i])
				}
			}
		})
	}
}

// TestSelfModifyingCodeInvalidatesDecodeCache executes an instruction,
// overwrites it from guest code, and executes it again: the second
// execution must see the new decode.
func TestSelfModifyingCodeInvalidatesDecodeCache(t *testing.T) {
	p := asm.New()
	p.La(1, "target")
	p.La(2, "newword")
	p.I(isa.OpLD, 3, 2, 0, 0)
	p.Li(5, 0)
	p.Label("target")
	p.Li(4, 1) // becomes LI x4, 42 on the second pass
	p.I(isa.OpADDI, 5, 5, 0, 1)
	p.Li(6, 2)
	p.Branch(isa.OpBEQ, 5, 6, "end")
	p.I(isa.OpSD, 0, 1, 3, 0) // patch "target"
	p.J("target")
	p.Label("end")
	p.Halt()
	p.Label("newword")
	p.Data64(isa.Instr{Op: isa.OpLI, Rd: 4, Imm: 42}.Encode())

	m, c := newEquivMachine(t, IsolationNone, false, p)
	m.Firmware = &skipFirmware{}
	res, err := m.Run(0, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != StopHalt {
		t.Fatalf("stop = %+v", res)
	}
	if c.CPU.Regs[4] != 42 {
		t.Fatalf("x4 = %d: decode cache served a stale instruction", c.CPU.Regs[4])
	}
}

// TestHostWriteInvalidatesDecodeCache overwrites cached code through
// the Go-level WriteBytes path (what the SM's loader and DMA use)
// between runs.
func TestHostWriteInvalidatesDecodeCache(t *testing.T) {
	p := asm.New()
	p.Li(4, 1)
	p.Halt()
	m, c := newEquivMachine(t, IsolationNone, false, p)
	m.Firmware = &skipFirmware{}
	if _, err := m.Run(0, 100); err != nil {
		t.Fatal(err)
	}
	if c.CPU.Regs[4] != 1 {
		t.Fatalf("x4 = %d before patch", c.CPU.Regs[4])
	}
	// Patch the first instruction in physical memory.
	var buf [8]byte
	w := isa.Instr{Op: isa.OpLI, Rd: 4, Imm: 99}.Encode()
	for i := range buf {
		buf[i] = byte(w >> (8 * uint(i)))
	}
	if err := m.Mem.WriteBytes(0x10000, buf[:]); err != nil {
		t.Fatal(err)
	}
	c.CPU.PC = 0x10000
	c.CPU.Halted = false
	if _, err := m.Run(0, 100); err != nil {
		t.Fatal(err)
	}
	if c.CPU.Regs[4] != 99 {
		t.Fatalf("x4 = %d: host write did not invalidate the decode cache", c.CPU.Regs[4])
	}
}

// TestShootdownDropsFastPathState remaps a virtual page to different
// physical code and performs the TLB shootdown a region re-grant
// implies: execution must follow the new mapping immediately.
func TestShootdownDropsFastPathState(t *testing.T) {
	m, err := New(smallConfig(IsolationNone))
	if err != nil {
		t.Fatal(err)
	}
	m.Firmware = &skipFirmware{}
	next := uint64(0x20000) >> mem.PageBits
	alloc := func() (uint64, error) { p := next; next++; return p, nil }
	b, err := pt.NewBuilder(m.Mem, alloc)
	if err != nil {
		t.Fatal(err)
	}
	const codeVA = uint64(0x10000)
	paA, paB := uint64(0x30000), uint64(0x31000)
	progA := asm.New().Li(3, 1).Halt()
	progB := asm.New().Li(3, 2).Halt()
	binA, _ := progA.Assemble(codeVA)
	binB, _ := progB.Assemble(codeVA)
	m.Mem.WriteBytes(paA, binA)
	m.Mem.WriteBytes(paB, binB)
	if err := b.Map(codeVA, paA, pt.R|pt.X); err != nil {
		t.Fatal(err)
	}
	c := m.Cores[0]
	c.Satp = b.Root
	c.CPU.Mode = isa.PrivS
	c.CPU.PC = codeVA
	if _, err := m.Run(0, 100); err != nil {
		t.Fatal(err)
	}
	if c.CPU.Regs[3] != 1 {
		t.Fatalf("x3 = %d under mapping A", c.CPU.Regs[3])
	}

	// Re-grant: the page moves to different backing memory; the SM
	// shoots down translations into the old frame.
	if err := b.Unmap(codeVA); err != nil {
		t.Fatal(err)
	}
	if err := b.Map(codeVA, paB, pt.R|pt.X); err != nil {
		t.Fatal(err)
	}
	oldPPN := paA >> mem.PageBits
	c.TLB.FlushIf(func(e tlb.Entry) bool { return e.PPN == oldPPN })
	if c.TLB.Shootdown == 0 {
		t.Fatal("shootdown not recorded")
	}
	c.CPU.PC = codeVA
	c.CPU.Halted = false
	if _, err := m.Run(0, 100); err != nil {
		t.Fatal(err)
	}
	if c.CPU.Regs[3] != 2 {
		t.Fatalf("x3 = %d: stale fast-path state survived the shootdown", c.CPU.Regs[3])
	}
}

// TestTranslateWidthBoundary pins the width-threading bugfix: the
// isolation check must cover exactly the accessed bytes, so a narrow
// access at the end of a permitted range passes while a wide one at
// the same boundary faults.
func TestTranslateWidthBoundary(t *testing.T) {
	t.Run("sanctum-region-boundary", func(t *testing.T) {
		m, _ := newTestMachine(t, IsolationSanctum)
		c := m.Cores[0]
		c.OSRegions = dram.Bitmap(0).Set(0) // region 0 only, bare translation
		regSize := m.DRAM.RegionSize()
		if _, err := c.LoadAs(isa.PrivS, regSize-1, 1); err != nil {
			t.Errorf("1-byte load at last owned byte faulted: %v", err)
		}
		if _, err := c.LoadAs(isa.PrivS, regSize-8, 8); err != nil {
			t.Errorf("8-byte load fully inside the region faulted: %v", err)
		}
		if _, err := c.LoadAs(isa.PrivS, regSize, 1); err == nil {
			t.Error("1-byte load in a foreign region passed")
		}
	})
	t.Run("end-of-memory", func(t *testing.T) {
		m, _ := newTestMachine(t, IsolationNone)
		c := m.Cores[0]
		top := m.Mem.Size()
		if _, err := c.LoadAs(isa.PrivS, top-1, 1); err != nil {
			t.Errorf("1-byte load at last physical byte faulted: %v", err)
		}
		if err := c.StoreAs(isa.PrivS, top-2, 2, 7); err != nil {
			t.Errorf("2-byte store at end of memory faulted: %v", err)
		}
		if _, err := c.LoadAs(isa.PrivS, top, 1); err == nil {
			t.Error("load beyond physical memory passed")
		}
	})
}

// --- fast-path micro-benchmarks ---

// BenchmarkDecodeCacheHit measures the full fetch fast path (decode
// cache, last-translation cache, L1 line ref all hitting).
func BenchmarkDecodeCacheHit(b *testing.B) {
	m, err := New(smallConfig(IsolationNone))
	if err != nil {
		b.Fatal(err)
	}
	next := uint64(0x20000) >> mem.PageBits
	alloc := func() (uint64, error) { p := next; next++; return p, nil }
	bt, _ := pt.NewBuilder(m.Mem, alloc)
	const codeVA = uint64(0x10000)
	bt.Map(codeVA, 0x30000, pt.R|pt.X)
	prog := asm.New().Nop()
	bin, _ := prog.Assemble(codeVA)
	m.Mem.WriteBytes(0x30000, bin)
	c := m.Cores[0]
	c.Satp = bt.Root
	c.CPU.Mode = isa.PrivS
	c.FetchDecoded(codeVA) // warm every layer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, fault := c.FetchDecoded(codeVA); fault != nil {
			b.Fatal(fault)
		}
	}
}

// BenchmarkDecodeCacheMiss measures the refill path: the decode cache
// entry is dead on every fetch (as after a domain switch), but the
// TLB and L1 still serve their hits.
func BenchmarkDecodeCacheMiss(b *testing.B) {
	m, err := New(smallConfig(IsolationNone))
	if err != nil {
		b.Fatal(err)
	}
	next := uint64(0x20000) >> mem.PageBits
	alloc := func() (uint64, error) { p := next; next++; return p, nil }
	bt, _ := pt.NewBuilder(m.Mem, alloc)
	const codeVA = uint64(0x10000)
	bt.Map(codeVA, 0x30000, pt.R|pt.X)
	prog := asm.New().Nop()
	bin, _ := prog.Assemble(codeVA)
	m.Mem.WriteBytes(0x30000, bin)
	c := m.Cores[0]
	c.Satp = bt.Root
	c.CPU.Mode = isa.PrivS
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.icGen.Add(1) // kill the entry, as a flush would
		if _, _, fault := c.FetchDecoded(codeVA); fault != nil {
			b.Fatal(fault)
		}
	}
}
