package machine

import (
	"sanctorum/internal/hw/cache"
	"sanctorum/internal/hw/mem"
	"sanctorum/internal/hw/pt"
	"sanctorum/internal/isa"
)

// Trace-compiled superinstruction blocks (DESIGN.md §11).
//
// The per-instruction fast path (bus.go) still pays fetch validation,
// decode dispatch and statistic updates once per instruction. This file
// adds a second tier on top of it: straight-line runs of hot code are
// compiled into blocks of fused closures (internal/isa/block.go) that
// execute the whole run with the scaffolding hoisted to segment
// granularity. Like the rest of the fast path, the tier is purely a
// host-side accelerator: modeled cycles, TLB and cache statistics,
// trap causes and deterministic replay are bit-identical to the
// reference interpreter, which the equivalence and differential-fuzz
// tests enforce.
//
// A block is discovered when a control-transfer target crosses the heat
// threshold, and spans decoded instructions from its entry VA up to and
// including the first control-flow instruction — or up to (excluding)
// the first system op (ECALL, EBREAK, HALT, RDCYCLE), illegal word,
// page boundary or the length cap. Blocks never span pages, so one
// translation covers every fetch in the block.
//
// The block is divided into segments: a segment is a maximal run whose
// only observable effects are register updates, ended by a memory
// access (which must stay ordered against the fetches around it) or by
// the terminal. Each segment is compiled into ONE closure that:
//
//   - re-checks the guard word (decode-cache generation + TLB
//     generation + privilege mode) unless the previous segment proved
//     it could not have moved: any code write, translation mutation or
//     domain switch bails back to the interpreter at an exact
//     instruction boundary;
//   - batches the segment's instruction fetches: TLB.Hits advances by
//     the segment length (each fetch is a guaranteed TLB hit while the
//     guard holds), and the L1 touches collapse into one TouchFastN
//     per cache line, bit-exact to the per-fetch sequence because
//     nothing else touches the cache between them;
//   - batches the base cycle cost of the segment's fused ops into one
//     addition (exact: fused ALU ops cannot trap, so entering the
//     segment implies they all retire);
//   - runs the fused register kernels and, inline, the memory-op body
//     (the exact Core.Load/Store fast-path sequence) or the terminal.
//
// Guard elision: a segment that ends in a load served by the
// last-translation cache provably touched neither the decode-cache
// generation nor the TLB generation, so the next segment's guard is
// skipped (segClean). A store decides by the code-page check the fused
// window store already performs: a store into a marked code page bumped
// the generation and forces the next guard (segDirty), while a
// data-page store through a still-live translation provably left the
// guard word unmoved (segClean). Loads that re-walked stay
// conservative (segDirty). Same-core self-modification is therefore
// still exact to the instruction boundary; mutations from OTHER harts
// are instead caught at poll boundaries, below.
//
// Asynchronous events are polled — and the guard unconditionally
// re-checked — at poll boundaries: every chained pass for long blocks,
// every blockCap/n passes for a short loop body, so the interval is at
// most blockCap retired instructions either way. Poll boundaries are
// instruction boundaries — the architectural contract of the PR 2
// event word and the IPI protocol — and the cap bounds both the added
// event-delivery latency and the staleness window for cross-hart code
// writes or translation mutations. In the deterministic scheduler the
// pending word only changes at dispatch boundaries, so delivery points
// are unchanged and replay stays byte-identical. Blocks only run from
// Machine.Run's timer-idle hot loop, and only when the remaining step
// budget covers the whole block, so RunResult.Steps is unaffected.
//
// Invalidation rides the existing generation machinery: the guard word
// covers icGen (code writes, TLB teardown, domain switches) and the TLB
// generation + mode pack. A stale block is first revalidated — if the
// decode cache holds a live entry for the same VA→PA mapping and the
// block's words compare equal, only the generations are refreshed —
// so the steady-state cost of a domain switch is one interpreted pass
// per block, not a recompile.

const (
	// bcEntries is the per-core block cache size (direct-mapped on the
	// entry VA's instruction index, like the decode cache).
	bcEntries = 256

	// blockCap bounds block length, which bounds both the asynchronous-
	// event delivery latency added by block-boundary polling and the
	// work replayed when a guard bails.
	blockCap = 32

	// blockMinLen is the shortest run worth a block: below it the entry
	// bookkeeping eats the win and the site is negatively cached.
	blockMinLen = 2

	// defaultBlockHot is the execution count at which a control-transfer
	// target is compiled. Low enough that short-lived phases (an enclave
	// service loop between domain switches) still promote, high enough
	// that straight-line cold code never pays a compile.
	defaultBlockHot = 16
)

// regIdxMask reduces a pre-masked register index for the compiler's
// benefit: operand fields are already < NumRegs, and the explicit mask
// lets every cpu.Regs access elide its bounds check.
const regIdxMask = isa.NumRegs - 1

// Segment closure status codes.
const (
	segStop  = iota // trap or guard bail; details in Core.brun
	segDirty        // continue; the next segment must re-check the guard
	segClean        // continue; the guard word provably did not move
)

// BlockStats counts the block engine's activity on one core; purely
// observational (host-side), exposed for cmd/experiments and tests.
type BlockStats struct {
	Compiled      uint64 // blocks built (including recompiles)
	Rejected      uint64 // hot sites refused (too short / unfusible head)
	Executions    uint64 // completed straight-line passes
	Loops         uint64 // back-to-back re-entries without leaving the engine
	Instrs        uint64 // instructions retired inside blocks
	GuardBails    uint64 // mid-block guard misses (fell back to interpreter)
	Revalidations uint64 // stale blocks revived without recompiling
	Invalidations uint64 // stale blocks that failed revalidation (dead until recompiled)
}

// BlockStats returns the core's block-engine counters.
func (c *Core) BlockStats() BlockStats { return c.bstats }

// blockRun is the per-core scratch a block execution communicates
// through: base is the instruction count retired by completed passes,
// retired/trap are set by a segment closure returning segStop.
type blockRun struct {
	base    int
	retired int
	trap    *isa.Trap
}

// fetchRun is one run of consecutive instruction fetches from a single
// L1 line within a segment.
type fetchRun struct {
	line int    // index into block.lrefs
	off  uint64 // page offset of the run's first instruction word
	n    uint64 // number of fetches in the run
}

// block is one compiled superinstruction chain.
type block struct {
	entryVA uint64
	paPage  uint64          // physical page holding the block's code
	icGen   uint64          // guard: core's decode-cache generation at (re)validation
	tgMode  uint64          // guard: TLB generation + privilege mode pack
	root    uint64          // page-table root every VA in the block walks from
	n       int             // total instructions; 0 marks a negative-cache entry
	hasTerm bool            // ends in control flow (else falls through to entry+n*8)
	words   []uint64        // original instruction words, for revalidation
	lrefs   []cache.LineRef // L1 refs for the code lines, shared by segments
	segs    []segEnv        // fused segments, in program order
}

// blockFor returns a ready-to-execute block for pc, or nil to stay on
// the per-instruction path. It is called only at control-transfer
// targets (Run tracks sequentiality), so the heat accounting below
// counts block-entry candidates, not every instruction.
func (c *Core) blockFor(pc uint64) *block {
	if c.blockHot == 0 || c.CPU.Halted {
		return nil
	}
	b := c.blocks[(pc>>3)&(bcEntries-1)]
	if b == nil || b.entryVA != pc {
		h := &c.icHot[(pc>>3)&(icEntries-1)]
		*h++
		if *h >= c.blockHot {
			*h = 0
			return c.compileBlock(pc)
		}
		return nil
	}
	if b.n == 0 {
		// Negative cache: the site head is unfusible or too short. Only
		// a code change (icGen) can alter that verdict.
		if b.icGen == c.icGen.Load() {
			return nil
		}
		return c.compileBlock(pc)
	}
	if b.icGen == c.icGen.Load() && b.tgMode == tgMode(c.TLB.Gen(), c.CPU.Mode) {
		if root, _ := c.walkRoot(pc); root == b.root {
			return b
		}
		return nil
	}
	if c.revalidateBlock(b) {
		return b
	}
	c.bstats.Invalidations++
	return nil
}

// execBlock runs a validated block, looping back over it while it
// branches to its own entry (the hot-loop shape) with no pending event
// and enough step budget. It returns the number of instructions retired
// and the trap that ended execution, if any. On any exit — completion,
// guard bail, trap — CPU.PC and the modeled state sit exactly where the
// per-instruction engine would have left them.
func (c *Core) execBlock(b *block, budget int) (int, *isa.Trap) {
	c.brun.base = 0
	c.brun.trap = nil
	passes := 0
	// blockFor validated the guard word on entry, so the first segment
	// starts clean.
	st := segClean
	segs := b.segs
	cpu := &c.CPU
	// Guard re-checks and event polls are batched across chained passes
	// up to the block cap, so a short loop body pays the atomic loads at
	// the same ≤blockCap-instruction interval a maximal block would.
	stride := blockCap / b.n
	sincePoll := 0
	// Fetch TLB hits advance once per pass: every fetch in the block is
	// a guaranteed TLB hit while the guard holds. A mid-pass stop rolls
	// back the fetches that did not happen — the bailing point's retired
	// count is exactly the instructions whose fetches were accounted
	// (a guard bail counted only the prior segments, a memory trap also
	// counted the trapping segment's own fetches, which precede its
	// memory access).
	nHits := uint64(b.n)
	for {
		c.TLB.Hits += nHits
		for i := range segs {
			if st = segs[i].run(c, cpu, st == segClean); st == segStop {
				c.TLB.Hits -= nHits - uint64(c.brun.retired-c.brun.base)
				c.bstats.Instrs += uint64(c.brun.retired)
				c.bstats.Executions += uint64(passes)
				return c.brun.retired, c.brun.trap
			}
		}
		passes++
		c.brun.base += b.n
		if !b.hasTerm {
			cpu.PC = b.entryVA + uint64(b.n)*isa.InstrSize
		}
		if cpu.PC != b.entryVA || c.brun.base+b.n > budget {
			c.bstats.Instrs += uint64(c.brun.base)
			c.bstats.Executions += uint64(passes)
			c.bstats.Loops += uint64(passes - 1)
			return c.brun.base, nil
		}
		if sincePoll++; sincePoll >= stride {
			sincePoll = 0
			if c.pending.Load() != 0 {
				c.bstats.Instrs += uint64(c.brun.base)
				c.bstats.Executions += uint64(passes)
				c.bstats.Loops += uint64(passes - 1)
				return c.brun.base, nil
			}
			// Poll boundary: re-check the guard, so a cross-hart code
			// write is seen within blockCap retired instructions even by
			// an all-clean loop. Between polls the next pass inherits the
			// last segment's verdict — a store already forced dirty, and
			// clean segments provably left the guard word unmoved.
			st = segDirty
		}
	}
}

// guardFail records a guard bail at segBase instructions into the
// current pass and points the PC at the first un-executed instruction.
func (c *Core) guardFail(b *block, segBase int) {
	// Every pass starts at the entry VA, so the resume PC depends only
	// on the bailing segment's offset — while the retired count also
	// carries the chained passes completed before this one.
	c.CPU.PC = b.entryVA + uint64(segBase)*isa.InstrSize
	c.brun.retired = c.brun.base + segBase
	c.bstats.GuardBails++
}

// memTrap records a trap from a segment's memory op, which is the
// segment's last instruction: like the interpreter, the trapping
// instruction counts as a retired step, and the kernel already left
// PC on it.
func (c *Core) memTrap(segEnd int, tr *isa.Trap) {
	c.brun.retired = c.brun.base + segEnd
	c.brun.trap = tr
}

// fetchChargeSlow is the exact per-fetch fallback when a segment's
// batched L1 touch fails (dead line ref after any fill or flush): the
// hit-or-refill sequence of the per-instruction fetch path, which also
// re-arms the ref for the next pass.
func (c *Core) fetchChargeSlow(pa uint64, ref *cache.LineRef, n uint64) uint64 {
	var cyc uint64
	for k := uint64(0); k < n; k++ {
		if c.L1.TouchFast(pa, ref) {
			cyc += c.l1Hit
		} else {
			cyc += c.cachedAccessRef(pa, ref)
		}
	}
	return cyc
}

// segSpec collects one segment during compilation, before it is fused
// into its closure.
type segSpec struct {
	base   int    // instructions retired before this segment
	n      int    // instructions in this segment
	static uint64 // batched base cycle cost
	fetch  []fetchRun
	alu    []isa.Instr // fused computational ops, in program order
	mem    *isa.Instr  // trailing load/store, nil if none
	memVA  uint64
	term   func(*isa.CPU) uint64 // block terminal (last segment only)
	termIn isa.Instr             // the terminal instruction, for uop fusion
	termVA uint64
}

// segFetchMulti is the fetch-accounting loop for the rare segment that
// straddles L1 lines; split out so the common single-line case keeps the
// segment closures' frames small.
func (c *Core) segFetchMulti(b *block, runs []fetchRun) uint64 {
	var cyc uint64
	for fi := range runs {
		f := &runs[fi]
		pa := b.paPage | f.off
		if c.L1.TouchFastN(pa, &b.lrefs[f.line], f.n) {
			cyc += f.n * c.l1Hit
		} else {
			cyc += c.fetchChargeSlow(pa, &b.lrefs[f.line], f.n)
		}
	}
	return cyc
}

// segMemWalk is a segment memory op's translation miss: the full
// translateFast path, recording the trap on a fault. Split out of the
// segment closures so their hot frames hold no fault pointer.
func (c *Core) segMemWalk(tc *transCache, isLoad bool, addr, w64, memVA uint64, segEnd int) (uint64, bool) {
	acc := pt.Store
	if isLoad {
		acc = pt.Load
	}
	pa, walkCyc, fault := c.translateFast(tc, addr, w64, acc)
	c.CPU.Cycles += walkCyc
	if fault == nil {
		return pa, true
	}
	c.CPU.PC = memVA
	cause := fault.StoreCause()
	if isLoad {
		cause = fault.LoadCause()
	}
	c.memTrap(segEnd, c.CPU.Trapped(cause, memVA, fault.Addr))
	return 0, false
}

// segAlignTrap records a misaligned segment memory op.
func (c *Core) segAlignTrap(isLoad bool, memVA, addr uint64, segEnd int) {
	cpu := &c.CPU
	cpu.PC = memVA
	cause := isa.CauseMisalignedStore
	if isLoad {
		cause = isa.CauseMisalignedLoad
	}
	c.memTrap(segEnd, cpu.Trapped(cause, memVA, addr))
}

// segCOWTrap records a segment store hitting a copy-on-write page.
func (c *Core) segCOWTrap(memVA, addr uint64, segEnd int) {
	c.CPU.PC = memVA
	c.memTrap(segEnd, c.CPU.Trapped(isa.CauseStoreAccess, memVA, addr))
}

// aluUop is one fused computational op. The common direct-register ops
// (isa.BlockUop's set) carry a non-zero kind and execute inline in
// segEnv.run's switch; everything else — x0 operands, shifts by
// register, compares, mul/div — keeps kind 0 and calls the BlockALU
// kernel fn. The inline cases must mirror the direct-form BlockALU
// kernels exactly.
type aluUop struct {
	fn       func(*isa.CPU) // BlockALU kernel; nil when kind != 0
	imm      uint64         // pre-extended immediate / pre-masked shift
	kind     uint8          // isa.Uop* constant, 0 = use fn
	rd, a, b uint8          // pre-masked register indices
}

// segEnv is one fused segment: every constant its run method needs,
// resolved at compile time and laid out flat so a pass touches only
// this struct (the block's segs slice is contiguous), the register file
// and the guarded machine state — no interpretive structures. A plain
// struct + method beats a closure here: the method call is static, and
// fields are loaded on demand instead of the closure prologue copying
// the whole environment per call.
type segEnv struct {
	b *block

	segBase int    // instructions retired before this segment
	segEnd  int    // segBase + segment length
	static  uint64 // batched base cycle cost of the fused ops

	// Fetch accounting. The single-line case covers nearly every
	// segment (a segment spans two L1 lines only when it straddles
	// one); multi-line segments keep their runs in fetchRest.
	fetch1    bool
	pa0       uint64 // physical address of the first fetch
	fn0       uint64 // fetches on the line
	hit0      uint64 // fn0 * L1 hit cycles
	ref0      *cache.LineRef
	fetchRest []fetchRun

	// Register micro-ops, inline array three deep (longer tails are
	// rare and spill to aluRest as plain kernels).
	nalu    int
	alu     [3]aluUop
	aluRest []func(*isa.CPU)

	// Terminal (last segment only). The common constant-target forms
	// (JAL, direct-register branches) execute inline through termKind's
	// switch; the rest (JALR, x0-operand branches) call the term closure.
	term          func(*isa.CPU) uint64
	termKind      uint8
	tA, tB, tRd   uint8
	tTaken, tFall uint64

	// Trailing memory op (zero values when the segment has none).
	isMem, isLoad, signed, direct bool
	width                         int
	w64, wmask, imm               uint64
	rs1, rs2, rd                  uint8
	memVA                         uint64
}

// buildSeg fuses one segment.
func (c *Core) buildSeg(b *block, s segSpec) segEnv {
	f0 := s.fetch[0]
	e := segEnv{
		b:       b,
		segBase: s.base,
		segEnd:  s.base + s.n,
		static:  s.static,
		fetch1:  len(s.fetch) == 1,
		pa0:     b.paPage | f0.off,
		fn0:     f0.n,
		hit0:    f0.n * c.l1Hit,
		ref0:    &b.lrefs[f0.line],
		term:    s.term,
	}
	if !e.fetch1 {
		e.fetchRest = s.fetch
	}
	e.nalu = len(s.alu)
	if e.nalu > 3 {
		e.nalu = 3
	}
	for i := 0; i < e.nalu; i++ {
		in := s.alu[i]
		if kind, rd, a, b, imm, ok := isa.BlockUop(in); ok {
			e.alu[i] = aluUop{kind: kind, rd: rd, a: a, b: b, imm: imm}
		} else {
			e.alu[i] = aluUop{fn: isa.BlockALU(in)}
		}
	}
	for i := 3; i < len(s.alu); i++ {
		e.aluRest = append(e.aluRest, isa.BlockALU(s.alu[i]))
	}
	if s.mem != nil {
		in := *s.mem
		e.isMem = true
		e.memVA = s.memVA
		e.isLoad = isa.IsLoad(in.Op)
		if e.isLoad {
			e.width, e.signed = isa.LoadSpec(in.Op)
			e.direct = in.Rd != isa.RegZero && in.Rs1 != isa.RegZero
		} else {
			e.width = isa.StoreSpec(in.Op)
			e.direct = in.Rs1 != isa.RegZero && in.Rs2 != isa.RegZero
		}
		e.w64 = uint64(e.width)
		e.wmask = e.w64 - 1
		e.imm = uint64(int64(in.Imm))
		e.rs1, e.rs2, e.rd = in.Rs1%isa.NumRegs, in.Rs2%isa.NumRegs, in.Rd%isa.NumRegs
	}
	if s.term != nil {
		if kind, a, bb, rd, taken, fall, ok := isa.BlockTermUop(s.termIn, s.termVA); ok {
			e.term = nil
			e.termKind, e.tA, e.tB, e.tRd = kind, a, bb, rd
			e.tTaken, e.tFall = taken, fall
		}
	}
	return e
}

// run executes the segment. clean elides the guard (the previous
// segment proved the guard word stable). c and cpu are passed in so
// the per-segment prologue does no pointer chasing of its own.
func (e *segEnv) run(c *Core, cpu *isa.CPU, clean bool) int {
	// Guard (elided when the previous segment proved it stable).
	if !clean && (e.b.icGen != c.icGen.Load() || e.b.tgMode != tgMode(c.TLB.Gen(), cpu.Mode)) {
		c.guardFail(e.b, e.segBase)
		return segStop
	}
	// Batched fetch accounting for the whole segment: each fetch is a
	// guaranteed TLB hit under the guard (execBlock advances TLB.Hits
	// for the whole pass at once), and the L1 touches collapse per
	// line. A dead line ref falls back to the exact per-fetch sequence.
	cyc := e.static
	if e.fetch1 {
		if c.L1.TouchFastN(e.pa0, e.ref0, e.fn0) {
			cyc += e.hit0
		} else {
			cyc += c.fetchChargeSlow(e.pa0, e.ref0, e.fn0)
		}
	} else {
		cyc += c.segFetchMulti(e.b, e.fetchRest)
	}
	cpu.Cycles += cyc

	// Fused register micro-ops: the common direct-register ops execute
	// through a jump table, the rest through their BlockALU kernels.
	// Each case is the direct-form BlockALU kernel for its op, inlined.
	for i := 0; i < e.nalu; i++ {
		u := &e.alu[i]
		switch u.kind {
		case isa.UopADD:
			cpu.Regs[u.rd&regIdxMask] = cpu.Regs[u.a&regIdxMask] + cpu.Regs[u.b&regIdxMask]
		case isa.UopSUB:
			cpu.Regs[u.rd&regIdxMask] = cpu.Regs[u.a&regIdxMask] - cpu.Regs[u.b&regIdxMask]
		case isa.UopAND:
			cpu.Regs[u.rd&regIdxMask] = cpu.Regs[u.a&regIdxMask] & cpu.Regs[u.b&regIdxMask]
		case isa.UopOR:
			cpu.Regs[u.rd&regIdxMask] = cpu.Regs[u.a&regIdxMask] | cpu.Regs[u.b&regIdxMask]
		case isa.UopXOR:
			cpu.Regs[u.rd&regIdxMask] = cpu.Regs[u.a&regIdxMask] ^ cpu.Regs[u.b&regIdxMask]
		case isa.UopADDI:
			cpu.Regs[u.rd&regIdxMask] = cpu.Regs[u.a&regIdxMask] + u.imm
		case isa.UopANDI:
			cpu.Regs[u.rd&regIdxMask] = cpu.Regs[u.a&regIdxMask] & u.imm
		case isa.UopORI:
			cpu.Regs[u.rd&regIdxMask] = cpu.Regs[u.a&regIdxMask] | u.imm
		case isa.UopXORI:
			cpu.Regs[u.rd&regIdxMask] = cpu.Regs[u.a&regIdxMask] ^ u.imm
		case isa.UopSLLI:
			cpu.Regs[u.rd&regIdxMask] = cpu.Regs[u.a&regIdxMask] << u.imm
		case isa.UopSRLI:
			cpu.Regs[u.rd&regIdxMask] = cpu.Regs[u.a&regIdxMask] >> u.imm
		case isa.UopLI:
			cpu.Regs[u.rd&regIdxMask] = u.imm
		default:
			u.fn(cpu)
		}
	}
	if e.aluRest != nil {
		for _, op := range e.aluRest {
			op(cpu)
		}
	}

	if e.isMem {
		// Inline memory-op body: the exact Core.Load/Store fast-path
		// sequence plus ExecDecoded's register update, minus everything
		// segment-hoisted (fetch, base cycles, PC).
		var addr uint64
		if e.direct {
			addr = cpu.Regs[e.rs1&regIdxMask] + e.imm
		} else {
			addr = cpu.Reg(e.rs1) + e.imm
		}
		if addr&e.wmask != 0 {
			c.segAlignTrap(e.isLoad, e.memVA, addr, e.segEnd)
			return segStop
		}
		clean := true
		tc := &c.storeTC
		if e.isLoad {
			tc = &c.loadTC
		}
		var pa uint64
		root, _ := c.walkRoot(addr)
		if root != 0 && tc.gen == c.TLB.Gen() && tc.vpn == (addr&pt.VAMask)>>mem.PageBits &&
			tc.root == root && tc.mode == cpu.Mode {
			// Last-translation cache hit: same statistic update as
			// translateFast's short-circuit, and provably no TLB or
			// decode-cache mutation.
			c.TLB.Hits++
			pa = tc.paPage | addr&uint64(mem.PageMask)
		} else {
			var ok bool
			if pa, ok = c.segMemWalk(tc, e.isLoad, addr, e.w64, e.memVA, e.segEnd); !ok {
				return segStop
			}
			clean = false
		}
		if c.L1.TouchFast(pa, &c.dataRef) {
			cpu.Cycles += c.l1Hit
		} else {
			cpu.Cycles += c.cachedAccessRef(pa, &c.dataRef)
		}
		if e.isLoad {
			var val uint64
			if e.width == 8 {
				val = c.dataWin.Load64(pa)
			} else {
				val = c.dataWin.LoadFast(pa, e.width)
			}
			if e.signed {
				val = isa.SignExtendVal(val, e.width)
			}
			if e.direct {
				cpu.Regs[e.rd&regIdxMask] = val
			} else {
				cpu.SetReg(e.rd, val)
			}
			if clean {
				return segClean
			}
			return segDirty
		}
		// Store: the fused window store runs the copy-on-write backstop
		// (Core.Store's), the code-page check and the write in one call.
		// The code-page verdict decides the guard: a store into a marked
		// code page bumped icGen and must force the next guard, while a
		// plain data-page store (through a still-live translation)
		// provably left the guard word unmoved.
		var val uint64
		if e.direct {
			val = cpu.Regs[e.rs2&regIdxMask]
		} else {
			val = cpu.Reg(e.rs2)
		}
		var cow, hitCode bool
		if e.width == 8 {
			cow, hitCode = c.dataWin.Store64Block(pa, val)
		} else {
			cow, hitCode = c.dataWin.StoreFastBlock(pa, e.width, val)
		}
		if cow {
			c.segCOWTrap(e.memVA, addr, e.segEnd)
			return segStop
		}
		if hitCode || !clean {
			return segDirty
		}
		return segClean
	}

	// Terminal: the constant-target forms pick between two burned-in
	// next-PC values inline; everything else calls the fused kernel.
	// Each inline case is the direct-form BlockTerm kernel for its op.
	switch e.termKind {
	case isa.TermJAL:
		if e.tRd != 0 {
			cpu.Regs[e.tRd&regIdxMask] = e.tFall
		}
		cpu.PC = e.tTaken
	case isa.TermBEQ:
		if cpu.Regs[e.tA&regIdxMask] == cpu.Regs[e.tB&regIdxMask] {
			cpu.PC = e.tTaken
		} else {
			cpu.PC = e.tFall
		}
	case isa.TermBNE:
		if cpu.Regs[e.tA&regIdxMask] != cpu.Regs[e.tB&regIdxMask] {
			cpu.PC = e.tTaken
		} else {
			cpu.PC = e.tFall
		}
	case isa.TermBLT:
		if int64(cpu.Regs[e.tA&regIdxMask]) < int64(cpu.Regs[e.tB&regIdxMask]) {
			cpu.PC = e.tTaken
		} else {
			cpu.PC = e.tFall
		}
	case isa.TermBGE:
		if int64(cpu.Regs[e.tA&regIdxMask]) >= int64(cpu.Regs[e.tB&regIdxMask]) {
			cpu.PC = e.tTaken
		} else {
			cpu.PC = e.tFall
		}
	case isa.TermBLTU:
		if cpu.Regs[e.tA&regIdxMask] < cpu.Regs[e.tB&regIdxMask] {
			cpu.PC = e.tTaken
		} else {
			cpu.PC = e.tFall
		}
	case isa.TermBGEU:
		if cpu.Regs[e.tA&regIdxMask] >= cpu.Regs[e.tB&regIdxMask] {
			cpu.PC = e.tTaken
		} else {
			cpu.PC = e.tFall
		}
	default:
		if e.term != nil {
			cpu.PC = e.term(cpu)
		}
	}
	return segClean
}

// compileBlock builds and installs a block at pc, seeded from the
// decode cache: compilation is triggered right after a fetchHit-valid
// fetch of pc, so a live entry supplies the translation (PA, root,
// generations) without touching the TLB or caches — the compile itself
// is architecturally invisible, charging no cycles and no statistics.
// Returns the block if it is immediately executable, nil otherwise.
func (c *Core) compileBlock(pc uint64) *block {
	e := &c.icache[(pc>>3)&(icEntries-1)]
	icGen := c.icGen.Load()
	tg := tgMode(c.TLB.Gen(), c.CPU.Mode)
	if e.gen != icGen || e.va != pc || e.tgMode != tg || e.tgMode == 0 {
		// No live seed (or bare translation, which the fast path never
		// promotes); stay interpreted — the heat counter will retry.
		return nil
	}
	root, _ := c.walkRoot(pc)
	if root != e.root || root == 0 {
		return nil
	}
	pageMask := uint64(mem.PageMask)
	paPage := e.pa &^ pageMask
	// Mark the code page BEFORE reading any word (fetchSlow's snoop race
	// protocol): a racing store that lands after the mark bumps icGen,
	// and the block carries the pre-read generation, so it can never
	// pass its guard.
	c.machine.markCodePage(paPage)

	var (
		words []uint64
		ins   []isa.Instr
		term  func(*isa.CPU) uint64
	)
	for va := pc; len(ins) < blockCap; va += isa.InstrSize {
		if va&^pageMask != pc&^pageMask {
			break // blocks never span pages
		}
		if r, _ := c.walkRoot(va); r != root {
			break // evrange edge inside the page
		}
		w := c.fetchWin.LoadFast(paPage|(va&pageMask), 8)
		in := isa.Decode(w)
		if t := isa.BlockTerm(in, va); t != nil {
			words, ins, term = append(words, w), append(ins, in), t
			break
		}
		if isa.BlockALU(in) == nil && !isa.IsLoad(in.Op) && !isa.IsStore(in.Op) {
			break // system op, HALT, RDCYCLE or illegal word: never fused
		}
		words, ins = append(words, w), append(ins, in)
	}

	idx := (pc >> 3) & (bcEntries - 1)
	if len(ins) < blockMinLen {
		c.blocks[idx] = &block{entryVA: pc, icGen: icGen}
		c.bstats.Rejected++
		return nil
	}

	b := &block{
		entryVA: pc, paPage: paPage,
		icGen: icGen, tgMode: tg, root: root,
		n: len(ins), hasTerm: term != nil, words: words,
	}
	lineBits := c.L1.Config().LineBits
	pcOff := pc & pageMask
	firstLine := pcOff >> lineBits
	b.lrefs = make([]cache.LineRef, (pcOff+uint64(b.n-1)*isa.InstrSize)>>lineBits-firstLine+1)

	seg := segSpec{}
	flush := func() {
		if seg.n > 0 {
			b.segs = append(b.segs, c.buildSeg(b, seg))
			seg = segSpec{base: seg.base + seg.n}
		}
	}
	for i := range ins {
		in := ins[i]
		off := pcOff + uint64(i)*isa.InstrSize
		if line := int(off>>lineBits - firstLine); len(seg.fetch) > 0 && seg.fetch[len(seg.fetch)-1].line == line {
			seg.fetch[len(seg.fetch)-1].n++
		} else {
			seg.fetch = append(seg.fetch, fetchRun{line: line, off: off, n: 1})
		}
		seg.n++
		seg.static += isa.BlockCost(in.Op)
		va := pc + uint64(i)*isa.InstrSize
		switch {
		case i == b.n-1 && term != nil:
			seg.term, seg.termIn, seg.termVA = term, in, va
		case isa.IsLoad(in.Op) || isa.IsStore(in.Op):
			// A memory op always ends its segment: its data access must
			// stay ordered between the fetch before it and the fetch
			// after it, so the next fetch batch starts a new segment.
			seg.mem, seg.memVA = &ins[i], va
			flush()
		default:
			seg.alu = append(seg.alu, in)
		}
	}
	flush()
	c.blocks[idx] = b
	c.bstats.Compiled++
	return b
}

// revalidateBlock revives a block whose guard generations went stale
// without its substance changing — the common case after a domain
// switch or TLB shootdown, where recompiling every block would put a
// compile on the enclave enter/exit path. The block is revived iff the
// decode cache holds a live entry for the entry VA with the same
// VA→PA mapping (so the current translation set serves the whole page,
// at the current generations, as guaranteed TLB hits), every VA still
// walks from the same root, and the code words compare equal. Like
// compilation, revalidation is architecturally invisible.
func (c *Core) revalidateBlock(b *block) bool {
	e := &c.icache[(b.entryVA>>3)&(icEntries-1)]
	icGen := c.icGen.Load()
	tg := tgMode(c.TLB.Gen(), c.CPU.Mode)
	if e.gen != icGen || e.va != b.entryVA || e.tgMode != tg || e.tgMode == 0 {
		return false
	}
	if e.pa&^uint64(mem.PageMask) != b.paPage {
		return false // page remapped: only a recompile can retarget it
	}
	for i := 0; i < b.n; i++ {
		if r, _ := c.walkRoot(b.entryVA + uint64(i)*isa.InstrSize); r != e.root {
			return false
		}
	}
	c.machine.markCodePage(b.paPage) // re-mark before reading (snoop race)
	off := b.entryVA & uint64(mem.PageMask)
	for i, w := range b.words {
		if c.fetchWin.LoadFast(b.paPage|(off+uint64(i)*isa.InstrSize), 8) != w {
			return false
		}
	}
	b.icGen, b.tgMode, b.root = icGen, tg, e.root
	c.bstats.Revalidations++
	return true
}
