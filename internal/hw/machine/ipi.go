package machine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Inter-processor mailboxes. The paper's monitor coordinates harts with
// per-core mailboxes and inter-processor interrupts: a hart that needs
// another hart's microarchitectural state changed (TLB shootdown on
// region re-allocation, per-core view reprogramming) posts a message
// and raises an IPI; the target acknowledges at an instruction
// boundary, where its pipeline is architecturally quiescent. This file
// is that mechanism for the simulated machine.
//
// Ownership model: a core's microarchitectural state (TLB, L1, decode
// caches, isolation registers) may only be touched while holding the
// core's runMu. Machine.Run holds it for the whole run, so a running
// core executes its own mailbox at instruction boundaries (takeInterrupt
// → drainIPIs). For a core that is not running, the poster acquires
// runMu itself and executes the request on the core's behalf — the
// simulation analogue of programming a parked hart. In deterministic
// single-goroutine execution every target is idle, so posting degrades
// to the synchronous call it used to be, byte-for-byte.
type ipiMailbox struct {
	mu     sync.Mutex
	queue  []func(*Core)
	posted uint64        // requests ever posted (under mu)
	acked  atomic.Uint64 // requests executed
}

// post appends a request and returns its sequence number.
func (b *ipiMailbox) post(fn func(*Core)) uint64 {
	b.mu.Lock()
	b.queue = append(b.queue, fn)
	b.posted++
	seq := b.posted
	b.mu.Unlock()
	return seq
}

// drainIPIs executes every queued mailbox request on the core. Caller
// holds the core's runMu (the run loop at an instruction boundary, or a
// poster that found the core idle).
func (c *Core) drainIPIs() {
	for {
		c.ipi.mu.Lock()
		c.pending.And(^pendingIPI)
		fns := c.ipi.queue
		c.ipi.queue = nil
		c.ipi.mu.Unlock()
		if len(fns) == 0 {
			return
		}
		for _, fn := range fns {
			fn(c)
			c.ipi.acked.Add(1)
		}
		// A request executed above may itself have posted to this core;
		// loop so the ack sequence stays dense.
	}
}

// tryDrainIdle executes the core's mailbox if the core is not running,
// returning whether it got to run. Posters use it so that requests to
// idle cores complete synchronously.
func (c *Core) tryDrainIdle() bool {
	if !c.runMu.TryLock() {
		return false
	}
	c.drainIPIs()
	c.runMu.Unlock()
	return true
}

// NoHart is the RunOn `from` value for callers not executing on any
// simulated hart (Go-level untrusted-OS code, boot).
const NoHart = -1

// TryAcquire claims run ownership of an idle core without blocking:
// the same mutex Machine.Run holds for its whole duration and IPI
// posters take to program idle harts. The security monitor uses it to
// make enter_enclave's core programming a failable transaction — if
// the core is running (or an IPI poster momentarily owns it), the
// claim fails and the monitor returns its retry status instead of
// blocking. Pair with Release.
func (c *Core) TryAcquire() bool { return c.runMu.TryLock() }

// Release returns run ownership taken with TryAcquire. Mailbox
// requests posted while the holder owned the core are drained by the
// next Run (or by their posters once the mutex is free).
func (c *Core) Release() { c.runMu.Unlock() }

// PostIPI delivers fn to core id's mailbox. If the core is running, fn
// executes at its next instruction boundary (the hot loop polls the
// pending word every step); if it is idle, fn executes before PostIPI
// returns, on the caller's goroutine. Fire-and-forget: use RunOn to
// wait for the acknowledgment. fn must not block on monitor locks that
// its poster may hold.
//
// Posting to the hart one is currently executing on (a trap handler
// updating its own core) is legal: the request sits in the mailbox and
// drains at the boundary immediately after the trap returns, before the
// next instruction issues.
func (m *Machine) PostIPI(id int, fn func(*Core)) {
	c := m.Cores[id]
	c.ipi.post(fn)
	c.pending.Or(pendingIPI)
	c.tryDrainIdle()
}

// RunOn delivers fn to core id's mailbox and waits until it has been
// acknowledged. from is the core ID of the posting hart (-1 when the
// caller is not executing on any simulated hart, e.g. Go-level OS
// code); a hart targeting itself executes fn inline — it is at an
// instruction boundary inside its own trap handler, which is exactly
// the acknowledgment point.
//
// The wait cannot deadlock provided fn and the poster respect the
// monitor's lock discipline: a running target acknowledges within one
// instruction, an idle target is executed by this goroutine, and a
// target that exits Run leaves its runMu free for us to take.
func (m *Machine) RunOn(id, from int, fn func(*Core)) {
	if id == from {
		fn(m.Cores[id])
		return
	}
	c := m.Cores[id]
	seq := c.ipi.post(fn)
	c.pending.Or(pendingIPI)
	for c.ipi.acked.Load() < seq {
		if !c.tryDrainIdle() {
			runtime.Gosched()
		}
	}
}
