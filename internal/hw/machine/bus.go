package machine

import (
	"sanctorum/internal/hw/pt"
	"sanctorum/internal/isa"
)

// The core implements isa.Bus: every fetch, load and store of the
// running program is translated, isolation-checked and cache-timed.

// FetchInstr implements isa.Bus.
func (c *Core) FetchInstr(va uint64) (uint64, uint64, *isa.MemFault) {
	pa, walkCyc, fault := c.translate(va, pt.Fetch, c.CPU.Mode)
	if fault != nil {
		return 0, walkCyc, fault
	}
	cyc := c.cachedAccess(pa)
	word, err := c.machine.Mem.Load(pa, 8)
	if err != nil {
		return 0, walkCyc + cyc, &isa.MemFault{Kind: isa.FaultAccess, Addr: va}
	}
	return word, walkCyc + cyc, nil
}

// Load implements isa.Bus.
func (c *Core) Load(va uint64, width int) (uint64, uint64, *isa.MemFault) {
	if va%uint64(width) != 0 {
		return 0, 0, &isa.MemFault{Kind: isa.FaultMisaligned, Addr: va}
	}
	pa, walkCyc, fault := c.translate(va, pt.Load, c.CPU.Mode)
	if fault != nil {
		return 0, walkCyc, fault
	}
	cyc := c.cachedAccess(pa)
	val, err := c.machine.Mem.Load(pa, width)
	if err != nil {
		return 0, walkCyc + cyc, &isa.MemFault{Kind: isa.FaultAccess, Addr: va}
	}
	return val, walkCyc + cyc, nil
}

// Store implements isa.Bus.
func (c *Core) Store(va uint64, width int, val uint64) (uint64, *isa.MemFault) {
	if va%uint64(width) != 0 {
		return 0, &isa.MemFault{Kind: isa.FaultMisaligned, Addr: va}
	}
	pa, walkCyc, fault := c.translate(va, pt.Store, c.CPU.Mode)
	if fault != nil {
		return walkCyc, fault
	}
	cyc := c.cachedAccess(pa)
	if err := c.machine.Mem.Store(pa, width, val); err != nil {
		return walkCyc + cyc, &isa.MemFault{Kind: isa.FaultAccess, Addr: va}
	}
	return walkCyc + cyc, nil
}

// LoadAs performs a one-off data load on this core's translation state
// with an explicit privilege mode. Go-level untrusted OS code uses this
// (with isa.PrivS) so that its accesses face exactly the checks an
// S-mode kernel would.
func (c *Core) LoadAs(mode isa.Priv, va uint64, width int) (uint64, error) {
	if va%uint64(width) != 0 {
		return 0, &isa.Trap{Cause: isa.CauseMisalignedLoad, Value: va}
	}
	pa, _, fault := c.translate(va, pt.Load, mode)
	if fault != nil {
		return 0, &isa.Trap{Cause: trapCauseFor(fault, pt.Load), PC: 0, Value: va}
	}
	c.cachedAccess(pa)
	return c.machine.Mem.Load(pa, width)
}

// StoreAs is the store counterpart of LoadAs.
func (c *Core) StoreAs(mode isa.Priv, va uint64, width int, val uint64) error {
	if va%uint64(width) != 0 {
		return &isa.Trap{Cause: isa.CauseMisalignedStore, Value: va}
	}
	pa, _, fault := c.translate(va, pt.Store, mode)
	if fault != nil {
		return &isa.Trap{Cause: trapCauseFor(fault, pt.Store), PC: 0, Value: va}
	}
	c.cachedAccess(pa)
	return c.machine.Mem.Store(pa, width, val)
}

func trapCauseFor(f *isa.MemFault, acc pt.Access) isa.Cause {
	switch {
	case acc == pt.Load && f.Kind == isa.FaultPage:
		return isa.CauseLoadPageFault
	case acc == pt.Load:
		return isa.CauseLoadAccess
	case acc == pt.Store && f.Kind == isa.FaultPage:
		return isa.CauseStorePageFault
	default:
		return isa.CauseStoreAccess
	}
}
