package machine

import (
	"sanctorum/internal/hw/cache"
	"sanctorum/internal/hw/pt"
	"sanctorum/internal/isa"
)

// The core implements isa.Bus, plus the decoded-fetch fast path the
// run loop drives directly: every fetch, load and store of the running
// program is translated, isolation-checked and cache-timed. The fast path (FetchDecoded, and the Window accesses in
// Load/Store) changes only host-side cost; modeled cycles, TLB
// statistics and cache state are bit-identical to the reference path,
// which TestFastSlowEquivalence checks opcode by opcode.

// FetchInstr implements isa.Bus; this is the reference fetch path.
func (c *Core) FetchInstr(va uint64) (uint64, uint64, *isa.MemFault) {
	pa, walkCyc, fault := c.translate(va, 8, pt.Fetch, c.CPU.Mode)
	if fault != nil {
		return 0, walkCyc, fault
	}
	cyc := c.cachedAccess(pa)
	word, err := c.machine.Mem.Load(pa, 8)
	if err != nil {
		return 0, walkCyc + cyc, &isa.MemFault{Kind: isa.FaultAccess, Addr: va}
	}
	return word, walkCyc + cyc, nil
}

// fetchHit is the full fetch fast path: it fires only when the decode
// cache, the translation layers and the L1 line are all provably
// unchanged (see icEntry), and then performs exactly the statistic
// updates of the reference pipeline's TLB-hit + L1-hit outcome. A bare
// (root == 0) fetch never hits: the reference path re-checks physOK
// against the live isolation state on every bare access, and entries
// cached from bare mode carry tlbGen 0, which never equals the TLB's
// generation. Kept small so Machine.Run's hot loop can call it
// directly and cheaply before falling back to FetchDecoded; the hit
// cycle cost is the core's l1Hit.
func (c *Core) fetchHit(va uint64) *icEntry {
	e := &c.icache[(va>>3)&(icEntries-1)]
	if e.gen != c.icGen.Load() || e.va != va || e.tgMode != tgMode(c.TLB.Gen(), c.CPU.Mode) {
		return nil
	}
	if root, _ := c.walkRoot(va); root != e.root {
		return nil
	}
	if !c.L1.TouchFast(e.pa, &e.lref) {
		return nil
	}
	c.TLB.Hits++
	return e
}

// FetchDecoded is the decoded fetch: fetchHit, falling back to
// fetchSlow. When the decode-cache entry for va is live across every
// layer — no code write, no TLB mutation, same walk root and mode,
// and the L1 line still resident — the reference pipeline is
// guaranteed to produce a TLB hit and an L1 hit for this same PA, so
// the fetch reduces to exactly those statistic updates (fetchHit).
// Any stale layer falls back to that layer's slower (but still
// cached) path in fetchSlow; the final fallback is the reference
// pipeline plus a Decode. Hot callers (Machine.Run) call the two
// halves directly so a decode-cache miss validates each layer once.
func (c *Core) FetchDecoded(va uint64) (isa.Instr, uint64, *isa.MemFault) {
	if e := c.fetchHit(va); e != nil {
		return e.in, c.l1Hit, nil
	}
	return c.fetchSlow(va)
}

// fetchSlow is FetchDecoded behind a fetchHit miss: layer-wise refill
// of the decode-cache entry.
func (c *Core) fetchSlow(va uint64) (isa.Instr, uint64, *isa.MemFault) {
	root, _ := c.walkRoot(va)
	icGen := c.icGen.Load()
	e := &c.icache[(va>>3)&(icEntries-1)]
	if e.gen == icGen && e.va == va &&
		e.tgMode == tgMode(c.TLB.Gen(), c.CPU.Mode) && e.root == root {
		// Translation and decode are valid; only the L1 resident set
		// moved. Redo the cache access, keep everything else.
		c.TLB.Hits++
		cyc := c.cachedAccessRef(e.pa, &e.lref)
		return e.in, cyc, nil
	}
	pa, walkCyc, fault := c.translateFast(&c.fetchTC, va, 8, pt.Fetch)
	if fault != nil {
		return isa.Instr{}, walkCyc, fault
	}
	// Bare (root == 0) translations store tgMode 0: TLB generations
	// start at 1, so such an entry can never take the full fast path,
	// which matches the reference path re-checking physOK on every
	// bare access.
	tg := uint64(0)
	if root != 0 {
		tg = tgMode(c.TLB.Gen(), c.CPU.Mode)
	}
	var lref cache.LineRef
	cyc := walkCyc + c.cachedAccessRef(pa, &lref)
	if e.gen == icGen && e.va == va && e.pa == pa {
		// The word is unchanged (any write to it would have bumped
		// icGen); refresh the translation and L1 layers, keep the decode.
		e.tgMode, e.root, e.lref = tg, root, lref
		return e.in, cyc, nil
	}
	// Mark the page BEFORE reading the word: a store from another hart
	// that lands after the mark bumps icGen via the code-write snoop,
	// and this entry carries the pre-snapshot generation, so it dies
	// immediately. Marking after the read would leave a window where a
	// racing store goes unsnooped and a stale decode survives.
	c.machine.markCodePage(pa)
	word := c.fetchWin.LoadFast(pa, 8)
	*e = icEntry{
		va: va, pa: pa, gen: icGen,
		tgMode: tg, root: root,
		in: isa.Decode(word), lref: lref,
	}
	return e.in, cyc, nil
}

// Load implements isa.Bus.
func (c *Core) Load(va uint64, width int) (uint64, uint64, *isa.MemFault) {
	if va&(uint64(width)-1) != 0 {
		return 0, 0, &isa.MemFault{Kind: isa.FaultMisaligned, Addr: va}
	}
	if c.fastPath {
		pa, walkCyc, fault := c.translateFast(&c.loadTC, va, uint64(width), pt.Load)
		if fault != nil {
			return 0, walkCyc, fault
		}
		cyc := c.l1Hit
		if !c.L1.TouchFast(pa, &c.dataRef) {
			cyc = c.cachedAccessRef(pa, &c.dataRef)
		}
		// pa is aligned and isolation-bounded, so the unchecked window
		// access is safe (see Window.LoadFast).
		return c.dataWin.LoadFast(pa, width), walkCyc + cyc, nil
	}
	pa, walkCyc, fault := c.translate(va, uint64(width), pt.Load, c.CPU.Mode)
	if fault != nil {
		return 0, walkCyc, fault
	}
	cyc := c.cachedAccess(pa)
	val, err := c.machine.Mem.Load(pa, width)
	if err != nil {
		return 0, walkCyc + cyc, &isa.MemFault{Kind: isa.FaultAccess, Addr: va}
	}
	return val, walkCyc + cyc, nil
}

// Store implements isa.Bus. A store reaching a copy-on-write frozen
// page (an enclave-snapshot alias whose PTE write-clear a stale TLB
// entry bypassed) faults as an access fault in both engines — the
// physical-memory backstop of the monitor's snapshot subsystem. The
// COW check runs after the cache access, so modeled cycles and cache
// state stay identical between the fast and reference paths.
func (c *Core) Store(va uint64, width int, val uint64) (uint64, *isa.MemFault) {
	if va&(uint64(width)-1) != 0 {
		return 0, &isa.MemFault{Kind: isa.FaultMisaligned, Addr: va}
	}
	if c.fastPath {
		pa, walkCyc, fault := c.translateFast(&c.storeTC, va, uint64(width), pt.Store)
		if fault != nil {
			return walkCyc, fault
		}
		cyc := c.l1Hit
		if !c.L1.TouchFast(pa, &c.dataRef) {
			cyc = c.cachedAccessRef(pa, &c.dataRef)
		}
		if c.machine.Mem.IsCOW(pa) {
			return walkCyc + cyc, &isa.MemFault{Kind: isa.FaultAccess, Addr: va}
		}
		c.dataWin.StoreFast(pa, width, val)
		return walkCyc + cyc, nil
	}
	pa, walkCyc, fault := c.translate(va, uint64(width), pt.Store, c.CPU.Mode)
	if fault != nil {
		return walkCyc, fault
	}
	cyc := c.cachedAccess(pa)
	if err := c.machine.Mem.Store(pa, width, val); err != nil {
		return walkCyc + cyc, &isa.MemFault{Kind: isa.FaultAccess, Addr: va}
	}
	return walkCyc + cyc, nil
}

// LoadAs performs a one-off data load on this core's translation state
// with an explicit privilege mode. Go-level untrusted OS code uses this
// (with isa.PrivS) so that its accesses face exactly the checks an
// S-mode kernel would.
func (c *Core) LoadAs(mode isa.Priv, va uint64, width int) (uint64, error) {
	if va&(uint64(width)-1) != 0 {
		return 0, &isa.Trap{Cause: isa.CauseMisalignedLoad, Value: va}
	}
	pa, _, fault := c.translate(va, uint64(width), pt.Load, mode)
	if fault != nil {
		return 0, &isa.Trap{Cause: trapCauseFor(fault, pt.Load), PC: 0, Value: va}
	}
	c.cachedAccess(pa)
	return c.machine.Mem.Load(pa, width)
}

// StoreAs is the store counterpart of LoadAs.
func (c *Core) StoreAs(mode isa.Priv, va uint64, width int, val uint64) error {
	if va&(uint64(width)-1) != 0 {
		return &isa.Trap{Cause: isa.CauseMisalignedStore, Value: va}
	}
	pa, _, fault := c.translate(va, uint64(width), pt.Store, mode)
	if fault != nil {
		return &isa.Trap{Cause: trapCauseFor(fault, pt.Store), PC: 0, Value: va}
	}
	c.cachedAccess(pa)
	return c.machine.Mem.Store(pa, width, val)
}

func trapCauseFor(f *isa.MemFault, acc pt.Access) isa.Cause {
	switch {
	case acc == pt.Load && f.Kind == isa.FaultPage:
		return isa.CauseLoadPageFault
	case acc == pt.Load:
		return isa.CauseLoadAccess
	case acc == pt.Store && f.Kind == isa.FaultPage:
		return isa.CauseStorePageFault
	default:
		return isa.CauseStoreAccess
	}
}
