package machine

import (
	"errors"
	"fmt"

	"sanctorum/internal/isa"
)

// StopReason explains why Run returned.
type StopReason int

// Stop reasons.
const (
	StopReturnToOS StopReason = iota // firmware delegated control to the OS
	StopHalt                         // core halted
	StopMaxSteps                     // step budget exhausted
)

func (r StopReason) String() string {
	switch r {
	case StopReturnToOS:
		return "return-to-os"
	case StopHalt:
		return "halt"
	case StopMaxSteps:
		return "max-steps"
	default:
		return fmt.Sprintf("stop(%d)", int(r))
	}
}

// RunResult reports how a Run ended.
type RunResult struct {
	Reason StopReason
	Trap   *isa.Trap // the final trap, if any
	Steps  int       // instructions retired
}

// ErrNoFirmware is returned when a trap occurs with no firmware
// installed; a machine without a security monitor cannot field events.
var ErrNoFirmware = errors.New("machine: trap with no firmware installed")

// InterruptCore latches an external interrupt on the core; it is
// delivered at the next instruction boundary. The untrusted OS uses this
// to de-schedule an enclave (forcing an AEX via the firmware).
func (m *Machine) InterruptCore(id int) {
	m.Cores[id].pendingIRQ = true
}

// Run executes instructions on the core until the firmware hands
// control back to the OS, the core halts, or maxSteps retire. All traps
// — synchronous faults, ECALLs, timer and external interrupts — are
// routed to the machine's firmware, mirroring the paper's Fig 1 where
// the security monitor receives every event first.
func (m *Machine) Run(coreID int, maxSteps int) (RunResult, error) {
	c := m.Cores[coreID]
	steps := 0
	for steps < maxSteps {
		// Asynchronous events are checked at instruction boundaries.
		if tr := c.takeInterrupt(); tr != nil {
			res, done, err := m.dispatch(c, tr, steps)
			if done {
				return res, err
			}
			continue
		}
		tr := c.CPU.Step(c)
		steps++
		if tr == nil {
			continue
		}
		res, done, err := m.dispatch(c, tr, steps)
		if done {
			return res, err
		}
	}
	return RunResult{Reason: StopMaxSteps, Steps: steps}, nil
}

// takeInterrupt returns a pending asynchronous trap, or nil.
func (c *Core) takeInterrupt() *isa.Trap {
	if c.pendingIRQ {
		c.pendingIRQ = false
		return &isa.Trap{Cause: isa.CauseExternalInterrupt, PC: c.CPU.PC}
	}
	if c.TimerCmp != 0 && c.CPU.Cycles >= c.TimerCmp {
		c.TimerCmp = 0 // one-shot
		return &isa.Trap{Cause: isa.CauseTimerInterrupt, PC: c.CPU.PC}
	}
	return nil
}

func (m *Machine) dispatch(c *Core, tr *isa.Trap, steps int) (RunResult, bool, error) {
	if tr.Cause == isa.CauseHalt {
		// The firmware is notified (it may need to scrub protection-
		// domain state off the core) but a halted core always stops.
		if m.Firmware != nil {
			m.Firmware.HandleTrap(c, tr)
		}
		return RunResult{Reason: StopHalt, Trap: tr, Steps: steps}, true, nil
	}
	if m.Firmware == nil {
		return RunResult{Trap: tr, Steps: steps}, true, ErrNoFirmware
	}
	switch m.Firmware.HandleTrap(c, tr) {
	case DispResume:
		return RunResult{}, false, nil
	case DispHalt:
		return RunResult{Reason: StopHalt, Trap: tr, Steps: steps}, true, nil
	default:
		return RunResult{Reason: StopReturnToOS, Trap: tr, Steps: steps}, true, nil
	}
}

// DMATransfer models a DMA device copying n bytes from src to dst
// (physical addresses). The transfer is subject to the SM-installed DMA
// policy; with no policy installed all DMA is denied, the safe default
// the paper requires.
func (m *Machine) DMATransfer(src, dst, n uint64) error {
	if m.DMAAllowed == nil || !m.DMAAllowed(src, n) || !m.DMAAllowed(dst, n) {
		return fmt.Errorf("machine: DMA transfer %#x->%#x (%d bytes) denied", src, dst, n)
	}
	buf := make([]byte, n)
	if err := m.Mem.ReadBytes(src, buf); err != nil {
		return err
	}
	return m.Mem.WriteBytes(dst, buf)
}
