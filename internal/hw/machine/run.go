package machine

import (
	"errors"
	"fmt"

	"sanctorum/internal/isa"
)

// StopReason explains why Run returned.
type StopReason int

// Stop reasons.
const (
	StopReturnToOS StopReason = iota // firmware delegated control to the OS
	StopHalt                         // core halted
	StopMaxSteps                     // step budget exhausted
)

func (r StopReason) String() string {
	switch r {
	case StopReturnToOS:
		return "return-to-os"
	case StopHalt:
		return "halt"
	case StopMaxSteps:
		return "max-steps"
	default:
		return fmt.Sprintf("stop(%d)", int(r))
	}
}

// RunResult reports how a Run ended.
type RunResult struct {
	Reason StopReason
	Trap   *isa.Trap // the final trap, if any
	Steps  int       // instructions retired
}

// ErrNoFirmware is returned when a trap occurs with no firmware
// installed; a machine without a security monitor cannot field events.
var ErrNoFirmware = errors.New("machine: trap with no firmware installed")

// Bits of Core.pending, the per-instruction asynchronous-event poll.
const (
	pendingIRQ uint32 = 1 << iota // external interrupt (InterruptCore)
	pendingIPI                    // inter-processor mailbox delivery (ipi.go)
)

// InterruptCore latches an external interrupt on the core; it is
// delivered at the next instruction boundary. The untrusted OS uses this
// to de-schedule an enclave (forcing an AEX via the firmware). The latch
// is atomic, so any hart — or an OS goroutine racing a running core —
// may post it.
func (m *Machine) InterruptCore(id int) {
	m.Cores[id].pending.Or(pendingIRQ)
}

// Run executes instructions on the core until the firmware hands
// control back to the OS, the core halts, or maxSteps retire. All traps
// — synchronous faults, ECALLs, timer and external interrupts — are
// routed to the machine's firmware, mirroring the paper's Fig 1 where
// the security monitor receives every event first.
//
// Run holds the core's runMu for its whole duration: one goroutine
// drives one core, and IPI posters use the same mutex to execute
// mailbox requests on behalf of cores that are not running (ipi.go).
//
// The loop is structured for throughput: while neither the timer nor
// an external interrupt is armed — the overwhelmingly common state —
// the per-instruction event poll reduces to one atomic (plain, on our
// host ISAs) load of c.pending, and the timer comparison is re-checked
// only after a trap (the only point where firmware can arm it on this
// core).
func (m *Machine) Run(coreID int, maxSteps int) (RunResult, error) {
	c := m.Cores[coreID]
	c.runMu.Lock()
	defer c.runMu.Unlock()
	defer m.publishCycles(c)
	steps := 0
	for steps < maxSteps {
		// Asynchronous events are checked at instruction boundaries.
		if tr := c.takeInterrupt(); tr != nil {
			res, done, err := m.dispatch(c, tr, steps)
			if done {
				return res, err
			}
			continue
		}
		if c.TimerCmp == 0 {
			// Hot loop: no timer armed. pending is still polled each
			// step (InterruptCore or an IPI may latch it at any time).
			// The step sequence is spelled out here so the fetch — the
			// interpreter's hottest call — goes to FetchDecoded
			// directly instead of through an interface.
			//
			// The block engine hooks in at control-transfer targets:
			// seqPC tracks where a purely sequential fetch would land,
			// so the block lookup (and, on misses, the heat counting
			// that drives compilation) runs only when the PC arrived
			// via a branch, jump, trap return or run entry — the only
			// PCs that can head a block. Block execution polls pending
			// at block boundaries, which are instruction boundaries;
			// a trap from inside a block arrives here exactly like a
			// per-instruction trap, with steps already advanced.
			cpu := &c.CPU
			c.seqPC = ^uint64(0)
			for steps < maxSteps && c.pending.Load() == 0 {
				var tr *isa.Trap
				if !c.fastPath {
					tr = cpu.Step(c)
					steps++
				} else {
					if pc := cpu.PC; pc != c.seqPC {
						if b := c.blockFor(pc); b != nil && b.n <= maxSteps-steps {
							n, btr := c.execBlock(b, maxSteps-steps)
							if n > 0 || btr != nil {
								steps += n
								tr = btr
								c.seqPC = ^uint64(0)
								goto delivered
							}
						}
					}
					c.seqPC = cpu.PC + isa.InstrSize
					if tr = cpu.PreStep(); tr == nil {
						if e := c.fetchHit(cpu.PC); e != nil {
							cpu.Cycles += c.l1Hit
							tr = cpu.ExecDecoded(e.in, c)
						} else {
							in, cyc, fault := c.fetchSlow(cpu.PC)
							cpu.Cycles += cyc
							if fault != nil {
								tr = cpu.FetchFault(fault)
							} else {
								tr = cpu.ExecDecoded(in, c)
							}
						}
					}
					steps++
				}
			delivered:
				if tr != nil {
					res, done, err := m.dispatch(c, tr, steps)
					if done {
						return res, err
					}
					// The firmware may have redirected the PC; the next
					// instruction is a transfer target again.
					c.seqPC = ^uint64(0)
					if c.TimerCmp != 0 {
						break // firmware armed the timer; resume polling
					}
				}
			}
			continue
		}
		tr := c.step()
		steps++
		if tr == nil {
			continue
		}
		res, done, err := m.dispatch(c, tr, steps)
		if done {
			return res, err
		}
	}
	return RunResult{Reason: StopMaxSteps, Steps: steps}, nil
}

// step retires one instruction: CPU.Step's sequence with the fetch
// served by the decode cache. The hot loop in Run spells out the same
// sequence inline (plus the fetchHit short-circuit); both copies must
// stay in lockstep with CPU.Step.
func (c *Core) step() *isa.Trap {
	if !c.fastPath {
		return c.CPU.Step(c)
	}
	cpu := &c.CPU
	if tr := cpu.PreStep(); tr != nil {
		return tr
	}
	in, cyc, fault := c.FetchDecoded(cpu.PC)
	cpu.Cycles += cyc
	if fault != nil {
		return cpu.FetchFault(fault)
	}
	return cpu.ExecDecoded(in, c)
}

// takeInterrupt returns a pending asynchronous trap, or nil. IPI
// mailbox deliveries are acknowledged here — at an instruction boundary,
// which is the architectural contract of an inter-processor interrupt —
// without raising a trap (they carry monitor work, not events for the
// firmware's state machine). The trap is returned in a per-core buffer
// valid until the next interrupt.
func (c *Core) takeInterrupt() *isa.Trap {
	if p := c.pending.Load(); p != 0 {
		if p&pendingIPI != 0 {
			c.drainIPIs()
		}
		if p&pendingIRQ != 0 {
			c.pending.And(^pendingIRQ)
			c.irqTrap = isa.Trap{Cause: isa.CauseExternalInterrupt, PC: c.CPU.PC}
			return &c.irqTrap
		}
	}
	if c.TimerCmp != 0 && c.CPU.Cycles >= c.TimerCmp {
		c.TimerCmp = 0 // one-shot
		c.irqTrap = isa.Trap{Cause: isa.CauseTimerInterrupt, PC: c.CPU.PC}
		return &c.irqTrap
	}
	return nil
}

// dispatch routes a trap to the firmware. Traps arrive in reusable
// per-core buffers, so any trap that escapes into a RunResult is copied
// first.
func (m *Machine) dispatch(c *Core, tr *isa.Trap, steps int) (RunResult, bool, error) {
	// Publish modeled cycles before the firmware runs so monitor-side
	// telemetry stamps see the work retired up to this trap.
	m.publishCycles(c)
	if tr.Cause == isa.CauseHalt {
		// The firmware is notified (it may need to scrub protection-
		// domain state off the core) but a halted core always stops.
		if m.Firmware != nil {
			m.Firmware.HandleTrap(c, tr)
		}
		t := *tr
		return RunResult{Reason: StopHalt, Trap: &t, Steps: steps}, true, nil
	}
	if m.Firmware == nil {
		t := *tr
		return RunResult{Trap: &t, Steps: steps}, true, ErrNoFirmware
	}
	switch m.Firmware.HandleTrap(c, tr) {
	case DispResume:
		return RunResult{}, false, nil
	case DispHalt:
		t := *tr
		return RunResult{Reason: StopHalt, Trap: &t, Steps: steps}, true, nil
	default:
		t := *tr
		return RunResult{Reason: StopReturnToOS, Trap: &t, Steps: steps}, true, nil
	}
}

// DMATransfer models a DMA device copying n bytes from src to dst
// (physical addresses). The transfer is subject to the SM-installed DMA
// policy; with no policy installed all DMA is denied, the safe default
// the paper requires.
func (m *Machine) DMATransfer(src, dst, n uint64) error {
	if m.DMAAllowed == nil || !m.DMAAllowed(src, n) || !m.DMAAllowed(dst, n) {
		return fmt.Errorf("machine: DMA transfer %#x->%#x (%d bytes) denied", src, dst, n)
	}
	buf := make([]byte, n)
	if err := m.Mem.ReadBytes(src, buf); err != nil {
		return err
	}
	return m.Mem.WriteBytes(dst, buf)
}
