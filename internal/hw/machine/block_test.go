package machine

import (
	"testing"

	"sanctorum/internal/isa"
)

// Directed tests for the block-compilation tier (block.go): discovery
// and promotion, loop chaining, guard bails under self-modifying code,
// revalidation across generation bumps, and the disable knob. The
// broad equivalence net is TestFastSlowEquivalence plus the
// differential fuzzer in blockfuzz_test.go; these tests pin the
// engine's internal behaviour via BlockStats.

// bfLoopWords is the canonical hot loop: load, accumulate, store,
// increment, mix, jump back — the bench kernel's shape.
func bfLoopWords() []uint64 {
	prog := []isa.Instr{
		{Op: isa.OpLD, Rd: 6, Rs1: 8, Imm: 0},
		{Op: isa.OpADD, Rd: 7, Rs1: 7, Rs2: 6},
		{Op: isa.OpSD, Rs1: 8, Rs2: 7, Imm: 8},
		{Op: isa.OpADDI, Rd: 5, Rs1: 5, Imm: 1},
		{Op: isa.OpXOR, Rd: 7, Rs1: 7, Rs2: 5},
		{Op: isa.OpJAL, Imm: -5 * 8},
	}
	words := make([]uint64, len(prog))
	for i, in := range prog {
		words[i] = in.Encode()
	}
	return words
}

// TestBlockHotLoop: a tight loop is promoted to one block, nearly all
// instructions retire inside it, consecutive iterations chain without
// leaving the engine, and the final state matches the per-instruction
// engine exactly.
func TestBlockHotLoop(t *testing.T) {
	const steps = 8192
	m, c := bfMachine(t, IsolationNone, true, 1, bfLoopWords())
	if _, err := m.Run(0, steps); err != nil {
		t.Fatal(err)
	}
	bs := c.BlockStats()
	if bs.Compiled != 1 {
		t.Errorf("compiled %d blocks, want 1", bs.Compiled)
	}
	if frac := float64(bs.Instrs) / steps; frac < 0.9 {
		t.Errorf("only %.1f%% of instructions retired in blocks", 100*frac)
	}
	if bs.Loops == 0 {
		t.Error("loop iterations never chained inside the engine")
	}
	if bs.GuardBails != 0 {
		t.Errorf("%d guard bails in a steady-state loop, want 0", bs.GuardBails)
	}

	rm, rc := bfMachine(t, IsolationNone, false, 1, bfLoopWords())
	if _, err := rm.Run(0, steps); err != nil {
		t.Fatal(err)
	}
	if c.CPU.Regs != rc.CPU.Regs || c.CPU.PC != rc.CPU.PC || c.CPU.Cycles != rc.CPU.Cycles {
		t.Errorf("block engine diverged from reference: pc %#x/%d vs %#x/%d",
			c.CPU.PC, c.CPU.Cycles, rc.CPU.PC, rc.CPU.Cycles)
	}
}

// TestBlockSelfModifyBail: a store inside a block that overwrites a
// later instruction of the same block must bail at the store's
// boundary, and the re-fetched tail must execute the new code. The
// sequence loops so the site gets hot enough to compile (a block only
// seeds from a re-entered transfer target); the patch lands on the
// second, block-executed iteration.
func TestBlockSelfModifyBail(t *testing.T) {
	patched := isa.Instr{Op: isa.OpLI, Rd: 3, Imm: 42}.Encode()
	// The store's target is computed per iteration: a scratch data word
	// for the first two (so the site can get hot and compile with a
	// clean seed — a code write kills the compile seed by design), the
	// LI's own code word from iteration 2 on. The patch therefore lands
	// mid-block, between the store's segment and the LI's.
	prog := []isa.Instr{
		{Op: isa.OpLD, Rd: 4, Rs1: 9, Imm: 0x100}, // replacement word
		{Op: isa.OpSLTIU, Rd: 15, Rs1: 5, Imm: 2}, // 1 while iteration < 2
		{Op: isa.OpMUL, Rd: 16, Rs1: 15, Rs2: 13}, // x13 = code target - data scratch
		{Op: isa.OpSUB, Rd: 17, Rs1: 14, Rs2: 16}, // x14 = code target
		{Op: isa.OpSD, Rs1: 17, Rs2: 4, Imm: 0},   // patch the LI (iterations ≥ 2)
		{Op: isa.OpADDI, Rd: 5, Rs1: 5, Imm: 1},
		{Op: isa.OpLI, Rd: 3, Imm: 1}, // becomes LI x3, 42
		{Op: isa.OpBLT, Rs1: 5, Rs2: 12, Imm: -7 * 8},
		{Op: isa.OpHALT},
	}
	words := make([]uint64, len(prog))
	for i, in := range prog {
		words[i] = in.Encode()
	}
	m, c := bfMachine(t, IsolationNone, true, 1, words)
	if err := m.Mem.Store(bfCodePA+0x100, 8, patched); err != nil {
		t.Fatal(err)
	}
	codeTarget := bfCodeVA + 6*isa.InstrSize
	c.CPU.Regs[12] = 5 // iterations
	c.CPU.Regs[13] = codeTarget - bfDataVA
	c.CPU.Regs[14] = codeTarget
	m.Firmware = &skipFirmware{}
	res, err := m.Run(0, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != StopHalt {
		t.Fatalf("stop = %+v", res)
	}
	if c.CPU.Regs[3] != 42 {
		t.Fatalf("x3 = %d: block executed a stale instruction past a code write", c.CPU.Regs[3])
	}
	bs := c.BlockStats()
	if bs.Compiled == 0 {
		t.Fatalf("loop never compiled: %+v", bs)
	}
	if bs.GuardBails == 0 {
		t.Errorf("self-modifying store did not bail the block: %+v", bs)
	}
}

// TestBlockChainedPassBail: a guard bail on a chained pass (not the
// first) must resume at entry + segment offset, not at entry + total
// retired — the two agree only on pass zero. The store walks down
// through the second (never-executed) code page for 15 iterations and
// only then crosses into the executing page, so the code-write bail
// fires with many completed passes already chained. Everything
// architecturally visible must match the reference interpreter.
func TestBlockChainedPassBail(t *testing.T) {
	prog := []isa.Instr{
		{Op: isa.OpADDI, Rd: 7, Rs1: 9, Imm: 0x1ff8}, // store cursor: last word of code page 2
		{Op: isa.OpLI, Rd: 5, Imm: 0x100},            // cursor step
		{Op: isa.OpLI, Rd: 6, Imm: 24},               // iterations
		// loop:
		{Op: isa.OpSD, Rs1: 7, Rs2: 2, Imm: 0},  // [cursor] = 0
		{Op: isa.OpSUB, Rd: 7, Rs1: 7, Rs2: 5},  // cursor -= 0x100
		{Op: isa.OpADDI, Rd: 4, Rs1: 4, Imm: 1}, // iteration++
		{Op: isa.OpBNE, Rs1: 4, Rs2: 6, Imm: -3 * 8},
		{Op: isa.OpHALT},
	}
	words := make([]uint64, len(prog))
	for i, in := range prog {
		words[i] = in.Encode()
	}
	for _, kind := range []IsolationKind{IsolationNone, IsolationSanctum, IsolationKeystone} {
		bfCompare(t, kind, words)
	}
}

// TestBlockRevalidation: a TLB flush (domain switch, shootdown) makes
// the block's guard word stale; the next hot entry must revive the
// block by revalidation, not recompilation.
func TestBlockRevalidation(t *testing.T) {
	m, c := bfMachine(t, IsolationNone, true, 1, bfLoopWords())
	if _, err := m.Run(0, 4096); err != nil {
		t.Fatal(err)
	}
	if bs := c.BlockStats(); bs.Compiled != 1 {
		t.Fatalf("setup: compiled %d blocks, want 1", bs.Compiled)
	}
	c.TLB.Flush()
	if _, err := m.Run(0, 4096); err != nil {
		t.Fatal(err)
	}
	bs := c.BlockStats()
	if bs.Revalidations == 0 {
		t.Errorf("stale block was not revalidated: %+v", bs)
	}
	if bs.Compiled != 1 {
		t.Errorf("stale block was recompiled (%d compiles), want revalidation only", bs.Compiled)
	}
}

// TestBlockThreshold: a site below the heat threshold stays on the
// per-instruction path; crossing it compiles.
func TestBlockThreshold(t *testing.T) {
	m, c := bfMachine(t, IsolationNone, true, 50, bfLoopWords())
	if _, err := m.Run(0, 6*40); err != nil { // 40 entries < 50
		t.Fatal(err)
	}
	if bs := c.BlockStats(); bs.Compiled != 0 {
		t.Fatalf("compiled below threshold: %+v", bs)
	}
	if _, err := m.Run(0, 6*20); err != nil { // crosses 50
		t.Fatal(err)
	}
	if bs := c.BlockStats(); bs.Compiled != 1 {
		t.Errorf("site over threshold not compiled: %+v", bs)
	}
}

// TestBlockEngineDisabled: the knob really disables the tier.
func TestBlockEngineDisabled(t *testing.T) {
	m, c := bfMachine(t, IsolationNone, false, 1, bfLoopWords())
	if _, err := m.Run(0, 4096); err != nil {
		t.Fatal(err)
	}
	if bs := c.BlockStats(); bs != (BlockStats{}) {
		t.Errorf("disabled engine recorded activity: %+v", bs)
	}
}
