package machine

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"sanctorum/internal/hw/mem"
	"sanctorum/internal/hw/pmp"
	"sanctorum/internal/hw/pt"
	"sanctorum/internal/isa"
)

// Differential fuzzing of the block-compilation tier: the same random
// instruction stream is executed on a machine with the block engine
// forced hot (threshold 1) and on one with it disabled, and every
// architecturally visible observable — registers, PC, modeled cycles,
// TLB and cache statistics, the full trap stream, and the final
// contents of the code and data pages — must be identical. The
// generator is biased toward the cases with their own bail-out
// machinery: self-modifying stores over the code pages, accesses that
// straddle the last mapped page into unmapped space, mid-block faults,
// and system ops that must terminate block formation.

const (
	bfCodeVA   = uint64(0x10000)
	bfCodePA   = uint64(0x10000)
	bfDataVA   = uint64(0x40000)
	bfDataPA   = uint64(0x50000)
	bfUnmapped = uint64(0x700000)
	bfCodeLen  = 2 * mem.PageSize // two writable+executable pages
	bfDataLen  = 3 * mem.PageSize
)

// bfMachine builds a paged S-mode machine with the fuzz address space
// and the program words loaded. blockEngine selects the engine under
// test versus the per-instruction control; threshold sets the heat
// count at which a transfer target is promoted (1 = on first sight,
// for maximal block coverage).
func bfMachine(t *testing.T, kind IsolationKind, blockEngine bool, threshold int, words []uint64) (*Machine, *Core) {
	t.Helper()
	cfg := smallConfig(kind)
	cfg.DisableBlockEngine = !blockEngine
	cfg.BlockThreshold = threshold
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	next := uint64(0x20000) >> mem.PageBits
	alloc := func() (uint64, error) { p := next; next++; return p, nil }
	b, err := pt.NewBuilder(m.Mem, alloc)
	if err != nil {
		t.Fatal(err)
	}
	for p := uint64(0); p < bfCodeLen/mem.PageSize; p++ {
		if err := b.Map(bfCodeVA+p*mem.PageSize, bfCodePA+p*mem.PageSize, pt.R|pt.W|pt.X); err != nil {
			t.Fatal(err)
		}
	}
	for p := uint64(0); p < bfDataLen/mem.PageSize; p++ {
		if err := b.Map(bfDataVA+p*mem.PageSize, bfDataPA+p*mem.PageSize, pt.R|pt.W); err != nil {
			t.Fatal(err)
		}
	}
	for i, w := range words {
		if err := m.Mem.Store(bfCodePA+uint64(i)*isa.InstrSize, 8, w); err != nil {
			t.Fatal(err)
		}
	}
	c := m.Cores[0]
	c.Satp = b.Root
	c.CPU.Mode = isa.PrivS
	c.CPU.PC = bfCodeVA
	switch kind {
	case IsolationSanctum:
		c.OSRegions = m.DRAM.Full()
	case IsolationKeystone:
		if err := c.PMP.Configure(0, pmp.Entry{
			Valid: true, Base: 0, Size: m.Mem.Size(), Perm: pmp.R | pmp.W | pmp.X,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Base registers the generator builds addresses from: data base,
	// code base (self-modifying stores), the last mapped data word
	// (offsets from here straddle into unmapped space), and a wholly
	// unmapped base (mid-block faults).
	c.CPU.Regs[8] = bfDataVA
	c.CPU.Regs[9] = bfCodeVA
	c.CPU.Regs[10] = bfDataVA + bfDataLen - 8
	c.CPU.Regs[11] = bfUnmapped
	return m, c
}

var bfALUOps = []isa.Op{
	isa.OpADD, isa.OpSUB, isa.OpAND, isa.OpOR, isa.OpXOR,
	isa.OpSLL, isa.OpSRL, isa.OpSRA, isa.OpSLT, isa.OpSLTU,
	isa.OpMUL, isa.OpDIVU, isa.OpREMU,
	isa.OpADDI, isa.OpANDI, isa.OpORI, isa.OpXORI,
	isa.OpSLLI, isa.OpSRLI, isa.OpSRAI, isa.OpSLTI, isa.OpSLTIU,
	isa.OpLI, isa.OpNOP,
}

var bfMemOps = []isa.Op{
	isa.OpLB, isa.OpLH, isa.OpLW, isa.OpLD, isa.OpLBU, isa.OpLHU, isa.OpLWU,
	isa.OpSB, isa.OpSH, isa.OpSW, isa.OpSD,
}

var bfBranchOps = []isa.Op{isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU}

// bfGenerate maps fuzz bytes to an instruction stream. Four bytes per
// instruction: a class selector and three operand bytes. The stream is
// capped at the code region less one word for the trailing HALT.
func bfGenerate(data []byte) []uint64 {
	max := int(bfCodeLen/isa.InstrSize) - 1
	var words []uint64
	for i := 0; i+4 <= len(data) && len(words) < max; i += 4 {
		sel, b1, b2, b3 := data[i], data[i+1], data[i+2], data[i+3]
		var in isa.Instr
		switch {
		case sel < 140: // ALU: the bulk of block bodies
			in = isa.Instr{
				Op: bfALUOps[int(b1)%len(bfALUOps)],
				Rd: b2 % isa.NumRegs, Rs1: b3 % isa.NumRegs, Rs2: (b2 >> 3) % isa.NumRegs,
				Imm: int32(int8(b3)) * int32(b1),
			}
		case sel < 190: // memory: base register picks the fault class
			base := uint8(8 + b2%4)
			imm := int32(b3) * 8
			if b2&0x10 != 0 {
				imm = int32(int8(b3)) // small, possibly misaligned offset
			}
			in = isa.Instr{
				Op: bfMemOps[int(b1)%len(bfMemOps)],
				Rd: b2 % isa.NumRegs, Rs1: base, Rs2: b3 % isa.NumRegs, Imm: imm,
			}
		case sel < 215: // control flow: short aligned hops inside the region
			off := (int32(int8(b2)) % 24) * isa.InstrSize
			if off == 0 {
				off = isa.InstrSize
			}
			if sel < 205 {
				in = isa.Instr{
					Op:  bfBranchOps[int(b1)%len(bfBranchOps)],
					Rs1: b2 % isa.NumRegs, Rs2: b3 % isa.NumRegs, Imm: off,
				}
			} else {
				in = isa.Instr{Op: isa.OpJAL, Rd: b2 % isa.NumRegs, Imm: off}
			}
		case sel < 225: // system ops: block formation must stop before them
			in = isa.Instr{Op: isa.OpRDCYCLE, Rd: b2 % isa.NumRegs}
		case sel < 230:
			in = isa.Instr{Op: isa.OpECALL}
		default: // raw word: undecodable garbage must trap identically
			words = append(words, binary.LittleEndian.Uint64([]byte{sel, b1, b2, b3, b1, b2, b3, sel}))
			continue
		}
		words = append(words, in.Encode())
	}
	words = append(words, isa.Instr{Op: isa.OpHALT}.Encode())
	return words
}

// bfState snapshots everything the two engines must agree on.
type bfState struct {
	res    RunResult
	regs   [isa.NumRegs]uint64
	pc     uint64
	cycles uint64
	tlb    [4]uint64
	l1     [3]uint64
	l2     [3]uint64
	causes []isa.Cause
	values []uint64
	code   []byte
	data   []byte
}

func bfRun(t *testing.T, kind IsolationKind, blockEngine bool, words []uint64) bfState {
	t.Helper()
	m, c := bfMachine(t, kind, blockEngine, 1, words)
	fw := &skipFirmware{}
	m.Firmware = fw
	res, err := m.Run(0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	s := bfState{
		res: res, regs: c.CPU.Regs, pc: c.CPU.PC, cycles: c.CPU.Cycles,
		tlb:    [4]uint64{c.TLB.Hits, c.TLB.Misses, c.TLB.Flushes, c.TLB.Shootdown},
		l1:     [3]uint64{c.L1.Hits, c.L1.Misses, c.L1.Evictions},
		l2:     [3]uint64{m.L2.Hits, m.L2.Misses, m.L2.Evictions},
		causes: fw.causes, values: fw.values,
		code: make([]byte, bfCodeLen), data: make([]byte, bfDataLen),
	}
	if err := m.Mem.ReadBytes(bfCodePA, s.code); err != nil {
		t.Fatal(err)
	}
	if err := m.Mem.ReadBytes(bfDataPA, s.data); err != nil {
		t.Fatal(err)
	}
	return s
}

func bfCompare(t *testing.T, kind IsolationKind, words []uint64) {
	t.Helper()
	blk := bfRun(t, kind, true, words)
	ref := bfRun(t, kind, false, words)
	if blk.res.Reason != ref.res.Reason || blk.res.Steps != ref.res.Steps {
		t.Errorf("%v: stop block %v/%d, reference %v/%d",
			kind, blk.res.Reason, blk.res.Steps, ref.res.Reason, ref.res.Steps)
	}
	if blk.regs != ref.regs {
		t.Errorf("%v: register files differ:\nblock %v\nref   %v", kind, blk.regs, ref.regs)
	}
	if blk.pc != ref.pc || blk.cycles != ref.cycles {
		t.Errorf("%v: pc/cycles block %#x/%d, reference %#x/%d",
			kind, blk.pc, blk.cycles, ref.pc, ref.cycles)
	}
	if blk.tlb != ref.tlb {
		t.Errorf("%v: TLB stats block %v, reference %v", kind, blk.tlb, ref.tlb)
	}
	if blk.l1 != ref.l1 {
		t.Errorf("%v: L1 stats block %v, reference %v", kind, blk.l1, ref.l1)
	}
	if blk.l2 != ref.l2 {
		t.Errorf("%v: L2 stats block %v, reference %v", kind, blk.l2, ref.l2)
	}
	if len(blk.causes) != len(ref.causes) {
		t.Fatalf("%v: trap streams differ in length: %v vs %v", kind, blk.causes, ref.causes)
	}
	for i := range blk.causes {
		if blk.causes[i] != ref.causes[i] || blk.values[i] != ref.values[i] {
			t.Errorf("%v: trap %d: block %v/%#x, reference %v/%#x",
				kind, i, blk.causes[i], blk.values[i], ref.causes[i], ref.values[i])
		}
	}
	for i := range blk.code {
		if blk.code[i] != ref.code[i] {
			t.Fatalf("%v: code byte %#x differs: block %#x, reference %#x",
				kind, i, blk.code[i], ref.code[i])
		}
	}
	for i := range blk.data {
		if blk.data[i] != ref.data[i] {
			t.Fatalf("%v: data byte %#x differs: block %#x, reference %#x",
				kind, i, blk.data[i], ref.data[i])
		}
	}
}

// FuzzBlockDifferential is the open-ended harness; the nightly deep-CI
// job runs it with -fuzz for an extended period. Each input drives all
// three isolation backends.
func FuzzBlockDifferential(f *testing.F) {
	// Seeds aimed at the interesting regimes: a tight ALU loop, a
	// store-over-code sequence, page-straddling and unmapped accesses,
	// and raw garbage.
	f.Add([]byte{0, 0, 7, 7, 0, 13, 7, 1, 200, 0, 7, 240})
	f.Add([]byte{150, 10, 1, 8, 150, 7, 0x11, 3, 150, 3, 2, 200})
	f.Add([]byte{0, 22, 5, 2, 160, 1, 9, 0, 0, 0, 6, 6, 210, 0, 5, 0})
	f.Add([]byte{255, 1, 2, 3, 230, 9, 9, 9, 220, 0, 3, 0})
	rng := rand.New(rand.NewSource(7))
	long := make([]byte, 256)
	rng.Read(long)
	f.Add(long)
	f.Fuzz(func(t *testing.T, data []byte) {
		words := bfGenerate(data)
		for _, kind := range []IsolationKind{IsolationNone, IsolationSanctum, IsolationKeystone} {
			bfCompare(t, kind, words)
		}
	})
}

// TestBlockDifferentialRandom is the always-on slice of the fuzzer: a
// fixed-seed batch of generated programs through the same comparator,
// so tier-1 CI exercises the differential property without -fuzz.
func TestBlockDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	kinds := []IsolationKind{IsolationNone, IsolationSanctum, IsolationKeystone}
	for i := 0; i < 150; i++ {
		data := make([]byte, 64+rng.Intn(192))
		rng.Read(data)
		bfCompare(t, kinds[i%len(kinds)], bfGenerate(data))
	}
}
