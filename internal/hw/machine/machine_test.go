package machine

import (
	"errors"
	"testing"

	"sanctorum/internal/asm"
	"sanctorum/internal/hw/dram"
	"sanctorum/internal/hw/mem"
	"sanctorum/internal/hw/pmp"
	"sanctorum/internal/hw/pt"
	"sanctorum/internal/isa"
)

// recordingFirmware routes traps to a closure, defaulting to return-to-OS.
type recordingFirmware struct {
	traps  []*isa.Trap
	handle func(c *Core, tr *isa.Trap) Disposition
}

func (f *recordingFirmware) HandleTrap(c *Core, tr *isa.Trap) Disposition {
	// Traps arrive in reusable per-core buffers; copy before retaining.
	t := *tr
	f.traps = append(f.traps, &t)
	if f.handle != nil {
		return f.handle(c, tr)
	}
	return DispReturnToOS
}

func smallConfig(kind IsolationKind) Config {
	cfg := DefaultConfig(kind)
	cfg.DRAM = dram.Layout{RegionShift: 16, RegionCount: 64} // 64 KiB regions, 4 MiB total
	return cfg
}

func newTestMachine(t *testing.T, kind IsolationKind) (*Machine, *recordingFirmware) {
	t.Helper()
	m, err := New(smallConfig(kind))
	if err != nil {
		t.Fatal(err)
	}
	fw := &recordingFirmware{}
	m.Firmware = fw
	return m, fw
}

// loadAt assembles a program into physical memory at pa.
func loadAt(t *testing.T, m *Machine, pa uint64, p *asm.Program, base uint64) []byte {
	t.Helper()
	bin, err := p.Assemble(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Mem.WriteBytes(pa, bin); err != nil {
		t.Fatal(err)
	}
	return bin
}

func TestBareModeExecution(t *testing.T) {
	m, _ := newTestMachine(t, IsolationNone)
	p := asm.New()
	p.Li(1, 6).Li(2, 7).I(isa.OpMUL, 3, 1, 2, 0).Halt()
	loadAt(t, m, 0x1000, p, 0x1000)
	c := m.Cores[0]
	c.CPU.PC = 0x1000
	res, err := m.Run(0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != StopHalt {
		t.Fatalf("stop reason = %v", res.Reason)
	}
	if c.CPU.Regs[3] != 42 {
		t.Fatalf("x3 = %d", c.CPU.Regs[3])
	}
}

// buildUserSpace maps a U-mode program at va using page tables placed
// in physical pages starting at tablePA.
func buildUserSpace(t *testing.T, m *Machine, codePA, dataPA, tableBase uint64) (root uint64, codeVA, dataVA uint64) {
	t.Helper()
	next := tableBase >> mem.PageBits
	alloc := func() (uint64, error) { p := next; next++; return p, nil }
	b, err := pt.NewBuilder(m.Mem, alloc)
	if err != nil {
		t.Fatal(err)
	}
	codeVA, dataVA = uint64(0x40000000), uint64(0x50000000)
	if err := b.Map(codeVA, codePA, pt.R|pt.X|pt.U); err != nil {
		t.Fatal(err)
	}
	if err := b.Map(dataVA, dataPA, pt.R|pt.W|pt.U); err != nil {
		t.Fatal(err)
	}
	return b.Root, codeVA, dataVA
}

func TestPagedUserExecution(t *testing.T) {
	m, _ := newTestMachine(t, IsolationNone)
	root, codeVA, dataVA := buildUserSpace(t, m, 0x10000, 0x11000, 0x20000)
	p := asm.New()
	p.Li64(1, dataVA)
	p.Li(2, 1234)
	p.I(isa.OpSD, 0, 1, 2, 0)
	p.I(isa.OpLD, 3, 1, 0, 0)
	p.Halt()
	loadAt(t, m, 0x10000, p, codeVA)

	c := m.Cores[0]
	c.Satp = root
	c.CPU.PC = codeVA
	c.CPU.Mode = isa.PrivU
	res, err := m.Run(0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != StopHalt {
		t.Fatalf("stop = %+v", res)
	}
	if c.CPU.Regs[3] != 1234 {
		t.Fatalf("loaded %d", c.CPU.Regs[3])
	}
	// The store went to the mapped physical page.
	v, _ := m.Mem.Load(0x11000, 8)
	if v != 1234 {
		t.Fatalf("phys value = %d", v)
	}
	if c.TLB.Hits == 0 {
		t.Error("TLB never hit during paged execution")
	}
}

func TestPageFaultTrapsToFirmware(t *testing.T) {
	m, fw := newTestMachine(t, IsolationNone)
	root, codeVA, _ := buildUserSpace(t, m, 0x10000, 0x11000, 0x20000)
	p := asm.New()
	p.Li64(1, 0x60000000) // unmapped
	p.I(isa.OpLD, 2, 1, 0, 0)
	p.Halt()
	loadAt(t, m, 0x10000, p, codeVA)
	c := m.Cores[0]
	c.Satp = root
	c.CPU.PC = codeVA
	c.CPU.Mode = isa.PrivU
	res, err := m.Run(0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != StopReturnToOS {
		t.Fatalf("stop = %+v", res)
	}
	if len(fw.traps) != 1 || fw.traps[0].Cause != isa.CauseLoadPageFault {
		t.Fatalf("traps = %+v", fw.traps)
	}
	if fw.traps[0].Value != 0x60000000 {
		t.Fatalf("tval = %#x", fw.traps[0].Value)
	}
}

func TestSanctumRegionIsolation(t *testing.T) {
	m, _ := newTestMachine(t, IsolationSanctum)
	c := m.Cores[0]
	// OS owns regions 0 and 1 only; bare translation.
	c.OSRegions = dram.Bitmap(0).Set(0).Set(1)
	if _, err := c.LoadAs(isa.PrivS, 0x0000, 8); err != nil {
		t.Fatalf("in-region access denied: %v", err)
	}
	if _, err := c.LoadAs(isa.PrivS, 2*m.DRAM.RegionSize(), 8); err == nil {
		t.Fatal("out-of-region S-mode access allowed")
	}
	// M-mode (the SM itself) bypasses region checks.
	if _, err := c.LoadAs(isa.PrivM, 2*m.DRAM.RegionSize(), 8); err != nil {
		t.Fatalf("M-mode access denied: %v", err)
	}
}

func TestSanctumPrivateWalk(t *testing.T) {
	m, _ := newTestMachine(t, IsolationSanctum)
	c := m.Cores[0]
	regSize := m.DRAM.RegionSize()

	// OS page tables in region 0 map a shared page; enclave tables in
	// region 2 map the enclave's private page in region 2.
	osRoot, _, _ := buildUserSpace(t, m, 0x10000, 0x11000, 0x4000)

	encBase := 2 * regSize
	next := (encBase + 0x4000) >> mem.PageBits
	alloc := func() (uint64, error) { p := next; next++; return p, nil }
	b, err := pt.NewBuilder(m.Mem, alloc)
	if err != nil {
		t.Fatal(err)
	}
	const evBase = uint64(0x7000000000 & pt.VAMask & ^uint64(0xFFFFFFF))
	privVA := evBase | 0x1000
	if err := b.Map(privVA, encBase, pt.R|pt.W|pt.U); err != nil {
		t.Fatal(err)
	}

	c.Satp = osRoot
	c.ESatp = b.Root
	c.EvBase = evBase
	c.EvMask = ^uint64(0xFFFFFFF) & pt.VAMask
	c.OSRegions = dram.Bitmap(0).Set(0).Set(1)
	c.EncRegions = dram.Bitmap(0).Set(2)
	c.EnclaveMode = true

	// Enclave private access goes through the enclave root.
	if err := c.StoreAs(isa.PrivU, privVA, 8, 77); err != nil {
		t.Fatalf("private store failed: %v", err)
	}
	v, _ := m.Mem.Load(encBase, 8)
	if v != 77 {
		t.Fatalf("private store landed at %d", v)
	}
	// Enclave access outside evrange uses OS tables (shared memory).
	if _, err := c.LoadAs(isa.PrivU, 0x50000000, 8); err != nil {
		t.Fatalf("shared access failed: %v", err)
	}
	// The private page must be invisible when not in enclave mode.
	c.EnclaveMode = false
	c.TLB.Flush()
	if _, err := c.LoadAs(isa.PrivU, privVA, 8); err == nil {
		t.Fatal("enclave VA resolved outside enclave mode")
	}
}

func TestSanctumWalkConfinedToRegions(t *testing.T) {
	m, _ := newTestMachine(t, IsolationSanctum)
	c := m.Cores[0]
	// Page tables live in region 3, which the OS does NOT own: the walk
	// itself must be rejected, not just the final access.
	regSize := m.DRAM.RegionSize()
	next := (3 * regSize) >> mem.PageBits
	alloc := func() (uint64, error) { p := next; next++; return p, nil }
	b, err := pt.NewBuilder(m.Mem, alloc)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Map(0x40000000, 0, pt.R|pt.U); err != nil {
		t.Fatal(err)
	}
	c.Satp = b.Root
	c.OSRegions = dram.Bitmap(0).Set(0)
	_, err = c.LoadAs(isa.PrivU, 0x40000000, 8)
	if err == nil {
		t.Fatal("walk through foreign region succeeded")
	}
	var tr *isa.Trap
	if !errors.As(err, &tr) || tr.Cause != isa.CauseLoadAccess {
		t.Fatalf("err = %v, want load access fault", err)
	}
}

func TestKeystonePMPEnforcement(t *testing.T) {
	m, _ := newTestMachine(t, IsolationKeystone)
	c := m.Cores[0]
	// White-list one 64 KiB range for S/U mode.
	if err := c.PMP.Configure(0, pmp.Entry{Valid: true, Base: 0x10000, Size: 0x10000, Perm: pmp.R | pmp.W | pmp.X}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadAs(isa.PrivS, 0x10000, 8); err != nil {
		t.Fatalf("white-listed access denied: %v", err)
	}
	if _, err := c.LoadAs(isa.PrivS, 0x30000, 8); err == nil {
		t.Fatal("non-white-listed access allowed")
	}
	if _, err := c.LoadAs(isa.PrivM, 0x30000, 8); err != nil {
		t.Fatalf("M-mode denied: %v", err)
	}
}

func TestTimerInterruptForcesTrap(t *testing.T) {
	m, fw := newTestMachine(t, IsolationNone)
	// Infinite loop at 0x1000.
	p := asm.New()
	p.Label("spin").J("spin")
	loadAt(t, m, 0x1000, p, 0x1000)
	c := m.Cores[0]
	c.CPU.PC = 0x1000
	c.TimerCmp = 50
	res, err := m.Run(0, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != StopReturnToOS {
		t.Fatalf("stop = %+v", res)
	}
	if len(fw.traps) != 1 || fw.traps[0].Cause != isa.CauseTimerInterrupt {
		t.Fatalf("traps = %+v", fw.traps)
	}
	if c.TimerCmp != 0 {
		t.Error("timer not one-shot")
	}
}

func TestExternalInterrupt(t *testing.T) {
	m, fw := newTestMachine(t, IsolationNone)
	p := asm.New()
	p.Label("spin").J("spin")
	loadAt(t, m, 0x1000, p, 0x1000)
	c := m.Cores[0]
	c.CPU.PC = 0x1000
	m.InterruptCore(0)
	res, err := m.Run(0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != StopReturnToOS || len(fw.traps) != 1 || fw.traps[0].Cause != isa.CauseExternalInterrupt {
		t.Fatalf("res=%+v traps=%+v", res, fw.traps)
	}
}

func TestEcallResumeContinues(t *testing.T) {
	m, fw := newTestMachine(t, IsolationNone)
	fw.handle = func(c *Core, tr *isa.Trap) Disposition {
		if tr.Cause == isa.CauseECallU {
			// Model an SM API call: write result, skip the ECALL.
			c.CPU.SetReg(isa.RegA0, 999)
			c.CPU.PC += isa.InstrSize
			return DispResume
		}
		return DispReturnToOS
	}
	p := asm.New()
	p.Li(isa.RegA7, 1)
	p.Ecall()
	p.Mv(5, isa.RegA0)
	p.Halt()
	loadAt(t, m, 0x1000, p, 0x1000)
	c := m.Cores[0]
	c.CPU.PC = 0x1000
	res, err := m.Run(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != StopHalt {
		t.Fatalf("stop = %+v", res)
	}
	if c.CPU.Regs[5] != 999 {
		t.Fatalf("ecall result = %d", c.CPU.Regs[5])
	}
}

func TestNoFirmwareIsError(t *testing.T) {
	m, _ := newTestMachine(t, IsolationNone)
	m.Firmware = nil
	p := asm.New()
	p.Ecall()
	loadAt(t, m, 0x1000, p, 0x1000)
	m.Cores[0].CPU.PC = 0x1000
	_, err := m.Run(0, 10)
	if !errors.Is(err, ErrNoFirmware) {
		t.Fatalf("err = %v", err)
	}
}

func TestDMADefaultDeny(t *testing.T) {
	m, _ := newTestMachine(t, IsolationNone)
	if err := m.DMATransfer(0x1000, 0x2000, 64); err == nil {
		t.Fatal("DMA allowed with no policy installed")
	}
	m.DMAAllowed = func(pa, n uint64) bool { return pa >= 0x10000 }
	if err := m.DMATransfer(0x1000, 0x20000, 64); err == nil {
		t.Fatal("DMA from protected range allowed")
	}
	m.Mem.Store(0x10000, 8, 4242)
	if err := m.DMATransfer(0x10000, 0x20000, 64); err != nil {
		t.Fatalf("permitted DMA denied: %v", err)
	}
	v, _ := m.Mem.Load(0x20000, 8)
	if v != 4242 {
		t.Fatalf("DMA copied %d", v)
	}
}

func TestClearMicroarch(t *testing.T) {
	m, _ := newTestMachine(t, IsolationNone)
	c := m.Cores[0]
	c.L1.Access(0x1000)
	root, codeVA, _ := buildUserSpace(t, m, 0x10000, 0x11000, 0x20000)
	c.Satp = root
	if _, err := c.LoadAs(isa.PrivU, codeVA, 8); err != nil {
		t.Fatal(err)
	}
	if c.TLB.Live() == 0 || c.L1.Live() == 0 {
		t.Fatal("setup failed to populate microarch state")
	}
	c.ClearMicroarch()
	if c.TLB.Live() != 0 || c.L1.Live() != 0 {
		t.Fatal("microarchitectural state survived cleaning")
	}
	c.CPU.Regs[7] = 9
	c.ClearArchState()
	if c.CPU.Regs[7] != 0 {
		t.Fatal("architectural state survived cleaning")
	}
}

func TestRunMaxSteps(t *testing.T) {
	m, _ := newTestMachine(t, IsolationNone)
	p := asm.New()
	p.Label("spin").J("spin")
	loadAt(t, m, 0x1000, p, 0x1000)
	m.Cores[0].CPU.PC = 0x1000
	res, err := m.Run(0, 25)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != StopMaxSteps || res.Steps != 25 {
		t.Fatalf("res = %+v", res)
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := smallConfig(IsolationNone)
	cfg.Cores = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero cores accepted")
	}
	cfg = smallConfig(IsolationSanctum)
	cfg.L2.Sets = 62 // not divisible by 64 regions... also not power of 2
	if _, err := New(cfg); err == nil {
		t.Error("bad L2/region combination accepted")
	}
	cfg = smallConfig(IsolationNone)
	cfg.DRAM.RegionCount = 0
	if _, err := New(cfg); err == nil {
		t.Error("bad DRAM layout accepted")
	}
}

func TestIsolationKindString(t *testing.T) {
	if IsolationNone.String() != "none" || IsolationSanctum.String() != "sanctum" || IsolationKeystone.String() != "keystone" {
		t.Error("IsolationKind strings wrong")
	}
}
