package trng

import (
	"bytes"
	"testing"
)

func TestDeterministicReproducible(t *testing.T) {
	a := NewDeterministic([]byte("seed"))
	b := NewDeterministic([]byte("seed"))
	ba, bb := make([]byte, 64), make([]byte, 64)
	a.Read(ba)
	b.Read(bb)
	if !bytes.Equal(ba, bb) {
		t.Fatal("same seed produced different streams")
	}
}

func TestDeterministicSeedSeparation(t *testing.T) {
	a := NewDeterministic([]byte("seed-a"))
	b := NewDeterministic([]byte("seed-b"))
	ba, bb := make([]byte, 64), make([]byte, 64)
	a.Read(ba)
	b.Read(bb)
	if bytes.Equal(ba, bb) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestDeterministicStreamAdvances(t *testing.T) {
	s := NewDeterministic([]byte("x"))
	first, second := make([]byte, 32), make([]byte, 32)
	s.Read(first)
	s.Read(second)
	if bytes.Equal(first, second) {
		t.Fatal("stream repeated itself")
	}
}

func TestSystemSourceFills(t *testing.T) {
	s := NewSystem()
	buf := make([]byte, 32)
	n, err := s.Read(buf)
	if err != nil || n != 32 {
		t.Fatalf("system source: n=%d err=%v", n, err)
	}
	if bytes.Equal(buf, make([]byte, 32)) {
		t.Fatal("system source returned all zeros")
	}
}
