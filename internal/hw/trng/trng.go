// Package trng models the trusted entropy source the paper requires of
// the hardware platform (§IV-B4): enclaves and the security monitor need
// private randomness for key agreement and key generation.
//
// Two implementations are provided: a deterministic SHAKE-based stream
// for reproducible simulations and tests, and the host's CSPRNG for
// anything that resembles production use of the library.
package trng

import (
	"crypto/rand"
	"io"
	"sync"

	"sanctorum/internal/crypto/sha3"
)

// Source produces entropy. Read always fills the whole buffer and is
// safe to call from any hart: the security monitor serves get_random
// from concurrent trap handlers.
type Source interface {
	io.Reader
}

type deterministic struct {
	mu  sync.Mutex
	xof sha3.XOF
}

// NewDeterministic returns a reproducible entropy stream seeded by seed.
// Distinct seeds yield independent streams. Reads are serialized, so
// concurrent harts draw disjoint chunks of the one stream (which chunk
// a hart gets is interleaving-dependent; single-goroutine use is
// bit-reproducible as before).
func NewDeterministic(seed []byte) Source {
	x := sha3.NewShake256()
	x.Write([]byte("sanctorum/trng"))
	x.Write(seed)
	return &deterministic{xof: x}
}

func (d *deterministic) Read(p []byte) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.xof.Read(p)
}

type system struct{}

// NewSystem returns the host cryptographic random source.
func NewSystem() Source { return system{} }

func (system) Read(p []byte) (int, error) { return rand.Read(p) }
