package dram

import (
	"testing"
	"testing/quick"
)

func TestDefaultLayoutValid(t *testing.T) {
	l := DefaultLayout()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.RegionCount != 64 {
		t.Fatalf("default region count = %d, want 64 (Sanctum)", l.RegionCount)
	}
	if l.MemorySize() != uint64(l.RegionCount)*l.RegionSize() {
		t.Fatal("memory size inconsistent")
	}
}

func TestValidateRejectsBadLayouts(t *testing.T) {
	bad := []Layout{
		{RegionShift: 18, RegionCount: 0},
		{RegionShift: 18, RegionCount: 65},
		{RegionShift: 10, RegionCount: 8}, // smaller than a page
		{RegionShift: 50, RegionCount: 8}, // implausible
		{RegionShift: 18, RegionCount: -1},
	}
	for _, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("layout %+v accepted", l)
		}
	}
}

func TestRegionOf(t *testing.T) {
	l := Layout{RegionShift: 16, RegionCount: 4} // 64 KiB regions
	cases := []struct {
		pa   uint64
		want int
	}{
		{0, 0}, {0xFFFF, 0}, {0x10000, 1}, {0x2FFFF, 2}, {0x30000, 3},
		{0x3FFFF, 3}, {0x40000, -1}, {^uint64(0), -1},
	}
	for _, c := range cases {
		if got := l.RegionOf(c.pa); got != c.want {
			t.Errorf("RegionOf(%#x) = %d, want %d", c.pa, got, c.want)
		}
	}
}

func TestBaseInvertsRegionOf(t *testing.T) {
	l := DefaultLayout()
	for r := 0; r < l.RegionCount; r++ {
		if got := l.RegionOf(l.Base(r)); got != r {
			t.Fatalf("RegionOf(Base(%d)) = %d", r, got)
		}
	}
}

func TestBitmapOps(t *testing.T) {
	var b Bitmap
	b = b.Set(0).Set(5).Set(63)
	if !b.Has(0) || !b.Has(5) || !b.Has(63) || b.Has(1) {
		t.Fatal("set/has mismatch")
	}
	if b.Count() != 3 {
		t.Fatalf("count = %d", b.Count())
	}
	b = b.Clear(5)
	if b.Has(5) || b.Count() != 2 {
		t.Fatal("clear failed")
	}
	if b.Has(-1) || b.Has(64) {
		t.Fatal("out-of-range Has must be false")
	}
	got := b.Regions()
	if len(got) != 2 || got[0] != 0 || got[1] != 63 {
		t.Fatalf("regions = %v", got)
	}
}

func TestBitmapIntersects(t *testing.T) {
	a := Bitmap(0).Set(1).Set(2)
	b := Bitmap(0).Set(2).Set(3)
	c := Bitmap(0).Set(4)
	if !a.Intersects(b) {
		t.Error("overlapping bitmaps reported disjoint")
	}
	if a.Intersects(c) {
		t.Error("disjoint bitmaps reported overlapping")
	}
}

func TestFull(t *testing.T) {
	l := Layout{RegionShift: 16, RegionCount: 8}
	if l.Full() != Bitmap(0xFF) {
		t.Fatalf("full = %#x", l.Full())
	}
	l64 := DefaultLayout()
	if l64.Full().Count() != 64 {
		t.Fatal("64-region full bitmap wrong")
	}
}

func TestContainsRange(t *testing.T) {
	l := Layout{RegionShift: 16, RegionCount: 4}
	b := Bitmap(0).Set(1).Set(2)
	if !b.ContainsRange(l, 0x10000, 0x20000) {
		t.Error("range exactly covering regions 1-2 rejected")
	}
	if b.ContainsRange(l, 0x0FFFF, 2) {
		t.Error("range touching region 0 accepted")
	}
	if b.ContainsRange(l, 0x2FFFF, 2) {
		t.Error("range leaking into region 3 accepted")
	}
	if !b.ContainsRange(l, 0x10000, 0) {
		t.Error("empty range should always be contained")
	}
	if b.ContainsRange(l, 0x40000, 1) {
		t.Error("range outside layout accepted")
	}
}

// Property: a bitmap containing region r accepts any in-region range, and
// the exclusive-ownership check (Intersects) is symmetric.
func TestBitmapProperties(t *testing.T) {
	l := DefaultLayout()
	inRegion := func(r uint8, off uint16) bool {
		reg := int(r) % l.RegionCount
		b := Bitmap(0).Set(reg)
		pa := l.Base(reg) + uint64(off)%l.RegionSize()
		n := l.RegionSize() - uint64(off)%l.RegionSize()
		return b.ContainsRange(l, pa, n)
	}
	if err := quick.Check(inRegion, nil); err != nil {
		t.Error(err)
	}
	symmetric := func(x, y uint64) bool {
		return Bitmap(x).Intersects(Bitmap(y)) == Bitmap(y).Intersects(Bitmap(x))
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Error(err)
	}
}
