// Package dram models the MIT Sanctum processor's DRAM regions (§VII-A
// of the paper): physical memory is carved into a fixed number of
// equally-sized, isolation-aligned regions, each exclusively assignable
// to one protection domain. Region isolation extends through the shared
// last-level cache because region index bits overlap the cache set index
// bits (page coloring), which the cache model in internal/hw/cache
// mirrors.
//
// The real Sanctum uses 64 regions of 32 MB; the simulation keeps the
// count and all mask arithmetic but lets the region size be configured,
// defaulting to 256 KiB so tests stay small.
package dram

import (
	"fmt"
	"math/bits"

	"sanctorum/internal/hw/mem"
)

// Layout describes the region geometry of a machine.
type Layout struct {
	RegionShift uint // log2 of the region size in bytes
	RegionCount int  // number of regions; physical memory = count << shift
}

// DefaultLayout mirrors Sanctum's 64 regions at simulation scale.
func DefaultLayout() Layout { return Layout{RegionShift: 18, RegionCount: 64} }

// Validate reports whether the layout is usable.
func (l Layout) Validate() error {
	if l.RegionCount <= 0 || l.RegionCount > 64 {
		return fmt.Errorf("dram: region count %d outside (0,64]", l.RegionCount)
	}
	if l.RegionShift < mem.PageBits {
		return fmt.Errorf("dram: region size smaller than a page (shift %d)", l.RegionShift)
	}
	if l.RegionShift > 40 {
		return fmt.Errorf("dram: implausible region shift %d", l.RegionShift)
	}
	return nil
}

// RegionSize returns the size of one region in bytes.
func (l Layout) RegionSize() uint64 { return 1 << l.RegionShift }

// MemorySize returns the total physical memory covered by the layout.
func (l Layout) MemorySize() uint64 { return uint64(l.RegionCount) << l.RegionShift }

// RegionOf returns the region index containing the physical address, or
// -1 if the address is outside the layout.
func (l Layout) RegionOf(pa uint64) int {
	r := pa >> l.RegionShift
	if r >= uint64(l.RegionCount) {
		return -1
	}
	return int(r)
}

// Base returns the first physical address of region r.
func (l Layout) Base(r int) uint64 { return uint64(r) << l.RegionShift }

// PagesPerRegion returns the number of 4 KiB pages in one region.
func (l Layout) PagesPerRegion() uint64 { return l.RegionSize() >> mem.PageBits }

// Bitmap is a set of DRAM regions, one bit per region, mirroring
// Sanctum's per-domain DRBMAP registers.
type Bitmap uint64

// Set returns the bitmap with region r added.
func (b Bitmap) Set(r int) Bitmap { return b | 1<<uint(r) }

// Clear returns the bitmap with region r removed.
func (b Bitmap) Clear(r int) Bitmap { return b &^ (1 << uint(r)) }

// Has reports whether region r is in the set.
func (b Bitmap) Has(r int) bool {
	return r >= 0 && r < 64 && b&(1<<uint(r)) != 0
}

// Count returns the number of regions in the set.
func (b Bitmap) Count() int { return bits.OnesCount64(uint64(b)) }

// Intersects reports whether the two sets share any region.
func (b Bitmap) Intersects(o Bitmap) bool { return b&o != 0 }

// Regions returns the region indices in ascending order.
func (b Bitmap) Regions() []int {
	out := make([]int, 0, b.Count())
	for r := 0; r < 64; r++ {
		if b.Has(r) {
			out = append(out, r)
		}
	}
	return out
}

// Full returns the bitmap containing every region of the layout.
func (l Layout) Full() Bitmap {
	if l.RegionCount == 64 {
		return Bitmap(^uint64(0))
	}
	return Bitmap(1<<uint(l.RegionCount) - 1)
}

// ContainsRange reports whether the whole physical range [pa, pa+n) lies
// within regions of the set.
func (b Bitmap) ContainsRange(l Layout, pa, n uint64) bool {
	if n == 0 {
		return true
	}
	first := l.RegionOf(pa)
	last := l.RegionOf(pa + n - 1)
	if first < 0 || last < 0 {
		return false
	}
	for r := first; r <= last; r++ {
		if !b.Has(r) {
			return false
		}
	}
	return true
}
