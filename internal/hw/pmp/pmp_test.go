package pmp

import (
	"errors"
	"testing"
)

const page = 0x1000

func entry(base, size uint64, p Perm) Entry {
	return Entry{Valid: true, Base: base, Size: size, Perm: p}
}

func TestDefaultPolicy(t *testing.T) {
	var u Unit
	// With no matching entries M-mode is allowed, S/U denied.
	if !u.Check(0, 8, R, ModeM) {
		t.Error("M-mode denied with empty PMP")
	}
	if u.Check(0, 8, R, ModeS) || u.Check(0, 8, R, ModeU) {
		t.Error("S/U-mode allowed with empty PMP")
	}
}

func TestWhitelisting(t *testing.T) {
	var u Unit
	if err := u.Configure(0, entry(0x10000, 4*page, R|W)); err != nil {
		t.Fatal(err)
	}
	if !u.Check(0x10000, 8, R, ModeU) || !u.Check(0x13ff8, 8, W, ModeS) {
		t.Error("in-range access denied")
	}
	if u.Check(0x10000, 8, X, ModeU) {
		t.Error("execute allowed on rw- entry")
	}
	if u.Check(0x14000, 8, R, ModeU) {
		t.Error("access just past range allowed")
	}
	if u.Check(0x13ffc, 8, R, ModeU) {
		t.Error("access straddling the range end allowed")
	}
}

func TestPriorityByIndex(t *testing.T) {
	var u Unit
	// Entry 0 denies a sub-range that entry 1 would allow.
	u.Configure(0, entry(0x20000, page, 0)) // matches, no perms
	u.Configure(1, entry(0x20000, 8*page, R|W|X))
	if u.Check(0x20000, 8, R, ModeS) {
		t.Error("lower-priority allow overrode higher-priority deny")
	}
	if !u.Check(0x21000, 8, R, ModeS) {
		t.Error("outside the deny entry, allow entry should match")
	}
}

func TestMModeBypassesUnlocked(t *testing.T) {
	var u Unit
	u.Configure(0, entry(0x30000, page, 0)) // no perms, not locked
	if !u.Check(0x30000, 8, W, ModeM) {
		t.Error("M-mode should bypass unlocked entries")
	}
}

func TestLockBindsMMode(t *testing.T) {
	var u Unit
	e := entry(0x40000, page, R)
	e.Lock = true
	u.Configure(0, e)
	if u.Check(0x40000, 8, W, ModeM) {
		t.Error("locked entry did not bind M-mode write")
	}
	if !u.Check(0x40000, 8, R, ModeM) {
		t.Error("locked entry denied permitted M-mode read")
	}
}

func TestLockedEntryImmutable(t *testing.T) {
	var u Unit
	e := entry(0x50000, page, R)
	e.Lock = true
	u.Configure(0, e)
	if err := u.Configure(0, entry(0x50000, page, R|W|X)); !errors.Is(err, ErrLocked) {
		t.Fatalf("rewriting locked entry: err = %v", err)
	}
	if err := u.Clear(0); !errors.Is(err, ErrLocked) {
		t.Fatalf("clearing locked entry: err = %v", err)
	}
}

func TestConfigureValidation(t *testing.T) {
	var u Unit
	if err := u.Configure(-1, Entry{}); err == nil {
		t.Error("negative index accepted")
	}
	if err := u.Configure(NumEntries, Entry{}); err == nil {
		t.Error("index past end accepted")
	}
	if err := u.Configure(0, entry(0x1001, page, R)); err == nil {
		t.Error("unaligned base accepted")
	}
	if err := u.Configure(0, entry(0x1000, 0, R)); err == nil {
		t.Error("zero size accepted")
	}
	if err := u.Configure(0, entry(0x1000, page+1, R)); err == nil {
		t.Error("unaligned size accepted")
	}
}

func TestClearRestoresDeny(t *testing.T) {
	var u Unit
	u.Configure(0, entry(0x60000, page, R|W))
	if !u.Check(0x60000, 8, R, ModeU) {
		t.Fatal("setup failed")
	}
	if err := u.Clear(0); err != nil {
		t.Fatal(err)
	}
	if u.Check(0x60000, 8, R, ModeU) {
		t.Error("cleared entry still grants access")
	}
}

func TestSnapshot(t *testing.T) {
	var u Unit
	u.Configure(3, entry(0x1000, page, R))
	u.Configure(7, entry(0x2000, page, W))
	if got := len(u.Snapshot()); got != 2 {
		t.Fatalf("snapshot has %d entries, want 2", got)
	}
}

func TestZeroLengthAccessTreatedAsByte(t *testing.T) {
	var u Unit
	u.Configure(0, entry(0x1000, page, R))
	if !u.Check(0x1000, 0, R, ModeU) {
		t.Error("zero-length access at start of range denied")
	}
}

func TestPermString(t *testing.T) {
	if (R|W|X).String() != "rwx" || Perm(0).String() != "---" || (R|X).String() != "r-x" {
		t.Error("perm string formatting wrong")
	}
}

func TestModeString(t *testing.T) {
	if ModeU.String() != "U" || ModeS.String() != "S" || ModeM.String() != "M" {
		t.Error("mode string formatting wrong")
	}
}
