// Package pmp models RISC-V Physical Memory Protection, the isolation
// primitive used by the Keystone backend (§VII-B of the paper). PMP is a
// per-hart array of prioritized entries, each white-listing a physical
// range with read/write/execute permissions for less-privileged modes.
// M-mode (the security monitor) bypasses non-locked entries; a locked
// entry binds M-mode as well.
//
// The model keeps RISC-V's essential semantics — priority by index,
// whole-access matching, deny-by-default for S/U mode when any entry is
// implemented — without the NAPOT address encoding, which is an encoding
// detail rather than a security property: entries are (base, size)
// ranges that must be page-aligned.
package pmp

import (
	"fmt"

	"sanctorum/internal/hw/mem"
)

// Perm is a permission bit set.
type Perm uint8

// Permission bits.
const (
	R Perm = 1 << iota
	W
	X
)

func (p Perm) String() string {
	s := [3]byte{'-', '-', '-'}
	if p&R != 0 {
		s[0] = 'r'
	}
	if p&W != 0 {
		s[1] = 'w'
	}
	if p&X != 0 {
		s[2] = 'x'
	}
	return string(s[:])
}

// Mode is the privilege mode performing an access.
type Mode uint8

// Privilege modes, ordered low to high.
const (
	ModeU Mode = iota
	ModeS
	ModeM
)

func (m Mode) String() string {
	switch m {
	case ModeU:
		return "U"
	case ModeS:
		return "S"
	case ModeM:
		return "M"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Entry is one PMP entry.
type Entry struct {
	Valid bool
	Base  uint64 // page-aligned start
	Size  uint64 // page-aligned length, > 0
	Perm  Perm
	Lock  bool // applies to M-mode as well, and entry cannot be rewritten
}

// contains reports whether the whole access [addr, addr+n) lies in the
// entry's range.
func (e Entry) contains(addr, n uint64) bool {
	return e.Valid && addr >= e.Base && n <= e.Size && addr-e.Base <= e.Size-n
}

// NumEntries is the number of PMP entries per unit, matching the common
// RISC-V configuration.
const NumEntries = 16

// Unit is a per-hart PMP unit.
type Unit struct {
	entries [NumEntries]Entry
}

// ErrLocked is returned when software attempts to rewrite a locked entry.
var ErrLocked = fmt.Errorf("pmp: entry is locked")

// Configure installs entry i. Only M-mode software (the SM) calls this.
// A locked entry can never be reconfigured, mirroring the RISC-V L bit.
func (u *Unit) Configure(i int, e Entry) error {
	if i < 0 || i >= NumEntries {
		return fmt.Errorf("pmp: entry index %d out of range", i)
	}
	if u.entries[i].Valid && u.entries[i].Lock {
		return ErrLocked
	}
	if e.Valid {
		if e.Base&mem.PageMask != 0 || e.Size == 0 || e.Size&mem.PageMask != 0 {
			return fmt.Errorf("pmp: entry %d not page-aligned (base %#x size %#x)", i, e.Base, e.Size)
		}
	}
	u.entries[i] = e
	return nil
}

// Entry returns a copy of entry i.
func (u *Unit) Entry(i int) Entry { return u.entries[i] }

// Clear invalidates entry i unless it is locked.
func (u *Unit) Clear(i int) error { return u.Configure(i, Entry{}) }

// Check reports whether an access of n bytes at addr with the given
// permission is allowed in the given mode. The lowest-numbered matching
// entry decides; if no entry matches, M-mode is allowed and S/U are
// denied (the RISC-V behaviour when PMP is implemented).
func (u *Unit) Check(addr, n uint64, want Perm, mode Mode) bool {
	if n == 0 {
		n = 1
	}
	for i := range u.entries {
		e := &u.entries[i]
		if !e.contains(addr, n) {
			continue
		}
		if mode == ModeM && !e.Lock {
			return true
		}
		return e.Perm&want == want
	}
	return mode == ModeM
}

// Snapshot returns the valid entries, for debugging and tests.
func (u *Unit) Snapshot() []Entry {
	var out []Entry
	for _, e := range u.entries {
		if e.Valid {
			out = append(out, e)
		}
	}
	return out
}
