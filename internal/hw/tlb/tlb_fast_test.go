package tlb

import "testing"

// The indexed lookup must be invisible next to the scanning
// implementation: same FIFO order, same statistics, plus the
// generation/invalidation hooks the machine's fast path depends on.

func TestGenAdvancesOnMutation(t *testing.T) {
	tl := New(4)
	g0 := tl.Gen()
	tl.Lookup(1) // a probe is not a mutation
	if tl.Gen() != g0 {
		t.Fatal("Lookup moved the generation")
	}
	tl.Insert(Entry{VPN: 1, PPN: 10})
	g1 := tl.Gen()
	if g1 == g0 {
		t.Fatal("Insert did not move the generation")
	}
	tl.Flush()
	g2 := tl.Gen()
	if g2 == g1 {
		t.Fatal("Flush did not move the generation")
	}
	tl.FlushIf(func(Entry) bool { return false })
	if tl.Gen() == g2 {
		t.Fatal("FlushIf did not move the generation")
	}
}

func TestOnInvalidateFires(t *testing.T) {
	tl := New(4)
	fired := 0
	tl.OnInvalidate = func() { fired++ }
	tl.Insert(Entry{VPN: 1, PPN: 10})
	if fired != 0 {
		t.Fatal("Insert fired OnInvalidate")
	}
	tl.Flush()
	if fired != 1 {
		t.Fatalf("after Flush fired = %d", fired)
	}
	tl.FlushIf(func(Entry) bool { return true })
	if fired != 2 {
		t.Fatalf("after FlushIf fired = %d", fired)
	}
}

func TestIndexTracksFIFOReplacement(t *testing.T) {
	tl := New(2)
	tl.Insert(Entry{VPN: 1, PPN: 10})
	tl.Insert(Entry{VPN: 2, PPN: 20})
	tl.Insert(Entry{VPN: 3, PPN: 30}) // evicts VPN 1 (FIFO)
	if _, ok := tl.Lookup(1); ok {
		t.Fatal("evicted VPN still indexed")
	}
	if e, ok := tl.Lookup(2); !ok || e.PPN != 20 {
		t.Fatalf("VPN 2 lookup = %+v, %v", e, ok)
	}
	if e, ok := tl.Lookup(3); !ok || e.PPN != 30 {
		t.Fatalf("VPN 3 lookup = %+v, %v", e, ok)
	}
	if tl.Live() != 2 {
		t.Fatalf("live = %d", tl.Live())
	}
}

// BenchmarkLookupHit measures the indexed probe on a full TLB — the
// per-instruction cost the linear scan used to pay in O(capacity).
func BenchmarkLookupHit(b *testing.B) {
	tl := New(32)
	for i := uint64(0); i < 32; i++ {
		tl.Insert(Entry{VPN: i, PPN: i * 16})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tl.Lookup(uint64(i) & 31); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkLookupMiss measures a probe that misses a full TLB; the
// scanning implementation walked every entry here.
func BenchmarkLookupMiss(b *testing.B) {
	tl := New(32)
	for i := uint64(0); i < 32; i++ {
		tl.Insert(Entry{VPN: i, PPN: i * 16})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl.Lookup(1000)
	}
}
