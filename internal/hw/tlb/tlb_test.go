package tlb

import "testing"

func TestLookupMissThenHit(t *testing.T) {
	tl := New(4)
	if _, ok := tl.Lookup(5); ok {
		t.Fatal("hit in empty TLB")
	}
	tl.Insert(Entry{VPN: 5, PPN: 9, Perms: 0xF})
	e, ok := tl.Lookup(5)
	if !ok || e.PPN != 9 || e.Perms != 0xF {
		t.Fatalf("entry = %+v ok=%v", e, ok)
	}
	if tl.Hits != 1 || tl.Misses != 1 {
		t.Fatalf("stats hits=%d misses=%d", tl.Hits, tl.Misses)
	}
}

func TestInsertReplacesSameVPN(t *testing.T) {
	tl := New(4)
	tl.Insert(Entry{VPN: 1, PPN: 10})
	tl.Insert(Entry{VPN: 1, PPN: 20})
	if tl.Live() != 1 {
		t.Fatalf("live = %d, want 1", tl.Live())
	}
	e, _ := tl.Lookup(1)
	if e.PPN != 20 {
		t.Fatalf("ppn = %d, want updated 20", e.PPN)
	}
}

func TestFIFOEviction(t *testing.T) {
	tl := New(2)
	tl.Insert(Entry{VPN: 1, PPN: 1})
	tl.Insert(Entry{VPN: 2, PPN: 2})
	tl.Insert(Entry{VPN: 3, PPN: 3}) // evicts VPN 1
	if _, ok := tl.Lookup(1); ok {
		t.Fatal("oldest entry survived")
	}
	if _, ok := tl.Lookup(2); !ok {
		t.Fatal("newer entry evicted")
	}
	if _, ok := tl.Lookup(3); !ok {
		t.Fatal("newest entry missing")
	}
}

func TestFlush(t *testing.T) {
	tl := New(8)
	for i := uint64(0); i < 8; i++ {
		tl.Insert(Entry{VPN: i, PPN: i})
	}
	tl.Flush()
	if tl.Live() != 0 {
		t.Fatalf("live after flush = %d", tl.Live())
	}
	if tl.Flushes != 1 {
		t.Fatalf("flush count = %d", tl.Flushes)
	}
}

func TestFlushIfSelective(t *testing.T) {
	tl := New(8)
	for i := uint64(0); i < 8; i++ {
		tl.Insert(Entry{VPN: i, PPN: i * 0x100})
	}
	// Shoot down translations into "region" ppn >= 0x400.
	n := tl.FlushIf(func(e Entry) bool { return e.PPN >= 0x400 })
	if n != 4 {
		t.Fatalf("shot down %d entries, want 4", n)
	}
	if tl.Live() != 4 {
		t.Fatalf("live = %d, want 4", tl.Live())
	}
	for i := uint64(0); i < 4; i++ {
		if _, ok := tl.Lookup(i); !ok {
			t.Errorf("entry %d should have survived", i)
		}
	}
	if tl.Shootdown != 1 {
		t.Fatalf("shootdown count = %d", tl.Shootdown)
	}
}

func TestZeroCapacityClamped(t *testing.T) {
	tl := New(0)
	if tl.Capacity() != 1 {
		t.Fatalf("capacity = %d, want 1", tl.Capacity())
	}
	tl.Insert(Entry{VPN: 9, PPN: 1})
	if _, ok := tl.Lookup(9); !ok {
		t.Fatal("single-entry TLB does not hold an entry")
	}
}

func TestFlushPageTargetedShootdown(t *testing.T) {
	tl := New(4)
	invalidations := 0
	tl.OnInvalidate = func() { invalidations++ }
	tl.Insert(Entry{VPN: 1, PPN: 10, Perms: 0xF})
	tl.Insert(Entry{VPN: 2, PPN: 20, Perms: 0xF})
	gen := tl.Gen()
	if !tl.FlushPage(1) {
		t.Fatal("present VPN not invalidated")
	}
	if _, ok := tl.Lookup(1); ok {
		t.Fatal("flushed VPN still resolves")
	}
	if e, ok := tl.Lookup(2); !ok || e.PPN != 20 {
		t.Fatal("unrelated VPN lost")
	}
	if tl.Gen() == gen {
		t.Fatal("generation did not advance")
	}
	if invalidations != 1 {
		t.Fatalf("OnInvalidate fired %d times", invalidations)
	}
	// Absent VPN: no entry dropped, but the generation still advances
	// (last-translation caches must die with the PTE change).
	gen = tl.Gen()
	if tl.FlushPage(7) {
		t.Fatal("absent VPN reported invalidated")
	}
	if tl.Gen() == gen {
		t.Fatal("generation did not advance for absent VPN")
	}
	if tl.Shootdown != 2 {
		t.Fatalf("shootdown stat %d, want 2", tl.Shootdown)
	}
}
