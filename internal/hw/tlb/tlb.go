// Package tlb models a per-core translation lookaside buffer. Sanctum's
// page-walk invariant guarantees TLB entries conform to the DRAM region
// allocation, which requires a TLB shootdown whenever a region moves to
// a different protection domain (paper §VII-A); FlushIf implements the
// selective shootdown and Flush the full flush used on core cleaning.
package tlb

// Entry caches one translation.
type Entry struct {
	VPN   uint64 // virtual page number
	PPN   uint64 // physical page number
	Perms uint64 // leaf PTE flag bits
	Valid bool
}

// TLB is a fully-associative TLB with FIFO replacement. Replacement
// policy is not security-relevant here (the SM flushes on every domain
// switch), so the simplest deterministic policy keeps tests exact.
type TLB struct {
	entries []Entry
	next    int // FIFO insertion cursor

	// Statistics.
	Hits      uint64
	Misses    uint64
	Flushes   uint64
	Shootdown uint64
}

// New returns a TLB with the given number of entries.
func New(capacity int) *TLB {
	if capacity <= 0 {
		capacity = 1
	}
	return &TLB{entries: make([]Entry, capacity)}
}

// Capacity returns the number of entries.
func (t *TLB) Capacity() int { return len(t.entries) }

// Lookup returns the cached translation for vpn, if present.
func (t *TLB) Lookup(vpn uint64) (Entry, bool) {
	for _, e := range t.entries {
		if e.Valid && e.VPN == vpn {
			t.Hits++
			return e, true
		}
	}
	t.Misses++
	return Entry{}, false
}

// Insert caches a translation, evicting in FIFO order. An existing entry
// for the same VPN is replaced in place.
func (t *TLB) Insert(e Entry) {
	e.Valid = true
	for i := range t.entries {
		if t.entries[i].Valid && t.entries[i].VPN == e.VPN {
			t.entries[i] = e
			return
		}
	}
	t.entries[t.next] = e
	t.next = (t.next + 1) % len(t.entries)
}

// Flush invalidates every entry (full flush on core re-allocation).
func (t *TLB) Flush() {
	for i := range t.entries {
		t.entries[i].Valid = false
	}
	t.Flushes++
}

// FlushIf invalidates entries matching pred (selective shootdown, e.g.
// all translations into a DRAM region being re-allocated). It returns
// the number of entries invalidated.
func (t *TLB) FlushIf(pred func(Entry) bool) int {
	n := 0
	for i := range t.entries {
		if t.entries[i].Valid && pred(t.entries[i]) {
			t.entries[i].Valid = false
			n++
		}
	}
	t.Shootdown++
	return n
}

// Live returns the number of valid entries.
func (t *TLB) Live() int {
	n := 0
	for _, e := range t.entries {
		if e.Valid {
			n++
		}
	}
	return n
}
