// Package tlb models a per-core translation lookaside buffer. Sanctum's
// page-walk invariant guarantees TLB entries conform to the DRAM region
// allocation, which requires a TLB shootdown whenever a region moves to
// a different protection domain (paper §VII-A); FlushIf implements the
// selective shootdown and Flush the full flush used on core cleaning.
package tlb

// Entry caches one translation.
type Entry struct {
	VPN   uint64 // virtual page number
	PPN   uint64 // physical page number
	Perms uint64 // leaf PTE flag bits
	Valid bool
}

// TLB is a fully-associative TLB with FIFO replacement. Replacement
// policy is not security-relevant here (the SM flushes on every domain
// switch), so the simplest deterministic policy keeps tests exact.
//
// Lookup is indexed by VPN instead of scanning the entry array, so a
// probe costs O(1) regardless of capacity; the FIFO ring, replacement
// order, and Hits/Misses/Flushes/Shootdown statistics are bit-identical
// to the scanning implementation.
type TLB struct {
	entries []Entry
	index   map[uint64]int // VPN -> slot, valid entries only
	next    int            // FIFO insertion cursor

	// gen advances on every mutation of the translation set (Insert,
	// Flush, FlushIf). The machine's per-core last-translation caches
	// compare it to detect that a cached entry may have been replaced.
	gen uint64

	// OnInvalidate, when set, is called by Flush and FlushIf; the
	// machine uses it to drop the core's decoded-instruction cache
	// whenever translations are torn down (core cleaning, shootdowns on
	// region re-allocation).
	OnInvalidate func()

	// Statistics.
	Hits      uint64
	Misses    uint64
	Flushes   uint64
	Shootdown uint64
}

// New returns a TLB with the given number of entries.
func New(capacity int) *TLB {
	if capacity <= 0 {
		capacity = 1
	}
	return &TLB{
		entries: make([]Entry, capacity),
		index:   make(map[uint64]int, capacity),
		gen:     1,
	}
}

// Capacity returns the number of entries.
func (t *TLB) Capacity() int { return len(t.entries) }

// Gen returns the current translation-set generation. It changes
// whenever an Insert, Flush or FlushIf may have altered the outcome of
// a future Lookup.
func (t *TLB) Gen() uint64 { return t.gen }

// Lookup returns the cached translation for vpn, if present.
func (t *TLB) Lookup(vpn uint64) (Entry, bool) {
	if i, ok := t.index[vpn]; ok {
		t.Hits++
		return t.entries[i], true
	}
	t.Misses++
	return Entry{}, false
}

// Insert caches a translation, evicting in FIFO order. An existing entry
// for the same VPN is replaced in place.
func (t *TLB) Insert(e Entry) {
	e.Valid = true
	t.gen++
	if i, ok := t.index[e.VPN]; ok {
		t.entries[i] = e
		return
	}
	victim := t.next
	if old := &t.entries[victim]; old.Valid {
		delete(t.index, old.VPN)
	}
	t.entries[victim] = e
	t.index[e.VPN] = victim
	t.next = (t.next + 1) % len(t.entries)
}

// Flush invalidates every entry (full flush on core re-allocation).
func (t *TLB) Flush() {
	for i := range t.entries {
		t.entries[i].Valid = false
	}
	clear(t.index)
	t.gen++
	t.Flushes++
	if t.OnInvalidate != nil {
		t.OnInvalidate()
	}
}

// FlushPage invalidates the translation for a single virtual page —
// the targeted shootdown of the monitor's copy-on-write fault protocol
// (a clone's leaf PTE just moved to a private copy, so exactly one VPN
// is stale). The generation advances and OnInvalidate fires even when
// the VPN is absent, so the core's last-translation caches and decode
// cache can never outlive the PTE change that motivated the flush. It
// returns whether an entry was actually dropped.
func (t *TLB) FlushPage(vpn uint64) bool {
	invalidated := false
	if i, ok := t.index[vpn]; ok {
		t.entries[i].Valid = false
		delete(t.index, vpn)
		invalidated = true
	}
	t.gen++
	t.Shootdown++
	if t.OnInvalidate != nil {
		t.OnInvalidate()
	}
	return invalidated
}

// FlushIf invalidates entries matching pred (selective shootdown, e.g.
// all translations into a DRAM region being re-allocated). It returns
// the number of entries invalidated.
func (t *TLB) FlushIf(pred func(Entry) bool) int {
	n := 0
	for i := range t.entries {
		if t.entries[i].Valid && pred(t.entries[i]) {
			t.entries[i].Valid = false
			delete(t.index, t.entries[i].VPN)
			n++
		}
	}
	t.gen++
	t.Shootdown++
	if t.OnInvalidate != nil {
		t.OnInvalidate()
	}
	return n
}

// Live returns the number of valid entries.
func (t *TLB) Live() int { return len(t.index) }
