package pt

import (
	"errors"
	"testing"
	"testing/quick"

	"sanctorum/internal/hw/mem"
)

// testEnv provides a physical memory and a bump allocator for tables.
type testEnv struct {
	m    *mem.Phys
	next uint64
}

func newEnv(t *testing.T) *testEnv {
	t.Helper()
	return &testEnv{m: mem.New(1 << 24), next: 16} // tables from page 16 up
}

func (e *testEnv) alloc() (uint64, error) {
	p := e.next
	e.next++
	if p >= e.m.Pages() {
		return 0, errors.New("out of pages")
	}
	return p, nil
}

func (e *testEnv) reader() PhysReader {
	return func(pa uint64) (uint64, bool) {
		v, err := e.m.Load(pa, 8)
		return v, err == nil
	}
}

func mustBuilder(t *testing.T, e *testEnv) *Builder {
	t.Helper()
	b, err := NewBuilder(e.m, e.alloc)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestMapWalkRoundTrip(t *testing.T) {
	e := newEnv(t)
	b := mustBuilder(t, e)
	const va, pa = 0x40001000, 0x00345000
	if err := b.Map(va, pa, R|W|U); err != nil {
		t.Fatal(err)
	}
	res, fault := Walk(e.reader(), b.Root, va+0x123, Load, true)
	if fault != nil {
		t.Fatalf("walk faulted: %v", fault)
	}
	if res.PA != pa+0x123 {
		t.Fatalf("pa = %#x, want %#x", res.PA, pa+0x123)
	}
	if res.Steps != Levels {
		t.Fatalf("walk steps = %d, want %d", res.Steps, Levels)
	}
}

func TestWalkUnmappedFaults(t *testing.T) {
	e := newEnv(t)
	b := mustBuilder(t, e)
	_, fault := Walk(e.reader(), b.Root, 0xdead000, Load, true)
	if fault == nil || fault.Kind != FaultPage {
		t.Fatalf("fault = %v", fault)
	}
}

func TestPermissionEnforcement(t *testing.T) {
	e := newEnv(t)
	b := mustBuilder(t, e)
	cases := []struct {
		name  string
		flags uint64
		acc   Access
		user  bool
		ok    bool
	}{
		{"read from r page", R | U, Load, true, true},
		{"write to r page", R | U, Store, true, false},
		{"write to rw page", R | W | U, Store, true, true},
		{"fetch from rw page", R | W | U, Fetch, true, false},
		{"fetch from x page", X | U, Fetch, true, true},
		{"user access to supervisor page", R, Load, true, false},
		{"supervisor access to user page", R | U, Load, false, false},
		{"supervisor access to supervisor page", R, Load, false, true},
	}
	for i, c := range cases {
		va := uint64(0x1000000 + i*0x1000)
		pa := uint64(0x200000 + i*0x1000)
		if err := b.Map(va, pa, c.flags); err != nil {
			t.Fatal(err)
		}
		_, fault := Walk(e.reader(), b.Root, va, c.acc, c.user)
		if (fault == nil) != c.ok {
			t.Errorf("%s: fault = %v, want ok=%v", c.name, fault, c.ok)
		}
		if fault != nil && fault.Kind != FaultPage {
			t.Errorf("%s: kind = %v, want page fault", c.name, fault.Kind)
		}
	}
}

func TestWalkPhysAccessFault(t *testing.T) {
	e := newEnv(t)
	b := mustBuilder(t, e)
	if err := b.Map(0x5000, 0x9000, R|U); err != nil {
		t.Fatal(err)
	}
	denyAll := func(pa uint64) (uint64, bool) { return 0, false }
	_, fault := Walk(denyAll, b.Root, 0x5000, Load, true)
	if fault == nil || fault.Kind != FaultPhysAccess {
		t.Fatalf("fault = %v, want phys access fault", fault)
	}
}

func TestUnmapAndLookup(t *testing.T) {
	e := newEnv(t)
	b := mustBuilder(t, e)
	if err := b.Map(0x7000, 0x8000, R|U); err != nil {
		t.Fatal(err)
	}
	pte, err := b.Lookup(0x7000)
	if err != nil || PPNOf(pte) != 0x8 {
		t.Fatalf("lookup: pte=%#x err=%v", pte, err)
	}
	if err := b.Unmap(0x7000); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Lookup(0x7000); !errors.Is(err, ErrNoMapping) {
		t.Fatalf("lookup after unmap: %v", err)
	}
	if _, fault := Walk(e.reader(), b.Root, 0x7000, Load, true); fault == nil {
		t.Fatal("walk succeeded after unmap")
	}
}

func TestUnmapAbsentFails(t *testing.T) {
	e := newEnv(t)
	b := mustBuilder(t, e)
	if err := b.Unmap(0xABC000); !errors.Is(err, ErrNoMapping) {
		t.Fatalf("unmap absent: %v", err)
	}
}

func TestMapRejectsUnaligned(t *testing.T) {
	e := newEnv(t)
	b := mustBuilder(t, e)
	if err := b.Map(0x1001, 0x2000, R); err == nil {
		t.Error("unaligned va accepted")
	}
	if err := b.Map(0x1000, 0x2001, R); err == nil {
		t.Error("unaligned pa accepted")
	}
}

func TestDistantVAsShareNoTables(t *testing.T) {
	e := newEnv(t)
	b := mustBuilder(t, e)
	before := e.next
	// Two VAs differing in the top-level VPN need separate subtrees.
	if err := b.Map(0, 0x3000, R|U); err != nil {
		t.Fatal(err)
	}
	if err := b.Map(1<<(VABits-1), 0x4000, R|U); err != nil {
		t.Fatal(err)
	}
	allocated := e.next - before
	if allocated != 4 { // two level-1 + two level-0 tables
		t.Fatalf("allocated %d tables, want 4", allocated)
	}
	// Adjacent VA reuses the same subtree: no new allocations.
	before = e.next
	if err := b.Map(0x1000, 0x5000, R|U); err != nil {
		t.Fatal(err)
	}
	if e.next != before {
		t.Fatal("adjacent mapping allocated new tables")
	}
}

func TestVPNExtraction(t *testing.T) {
	va := uint64(0x1FF<<30 | 0x0AB<<21 | 0x0CD<<12 | 0x456)
	if VPN(va, 2) != 0x1FF || VPN(va, 1) != 0x0AB || VPN(va, 0) != 0x0CD {
		t.Fatalf("VPN split wrong: %#x %#x %#x", VPN(va, 2), VPN(va, 1), VPN(va, 0))
	}
}

func TestWalkRejectsNonLeafAtLastLevel(t *testing.T) {
	e := newEnv(t)
	b := mustBuilder(t, e)
	if err := b.Map(0x9000, 0xA000, R|U); err != nil {
		t.Fatal(err)
	}
	// Corrupt the leaf into a pointer PTE (valid, but no R/W/X).
	leaf, _ := b.Lookup(0x9000)
	addr, _ := b.leafAddr(0x9000)
	e.m.Store(addr, 8, leaf&^uint64(R|W|X|U))
	_, fault := Walk(e.reader(), b.Root, 0x9000, Load, true)
	if fault == nil || fault.Kind != FaultPage {
		t.Fatalf("non-leaf at level 0: fault=%v", fault)
	}
}

func TestWalkRejectsMisplacedSuperpage(t *testing.T) {
	e := newEnv(t)
	b := mustBuilder(t, e)
	// Hand-craft a leaf at level 2 (a 1 GiB superpage), which this
	// machine does not support; the walker must page-fault, not map it.
	rootAddr := b.Root<<mem.PageBits + VPN(0x40000000, 2)*EntrySize
	e.m.Store(rootAddr, 8, MakePTE(0x100, V|R|U))
	_, fault := Walk(e.reader(), b.Root, 0x40000000, Load, true)
	if fault == nil || fault.Kind != FaultPage {
		t.Fatalf("superpage leaf: fault=%v", fault)
	}
}

// Property: mapping then walking any page-aligned (va, pa) pair in range
// translates every offset within the page correctly.
func TestMapWalkProperty(t *testing.T) {
	e := newEnv(t)
	b := mustBuilder(t, e)
	used := map[uint64]bool{}
	prop := func(vaSeed, paSeed uint32, off uint16) bool {
		va := (uint64(vaSeed) << 12) & VAMask &^ uint64(mem.PageMask)
		pa := (uint64(paSeed)%(1<<12) + 0x400) << 12 // stay in phys range, above tables
		if used[va] {
			return true
		}
		used[va] = true
		if err := b.Map(va, pa, R|W|U); err != nil {
			return false
		}
		res, fault := Walk(e.reader(), b.Root, va|uint64(off)&mem.PageMask, Load, true)
		return fault == nil && res.PA == pa|uint64(off)&mem.PageMask
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
