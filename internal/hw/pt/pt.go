// Package pt implements the sv39-style three-level page tables used by
// the simulated machine. Page tables live in simulated physical memory
// (they are ordinary pages), so both the untrusted OS and the security
// monitor manipulate them through the same primitives the hardware
// walker reads — which is what lets Sanctorum enforce its invariants
// over enclave page tables (paper §VI-A: tables at the base of enclave
// physical memory, initialized before data pages).
package pt

import (
	"errors"
	"fmt"

	"sanctorum/internal/hw/mem"
)

// PTE bits, following the RISC-V privileged specification layout.
const (
	V uint64 = 1 << 0 // valid
	R uint64 = 1 << 1 // readable
	W uint64 = 1 << 2 // writable
	X uint64 = 1 << 3 // executable
	U uint64 = 1 << 4 // user-accessible
	G uint64 = 1 << 5 // global
	A uint64 = 1 << 6 // accessed
	D uint64 = 1 << 7 // dirty

	ppnShift = 10
)

// Geometry of the three-level walk.
const (
	Levels     = 3
	vpnBits    = 9
	vpnMask    = 1<<vpnBits - 1
	VABits     = Levels*vpnBits + mem.PageBits // 39
	EntrySize  = 8
	EntriesPer = mem.PageSize / EntrySize
)

// VAMask selects the translatable bits of a virtual address.
const VAMask = 1<<VABits - 1

// Access distinguishes the three access types for permission checks.
type Access uint8

// Access types.
const (
	Fetch Access = iota
	Load
	Store
)

func (a Access) String() string {
	switch a {
	case Fetch:
		return "fetch"
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return fmt.Sprintf("access(%d)", uint8(a))
	}
}

// FaultKind classifies a translation failure.
type FaultKind uint8

// Translation failure kinds.
const (
	FaultNone       FaultKind = iota
	FaultPage                 // invalid mapping or insufficient permissions
	FaultPhysAccess           // a physical access during or after the walk was denied
)

// Fault describes a failed translation.
type Fault struct {
	Kind FaultKind
	VA   uint64
	Acc  Access
}

func (f *Fault) Error() string {
	if f == nil {
		return "pt: no fault"
	}
	kind := "page fault"
	if f.Kind == FaultPhysAccess {
		kind = "access fault"
	}
	return fmt.Sprintf("pt: %s on %s at va %#x", kind, f.Acc, f.VA)
}

// VPN extracts the level-l virtual page number component of va.
func VPN(va uint64, l int) uint64 {
	return (va >> (mem.PageBits + uint(l)*vpnBits)) & vpnMask
}

// MakePTE builds a leaf or intermediate PTE for the given physical page
// number and flag bits.
func MakePTE(ppn uint64, flags uint64) uint64 { return ppn<<ppnShift | flags }

// PPNOf extracts the physical page number from a PTE.
func PPNOf(pte uint64) uint64 { return pte >> ppnShift }

// IsLeaf reports whether the PTE maps a page (has any of R/W/X).
func IsLeaf(pte uint64) bool { return pte&(R|W|X) != 0 }

// Result is a successful translation.
type Result struct {
	PA    uint64 // translated physical address
	Perms uint64 // leaf PTE flag bits
	Steps int    // number of PTE fetches the walk performed
}

// PhysReader reads an 8-byte PTE from physical memory. It returns false
// if the physical access is denied by the platform's isolation primitive
// (Sanctum region bitmaps or Keystone PMP); the walker converts that
// into a FaultPhysAccess.
type PhysReader func(pa uint64) (uint64, bool)

// Walk translates va using the table rooted at physical page rootPPN.
// user selects U-mode permission checking (true for U-mode accesses;
// S-mode accesses require the U bit clear, mirroring RISC-V without
// SUM).
func Walk(read PhysReader, rootPPN, va uint64, acc Access, user bool) (Result, *Fault) {
	fault := func(k FaultKind) (Result, *Fault) {
		return Result{}, &Fault{Kind: k, VA: va, Acc: acc}
	}
	root := rootPPN
	steps := 0
	for level := Levels - 1; level >= 0; level-- {
		pteAddr := root<<mem.PageBits + VPN(va, level)*EntrySize
		pte, ok := read(pteAddr)
		steps++
		if !ok {
			return fault(FaultPhysAccess)
		}
		if pte&V == 0 {
			return fault(FaultPage)
		}
		if !IsLeaf(pte) {
			if level == 0 {
				return fault(FaultPage) // non-leaf at last level
			}
			root = PPNOf(pte)
			continue
		}
		// Leaf: superpages must be aligned; we only issue 4K leaves at
		// level 0 but reject a malformed superpage rather than mapping it.
		if level != 0 {
			return fault(FaultPage)
		}
		if !permOK(pte, acc, user) {
			return fault(FaultPage)
		}
		pa := PPNOf(pte)<<mem.PageBits | va&mem.PageMask
		return Result{PA: pa, Perms: pte & 0xFF, Steps: steps}, nil
	}
	return fault(FaultPage)
}

func permOK(pte uint64, acc Access, user bool) bool {
	if user && pte&U == 0 {
		return false
	}
	if !user && pte&U != 0 {
		return false
	}
	switch acc {
	case Fetch:
		return pte&X != 0
	case Load:
		return pte&R != 0
	case Store:
		return pte&W != 0
	default:
		return false
	}
}

// Builder constructs page tables in physical memory. Alloc returns the
// physical page number of a fresh, zeroed page to use for a table node.
type Builder struct {
	Mem   *mem.Phys
	Alloc func() (uint64, error)
	Root  uint64 // root table PPN
}

// ErrNoMapping is returned by Unmap/Lookup for absent mappings.
var ErrNoMapping = errors.New("pt: no mapping")

// NewBuilder allocates a root table and returns a builder.
func NewBuilder(m *mem.Phys, alloc func() (uint64, error)) (*Builder, error) {
	root, err := alloc()
	if err != nil {
		return nil, fmt.Errorf("pt: allocating root: %w", err)
	}
	if err := m.ZeroPage(root << mem.PageBits); err != nil {
		return nil, err
	}
	return &Builder{Mem: m, Alloc: alloc, Root: root}, nil
}

// Map installs a 4 KiB translation va→pa with the given flag bits
// (V is implied), allocating intermediate tables as needed.
func (b *Builder) Map(va, pa uint64, flags uint64) error {
	if va&mem.PageMask != 0 || pa&mem.PageMask != 0 {
		return fmt.Errorf("pt: Map of unaligned addresses va=%#x pa=%#x", va, pa)
	}
	node := b.Root
	for level := Levels - 1; level > 0; level-- {
		pteAddr := node<<mem.PageBits + VPN(va, level)*EntrySize
		pte, err := b.Mem.Load(pteAddr, 8)
		if err != nil {
			return err
		}
		if pte&V == 0 {
			next, err := b.Alloc()
			if err != nil {
				return fmt.Errorf("pt: allocating level-%d table: %w", level-1, err)
			}
			if err := b.Mem.ZeroPage(next << mem.PageBits); err != nil {
				return err
			}
			pte = MakePTE(next, V)
			if err := b.Mem.Store(pteAddr, 8, pte); err != nil {
				return err
			}
		} else if IsLeaf(pte) {
			return fmt.Errorf("pt: va %#x already mapped by a superpage", va)
		}
		node = PPNOf(pte)
	}
	leafAddr := node<<mem.PageBits + VPN(va, 0)*EntrySize
	return b.Mem.Store(leafAddr, 8, MakePTE(pa>>mem.PageBits, flags|V))
}

// Unmap removes the translation for va.
func (b *Builder) Unmap(va uint64) error {
	leafAddr, err := b.leafAddr(va)
	if err != nil {
		return err
	}
	return b.Mem.Store(leafAddr, 8, 0)
}

// Lookup returns the leaf PTE for va.
func (b *Builder) Lookup(va uint64) (uint64, error) {
	leafAddr, err := b.leafAddr(va)
	if err != nil {
		return 0, err
	}
	pte, err := b.Mem.Load(leafAddr, 8)
	if err != nil {
		return 0, err
	}
	if pte&V == 0 {
		return 0, ErrNoMapping
	}
	return pte, nil
}

func (b *Builder) leafAddr(va uint64) (uint64, error) {
	node := b.Root
	for level := Levels - 1; level > 0; level-- {
		pteAddr := node<<mem.PageBits + VPN(va, level)*EntrySize
		pte, err := b.Mem.Load(pteAddr, 8)
		if err != nil {
			return 0, err
		}
		if pte&V == 0 {
			return 0, ErrNoMapping
		}
		if IsLeaf(pte) {
			return 0, fmt.Errorf("pt: va %#x mapped by superpage", va)
		}
		node = PPNOf(pte)
	}
	return node<<mem.PageBits + VPN(va, 0)*EntrySize, nil
}
