package mem

import (
	"errors"
	"testing"
)

// TestCheckRangeHugeN pins the checkRange fix: lengths that overflow a
// 32-bit int (and would misbehave where int is 32 bits) are rejected
// as out-of-range, never wrapped.
func TestCheckRangeHugeN(t *testing.T) {
	m := New(1 << 16)
	for _, n := range []uint64{1 << 31, 1 << 40, 1<<64 - 1} {
		if err := m.ZeroRange(0, n); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("ZeroRange(0, %#x) = %v, want out-of-range", n, err)
		}
	}
	// A large but valid range on a large memory works.
	big := New(1 << 33)
	if err := big.ZeroRange(0, 1<<33); err != nil {
		t.Fatalf("full-memory ZeroRange: %v", err)
	}
}

// TestZeroRangeDematerializes checks that scrubbing whole pages
// returns them to the sparse baseline while partial pages are zeroed
// in place.
func TestZeroRangeDematerializes(t *testing.T) {
	m := New(1 << 16)
	for a := uint64(0); a < 4*PageSize; a += PageSize {
		m.Store(a, 8, ^uint64(0))
	}
	if got := m.TouchedPages(); got != 4 {
		t.Fatalf("touched = %d", got)
	}
	// Pages 1 and 2 are covered whole; pages 0 and 3 partially.
	if err := m.ZeroRange(PageSize-8, 2*PageSize+16); err != nil {
		t.Fatal(err)
	}
	if got := m.TouchedPages(); got != 2 {
		t.Fatalf("touched after scrub = %d, want 2 (whole pages dropped)", got)
	}
	for _, a := range []uint64{PageSize - 8, PageSize, 2 * PageSize, 3 * PageSize} {
		if v, _ := m.Load(a, 8); v != 0 {
			t.Errorf("addr %#x = %#x, want 0", a, v)
		}
	}
	if v, _ := m.Load(0, 8); v != ^uint64(0) {
		t.Errorf("byte before range was scrubbed")
	}
}

// TestWindowMatchesPhys drives a Window and a bare Phys through the
// same traffic, including a ZeroRange that de-materializes the cached
// page, and requires identical values and errors.
func TestWindowMatchesPhys(t *testing.T) {
	m := New(1 << 16)
	var w Window
	w.Reset(m)
	if err := w.Store(0x1000, 8, 0xDEAD); err != nil {
		t.Fatal(err)
	}
	if v, err := w.Load(0x1000, 8); err != nil || v != 0xDEAD {
		t.Fatalf("window load = %#x, %v", v, err)
	}
	// Same-page access uses the cached pointer; cross-check via Phys.
	if v, _ := m.Load(0x1000, 8); v != 0xDEAD {
		t.Fatal("window store invisible through Phys")
	}
	// De-materialize the cached page; the window must not serve the
	// orphaned pointer.
	if err := m.ZeroRange(0x1000&^uint64(PageMask), PageSize); err != nil {
		t.Fatal(err)
	}
	if v, err := w.Load(0x1000, 8); err != nil || v != 0 {
		t.Fatalf("window read stale page after ZeroRange: %#x, %v", v, err)
	}
	if err := w.Store(0x1000, 8, 7); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Load(0x1000, 8); v != 7 {
		t.Fatal("window store after ZeroRange lost")
	}
	// Errors are identical to Phys semantics.
	if _, err := w.Load(3, 8); !errors.Is(err, ErrUnaligned) {
		t.Errorf("unaligned window load: %v", err)
	}
	if _, err := w.Load(1<<16, 8); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("out-of-range window load: %v", err)
	}
	if _, err := w.Load(0, 3); !errors.Is(err, ErrBadWidth) {
		t.Errorf("bad-width window load: %v", err)
	}
}

// TestCodeWriteHook checks the inline code-write tracking every store
// path goes through.
func TestCodeWriteHook(t *testing.T) {
	m := New(1 << 16)
	fired := 0
	m.SetCodeWriteHook(func() { fired++ })
	m.MarkCodePage(0x3000)
	m.Store(0x1000, 8, 1) // unmarked page: no fire
	if fired != 0 {
		t.Fatal("store to unmarked page fired the hook")
	}
	m.Store(0x3008, 8, 1)
	if fired != 1 {
		t.Fatalf("store to marked page: fired = %d", fired)
	}
	// The mark set is cleared before the hook runs.
	m.Store(0x3010, 8, 1)
	if fired != 1 {
		t.Fatalf("mark survived the flush: fired = %d", fired)
	}
	m.MarkCodePage(0x4000)
	if err := m.ZeroRange(0x4000, PageSize); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("ZeroRange over marked page: fired = %d", fired)
	}
	m.MarkCodePage(0x5000)
	if err := m.WriteBytes(0x4ff8, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	if fired != 3 {
		t.Fatalf("WriteBytes crossing into marked page: fired = %d", fired)
	}
}
