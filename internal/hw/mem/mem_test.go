package mem

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestSizeRounding(t *testing.T) {
	m := New(PageSize + 1)
	if m.Size() != 2*PageSize {
		t.Fatalf("size = %#x, want two pages", m.Size())
	}
	if m.Pages() != 2 {
		t.Fatalf("pages = %d, want 2", m.Pages())
	}
}

func TestLoadStoreWidths(t *testing.T) {
	m := New(1 << 20)
	for _, w := range []int{1, 2, 4, 8} {
		addr := uint64(0x1000 * w)
		val := uint64(0xdeadbeefcafef00d) & (1<<(8*uint(w)) - 1)
		if w == 8 {
			val = 0xdeadbeefcafef00d
		}
		if err := m.Store(addr, w, val); err != nil {
			t.Fatalf("store width %d: %v", w, err)
		}
		got, err := m.Load(addr, w)
		if err != nil {
			t.Fatalf("load width %d: %v", w, err)
		}
		if got != val {
			t.Errorf("width %d: got %#x want %#x", w, got, val)
		}
	}
}

func TestLittleEndianLayout(t *testing.T) {
	m := New(1 << 16)
	m.Store(0, 8, 0x0807060504030201)
	b := make([]byte, 8)
	m.ReadBytes(0, b)
	if !bytes.Equal(b, []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Fatalf("layout = %v", b)
	}
}

func TestUnalignedRejected(t *testing.T) {
	m := New(1 << 16)
	for _, w := range []int{2, 4, 8} {
		if _, err := m.Load(1, w); !errors.Is(err, ErrUnaligned) {
			t.Errorf("load width %d at 1: err = %v", w, err)
		}
		if err := m.Store(uint64(w-1), w, 0); !errors.Is(err, ErrUnaligned) {
			t.Errorf("store width %d: err = %v", w, err)
		}
	}
}

func TestBadWidthRejected(t *testing.T) {
	m := New(1 << 16)
	if _, err := m.Load(0, 3); !errors.Is(err, ErrBadWidth) {
		t.Errorf("width 3 load: %v", err)
	}
	if err := m.Store(0, 0, 1); !errors.Is(err, ErrBadWidth) {
		t.Errorf("width 0 store: %v", err)
	}
}

func TestOutOfRange(t *testing.T) {
	m := New(1 << 16)
	if _, err := m.Load(1<<16, 8); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("load beyond end: %v", err)
	}
	if err := m.WriteBytes(1<<16-4, make([]byte, 8)); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("straddling write: %v", err)
	}
	// Overflow attempt: huge n wrapping around.
	if err := m.ReadBytes(^uint64(0)-3, make([]byte, 8)); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("wrapping read: %v", err)
	}
}

func TestCrossPageBytes(t *testing.T) {
	m := New(1 << 16)
	src := make([]byte, 3*PageSize)
	for i := range src {
		src[i] = byte(i * 7)
	}
	if err := m.WriteBytes(PageSize-100, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(src))
	if err := m.ReadBytes(PageSize-100, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src, dst) {
		t.Fatal("cross-page round trip corrupted data")
	}
}

func TestSparseness(t *testing.T) {
	m := New(1 << 30)
	m.Store(0x3fff0000, 8, 1)
	if got := m.TouchedPages(); got != 1 {
		t.Fatalf("touched pages = %d, want 1", got)
	}
	// Reading untouched memory returns zero without materializing... the
	// page map may materialize on read; the invariant is bounded growth.
	v, err := m.Load(0x100000, 8)
	if err != nil || v != 0 {
		t.Fatalf("fresh memory = %#x, err %v", v, err)
	}
	if got := m.TouchedPages(); got > 2 {
		t.Fatalf("touched pages = %d after one store and one load", got)
	}
}

func TestZeroRange(t *testing.T) {
	m := New(1 << 16)
	for a := uint64(0); a < 3*PageSize; a += 8 {
		m.Store(a, 8, ^uint64(0))
	}
	if err := m.ZeroRange(100, 2*PageSize); err != nil {
		t.Fatal(err)
	}
	v, _ := m.Load(96, 8)
	if v == 0 {
		t.Error("byte before zeroed range was cleared")
	}
	for a := uint64(104); a < 100+2*PageSize-8; a += 8 {
		if v, _ := m.Load(a&^7, 8); a >= 104 && a+8 <= 100+2*PageSize && v != 0 {
			t.Fatalf("addr %#x not zeroed: %#x", a, v)
		}
	}
}

func TestZeroPage(t *testing.T) {
	m := New(1 << 16)
	m.Store(PageSize+8, 8, 42)
	m.Store(2*PageSize, 8, 43)
	if err := m.ZeroPage(PageSize + 500); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Load(PageSize+8, 8); v != 0 {
		t.Error("target page not zeroed")
	}
	if v, _ := m.Load(2*PageSize, 8); v != 43 {
		t.Error("adjacent page was zeroed")
	}
}

func TestReadWriteBytesProperty(t *testing.T) {
	m := New(1 << 20)
	roundTrip := func(off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		addr := uint64(off)
		if err := m.WriteBytes(addr, data); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if err := m.ReadBytes(addr, got); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(roundTrip, nil); err != nil {
		t.Error(err)
	}
}

func TestCOWMarkBlocksWrites(t *testing.T) {
	m := New(1 << 20)
	pa := uint64(0x3000)
	m.Store(pa, 8, 0x1234)
	m.MarkCOW(pa)
	if !m.IsCOW(pa) || m.IsCOW(pa+PageSize) {
		t.Fatal("COW mark set wrong")
	}
	if err := m.Store(pa+16, 8, 1); !errors.Is(err, ErrCOWProtected) {
		t.Fatalf("store into frozen page: %v", err)
	}
	if err := m.WriteBytes(pa+PageSize-4, make([]byte, 8)); !errors.Is(err, ErrCOWProtected) {
		t.Fatalf("straddling write into frozen page: %v", err)
	}
	var w Window
	w.Reset(m)
	if err := w.Store(pa, 8, 1); !errors.Is(err, ErrCOWProtected) {
		t.Fatalf("window store into frozen page: %v", err)
	}
	// Reads still work, and the frozen contents are intact.
	if v, err := m.Load(pa, 8); err != nil || v != 0x1234 {
		t.Fatalf("load from frozen page: %v %#x", err, v)
	}
	m.ClearCOW(pa)
	if err := m.Store(pa+16, 8, 1); err != nil {
		t.Fatalf("store after thaw: %v", err)
	}
}

func TestPageRefAccounting(t *testing.T) {
	m := New(1 << 20)
	a, b := uint64(0x1000), uint64(0x5000)
	if m.TotalRefs() != 0 || m.RangeHasRefs(0, 1<<20) {
		t.Fatal("fresh memory holds references")
	}
	m.Retain(a)
	m.Retain(a)
	m.Retain(b)
	if m.PageRefs(a) != 2 || m.PageRefs(b) != 1 || m.TotalRefs() != 3 {
		t.Fatalf("refs %d/%d total %d", m.PageRefs(a), m.PageRefs(b), m.TotalRefs())
	}
	if !m.RangeHasRefs(a, PageSize) || m.RangeHasRefs(0x2000, PageSize) {
		t.Fatal("RangeHasRefs wrong")
	}
	if n := m.ReleaseRef(a); n != 1 {
		t.Fatalf("release returned %d", n)
	}
	m.ReleaseRef(a)
	m.ReleaseRef(b)
	if m.TotalRefs() != 0 {
		t.Fatalf("refs leaked: %d", m.TotalRefs())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("releasing below zero did not panic")
		}
	}()
	m.ReleaseRef(a)
}
