// Package mem models the physical memory of the simulated machine.
//
// Memory is sparse: pages are materialized (zero-filled) on first touch,
// so a simulated machine can expose a large physical address space while
// the host allocation stays proportional to the pages actually used.
// All privileged software in the reproduction (the security monitor) and
// all hardware-mediated paths (page-table walks, DMA, the interpreter's
// loads and stores) ultimately read and write through this package.
package mem

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Page geometry, shared by the whole simulator.
const (
	PageBits = 12
	PageSize = 1 << PageBits
	PageMask = PageSize - 1
)

// Errors reported by physical memory. Higher layers translate these into
// architectural access faults.
var (
	ErrOutOfRange = errors.New("mem: physical address out of range")
	ErrUnaligned  = errors.New("mem: unaligned access")
	ErrBadWidth   = errors.New("mem: unsupported access width")
)

// Phys is a sparse physical memory of a fixed size.
type Phys struct {
	size  uint64
	pages map[uint64]*[PageSize]byte
}

// New returns a physical memory covering addresses [0, size). Size is
// rounded up to a whole number of pages.
func New(size uint64) *Phys {
	size = (size + PageMask) &^ uint64(PageMask)
	return &Phys{size: size, pages: make(map[uint64]*[PageSize]byte)}
}

// Size returns the extent of physical memory in bytes.
func (m *Phys) Size() uint64 { return m.size }

// Pages returns the number of 4 KiB pages in the address space.
func (m *Phys) Pages() uint64 { return m.size >> PageBits }

// page returns the backing page for ppn, materializing it if needed.
func (m *Phys) page(ppn uint64) *[PageSize]byte {
	p, ok := m.pages[ppn]
	if !ok {
		p = new([PageSize]byte)
		m.pages[ppn] = p
	}
	return p
}

// TouchedPages reports how many pages have been materialized; useful for
// asserting that the simulation stays sparse.
func (m *Phys) TouchedPages() int { return len(m.pages) }

func (m *Phys) checkRange(addr uint64, n int) error {
	if n < 0 || addr >= m.size || uint64(n) > m.size-addr {
		return fmt.Errorf("%w: %#x+%d (size %#x)", ErrOutOfRange, addr, n, m.size)
	}
	return nil
}

// ReadBytes copies len(dst) bytes starting at addr into dst.
func (m *Phys) ReadBytes(addr uint64, dst []byte) error {
	if err := m.checkRange(addr, len(dst)); err != nil {
		return err
	}
	for len(dst) > 0 {
		ppn, off := addr>>PageBits, addr&PageMask
		n := copy(dst, m.page(ppn)[off:])
		dst = dst[n:]
		addr += uint64(n)
	}
	return nil
}

// WriteBytes copies src into memory starting at addr.
func (m *Phys) WriteBytes(addr uint64, src []byte) error {
	if err := m.checkRange(addr, len(src)); err != nil {
		return err
	}
	for len(src) > 0 {
		ppn, off := addr>>PageBits, addr&PageMask
		n := copy(m.page(ppn)[off:], src)
		src = src[n:]
		addr += uint64(n)
	}
	return nil
}

// Load reads a naturally-aligned little-endian value of width 1, 2, 4 or
// 8 bytes.
func (m *Phys) Load(addr uint64, width int) (uint64, error) {
	switch width {
	case 1, 2, 4, 8:
	default:
		return 0, fmt.Errorf("%w: %d", ErrBadWidth, width)
	}
	if addr&(uint64(width)-1) != 0 {
		return 0, fmt.Errorf("%w: %#x width %d", ErrUnaligned, addr, width)
	}
	if err := m.checkRange(addr, width); err != nil {
		return 0, err
	}
	p := m.page(addr >> PageBits)
	off := addr & PageMask
	switch width {
	case 1:
		return uint64(p[off]), nil
	case 2:
		return uint64(binary.LittleEndian.Uint16(p[off:])), nil
	case 4:
		return uint64(binary.LittleEndian.Uint32(p[off:])), nil
	default:
		return binary.LittleEndian.Uint64(p[off:]), nil
	}
}

// Store writes a naturally-aligned little-endian value of width 1, 2, 4
// or 8 bytes.
func (m *Phys) Store(addr uint64, width int, val uint64) error {
	switch width {
	case 1, 2, 4, 8:
	default:
		return fmt.Errorf("%w: %d", ErrBadWidth, width)
	}
	if addr&(uint64(width)-1) != 0 {
		return fmt.Errorf("%w: %#x width %d", ErrUnaligned, addr, width)
	}
	if err := m.checkRange(addr, width); err != nil {
		return err
	}
	p := m.page(addr >> PageBits)
	off := addr & PageMask
	switch width {
	case 1:
		p[off] = byte(val)
	case 2:
		binary.LittleEndian.PutUint16(p[off:], uint16(val))
	case 4:
		binary.LittleEndian.PutUint32(p[off:], uint32(val))
	default:
		binary.LittleEndian.PutUint64(p[off:], val)
	}
	return nil
}

// ZeroRange clears [addr, addr+n). The security monitor uses this when
// cleaning a memory resource before re-allocation (Fig 2 of the paper).
func (m *Phys) ZeroRange(addr uint64, n uint64) error {
	if err := m.checkRange(addr, int(n)); err != nil {
		return err
	}
	end := addr + n
	for addr < end {
		ppn, off := addr>>PageBits, addr&PageMask
		chunk := uint64(PageSize) - off
		if chunk > end-addr {
			chunk = end - addr
		}
		if p, ok := m.pages[ppn]; ok {
			for i := off; i < off+chunk; i++ {
				p[i] = 0
			}
		}
		// Untouched pages are already zero; skip materializing them.
		addr += chunk
	}
	return nil
}

// ZeroPage clears the page containing addr.
func (m *Phys) ZeroPage(addr uint64) error {
	return m.ZeroRange(addr&^uint64(PageMask), PageSize)
}
