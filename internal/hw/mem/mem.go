// Package mem models the physical memory of the simulated machine.
//
// Memory is sparse: pages are materialized (zero-filled) on first touch,
// so a simulated machine can expose a large physical address space while
// the host allocation stays proportional to the pages actually used.
// All privileged software in the reproduction (the security monitor) and
// all hardware-mediated paths (page-table walks, DMA, the interpreter's
// loads and stores) ultimately read and write through this package.
//
// Two hooks support the machine's fast-path execution engine without
// changing any architectural semantics: an inline code-write check on
// every store (so decoded-instruction caches can be dropped when code
// is overwritten), and Window, a last-page pointer cache that lets a
// core skip the page-map lookup on same-page traffic.
//
// The page table itself is safe for concurrent cores: pages live in a
// flat atomic pointer table (materialization is a compare-and-swap, so
// two harts touching a fresh page agree on one backing array), and the
// code-page mark set and the ZeroRange generation are atomics. This is
// exactly the sharing model of the hardware being simulated — a memory
// bus that many harts address concurrently — and it costs the
// single-threaded fast path nothing: the atomic loads compile to plain
// loads on the host ISAs we run on, and the pointer-table index replaces
// what used to be a map lookup. Byte-level races between harts writing
// the same location are the guest program's business, as on real
// hardware; the security monitor's region isolation keeps protection
// domains on disjoint pages.
package mem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
)

// Page geometry, shared by the whole simulator.
const (
	PageBits = 12
	PageSize = 1 << PageBits
	PageMask = PageSize - 1
)

// Errors reported by physical memory. Higher layers translate these into
// architectural access faults.
var (
	ErrOutOfRange = errors.New("mem: physical address out of range")
	ErrUnaligned  = errors.New("mem: unaligned access")
	ErrBadWidth   = errors.New("mem: unsupported access width")
	// ErrCOWProtected is returned for any write landing in a page the
	// security monitor has frozen copy-on-write (enclave snapshots): the
	// page's contents back one or more aliased mappings and may only
	// change through the monitor's copy-then-retry fault protocol, never
	// in place. This is the physical-memory backstop — page-table
	// permissions already deny guest stores; this catches host-level
	// writes (S-mode kernel stores, DMA) that bypass a page walk.
	ErrCOWProtected = errors.New("mem: write to a copy-on-write frozen page")
)

// Phys is a sparse physical memory of a fixed size.
type Phys struct {
	size    uint64
	pages   []atomic.Pointer[[PageSize]byte]
	touched atomic.Int64 // materialized pages, for TouchedPages

	// codePages marks pages whose contents feed a consumer-side cache
	// (the machine's decoded-instruction caches). Every write checks
	// it inline — no indirect call on the store hot path — and a write
	// landing in a marked page clears the set and fires onCodeWrite.
	codePages   []atomic.Uint64
	onCodeWrite func()

	// zeroGen invalidates Window pointer caches: it advances whenever
	// ZeroRange may de-materialize pages, so a cached page pointer is
	// never read after its page left the table.
	zeroGen atomic.Uint64

	// refs counts, per page, how many snapshot/alias holders reference
	// the page's contents (the monitor's enclave-snapshot subsystem:
	// one reference for the snapshot itself plus one per clone still
	// aliasing the page). A page with a nonzero count must not be
	// scrubbed or re-allocated; tests use TotalRefs to prove teardown
	// returns every count to zero.
	refs []atomic.Uint32

	// cowPages marks pages frozen copy-on-write: every write path of
	// this package (Store, WriteBytes — the paths S-mode software and
	// DMA reach) refuses writes into a marked page with
	// ErrCOWProtected. The monitor's own page copies target unmarked
	// destination pages, so the mark never blocks the fault protocol.
	cowPages []atomic.Uint64
}

// New returns a physical memory covering addresses [0, size). Size is
// rounded up to a whole number of pages.
func New(size uint64) *Phys {
	size = (size + PageMask) &^ uint64(PageMask)
	return &Phys{
		size:      size,
		pages:     make([]atomic.Pointer[[PageSize]byte], size>>PageBits),
		codePages: make([]atomic.Uint64, (size>>PageBits+63)/64),
		refs:      make([]atomic.Uint32, size>>PageBits),
		cowPages:  make([]atomic.Uint64, (size>>PageBits+63)/64),
	}
}

// Size returns the extent of physical memory in bytes.
func (m *Phys) Size() uint64 { return m.size }

// Pages returns the number of 4 KiB pages in the address space.
func (m *Phys) Pages() uint64 { return m.size >> PageBits }

// SetCodeWriteHook installs fn to be called whenever a write — a guest
// store, a Go-level WriteBytes (loaders, DMA), or a ZeroRange scrub —
// lands in a page marked by MarkCodePage. The mark set is cleared
// before fn runs; the consumer re-marks pages as it refills. fn must be
// safe to call from any hart (the machine's implementation only bumps
// per-core atomic generations). Install once at machine construction,
// before any concurrent execution.
func (m *Phys) SetCodeWriteHook(fn func()) { m.onCodeWrite = fn }

// MarkCodePage records that the page containing addr feeds a
// consumer-side cache that must be invalidated when the page is
// written.
func (m *Phys) MarkCodePage(addr uint64) {
	p := addr >> PageBits
	m.codePages[p>>6].Or(1 << (p & 63))
}

// noteWrite fires the code-write hook if [addr, addr+n) touches a
// marked page, reporting whether it did. n > 0; the range is already
// validated.
func (m *Phys) noteWrite(addr, n uint64) bool {
	for p, last := addr>>PageBits, (addr+n-1)>>PageBits; ; p++ {
		if m.codePages[p>>6].Load()&(1<<(p&63)) != 0 {
			return m.codeWriteHit()
		}
		if p >= last {
			return false
		}
	}
}

// codeWriteHit is the marked-code-page write slow path: the snoop set
// resets (every marked page re-registers on its next fetch) and the
// code-write hook fires.
func (m *Phys) codeWriteHit() bool {
	for i := range m.codePages {
		m.codePages[i].Store(0)
	}
	if m.onCodeWrite != nil {
		m.onCodeWrite()
	}
	return true
}

// Retain adds one alias reference to the page containing addr. The
// security monitor takes a reference for a snapshot freezing the page
// and one per clone aliasing it.
func (m *Phys) Retain(addr uint64) { m.refs[addr>>PageBits].Add(1) }

// ReleaseRef drops one alias reference from the page containing addr,
// returning the remaining count. Releasing below zero is a monitor
// bug and panics rather than silently corrupting the accounting.
func (m *Phys) ReleaseRef(addr uint64) uint32 {
	n := m.refs[addr>>PageBits].Add(^uint32(0))
	if n == ^uint32(0) {
		panic("mem: page reference released below zero")
	}
	return n
}

// PageRefs reports the alias reference count of the page containing
// addr.
func (m *Phys) PageRefs(addr uint64) uint32 { return m.refs[addr>>PageBits].Load() }

// TotalRefs sums every page's alias reference count — the leak check
// tests run after snapshot/clone teardown, expecting zero.
func (m *Phys) TotalRefs() uint64 {
	var total uint64
	for i := range m.refs {
		total += uint64(m.refs[i].Load())
	}
	return total
}

// RangeHasRefs reports whether any page of [addr, addr+n) holds alias
// references; the monitor refuses to scrub such a range.
func (m *Phys) RangeHasRefs(addr, n uint64) bool {
	if n == 0 {
		return false
	}
	for p, last := addr>>PageBits, (addr+n-1)>>PageBits; p <= last && p < uint64(len(m.refs)); p++ {
		if m.refs[p].Load() != 0 {
			return true
		}
	}
	return false
}

// MarkCOW freezes the page containing addr copy-on-write: subsequent
// Store/WriteBytes into it fail with ErrCOWProtected until ClearCOW.
func (m *Phys) MarkCOW(addr uint64) {
	p := addr >> PageBits
	m.cowPages[p>>6].Or(1 << (p & 63))
}

// ClearCOW unfreezes the page containing addr.
func (m *Phys) ClearCOW(addr uint64) {
	p := addr >> PageBits
	m.cowPages[p>>6].And(^uint64(1 << (p & 63)))
}

// IsCOW reports whether the page containing addr is frozen
// copy-on-write. The machine's store path uses it to fault guest
// stores that reach a frozen page through a stale translation.
func (m *Phys) IsCOW(addr uint64) bool {
	p := addr >> PageBits
	return m.cowPages[p>>6].Load()&(1<<(p&63)) != 0
}

// cowDenies reports whether a write of n bytes at addr touches any
// frozen page. The range is already validated and n > 0.
func (m *Phys) cowDenies(addr, n uint64) bool {
	for p, last := addr>>PageBits, (addr+n-1)>>PageBits; p <= last; p++ {
		if m.cowPages[p>>6].Load()&(1<<(p&63)) != 0 {
			return true
		}
	}
	return false
}

// page returns the backing page for ppn, materializing it if needed.
// Two harts materializing the same page race through a compare-and-swap
// and agree on one winner.
func (m *Phys) page(ppn uint64) *[PageSize]byte {
	if p := m.pages[ppn].Load(); p != nil {
		return p
	}
	p := new([PageSize]byte)
	if m.pages[ppn].CompareAndSwap(nil, p) {
		m.touched.Add(1)
		return p
	}
	return m.pages[ppn].Load()
}

// TouchedPages reports how many pages have been materialized; useful for
// asserting that the simulation stays sparse.
func (m *Phys) TouchedPages() int { return int(m.touched.Load()) }

func (m *Phys) checkRange(addr, n uint64) error {
	if addr >= m.size || n > m.size-addr {
		return fmt.Errorf("%w: %#x+%d (size %#x)", ErrOutOfRange, addr, n, m.size)
	}
	return nil
}

// ReadBytes copies len(dst) bytes starting at addr into dst.
func (m *Phys) ReadBytes(addr uint64, dst []byte) error {
	if err := m.checkRange(addr, uint64(len(dst))); err != nil {
		return err
	}
	for len(dst) > 0 {
		ppn, off := addr>>PageBits, addr&PageMask
		n := copy(dst, m.page(ppn)[off:])
		dst = dst[n:]
		addr += uint64(n)
	}
	return nil
}

// WriteBytes copies src into memory starting at addr. Writes touching
// a copy-on-write frozen page are refused whole with ErrCOWProtected
// before any byte lands.
func (m *Phys) WriteBytes(addr uint64, src []byte) error {
	if err := m.checkRange(addr, uint64(len(src))); err != nil {
		return err
	}
	if len(src) > 0 {
		if m.cowDenies(addr, uint64(len(src))) {
			return fmt.Errorf("%w: %#x+%d", ErrCOWProtected, addr, len(src))
		}
		m.noteWrite(addr, uint64(len(src)))
	}
	for len(src) > 0 {
		ppn, off := addr>>PageBits, addr&PageMask
		n := copy(m.page(ppn)[off:], src)
		src = src[n:]
		addr += uint64(n)
	}
	return nil
}

// checkAccess validates width, alignment and range for Load/Store.
func (m *Phys) checkAccess(addr uint64, width int) error {
	switch width {
	case 1, 2, 4, 8:
	default:
		return fmt.Errorf("%w: %d", ErrBadWidth, width)
	}
	if addr&(uint64(width)-1) != 0 {
		return fmt.Errorf("%w: %#x width %d", ErrUnaligned, addr, width)
	}
	return m.checkRange(addr, uint64(width))
}

// loadFrom reads a little-endian value from a page. The access is
// naturally aligned, so it never crosses the page. The masks bound the
// slice offsets so the compiler drops its bounds checks.
func loadFrom(p *[PageSize]byte, off uint64, width int) uint64 {
	off &= PageMask
	switch width {
	case 1:
		return uint64(p[off])
	case 2:
		return uint64(binary.LittleEndian.Uint16(p[off&^uint64(1):]))
	case 4:
		return uint64(binary.LittleEndian.Uint32(p[off&^uint64(3):]))
	default:
		return binary.LittleEndian.Uint64(p[off&^uint64(7):])
	}
}

// storeTo writes a little-endian value into a page.
func storeTo(p *[PageSize]byte, off uint64, width int, val uint64) {
	off &= PageMask
	switch width {
	case 1:
		p[off] = byte(val)
	case 2:
		binary.LittleEndian.PutUint16(p[off&^uint64(1):], uint16(val))
	case 4:
		binary.LittleEndian.PutUint32(p[off&^uint64(3):], uint32(val))
	default:
		binary.LittleEndian.PutUint64(p[off&^uint64(7):], val)
	}
}

// Load reads a naturally-aligned little-endian value of width 1, 2, 4 or
// 8 bytes.
func (m *Phys) Load(addr uint64, width int) (uint64, error) {
	if err := m.checkAccess(addr, width); err != nil {
		return 0, err
	}
	return loadFrom(m.page(addr>>PageBits), addr&PageMask, width), nil
}

// Store writes a naturally-aligned little-endian value of width 1, 2, 4
// or 8 bytes. Stores into a copy-on-write frozen page are refused with
// ErrCOWProtected.
func (m *Phys) Store(addr uint64, width int, val uint64) error {
	if err := m.checkAccess(addr, width); err != nil {
		return err
	}
	if m.IsCOW(addr) {
		return fmt.Errorf("%w: %#x", ErrCOWProtected, addr)
	}
	m.noteWrite(addr, uint64(width))
	storeTo(m.page(addr>>PageBits), addr&PageMask, width, val)
	return nil
}

// ZeroRange clears [addr, addr+n). The security monitor uses this when
// cleaning a memory resource before re-allocation (Fig 2 of the paper).
// Whole pages are de-materialized, so cleaning a region also returns
// its host allocation to the page table's sparse baseline.
func (m *Phys) ZeroRange(addr, n uint64) error {
	if err := m.checkRange(addr, n); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	m.noteWrite(addr, n)
	m.zeroGen.Add(1)
	end := addr + n
	for addr < end {
		ppn, off := addr>>PageBits, addr&PageMask
		chunk := uint64(PageSize) - off
		if chunk > end-addr {
			chunk = end - addr
		}
		if off == 0 && chunk == PageSize {
			// A whole page reads as zero once out of the table; dropping
			// it keeps host memory proportional to live pages.
			if m.pages[ppn].Swap(nil) != nil {
				m.touched.Add(-1)
			}
		} else if p := m.pages[ppn].Load(); p != nil {
			for i := off; i < off+chunk; i++ {
				p[i] = 0
			}
		}
		// Untouched pages are already zero; skip materializing them.
		addr += chunk
	}
	return nil
}

// ZeroPage clears the page containing addr.
func (m *Phys) ZeroPage(addr uint64) error {
	return m.ZeroRange(addr&^uint64(PageMask), PageSize)
}

// Window is a last-page pointer cache in front of a Phys. The common
// same-page access skips the page-table lookup entirely; semantics
// (alignment, width, range checks, error values) are identical to
// Phys.Load/Store, which the machine's fast-vs-reference equivalence
// tests rely on. A Window is single-consumer state (one per core per
// traffic class) and is invalidated automatically when ZeroRange may
// have de-materialized its page.
type Window struct {
	m    *Phys
	ppn  uint64
	page *[PageSize]byte
	gen  uint64
}

// Reset points the window at a memory and drops any cached page.
func (w *Window) Reset(m *Phys) {
	w.m = m
	w.page = nil
}

// lookup returns the backing page for addr, which the caller has
// already range-checked. LoadFast/StoreFast repeat this hit check
// inline (one call frame per access, as the interpreter's hot loop
// requires); the zeroGen load is atomic, which is a plain load on the
// host ISAs we target.
func (w *Window) lookup(addr uint64) *[PageSize]byte {
	ppn := addr >> PageBits
	if w.page != nil && w.ppn == ppn && w.gen == w.m.zeroGen.Load() {
		return w.page
	}
	return w.refill(ppn)
}

// refill re-validates the window after a miss or a ZeroRange.
func (w *Window) refill(ppn uint64) *[PageSize]byte {
	gen := w.m.zeroGen.Load()
	p := w.m.page(ppn)
	w.ppn, w.page, w.gen = ppn, p, gen
	return p
}

// Load is Phys.Load through the window's page cache.
func (w *Window) Load(addr uint64, width int) (uint64, error) {
	if err := w.m.checkAccess(addr, width); err != nil {
		return 0, err
	}
	return loadFrom(w.lookup(addr), addr&PageMask, width), nil
}

// LoadFast is Load without the width/alignment/range checks, for
// callers that can prove them: the machine's translated fast path only
// produces naturally-aligned accesses of ISA widths to physical
// addresses its isolation check already bounded. The window hit check
// is open-coded (not via lookup) so the whole access stays one call
// frame deep.
func (w *Window) LoadFast(addr uint64, width int) uint64 {
	ppn := addr >> PageBits
	p := w.page
	if p == nil || w.ppn != ppn || w.gen != w.m.zeroGen.Load() {
		p = w.refill(ppn)
	}
	return loadFrom(p, addr&PageMask, width)
}

// Load64 is LoadFast specialized to the 8-byte width — the dominant
// access on the block engine's hot path — shaped to inline at the call
// site: the open-coded window hit check and one fixed-width load, with
// the refill outlined.
func (w *Window) Load64(addr uint64) uint64 {
	p := w.page
	if p == nil || w.ppn != addr>>PageBits || w.gen != w.m.zeroGen.Load() {
		p = w.refill(addr >> PageBits)
	}
	return binary.LittleEndian.Uint64(p[addr&PageMask&^uint64(7):])
}

// StoreFast is Store without the width/alignment/range checks, under
// LoadFast's caller contract — which now also includes the COW check:
// the caller must have established the page is not frozen (IsCOW), as
// the machine's fast store path does after translation. The code-write
// check still observes the store.
func (w *Window) StoreFast(addr uint64, width int, val uint64) {
	w.StoreFastNoted(addr, width, val)
}

// StoreFastNoted is StoreFast, additionally reporting whether the
// write landed in a marked code page (and therefore fired the
// code-write hook). The block engine uses the verdict to decide
// whether the store could have moved its guard word.
func (w *Window) StoreFastNoted(addr uint64, width int, val uint64) bool {
	hitCode := w.m.noteWrite(addr, uint64(width))
	ppn := addr >> PageBits
	p := w.page
	if p == nil || w.ppn != ppn || w.gen != w.m.zeroGen.Load() {
		p = w.refill(ppn)
	}
	storeTo(p, addr&PageMask, width, val)
	return hitCode
}

// StoreFastBlock is the block engine's fused store: the COW backstop,
// the code-write check and the window write in one call frame, sharing
// one page-number computation. cow reports the store was refused (a
// frozen page — the caller raises the store-access trap, nothing was
// written); hitCode reports the write landed in a marked code page and
// fired the code-write hook. The caller contract is StoreFast's plus
// natural alignment, so the access never crosses a page and one page's
// bits decide both checks.
func (w *Window) StoreFastBlock(addr uint64, width int, val uint64) (cow, hitCode bool) {
	pg := addr >> PageBits
	bit := uint64(1) << (pg & 63)
	if w.m.cowPages[pg>>6].Load()&bit != 0 {
		return true, false
	}
	if w.m.codePages[pg>>6].Load()&bit != 0 {
		hitCode = w.m.codeWriteHit()
	}
	p := w.page
	if p == nil || w.ppn != pg || w.gen != w.m.zeroGen.Load() {
		p = w.refill(pg)
	}
	storeTo(p, addr&PageMask, width, val)
	return false, hitCode
}

// Store64Block is StoreFastBlock specialized to the 8-byte width,
// shaped to inline: the two page-bit checks fold into one OR-ed branch
// and the write is fixed-width, with the refused/marked-page cases
// outlined. Both bitmaps are still read directly — the OR is a pure
// fast-path fold, not a derived union.
func (w *Window) Store64Block(addr, val uint64) (cow, hitCode bool) {
	pg := addr >> PageBits
	if (w.m.cowPages[pg>>6].Load()|w.m.codePages[pg>>6].Load())&(1<<(pg&63)) != 0 {
		return w.store64BlockSlow(addr, pg, val)
	}
	p := w.page
	if p == nil || w.ppn != pg || w.gen != w.m.zeroGen.Load() {
		p = w.refill(pg)
	}
	binary.LittleEndian.PutUint64(p[addr&PageMask&^uint64(7):], val)
	return false, false
}

// store64BlockSlow disambiguates Store64Block's marked-page branch: a
// frozen page refuses the store, a marked code page takes the
// code-write hit and then writes.
func (w *Window) store64BlockSlow(addr, pg, val uint64) (cow, hitCode bool) {
	if w.m.cowPages[pg>>6].Load()&(1<<(pg&63)) != 0 {
		return true, false
	}
	hitCode = w.m.codeWriteHit()
	p := w.lookup(addr)
	binary.LittleEndian.PutUint64(p[addr&PageMask&^uint64(7):], val)
	return false, hitCode
}

// Store is Phys.Store through the window's page cache. The code-write
// and COW checks still observe the store.
func (w *Window) Store(addr uint64, width int, val uint64) error {
	if err := w.m.checkAccess(addr, width); err != nil {
		return err
	}
	if w.m.IsCOW(addr) {
		return fmt.Errorf("%w: %#x", ErrCOWProtected, addr)
	}
	w.m.noteWrite(addr, uint64(width))
	storeTo(w.lookup(addr), addr&PageMask, width, val)
	return nil
}
