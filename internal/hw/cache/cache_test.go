package cache

import (
	"testing"
	"testing/quick"
)

func sharedCfg() Config {
	return Config{Sets: 64, Ways: 4, LineBits: 6, HitCycles: 2, MissCycles: 40}
}

func TestMissThenHit(t *testing.T) {
	c := New(sharedCfg())
	hit, cyc := c.Access(0x1000)
	if hit || cyc != 40 {
		t.Fatalf("first access: hit=%v cyc=%d", hit, cyc)
	}
	hit, cyc = c.Access(0x1000)
	if !hit || cyc != 2 {
		t.Fatalf("second access: hit=%v cyc=%d", hit, cyc)
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("stats: %d/%d", c.Hits, c.Misses)
	}
}

func TestSameLineDifferentOffsetHits(t *testing.T) {
	c := New(sharedCfg())
	c.Access(0x1000)
	if hit, _ := c.Access(0x103F); !hit {
		t.Fatal("access within the same 64B line missed")
	}
	if hit, _ := c.Access(0x1040); hit {
		t.Fatal("access to the next line hit")
	}
}

func TestLRUEviction(t *testing.T) {
	cfg := sharedCfg()
	cfg.Ways = 2
	c := New(cfg)
	// Three conflicting lines in a 2-way set: same set index.
	stride := uint64(cfg.Sets) << cfg.LineBits
	a, b, d := uint64(0), stride, 2*stride
	c.Access(a)
	c.Access(b)
	c.Access(a) // make b the LRU
	c.Access(d) // evicts b
	if !c.Probe(a) {
		t.Error("MRU line evicted")
	}
	if c.Probe(b) {
		t.Error("LRU line survived")
	}
	if !c.Probe(d) {
		t.Error("filled line absent")
	}
	if c.Evictions != 1 {
		t.Errorf("evictions = %d", c.Evictions)
	}
}

func TestFlushAll(t *testing.T) {
	c := New(sharedCfg())
	for i := uint64(0); i < 32; i++ {
		c.Access(i << 6)
	}
	if c.Live() != 32 {
		t.Fatalf("live = %d", c.Live())
	}
	c.FlushAll()
	if c.Live() != 0 {
		t.Fatalf("live after flush = %d", c.Live())
	}
}

func TestFlushIf(t *testing.T) {
	c := New(sharedCfg())
	c.Access(0x0000)
	c.Access(0x10000)
	n := c.FlushIf(func(lineAddr uint64) bool { return lineAddr<<6 >= 0x10000 })
	if n != 1 || c.Probe(0x10000) || !c.Probe(0x0000) {
		t.Fatalf("selective flush wrong: n=%d", n)
	}
}

func TestPartitionIsolation(t *testing.T) {
	// Two domains get disjoint halves of the cache; an access by one can
	// never evict the other, whatever the addresses.
	regionOf := func(pa uint64) int { return int(pa >> 16) } // 64 KiB regions
	cfg := sharedCfg()
	cfg.PartitionOf = regionOf
	cfg.Partitions = 2
	c := New(cfg)

	per := cfg.Sets / cfg.Partitions
	// Fill domain 0 (region 0) exactly to its partition's capacity.
	var dom0 []uint64
	for i := 0; i < per*cfg.Ways; i++ {
		pa := uint64(i) << cfg.LineBits // all in region 0
		if pa>>16 != 0 {
			break
		}
		dom0 = append(dom0, pa)
		c.Access(pa)
		if got := c.SetOf(pa); got >= per {
			t.Fatalf("region-0 address mapped to set %d outside its partition", got)
		}
	}
	// Hammer domain 1 (region 1) far beyond capacity.
	for i := 0; i < 4*cfg.Sets*cfg.Ways; i++ {
		pa := uint64(1)<<16 + uint64(i)<<cfg.LineBits
		if pa>>16 != 1 {
			break
		}
		c.Access(pa)
		if got := c.SetOf(pa); got < per {
			t.Fatalf("region-1 address mapped to set %d inside partition 0", got)
		}
	}
	// Every domain-0 line must still be resident.
	for _, pa := range dom0 {
		if !c.Probe(pa) {
			t.Fatalf("partitioned line %#x evicted by other domain", pa)
		}
	}
}

func TestSharedCacheInterference(t *testing.T) {
	// Without partitioning the same experiment evicts domain 0's lines —
	// this asymmetry is the side channel the paper closes.
	c := New(sharedCfg())
	c.Access(0) // domain 0 line in set 0
	cfg := c.Config()
	stride := uint64(cfg.Sets) << cfg.LineBits
	for i := 1; i <= cfg.Ways; i++ {
		c.Access(uint64(1)<<16 + stride*uint64(i)) // same set, other domain
	}
	if c.Probe(0) {
		t.Fatal("shared cache failed to show interference (test setup wrong?)")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{Sets: 0, Ways: 1, LineBits: 6},
		{Sets: 3, Ways: 1, LineBits: 6},
		{Sets: 4, Ways: 0, LineBits: 6},
		{Sets: 4, Ways: 1, LineBits: 2},
		{Sets: 4, Ways: 1, LineBits: 13},
		{Sets: 64, Ways: 2, LineBits: 6, PartitionOf: func(uint64) int { return 0 }, Partitions: 0},
		{Sets: 64, Ways: 2, LineBits: 6, PartitionOf: func(uint64) int { return 0 }, Partitions: 7},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{})
}

// Property: an address is always resident immediately after access, and
// set mapping is a pure function.
func TestCacheProperties(t *testing.T) {
	c := New(sharedCfg())
	residentAfterAccess := func(pa uint64) bool {
		c.Access(pa)
		return c.Probe(pa)
	}
	if err := quick.Check(residentAfterAccess, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	pureMapping := func(pa uint64) bool {
		return c.SetOf(pa) == c.SetOf(pa) && c.SetOf(pa) < sharedCfg().Sets
	}
	if err := quick.Check(pureMapping, nil); err != nil {
		t.Error(err)
	}
}
