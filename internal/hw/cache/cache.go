// Package cache models the set-associative caches of the simulated
// machine with a deterministic cycle cost per access. The shared
// last-level cache is the side-channel surface the paper's threat model
// centres on: Sanctum partitions it by DRAM region (page coloring) so
// that no two protection domains contend for the same sets, while
// Keystone (and the insecure baseline) leave it shared. The model
// exposes exactly the observable an attacker has on real hardware —
// the latency of its own accesses — plus white-box inspection hooks for
// tests.
package cache

import (
	"fmt"
	"math/bits"
)

// Config describes a cache.
type Config struct {
	Sets       int    // number of sets; power of two
	Ways       int    // associativity
	LineBits   uint   // log2 of line size in bytes
	HitCycles  uint64 // latency of a hit
	MissCycles uint64 // latency of a miss (includes fill)

	// PartitionOf, when non-nil, maps a physical address to a partition
	// index in [0, Partitions); each partition owns Sets/Partitions
	// consecutive sets. This models Sanctum's page-colored LLC where the
	// partition is the DRAM region. When nil the cache is fully shared.
	PartitionOf func(pa uint64) int
	Partitions  int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Sets <= 0 || bits.OnesCount(uint(c.Sets)) != 1 {
		return fmt.Errorf("cache: sets %d not a positive power of two", c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache: ways %d", c.Ways)
	}
	if c.LineBits < 3 || c.LineBits > 12 {
		return fmt.Errorf("cache: line bits %d outside [3,12]", c.LineBits)
	}
	if c.PartitionOf != nil {
		if c.Partitions <= 0 || c.Sets%c.Partitions != 0 {
			return fmt.Errorf("cache: %d partitions does not divide %d sets", c.Partitions, c.Sets)
		}
	}
	return nil
}

type line struct {
	tag   uint64 // full line address (pa >> LineBits)
	valid bool
	lru   uint64 // last-access stamp
}

// Cache is a set-associative cache with LRU replacement.
type Cache struct {
	cfg   Config
	sets  [][]line
	stamp uint64

	// Statistics.
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// New builds a cache. It panics on invalid configuration, which is a
// programming error in platform setup rather than a runtime condition.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := make([][]line, cfg.Sets)
	lines := make([]line, cfg.Sets*cfg.Ways)
	for i := range sets {
		sets[i], lines = lines[:cfg.Ways], lines[cfg.Ways:]
	}
	return &Cache{cfg: cfg, sets: sets}
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// setIndex computes the set for a physical address, honouring
// partitioning.
func (c *Cache) setIndex(pa uint64) int {
	lineAddr := pa >> c.cfg.LineBits
	if c.cfg.PartitionOf == nil {
		return int(lineAddr % uint64(c.cfg.Sets))
	}
	per := c.cfg.Sets / c.cfg.Partitions
	part := c.cfg.PartitionOf(pa) % c.cfg.Partitions
	if part < 0 {
		part = 0
	}
	return part*per + int(lineAddr%uint64(per))
}

// Access performs a cached access to pa, returning whether it hit and
// the cycle cost. A miss fills the line, evicting LRU if needed.
func (c *Cache) Access(pa uint64) (hit bool, cycles uint64) {
	c.stamp++
	set := c.sets[c.setIndex(pa)]
	tag := pa >> c.cfg.LineBits
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.stamp
			c.Hits++
			return true, c.cfg.HitCycles
		}
	}
	c.Misses++
	// Fill: choose invalid way, else LRU.
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			goto fill
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	c.Evictions++
fill:
	set[victim] = line{tag: tag, valid: true, lru: c.stamp}
	return false, c.cfg.MissCycles
}

// Probe reports whether pa is cached without updating any state; the
// white-box equivalent of a timing probe, used by tests.
func (c *Cache) Probe(pa uint64) bool {
	set := c.sets[c.setIndex(pa)]
	tag := pa >> c.cfg.LineBits
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// FlushAll invalidates the entire cache (core cleaning).
func (c *Cache) FlushAll() {
	for _, set := range c.sets {
		for i := range set {
			set[i].valid = false
		}
	}
}

// FlushIf invalidates lines whose physical line address matches pred,
// returning the count. The SM uses this to clean a DRAM region's cache
// footprint on re-allocation when partitioning is not available.
func (c *Cache) FlushIf(pred func(lineAddr uint64) bool) int {
	n := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid && pred(set[i].tag) {
				set[i].valid = false
				n++
			}
		}
	}
	return n
}

// Live returns the number of valid lines.
func (c *Cache) Live() int {
	n := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid {
				n++
			}
		}
	}
	return n
}

// SetOf exposes the set index mapping for tests and attack tooling.
func (c *Cache) SetOf(pa uint64) int { return c.setIndex(pa) }
