// Package cache models the set-associative caches of the simulated
// machine with a deterministic cycle cost per access. The shared
// last-level cache is the side-channel surface the paper's threat model
// centres on: Sanctum partitions it by DRAM region (page coloring) so
// that no two protection domains contend for the same sets, while
// Keystone (and the insecure baseline) leave it shared. The model
// exposes exactly the observable an attacker has on real hardware —
// the latency of its own accesses — plus white-box inspection hooks for
// tests.
package cache

import (
	"fmt"
	"math/bits"
	"sync"
)

// Config describes a cache.
type Config struct {
	Sets       int    // number of sets; power of two
	Ways       int    // associativity
	LineBits   uint   // log2 of line size in bytes
	HitCycles  uint64 // latency of a hit
	MissCycles uint64 // latency of a miss (includes fill)

	// PartitionOf, when non-nil, maps a physical address to a partition
	// index in [0, Partitions); each partition owns Sets/Partitions
	// consecutive sets. This models Sanctum's page-colored LLC where the
	// partition is the DRAM region. When nil the cache is fully shared.
	PartitionOf func(pa uint64) int
	Partitions  int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Sets <= 0 || bits.OnesCount(uint(c.Sets)) != 1 {
		return fmt.Errorf("cache: sets %d not a positive power of two", c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache: ways %d", c.Ways)
	}
	if c.LineBits < 3 || c.LineBits > 12 {
		return fmt.Errorf("cache: line bits %d outside [3,12]", c.LineBits)
	}
	if c.PartitionOf != nil {
		if c.Partitions <= 0 || c.Sets%c.Partitions != 0 {
			return fmt.Errorf("cache: %d partitions does not divide %d sets", c.Partitions, c.Sets)
		}
	}
	return nil
}

type line struct {
	tag   uint64 // full line address (pa >> LineBits)
	valid bool
	epoch uint64 // flush epoch the line was filled in
	lru   uint64 // last-access stamp
}

// live reports whether the line is resident in the current epoch.
func (l *line) live(epoch uint64) bool { return l.valid && l.epoch == epoch }

// Cache is a set-associative cache with LRU replacement.
type Cache struct {
	cfg      Config
	sets     [][]line
	stamp    uint64
	lineBits uint
	setMask  uint64 // Sets-1; Sets is validated to be a power of two

	// fillGen advances whenever the set of resident lines changes (any
	// fill, eviction or flush). A LineRef from an older generation is
	// dead; one from the current generation still points at a valid
	// resident line.
	fillGen uint64

	// epoch implements O(1) full flushes: lines filled in an older
	// epoch are not resident, so FlushAll is one increment instead of
	// a sweep over every way. Core cleaning runs on every protection-
	// domain switch, which makes this the hot path of enclave
	// enter/exit.
	epoch uint64

	// Statistics.
	Hits      uint64
	Misses    uint64
	Evictions uint64

	// shared serializes the multi-consumer entry points (Access, Probe,
	// the flushes) when the cache is reachable from more than one hart
	// at once — the machine's L2 in parallel-scheduler mode. Per-core
	// caches and deterministic execution leave it off, so the
	// single-threaded fast path pays only an untaken branch. TouchFast
	// and AccessRef are exempt by contract (see SetShared): they stay
	// small enough to inline into the per-instruction hot path.
	shared bool
	mu     sync.Mutex
}

// SetShared(true) latches locking of the multi-consumer entry points
// on. The machine sets it on its shared L2 before spawning the first
// concurrent hart, which is also the happens-before edge that makes
// the plain flag publication safe; it is a one-way latch —
// SetShared(false) is a no-op — because OS goroutines may keep
// touching the cache after any particular parallel run ends.
//
// TouchFast and AccessRef remain lock-free: they are the per-core L1
// fast path, single-consumer by construction (a LineRef belongs to one
// core), and the machine never uses them on the shared L2. Keeping
// them branch-only preserves their inlining into the interpreter's
// per-instruction sequence.
func (c *Cache) SetShared(on bool) {
	if on && !c.shared {
		c.shared = true
	}
}

// LineRef is a consumer-held handle to the line of the last access, the
// cache-model analogue of the machine's last-translation caches: while
// the cache's resident-line set is unchanged, a repeat access to the
// same line can skip the set scan. TouchFast performs bookkeeping
// identical to a scanning hit (stamp, LRU, hit statistic), so the
// observable cache state — contents, replacement order, statistics,
// timing — is bit-identical to calling Access.
type LineRef struct {
	gen  uint64
	line *line
}

// TouchFast re-performs a hit through the ref if it is still valid for
// pa; the hit latency is the cache's Config().HitCycles, which hot
// callers keep in a local. false means the caller must fall back to
// Access/AccessRef.
func (c *Cache) TouchFast(pa uint64, ref *LineRef) bool {
	// A live gen implies ref was set by AccessRef (fillGen never
	// returns to an old value), so line is non-nil and still resident,
	// and its tag is authoritative for the line address.
	if ref.gen != c.fillGen {
		return false
	}
	l := ref.line
	if l.tag != pa>>c.lineBits {
		return false
	}
	c.stamp++
	l.lru = c.stamp
	c.Hits++
	return true
}

// TouchFastN is n consecutive TouchFast hits on the same line in one
// call, for callers that batch a run of same-line accesses with nothing
// else touching the cache in between (the block engine's per-segment
// instruction fetches). It is bit-exact to calling TouchFast n times:
// the stamp advances by n, the line's LRU lands on the last of those
// stamps, and n hits are recorded. false means the caller must fall
// back to per-access TouchFast/AccessRef, which re-establishes the ref.
func (c *Cache) TouchFastN(pa uint64, ref *LineRef, n uint64) bool {
	if ref.gen != c.fillGen {
		return false
	}
	l := ref.line
	if l.tag != pa>>c.lineBits {
		return false
	}
	c.stamp += n
	l.lru = c.stamp
	c.Hits += n
	return true
}

// AccessRef is Access, additionally pointing ref at the touched line so
// the next same-line access can go through TouchFast.
func (c *Cache) AccessRef(pa uint64, ref *LineRef) (hit bool, cycles uint64) {
	hit, cycles, l := c.access(pa)
	*ref = LineRef{line: l, gen: c.fillGen}
	return hit, cycles
}

// New builds a cache. It panics on invalid configuration, which is a
// programming error in platform setup rather than a runtime condition.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := make([][]line, cfg.Sets)
	lines := make([]line, cfg.Sets*cfg.Ways)
	for i := range sets {
		sets[i], lines = lines[:cfg.Ways], lines[cfg.Ways:]
	}
	// fillGen starts above the zero value so a zero LineRef never
	// matches and TouchFast needs no nil check on its line pointer.
	return &Cache{cfg: cfg, sets: sets, lineBits: cfg.LineBits, setMask: uint64(cfg.Sets - 1), fillGen: 1}
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// setIndex computes the set for a physical address, honouring
// partitioning.
func (c *Cache) setIndex(pa uint64) int {
	lineAddr := pa >> c.lineBits
	if c.cfg.PartitionOf == nil {
		// Sets is a power of two, so the mask is the modulo.
		return int(lineAddr & c.setMask)
	}
	per := c.cfg.Sets / c.cfg.Partitions
	part := c.cfg.PartitionOf(pa) % c.cfg.Partitions
	if part < 0 {
		part = 0
	}
	return part*per + int(lineAddr%uint64(per))
}

// Access performs a cached access to pa, returning whether it hit and
// the cycle cost. A miss fills the line, evicting LRU if needed.
func (c *Cache) Access(pa uint64) (hit bool, cycles uint64) {
	if c.shared {
		c.mu.Lock()
		hit, cycles, _ = c.access(pa)
		c.mu.Unlock()
		return hit, cycles
	}
	hit, cycles, _ = c.access(pa)
	return hit, cycles
}

// access is the shared body of Access and AccessRef; it also returns
// the line that was hit or filled.
func (c *Cache) access(pa uint64) (hit bool, cycles uint64, l *line) {
	c.stamp++
	set := c.sets[c.setIndex(pa)]
	tag := pa >> c.lineBits
	for i := range set {
		if set[i].live(c.epoch) && set[i].tag == tag {
			set[i].lru = c.stamp
			c.Hits++
			return true, c.cfg.HitCycles, &set[i]
		}
	}
	c.Misses++
	c.fillGen++
	// Fill: choose a non-resident way, else LRU.
	victim := 0
	for i := range set {
		if !set[i].live(c.epoch) {
			victim = i
			goto fill
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	c.Evictions++
fill:
	set[victim] = line{tag: tag, valid: true, epoch: c.epoch, lru: c.stamp}
	return false, c.cfg.MissCycles, &set[victim]
}

// Probe reports whether pa is cached without updating any state; the
// white-box equivalent of a timing probe, used by tests.
func (c *Cache) Probe(pa uint64) bool {
	if c.shared {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	set := c.sets[c.setIndex(pa)]
	tag := pa >> c.cfg.LineBits
	for i := range set {
		if set[i].live(c.epoch) && set[i].tag == tag {
			return true
		}
	}
	return false
}

// FlushAll invalidates the entire cache (core cleaning). Advancing the
// flush epoch makes every resident line non-live in O(1); this runs on
// every protection-domain switch, so it must not sweep the ways.
func (c *Cache) FlushAll() {
	if c.shared {
		c.mu.Lock()
		c.epoch++
		c.fillGen++
		c.mu.Unlock()
		return
	}
	c.epoch++
	c.fillGen++
}

// FlushIf invalidates lines whose physical line address matches pred,
// returning the count. The SM uses this to clean a DRAM region's cache
// footprint on re-allocation when partitioning is not available.
func (c *Cache) FlushIf(pred func(lineAddr uint64) bool) int {
	if c.shared {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	n := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].live(c.epoch) && pred(set[i].tag) {
				set[i].valid = false
				n++
			}
		}
	}
	c.fillGen++
	return n
}

// Live returns the number of valid lines.
func (c *Cache) Live() int {
	if c.shared {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	n := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].live(c.epoch) {
				n++
			}
		}
	}
	return n
}

// SetOf exposes the set index mapping for tests and attack tooling.
func (c *Cache) SetOf(pa uint64) int { return c.setIndex(pa) }
