package fleet

import (
	"fmt"

	"sanctorum/internal/enclaves"
	"sanctorum/internal/hw/machine"
	ios "sanctorum/internal/os"
	"sanctorum/internal/sm/api"
)

// nicCapacity sizes each shard's NIC rings (in ring messages); a whole
// handshake message must fit, and the largest — marshalled evidence
// plus key-confirmation MAC — is well under a quarter of this.
const nicCapacity = 64

// shard is one machine's serving stack plus its fleet wiring: the
// attestation enclave pair (signing enclave ES and attested client
// E1), the clone pool and key-affinity gateway serving requests, and
// an OS→OS NIC ring pair carrying cross-machine bytes.
type shard struct {
	id   int
	host Host

	pool *ios.Pool
	gw   *ios.Gateway

	es, e1     *ios.BuiltEnclave
	shES, shE1 uint64 // shared-page PAs of ES and E1

	txRing, rxRing uint64 // NIC: outbound and inbound OS→OS rings
	stagePA        uint64 // staging page for NIC byte transport

	clientMeas  [32]byte // expected measurement of E1 (same program fleet-wide)
	monitorMeas [32]byte
}

func buildShard(id int, h Host, cfg *Config) (*shard, error) {
	s := &shard{id: id, host: h, monitorMeas: h.Monitor.Identity().Measurement}
	o := h.OS

	lES := enclaves.DefaultLayout()
	lE1 := enclaves.DefaultLayout()
	lE1.SharedVA = 0x50002000
	regions := o.FreeRegions()
	need := 3 + cfg.WorkersPerShard + cfg.SpareWorkers
	if len(regions) < need {
		return nil, fmt.Errorf("need %d free regions, have %d", need, len(regions))
	}
	var err error
	if s.shES, err = o.MapUserPage(lES.SharedVA); err != nil {
		return nil, err
	}
	if s.shE1, err = o.MapUserPage(lE1.SharedVA); err != nil {
		return nil, err
	}
	esSpec, err := enclaves.Spec(lES, enclaves.SigningEnclave(lES), nil, regions[:1],
		[]ios.SharedMapping{{VA: lES.SharedVA, PA: s.shES}})
	if err != nil {
		return nil, err
	}
	e1Spec, err := enclaves.Spec(lE1, enclaves.AttestedClient(lE1),
		enclaves.ClientDataInit(), regions[1:2],
		[]ios.SharedMapping{{VA: lE1.SharedVA, PA: s.shE1}})
	if err != nil {
		return nil, err
	}
	s.clientMeas = ios.ExpectedMeasurement(e1Spec)
	if s.es, err = o.BuildEnclave(esSpec); err != nil {
		return nil, fmt.Errorf("signing enclave: %w", err)
	}
	if s.e1, err = o.BuildEnclave(e1Spec); err != nil {
		return nil, fmt.Errorf("attested client: %w", err)
	}

	// The serving pool and gateway, exactly the PR 4–5 stack, with the
	// key-affinity router so a session stays on one worker.
	lW := enclaves.DefaultLayout()
	var prog = enclaves.RingEchoServer(lW)
	if cfg.Workload == "kv" {
		prog = enclaves.RingKVServer(lW)
	}
	wSpec, err := enclaves.Spec(lW, prog, nil, regions[2:3], nil)
	if err != nil {
		return nil, err
	}
	if s.pool, err = ios.NewPool(o, wSpec, regions[3:need], 1); err != nil {
		return nil, err
	}
	if s.gw, err = ios.NewGateway(o, h.Monitor, s.pool, ios.GatewayConfig{
		Workers:      cfg.WorkersPerShard,
		RingCapacity: cfg.RingCapacity,
		Batch:        cfg.Batch,
		Sched:        cfg.Sched,
		Router:       ios.KeyAffinity{},
	}); err != nil {
		return nil, err
	}

	// NIC rings: OS→OS loopback rings on this machine. Outbound bytes
	// leave through this machine's monitor (txRing); inbound bytes
	// arrive through it (rxRing); the fleet pumps raw frames between
	// machines — the untrusted network.
	if s.txRing, err = o.AllocMetaPage(); err != nil {
		return nil, err
	}
	if err := o.SM.RingCreate(s.txRing, api.DomainOS, api.DomainOS, nicCapacity); err != nil {
		return nil, fmt.Errorf("NIC tx ring: %w", err)
	}
	if s.rxRing, err = o.AllocMetaPage(); err != nil {
		return nil, err
	}
	if err := o.SM.RingCreate(s.rxRing, api.DomainOS, api.DomainOS, nicCapacity); err != nil {
		return nil, fmt.Errorf("NIC rx ring: %w", err)
	}
	if s.stagePA, err = o.AllocPagePA(); err != nil {
		return nil, err
	}
	return s, nil
}

// runGuest enters one of the shard's attestation enclaves on core 0
// and runs it to its next voluntary exit.
func (s *shard) runGuest(b *ios.BuiltEnclave) error {
	if st := s.host.OS.EnterEnclave(0, b.EID, b.TIDs[0]); st != api.OK {
		return fmt.Errorf("fleet: shard %d enter: %w", s.id, st)
	}
	res, err := s.host.Machine.Run(0, 2_000_000)
	if err != nil {
		return fmt.Errorf("fleet: shard %d: %w", s.id, err)
	}
	if res.Reason != machine.StopReturnToOS {
		return fmt.Errorf("fleet: shard %d guest stopped %v", s.id, res.Reason)
	}
	return nil
}

func (s *shard) writeWord(pa uint64, off, v uint64) error {
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * uint(i)))
	}
	return s.host.OS.WriteOwned(pa+off, b[:])
}

func (s *shard) close() error {
	var firstErr error
	keep := func(err error) {
		if firstErr == nil && err != nil {
			firstErr = err
		}
	}
	if s.gw != nil {
		keep(s.gw.Close())
	}
	if s.pool != nil {
		keep(s.pool.Close())
	}
	o := s.host.OS
	for _, ring := range []uint64{s.txRing, s.rxRing} {
		if ring == 0 {
			continue
		}
		if err := o.SM.RingDestroy(ring); err == nil {
			o.ReleaseMetaPage(ring)
		} else {
			keep(fmt.Errorf("fleet: shard %d NIC ring: %w", s.id, err))
		}
	}
	return firstErr
}
