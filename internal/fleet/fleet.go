// Package fleet is the multi-machine tier above Sanctorum's
// deliberately per-machine monitor (DESIGN.md §12): N independent
// machine × monitor × pool × gateway shards behind a routing tier.
// Nothing here is trusted — the fleet is datacenter infrastructure in
// the same sense the OS model is: sessions are consistent-hashed onto
// shards (spilling to the least-loaded shard under skew, rebalancing
// by warming a snapshot-clone worker on the target before traffic
// cuts over), and enclaves on different machines get channels only by
// running the paper's Fig 7 mutual remote-attestation handshake over
// ring IPC, yielding a measurement-bound pipe whose every message is
// authenticated together with the channel binding.
//
// The package operates on pre-booted hosts so the facade can assemble
// them (sanctorum.NewFleet); it never imports the facade itself.
package fleet

import (
	"crypto/ed25519"
	"fmt"
	"sync"

	"sanctorum/internal/crypto/kdf"
	"sanctorum/internal/enclaves"
	"sanctorum/internal/hw/machine"
	ios "sanctorum/internal/os"
	"sanctorum/internal/sm"
	"sanctorum/internal/telemetry"
)

// Host is one booted machine handed to the fleet: hardware, monitor,
// untrusted OS, and the manufacturer root key the operator pins for
// this machine's PKI. Hosts must have been booted with the signing-
// enclave measurement from SigningMeasurement(), or attestation will
// refuse to sign.
type Host struct {
	Machine     *machine.Machine
	Monitor     *sm.Monitor
	OS          *ios.OS
	TrustedRoot ed25519.PublicKey
}

// Config configures New. Zero fields take defaults.
type Config struct {
	// WorkersPerShard is each shard's initial gateway size (default 2).
	WorkersPerShard int
	// SpareWorkers reserves clone regions per shard for rebalance
	// warm-ups (default 1).
	SpareWorkers int
	// RingCapacity and Batch pass through to each shard's gateway.
	RingCapacity int
	Batch        int
	// Sched configures each shard's per-wave OS scheduler. The default
	// (deterministic mode) makes the whole fleet bit-reproducible.
	Sched ios.SchedConfig
	// Parallel serves shards on one goroutine each — genuine
	// multi-machine concurrency (each shard is its own Machine), at
	// the cost of reproducible interleaving.
	Parallel bool
	// Replicas is the number of virtual nodes per shard on the
	// consistent-hash ring (default 16).
	Replicas int
	// SpillFactor: a new session spills off its consistent-hash home
	// when the home holds more than SpillFactor times the least-loaded
	// shard's sessions (default 2; a small absolute slack keeps tiny
	// fleets from spilling immediately).
	SpillFactor float64
	// Workload selects the shard worker program: "echo" (default) or
	// "kv".
	Workload string
	// Seed feeds the fleet-side verifier entropy (nonces, key
	// agreement). Fixed by default, so deterministic-mode handshakes
	// replay bit-identically.
	Seed []byte
	// Telemetry is the registry the routing tier instruments against —
	// normally the same registry every shard's monitor and gateway
	// share, so per-call and per-ring instruments aggregate fleet-wide.
	// nil disables fleet-level telemetry.
	Telemetry *telemetry.Registry
}

func (cfg *Config) fill() {
	if cfg.WorkersPerShard <= 0 {
		cfg.WorkersPerShard = 2
	}
	if cfg.SpareWorkers < 0 {
		cfg.SpareWorkers = 0
	} else if cfg.SpareWorkers == 0 {
		cfg.SpareWorkers = 1
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 16
	}
	if cfg.SpillFactor <= 0 {
		cfg.SpillFactor = 2
	}
	if cfg.Workload == "" {
		cfg.Workload = "echo"
	}
	if cfg.Seed == nil {
		cfg.Seed = []byte("sanctorum-fleet")
	}
}

// Request is one fleet request: a session key (routed consistently to
// a shard, then to a worker within it) and a payload of at most one
// ring message.
type Request struct {
	Session uint64
	Payload []byte
}

// Fleet is the assembled routing tier.
type Fleet struct {
	cfg    Config
	shards []*shard

	points   []hashPoint    // consistent-hash ring, sorted
	sessions map[uint64]int // session key → shard
	load     []int          // live sessions per shard
	draining []bool

	rng *drbg

	mu sync.Mutex // guards the counters below in parallel mode

	// Served counts requests completed; Spills counts sessions placed
	// off their consistent-hash home; Rebalanced counts sessions moved
	// by Drain.
	Served     int
	Spills     int
	Rebalanced int

	// tel caches the routing tier's instrument handles (nil without a
	// registry); traceNext is a trace armed by TraceNextRequest and
	// consumed by the next Process call.
	tel       *fleetTelemetry
	traceNext *telemetry.Trace
}

// fleetTelemetry is the routing tier's cached instrument set.
type fleetTelemetry struct {
	home      *telemetry.Counter   // sessions placed on their hash home
	spills    *telemetry.Counter   // sessions spilled off an overloaded home
	drains    *telemetry.Counter   // Drain operations completed
	handshake *telemetry.Histogram // Connect handshake latency, cycles
	batch     *telemetry.Histogram // requests per Process call
}

// SigningMeasurement computes the signing-enclave measurement every
// fleet host must be booted with (the monitor hard-codes it at boot,
// §VI-C). It is placement-free: the same for every machine.
func SigningMeasurement() ([32]byte, error) {
	l := enclaves.DefaultLayout()
	spec, err := enclaves.Spec(l, enclaves.SigningEnclave(l), nil, nil,
		[]ios.SharedMapping{{VA: l.SharedVA}})
	if err != nil {
		return [32]byte{}, err
	}
	return ios.ExpectedMeasurement(spec), nil
}

// New assembles a fleet over the given hosts: per host, an attestation
// enclave pair (signing enclave + attested client), a snapshot/clone
// worker pool, a key-affinity gateway, and a NIC ring pair for
// cross-machine byte transport.
func New(hosts []Host, cfg Config) (*Fleet, error) {
	if len(hosts) == 0 {
		return nil, fmt.Errorf("fleet: no hosts")
	}
	cfg.fill()
	f := &Fleet{
		cfg:      cfg,
		sessions: make(map[uint64]int),
		load:     make([]int, len(hosts)),
		draining: make([]bool, len(hosts)),
		rng:      newDRBG(cfg.Seed),
	}
	for i, h := range hosts {
		s, err := buildShard(i, h, &cfg)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("fleet: shard %d: %w", i, err)
		}
		f.shards = append(f.shards, s)
		f.addPoints(i)
	}
	if reg := cfg.Telemetry; reg != nil {
		f.tel = &fleetTelemetry{
			home:      reg.Counter("fleet.route.home"),
			spills:    reg.Counter("fleet.route.spill"),
			drains:    reg.Counter("fleet.drains"),
			handshake: reg.Histogram("fleet.handshake.cycles"),
			batch:     reg.Histogram("fleet.process.batch"),
		}
		// Converge the existing counter surfaces onto the registry as
		// lazy reads — the fields stay the source of truth (and the
		// public accessors keep their exact semantics); Snapshot simply
		// reads them. Snapshots are taken while the fleet is quiesced.
		reg.RegisterFunc("fleet.served", func() uint64 {
			f.mu.Lock()
			defer f.mu.Unlock()
			return uint64(f.Served)
		})
		reg.RegisterFunc("fleet.spills", func() uint64 { return uint64(f.Spills) })
		reg.RegisterFunc("fleet.rebalanced", func() uint64 { return uint64(f.Rebalanced) })
		for i := range f.shards {
			i := i
			reg.RegisterFunc(fmt.Sprintf("fleet.shard%d.sessions", i), func() uint64 {
				return uint64(f.load[i])
			})
			reg.RegisterFunc(fmt.Sprintf("fleet.shard%d.workers", i), func() uint64 {
				return uint64(f.shards[i].gw.NumWorkers())
			})
			reg.RegisterFunc(fmt.Sprintf("fleet.shard%d.served", i), func() uint64 {
				return uint64(f.shards[i].gw.Served)
			})
		}
	}
	return f, nil
}

// Clock sums every shard machine's published cycle counters: the
// fleet-level telemetry time base. Monotone (each machine's published
// counters never move backwards) and purely simulation-derived, so
// trace stamps replay bit-identically in deterministic mode.
func (f *Fleet) Clock() uint64 {
	var sum uint64
	for _, s := range f.shards {
		sum += s.host.Machine.CycleNow()
	}
	return sum
}

// TraceNextRequest arms request tracing: the first request of the next
// Process call is followed router → shard → gateway → ring → worker →
// response, emitting cycle-stamped spans into the returned trace.
func (f *Fleet) TraceNextRequest() *telemetry.Trace {
	t := telemetry.NewTrace(f.Clock)
	f.traceNext = t
	return t
}

// NumShards reports the shard count (including draining shards).
func (f *Fleet) NumShards() int { return len(f.shards) }

// Telemetry returns the registry the fleet was assembled with, nil
// when telemetry is disabled.
func (f *Fleet) Telemetry() *telemetry.Registry { return f.cfg.Telemetry }

// Host returns shard i's booted machine stack, for observers (cycle
// counters, monitors) — not for mutating fleet-owned state.
func (f *Fleet) Host(i int) Host { return f.shards[i].host }

// Process serves a request batch end to end: each request routes to
// its session's shard, shard batches serve through the per-shard
// gateways (sequentially in shard order when deterministic, one
// goroutine per shard in parallel mode), and responses return in
// request order.
func (f *Fleet) Process(reqs []Request) ([][]byte, error) {
	type shardBatch struct {
		keys     []uint64
		payloads [][]byte
		idx      []int
	}
	batches := make([]shardBatch, len(f.shards))
	// A trace armed by TraceNextRequest follows the batch's first
	// request; the root span covers the whole Process call.
	tr := f.traceNext
	f.traceNext = nil
	root, tracedShard := -1, -1
	if tr != nil && len(reqs) > 0 {
		root = tr.Begin(-1, "router", "request")
	}
	if t := f.tel; t != nil {
		t.batch.Observe(uint64(len(reqs)))
	}
	// Routing mutates the session table; it runs up front on the
	// caller's goroutine, in request order, deterministically.
	for i, r := range reqs {
		s, err := f.route(r.Session)
		if err != nil {
			return nil, err
		}
		if tr != nil && i == 0 {
			tr.End(tr.Begin(root, "router", fmt.Sprintf("route shard=%d", s)))
			tracedShard = s
		}
		b := &batches[s]
		b.keys = append(b.keys, r.Session)
		b.payloads = append(b.payloads, r.Payload)
		b.idx = append(b.idx, i)
	}
	out := make([][]byte, len(reqs))
	serve := func(s int) error {
		b := &batches[s]
		if len(b.idx) == 0 {
			return nil
		}
		span := -1
		if tr != nil && s == tracedShard {
			// The traced request routed first, so it is index 0 of its
			// shard's batch; hand the trace down to the gateway.
			span = tr.Begin(root, "shard", fmt.Sprintf("serve shard=%d", s))
			f.shards[s].gw.TraceRequest(tr, span, 0)
		}
		resps, err := f.shards[s].gw.ProcessKeyed(b.keys, b.payloads)
		if span >= 0 {
			tr.End(span)
		}
		if err != nil {
			return fmt.Errorf("fleet: shard %d: %w", s, err)
		}
		for j, r := range resps {
			out[b.idx[j]] = r
		}
		return nil
	}
	if f.cfg.Parallel {
		errs := make([]error, len(f.shards))
		var wg sync.WaitGroup
		for s := range f.shards {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				errs[s] = serve(s)
			}(s)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	} else {
		for s := range f.shards {
			if err := serve(s); err != nil {
				return nil, err
			}
		}
	}
	if tr != nil {
		tr.End(root)
	}
	f.mu.Lock()
	f.Served += len(reqs)
	f.mu.Unlock()
	return out, nil
}

// ShardStats is one shard's view in Stats.
type ShardStats struct {
	Sessions int
	Workers  int
	Served   int
	Draining bool
}

// Stats snapshots the routing tier.
func (f *Fleet) Stats() []ShardStats {
	out := make([]ShardStats, len(f.shards))
	for i, s := range f.shards {
		out[i] = ShardStats{
			Sessions: f.load[i],
			Workers:  s.gw.NumWorkers(),
			Served:   s.gw.Served,
			Draining: f.draining[i],
		}
	}
	return out
}

// Close tears every shard down (gateway, pool, NIC rings),
// best-effort; the first error is the one reported.
func (f *Fleet) Close() error {
	var firstErr error
	for _, s := range f.shards {
		if err := s.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// drbg is a deterministic byte stream over the KDF — the fleet-side
// verifier's entropy source. Determinism here is what lets an entire
// fleet run, handshakes included, replay bit-identically; a production
// deployment would substitute the platform RNG.
type drbg struct {
	state []byte
	buf   []byte
}

func newDRBG(seed []byte) *drbg {
	return &drbg{state: kdf.Derive(seed, "fleet-drbg-init", nil, 32)}
}

func (d *drbg) Read(p []byte) (int, error) {
	for len(d.buf) < len(p) {
		d.state = kdf.Derive(d.state, "fleet-drbg-next", nil, 32)
		d.buf = append(d.buf, kdf.Derive(d.state, "fleet-drbg-out", nil, 32)...)
	}
	copy(p, d.buf)
	d.buf = d.buf[len(p):]
	return len(p), nil
}
