package fleet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"sanctorum/internal/attest"
	"sanctorum/internal/enclaves"
	"sanctorum/internal/sm/api"
)

// Cross-machine attested channels (DESIGN.md §12): two shards bind a
// pipe between their attested-client enclaves by running the paper's
// Fig 7 remote-attestation handshake twice, once per direction, over
// the NIC ring transport. Each direction gives one side's runtime a
// session key it shares only with the *peer machine's enclave* — the
// attestation proves which enclave, on which monitor, under which
// manufacturer root. The channel binding hashes both transcripts, and
// every data message authenticates together with it, so nothing sealed
// for one channel opens on another.

// Hello opens one handshake direction: the verifier shard's nonce and
// ephemeral key-agreement share, destined for the prover shard's
// attested client. The private half of the agreement stays on the
// verifier side (unexported), exactly as in Fig 7.
type Hello struct {
	Verifier, Prover int
	Nonce            [attest.NonceSize]byte
	Share            []byte

	ka *attest.KeyAgreement
}

// Offer is the prover's response: evidence signed by its monitor's
// attestation key plus the enclave's key-confirmation MAC over
// enclaves.SessionPlaintext (proof the enclave derived the same
// session key, not just that the share was signed).
type Offer struct {
	Prover   int
	Evidence *attest.Evidence
	MAC      [32]byte
}

// NewHello draws a fresh nonce and key agreement for one handshake
// direction. Exported (rather than folded into Connect) so the
// adversary battery can replay stale offers against fresh hellos.
func (f *Fleet) NewHello(verifier, prover int) (*Hello, error) {
	if verifier < 0 || verifier >= len(f.shards) || prover < 0 || prover >= len(f.shards) {
		return nil, fmt.Errorf("fleet: hello between shards %d and %d", verifier, prover)
	}
	ka, err := attest.NewKeyAgreement(f.rng)
	if err != nil {
		return nil, err
	}
	h := &Hello{Verifier: verifier, Prover: prover, Share: ka.Share(), ka: ka}
	f.rng.Read(h.Nonce[:])
	return h, nil
}

// Prove drives the prover shard's guest flow — ES arms its mailbox,
// E1 mails (nonce ‖ share) to ES, ES fetches the monitor signature,
// E1 assembles the response and MACs the session plaintext — and
// returns the offer. Fig 7 steps 3–7, one machine, unchanged from the
// single-machine flow.
func (f *Fleet) Prove(h *Hello) (*Offer, error) {
	s := f.shards[h.Prover]
	o := s.host.OS
	if err := s.writeWord(s.shES, enclaves.ShInput, 0); err != nil {
		return nil, err
	}
	s.writeWord(s.shES, enclaves.ShPeerEID, s.e1.EID)
	if err := s.runGuest(s.es); err != nil {
		return nil, err
	}
	s.writeWord(s.shE1, enclaves.ShInput, 0)
	s.writeWord(s.shE1, enclaves.ShPeerEID, s.es.EID)
	if err := o.WriteOwned(s.shE1+enclaves.ShNonce, h.Nonce[:]); err != nil {
		return nil, err
	}
	if err := s.runGuest(s.e1); err != nil {
		return nil, err
	}
	s.writeWord(s.shES, enclaves.ShInput, 1)
	if err := s.runGuest(s.es); err != nil {
		return nil, err
	}
	s.writeWord(s.shE1, enclaves.ShInput, 1)
	if err := o.WriteOwned(s.shE1+enclaves.ShPeerKA, h.Share); err != nil {
		return nil, err
	}
	if err := s.runGuest(s.e1); err != nil {
		return nil, err
	}
	share, err := o.ReadOwned(s.shE1+enclaves.ShShare, 32)
	if err != nil {
		return nil, err
	}
	sig, _ := o.ReadOwned(s.shE1+enclaves.ShSig, 64)
	macBytes, _ := o.ReadOwned(s.shE1+enclaves.ShMACOut, 32)
	chain, err := o.GetField(api.FieldCertChain)
	if err != nil {
		return nil, err
	}
	off := &Offer{
		Prover: h.Prover,
		Evidence: &attest.Evidence{
			EnclaveMeasurement: s.clientMeas,
			Nonce:              h.Nonce,
			KAShare:            share,
			Signature:          sig,
			CertChain:          chain,
		},
	}
	copy(off.MAC[:], macBytes)
	return off, nil
}

// VerifyOffer is the verifier side: the evidence must verify under the
// *claimed prover's* pinned manufacturer root, name the fleet's
// attested-client measurement, carry the hello's nonce, and be
// certified for that machine's monitor; then the key-confirmation MAC
// must open under the derived session key. Returns the direction's
// session key. Every cross-machine channel exists only downstream of
// this succeeding in both directions.
func (f *Fleet) VerifyOffer(h *Hello, off *Offer) ([]byte, error) {
	if off.Prover != h.Prover {
		return nil, fmt.Errorf("fleet: offer from shard %d, hello for shard %d", off.Prover, h.Prover)
	}
	prover := f.shards[h.Prover]
	pol := attest.Policy{
		TrustedRoot:     prover.host.TrustedRoot,
		ExpectedEnclave: prover.clientMeas,
		AcceptMonitor: func(m []byte) bool {
			return bytes.Equal(m, prover.monitorMeas[:])
		},
	}
	if err := attest.Verify(off.Evidence, h.Nonce, pol); err != nil {
		return nil, err
	}
	key, err := h.ka.SessionKey(off.Evidence.KAShare)
	if err != nil {
		return nil, err
	}
	if !attest.Open(key, enclaves.SessionPlaintext, off.MAC) {
		return nil, fmt.Errorf("fleet: key confirmation MAC invalid")
	}
	return key, nil
}

// Channel is an established measurement-bound pipe between the
// attested clients of shards A and B.
type Channel struct {
	f       *Fleet
	A, B    int
	Binding [32]byte

	keyAB, keyBA []byte // A→B and B→A direction keys
}

// Connect establishes a channel between shards a and b by running the
// mutual handshake over the NIC rings: hellos and offers travel as
// ring fragments machine to machine, each side verifies the other's
// evidence, and the channel binding commits to both transcripts.
func (f *Fleet) Connect(a, b int) (*Channel, error) {
	if a == b {
		return nil, fmt.Errorf("fleet: channel endpoints must differ")
	}
	if t := f.tel; t != nil {
		// The handshake actually runs both machines' enclaves, so its
		// latency in modeled cycles is a real cross-machine figure.
		begin := f.Clock()
		defer func() { t.handshake.Observe(f.Clock() - begin) }()
	}
	dir := func(verifier, prover int) ([]byte, *attest.Evidence, error) {
		h, err := f.NewHello(verifier, prover)
		if err != nil {
			return nil, nil, err
		}
		// Hello travels verifier → prover; the prover reconstructs it
		// from the wire (the enclave never sees more than nonce+share).
		if err := f.send(verifier, prover, marshalHello(h)); err != nil {
			return nil, nil, err
		}
		hw, err := f.recv(prover)
		if err != nil {
			return nil, nil, err
		}
		ph, err := unmarshalHello(hw, verifier, prover)
		if err != nil {
			return nil, nil, err
		}
		off, err := f.Prove(ph)
		if err != nil {
			return nil, nil, err
		}
		if err := f.send(prover, verifier, marshalOffer(off)); err != nil {
			return nil, nil, err
		}
		ow, err := f.recv(verifier)
		if err != nil {
			return nil, nil, err
		}
		roff, err := unmarshalOffer(ow)
		if err != nil {
			return nil, nil, err
		}
		key, err := f.VerifyOffer(h, roff)
		if err != nil {
			return nil, nil, fmt.Errorf("fleet: shard %d refused shard %d: %w", verifier, prover, err)
		}
		return key, roff.Evidence, nil
	}
	keyAB, evA, err := dir(b, a)
	if err != nil {
		return nil, err
	}
	keyBA, evB, err := dir(a, b)
	if err != nil {
		return nil, err
	}
	return &Channel{
		f: f, A: a, B: b,
		Binding: attest.ChannelBinding(evA, evB),
		keyAB:   keyAB, keyBA: keyBA,
	}, nil
}

// Seal authenticates msg for the channel in the given direction: the
// MAC covers (binding ‖ msg), so the wire is useless on any other
// channel. Returns the wire form (length ‖ msg ‖ tag).
func (c *Channel) Seal(from int, msg []byte) ([]byte, error) {
	key, _, err := c.direction(from)
	if err != nil {
		return nil, err
	}
	tag := attest.Seal(key, append(c.Binding[:], msg...))
	wire := make([]byte, 4, 4+len(msg)+32)
	binary.LittleEndian.PutUint32(wire, uint32(len(msg)))
	wire = append(wire, msg...)
	return append(wire, tag[:]...), nil
}

// Deliver authenticates a wire blob arriving at endpoint `to` and
// returns the message. A blob sealed for a different channel — or for
// the other direction, or tampered in flight — is refused.
func (c *Channel) Deliver(to int, wire []byte) ([]byte, error) {
	var key []byte
	switch to {
	case c.B:
		key = c.keyAB
	case c.A:
		key = c.keyBA
	default:
		return nil, fmt.Errorf("fleet: shard %d is not a channel endpoint", to)
	}
	if len(wire) < 36 {
		return nil, fmt.Errorf("fleet: channel wire of %d bytes", len(wire))
	}
	n := int(binary.LittleEndian.Uint32(wire))
	if n != len(wire)-36 {
		return nil, fmt.Errorf("fleet: channel wire framing mismatch")
	}
	msg := wire[4 : 4+n]
	var tag [32]byte
	copy(tag[:], wire[4+n:])
	if !attest.Open(key, append(c.Binding[:], msg...), tag) {
		return nil, fmt.Errorf("fleet: channel authenticator invalid")
	}
	return append([]byte(nil), msg...), nil
}

// Transfer seals msg, carries it across the NIC rings, and delivers it
// at the peer, returning the authenticated message as received.
func (c *Channel) Transfer(from int, msg []byte) ([]byte, error) {
	wire, err := c.Seal(from, msg)
	if err != nil {
		return nil, err
	}
	_, to, err := c.direction(from)
	if err != nil {
		return nil, err
	}
	if err := c.f.send(from, to, wire); err != nil {
		return nil, err
	}
	got, err := c.f.recv(to)
	if err != nil {
		return nil, err
	}
	return c.Deliver(to, got)
}

func (c *Channel) direction(from int) (key []byte, to int, err error) {
	switch from {
	case c.A:
		return c.keyAB, c.B, nil
	case c.B:
		return c.keyBA, c.A, nil
	}
	return nil, 0, fmt.Errorf("fleet: shard %d is not a channel endpoint", from)
}

// --- wire forms and the NIC transport ---

func marshalHello(h *Hello) []byte {
	out := make([]byte, 0, attest.NonceSize+len(h.Share))
	out = append(out, h.Nonce[:]...)
	return append(out, h.Share...)
}

func unmarshalHello(blob []byte, verifier, prover int) (*Hello, error) {
	if len(blob) != attest.NonceSize+32 {
		return nil, fmt.Errorf("fleet: hello wire of %d bytes", len(blob))
	}
	h := &Hello{Verifier: verifier, Prover: prover}
	copy(h.Nonce[:], blob)
	h.Share = append([]byte(nil), blob[attest.NonceSize:]...)
	return h, nil
}

func marshalOffer(o *Offer) []byte {
	ev := attest.MarshalEvidence(o.Evidence)
	out := make([]byte, 12, 12+len(ev)+32)
	binary.LittleEndian.PutUint64(out, uint64(o.Prover))
	binary.LittleEndian.PutUint32(out[8:], uint32(len(ev)))
	out = append(out, ev...)
	return append(out, o.MAC[:]...)
}

func unmarshalOffer(blob []byte) (*Offer, error) {
	if len(blob) < 44 {
		return nil, fmt.Errorf("fleet: offer wire of %d bytes", len(blob))
	}
	o := &Offer{Prover: int(binary.LittleEndian.Uint64(blob))}
	n := int(binary.LittleEndian.Uint32(blob[8:]))
	if len(blob) != 12+n+32 {
		return nil, fmt.Errorf("fleet: offer wire framing mismatch")
	}
	ev, err := attest.UnmarshalEvidence(blob[12 : 12+n])
	if err != nil {
		return nil, err
	}
	o.Evidence = ev
	copy(o.MAC[:], blob[12+n:])
	return o, nil
}

// send moves one blob from one machine to another: out through the
// sender's monitor (tx ring), across the untrusted wire (the pump),
// in through the receiver's monitor (rx ring).
func (f *Fleet) send(from, to int, blob []byte) error {
	if from == to {
		return fmt.Errorf("fleet: send to self")
	}
	a, b := f.shards[from], f.shards[to]
	if err := a.host.OS.SM.SendBytes(a.txRing, a.stagePA, a.host.OS.WriteOwned, blob); err != nil {
		return fmt.Errorf("fleet: shard %d tx: %w", from, err)
	}
	return f.pump(a, b)
}

// recv reassembles one blob at a machine's rx ring.
func (f *Fleet) recv(at int) ([]byte, error) {
	s := f.shards[at]
	blob, err := s.host.OS.SM.RecvBytes(s.rxRing, s.stagePA, s.host.OS.ReadOwned)
	if err != nil {
		return nil, fmt.Errorf("fleet: shard %d rx: %w", at, err)
	}
	return blob, nil
}

// pump is the wire: it drains raw frames from one machine's tx ring
// and injects them into the other's rx ring. It sits exactly where a
// network would — outside both monitors, able to drop, duplicate or
// corrupt frames, which is why channels authenticate end to end.
func (f *Fleet) pump(from, to *shard) error {
	for {
		n, err := from.host.OS.SM.RingRecv(from.txRing, from.stagePA, api.RingMaxBatch)
		if errors.Is(err, api.ErrInvalidState) {
			return nil // tx drained
		}
		if err != nil {
			return fmt.Errorf("fleet: pump rx: %w", err)
		}
		records, err := from.host.OS.ReadOwned(from.stagePA, n*api.RingRecordSize)
		if err != nil {
			return err
		}
		frames := make([]byte, 0, n*api.RingMsgSize)
		for i := 0; i < n; i++ {
			frames = append(frames,
				records[i*api.RingRecordSize+api.RingStampSize:(i+1)*api.RingRecordSize]...)
		}
		for off := 0; off < len(frames); {
			cnt := (len(frames) - off) / api.RingMsgSize
			if cnt > api.RingMaxBatch {
				cnt = api.RingMaxBatch
			}
			if err := to.host.OS.WriteOwned(to.stagePA, frames[off:off+cnt*api.RingMsgSize]); err != nil {
				return err
			}
			sent, err := to.host.OS.SM.RingSend(to.rxRing, to.stagePA, cnt)
			if err != nil {
				return fmt.Errorf("fleet: pump tx: %w", err)
			}
			off += sent * api.RingMsgSize
		}
	}
}
