package fleet

import (
	"fmt"
	"sort"
)

// Session routing (DESIGN.md §12): a session key consistent-hashes
// onto the shard ring (Replicas virtual nodes per shard, so a shard's
// departure only re-homes its own arc). New sessions land on their
// hash home unless the home is overloaded relative to the least-loaded
// shard, in which case they spill there; established sessions stay put
// until a drain re-homes them.

type hashPoint struct {
	hash  uint64
	shard int
}

// mix is splitmix64's finalizer: a fixed, deterministic 64-bit mixer —
// routing must not depend on Go's randomized map iteration or hash
// seeds anywhere.
func mix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// addPoints inserts shard s's virtual nodes into the ring.
func (f *Fleet) addPoints(s int) {
	for r := 0; r < f.cfg.Replicas; r++ {
		f.points = append(f.points, hashPoint{mix(uint64(s)<<32 | uint64(r)), s})
	}
	sort.Slice(f.points, func(i, j int) bool { return f.points[i].hash < f.points[j].hash })
}

// removePoints deletes shard s's virtual nodes (order is preserved).
func (f *Fleet) removePoints(s int) {
	kept := f.points[:0]
	for _, p := range f.points {
		if p.shard != s {
			kept = append(kept, p)
		}
	}
	f.points = kept
}

// Home reports where a fresh session with this key would consistent-
// hash to, without assigning anything. Errors only when every shard is
// draining.
func (f *Fleet) Home(key uint64) (int, error) {
	if len(f.points) == 0 {
		return 0, fmt.Errorf("fleet: no live shards")
	}
	h := mix(key)
	i := sort.Search(len(f.points), func(i int) bool { return f.points[i].hash >= h })
	if i == len(f.points) {
		i = 0 // wrap: the ring is circular
	}
	return f.points[i].shard, nil
}

// Where reports the shard currently serving a session, if assigned.
func (f *Fleet) Where(session uint64) (int, bool) {
	s, ok := f.sessions[session]
	return s, ok
}

// spillSlack is the absolute session count below which a home shard is
// never considered overloaded — tiny fleets shouldn't spill on the
// first handful of sessions.
const spillSlack = 8

// route returns the shard serving this session, assigning new sessions
// to their consistent-hash home or — when the home is overloaded —
// spilling them to the least-loaded live shard.
func (f *Fleet) route(session uint64) (int, error) {
	if s, ok := f.sessions[session]; ok {
		return s, nil
	}
	home, err := f.Home(session)
	if err != nil {
		return 0, err
	}
	least := -1
	for s := range f.shards {
		if f.draining[s] {
			continue
		}
		if least < 0 || f.load[s] < f.load[least] {
			least = s
		}
	}
	target := home
	if f.load[home] >= spillSlack && float64(f.load[home]) > f.cfg.SpillFactor*float64(f.load[least]) {
		target = least
		f.Spills++
		if t := f.tel; t != nil {
			t.spills.Inc(0)
		}
	} else if t := f.tel; t != nil {
		t.home.Inc(0)
	}
	f.sessions[session] = target
	f.load[target]++
	return target, nil
}

// Drain rebalances shard away: its virtual nodes leave the ring, every
// target shard that will inherit sessions warms one extra snapshot-
// clone worker (capacity lands before traffic does), and only then do
// the drained shard's sessions cut over to their new consistent-hash
// homes. The drained shard serves nothing afterwards but stays up —
// its machine, monitor and attestation enclaves remain for channels.
// Returns the number of sessions moved.
func (f *Fleet) Drain(shard int) (int, error) {
	if shard < 0 || shard >= len(f.shards) {
		return 0, fmt.Errorf("fleet: no shard %d", shard)
	}
	if f.draining[shard] {
		return 0, fmt.Errorf("fleet: shard %d is already draining", shard)
	}
	live := 0
	for s := range f.shards {
		if !f.draining[s] {
			live++
		}
	}
	if live <= 1 {
		return 0, fmt.Errorf("fleet: cannot drain the last live shard")
	}
	f.removePoints(shard)

	// Sessions re-home deterministically: sorted key order, ring
	// lookup against the remaining shards.
	var keys []uint64
	for k, s := range f.sessions {
		if s == shard {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	targets := map[int]bool{}
	moves := make([]int, len(keys))
	for i, k := range keys {
		t, err := f.Home(k)
		if err != nil {
			f.addPoints(shard)
			return 0, err
		}
		moves[i] = t
		targets[t] = true
	}

	// Warm-up before cutover: each inheriting shard forks one more
	// worker from its snapshot. A failed warm-up aborts the drain with
	// the ring restored — no session moved.
	var targetList []int
	for t := range targets {
		targetList = append(targetList, t)
	}
	sort.Ints(targetList)
	for _, t := range targetList {
		if err := f.shards[t].gw.AddWorker(); err != nil {
			f.addPoints(shard)
			return 0, fmt.Errorf("fleet: warming shard %d: %w", t, err)
		}
	}

	// Cutover.
	f.draining[shard] = true
	for i, k := range keys {
		f.sessions[k] = moves[i]
		f.load[moves[i]]++
	}
	f.load[shard] = 0
	f.Rebalanced += len(keys)
	if t := f.tel; t != nil {
		t.drains.Inc(0)
	}
	return len(keys), nil
}
