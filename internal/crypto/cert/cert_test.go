package cert

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"testing"
)

// buildChain creates a manufacturer→device→monitor chain for tests.
func buildChain(t *testing.T) (Chain, ed25519.PublicKey, ed25519.PrivateKey) {
	t.Helper()
	rootPub, rootPriv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	devPub, devPriv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	smPub, smPriv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}

	root := &Certificate{Role: RoleManufacturer, Subject: "acme", SubjectKey: rootPub, Issuer: "acme"}
	root.Sign(rootPriv)
	dev := &Certificate{Role: RoleDevice, Subject: "device-42", SubjectKey: devPub, Issuer: "acme"}
	dev.Sign(rootPriv)
	sm := &Certificate{
		Role: RoleMonitor, Subject: "sanctorum", SubjectKey: smPub,
		Issuer: "device-42", Measurement: bytes.Repeat([]byte{0xAB}, 32),
	}
	sm.Sign(devPriv)
	return Chain{sm, dev, root}, rootPub, smPriv
}

func TestChainVerifies(t *testing.T) {
	ch, rootPub, _ := buildChain(t)
	leaf, err := ch.Verify(rootPub)
	if err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
	if leaf.Subject != "sanctorum" || leaf.Role != RoleMonitor {
		t.Fatalf("wrong leaf returned: %+v", leaf)
	}
}

func TestChainRejectsTamperedMeasurement(t *testing.T) {
	ch, rootPub, _ := buildChain(t)
	ch[0].Measurement[0] ^= 1
	if _, err := ch.Verify(rootPub); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered measurement accepted (err=%v)", err)
	}
}

func TestChainRejectsWrongRoot(t *testing.T) {
	ch, _, _ := buildChain(t)
	otherPub, _, _ := ed25519.GenerateKey(rand.Reader)
	if _, err := ch.Verify(otherPub); !errors.Is(err, ErrWrongRoot) {
		t.Fatalf("chain accepted under wrong root (err=%v)", err)
	}
}

func TestChainRejectsBrokenLinkage(t *testing.T) {
	ch, rootPub, _ := buildChain(t)
	ch[0].Issuer = "some-other-device"
	if _, err := ch.Verify(rootPub); err == nil {
		t.Fatal("broken issuer linkage accepted")
	}
}

func TestChainRejectsEmpty(t *testing.T) {
	var ch Chain
	pub, _, _ := ed25519.GenerateKey(rand.Reader)
	if _, err := ch.Verify(pub); !errors.Is(err, ErrBadChain) {
		t.Fatalf("empty chain: err=%v", err)
	}
}

func TestChainRejectsUnsignedRoot(t *testing.T) {
	ch, rootPub, _ := buildChain(t)
	ch[2].Signature[3] ^= 0xFF
	if _, err := ch.Verify(rootPub); err == nil {
		t.Fatal("chain with corrupt root signature accepted")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	ch, rootPub, _ := buildChain(t)
	enc := ch.Marshal()
	dec, err := UnmarshalChain(enc)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if _, err := dec.Verify(rootPub); err != nil {
		t.Fatalf("round-tripped chain rejected: %v", err)
	}
	if dec[0].Subject != ch[0].Subject || !bytes.Equal(dec[0].Measurement, ch[0].Measurement) {
		t.Fatal("round trip lost fields")
	}
}

func TestUnmarshalRejectsTruncation(t *testing.T) {
	ch, _, _ := buildChain(t)
	enc := ch.Marshal()
	for _, cut := range []int{1, 5, len(enc) / 2, len(enc) - 1} {
		if _, err := UnmarshalChain(enc[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestUnmarshalRejectsHugeCount(t *testing.T) {
	raw := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := UnmarshalChain(raw); err == nil {
		t.Fatal("implausible count accepted")
	}
}

func TestCertificateSignatureBindsAllFields(t *testing.T) {
	_, rootPriv, _ := ed25519.GenerateKey(rand.Reader)
	pub, _, _ := ed25519.GenerateKey(rand.Reader)
	base := Certificate{Role: RoleDevice, Subject: "d", SubjectKey: pub, Issuer: "m"}
	base.Sign(rootPriv)

	mutations := []func(c *Certificate){
		func(c *Certificate) { c.Role = RoleMonitor },
		func(c *Certificate) { c.Subject = "e" },
		func(c *Certificate) { c.Issuer = "x" },
		func(c *Certificate) { c.Measurement = []byte{1} },
		func(c *Certificate) { k := append([]byte(nil), c.SubjectKey...); k[0] ^= 1; c.SubjectKey = k },
	}
	issuerPub := rootPriv.Public().(ed25519.PublicKey)
	for i, mutate := range mutations {
		c := base
		mutate(&c)
		if err := c.VerifySignature(issuerPub); err == nil {
			t.Errorf("mutation %d not caught by signature", i)
		}
	}
}

func TestRoleString(t *testing.T) {
	for r, want := range map[Role]string{
		RoleManufacturer: "manufacturer",
		RoleDevice:       "device",
		RoleMonitor:      "monitor",
		Role(99):         "role(99)",
	} {
		if got := r.String(); got != want {
			t.Errorf("Role(%d).String() = %q, want %q", r, got, want)
		}
	}
}
