// Package cert implements the minimal certificate infrastructure the
// Sanctorum threat model assumes (§IV-B4): a manufacturer PKI that lets a
// remote verifier bootstrap trust in a particular device and in the
// security monitor measured at boot on that device.
//
// Certificates are deliberately not X.509: the paper only needs a chain
// of (subject key, subject description, issuer signature) records, and a
// small deterministic binary encoding keeps the whole verification path
// inside this repository. Signatures are Ed25519 from the standard
// library.
package cert

import (
	"bytes"
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
)

// Role describes what a certificate attests to within the chain.
type Role uint8

const (
	// RoleManufacturer is the self-signed root of the PKI.
	RoleManufacturer Role = iota + 1
	// RoleDevice binds a device public key to a manufacturer.
	RoleDevice
	// RoleMonitor binds an SM attestation key to a device and to the
	// measurement of the monitor binary taken by the boot ROM.
	RoleMonitor
)

func (r Role) String() string {
	switch r {
	case RoleManufacturer:
		return "manufacturer"
	case RoleDevice:
		return "device"
	case RoleMonitor:
		return "monitor"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// Certificate binds a subject public key (and, for monitors, a
// measurement) to an issuer via an Ed25519 signature over the
// deterministic encoding of all other fields.
type Certificate struct {
	Role        Role
	Subject     string
	SubjectKey  ed25519.PublicKey
	Issuer      string
	Measurement []byte // monitor measurement; empty unless RoleMonitor
	Signature   []byte
}

// Errors returned by chain verification.
var (
	ErrBadSignature = errors.New("cert: signature verification failed")
	ErrBadChain     = errors.New("cert: malformed certificate chain")
	ErrWrongRoot    = errors.New("cert: chain does not terminate at the trusted root")
)

// tbs returns the to-be-signed encoding of the certificate.
func (c *Certificate) tbs() []byte {
	var buf bytes.Buffer
	buf.WriteByte(byte(c.Role))
	writeLP(&buf, []byte(c.Subject))
	writeLP(&buf, c.SubjectKey)
	writeLP(&buf, []byte(c.Issuer))
	writeLP(&buf, c.Measurement)
	return buf.Bytes()
}

func writeLP(buf *bytes.Buffer, b []byte) {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(b)))
	buf.Write(n[:])
	buf.Write(b)
}

func readLP(r *bytes.Reader) ([]byte, error) {
	var n [4]byte
	if _, err := r.Read(n[:]); err != nil {
		return nil, err
	}
	ln := binary.LittleEndian.Uint32(n[:])
	if int(ln) > r.Len() {
		return nil, errors.New("cert: truncated field")
	}
	b := make([]byte, ln)
	if _, err := r.Read(b); err != nil && ln > 0 {
		return nil, err
	}
	return b, nil
}

// Sign issues the certificate with the issuer's private key, filling in
// Signature.
func (c *Certificate) Sign(issuerKey ed25519.PrivateKey) {
	c.Signature = ed25519.Sign(issuerKey, c.tbs())
}

// VerifySignature checks the certificate's signature against the given
// issuer public key.
func (c *Certificate) VerifySignature(issuerKey ed25519.PublicKey) error {
	if len(c.Signature) != ed25519.SignatureSize {
		return ErrBadSignature
	}
	if !ed25519.Verify(issuerKey, c.tbs(), c.Signature) {
		return ErrBadSignature
	}
	return nil
}

// Marshal encodes the certificate, including its signature.
func (c *Certificate) Marshal() []byte {
	var buf bytes.Buffer
	buf.Write(c.tbs())
	writeLP(&buf, c.Signature)
	return buf.Bytes()
}

// Unmarshal decodes a certificate produced by Marshal.
func Unmarshal(b []byte) (*Certificate, error) {
	r := bytes.NewReader(b)
	role, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	c := &Certificate{Role: Role(role)}
	fields := []*[]byte{nil, nil, nil, nil, nil}
	var subject, key, issuer, meas, sig []byte
	fields[0], fields[1], fields[2], fields[3], fields[4] = &subject, &key, &issuer, &meas, &sig
	for _, f := range fields {
		v, err := readLP(r)
		if err != nil {
			return nil, fmt.Errorf("cert: decode: %w", err)
		}
		*f = v
	}
	c.Subject = string(subject)
	c.SubjectKey = ed25519.PublicKey(key)
	c.Issuer = string(issuer)
	c.Measurement = meas
	c.Signature = sig
	return c, nil
}

// Chain is an ordered certificate chain, leaf first (monitor, device,
// manufacturer root).
type Chain []*Certificate

// Verify walks the chain from the leaf to the root, checking that each
// certificate is signed by the next one's subject key and that the chain
// terminates in the given trusted root key (which must match the final
// self-signed certificate). It returns the leaf on success.
func (ch Chain) Verify(trustedRoot ed25519.PublicKey) (*Certificate, error) {
	if len(ch) == 0 {
		return nil, ErrBadChain
	}
	for i := 0; i < len(ch)-1; i++ {
		if err := ch[i].VerifySignature(ch[i+1].SubjectKey); err != nil {
			return nil, fmt.Errorf("cert %d (%s): %w", i, ch[i].Subject, err)
		}
		if ch[i].Issuer != ch[i+1].Subject {
			return nil, fmt.Errorf("%w: cert %d issuer %q != cert %d subject %q",
				ErrBadChain, i, ch[i].Issuer, i+1, ch[i+1].Subject)
		}
	}
	root := ch[len(ch)-1]
	if err := root.VerifySignature(root.SubjectKey); err != nil {
		return nil, fmt.Errorf("root: %w", err)
	}
	if !root.SubjectKey.Equal(trustedRoot) {
		return nil, ErrWrongRoot
	}
	return ch[0], nil
}

// Marshal encodes the whole chain.
func (ch Chain) Marshal() []byte {
	var buf bytes.Buffer
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(ch)))
	buf.Write(n[:])
	for _, c := range ch {
		writeLP(&buf, c.Marshal())
	}
	return buf.Bytes()
}

// UnmarshalChain decodes a chain produced by Chain.Marshal.
func UnmarshalChain(b []byte) (Chain, error) {
	r := bytes.NewReader(b)
	var n [4]byte
	if _, err := r.Read(n[:]); err != nil {
		return nil, err
	}
	count := binary.LittleEndian.Uint32(n[:])
	if count > 16 {
		return nil, fmt.Errorf("%w: implausible chain length %d", ErrBadChain, count)
	}
	ch := make(Chain, 0, count)
	for i := uint32(0); i < count; i++ {
		raw, err := readLP(r)
		if err != nil {
			return nil, err
		}
		c, err := Unmarshal(raw)
		if err != nil {
			return nil, err
		}
		ch = append(ch, c)
	}
	return ch, nil
}
