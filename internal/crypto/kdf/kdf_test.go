package kdf

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestDeriveDeterministic(t *testing.T) {
	a := Derive([]byte("root"), "sm-key", []byte("measurement"), 32)
	b := Derive([]byte("root"), "sm-key", []byte("measurement"), 32)
	if !bytes.Equal(a, b) {
		t.Fatal("Derive is not deterministic")
	}
}

func TestDeriveSeparatesInputs(t *testing.T) {
	base := Derive([]byte("root"), "label", []byte("ctx"), 32)
	cases := map[string][]byte{
		"different secret":  Derive([]byte("toor"), "label", []byte("ctx"), 32),
		"different label":   Derive([]byte("root"), "label2", []byte("ctx"), 32),
		"different context": Derive([]byte("root"), "label", []byte("ctx2"), 32),
	}
	for name, got := range cases {
		if bytes.Equal(base, got) {
			t.Errorf("%s produced identical key material", name)
		}
	}
}

// The length-prefixed encoding must prevent boundary-shifting collisions
// such as (label="ab", ctx="c") vs (label="a", ctx="bc").
func TestDeriveNoBoundaryCollision(t *testing.T) {
	a := Derive([]byte("s"), "ab", []byte("c"), 32)
	b := Derive([]byte("s"), "a", []byte("bc"), 32)
	if bytes.Equal(a, b) {
		t.Fatal("boundary-shifted inputs collided")
	}
}

func TestDerivePrefixConsistency(t *testing.T) {
	// A longer output must begin with the shorter output for the same
	// inputs (XOF property) — callers rely on this when extending keys.
	short := Derive([]byte("k"), "l", nil, 16)
	long := Derive([]byte("k"), "l", nil, 64)
	if !bytes.Equal(short, long[:16]) {
		t.Fatal("derive output is not prefix-consistent")
	}
}

func TestMACRoundTrip(t *testing.T) {
	key := []byte("0123456789abcdef")
	msg := []byte("attestation evidence")
	tag := MAC(key, msg)
	if !VerifyMAC(key, msg, tag) {
		t.Fatal("valid MAC rejected")
	}
	tag[0] ^= 1
	if VerifyMAC(key, msg, tag) {
		t.Fatal("tampered MAC accepted")
	}
}

func TestMACProperties(t *testing.T) {
	keyBinds := func(k1, k2, msg []byte) bool {
		if bytes.Equal(k1, k2) {
			return true
		}
		return MAC(k1, msg) != MAC(k2, msg)
	}
	if err := quick.Check(keyBinds, nil); err != nil {
		t.Error(err)
	}
	msgBinds := func(key, m []byte, extra byte) bool {
		return MAC(key, m) != MAC(key, append(append([]byte(nil), m...), extra))
	}
	if err := quick.Check(msgBinds, nil); err != nil {
		t.Error(err)
	}
	verifies := func(key, m []byte) bool {
		return VerifyMAC(key, m, MAC(key, m))
	}
	if err := quick.Check(verifies, nil); err != nil {
		t.Error(err)
	}
}
