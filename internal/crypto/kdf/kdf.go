// Package kdf provides the key-derivation and message-authentication
// primitives used by Sanctorum's secure boot protocol (Lebedev et al.,
// CSF 2018, reference [7] of the paper).
//
// The boot ROM of a Sanctum/Keystone device holds a device root secret.
// At boot it measures the security monitor image and derives the SM's
// identity-bound key material from (root secret, SM measurement) so that
// a modified monitor receives different, unlinkable keys. All derivation
// here is built on the repository's own SHA-3/SHAKE implementation so the
// entire trust chain is reproducible from this tree.
package kdf

import (
	"encoding/binary"

	"sanctorum/internal/crypto/sha3"
)

// Derive produces size bytes of key material bound to (secret, label,
// context). It is a SHAKE256-based KDF with unambiguous length-prefixed
// encoding of every field, so no two distinct (label, context) pairs can
// collide in the sponge input.
func Derive(secret []byte, label string, context []byte, size int) []byte {
	x := sha3.NewShake256()
	writeLenPrefixed(x, secret)
	writeLenPrefixed(x, []byte(label))
	writeLenPrefixed(x, context)
	out := make([]byte, size)
	x.Read(out)
	return out
}

// MAC computes a 32-byte keyed authenticator over msg. It uses the
// sponge keyed-prefix construction, which is a secure PRF for SHA-3
// family sponges (no HMAC nesting required).
func MAC(key, msg []byte) [32]byte {
	x := sha3.NewShake256()
	writeLenPrefixed(x, key)
	writeLenPrefixed(x, msg)
	var out [32]byte
	x.Read(out[:])
	return out
}

// VerifyMAC reports whether tag authenticates msg under key, in
// constant time with respect to the tag comparison.
func VerifyMAC(key, msg []byte, tag [32]byte) bool {
	want := MAC(key, msg)
	var diff byte
	for i := range want {
		diff |= want[i] ^ tag[i]
	}
	return diff == 0
}

// SessionKey derives the symmetric session key both ends of a key
// agreement compute from the ECDH shared secret and the two public
// shares. Shares are absorbed in sorted order so the derivation is
// symmetric.
func SessionKey(secret, shareA, shareB []byte) []byte {
	a, b := shareA, shareB
	if string(a) > string(b) {
		a, b = b, a
	}
	ctx := make([]byte, 0, len(a)+len(b))
	ctx = append(ctx, a...)
	ctx = append(ctx, b...)
	return Derive(secret, "sanctorum-session", ctx, 32)
}

func writeLenPrefixed(x sha3.XOF, b []byte) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(b)))
	x.Write(n[:])
	x.Write(b)
}
