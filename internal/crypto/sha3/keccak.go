// Package sha3 implements the SHA-3 fixed-output hash functions and the
// SHAKE extendable-output functions as specified in FIPS 202.
//
// Sanctorum measures enclaves with sha3 (the paper's TCB bundles
// tiny_sha3); this package is the reproduction's equivalent, implemented
// from the specification so the whole measurement path is part of this
// repository. Only the standard library is used.
package sha3

// roundConstants are the 24 iota-step constants for Keccak-f[1600].
var roundConstants = [24]uint64{
	0x0000000000000001, 0x0000000000008082, 0x800000000000808a,
	0x8000000080008000, 0x000000000000808b, 0x0000000080000001,
	0x8000000080008081, 0x8000000000008009, 0x000000000000008a,
	0x0000000000000088, 0x0000000080008009, 0x000000008000000a,
	0x000000008000808b, 0x800000000000008b, 0x8000000000008089,
	0x8000000000008003, 0x8000000000008002, 0x8000000000000080,
	0x000000000000800a, 0x800000008000000a, 0x8000000080008081,
	0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
}

// rotc holds the rho-step rotation offsets in pi-step traversal order.
var rotc = [24]uint{
	1, 3, 6, 10, 15, 21, 28, 36, 45, 55, 2, 14,
	27, 41, 56, 8, 25, 43, 62, 18, 39, 61, 20, 44,
}

// piln holds the pi-step lane permutation in traversal order.
var piln = [24]int{
	10, 7, 11, 17, 18, 3, 5, 16, 8, 21, 24, 4,
	15, 23, 19, 13, 12, 2, 20, 14, 22, 9, 6, 1,
}

func rotl64(x uint64, n uint) uint64 { return x<<n | x>>(64-n) }

// keccakF1600 applies the 24-round Keccak-f[1600] permutation in place.
func keccakF1600(st *[25]uint64) {
	var bc [5]uint64
	for round := 0; round < 24; round++ {
		// Theta.
		for i := 0; i < 5; i++ {
			bc[i] = st[i] ^ st[i+5] ^ st[i+10] ^ st[i+15] ^ st[i+20]
		}
		for i := 0; i < 5; i++ {
			t := bc[(i+4)%5] ^ rotl64(bc[(i+1)%5], 1)
			for j := 0; j < 25; j += 5 {
				st[j+i] ^= t
			}
		}
		// Rho and pi.
		t := st[1]
		for i := 0; i < 24; i++ {
			j := piln[i]
			bc[0] = st[j]
			st[j] = rotl64(t, rotc[i])
			t = bc[0]
		}
		// Chi.
		for j := 0; j < 25; j += 5 {
			for i := 0; i < 5; i++ {
				bc[i] = st[j+i]
			}
			for i := 0; i < 5; i++ {
				st[j+i] ^= (^bc[(i+1)%5]) & bc[(i+2)%5]
			}
		}
		// Iota.
		st[0] ^= roundConstants[round]
	}
}
