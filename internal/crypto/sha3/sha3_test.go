package sha3

import (
	"bytes"
	"encoding/hex"
	"strings"
	"testing"
	"testing/quick"
)

func fromHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex constant %q: %v", s, err)
	}
	return b
}

// FIPS 202 / NIST CAVP known-answer vectors.
var sha3_256Vectors = []struct{ in, out string }{
	{"", "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a"},
	{"abc", "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532"},
	{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
		"41c0dba2a9d6240849100376a8235e2c82e1b9998a999e21db32dd97496d3376"},
	{"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
		"916f6061fe879741ca6469b43971dfdb28b1a32dc36cb3254e812be27aad1d18"},
}

var sha3_512Vectors = []struct{ in, out string }{
	{"", "a69f73cca23a9ac5c8b567dc185a756e97c982164fe25859e0d1dcc1475c80a615b2123af1f5f94c11e3e9402c3ac558f500199d95b6d3e301758586281dcd26"},
	{"abc", "b751850b1a57168a5693cd924b6b096e08f621827444f70d884f5d0240d2712e10e116e9192af3c91a7ec57647e3934057340b4cf408d5a56592f8274eec53f0"},
	{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
		"04a371e84ecfb5b8b77cb48610fca8182dd457ce6f326a0fd3d7ec2f1e91636dee691fbe0c985302ba1b0d8dc78c086346b533b49c030d99a27daf1139d6e75e"},
}

func TestSHA3_256Vectors(t *testing.T) {
	for _, v := range sha3_256Vectors {
		got := Sum256([]byte(v.in))
		if want := fromHex(t, v.out); !bytes.Equal(got[:], want) {
			t.Errorf("SHA3-256(%q) = %x, want %s", v.in, got, v.out)
		}
	}
}

func TestSHA3_512Vectors(t *testing.T) {
	for _, v := range sha3_512Vectors {
		got := Sum512([]byte(v.in))
		if want := fromHex(t, v.out); !bytes.Equal(got[:], want) {
			t.Errorf("SHA3-512(%q) = %x, want %s", v.in, got, v.out)
		}
	}
}

func TestSHAKEVectors(t *testing.T) {
	out := make([]byte, 32)
	ShakeSum128(out, nil)
	if want := fromHex(t, "7f9c2ba4e88f827d616045507605853ed73b8093f6efbc88eb1a6eacfa66ef26"); !bytes.Equal(out, want) {
		t.Errorf("SHAKE128('',32) = %x, want %x", out, want)
	}
	ShakeSum256(out, nil)
	if want := fromHex(t, "46b9dd2b0ba88d13233b3feb743eeb243fcd52ea62b81b82b50c27646ed5762f"); !bytes.Equal(out, want) {
		t.Errorf("SHAKE256('',32) = %x, want %x", out, want)
	}
}

// Long-input vector: SHA3-256 of one million 'a' bytes.
func TestSHA3_256Million(t *testing.T) {
	h := New256()
	chunk := bytes.Repeat([]byte{'a'}, 1000)
	for i := 0; i < 1000; i++ {
		h.Write(chunk)
	}
	got := h.Sum(nil)
	want := fromHex(t, "5c8875ae474a3634ba4fd55ec85bffd661f32aca75c6d699d0cdcb6c115891c1")
	if !bytes.Equal(got, want) {
		t.Errorf("SHA3-256(10^6 x 'a') = %x, want %x", got, want)
	}
}

// Chunked writes must agree with one-shot hashing regardless of split.
func TestChunkedWriteEquivalence(t *testing.T) {
	data := []byte(strings.Repeat("sanctorum security monitor ", 40))
	want := Sum256(data)
	for split := 1; split < len(data); split += 7 {
		h := New256()
		h.Write(data[:split])
		h.Write(data[split:])
		if got := h.Sum(nil); !bytes.Equal(got, want[:]) {
			t.Fatalf("split %d: digest mismatch", split)
		}
	}
}

// Sum must not disturb the running state.
func TestSumIsNonDestructive(t *testing.T) {
	h := New256()
	h.Write([]byte("part one"))
	first := h.Sum(nil)
	second := h.Sum(nil)
	if !bytes.Equal(first, second) {
		t.Fatalf("repeated Sum differs: %x vs %x", first, second)
	}
	h.Write([]byte(" part two"))
	cont := h.Sum(nil)
	oneShot := Sum256([]byte("part one part two"))
	if !bytes.Equal(cont, oneShot[:]) {
		t.Fatalf("continued hash %x differs from one-shot %x", cont, oneShot)
	}
}

func TestResetRestoresInitialState(t *testing.T) {
	h := New512()
	h.Write([]byte("garbage"))
	h.Sum(nil)
	h.Reset()
	h.Write([]byte("abc"))
	got := h.Sum(nil)
	want := fromHex(t, sha3_512Vectors[1].out)
	if !bytes.Equal(got, want) {
		t.Fatalf("after Reset: got %x want %x", got, want)
	}
}

func TestXOFStreamingEquivalence(t *testing.T) {
	// Reading the XOF output in pieces must equal one big read.
	data := []byte("stream me")
	big := make([]byte, 500)
	ShakeSum256(big, data)

	x := NewShake256()
	x.Write(data)
	var pieces []byte
	buf := make([]byte, 33) // deliberately not aligned to the rate
	for len(pieces) < 500 {
		x.Read(buf)
		pieces = append(pieces, buf...)
	}
	if !bytes.Equal(pieces[:500], big) {
		t.Fatal("piecewise XOF read differs from bulk read")
	}
}

func TestWriteAfterReadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Write after Read")
		}
	}()
	x := NewShake128()
	x.Write([]byte("a"))
	x.Read(make([]byte, 1))
	x.Write([]byte("b"))
}

// Property: distinct inputs produce distinct digests, and hashing is a
// pure function of the input bytes.
func TestHashProperties(t *testing.T) {
	deterministic := func(b []byte) bool {
		return Sum256(b) == Sum256(append([]byte(nil), b...))
	}
	if err := quick.Check(deterministic, nil); err != nil {
		t.Error(err)
	}
	appendByteChanges := func(b []byte, extra byte) bool {
		return Sum256(b) != Sum256(append(append([]byte(nil), b...), extra))
	}
	if err := quick.Check(appendByteChanges, nil); err != nil {
		t.Error(err)
	}
	domainSeparated := func(b []byte) bool {
		var shake [32]byte
		ShakeSum256(shake[:], b)
		return Sum256(b) != shake
	}
	if err := quick.Check(domainSeparated, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkSHA3_256_1K(b *testing.B) {
	data := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		Sum256(data)
	}
}

func BenchmarkSHAKE256_1K(b *testing.B) {
	data := make([]byte, 1024)
	out := make([]byte, 64)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		ShakeSum256(out, data)
	}
}
