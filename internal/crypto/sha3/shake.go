package sha3

import "io"

// XOF is an extendable-output function: absorb with Write, squeeze with
// Read. Write must not be called after the first Read.
type XOF interface {
	io.Writer
	io.Reader
	Reset()
}

// NewShake128 returns a SHAKE128 XOF.
func NewShake128() XOF { return &state{rate: rate128, ds: dsSHAKE} }

// NewShake256 returns a SHAKE256 XOF.
func NewShake256() XOF { return &state{rate: rate256, ds: dsSHAKE} }

// ShakeSum128 writes an arbitrary-length SHAKE128 digest of data into out.
func ShakeSum128(out, data []byte) {
	x := NewShake128()
	x.Write(data)
	x.Read(out)
}

// ShakeSum256 writes an arbitrary-length SHAKE256 digest of data into out.
func ShakeSum256(out, data []byte) {
	x := NewShake256()
	x.Write(data)
	x.Read(out)
}
