package sha3

import (
	"encoding/binary"
	"hash"
)

// Domain-separation bytes appended by the sponge padding (FIPS 202 §6).
const (
	dsSHA3  = 0x06
	dsSHAKE = 0x1f
)

// Size and rate constants for the instances this package exposes.
const (
	Size256 = 32  // SHA3-256 digest length in bytes
	Size512 = 64  // SHA3-512 digest length in bytes
	rate256 = 136 // SHA3-256 / SHAKE256 sponge rate in bytes
	rate512 = 72  // SHA3-512 sponge rate in bytes
	rate128 = 168 // SHAKE128 sponge rate in bytes
)

// state is a Keccak sponge in either absorbing or squeezing phase.
// Plain value copies of state are independent, which Sum exploits.
type state struct {
	a      [25]uint64    // main state of the sponge
	block  [rate128]byte // staging area for one rate-sized block
	n      int           // absorbing: bytes buffered in block; squeezing: bytes of block already returned
	rate   int           // sponge rate in bytes
	size   int           // fixed digest size; 0 for XOF
	ds     byte          // domain separation byte
	squeez bool          // true once squeezing has begun
}

var _ hash.Hash = (*state)(nil)

// New256 returns a new SHA3-256 hash.Hash.
func New256() hash.Hash { return &state{rate: rate256, size: Size256, ds: dsSHA3} }

// New512 returns a new SHA3-512 hash.Hash.
func New512() hash.Hash { return &state{rate: rate512, size: Size512, ds: dsSHA3} }

// Sum256 returns the SHA3-256 digest of data.
func Sum256(data []byte) [Size256]byte {
	var out [Size256]byte
	h := New256()
	h.Write(data)
	h.Sum(out[:0])
	return out
}

// Sum512 returns the SHA3-512 digest of data.
func Sum512(data []byte) [Size512]byte {
	var out [Size512]byte
	h := New512()
	h.Write(data)
	h.Sum(out[:0])
	return out
}

func (s *state) Reset() {
	s.a = [25]uint64{}
	s.n = 0
	s.squeez = false
}

func (s *state) Size() int      { return s.size }
func (s *state) BlockSize() int { return s.rate }

// absorbBlock xors the staged rate-sized block into the state and permutes.
func (s *state) absorbBlock() {
	for i := 0; i < s.rate; i += 8 {
		s.a[i/8] ^= binary.LittleEndian.Uint64(s.block[i:])
	}
	keccakF1600(&s.a)
	s.n = 0
}

// Write absorbs p into the sponge. It panics if called after squeezing
// has begun, mirroring the usual Go hash contract violation.
func (s *state) Write(p []byte) (int, error) {
	if s.squeez {
		panic("sha3: Write after Read/Sum")
	}
	n := len(p)
	for len(p) > 0 {
		c := copy(s.block[s.n:s.rate], p)
		s.n += c
		p = p[c:]
		if s.n == s.rate {
			s.absorbBlock()
		}
	}
	return n, nil
}

// pad applies the FIPS 202 multi-rate padding and switches to squeezing.
func (s *state) pad() {
	for i := s.n; i < s.rate; i++ {
		s.block[i] = 0
	}
	s.block[s.n] ^= s.ds
	s.block[s.rate-1] ^= 0x80
	s.n = s.rate // absorb the whole padded block
	for i := 0; i < s.rate; i += 8 {
		s.a[i/8] ^= binary.LittleEndian.Uint64(s.block[i:])
	}
	keccakF1600(&s.a)
	s.squeez = true
	s.fillSqueeze()
}

// fillSqueeze stages the next rate bytes of output into block.
func (s *state) fillSqueeze() {
	for i := 0; i < s.rate; i += 8 {
		binary.LittleEndian.PutUint64(s.block[i:], s.a[i/8])
	}
	s.n = 0
}

// Read squeezes len(p) bytes from the sponge (XOF behaviour). The first
// call finalizes absorption.
func (s *state) Read(p []byte) (int, error) {
	if !s.squeez {
		s.pad()
	}
	n := len(p)
	for len(p) > 0 {
		if s.n == s.rate {
			keccakF1600(&s.a)
			s.fillSqueeze()
		}
		c := copy(p, s.block[s.n:s.rate])
		s.n += c
		p = p[c:]
	}
	return n, nil
}

// Sum appends the digest to b without disturbing the running state.
func (s *state) Sum(b []byte) []byte {
	dup := *s
	out := make([]byte, dup.size)
	dup.Read(out)
	return append(b, out...)
}
