// Package mc is the monitor's lifecycle model checker (DESIGN.md §10):
// a deterministic interleaving explorer that drives scripted sequences
// of Monitor.Dispatch calls from multiple caller domains — the
// untrusted OS and several enclaves — through systematically permuted
// schedules, checking the shared invariant suite
// (sm.Monitor.CheckInvariants) after every step. Exhaustive mode
// enumerates every interleaving of short per-actor step lists; random
// mode draws seeded uniform interleavings over longer scripts and can
// force spurious transaction-lock failures through the monitor's fault
// hook (sm.Monitor.SetLockFaultHook), proving the §V-A ErrRetry
// discipline converges and that every refused call leaves the state
// machine bit-untouched.
//
// The package is verification scaffolding, not monitor code: it lives
// outside the TCB (cmd/tcbcount counts it under "verification &
// clients") and touches the monitor only through the public ABI plus
// the exported capture/invariant/fault-hook surface.
package mc

import (
	"fmt"
	"sort"

	"sanctorum"
	"sanctorum/internal/hw/pt"
	"sanctorum/internal/sm"
	"sanctorum/internal/sm/api"
)

// Evrange used by minimal hand-loaded enclaves (matching the sm test
// fixtures): a 1 GiB-aligned window high in the canonical space.
const (
	evBase = uint64(0x4000000000)
	evMask = ^uint64(1<<30 - 1)
)

// Wake records one park/wake notification the monitor posted through
// the OS wake sink.
type Wake struct {
	Ring, EID, TID uint64
}

// World is one fresh booted system a single schedule runs against:
// machine, monitor, untrusted OS, plus the bookkeeping scripts share.
type World struct {
	Sys *sanctorum.System
	// Wakes accumulates park/wake notifications, in posting order.
	Wakes []Wake
	// IDs holds named object ids (metadata pages, region indices)
	// allocated during script setup for steps to use.
	IDs map[string]uint64
}

// Config parameterizes a world. The zero value is usable: a 2-core
// baseline machine with 24 64 KiB regions and seed 0.
type Config struct {
	Seed        uint64
	Cores       int
	RegionCount int
}

// NewWorld boots a fresh deterministic system. Worlds with the same
// config are bit-identical, so a failing schedule replays exactly.
func NewWorld(cfg Config) (*World, error) {
	if cfg.Cores == 0 {
		cfg.Cores = 2
	}
	if cfg.RegionCount == 0 {
		cfg.RegionCount = 24
	}
	sys, err := sanctorum.NewSystem(sanctorum.Options{
		Kind:        sanctorum.Baseline,
		Cores:       cfg.Cores,
		RegionShift: 16,
		RegionCount: cfg.RegionCount,
		Seed:        fmt.Appendf(nil, "mc-world-%d", cfg.Seed),
	})
	if err != nil {
		return nil, err
	}
	w := &World{Sys: sys, IDs: make(map[string]uint64)}
	sys.Monitor.SetWakeSink(func(ring, eid, tid uint64) {
		w.Wakes = append(w.Wakes, Wake{Ring: ring, EID: eid, TID: tid})
	})
	return w, nil
}

// Call submits one raw OS-domain monitor call, bypassing the smcall
// retry loop: the explorer owns retries (ErrRetry re-injection keeps
// the actor's cursor in place).
func (w *World) Call(c api.Call, args ...uint64) api.Error {
	return w.Sys.Monitor.Dispatch(api.OSRequest(c, args...)).Status
}

// CallV is Call returning the a1 result value as well.
func (w *World) CallV(c api.Call, args ...uint64) (uint64, api.Error) {
	resp := w.Sys.Monitor.Dispatch(api.OSRequest(c, args...))
	return resp.Values[0], resp.Status
}

// MetaPage allocates a metadata page for a new object id and records
// it under name.
func (w *World) MetaPage(name string) (uint64, error) {
	pa, err := w.Sys.OS.AllocMetaPage()
	if err != nil {
		return 0, err
	}
	w.IDs[name] = pa
	return pa, nil
}

// Retry submits a call with the §V-A caller discipline: retry a
// bounded number of spurious ErrRetry refusals before giving up and
// surfacing ErrRetry to the caller. Multi-transaction steps use it so
// a single injected fault doesn't strand them half-done.
func (w *World) Retry(c api.Call, args ...uint64) api.Error {
	st := api.ErrRetry
	for attempt := 0; attempt < 128 && st == api.ErrRetry; attempt++ {
		st = w.Call(c, args...)
	}
	return st
}

// BuildMinimal creates, loads, and initializes a minimal enclave
// through raw ABI calls — one granted region, page tables, one R|X
// page, one thread — and records "<name>" / "<name>-tid" in IDs. It
// is the metadata-lifecycle counterpart of the facade's BuildEnclave:
// no runnable program, just a fully initialized state-machine object.
// The returned status is the first refusal (after bounded ErrRetry
// absorption), api.OK on success.
func (w *World) BuildMinimal(name string, region int) api.Error {
	eid, err := w.MetaPage(name)
	if err != nil {
		return api.ErrNoResources
	}
	tid, err := w.MetaPage(name + "-tid")
	if err != nil {
		return api.ErrNoResources
	}
	src, err := w.Sys.OS.AllocPagePA()
	if err != nil {
		return api.ErrNoResources
	}
	seq := []struct {
		call api.Call
		args []uint64
	}{
		{api.CallCreateEnclave, []uint64{eid, evBase, evMask}},
		{api.CallGrantRegion, []uint64{uint64(region), eid}},
		{api.CallAllocPageTable, []uint64{eid, 0, 2}},
		{api.CallAllocPageTable, []uint64{eid, evBase, 1}},
		{api.CallAllocPageTable, []uint64{eid, evBase, 0}},
		{api.CallLoadPage, []uint64{eid, evBase, src, pt.R | pt.X}},
		{api.CallLoadThread, []uint64{eid, tid, evBase, evBase + 0x800}},
		{api.CallInitEnclave, []uint64{eid}},
	}
	for _, s := range seq {
		if st := w.Retry(s.call, s.args...); st != api.OK {
			return st
		}
	}
	return api.OK
}

func sortedKeys[V any](m map[uint64]V) []uint64 {
	out := make([]uint64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Teardown drives the monitor back to an empty state through the
// public ABI — the universal destructor every schedule must survive:
// resume any thread still holding a core, destroy rings, delete
// clones, release snapshots, delete remaining enclaves, unassign and
// delete leftover threads, then clean blocked regions — repeated to a
// fixpoint. It then requires total emptiness: no live objects, no
// metadata pages, zero physical page references, and every invariant
// holding. A teardown that cannot reach zero is a refcount or
// ownership leak some interleaving planted.
func (w *World) Teardown() error {
	mon := w.Sys.Monitor
	mon.SetLockFaultHook(nil)
	for round := 0; round < 256; round++ {
		s := mon.CaptureState()
		if w.teardownDone(s) {
			return w.verifyEmpty()
		}
		progress := false
		// Any core still running enclave code must finish (park or
		// exit) before its enclave can be deleted.
		for c, slot := range s.Cores {
			if slot.Owner != api.DomainOS {
				if _, err := w.Sys.Resume(c, 4_000_000); err == nil {
					progress = true
				}
			}
		}
		for _, id := range sortedKeys(s.Rings) {
			if w.Call(api.CallRingDestroy, id) == api.OK {
				progress = true
			}
		}
		for _, eid := range sortedKeys(s.Enclaves) {
			if s.Enclaves[eid].CloneOf != 0 && w.Call(api.CallDeleteEnclave, eid) == api.OK {
				progress = true
			}
		}
		for _, id := range sortedKeys(s.Snapshots) {
			if w.Call(api.CallReleaseSnapshot, id) == api.OK {
				progress = true
			}
		}
		for _, eid := range sortedKeys(s.Enclaves) {
			if s.Enclaves[eid].CloneOf == 0 && w.Call(api.CallDeleteEnclave, eid) == api.OK {
				progress = true
			}
		}
		for _, tid := range sortedKeys(s.Threads) {
			if s.Threads[tid].Owner != 0 && w.Call(api.CallUnassignThread, tid) == api.OK {
				progress = true
			}
			if w.Call(api.CallDeleteThread, tid) == api.OK {
				progress = true
			}
		}
		for r, rm := range s.Regions {
			if rm.State == sm.RegionBlocked && w.Call(api.CallCleanRegion, uint64(r)) == api.OK {
				progress = true
			}
		}
		if !progress {
			s = mon.CaptureState()
			return fmt.Errorf("mc: teardown stuck: %d enclaves, %d threads, %d snapshots, %d rings, %d meta pages",
				len(s.Enclaves), len(s.Threads), len(s.Snapshots), len(s.Rings), len(s.MetaPages))
		}
	}
	return fmt.Errorf("mc: teardown did not reach a fixpoint in 256 rounds")
}

func (w *World) teardownDone(s *sm.StateSnapshot) bool {
	if len(s.Enclaves) != 0 || len(s.Threads) != 0 || len(s.Snapshots) != 0 || len(s.Rings) != 0 {
		return false
	}
	for _, rm := range s.Regions {
		if rm.State == sm.RegionBlocked || rm.State == sm.RegionPending {
			return false
		}
	}
	return true
}

func (w *World) verifyEmpty() error {
	mon := w.Sys.Monitor
	if err := mon.CheckInvariants(); err != nil {
		return fmt.Errorf("mc: post-teardown invariants: %w", err)
	}
	s := mon.CaptureState()
	if len(s.MetaPages) != 0 {
		return fmt.Errorf("mc: %d metadata pages leaked after teardown", len(s.MetaPages))
	}
	if s.PageRefs != 0 {
		return fmt.Errorf("mc: %d physical page references leaked after teardown", s.PageRefs)
	}
	return nil
}
