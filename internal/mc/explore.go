package mc

import "fmt"

// Schedules enumerates every distinct interleaving of actors with the
// given step multiplicities — the multiset permutations of the actor
// indices. Three actors with two steps each yield 6!/(2!·2!·2!) = 90
// schedules; three with three steps each yield 1680.
func Schedules(counts []int) [][]int {
	total := 0
	for _, c := range counts {
		total += c
	}
	remaining := append([]int(nil), counts...)
	cur := make([]int, 0, total)
	var out [][]int
	var rec func()
	rec = func() {
		if len(cur) == total {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for ai := range remaining {
			if remaining[ai] == 0 {
				continue
			}
			remaining[ai]--
			cur = append(cur, ai)
			rec()
			cur = cur[:len(cur)-1]
			remaining[ai]++
		}
	}
	rec()
	return out
}

// RNG is a small deterministic xorshift64* generator, so schedule
// draws replay exactly from their seed with no dependence on the
// standard library's generator evolution.
type RNG struct{ s uint64 }

// NewRNG seeds a generator; seed 0 is remapped to a fixed constant
// (xorshift has no zero state).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{s: seed}
}

// Next returns the next 64-bit draw.
func (r *RNG) Next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// Intn returns a draw in [0, n).
func (r *RNG) Intn(n int) int { return int(r.Next() % uint64(n)) }

// RandomSchedule draws one uniformly random interleaving of the given
// step multiplicities (a Fisher–Yates shuffle of the actor multiset).
func RandomSchedule(r *RNG, counts []int) []int {
	var sched []int
	for ai, c := range counts {
		for i := 0; i < c; i++ {
			sched = append(sched, ai)
		}
	}
	for i := len(sched) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		sched[i], sched[j] = sched[j], sched[i]
	}
	return sched
}

// ExploreExhaustive runs the builder's script under every interleaving,
// each on a fresh world (cfg.Seed varies per schedule), tearing each
// world down to zero afterwards. Returns the number of schedules
// explored.
func ExploreExhaustive(cfg Config, build Builder) (int, error) {
	probe, err := NewWorld(cfg)
	if err != nil {
		return 0, err
	}
	script, err := build(probe)
	if err != nil {
		return 0, err
	}
	schedules := Schedules(script.Counts())
	for i, sched := range schedules {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)
		w, err := NewWorld(c)
		if err != nil {
			return i, err
		}
		s, err := build(w)
		if err != nil {
			return i, fmt.Errorf("mc: schedule %d setup: %w", i, err)
		}
		if _, err := Run(w, s, sched, nil); err != nil {
			return i, fmt.Errorf("mc: schedule %d %v: %w", i, sched, err)
		}
		if err := w.Teardown(); err != nil {
			return i, fmt.Errorf("mc: schedule %d %v: %w", i, sched, err)
		}
	}
	return len(schedules), nil
}

// ExploreRandom runs n seeded random schedules of the builder's
// script, each on a fresh world. faultOneIn > 0 forces a spurious
// transaction-lock failure on roughly one step execution in that many
// (drawn from the same seeded generator), exercising ErrRetry
// re-injection and convergence on top of the interleaving coverage.
func ExploreRandom(cfg Config, build Builder, n int, seed uint64, faultOneIn int) (*Stats, error) {
	agg := &Stats{}
	for i := 0; i < n; i++ {
		rng := NewRNG(seed + uint64(i)*0x9E3779B97F4A7C15)
		c := cfg
		c.Seed = seed + uint64(i)
		w, err := NewWorld(c)
		if err != nil {
			return agg, err
		}
		script, err := build(w)
		if err != nil {
			return agg, fmt.Errorf("mc: run %d setup: %w", i, err)
		}
		sched := RandomSchedule(rng, script.Counts())
		var inject func(int) bool
		if faultOneIn > 0 {
			inject = func(int) bool { return rng.Intn(faultOneIn) == 0 }
		}
		stats, err := Run(w, script, sched, inject)
		if err != nil {
			return agg, fmt.Errorf("mc: run %d (seed %d) schedule %v: %w", i, c.Seed, sched, err)
		}
		agg.add(*stats)
		if err := w.Teardown(); err != nil {
			return agg, fmt.Errorf("mc: run %d (seed %d): %w", i, c.Seed, err)
		}
	}
	return agg, nil
}
