package mc_test

import (
	"errors"
	"os"
	"strconv"
	"testing"

	"sanctorum/internal/mc"
	"sanctorum/internal/sm"
	"sanctorum/internal/sm/api"
	"sanctorum/internal/smcall"
)

func newWorld(t *testing.T, seed uint64) *mc.World {
	t.Helper()
	w, err := mc.NewWorld(mc.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestScheduleEnumerator(t *testing.T) {
	if n := len(mc.Schedules([]int{2, 2, 2})); n != 90 {
		t.Fatalf("(2,2,2) interleavings = %d, want 90", n)
	}
	if n := len(mc.Schedules([]int{3, 3, 3})); n != 1680 {
		t.Fatalf("(3,3,3) interleavings = %d, want 1680", n)
	}
	// A random schedule is a permutation of the actor multiset.
	sched := mc.RandomSchedule(mc.NewRNG(7), []int{2, 3, 4})
	counts := map[int]int{}
	for _, ai := range sched {
		counts[ai]++
	}
	if counts[0] != 2 || counts[1] != 3 || counts[2] != 4 {
		t.Fatalf("random schedule %v is not a multiset permutation", sched)
	}
}

// TestExhaustiveLifecycle enumerates every interleaving of the
// three-domain lifecycle script — 90 schedules at the default depth of
// 2 steps per actor, 1680 with MC_DEPTH=3 (the nightly setting) — each
// on a fresh world, checking the full invariant suite after every step
// and tearing each world down to zero.
func TestExhaustiveLifecycle(t *testing.T) {
	depth, want := 2, 90
	if os.Getenv("MC_DEPTH") == "3" {
		depth, want = 3, 1680
	}
	n, err := mc.ExploreExhaustive(mc.Config{}, mc.Lifecycle(depth))
	if err != nil {
		t.Fatal(err)
	}
	if n != want {
		t.Fatalf("explored %d schedules, want %d", n, want)
	}
}

// TestRandomServiceSchedules runs seeded random interleavings of the
// full create/snapshot/clone/ring/park/delete service script with
// fault injection forcing spurious lock failures on roughly one step
// in eight. MC_RANDOM overrides the schedule count.
func TestRandomServiceSchedules(t *testing.T) {
	n := 10_000
	if testing.Short() {
		n = 500
	}
	if v := os.Getenv("MC_RANDOM"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("MC_RANDOM=%q: %v", v, err)
		}
		n = parsed
	}
	stats, err := mc.ExploreRandom(mc.Config{}, mc.Service, n, 0xC0FFEE, 8)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%d schedules: %d steps, %d retries, %d forced faults, %d refusals",
		n, stats.Steps, stats.Retries, stats.Faults, stats.Errors)
	if stats.Faults == 0 {
		t.Fatal("fault injection never fired")
	}
	if stats.Retries == 0 {
		t.Fatal("no ErrRetry was ever re-injected — the storm machinery is dead")
	}
}

// TestRetryStormConverges drives a sustained forced-ErrRetry storm
// against a single call and requires the §V-A retry discipline to
// converge the moment the storm lifts — and not an attempt later.
func TestRetryStormConverges(t *testing.T) {
	w := newWorld(t, 1)
	mon := w.Sys.Monitor
	const storm = 500
	remaining := storm
	mon.SetLockFaultHook(func(sm.LockPoint) bool {
		if remaining > 0 {
			remaining--
			return true
		}
		return false
	})
	defer mon.SetLockFaultHook(nil)
	attempts := 0
	st := api.ErrRetry
	for st == api.ErrRetry {
		attempts++
		if attempts > storm+10 {
			t.Fatalf("no convergence after %d attempts", attempts)
		}
		st = w.Call(api.CallRegionInfo, 5)
	}
	if st != api.OK {
		t.Fatalf("storm ended with %v, want OK", st)
	}
	if attempts != storm+1 {
		t.Fatalf("converged after %d attempts, want exactly %d", attempts, storm+1)
	}
	if err := mon.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSmcallStormStarves drives the production smcall client against
// the real monitor under an unbounded forced-ErrRetry storm: the
// bounded-livelock guard must terminate with a typed StarvationError
// (still matching api.ErrRetry) instead of spinning forever, and the
// refused call must leave the monitor state bit-untouched.
func TestSmcallStormStarves(t *testing.T) {
	w := newWorld(t, 6)
	mon := w.Sys.Monitor
	mon.SetLockFaultHook(func(sm.LockPoint) bool { return true })
	defer mon.SetLockFaultHook(nil)
	before := mon.CaptureState()
	client := smcall.New(mon)
	client.MaxAttempts = 64
	_, _, err := client.RegionInfo(5)
	var se *smcall.StarvationError
	if !errors.As(err, &se) {
		t.Fatalf("storm returned %T (%v), want *smcall.StarvationError", err, err)
	}
	if se.Call != api.CallRegionInfo || se.Attempts != 64 {
		t.Fatalf("starvation verdict %+v, want %v after 64 attempts", se, api.CallRegionInfo)
	}
	if !errors.Is(err, api.ErrRetry) {
		t.Fatal("starvation must still match api.ErrRetry")
	}
	if after := mon.CaptureState(); !before.Equal(after) {
		t.Fatalf("starved call mutated state: %s", before.Diff(after))
	}
	mon.SetLockFaultHook(nil)
	if err := mon.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// installPreemption arms a one-shot adversarially timed preemption: at
// the first acquisition of the given lock point, race() runs to
// completion — as if another hart's transaction won the race — and the
// victim transaction then proceeds against the mutated state.
func installPreemption(t *testing.T, mon *sm.Monitor, kind sm.LockKind, id uint64, race func()) {
	t.Helper()
	armed := true
	mon.SetLockFaultHook(func(lp sm.LockPoint) bool {
		if !armed || lp.Kind != kind || lp.ID != id {
			return false
		}
		armed = false
		race()
		return false
	})
}

// TestMCRegression_RingCreateVsDeleteEnclave pins the lookup/free
// TOCTOU the explorer's fault hook surfaces: delete_enclave completing
// between ring_create's endpoint fetch and its lock acquisition. The
// dead-state recheck in lookupEnclave must refuse the attach; without
// it the ring registers against a freed eid, and a future tenant
// recreated under that id would inherit the ring.
func TestMCRegression_RingCreateVsDeleteEnclave(t *testing.T) {
	w := newWorld(t, 2)
	mon := w.Sys.Monitor
	if st := w.BuildMinimal("victim", 1); st != api.OK {
		t.Fatal(st)
	}
	victim := w.IDs["victim"]
	ring, err := w.MetaPage("ring")
	if err != nil {
		t.Fatal(err)
	}
	installPreemption(t, mon, sm.LockEnclave, victim, func() {
		if st := w.Call(api.CallDeleteEnclave, victim); st != api.OK {
			t.Fatalf("racing delete: %v", st)
		}
	})
	st := w.Call(api.CallRingCreate, ring, api.DomainOS, victim, 8)
	mon.SetLockFaultHook(nil)
	if st == api.OK {
		t.Fatal("ring_create attached a ring to a deleted enclave")
	}
	if err := mon.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := w.Teardown(); err != nil {
		t.Fatal(err)
	}
}

// TestMCRegression_CloneVsReleaseSnapshot pins the snapshot variant:
// release_snapshot completing between clone_enclave's snapshot fetch
// and its lock. The dead recheck in lookupSnapshot must refuse the
// clone; without it the clone aliases pages whose references were just
// dropped — an isolation break once the template's regions are
// recycled.
func TestMCRegression_CloneVsReleaseSnapshot(t *testing.T) {
	w := newWorld(t, 3)
	mon := w.Sys.Monitor
	if st := w.BuildMinimal("tmpl", 1); st != api.OK {
		t.Fatal(st)
	}
	tmpl := w.IDs["tmpl"]
	snapID, _ := w.MetaPage("snap")
	cloneEID, _ := w.MetaPage("clone")
	cloneTid, _ := w.MetaPage("clone-tid")
	if st := w.Call(api.CallSnapshotEnclave, tmpl, snapID); st != api.OK {
		t.Fatalf("snapshot: %v", st)
	}
	if st := w.Call(api.CallCreateEnclave, cloneEID, 0x4000000000, ^uint64(1<<30-1)); st != api.OK {
		t.Fatalf("create clone shell: %v", st)
	}
	if st := w.Call(api.CallGrantRegion, 2, cloneEID); st != api.OK {
		t.Fatalf("grant clone region: %v", st)
	}
	installPreemption(t, mon, sm.LockSnapshot, snapID, func() {
		if st := w.Call(api.CallReleaseSnapshot, snapID); st != api.OK {
			t.Fatalf("racing release: %v", st)
		}
	})
	st := w.Call(api.CallCloneEnclave, cloneEID, snapID, cloneTid, 0)
	mon.SetLockFaultHook(nil)
	if st == api.OK {
		t.Fatal("clone_enclave cloned from a released snapshot")
	}
	if err := mon.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := w.Teardown(); err != nil {
		t.Fatal(err)
	}
}

// TestMCRegression_AssignVsDeleteThread pins the thread variant:
// delete_thread completing between assign_thread's fetch and its lock.
// The dead recheck in lookupThread must refuse the offer; without it a
// freed thread id ends up Offered to an enclave.
func TestMCRegression_AssignVsDeleteThread(t *testing.T) {
	w := newWorld(t, 4)
	mon := w.Sys.Monitor
	if st := w.BuildMinimal("host", 1); st != api.OK {
		t.Fatal(st)
	}
	host := w.IDs["host"]
	xtid, _ := w.MetaPage("spare")
	if st := w.Call(api.CallCreateThread, xtid); st != api.OK {
		t.Fatalf("create thread: %v", st)
	}
	installPreemption(t, mon, sm.LockThread, xtid, func() {
		if st := w.Call(api.CallDeleteThread, xtid); st != api.OK {
			t.Fatalf("racing delete: %v", st)
		}
	})
	st := w.Call(api.CallAssignThread, host, xtid)
	mon.SetLockFaultHook(nil)
	if st == api.OK {
		t.Fatal("assign_thread offered a deleted thread")
	}
	if err := mon.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := w.Teardown(); err != nil {
		t.Fatal(err)
	}
}

// TestMCRegression_OrphanedOfferedThread pins the offered-thread leak:
// deleting an enclave that had been offered a thread (not yet
// accepted) must revert the offer, or the thread stays Offered to a
// dead eid — and a future enclave recreated under that id could
// accept_thread a thread its tenant never offered it.
func TestMCRegression_OrphanedOfferedThread(t *testing.T) {
	w := newWorld(t, 5)
	mon := w.Sys.Monitor
	if st := w.BuildMinimal("host", 1); st != api.OK {
		t.Fatal(st)
	}
	host := w.IDs["host"]
	xtid, _ := w.MetaPage("spare")
	if st := w.Call(api.CallCreateThread, xtid); st != api.OK {
		t.Fatalf("create thread: %v", st)
	}
	if st := w.Call(api.CallAssignThread, host, xtid); st != api.OK {
		t.Fatalf("offer: %v", st)
	}
	if st := w.Call(api.CallDeleteEnclave, host); st != api.OK {
		t.Fatalf("delete with pending offer: %v", st)
	}
	if err := mon.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	shot := mon.CaptureState().Threads[xtid]
	if shot.Owner != 0 {
		t.Fatalf("thread still owned by dead enclave %#x", shot.Owner)
	}
	if err := w.Teardown(); err != nil {
		t.Fatal(err)
	}
}
