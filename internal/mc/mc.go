package mc

import (
	"fmt"

	"sanctorum/internal/sm"
	"sanctorum/internal/sm/api"
)

// Step is one scripted action an actor performs against the monitor.
// The zero Multi value declares the step a single monitor transaction:
// any non-OK return must leave the captured state bit-identical (the
// ABI's error-leaves-state-untouched promise), which the runner checks
// with a before/after capture. Steps that perform several transactions
// or run enclave code on a core set Multi and forgo that check (each
// inner transaction is still covered by the post-step invariant pass).
type Step struct {
	Name  string
	Multi bool
	Run   func(w *World) api.Error
}

// Actor is one caller domain's ordered step list. Steps execute in
// order; the schedule decides how actors interleave.
type Actor struct {
	Name  string
	Steps []Step
}

// Script is a set of actors built against one world. Build functions
// perform their setup directly on the world before returning the
// script.
type Script struct {
	Name   string
	Actors []Actor
}

// Builder constructs a script against a fresh world, performing any
// setup (enclave builds, ring creation, id allocation) on the way.
type Builder func(w *World) (*Script, error)

// Counts returns the per-actor step multiplicities, the input to the
// schedule enumerators.
func (s *Script) Counts() []int {
	counts := make([]int, len(s.Actors))
	for i, a := range s.Actors {
		counts[i] = len(a.Steps)
	}
	return counts
}

// Stats summarizes one schedule run.
type Stats struct {
	Steps   int // step executions, including retried ones
	Retries int // executions that returned ErrRetry (cursor held)
	Faults  int // executions with a forced lock fault injected
	Errors  int // executions refused with a non-retry error
}

func (st *Stats) add(o Stats) {
	st.Steps += o.Steps
	st.Retries += o.Retries
	st.Faults += o.Faults
	st.Errors += o.Errors
}

// Run executes the script's steps in the order the schedule dictates:
// each entry names an actor, which runs its next step. A step
// returning ErrRetry is re-injected — the cursor does not advance, so
// the same actor retries the same step at its next turn, exactly the
// §V-A caller discipline. After the schedule is consumed, remaining
// steps (left behind by retries) drain round-robin under a livelock
// bound: a retry storm that fails to converge within 64 attempts per
// step fails the run.
//
// inject, when non-nil, is consulted before each execution; true arms
// the monitor's fault hook to spuriously fail the step's first
// transaction-lock acquisition. Run owns the hook for the duration —
// callers must not install their own concurrently.
//
// After every execution the runner checks the full invariant suite,
// and for non-Multi steps that returned an error, that the monitor
// state is bit-identical to the pre-step capture.
func Run(w *World, script *Script, schedule []int, inject func(step int) bool) (*Stats, error) {
	mon := w.Sys.Monitor
	cursors := make([]int, len(script.Actors))
	stats := &Stats{}
	defer mon.SetLockFaultHook(nil)

	execute := func(ai int) error {
		a := &script.Actors[ai]
		if cursors[ai] >= len(a.Steps) {
			return nil
		}
		step := a.Steps[cursors[ai]]
		var before *sm.StateSnapshot
		if !step.Multi {
			before = mon.CaptureState()
		}
		injected := inject != nil && inject(stats.Steps)
		if injected {
			stats.Faults++
			fired := false
			mon.SetLockFaultHook(func(sm.LockPoint) bool {
				if fired {
					return false
				}
				fired = true
				return true
			})
		}
		status := step.Run(w)
		if injected {
			mon.SetLockFaultHook(nil)
		}
		stats.Steps++
		if status == api.ErrRetry {
			stats.Retries++
		} else {
			if status != api.OK {
				stats.Errors++
			}
			cursors[ai]++
		}
		if status != api.OK && !step.Multi {
			if after := mon.CaptureState(); !before.Equal(after) {
				return fmt.Errorf("mc: %s/%s refused with %v but mutated state: %s",
					a.Name, step.Name, status, before.Diff(after))
			}
		}
		if err := mon.CheckInvariants(); err != nil {
			return fmt.Errorf("mc: after %s/%s (%v): %w", a.Name, step.Name, status, err)
		}
		return nil
	}

	total := 0
	for _, a := range script.Actors {
		total += len(a.Steps)
	}
	for _, ai := range schedule {
		if ai < 0 || ai >= len(script.Actors) {
			return stats, fmt.Errorf("mc: schedule names actor %d of %d", ai, len(script.Actors))
		}
		if err := execute(ai); err != nil {
			return stats, err
		}
	}
	budget := 64*total + 256
	for {
		remaining := false
		for ai := range script.Actors {
			if cursors[ai] < len(script.Actors[ai].Steps) {
				remaining = true
				if budget--; budget < 0 {
					return stats, fmt.Errorf(
						"mc: livelock: %d steps (%d retries) without draining the script",
						stats.Steps, stats.Retries)
				}
				if err := execute(ai); err != nil {
					return stats, err
				}
			}
		}
		if !remaining {
			return stats, nil
		}
	}
}
