package mc

import (
	"fmt"

	"sanctorum/internal/enclaves"
	"sanctorum/internal/sm/api"
)

// Region plan shared by the canonical scripts (kernel is region 0, the
// monitor holds the top two of the world's 24).
const (
	rgnTemplate = 1 // exhaustive template / service worker (with rgnWorker2)
	rgnWorker2  = 2
	rgnTenant   = 3
	rgnClone    = 4
	rgnChurn    = 5 // block/clean churn target
)

// Lifecycle returns the exhaustive-mode builder: three caller domains
// with stepsPerActor steps each over one shared template enclave —
// tenant lifecycle, snapshot/clone forking, and ring messaging. With 2
// steps per actor the 6-step schedule space has 90 interleavings; with
// 3, the 9-step space has 1680 (the nightly depth).
func Lifecycle(stepsPerActor int) Builder {
	return func(w *World) (*Script, error) {
		if st := w.BuildMinimal("template", rgnTemplate); st != api.OK {
			return nil, fmt.Errorf("mc: building template: %v", st)
		}
		tmpl := w.IDs["template"]
		snapID, err := w.MetaPage("snap")
		if err != nil {
			return nil, err
		}
		cloneEID, err := w.MetaPage("clone")
		if err != nil {
			return nil, err
		}
		cloneTid, err := w.MetaPage("clone-tid")
		if err != nil {
			return nil, err
		}
		ringID, err := w.MetaPage("ring")
		if err != nil {
			return nil, err
		}
		stage, err := w.Sys.OS.StagePage()
		if err != nil {
			return nil, err
		}
		if err := w.Sys.OS.WriteOwned(stage, []byte("mc lifecycle ping")); err != nil {
			return nil, err
		}

		tenant := Actor{Name: "tenant", Steps: []Step{
			{Name: "create", Multi: true, Run: func(w *World) api.Error {
				return w.BuildMinimal("tenant", rgnTenant)
			}},
			{Name: "delete", Run: func(w *World) api.Error {
				return w.Call(api.CallDeleteEnclave, w.IDs["tenant"])
			}},
			{Name: "grant-pending", Run: func(w *World) api.Error {
				return w.Call(api.CallGrantRegion, rgnChurn, tmpl)
			}},
		}}
		forker := Actor{Name: "forker", Steps: []Step{
			{Name: "snapshot", Run: func(w *World) api.Error {
				return w.Call(api.CallSnapshotEnclave, tmpl, snapID)
			}},
			{Name: "clone", Multi: true, Run: func(w *World) api.Error {
				if st := w.Retry(api.CallCreateEnclave, cloneEID, evBase, evMask); st != api.OK {
					return st
				}
				if st := w.Retry(api.CallGrantRegion, rgnClone, cloneEID); st != api.OK {
					return st
				}
				return w.Retry(api.CallCloneEnclave, cloneEID, snapID, cloneTid, 0)
			}},
			{Name: "release-snapshot", Run: func(w *World) api.Error {
				return w.Call(api.CallReleaseSnapshot, snapID)
			}},
		}}
		messenger := Actor{Name: "messenger", Steps: []Step{
			{Name: "ring-create", Run: func(w *World) api.Error {
				return w.Call(api.CallRingCreate, ringID, api.DomainOS, tmpl, 8)
			}},
			{Name: "ring-send", Run: func(w *World) api.Error {
				return w.Call(api.CallRingSend, ringID, stage, 1)
			}},
			{Name: "ring-destroy", Run: func(w *World) api.Error {
				return w.Call(api.CallRingDestroy, ringID)
			}},
		}}

		s := &Script{Name: "lifecycle", Actors: []Actor{tenant, forker, messenger}}
		for i := range s.Actors {
			if stepsPerActor < 1 || stepsPerActor > len(s.Actors[i].Steps) {
				return nil, fmt.Errorf("mc: lifecycle depth %d outside 1..%d",
					stepsPerActor, len(s.Actors[i].Steps))
			}
			s.Actors[i].Steps = s.Actors[i].Steps[:stepsPerActor]
		}
		return s, nil
	}
}

// Service is the random-mode builder: a full create / snapshot / clone
// / ring / park / delete script. A real ring-echo worker enclave runs
// on core 0 and parks on its request ring; the service actor sends,
// resumes, receives, and finally destroys the rings out from under the
// parked worker, while a tenant actor runs a snapshot/clone lifecycle
// and a plumber actor churns regions and thread offers against the
// worker. Every interleaving of the three domains must keep the
// invariant suite green and tear down to zero.
func Service(w *World) (*Script, error) {
	l := enclaves.DefaultLayout()
	spec, err := enclaves.Spec(l, enclaves.RingEchoServer(l), nil,
		[]int{rgnTemplate, rgnWorker2}, nil)
	if err != nil {
		return nil, err
	}
	built, err := w.Sys.BuildEnclave(spec)
	if err != nil {
		return nil, err
	}
	worker, wtid := built.EID, built.TIDs[0]
	w.IDs["worker"], w.IDs["worker-tid"] = worker, wtid
	reqRing, err := w.MetaPage("req-ring")
	if err != nil {
		return nil, err
	}
	respRing, err := w.MetaPage("resp-ring")
	if err != nil {
		return nil, err
	}
	if st := w.Call(api.CallRingCreate, reqRing, api.DomainOS, worker, 8); st != api.OK {
		return nil, fmt.Errorf("mc: creating request ring: %v", st)
	}
	if st := w.Call(api.CallRingCreate, respRing, worker, api.DomainOS, 8); st != api.OK {
		return nil, fmt.Errorf("mc: creating response ring: %v", st)
	}
	snapID, err := w.MetaPage("snap")
	if err != nil {
		return nil, err
	}
	cloneEID, err := w.MetaPage("clone")
	if err != nil {
		return nil, err
	}
	cloneTid, err := w.MetaPage("clone-tid")
	if err != nil {
		return nil, err
	}
	xtid, err := w.MetaPage("spare-thread")
	if err != nil {
		return nil, err
	}
	stage, err := w.Sys.OS.StagePage()
	if err != nil {
		return nil, err
	}
	if err := w.Sys.OS.WriteOwned(stage, []byte("mc service request")); err != nil {
		return nil, err
	}
	out, err := w.Sys.OS.AllocPagePA()
	if err != nil {
		return nil, err
	}

	// runWorker enters the worker on core 0 and runs until the monitor
	// hands the core back (park, exit, or preemption), absorbing
	// bounded enter-contention like any OS scheduler would.
	runWorker := func(w *World) api.Error {
		st := api.ErrRetry
		for attempt := 0; attempt < 128 && st == api.ErrRetry; attempt++ {
			st = w.Sys.OS.EnterEnclave(0, worker, wtid)
		}
		if st != api.OK {
			return st
		}
		w.Sys.Machine.Run(0, 2_000_000)
		return api.OK
	}

	service := Actor{Name: "service", Steps: []Step{
		{Name: "park", Multi: true, Run: runWorker},
		{Name: "send", Run: func(w *World) api.Error {
			return w.Call(api.CallRingSend, reqRing, stage, 1)
		}},
		{Name: "resume", Multi: true, Run: runWorker},
		{Name: "recv", Run: func(w *World) api.Error {
			return w.Call(api.CallRingRecv, respRing, out, 8)
		}},
		{Name: "destroy-req", Run: func(w *World) api.Error {
			return w.Call(api.CallRingDestroy, reqRing)
		}},
		{Name: "shutdown", Multi: true, Run: runWorker},
		{Name: "destroy-resp", Run: func(w *World) api.Error {
			return w.Call(api.CallRingDestroy, respRing)
		}},
	}}
	tenant := Actor{Name: "tenant", Steps: []Step{
		{Name: "build", Multi: true, Run: func(w *World) api.Error {
			return w.BuildMinimal("t2", rgnTenant)
		}},
		{Name: "snapshot", Run: func(w *World) api.Error {
			return w.Call(api.CallSnapshotEnclave, w.IDs["t2"], snapID)
		}},
		{Name: "clone", Multi: true, Run: func(w *World) api.Error {
			if st := w.Retry(api.CallCreateEnclave, cloneEID, evBase, evMask); st != api.OK {
				return st
			}
			if st := w.Retry(api.CallGrantRegion, rgnClone, cloneEID); st != api.OK {
				return st
			}
			return w.Retry(api.CallCloneEnclave, cloneEID, snapID, cloneTid, 0)
		}},
		{Name: "delete-clone", Run: func(w *World) api.Error {
			return w.Call(api.CallDeleteEnclave, cloneEID)
		}},
		{Name: "release-snapshot", Run: func(w *World) api.Error {
			return w.Call(api.CallReleaseSnapshot, snapID)
		}},
		{Name: "delete-template", Run: func(w *World) api.Error {
			return w.Call(api.CallDeleteEnclave, w.IDs["t2"])
		}},
	}}
	plumber := Actor{Name: "plumber", Steps: []Step{
		{Name: "block", Run: func(w *World) api.Error {
			return w.Call(api.CallBlockRegion, rgnChurn)
		}},
		{Name: "clean", Run: func(w *World) api.Error {
			return w.Call(api.CallCleanRegion, rgnChurn)
		}},
		{Name: "regrant", Run: func(w *World) api.Error {
			// Lands while t2 is loading (direct), initialized
			// (pending), or deleted (refused) — schedule-dependent.
			return w.Call(api.CallGrantRegion, rgnChurn, w.IDs["t2"])
		}},
		{Name: "create-thread", Run: func(w *World) api.Error {
			return w.Call(api.CallCreateThread, xtid)
		}},
		{Name: "offer-thread", Run: func(w *World) api.Error {
			return w.Call(api.CallAssignThread, worker, xtid)
		}},
		{Name: "retract-thread", Run: func(w *World) api.Error {
			return w.Call(api.CallUnassignThread, xtid)
		}},
		{Name: "delete-thread", Run: func(w *World) api.Error {
			return w.Call(api.CallDeleteThread, xtid)
		}},
	}}
	return &Script{Name: "service", Actors: []Actor{service, tenant, plumber}}, nil
}
