package adversary

import (
	"encoding/binary"
	"fmt"

	"sanctorum"
	"sanctorum/internal/enclaves"
	"sanctorum/internal/hw/mem"
	"sanctorum/internal/sm/api"
)

// BulkBattery attacks the zero-copy bulk data plane (monitor calls
// 0x50–0x54, DESIGN.md §14): forged grant names, malformed buffer
// shapes, scatter-gather descriptors reaching outside the grant,
// traffic from non-endpoints, revocation races against in-flight
// descriptors, and lifetime attacks on the page pins that anchor the
// whole design. Every attack must be refused with the documented
// api.Error sentinel; a non-empty return lists the attacks that
// succeeded. Like the other batteries, the adversary speaks raw
// api.Request values into Monitor.Dispatch.
func BulkBattery(sys *sanctorum.System) ([]string, error) {
	var wins []string
	note := func(format string, args ...any) {
		wins = append(wins, fmt.Sprintf(format, args...))
	}
	call := func(c api.Call, args ...uint64) api.Error {
		return sys.Monitor.Dispatch(api.OSRequest(c, args...)).Status
	}
	expect := func(name string, want api.Error, c api.Call, args ...uint64) {
		if st := call(c, args...); st != want {
			note("%s: %v, want %v", name, st, want)
		}
	}
	sgMsg := func(descs ...[2]uint64) []byte {
		d := api.EncodeBulkDescs(descs...)
		return d[:]
	}

	l := enclaves.DefaultLayout()
	regions := sys.OS.FreeRegions()
	if len(regions) < 2 {
		return nil, fmt.Errorf("adversary: need two free regions")
	}
	spec, err := enclaves.Spec(l, enclaves.RingEchoServer(l), nil, regions[:1], nil)
	if err != nil {
		return nil, err
	}
	worker, err := sys.BuildEnclave(spec)
	if err != nil {
		return nil, err
	}
	stagePA, err := sys.OS.AllocPagePA()
	if err != nil {
		return nil, err
	}
	bufPA, err := sys.OS.AllocPagePA()
	if err != nil {
		return nil, err
	}
	bufPA2, err := sys.OS.AllocPagePA()
	if err != nil {
		return nil, err
	}

	// 1. Grant names must be free SM metadata pages, like every other
	// monitor object id.
	expect("grant in OS-owned memory", api.ErrInvalidValue,
		api.CallBulkGrant, stagePA, bufPA, 1, api.DomainOS, worker.EID)
	expect("grant over an enclave id", api.ErrInvalidValue,
		api.CallBulkGrant, worker.EID, bufPA, 1, api.DomainOS, worker.EID)
	expect("grant over a thread id", api.ErrInvalidValue,
		api.CallBulkGrant, worker.TIDs[0], bufPA, 1, api.DomainOS, worker.EID)

	// 2. Buffer shape: page count bounds, alignment, physical
	// wraparound, and the buffer must be OS-owned memory — a grant over
	// enclave memory would hand the OS a window into enclave secrets.
	grantID, err := sys.OS.AllocMetaPage()
	if err != nil {
		return nil, err
	}
	expect("zero-page grant", api.ErrInvalidValue,
		api.CallBulkGrant, grantID, bufPA, 0, api.DomainOS, worker.EID)
	expect("oversized grant", api.ErrInvalidValue,
		api.CallBulkGrant, grantID, bufPA, api.BulkMaxPages+1, api.DomainOS, worker.EID)
	expect("unaligned buffer base", api.ErrInvalidValue,
		api.CallBulkGrant, grantID, bufPA|8, 1, api.DomainOS, worker.EID)
	expect("buffer wrapping the physical address space", api.ErrInvalidValue,
		api.CallBulkGrant, grantID, ^uint64(mem.PageMask), 1, api.DomainOS, worker.EID)
	expect("buffer over enclave memory", api.ErrInvalidValue,
		api.CallBulkGrant, grantID, sys.Machine.DRAM.Base(regions[0]), 1, api.DomainOS, worker.EID)
	expect("grant produced by the SM identity", api.ErrInvalidValue,
		api.CallBulkGrant, grantID, bufPA, 1, api.DomainSM, worker.EID)
	expect("grant consumed by a junk eid", api.ErrInvalidValue,
		api.CallBulkGrant, grantID, bufPA, 1, api.DomainOS, 0xDEAD000)

	// 3. Forged enclave callers are refused at the dispatch layer for
	// bulk calls exactly as for every other call.
	for _, c := range []api.Call{api.CallBulkGrant, api.CallBulkMap,
		api.CallBulkRevoke, api.CallBulkSend, api.CallBulkRecv} {
		req := api.Request{Caller: worker.EID, Call: c, Args: [6]uint64{grantID, stagePA, 1, grantID}}
		if resp := sys.Monitor.Dispatch(req); resp.Status != api.ErrUnauthorized {
			note("forged enclave caller for bulk call %#x answered %v", uint64(c), resp.Status)
		}
	}
	// 4. bulk_map is the enclave's accept half of the handshake; the OS
	// has no trap context and maps its side through its own tables.
	expect("OS calling bulk_map", api.ErrUnauthorized,
		api.CallBulkMap, grantID, 0x5000_1000)

	// The legitimate OS↔OS grant and ring the descriptor attacks
	// target, plus a worker↔worker grant the OS is not an endpoint of.
	if st := call(api.CallBulkGrant, grantID, bufPA, 1, api.DomainOS, api.DomainOS); st != api.OK {
		return nil, fmt.Errorf("adversary: benign bulk_grant: %v", st)
	}
	ringID, err := sys.OS.AllocMetaPage()
	if err != nil {
		return nil, err
	}
	if st := call(api.CallRingCreate, ringID, api.DomainOS, api.DomainOS, 4); st != api.OK {
		return nil, fmt.Errorf("adversary: benign ring_create: %v", st)
	}
	grant2, err := sys.OS.AllocMetaPage()
	if err != nil {
		return nil, err
	}
	if st := call(api.CallBulkGrant, grant2, bufPA2, 1, worker.EID, worker.EID); st != api.OK {
		return nil, fmt.Errorf("adversary: benign worker grant: %v", st)
	}

	// 5. Descriptor validation: every malformed message must be refused
	// at send time, before anything is published to the ring.
	badTag := sgMsg([2]uint64{0, 64})
	badTag[0] ^= 0xFF
	zeroDescs := sgMsg([2]uint64{0, 64})
	binary.LittleEndian.PutUint64(zeroDescs[8:], 0)
	manyDescs := sgMsg([2]uint64{0, 64})
	binary.LittleEndian.PutUint64(manyDescs[8:], api.BulkMaxDescs+1)
	for _, atk := range []struct {
		name string
		msg  []byte
	}{
		{"descriptor message without the bulk tag", badTag},
		{"descriptor message with zero descriptors", zeroDescs},
		{"descriptor message past the descriptor bound", manyDescs},
		{"zero-length descriptor", sgMsg([2]uint64{0, 0})},
		{"descriptor past the grant bounds", sgMsg([2]uint64{4000, 200})},
		{"descriptor wrapping the address space", sgMsg([2]uint64{^uint64(0) - 255, 512})},
		{"overlapping descriptors", sgMsg([2]uint64{0, 16}, [2]uint64{8, 16})},
	} {
		if err := sys.OS.WriteOwned(stagePA, atk.msg); err != nil {
			return nil, err
		}
		expect(atk.name, api.ErrInvalidValue, api.CallBulkSend, ringID, stagePA, 1, grantID)
	}
	valid := sgMsg([2]uint64{0, 4096})
	if err := sys.OS.WriteOwned(stagePA, valid); err != nil {
		return nil, err
	}
	// 6. Identity and argument checks around an otherwise-valid send.
	expect("bulk send naming an unknown grant", api.ErrInvalidValue,
		api.CallBulkSend, ringID, stagePA, 1, 0x1234)
	expect("bulk send on a grant the OS is no endpoint of", api.ErrUnauthorized,
		api.CallBulkSend, ringID, stagePA, 1, grant2)
	expect("bulk recv on a grant the OS is no endpoint of", api.ErrUnauthorized,
		api.CallBulkRecv, ringID, stagePA, 1, grant2)
	expect("bulk send past the batch bound", api.ErrInvalidValue,
		api.CallBulkSend, ringID, stagePA, api.RingMaxBatch+1, grantID)
	expect("bulk send sourcing enclave memory", api.ErrInvalidValue,
		api.CallBulkSend, ringID, sys.Machine.DRAM.Base(regions[0]), 1, grantID)

	// 7. In-flight pins: with a descriptor queued, a plain recv must
	// not drain it (it would strand the pin), a recv into enclave
	// memory must fail without consuming it, and revoke must refuse —
	// in-flight data keeps the buffer alive.
	if st := call(api.CallBulkSend, ringID, stagePA, 1, grantID); st != api.OK {
		return nil, fmt.Errorf("adversary: benign bulk_send: %v", st)
	}
	expect("plain recv draining a descriptor head", api.ErrInvalidValue,
		api.CallRingRecv, ringID, stagePA, 1)
	expect("bulk recv into enclave memory", api.ErrInvalidValue,
		api.CallBulkRecv, ringID, sys.Machine.DRAM.Base(regions[0]), 1, grantID)
	expect("revoke with a descriptor in flight", api.ErrInvalidState,
		api.CallBulkRevoke, grantID)
	if st := call(api.CallBulkRecv, ringID, stagePA, 1, grantID); st != api.OK {
		return nil, fmt.Errorf("adversary: benign bulk_recv: %v", st)
	}
	// 8. Drained, the revoke succeeds — and the freed id is dead: every
	// use after revoke must be refused.
	if st := call(api.CallBulkRevoke, grantID); st != api.OK {
		return nil, fmt.Errorf("adversary: benign bulk_revoke: %v", st)
	}
	if err := sys.OS.WriteOwned(stagePA, valid); err != nil {
		return nil, err
	}
	expect("send on a revoked grant", api.ErrInvalidValue,
		api.CallBulkSend, ringID, stagePA, 1, grantID)
	expect("recv on a revoked grant", api.ErrInvalidValue,
		api.CallBulkRecv, ringID, stagePA, 1, grantID)
	expect("double revoke", api.ErrInvalidValue, api.CallBulkRevoke, grantID)

	// 9. The page pins are the ground truth: a region holding granted
	// pages can be blocked, but clean_region must refuse to scrub it
	// until the grant dies — the scrubbed region could otherwise reach
	// a new protection domain while a data plane still points at it.
	pinR := uint64(regions[1])
	grant3, err := sys.OS.AllocMetaPage()
	if err != nil {
		return nil, err
	}
	if st := call(api.CallBulkGrant, grant3, sys.Machine.DRAM.Base(regions[1]), 1,
		api.DomainOS, api.DomainOS); st != api.OK {
		return nil, fmt.Errorf("adversary: benign pin grant: %v", st)
	}
	if st := call(api.CallBlockRegion, pinR); st != api.OK {
		return nil, fmt.Errorf("adversary: blocking pinned region: %v", st)
	}
	expect("scrubbing a region with granted pages", api.ErrInvalidState,
		api.CallCleanRegion, pinR)
	if st := call(api.CallBulkRevoke, grant3); st != api.OK {
		return nil, fmt.Errorf("adversary: revoking pin grant: %v", st)
	}
	if st := call(api.CallCleanRegion, pinR); st != api.OK {
		return nil, fmt.Errorf("adversary: cleaning unpinned region: %v", st)
	}
	if st := call(api.CallGrantRegion, pinR, api.DomainOS); st != api.OK {
		return nil, fmt.Errorf("adversary: reclaiming cleaned region: %v", st)
	}

	// 10. Deleting an enclave that is still a grant endpoint is refused
	// — a freed eid could otherwise be recreated into the buffers of
	// the previous tenant.
	expect("delete worker while a grant endpoint", api.ErrInvalidState,
		api.CallDeleteEnclave, worker.EID)
	if st := call(api.CallBulkRevoke, grant2); st != api.OK {
		return nil, fmt.Errorf("adversary: revoking worker grant: %v", st)
	}

	// 11. Teardown: with every grant revoked, deletion and region
	// reclamation work normally.
	if st := call(api.CallRingDestroy, ringID); st != api.OK {
		return nil, fmt.Errorf("adversary: destroying ring: %v", st)
	}
	if st := call(api.CallDeleteEnclave, worker.EID); st != api.OK {
		return nil, fmt.Errorf("adversary: deleting worker: %v", st)
	}
	for _, tid := range worker.TIDs {
		if st := call(api.CallDeleteThread, tid); st != api.OK {
			return nil, fmt.Errorf("adversary: deleting worker thread: %v", st)
		}
	}
	if st := call(api.CallCleanRegion, uint64(regions[0])); st != api.OK {
		return nil, fmt.Errorf("adversary: cleaning worker region: %v", st)
	}
	return wins, nil
}
