package adversary

import (
	"encoding/binary"
	"fmt"

	"sanctorum"
	"sanctorum/internal/enclaves"
	"sanctorum/internal/sm/api"
)

// RingBattery attacks the mailbox-ring subsystem (monitor calls
// 0x40–0x45, DESIGN.md §9): forged and cross-domain ring names,
// sends and receives from the wrong protection domain, wake spoofing,
// overflow, and host-side attempts to forge the sender stamp. Every
// attack must be refused with the documented api.Error sentinel; a
// non-empty return lists the attacks that succeeded. Like the other
// batteries, the adversary speaks raw api.Request values into
// Monitor.Dispatch — a malicious kernel does not use the polite
// client.
func RingBattery(sys *sanctorum.System) ([]string, error) {
	var wins []string
	note := func(format string, args ...any) {
		wins = append(wins, fmt.Sprintf(format, args...))
	}
	call := func(c api.Call, args ...uint64) api.Error {
		return sys.Monitor.Dispatch(api.OSRequest(c, args...)).Status
	}
	expect := func(name string, want api.Error, c api.Call, args ...uint64) {
		if st := call(c, args...); st != want {
			note("%s: %v, want %v", name, st, want)
		}
	}

	l := enclaves.DefaultLayout()
	regions := sys.OS.FreeRegions()
	if len(regions) < 1 {
		return nil, fmt.Errorf("adversary: need a free region")
	}
	spec, err := enclaves.Spec(l, enclaves.RingEchoServer(l), nil, regions[:1], nil)
	if err != nil {
		return nil, err
	}
	worker, err := sys.BuildEnclave(spec)
	if err != nil {
		return nil, err
	}
	stagePA, err := sys.OS.AllocPagePA()
	if err != nil {
		return nil, err
	}

	// 1. Ring names must be free SM metadata pages.
	expect("ring in OS-owned memory", api.ErrInvalidValue,
		api.CallRingCreate, stagePA, api.DomainOS, worker.EID, 8)
	expect("ring over an enclave id", api.ErrInvalidValue,
		api.CallRingCreate, worker.EID, api.DomainOS, worker.EID, 8)
	expect("ring over a thread id", api.ErrInvalidValue,
		api.CallRingCreate, worker.TIDs[0], api.DomainOS, worker.EID, 8)
	// 2. Endpoints must be live domains; the reserved SM identity and
	// junk eids are refused.
	ringID, err := sys.OS.AllocMetaPage()
	if err != nil {
		return nil, err
	}
	expect("ring produced by the SM identity", api.ErrInvalidValue,
		api.CallRingCreate, ringID, api.DomainSM, worker.EID, 8)
	expect("ring consumed by a junk eid", api.ErrInvalidValue,
		api.CallRingCreate, ringID, api.DomainOS, 0xDEAD000, 8)
	// 3. Capacity bounds.
	expect("zero-capacity ring", api.ErrInvalidValue,
		api.CallRingCreate, ringID, api.DomainOS, worker.EID, 0)
	expect("oversized ring", api.ErrInvalidValue,
		api.CallRingCreate, ringID, api.DomainOS, worker.EID, api.RingMaxCapacity+1)

	// The legitimate ring pair the remaining attacks target.
	if st := call(api.CallRingCreate, ringID, api.DomainOS, worker.EID, 4); st != api.OK {
		return nil, fmt.Errorf("adversary: benign ring_create: %v", st)
	}
	respRing, err := sys.OS.AllocMetaPage()
	if err != nil {
		return nil, err
	}
	if st := call(api.CallRingCreate, respRing, worker.EID, api.DomainOS, 4); st != api.OK {
		return nil, fmt.Errorf("adversary: benign response ring: %v", st)
	}

	// 4. Cross-domain traffic: the OS is neither the consumer of the
	// request ring nor the producer of the response ring.
	expect("cross-domain recv (OS drains the enclave's ring)", api.ErrUnauthorized,
		api.CallRingRecv, ringID, stagePA, 1)
	expect("cross-domain send (OS forges an enclave response)", api.ErrUnauthorized,
		api.CallRingSend, respRing, stagePA, 1)
	// 5. Wake spoofing: only the producer may wake the consumer.
	expect("wake-spoofing the request ring's consumer", api.ErrUnauthorized,
		api.CallRingWake, respRing)
	// 6. Forged enclave callers are refused at the dispatch layer for
	// ring calls exactly as for every other call.
	for _, c := range []api.Call{api.CallRingSend, api.CallRingRecv,
		api.CallRingPark, api.CallRingWake, api.CallRingCreate, api.CallRingDestroy} {
		req := api.Request{Caller: worker.EID, Call: c, Args: [6]uint64{ringID, stagePA, 1}}
		if resp := sys.Monitor.Dispatch(req); resp.Status != api.ErrUnauthorized {
			note("forged enclave caller for ring call %#x answered %v", uint64(c), resp.Status)
		}
	}
	// 7. Overflow: fill to capacity, then the next send must refuse —
	// and leave the queued contents untouched.
	msg := make([]byte, api.RingMsgSize)
	for i := 0; i < 4; i++ {
		msg[0] = byte(0x10 + i)
		if err := sys.OS.WriteOwned(stagePA, msg); err != nil {
			return nil, err
		}
		if st := call(api.CallRingSend, ringID, stagePA, 1); st != api.OK {
			return nil, fmt.Errorf("adversary: fill send %d: %v", i, st)
		}
	}
	expect("send past ring capacity", api.ErrInvalidState,
		api.CallRingSend, ringID, stagePA, 1)
	// 8. Batch bounds are argument validation, not capacity.
	expect("send past the batch bound", api.ErrInvalidValue,
		api.CallRingSend, ringID, stagePA, api.RingMaxBatch+1)
	// 9. Send payloads must come from OS-owned memory — enclave and SM
	// memory are not readable through the OS convention.
	expect("send sourcing enclave memory", api.ErrInvalidValue,
		api.CallRingSend, respRing, sys.Machine.DRAM.Base(regions[0]), 1)

	// 10. The sender stamp is monitor-made: run the worker against the
	// full ring and verify every response record carries the worker's
	// measurement and eid, not anything the OS staged.
	results := sys.RunAll(sanctorum.SchedConfig{Mode: sanctorum.Deterministic},
		[]sanctorum.Task{{EID: worker.EID, TID: worker.TIDs[0], MaxSteps: 2_000_000}})
	if results[0].Err != nil || results[0].ExitValue != api.ParkedExitValue {
		return nil, fmt.Errorf("adversary: worker wave: err=%v a0=%#x",
			results[0].Err, results[0].ExitValue)
	}
	n, err := sys.OS.SM.RingRecv(respRing, stagePA, 4)
	if err != nil || n != 4 {
		return nil, fmt.Errorf("adversary: draining responses: n=%d err=%v", n, err)
	}
	records, err := sys.OS.ReadOwned(stagePA, n*api.RingRecordSize)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		rec := records[i*api.RingRecordSize : (i+1)*api.RingRecordSize]
		var meas [32]byte
		copy(meas[:], rec)
		if meas != worker.Measurement {
			note("response %d stamped with a measurement the worker does not have", i)
		}
		if sender := binary.LittleEndian.Uint64(rec[32:40]); sender != worker.EID {
			note("response %d stamped with sender %#x, want the worker", i, sender)
		}
	}

	// 11. Deleting an enclave that is still a ring endpoint is refused
	// — a freed eid could otherwise be recreated into the rings (and
	// the queued messages) of the previous tenant.
	expect("delete worker with live rings", api.ErrInvalidState,
		api.CallDeleteEnclave, worker.EID)

	// 12. Teardown: destroy wakes the parked worker into a failing park
	// (shutdown); proper deletion still works and the freed ids are
	// reusable.
	if st := call(api.CallRingDestroy, ringID); st != api.OK {
		return nil, fmt.Errorf("adversary: destroy request ring: %v", st)
	}
	if st := call(api.CallRingDestroy, respRing); st != api.OK {
		return nil, fmt.Errorf("adversary: destroy response ring: %v", st)
	}
	expect("double destroy", api.ErrInvalidValue, api.CallRingDestroy, ringID)
	results = sys.RunAll(sanctorum.SchedConfig{Mode: sanctorum.Deterministic},
		[]sanctorum.Task{{EID: worker.EID, TID: worker.TIDs[0], MaxSteps: 2_000_000}})
	if results[0].Err != nil || results[0].ExitValue != enclaves.WorkerExitStatus {
		note("worker did not exit cleanly after ring destruction: err=%v a0=%#x",
			results[0].Err, results[0].ExitValue)
	}
	if st := call(api.CallDeleteEnclave, worker.EID); st != api.OK {
		return nil, fmt.Errorf("adversary: deleting worker: %v", st)
	}
	for _, tid := range worker.TIDs {
		if st := call(api.CallDeleteThread, tid); st != api.OK {
			return nil, fmt.Errorf("adversary: deleting worker thread: %v", st)
		}
	}
	if st := call(api.CallCleanRegion, uint64(regions[0])); st != api.OK {
		return nil, fmt.Errorf("adversary: cleaning worker region: %v", st)
	}
	return wins, nil
}
