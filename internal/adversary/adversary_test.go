package adversary

import (
	"testing"

	"sanctorum"
)

func TestPrimeProbeRecoversSecretOnSharedLLC(t *testing.T) {
	// Keystone does not partition the LLC (§VII-B): the attack works.
	for _, secret := range []byte{1, 3, 7} {
		sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: sanctorum.Keystone})
		if err != nil {
			t.Fatal(err)
		}
		calib, calibRegion, _, err := BuildVictim(sys, 0)
		if err != nil {
			t.Fatal(err)
		}
		victim, victimRegion, arrayIdx, err := BuildVictim(sys, secret)
		if err != nil {
			t.Fatal(err)
		}
		pp, err := NewPrimeProbe(sys, victimRegion, arrayIdx,
			PrimeRegionsFor(sys, victimRegion, calibRegion))
		if err != nil {
			t.Fatal(err)
		}
		res, err := pp.Run(calib.EID, calib.TIDs[0], victim.EID, victim.TIDs[0])
		if err != nil {
			t.Fatal(err)
		}
		if res.Guess != secret {
			t.Errorf("secret %d: attacker guessed %d (deltas %v)", secret, res.Guess, res.Deltas)
		}
		if res.Strength < 50 {
			t.Errorf("secret %d: signal too weak (%d cycles)", secret, res.Strength)
		}
	}
}

func TestPrimeProbeDefeatedBySanctumPartitioning(t *testing.T) {
	// Sanctum's page-colored LLC gives each region disjoint sets
	// (§VII-A): the identical attack sees no victim-dependent signal.
	for _, secret := range []byte{1, 3, 7} {
		sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: sanctorum.Sanctum})
		if err != nil {
			t.Fatal(err)
		}
		calib, calibRegion, _, err := BuildVictim(sys, 0)
		if err != nil {
			t.Fatal(err)
		}
		victim, victimRegion, arrayIdx, err := BuildVictim(sys, secret)
		if err != nil {
			t.Fatal(err)
		}
		pp, err := NewPrimeProbe(sys, victimRegion, arrayIdx,
			PrimeRegionsFor(sys, victimRegion, calibRegion))
		if err != nil {
			t.Fatal(err)
		}
		res, err := pp.Run(calib.EID, calib.TIDs[0], victim.EID, victim.TIDs[0])
		if err != nil {
			t.Fatal(err)
		}
		if res.Strength > 16 {
			t.Errorf("secret %d: partitioned cache leaked signal %d (deltas %v)",
				secret, res.Strength, res.Deltas)
		}
	}
}

func TestMaliciousOSBattery(t *testing.T) {
	for _, kind := range []sanctorum.Kind{sanctorum.Sanctum, sanctorum.Keystone} {
		sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: kind})
		if err != nil {
			t.Fatal(err)
		}
		wins, err := MaliciousOSBattery(sys)
		if err != nil {
			t.Fatalf("%v: battery failed to run: %v", kind, err)
		}
		for _, w := range wins {
			t.Errorf("%v: adversary win: %s", kind, w)
		}
	}
}

func TestSnapshotBattery(t *testing.T) {
	// The snapshot/COW attacks are monitor-state-machine attacks plus
	// the physical COW backstop, so every platform — including the
	// baseline — must refuse all of them.
	for _, kind := range []sanctorum.Kind{sanctorum.Sanctum, sanctorum.Keystone, sanctorum.Baseline} {
		sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: kind})
		if err != nil {
			t.Fatal(err)
		}
		wins, err := SnapshotBattery(sys)
		if err != nil {
			t.Fatalf("%v: battery failed to run: %v", kind, err)
		}
		for _, w := range wins {
			t.Errorf("%v: adversary win: %s", kind, w)
		}
	}
}

func TestRingBattery(t *testing.T) {
	// The ring attacks are monitor-state-machine attacks (identity,
	// capacity, batch bounds, stamp forgery), so every platform —
	// including the baseline — must refuse all of them.
	for _, kind := range []sanctorum.Kind{sanctorum.Sanctum, sanctorum.Keystone, sanctorum.Baseline} {
		sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: kind})
		if err != nil {
			t.Fatal(err)
		}
		wins, err := RingBattery(sys)
		if err != nil {
			t.Fatalf("%v: battery failed to run: %v", kind, err)
		}
		for _, w := range wins {
			t.Errorf("%v: adversary win: %s", kind, w)
		}
	}
}

func TestBulkBattery(t *testing.T) {
	// The bulk-grant attacks are monitor-state-machine attacks (grant
	// identity, descriptor validation, in-flight pins, lifetime
	// guards), so every platform — including the baseline — must
	// refuse all of them.
	for _, kind := range []sanctorum.Kind{sanctorum.Sanctum, sanctorum.Keystone, sanctorum.Baseline} {
		sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: kind})
		if err != nil {
			t.Fatal(err)
		}
		wins, err := BulkBattery(sys)
		if err != nil {
			t.Fatalf("%v: battery failed to run: %v", kind, err)
		}
		for _, w := range wins {
			t.Errorf("%v: adversary win: %s", kind, w)
		}
	}
}

func TestFleetBattery(t *testing.T) {
	// The fleet channel attacks are protocol attacks — replay, identity
	// substitution, evidence forgery, binding splices — refused by
	// verification, not by memory isolation, so every platform
	// including the baseline must refuse all of them.
	for _, kind := range []sanctorum.Kind{sanctorum.Sanctum, sanctorum.Keystone, sanctorum.Baseline} {
		wins, err := FleetBattery(kind)
		if err != nil {
			t.Fatalf("%v: battery failed to run: %v", kind, err)
		}
		for _, w := range wins {
			t.Errorf("%v: adversary win: %s", kind, w)
		}
	}
}

func TestMaliciousOSBatteryOnBaseline(t *testing.T) {
	// The control: without an isolation primitive the adversary wins
	// the memory attacks (and only those — the monitor's state machine
	// still refuses the API abuses).
	sys, err := sanctorum.NewSystem(sanctorum.Options{Kind: sanctorum.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	wins, err := MaliciousOSBattery(sys)
	if err != nil {
		t.Fatalf("battery failed to run: %v", err)
	}
	if len(wins) == 0 {
		t.Fatal("baseline platform unexpectedly stopped the memory attacks")
	}
}
