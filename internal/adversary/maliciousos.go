package adversary

import (
	"fmt"

	"sanctorum"
	"sanctorum/internal/enclaves"
	"sanctorum/internal/hw/pt"
	"sanctorum/internal/isa"
	"sanctorum/internal/os"
	"sanctorum/internal/sm/api"
)

// MaliciousOSBattery drives the monitor with the API-abuse sequences an
// insidious privileged adversary would try (§IV), returning a
// description of every attack that *succeeded*. An empty slice means
// the monitor held the line. The battery builds one sacrificial enclave
// and leaves the system usable.
func MaliciousOSBattery(sys *sanctorum.System) ([]string, error) {
	var wins []string
	note := func(format string, args ...any) {
		wins = append(wins, fmt.Sprintf(format, args...))
	}

	l := enclaves.DefaultLayout()
	sharedPA, err := sys.SetupShared(l.SharedVA)
	if err != nil {
		return nil, err
	}
	regions := sys.OS.FreeRegions()
	if len(regions) < 2 {
		return nil, fmt.Errorf("adversary: need two free regions")
	}
	encRegion := regions[0]
	spec, err := enclaves.Spec(l, enclaves.Adder(l), []byte("top secret"),
		[]int{encRegion}, []os.SharedMapping{{VA: l.SharedVA, PA: sharedPA}})
	if err != nil {
		return nil, err
	}
	built, err := sys.BuildEnclave(spec)
	if err != nil {
		return nil, err
	}
	layout := sys.Machine.DRAM
	mon := sys.Monitor

	// 1. Read/write enclave memory from S-mode.
	core := sys.Machine.Cores[1]
	if _, err := core.LoadAs(isa.PrivS, layout.Base(encRegion), 8); err == nil {
		note("read enclave memory from S-mode")
	}
	if err := core.StoreAs(isa.PrivS, layout.Base(encRegion)+8, 8, 0xBAD); err == nil {
		note("wrote enclave memory from S-mode")
	}
	// 2. Read monitor metadata (it holds enclave measurements).
	if _, err := core.LoadAs(isa.PrivS, built.EID, 8); err == nil {
		note("read enclave metadata from S-mode")
	}
	// 3. DMA into and out of the enclave.
	if err := sys.Machine.DMATransfer(layout.Base(encRegion), sharedPA, 64); err == nil {
		note("DMA exfiltrated enclave memory")
	}
	if err := sys.Machine.DMATransfer(sharedPA, layout.Base(encRegion), 64); err == nil {
		note("DMA corrupted enclave memory")
	}
	// 4. Steal the enclave's region.
	if st := mon.GrantRegion(encRegion, api.DomainOS); st == api.OK {
		note("re-granted an enclave-owned region to the OS")
	}
	if st := mon.BlockRegion(encRegion); st == api.OK {
		note("blocked an enclave-owned region as the OS")
	}
	// 5. Clean a region that was never blocked (would zero live data
	// under the enclave).
	if st := mon.CleanRegion(encRegion); st == api.OK {
		note("cleaned an owned region in place")
	}
	// 6. Mutate a sealed enclave.
	if st := mon.LoadPage(built.EID, l.DataVA+0x1000, sharedPA, pt.R); st == api.OK {
		note("loaded a page into a sealed enclave")
	}
	if st := mon.LoadThread(built.EID, built.EID+0x1000, l.CodeVA, 0); st == api.OK {
		note("loaded a thread into a sealed enclave")
	}
	// 7. Forge enclave metadata in OS memory.
	if st := mon.CreateEnclave(sharedPA, l.EvBase, l.EvMask); st == api.OK {
		note("created enclave metadata in OS-owned memory")
	}
	// 8. Enter with a thread the enclave never accepted.
	rogueTID, err := sys.OS.AllocMetaPage()
	if err != nil {
		return nil, err
	}
	if st := mon.CreateThread(rogueTID); st != api.OK {
		return nil, fmt.Errorf("adversary: creating rogue thread: %v", st)
	}
	if st := mon.EnterEnclave(0, built.EID, rogueTID); st == api.OK {
		note("entered enclave with an unassigned thread")
	}
	// 9. Delete the enclave while a thread runs.
	if st := sys.OS.EnterEnclave(0, built.EID, built.TIDs[0]); st != api.OK {
		return nil, fmt.Errorf("adversary: benign enter failed: %v", st)
	}
	if st := mon.DeleteEnclave(built.EID); st == api.OK {
		note("deleted an enclave with a scheduled thread")
	}
	// Let it finish cleanly.
	sys.SharedWriteWord(sharedPA, enclaves.ShInput, 1)
	if _, err := sys.Machine.Run(0, 1_000_000); err != nil {
		return nil, err
	}
	// 10. Use enclave memory as a load_page source for a second enclave
	// (exfiltration via the loader).
	eid2, err := sys.OS.AllocMetaPage()
	if err != nil {
		return nil, err
	}
	if st := mon.CreateEnclave(eid2, l.EvBase, l.EvMask); st != api.OK {
		return nil, fmt.Errorf("adversary: second create failed: %v", st)
	}
	if st := mon.GrantRegion(regions[1], eid2); st != api.OK {
		return nil, fmt.Errorf("adversary: second grant failed: %v", st)
	}
	mon.AllocatePageTable(eid2, 0, 2)
	mon.AllocatePageTable(eid2, l.EvBase, 1)
	mon.AllocatePageTable(eid2, l.EvBase, 0)
	if st := mon.LoadPage(eid2, l.CodeVA, layout.Base(encRegion), pt.R); st == api.OK {
		note("loaded another enclave's memory as page contents")
	}
	// 11. Map another enclave's memory as a shared window.
	if st := mon.MapShared(eid2, 0x51000000, layout.Base(encRegion)); st == api.OK {
		note("mapped another enclave's memory as a shared window")
	}
	// 12. Proper teardown still works (sanity that the battery did not
	// wedge the monitor).
	if st := mon.DeleteEnclave(built.EID); st != api.OK {
		return nil, fmt.Errorf("adversary: benign delete failed: %v", st)
	}
	if st := mon.CleanRegion(encRegion); st != api.OK {
		return nil, fmt.Errorf("adversary: benign clean failed: %v", st)
	}
	// A cleaned region is not OS-accessible until re-granted (Fig 2's
	// available state); after the grant it must read back as zeros.
	if _, err := core.LoadAs(isa.PrivS, layout.Base(encRegion), 8); err == nil &&
		sys.Machine.Kind != 0 /* baseline cannot enforce this */ {
		note("available region readable before re-grant")
	}
	if st := mon.GrantRegion(encRegion, api.DomainOS); st != api.OK {
		return nil, fmt.Errorf("adversary: re-grant failed: %v", st)
	}
	if v, err := core.LoadAs(isa.PrivS, layout.Base(encRegion), 8); err != nil {
		return nil, fmt.Errorf("adversary: cleaned region unreadable: %v", err)
	} else if v != 0 {
		note("cleaned region still held enclave data")
	}
	return wins, nil
}
