package adversary

import (
	"errors"
	"fmt"

	"sanctorum"
	"sanctorum/internal/enclaves"
	"sanctorum/internal/hw/mem"
	"sanctorum/internal/hw/pt"
	"sanctorum/internal/isa"
	"sanctorum/internal/os"
	"sanctorum/internal/sm/api"
)

// MaliciousOSBattery drives the monitor with the API-abuse sequences an
// insidious privileged adversary would try (§IV), returning a
// description of every attack that *succeeded*. An empty slice means
// the monitor held the line. The battery builds one sacrificial enclave
// and leaves the system usable.
//
// The adversary speaks the unified call ABI directly — raw api.Request
// values into Monitor.Dispatch, skipping the well-behaved smcall client
// — because a malicious kernel is exactly the caller that will not use
// the polite wrappers. Every refusal therefore exercises the same
// dispatch-table authorization the benign path relies on.
func MaliciousOSBattery(sys *sanctorum.System) ([]string, error) {
	var wins []string
	note := func(format string, args ...any) {
		wins = append(wins, fmt.Sprintf(format, args...))
	}
	call := func(c api.Call, args ...uint64) api.Error {
		return sys.Monitor.Dispatch(api.OSRequest(c, args...)).Status
	}

	l := enclaves.DefaultLayout()
	sharedPA, err := sys.SetupShared(l.SharedVA)
	if err != nil {
		return nil, err
	}
	regions := sys.OS.FreeRegions()
	if len(regions) < 2 {
		return nil, fmt.Errorf("adversary: need two free regions")
	}
	encRegion := regions[0]
	spec, err := enclaves.Spec(l, enclaves.Adder(l), []byte("top secret"),
		[]int{encRegion}, []os.SharedMapping{{VA: l.SharedVA, PA: sharedPA}})
	if err != nil {
		return nil, err
	}
	built, err := sys.BuildEnclave(spec)
	if err != nil {
		return nil, err
	}
	layout := sys.Machine.DRAM

	// 1. Read/write enclave memory from S-mode.
	core := sys.Machine.Cores[1]
	if _, err := core.LoadAs(isa.PrivS, layout.Base(encRegion), 8); err == nil {
		note("read enclave memory from S-mode")
	}
	if err := core.StoreAs(isa.PrivS, layout.Base(encRegion)+8, 8, 0xBAD); err == nil {
		note("wrote enclave memory from S-mode")
	}
	// 2. Read monitor metadata (it holds enclave measurements).
	if _, err := core.LoadAs(isa.PrivS, built.EID, 8); err == nil {
		note("read enclave metadata from S-mode")
	}
	// 3. DMA into and out of the enclave.
	if err := sys.Machine.DMATransfer(layout.Base(encRegion), sharedPA, 64); err == nil {
		note("DMA exfiltrated enclave memory")
	}
	if err := sys.Machine.DMATransfer(sharedPA, layout.Base(encRegion), 64); err == nil {
		note("DMA corrupted enclave memory")
	}
	// 4. Steal the enclave's region.
	if st := call(api.CallGrantRegion, uint64(encRegion), api.DomainOS); st == api.OK {
		note("re-granted an enclave-owned region to the OS")
	}
	if st := call(api.CallBlockRegion, uint64(encRegion)); st == api.OK {
		note("blocked an enclave-owned region as the OS")
	}
	// 5. Clean a region that was never blocked (would zero live data
	// under the enclave).
	if st := call(api.CallCleanRegion, uint64(encRegion)); st == api.OK {
		note("cleaned an owned region in place")
	}
	// 6. Mutate a sealed enclave.
	if st := call(api.CallLoadPage, built.EID, l.DataVA+0x1000, sharedPA, pt.R); st == api.OK {
		note("loaded a page into a sealed enclave")
	}
	if st := call(api.CallLoadThread, built.EID, built.EID+0x1000, l.CodeVA, 0); st == api.OK {
		note("loaded a thread into a sealed enclave")
	}
	// 7. Forge enclave metadata in OS memory.
	if st := call(api.CallCreateEnclave, sharedPA, l.EvBase, l.EvMask); st == api.OK {
		note("created enclave metadata in OS-owned memory")
	}
	// 8. Enter with a thread the enclave never accepted.
	rogueTID, err := sys.OS.AllocMetaPage()
	if err != nil {
		return nil, err
	}
	if st := call(api.CallCreateThread, rogueTID); st != api.OK {
		return nil, fmt.Errorf("adversary: creating rogue thread: %v", st)
	}
	if st := call(api.CallEnterEnclave, 0, built.EID, rogueTID); st == api.OK {
		note("entered enclave with an unassigned thread")
	}
	// 9. Delete the enclave while a thread runs.
	if st := sys.OS.EnterEnclave(0, built.EID, built.TIDs[0]); st != api.OK {
		return nil, fmt.Errorf("adversary: benign enter failed: %v", st)
	}
	if st := call(api.CallDeleteEnclave, built.EID); st == api.OK {
		note("deleted an enclave with a scheduled thread")
	}
	// Let it finish cleanly.
	sys.SharedWriteWord(sharedPA, enclaves.ShInput, 1)
	if _, err := sys.Machine.Run(0, 1_000_000); err != nil {
		return nil, err
	}
	// 10. Use enclave memory as a load_page source for a second enclave
	// (exfiltration via the loader).
	eid2, err := sys.OS.AllocMetaPage()
	if err != nil {
		return nil, err
	}
	if st := call(api.CallCreateEnclave, eid2, l.EvBase, l.EvMask); st != api.OK {
		return nil, fmt.Errorf("adversary: second create failed: %v", st)
	}
	if st := call(api.CallGrantRegion, uint64(regions[1]), eid2); st != api.OK {
		return nil, fmt.Errorf("adversary: second grant failed: %v", st)
	}
	call(api.CallAllocPageTable, eid2, 0, 2)
	call(api.CallAllocPageTable, eid2, l.EvBase, 1)
	call(api.CallAllocPageTable, eid2, l.EvBase, 0)
	if st := call(api.CallLoadPage, eid2, l.CodeVA, layout.Base(encRegion), pt.R); st == api.OK {
		note("loaded another enclave's memory as page contents")
	}
	// 11. Map another enclave's memory as a shared window.
	if st := call(api.CallMapShared, eid2, 0x51000000, layout.Base(encRegion)); st == api.OK {
		note("mapped another enclave's memory as a shared window")
	}
	// 12. Speak for an enclave from the host: forge a Request whose
	// Caller claims an enclave identity (enclave-domain and dual-domain
	// calls alike). Only a core trapping out of that enclave may speak
	// for it, so the dispatch layer must refuse before any handler
	// runs.
	for _, forged := range []api.Request{
		{Caller: eid2, Call: api.CallMyEnclaveID},
		{Caller: eid2, Call: api.CallGetRandom},
		{Caller: eid2, Call: api.CallBlockRegion, Args: [6]uint64{uint64(regions[1])}},
	} {
		if resp := sys.Monitor.Dispatch(forged); resp.Status != api.ErrUnauthorized {
			note("forged enclave-caller request %#x answered with %v", uint64(forged.Call), resp.Status)
		}
	}
	// 13. Invoke enclave-only calls as the OS (wrong domain).
	if st := call(api.CallExitEnclave, 0); st != api.ErrUnauthorized {
		note("OS invoked exit_enclave: %v", st)
	}
	if st := call(api.CallAttestSign, 0, 32, 0); st != api.ErrUnauthorized {
		note("OS invoked attest_sign: %v", st)
	}
	// 14. Proper teardown still works (sanity that the battery did not
	// wedge the monitor).
	if st := call(api.CallDeleteEnclave, built.EID); st != api.OK {
		return nil, fmt.Errorf("adversary: benign delete failed: %v", st)
	}
	if st := call(api.CallCleanRegion, uint64(encRegion)); st != api.OK {
		return nil, fmt.Errorf("adversary: benign clean failed: %v", st)
	}
	// A cleaned region is not OS-accessible until re-granted (Fig 2's
	// available state); after the grant it must read back as zeros.
	if _, err := core.LoadAs(isa.PrivS, layout.Base(encRegion), 8); err == nil &&
		sys.Machine.Kind != 0 /* baseline cannot enforce this */ {
		note("available region readable before re-grant")
	}
	if st := call(api.CallGrantRegion, uint64(encRegion), api.DomainOS); st != api.OK {
		return nil, fmt.Errorf("adversary: re-grant failed: %v", st)
	}
	if v, err := core.LoadAs(isa.PrivS, layout.Base(encRegion), 8); err != nil {
		return nil, fmt.Errorf("adversary: cleaned region unreadable: %v", err)
	} else if v != 0 {
		note("cleaned region still held enclave data")
	}
	return wins, nil
}

// SnapshotBattery attacks the snapshot/clone subsystem (monitor calls
// 0x30–0x32): forged snapshot names, snapshots of enclaves in the
// wrong lifecycle state, clones into tampered shells, releases and
// deletions that would orphan aliased pages, and write-throughs of
// copy-on-write aliases from the host side. Every attack must be
// refused with the exact api.Error sentinel the ABI documents; a
// non-empty return lists the attacks that succeeded. The battery
// builds its own template and cleans up after itself, leaving page
// refcounts at zero.
func SnapshotBattery(sys *sanctorum.System) ([]string, error) {
	var wins []string
	note := func(format string, args ...any) {
		wins = append(wins, fmt.Sprintf(format, args...))
	}
	call := func(c api.Call, args ...uint64) api.Error {
		return sys.Monitor.Dispatch(api.OSRequest(c, args...)).Status
	}
	expect := func(name string, want api.Error, c api.Call, args ...uint64) {
		if st := call(c, args...); st != want {
			note("%s: %v, want %v", name, st, want)
		}
	}

	l := enclaves.DefaultLayout()
	sharedPA, err := sys.SetupShared(l.SharedVA)
	if err != nil {
		return nil, err
	}
	regions := sys.OS.FreeRegions()
	if len(regions) < 3 {
		return nil, fmt.Errorf("adversary: need three free regions")
	}
	tmplRegion, cloneRegion := regions[0], regions[1]
	spec, err := enclaves.Spec(l, enclaves.StatefulAdder(l), []byte{100},
		[]int{tmplRegion}, []os.SharedMapping{{VA: l.SharedVA, PA: sharedPA}})
	if err != nil {
		return nil, err
	}
	built, err := sys.BuildEnclave(spec)
	if err != nil {
		return nil, err
	}
	snapID, err := sys.OS.AllocMetaPage()
	if err != nil {
		return nil, err
	}
	layout := sys.Machine.DRAM

	// 1. Snapshot names must be SM metadata pages: OS memory and junk
	// addresses are refused before any state changes.
	expect("snapshot into OS-owned id", api.ErrInvalidValue,
		api.CallSnapshotEnclave, built.EID, sharedPA)
	expect("snapshot of unknown enclave", api.ErrInvalidValue,
		api.CallSnapshotEnclave, 0xBAD000, snapID)
	// 2. Snapshot of a Loading enclave is refused (its measurement is
	// not final — cloning it would mint unmeasured identities).
	loading, err := sys.OS.AllocMetaPage()
	if err != nil {
		return nil, err
	}
	if st := call(api.CallCreateEnclave, loading, l.EvBase, l.EvMask); st != api.OK {
		return nil, fmt.Errorf("adversary: creating loading enclave: %v", st)
	}
	expect("snapshot of a loading enclave", api.ErrInvalidState,
		api.CallSnapshotEnclave, loading, snapID)
	// 3. Snapshot of a dead enclave is refused (deleted ids vanish).
	if st := call(api.CallDeleteEnclave, loading); st != api.OK {
		return nil, fmt.Errorf("adversary: deleting loading enclave: %v", st)
	}
	expect("snapshot of a dead enclave", api.ErrInvalidValue,
		api.CallSnapshotEnclave, loading, snapID)
	sys.OS.ReleaseMetaPage(loading)

	// The legitimate snapshot the remaining attacks target.
	if st := call(api.CallSnapshotEnclave, built.EID, snapID); st != api.OK {
		return nil, fmt.Errorf("adversary: benign snapshot failed: %v", st)
	}

	// 4. Clone from a forged snapshot id — a metadata page that names
	// an enclave, not a snapshot.
	shell, err := sys.OS.AllocMetaPage()
	if err != nil {
		return nil, err
	}
	if st := call(api.CallCreateEnclave, shell, l.EvBase, l.EvMask); st != api.OK {
		return nil, fmt.Errorf("adversary: creating clone shell: %v", st)
	}
	if st := call(api.CallGrantRegion, uint64(cloneRegion), shell); st != api.OK {
		return nil, fmt.Errorf("adversary: granting clone region: %v", st)
	}
	tidBase, err := sys.OS.AllocMetaPage()
	if err != nil {
		return nil, err
	}
	expect("clone from forged snapshot id (enclave id)", api.ErrInvalidValue,
		api.CallCloneEnclave, shell, built.EID, tidBase, 0)
	expect("clone from forged snapshot id (OS memory)", api.ErrInvalidValue,
		api.CallCloneEnclave, shell, sharedPA, tidBase, 0)
	// 5. Clone into a sealed enclave must fail.
	expect("clone into a sealed enclave", api.ErrInvalidState,
		api.CallCloneEnclave, built.EID, snapID, tidBase, 0)
	// 6. Clone with a shared-window override inside enclave memory
	// would alias enclave pages into the untrusted buffer.
	expect("clone shared-override into enclave memory", api.ErrInvalidValue,
		api.CallCloneEnclave, shell, snapID, tidBase, layout.Base(tmplRegion))
	// 7. Clone with a tid colliding with live metadata.
	expect("clone with colliding tid", api.ErrInvalidValue,
		api.CallCloneEnclave, shell, snapID, built.EID, 0)

	// A benign clone, to hold the snapshot's pages live.
	if st := call(api.CallCloneEnclave, shell, snapID, tidBase, 0); st != api.OK {
		return nil, fmt.Errorf("adversary: benign clone failed: %v", st)
	}

	// 8. Releasing the snapshot with a live clone would orphan the
	// clone's aliased pages.
	expect("release snapshot with live clones", api.ErrInvalidState,
		api.CallReleaseSnapshot, snapID)
	// 9. Deleting the frozen template would block (then clean) regions
	// whose pages back live aliases.
	expect("delete template with live snapshot", api.ErrInvalidState,
		api.CallDeleteEnclave, built.EID)
	// 10. The template's region cannot leave it while frozen.
	expect("block frozen template region", api.ErrUnauthorized,
		api.CallBlockRegion, uint64(tmplRegion))
	expect("grant frozen template region", api.ErrUnauthorized,
		api.CallGrantRegion, uint64(tmplRegion), api.DomainOS)
	// 11. Mutating the sealed clone through the loading API.
	expect("load_page into a clone", api.ErrInvalidState,
		api.CallLoadPage, shell, l.DataVA+0x1000, sharedPA, pt.R)

	// 12. Write through a COW alias from the host: S-mode stores, DMA,
	// and raw physical writes must all be refused. Find a frozen page.
	var frozenPA uint64
	base, size := layout.Base(tmplRegion), layout.RegionSize()
	for pa := base; pa < base+size; pa += mem.PageSize {
		if sys.Machine.Mem.IsCOW(pa) {
			frozenPA = pa
			break
		}
	}
	if frozenPA == 0 {
		note("snapshot left no page frozen copy-on-write")
	} else {
		core := sys.Machine.Cores[1]
		if err := core.StoreAs(isa.PrivS, frozenPA, 8, 0xBAD); err == nil {
			note("S-mode wrote through a COW alias")
		}
		if err := sys.Machine.DMATransfer(frozenPA, sharedPA, 64); err == nil {
			note("DMA read a frozen snapshot page")
		}
		if err := sys.Machine.DMATransfer(sharedPA, frozenPA, 64); err == nil {
			note("DMA wrote through a COW alias")
		}
		if err := sys.Machine.Mem.WriteBytes(frozenPA, []byte{0xBA, 0xD0}); !errors.Is(err, mem.ErrCOWProtected) {
			note("physical write to a frozen page: %v, want ErrCOWProtected", err)
		}
		if err := sys.Machine.Mem.Store(frozenPA, 8, 0xBAD); !errors.Is(err, mem.ErrCOWProtected) {
			note("physical store to a frozen page: %v, want ErrCOWProtected", err)
		}
	}

	// 13. Proper teardown still works and returns every page refcount
	// to baseline (the battery must not leak references).
	if st := call(api.CallDeleteEnclave, shell); st != api.OK {
		return nil, fmt.Errorf("adversary: deleting clone: %v", st)
	}
	if st := call(api.CallDeleteThread, tidBase); st != api.OK {
		return nil, fmt.Errorf("adversary: deleting clone thread: %v", st)
	}
	if st := call(api.CallCleanRegion, uint64(cloneRegion)); st != api.OK {
		return nil, fmt.Errorf("adversary: cleaning clone region: %v", st)
	}
	if st := call(api.CallReleaseSnapshot, snapID); st != api.OK {
		return nil, fmt.Errorf("adversary: releasing snapshot: %v", st)
	}
	expect("double release", api.ErrInvalidValue, api.CallReleaseSnapshot, snapID)
	if st := call(api.CallDeleteEnclave, built.EID); st != api.OK {
		return nil, fmt.Errorf("adversary: deleting thawed template: %v", st)
	}
	if st := call(api.CallCleanRegion, uint64(tmplRegion)); st != api.OK {
		return nil, fmt.Errorf("adversary: cleaning template region: %v", st)
	}
	if refs := sys.Machine.Mem.TotalRefs(); refs != 0 {
		note("page refcounts leaked after teardown: %d", refs)
	}
	return wins, nil
}
