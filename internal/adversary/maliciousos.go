package adversary

import (
	"fmt"

	"sanctorum"
	"sanctorum/internal/enclaves"
	"sanctorum/internal/hw/pt"
	"sanctorum/internal/isa"
	"sanctorum/internal/os"
	"sanctorum/internal/sm/api"
)

// MaliciousOSBattery drives the monitor with the API-abuse sequences an
// insidious privileged adversary would try (§IV), returning a
// description of every attack that *succeeded*. An empty slice means
// the monitor held the line. The battery builds one sacrificial enclave
// and leaves the system usable.
//
// The adversary speaks the unified call ABI directly — raw api.Request
// values into Monitor.Dispatch, skipping the well-behaved smcall client
// — because a malicious kernel is exactly the caller that will not use
// the polite wrappers. Every refusal therefore exercises the same
// dispatch-table authorization the benign path relies on.
func MaliciousOSBattery(sys *sanctorum.System) ([]string, error) {
	var wins []string
	note := func(format string, args ...any) {
		wins = append(wins, fmt.Sprintf(format, args...))
	}
	call := func(c api.Call, args ...uint64) api.Error {
		return sys.Monitor.Dispatch(api.OSRequest(c, args...)).Status
	}

	l := enclaves.DefaultLayout()
	sharedPA, err := sys.SetupShared(l.SharedVA)
	if err != nil {
		return nil, err
	}
	regions := sys.OS.FreeRegions()
	if len(regions) < 2 {
		return nil, fmt.Errorf("adversary: need two free regions")
	}
	encRegion := regions[0]
	spec, err := enclaves.Spec(l, enclaves.Adder(l), []byte("top secret"),
		[]int{encRegion}, []os.SharedMapping{{VA: l.SharedVA, PA: sharedPA}})
	if err != nil {
		return nil, err
	}
	built, err := sys.BuildEnclave(spec)
	if err != nil {
		return nil, err
	}
	layout := sys.Machine.DRAM

	// 1. Read/write enclave memory from S-mode.
	core := sys.Machine.Cores[1]
	if _, err := core.LoadAs(isa.PrivS, layout.Base(encRegion), 8); err == nil {
		note("read enclave memory from S-mode")
	}
	if err := core.StoreAs(isa.PrivS, layout.Base(encRegion)+8, 8, 0xBAD); err == nil {
		note("wrote enclave memory from S-mode")
	}
	// 2. Read monitor metadata (it holds enclave measurements).
	if _, err := core.LoadAs(isa.PrivS, built.EID, 8); err == nil {
		note("read enclave metadata from S-mode")
	}
	// 3. DMA into and out of the enclave.
	if err := sys.Machine.DMATransfer(layout.Base(encRegion), sharedPA, 64); err == nil {
		note("DMA exfiltrated enclave memory")
	}
	if err := sys.Machine.DMATransfer(sharedPA, layout.Base(encRegion), 64); err == nil {
		note("DMA corrupted enclave memory")
	}
	// 4. Steal the enclave's region.
	if st := call(api.CallGrantRegion, uint64(encRegion), api.DomainOS); st == api.OK {
		note("re-granted an enclave-owned region to the OS")
	}
	if st := call(api.CallBlockRegion, uint64(encRegion)); st == api.OK {
		note("blocked an enclave-owned region as the OS")
	}
	// 5. Clean a region that was never blocked (would zero live data
	// under the enclave).
	if st := call(api.CallCleanRegion, uint64(encRegion)); st == api.OK {
		note("cleaned an owned region in place")
	}
	// 6. Mutate a sealed enclave.
	if st := call(api.CallLoadPage, built.EID, l.DataVA+0x1000, sharedPA, pt.R); st == api.OK {
		note("loaded a page into a sealed enclave")
	}
	if st := call(api.CallLoadThread, built.EID, built.EID+0x1000, l.CodeVA, 0); st == api.OK {
		note("loaded a thread into a sealed enclave")
	}
	// 7. Forge enclave metadata in OS memory.
	if st := call(api.CallCreateEnclave, sharedPA, l.EvBase, l.EvMask); st == api.OK {
		note("created enclave metadata in OS-owned memory")
	}
	// 8. Enter with a thread the enclave never accepted.
	rogueTID, err := sys.OS.AllocMetaPage()
	if err != nil {
		return nil, err
	}
	if st := call(api.CallCreateThread, rogueTID); st != api.OK {
		return nil, fmt.Errorf("adversary: creating rogue thread: %v", st)
	}
	if st := call(api.CallEnterEnclave, 0, built.EID, rogueTID); st == api.OK {
		note("entered enclave with an unassigned thread")
	}
	// 9. Delete the enclave while a thread runs.
	if st := sys.OS.EnterEnclave(0, built.EID, built.TIDs[0]); st != api.OK {
		return nil, fmt.Errorf("adversary: benign enter failed: %v", st)
	}
	if st := call(api.CallDeleteEnclave, built.EID); st == api.OK {
		note("deleted an enclave with a scheduled thread")
	}
	// Let it finish cleanly.
	sys.SharedWriteWord(sharedPA, enclaves.ShInput, 1)
	if _, err := sys.Machine.Run(0, 1_000_000); err != nil {
		return nil, err
	}
	// 10. Use enclave memory as a load_page source for a second enclave
	// (exfiltration via the loader).
	eid2, err := sys.OS.AllocMetaPage()
	if err != nil {
		return nil, err
	}
	if st := call(api.CallCreateEnclave, eid2, l.EvBase, l.EvMask); st != api.OK {
		return nil, fmt.Errorf("adversary: second create failed: %v", st)
	}
	if st := call(api.CallGrantRegion, uint64(regions[1]), eid2); st != api.OK {
		return nil, fmt.Errorf("adversary: second grant failed: %v", st)
	}
	call(api.CallAllocPageTable, eid2, 0, 2)
	call(api.CallAllocPageTable, eid2, l.EvBase, 1)
	call(api.CallAllocPageTable, eid2, l.EvBase, 0)
	if st := call(api.CallLoadPage, eid2, l.CodeVA, layout.Base(encRegion), pt.R); st == api.OK {
		note("loaded another enclave's memory as page contents")
	}
	// 11. Map another enclave's memory as a shared window.
	if st := call(api.CallMapShared, eid2, 0x51000000, layout.Base(encRegion)); st == api.OK {
		note("mapped another enclave's memory as a shared window")
	}
	// 12. Speak for an enclave from the host: forge a Request whose
	// Caller claims an enclave identity (enclave-domain and dual-domain
	// calls alike). Only a core trapping out of that enclave may speak
	// for it, so the dispatch layer must refuse before any handler
	// runs.
	for _, forged := range []api.Request{
		{Caller: eid2, Call: api.CallMyEnclaveID},
		{Caller: eid2, Call: api.CallGetRandom},
		{Caller: eid2, Call: api.CallBlockRegion, Args: [6]uint64{uint64(regions[1])}},
	} {
		if resp := sys.Monitor.Dispatch(forged); resp.Status != api.ErrUnauthorized {
			note("forged enclave-caller request %#x answered with %v", uint64(forged.Call), resp.Status)
		}
	}
	// 13. Invoke enclave-only calls as the OS (wrong domain).
	if st := call(api.CallExitEnclave, 0); st != api.ErrUnauthorized {
		note("OS invoked exit_enclave: %v", st)
	}
	if st := call(api.CallAttestSign, 0, 32, 0); st != api.ErrUnauthorized {
		note("OS invoked attest_sign: %v", st)
	}
	// 14. Proper teardown still works (sanity that the battery did not
	// wedge the monitor).
	if st := call(api.CallDeleteEnclave, built.EID); st != api.OK {
		return nil, fmt.Errorf("adversary: benign delete failed: %v", st)
	}
	if st := call(api.CallCleanRegion, uint64(encRegion)); st != api.OK {
		return nil, fmt.Errorf("adversary: benign clean failed: %v", st)
	}
	// A cleaned region is not OS-accessible until re-granted (Fig 2's
	// available state); after the grant it must read back as zeros.
	if _, err := core.LoadAs(isa.PrivS, layout.Base(encRegion), 8); err == nil &&
		sys.Machine.Kind != 0 /* baseline cannot enforce this */ {
		note("available region readable before re-grant")
	}
	if st := call(api.CallGrantRegion, uint64(encRegion), api.DomainOS); st != api.OK {
		return nil, fmt.Errorf("adversary: re-grant failed: %v", st)
	}
	if v, err := core.LoadAs(isa.PrivS, layout.Base(encRegion), 8); err != nil {
		return nil, fmt.Errorf("adversary: cleaned region unreadable: %v", err)
	} else if v != 0 {
		note("cleaned region still held enclave data")
	}
	return wins, nil
}
