// Package adversary implements the attackers of the paper's threat
// model: a prime+probe attacker on the shared last-level cache (the
// side channel Sanctum's page-colored partitioning closes, §VII-A vs
// §VII-B), and a malicious-OS driver that throws illegal API sequences
// at the monitor (§IV's "insidious privileged software adversary").
//
// The prime+probe attacker is an ordinary OS user program: the only
// thing it measures is the latency of its own loads (RDCYCLE), exactly
// the observable a real attacker has. The attack is differential: the
// attacker runs prime→enclave→probe twice, once against a calibration
// enclave it built itself (identical layout, known secret 0) and once
// against the victim; subtracting the two probe timings cancels every
// deterministic self-effect (its own fetches, page walks, the enclave's
// non-secret accesses) and leaves exactly the victim's
// secret-dependent line — if the LLC is shared. Under Sanctum's
// partitioned LLC the difference is flat and the attack learns nothing.
package adversary

import (
	"fmt"
	"sort"

	"sanctorum"
	"sanctorum/internal/asm"
	"sanctorum/internal/enclaves"
	"sanctorum/internal/hw/mem"
	"sanctorum/internal/hw/pt"
	"sanctorum/internal/isa"
	"sanctorum/internal/os"
)

// probeLines is the number of cache lines the victim's secret selects
// among (the secret is a value in [0, probeLines)).
const probeLines = 8

// Attacker VA layout.
const (
	attackBaseVA = uint64(0x60000000)
	resultsVA    = uint64(0x70000000)
	primeCodeVA  = uint64(0x10000000)
	probeCodeVA  = uint64(0x20000000)
	warmupOffset = 512 // within-page offset used to warm the TLB
)

// Result reports one differential attack run.
type Result struct {
	Guess    byte    // line with the largest victim-vs-calibration delta
	Deltas   []int64 // per-line probe latency difference in cycles
	Strength int64   // largest delta: the signal amplitude
}

// PrimeProbe is a prepared attack instance; Run may be invoked many
// times (e.g. by benchmarks) without further setup.
type PrimeProbe struct {
	sys      *sanctorum.System
	victimPA uint64 // physical address of the victim's probe array
	primeRgs []int

	resultsPA uint64
	prepared  bool
	warmed    bool
}

// NewPrimeProbe prepares an attack against the victim enclave whose
// array page sits arrayPageIndex pages into victimRegion. The monitor
// allocates enclave pages in ascending physical order (a property the
// paper mandates for measurement), so the attacker — who knows the
// loading transcript the OS performed — knows exactly where to aim.
func NewPrimeProbe(sys *sanctorum.System, victimRegion, arrayPageIndex int, primeRegions []int) (*PrimeProbe, error) {
	if len(primeRegions) < sys.Machine.L2.Config().Ways {
		return nil, fmt.Errorf("adversary: need %d prime regions, have %d",
			sys.Machine.L2.Config().Ways, len(primeRegions))
	}
	victimPA := sys.Machine.DRAM.Base(victimRegion) + uint64(arrayPageIndex)*mem.PageSize
	return &PrimeProbe{sys: sys, victimPA: victimPA, primeRgs: primeRegions}, nil
}

// ArrayPageIndex computes where the victim's array page lands within
// its region for a spec built by enclaves.Spec: after the page tables
// (TablePlan) and all but the last of the spec's pages.
func ArrayPageIndex(spec *os.EnclaveSpec) int {
	var vas []uint64
	for _, p := range spec.Pages {
		vas = append(vas, p.VA)
	}
	for _, s := range spec.Shared {
		vas = append(vas, s.VA)
	}
	return len(os.TablePlan(vas)) + len(spec.Pages) - 1
}

// mirrorOffset is the in-region offset of the victim's array; equal
// offsets in other regions alias to the same LLC sets when the cache is
// shared (region size is a multiple of the LLC span).
func (pp *PrimeProbe) mirrorOffset() uint64 {
	return pp.victimPA % pp.sys.Machine.DRAM.RegionSize()
}

func (pp *PrimeProbe) pageVA(j int) uint64 {
	return attackBaseVA + uint64(j)*mem.PageSize
}

// prepare maps the prime pages and loads both attack programs once.
//
// The attack's own code and results pages are placed at controlled
// physical offsets in a dedicated region, on the opposite half of the
// LLC set space from the probed sets: otherwise the attacker's own
// instruction fetches during the timed probe deterministically evict
// the same LRU lines the victim would, absorbing the signal. (A real
// attacker does the same thing: self-eviction is the first thing a
// prime+probe implementation must engineer away.)
func (pp *PrimeProbe) prepare() error {
	if pp.prepared {
		return nil
	}
	layout := pp.sys.Machine.DRAM
	pageInRegion := pp.mirrorOffset() &^ uint64(mem.PageMask)
	for j, r := range pp.primeRgs {
		pa := layout.Base(r) + pageInRegion
		if err := pp.sys.OS.MapUser(pp.pageVA(j), pa, pt.R|pt.W|pt.X|pt.U); err != nil {
			return err
		}
	}

	// The code region is the last prime region: its pages at offsets
	// far from mirrorOffset cannot alias the probed sets.
	codeRegion := pp.primeRgs[len(pp.primeRgs)-1]
	llcSpan := uint64(pp.sys.Machine.L2.Config().Sets) << pp.sys.Machine.L2.Config().LineBits
	codeOffset := (pp.mirrorOffset() + llcSpan/2) % llcSpan &^ uint64(mem.PageMask)
	codeBase := layout.Base(codeRegion) + codeOffset

	place := func(bin []byte, va, pa uint64) error {
		for off := 0; off < len(bin); off += mem.PageSize {
			end := off + mem.PageSize
			if end > len(bin) {
				end = len(bin)
			}
			if err := pp.sys.OS.WriteOwned(pa+uint64(off), bin[off:end]); err != nil {
				return err
			}
			if err := pp.sys.OS.MapUser(va+uint64(off), pa+uint64(off), pt.R|pt.W|pt.X|pt.U); err != nil {
				return err
			}
		}
		return nil
	}
	primeBin, err := pp.primeProgram().Assemble(primeCodeVA)
	if err != nil {
		return err
	}
	if err := place(primeBin, primeCodeVA, codeBase); err != nil {
		return err
	}
	probeBin, err := pp.probeProgram().Assemble(probeCodeVA)
	if err != nil {
		return err
	}
	if err := place(probeBin, probeCodeVA, codeBase+0x1000); err != nil {
		return err
	}
	pp.resultsPA = codeBase + 0x3000
	if err := pp.sys.OS.MapUser(resultsVA, pp.resultsPA, pt.R|pt.W|pt.U); err != nil {
		return err
	}
	pp.prepared = true
	return nil
}

// primeProgram touches Ways lines in each of the probeLines target
// sets, filling them with attacker-owned lines.
func (pp *PrimeProbe) primeProgram() *asm.Program {
	ways := pp.sys.Machine.L2.Config().Ways
	inPage := pp.mirrorOffset() & mem.PageMask
	p := asm.New()
	for k := 0; k < probeLines; k++ {
		for j := 0; j < ways; j++ {
			p.Li64(isa.RegT0, pp.pageVA(j)+inPage+uint64(k)*64)
			p.I(isa.OpLD, isa.RegT1, isa.RegT0, 0, 0)
		}
	}
	p.Halt()
	return p
}

// probeProgram re-touches the primed lines, timing each line's
// way-group with RDCYCLE and storing the per-line totals.
func (pp *PrimeProbe) probeProgram() *asm.Program {
	ways := pp.sys.Machine.L2.Config().Ways
	inPage := pp.mirrorOffset() & mem.PageMask
	p := asm.New()
	// Warm the TLB for every page plus the results page so probe
	// timings contain no page-walk noise.
	for j := 0; j < ways; j++ {
		p.Li64(isa.RegT0, pp.pageVA(j)+warmupOffset)
		p.I(isa.OpLD, isa.RegT1, isa.RegT0, 0, 0)
	}
	p.Li64(isa.RegS0, resultsVA)
	p.I(isa.OpSD, 0, isa.RegS0, isa.RegZero, 8*probeLines)
	for k := 0; k < probeLines; k++ {
		p.I(isa.OpRDCYCLE, isa.RegT2, 0, 0, 0)
		// Probe in reverse priming order: hits refresh MRU-first, so a
		// single foreign line causes exactly one miss instead of an
		// LRU eviction cascade through the whole set.
		for j := ways - 1; j >= 0; j-- {
			p.Li64(isa.RegT0, pp.pageVA(j)+inPage+uint64(k)*64)
			p.I(isa.OpLD, isa.RegT1, isa.RegT0, 0, 0)
		}
		p.I(isa.OpRDCYCLE, isa.RegS1, 0, 0, 0)
		p.I(isa.OpSUB, isa.RegS1, isa.RegS1, isa.RegT2, 0)
		p.I(isa.OpSD, 0, isa.RegS0, isa.RegS1, int32(k*8))
	}
	p.Halt()
	return p
}

// round runs prime → enclave → probe and returns the probe timings.
func (pp *PrimeProbe) round(eid, tid uint64) ([probeLines]uint64, error) {
	var timings [probeLines]uint64
	runUser := func(pc uint64) error {
		res, err := pp.sys.OS.RunUser(0, pc, 0, 2_000_000)
		if err != nil {
			return err
		}
		if res.Reason.String() != "halt" {
			return fmt.Errorf("adversary: attack program stopped with %+v", res)
		}
		return nil
	}
	if err := runUser(primeCodeVA); err != nil {
		return timings, err
	}
	if _, err := pp.sys.Enter(0, eid, tid, 1_000_000); err != nil {
		return timings, err
	}
	if err := runUser(probeCodeVA); err != nil {
		return timings, err
	}
	for k := 0; k < probeLines; k++ {
		t, err := pp.sys.SharedReadWord(pp.resultsPA, k*8)
		if err != nil {
			return timings, err
		}
		timings[k] = t
	}
	return timings, nil
}

// Run mounts the differential attack: one round against the
// attacker-built calibration enclave (identical layout, known secret),
// one against the victim. The per-line timing difference exposes the
// victim's secret line on a shared LLC and nothing on a partitioned
// one.
func (pp *PrimeProbe) Run(calibEID, calibTID, victimEID, victimTID uint64) (*Result, error) {
	if err := pp.prepare(); err != nil {
		return nil, err
	}
	// One throwaway round brings the attack programs' own code and
	// tables into a steady cache state, so the measured rounds differ
	// only in the enclave they run.
	if !pp.warmed {
		if _, err := pp.round(calibEID, calibTID); err != nil {
			return nil, err
		}
		pp.warmed = true
	}
	base, err := pp.round(calibEID, calibTID)
	if err != nil {
		return nil, fmt.Errorf("adversary: calibration round: %w", err)
	}
	vic, err := pp.round(victimEID, victimTID)
	if err != nil {
		return nil, fmt.Errorf("adversary: victim round: %w", err)
	}
	res := &Result{Deltas: make([]int64, probeLines)}
	var maxD int64 = -1 << 62
	for k := 0; k < probeLines; k++ {
		d := int64(vic[k]) - int64(base[k])
		res.Deltas[k] = d
		if d > maxD {
			maxD = d
			res.Guess = byte(k)
		}
	}
	res.Strength = maxD
	return res, nil
}

// BuildVictim constructs the standard victim enclave with the given
// secret in the first free region and returns (built enclave, region,
// array page index).
func BuildVictim(sys *sanctorum.System, secret byte) (*os.BuiltEnclave, int, int, error) {
	l := enclaves.DefaultLayout()
	sharedPA, err := sys.SetupShared(l.SharedVA)
	if err != nil {
		return nil, 0, 0, err
	}
	regions := sys.OS.FreeRegions()
	if len(regions) == 0 {
		return nil, 0, 0, fmt.Errorf("adversary: no region for victim")
	}
	victimRegion := regions[0]
	spec, err := enclaves.Spec(l, enclaves.Victim(l), enclaves.VictimDataInit(secret),
		[]int{victimRegion}, []os.SharedMapping{{VA: l.SharedVA, PA: sharedPA}})
	if err != nil {
		return nil, 0, 0, err
	}
	built, err := sys.BuildEnclave(spec)
	if err != nil {
		return nil, 0, 0, err
	}
	return built, victimRegion, ArrayPageIndex(spec), nil
}

// PrimeRegionsFor picks eviction-set regions: OS-owned regions distinct
// from the excluded (victim/calibration) ones, enough to fill every way
// of the target sets.
func PrimeRegionsFor(sys *sanctorum.System, exclude ...int) []int {
	ways := sys.Machine.L2.Config().Ways
	skip := map[int]bool{}
	for _, r := range exclude {
		skip[r] = true
	}
	var out []int
	for _, r := range sys.OS.FreeRegions() {
		if skip[r] {
			continue
		}
		out = append(out, r)
		if len(out) == ways {
			break
		}
	}
	sort.Ints(out)
	return out
}
