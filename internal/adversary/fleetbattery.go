package adversary

import (
	"errors"
	"fmt"

	"sanctorum"
	"sanctorum/internal/attest"
)

// FleetBattery attacks the fleet layer's cross-machine attested
// channels (DESIGN.md §12): replayed attestation transcripts, a shard
// proving under another shard's claimed identity, forged evidence
// fields, and channel-binding splices — wire sealed for one attested
// pipe delivered on another. Every attack must be refused, and the
// evidence-level ones with the documented attest sentinel; a non-empty
// return lists the attacks that succeeded. The adversary here is the
// network plus a colluding machine operator: everything between the
// two monitors is its to replay, redirect or rewrite.
func FleetBattery(kind sanctorum.Kind) ([]string, error) {
	var wins []string
	note := func(format string, args ...any) {
		wins = append(wins, fmt.Sprintf(format, args...))
	}
	refuse := func(name string, sentinel error, err error) {
		if err == nil {
			note("%s: accepted", name)
		} else if sentinel != nil && !errors.Is(err, sentinel) {
			note("%s: refused with %v, want %v", name, err, sentinel)
		}
	}

	f, err := sanctorum.NewFleet(sanctorum.FleetOptions{Kind: kind, Shards: 3})
	if err != nil {
		return nil, err
	}
	defer f.Close()

	// Baseline: the benign handshake must work, or every refusal below
	// is vacuous.
	ch01, err := f.Connect(0, 1)
	if err != nil {
		return nil, fmt.Errorf("adversary: benign fleet channel: %w", err)
	}

	// 1. Transcript replay: a recorded offer answers a *fresh* hello.
	// The verifier's nonce is new, the evidence's is stale.
	h1, err := f.NewHello(1, 0)
	if err != nil {
		return nil, err
	}
	stale, err := f.Prove(h1)
	if err != nil {
		return nil, err
	}
	h2, err := f.NewHello(1, 0)
	if err != nil {
		return nil, err
	}
	_, err = f.VerifyOffer(h2, stale)
	refuse("replayed attestation transcript", attest.ErrWrongNonce, err)

	// 2. Cross-shard impersonation: shard 2 runs the handshake honestly
	// on its own machine but claims to be shard 0. Its chain roots in
	// machine 2's manufacturer PKI; the verifier pins shard 0's.
	himp := &sanctorum.FleetHello{Verifier: h2.Verifier, Prover: 2, Nonce: h2.Nonce, Share: h2.Share}
	imp, err := f.Prove(himp)
	if err != nil {
		return nil, err
	}
	imp.Prover = 0
	_, err = f.VerifyOffer(h2, imp)
	refuse("shard impersonating another's identity", attest.ErrUntrustedChain, err)

	// 3. Forged measurement: the offer claims a different enclave was
	// measured. Refused before the signature is even consulted.
	good, err := f.Prove(h2)
	if err != nil {
		return nil, err
	}
	forged := *good.Evidence
	forged.EnclaveMeasurement[7] ^= 0x40
	_, err = f.VerifyOffer(h2, &sanctorum.FleetOffer{Prover: good.Prover, Evidence: &forged, MAC: good.MAC})
	refuse("forged enclave measurement", attest.ErrWrongEnclave, err)

	// 4. Substituted key share: the signature covers (measurement ‖
	// nonce ‖ share), so a man-in-the-middle share fails it.
	swapped := *good.Evidence
	swapped.KAShare = append([]byte(nil), good.Evidence.KAShare...)
	swapped.KAShare[0] ^= 0x01
	_, err = f.VerifyOffer(h2, &sanctorum.FleetOffer{Prover: good.Prover, Evidence: &swapped, MAC: good.MAC})
	refuse("substituted key-agreement share", attest.ErrBadSignature, err)

	// 5. Key-confirmation forgery: valid evidence, wrong MAC — an
	// enclave that never derived the session key.
	badMAC := good.MAC
	badMAC[0] ^= 0x80
	_, err = f.VerifyOffer(h2, &sanctorum.FleetOffer{Prover: good.Prover, Evidence: good.Evidence, MAC: badMAC})
	refuse("forged key-confirmation MAC", nil, err)

	// 6. Channel-binding splice: wire sealed for channel 0↔1 delivered
	// on channel 0↔2. Both channels share endpoint 0 and the same
	// enclave program; only the binding (and keys) differ.
	ch02, err := f.Connect(0, 2)
	if err != nil {
		return nil, fmt.Errorf("adversary: second fleet channel: %w", err)
	}
	wire, err := ch01.Seal(0, []byte("spliced across channels"))
	if err != nil {
		return nil, err
	}
	if _, err := ch02.Deliver(2, wire); err == nil {
		note("cross-channel splice: delivered")
	}
	// ... and reflected back onto its own channel's reverse direction.
	if _, err := ch01.Deliver(0, wire); err == nil {
		note("direction-reflected wire: delivered")
	}

	// 7. In-flight corruption: a single flipped payload bit fails the
	// authenticator.
	flipped := append([]byte(nil), wire...)
	flipped[5] ^= 0x04
	if _, err := ch01.Deliver(1, flipped); err == nil {
		note("corrupted wire: delivered")
	}

	// The benign channel still works after all of it.
	if got, err := ch01.Transfer(1, []byte("still intact")); err != nil || string(got) != "still intact" {
		return nil, fmt.Errorf("adversary: benign channel broken after battery: %v", err)
	}
	return wins, nil
}
