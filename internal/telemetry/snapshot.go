package telemetry

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// HistStats is the exported view of one histogram at snapshot time.
type HistStats struct {
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Min   uint64  `json:"min"`
	Max   uint64  `json:"max"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// Snapshot is a point-in-time export of every instrument in a
// registry. Lazy RegisterFunc sources fold into Counters (summing
// across registrations of the same name). All values derive from
// simulated cycle counts and deterministic workloads, so identical
// runs yield identical snapshots.
type Snapshot struct {
	Counters   map[string]uint64    `json:"counters"`
	Gauges     map[string]int64     `json:"gauges"`
	Histograms map[string]HistStats `json:"histograms"`
}

// Snapshot exports the registry. Meant to be called while the system
// is quiesced (between waves, at end of run); lazy sources may read
// plain fields that are only stable then. Empty snapshot on nil.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistStats),
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	funcs := make(map[string][]func() uint64, len(r.funcs))
	for k, v := range r.funcs {
		funcs[k] = v
	}
	r.mu.Unlock()

	for name, c := range counters {
		snap.Counters[name] = c.Value()
	}
	for name, fns := range funcs {
		var sum uint64
		for _, fn := range fns {
			sum += fn()
		}
		snap.Counters[name] += sum
	}
	for name, g := range gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range hists {
		snap.Histograms[name] = HistStats{
			Count: h.Count(),
			Sum:   h.Sum(),
			Min:   h.Min(),
			Max:   h.Max(),
			P50:   h.Quantile(0.50),
			P99:   h.Quantile(0.99),
			P999:  h.Quantile(0.999),
		}
	}
	return snap
}

// Text renders the snapshot sorted by instrument name, one line each.
func (s Snapshot) Text() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "counter   %-40s %d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "gauge     %-40s %d\n", n, s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		fmt.Fprintf(&b, "histogram %-40s count=%d sum=%d min=%d max=%d p50=%.1f p99=%.1f p999=%.1f\n",
			n, h.Count, h.Sum, h.Min, h.Max, h.P50, h.P99, h.P999)
	}
	return b.String()
}

// JSON renders the snapshot as indented JSON (keys sorted by
// encoding/json's map ordering, so byte-stable for identical data).
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
