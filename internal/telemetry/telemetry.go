// Package telemetry is the repo's unified observability plane: a
// zero-allocation, shard-per-core metrics registry (counters, gauges,
// log-bucketed histograms) plus request-scoped tracing, all clocked by
// simulated cycle counts rather than wall time so that instrumented
// runs remain bit-identical under deterministic replay (DESIGN.md §13).
//
// Hot-path discipline:
//
//   - Counters and histograms are sharded across cache-line-padded
//     atomic slots; writers pass a shard hint (normally the core ID)
//     and never contend on a shared line.
//   - No instrument method allocates. Instrument handles are resolved
//     once at wiring time (get-or-create on the registry) and cached
//     by the instrumented layer.
//   - "Disabled" mode is the nil registry: every method on a nil
//     *Registry returns a nil instrument, and every method on a nil
//     instrument is a single-branch no-op. Instrumented code never has
//     to guard — the disabled path compiles down to one predictable
//     branch per site.
package telemetry

import (
	"sync"
	"sync/atomic"
)

// padded is an atomic counter slot padded out to its own cache line so
// that shard-neighbouring writers do not false-share.
type padded struct {
	v atomic.Uint64
	_ [56]byte
}

type atomicInt64 = atomic.Int64

// shardCount is the number of independent atomic slots per counter.
// Writers index with (hint & shardMask); a power of two keeps the mask
// branch-free and works for negative hints via Go's two's-complement &.
const (
	shardCount = 8
	shardMask  = shardCount - 1
)

// Registry is a get-or-create namespace of instruments. Instrument
// lookup takes the registry lock and may allocate; it is meant for
// wiring time, not hot paths — callers cache the returned handles.
// A nil *Registry is the disabled mode: all lookups return nil.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string][]func() uint64
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string][]func() uint64),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. Two lookups of the same name return the same handle, so
// layers that share a registry (every shard of a fleet) aggregate
// naturally into one instrument.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Gauges are Add-based so sharing a name across shards aggregates
// rather than fights.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// RegisterFunc registers a lazy counter: fn is invoked only at
// Snapshot time and its value reported under name. Multiple
// registrations under one name sum — this is how per-shard sources
// (block-engine stats, per-client retry counters) converge onto a
// single fleet-wide counter without adding atomics to their hot paths.
func (r *Registry) RegisterFunc(name string, fn func() uint64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = append(r.funcs[name], fn)
}

// Counter is a monotonically increasing count sharded across padded
// atomic slots. The shard argument is a placement hint (normally the
// writer's core ID); any int is safe.
type Counter struct {
	shards [shardCount]padded
}

// Inc adds one on the hinted shard. No-op on a nil counter.
func (c *Counter) Inc(shard int) {
	if c == nil {
		return
	}
	c.shards[shard&shardMask].v.Add(1)
}

// Add adds d on the hinted shard. No-op on a nil counter.
func (c *Counter) Add(shard int, d uint64) {
	if c == nil {
		return
	}
	c.shards[shard&shardMask].v.Add(d)
}

// Value sums all shards. Zero on a nil counter.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var sum uint64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// Gauge is an instantaneous signed level. Writers use Add with
// symmetric deltas so a gauge shared across shards aggregates to the
// fleet-wide level.
type Gauge struct {
	v atomicInt64
}

// Add moves the level by d. No-op on a nil gauge.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Set overwrites the level. Only for single-writer gauges. No-op on a
// nil gauge.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value reads the level. Zero on a nil gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
