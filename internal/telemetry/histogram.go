package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram buckets follow a log-linear (HDR-style) scheme: each
// power-of-two octave is split into histSubCount linear sub-buckets,
// so the relative width of any bucket is at most 1/histSubCount
// (≈6%, ≈3% mid-bucket error). Values below histSubCount^2 / 2 — i.e.
// below 2^histSubBits — are recorded exactly in unit-wide buckets.
const (
	histSubBits  = 4
	histSubCount = 1 << histSubBits
	// Buckets: histSubCount unit buckets for values < 2^histSubBits,
	// then histSubCount sub-buckets per octave for octaves
	// histSubBits..63. Max index: (63-histSubBits+1)*16 + 15 = 975.
	histBuckets = (64-histSubBits)*histSubCount + histSubCount
)

// histShardCount is lower than counter shardCount: a histogram shard
// is ~8 KB of buckets, and histogram write rates (one per request or
// per batch, not per instruction) tolerate a little sharing.
const (
	histShardCount = 4
	histShardMask  = histShardCount - 1
)

type histShard struct {
	counts [histBuckets]atomic.Uint64
}

// Histogram is a sharded log-bucketed distribution of uint64 samples
// (cycle deltas, sizes, depths). Observe is lock-free and
// allocation-free; quantile queries merge the shards and are meant for
// snapshot time.
type Histogram struct {
	shards [histShardCount]*histShard
	count  atomic.Uint64
	sum    atomic.Uint64
	min    atomic.Uint64
	max    atomic.Uint64
}

// NewHistogram returns an empty standalone histogram. Most callers get
// histograms from a Registry; standalone construction serves tools
// (cmd/stress) that need the quantile math without a registry.
func NewHistogram() *Histogram {
	h := &Histogram{}
	for i := range h.shards {
		h.shards[i] = &histShard{}
	}
	h.min.Store(math.MaxUint64)
	return h
}

// bucketOf maps a sample to its bucket index.
func bucketOf(v uint64) int {
	if v < histSubCount {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // position of the leading one, ≥ histSubBits
	shift := exp - histSubBits
	sub := int(v>>uint(shift)) & (histSubCount - 1)
	return (shift+1)<<histSubBits + sub
}

// bucketLo returns the smallest sample that maps to bucket idx.
func bucketLo(idx int) uint64 {
	if idx < histSubCount {
		return uint64(idx)
	}
	shift := uint(idx>>histSubBits - 1)
	sub := uint64(idx & (histSubCount - 1))
	return (histSubCount + sub) << shift
}

// Observe records v with shard hint 0 (single-writer call sites).
func (h *Histogram) Observe(v uint64) { h.ObserveOn(0, v) }

// ObserveOn records v on the hinted shard (normally the core ID).
// No-op on a nil histogram; never allocates.
func (h *Histogram) ObserveOn(shard int, v uint64) {
	if h == nil {
		return
	}
	h.shards[shard&histShardMask].counts[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of recorded samples. Zero on nil.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the exact sum of recorded samples. Zero on nil.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Min returns the smallest recorded sample, 0 if empty or nil.
func (h *Histogram) Min() uint64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Max returns the largest recorded sample, 0 if empty or nil.
func (h *Histogram) Max() uint64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Mean returns the exact arithmetic mean, 0 if empty or nil.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Merge adds o's samples into h (bucket-count addition, onto shard 0).
// Count, sum, min and max fold exactly; quantiles of the merge equal
// quantiles over the union of both bucket sets.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	for s := range o.shards {
		for b := range o.shards[s].counts {
			if n := o.shards[s].counts[b].Load(); n != 0 {
				h.shards[0].counts[b].Add(n)
			}
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	if o.count.Load() > 0 {
		h.ObserveFloor(o.min.Load())
		h.ObserveCeil(o.max.Load())
	}
}

// ObserveFloor lowers min to v if needed (merge bookkeeping).
func (h *Histogram) ObserveFloor(v uint64) {
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ObserveCeil raises max to v if needed (merge bookkeeping).
func (h *Histogram) ObserveCeil(v uint64) {
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Quantile returns the q-quantile (q in [0,1]) with linear
// interpolation inside the landing bucket, clamped to the recorded
// [min,max]. Zero on an empty or nil histogram. The result is
// deterministic for identical bucket contents.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the sample we want, 1-based, matching the "index into
	// the sorted slice" convention the bespoke stress code used.
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	rank++ // want the rank-th smallest sample (1-based)
	var seen uint64
	for b := 0; b < histBuckets; b++ {
		var n uint64
		for s := range h.shards {
			n += h.shards[s].counts[b].Load()
		}
		if n == 0 {
			continue
		}
		if seen+n >= rank {
			lo, hi := bucketLo(b), bucketLo(b+1)
			// Interpolate position-within-bucket linearly.
			frac := float64(rank-seen-1) / float64(n)
			v := float64(lo) + frac*float64(hi-lo)
			if mn := float64(h.min.Load()); v < mn {
				v = mn
			}
			if mx := float64(h.max.Load()); v > mx {
				v = mx
			}
			return v
		}
		seen += n
	}
	return float64(h.max.Load())
}
