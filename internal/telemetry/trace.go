package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Span is one cycle-stamped interval in a request's journey. Begin and
// End are simulated cycle counts read from the trace's clock; an
// instant event has End == Begin. Parent is the index of the enclosing
// span, -1 for the root.
type Span struct {
	ID     int    `json:"id"`
	Parent int    `json:"parent"`
	Layer  string `json:"layer"`
	Name   string `json:"name"`
	Begin  uint64 `json:"begin"`
	End    uint64 `json:"end"`
}

// Trace collects the spans of one request as it rides from the fleet
// router through shard selection, gateway dispatch, ring send/recv,
// enclave worker execution, and response matching. The trace owns its
// clock — a func returning the current simulated cycle count — so the
// layers emitting spans stay decoupled from where cycles live. A
// mutex guards the span slice: in parallel fleet mode the shard-side
// spans are emitted from a shard goroutine.
type Trace struct {
	mu    sync.Mutex
	clock func() uint64
	spans []Span
}

// NewTrace returns a trace stamped by clock. A nil clock yields zero
// stamps (still structurally valid).
func NewTrace(clock func() uint64) *Trace {
	return &Trace{clock: clock}
}

// Now reads the trace clock. Zero on a nil trace or nil clock.
func (t *Trace) Now() uint64 {
	if t == nil || t.clock == nil {
		return 0
	}
	return t.clock()
}

// Begin opens a span under parent (-1 for a root) and returns its ID.
// Returns -1 on a nil trace, which End and further Begins accept.
func (t *Trace) Begin(parent int, layer, name string) int {
	if t == nil {
		return -1
	}
	now := t.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	id := len(t.spans)
	t.spans = append(t.spans, Span{ID: id, Parent: parent, Layer: layer, Name: name, Begin: now, End: now})
	return id
}

// End closes span id at the current clock. No-op on a nil trace or an
// out-of-range id (including the -1 a nil Begin returned).
func (t *Trace) End(id int) {
	if t == nil {
		return
	}
	now := t.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if id < 0 || id >= len(t.spans) {
		return
	}
	t.spans[id].End = now
}

// Mark emits an instant span (End == Begin) under parent.
func (t *Trace) Mark(parent int, layer, name string) int {
	if t == nil {
		return -1
	}
	return t.Begin(parent, layer, name)
}

// Spans returns a copy of the recorded spans in emission order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Render formats the trace as an indented tree, children ordered by
// begin stamp then emission order. Deterministic for identical spans.
func (t *Trace) Render() string {
	spans := t.Spans()
	if len(spans) == 0 {
		return "(empty trace)\n"
	}
	children := make(map[int][]int)
	var roots []int
	for _, s := range spans {
		if s.Parent < 0 || s.Parent >= len(spans) {
			roots = append(roots, s.ID)
		} else {
			children[s.Parent] = append(children[s.Parent], s.ID)
		}
	}
	order := func(ids []int) {
		sort.SliceStable(ids, func(a, b int) bool {
			if spans[ids[a]].Begin != spans[ids[b]].Begin {
				return spans[ids[a]].Begin < spans[ids[b]].Begin
			}
			return ids[a] < ids[b]
		})
	}
	var b strings.Builder
	var walk func(id, depth int)
	walk = func(id, depth int) {
		s := spans[id]
		fmt.Fprintf(&b, "[%-7s] %10d .. %-10d %s%s\n",
			s.Layer, s.Begin, s.End, strings.Repeat("  ", depth), s.Name)
		kids := children[id]
		order(kids)
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	order(roots)
	for _, r := range roots {
		walk(r, 0)
	}
	return b.String()
}
