package telemetry

import (
	"encoding/json"
	"sync"
	"testing"
)

// TestRegistryGetOrCreate verifies name identity: two lookups share
// one instrument, so fleet shards sharing a registry aggregate.
func TestRegistryGetOrCreate(t *testing.T) {
	r := New()
	c1, c2 := r.Counter("x"), r.Counter("x")
	if c1 != c2 {
		t.Fatal("same name returned distinct counters")
	}
	c1.Inc(0)
	c2.Add(5, 2)
	if c1.Value() != 3 {
		t.Fatalf("counter = %d", c1.Value())
	}
	if r.Gauge("g") != r.Gauge("g") || r.Histogram("h") != r.Histogram("h") {
		t.Fatal("gauge/histogram identity broken")
	}
}

// TestDisabledMode verifies the nil registry and nil instruments are
// fully inert — the compile-out Disabled mode.
func TestDisabledMode(t *testing.T) {
	var r *Registry
	c, g, h := r.Counter("c"), r.Gauge("g"), r.Histogram("h")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry returned live instruments")
	}
	c.Inc(0)
	c.Add(1, 10)
	g.Add(3)
	g.Set(9)
	h.Observe(4)
	r.RegisterFunc("f", func() uint64 { return 1 })
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments not inert")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

// TestCounterShardsConcurrent hammers one counter from many
// goroutines with distinct shard hints; the sum must be exact.
func TestCounterShardsConcurrent(t *testing.T) {
	r := New()
	c := r.Counter("hits")
	var wg sync.WaitGroup
	const workers, per = 16, 10000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc(shard)
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("lost updates: %d", c.Value())
	}
}

// TestRegisterFuncSums verifies lazy sources merge additively under
// one name and fold into counters of the same name.
func TestRegisterFuncSums(t *testing.T) {
	r := New()
	r.Counter("retries").Add(0, 5)
	r.RegisterFunc("retries", func() uint64 { return 7 })
	r.RegisterFunc("retries", func() uint64 { return 11 })
	r.RegisterFunc("lazy.only", func() uint64 { return 3 })
	snap := r.Snapshot()
	if snap.Counters["retries"] != 23 {
		t.Fatalf("retries = %d, want 23", snap.Counters["retries"])
	}
	if snap.Counters["lazy.only"] != 3 {
		t.Fatalf("lazy.only = %d", snap.Counters["lazy.only"])
	}
}

// TestSnapshotDeterministic: identical instrument states must yield
// byte-identical text and JSON expositions.
func TestSnapshotDeterministic(t *testing.T) {
	build := func() Snapshot {
		r := New()
		r.Counter("b").Add(0, 2)
		r.Counter("a").Inc(1)
		r.Gauge("depth").Set(4)
		h := r.Histogram("lat")
		for v := uint64(1); v <= 100; v++ {
			h.Observe(v * 37)
		}
		return r.Snapshot()
	}
	s1, s2 := build(), build()
	if s1.Text() != s2.Text() {
		t.Fatal("text exposition diverged")
	}
	j1, err := s1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := s2.JSON()
	if string(j1) != string(j2) {
		t.Fatal("JSON exposition diverged")
	}
	var back Snapshot
	if err := json.Unmarshal(j1, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a"] != 1 || back.Counters["b"] != 2 || back.Gauges["depth"] != 4 {
		t.Fatal("JSON round-trip lost values")
	}
	if back.Histograms["lat"].Count != 100 {
		t.Fatalf("histogram count round-trip: %d", back.Histograms["lat"].Count)
	}
}

// TestInstrumentZeroAlloc pins the zero-allocation contract for every
// hot-path instrument method, enabled and disabled.
func TestInstrumentZeroAlloc(t *testing.T) {
	r := New()
	c, g, h := r.Counter("c"), r.Gauge("g"), r.Histogram("h")
	var nilC *Counter
	var nilG *Gauge
	var nilH *Histogram
	cases := []struct {
		name string
		fn   func()
	}{
		{"counter.inc", func() { c.Inc(2) }},
		{"counter.add", func() { c.Add(2, 3) }},
		{"gauge.add", func() { g.Add(1) }},
		{"hist.observe", func() { h.ObserveOn(5, 999) }},
		{"nil.counter", func() { nilC.Inc(0) }},
		{"nil.gauge", func() { nilG.Add(1) }},
		{"nil.hist", func() { nilH.Observe(1) }},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(500, tc.fn); n != 0 {
			t.Fatalf("%s allocates %.1f/op", tc.name, n)
		}
	}
}
