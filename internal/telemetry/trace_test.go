package telemetry

import (
	"strings"
	"testing"
)

// fakeClock is a deterministic monotone cycle source for trace tests.
type fakeClock struct{ now uint64 }

func (f *fakeClock) read() uint64 { f.now += 10; return f.now }

// TestTraceNesting builds the canonical request span chain and checks
// parent links, layer tags, stamp monotonicity and interval nesting.
func TestTraceNesting(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTrace(clk.read)
	root := tr.Begin(-1, "router", "request")
	route := tr.Mark(root, "router", "route shard=1")
	shard := tr.Begin(root, "shard", "serve")
	gw := tr.Begin(shard, "gateway", "dispatch")
	send := tr.Begin(gw, "ring", "send")
	tr.End(send)
	work := tr.Begin(gw, "worker", "execute")
	tr.End(work)
	recv := tr.Begin(gw, "ring", "recv")
	tr.End(recv)
	tr.End(gw)
	tr.End(shard)
	tr.End(root)

	spans := tr.Spans()
	if len(spans) != 7 {
		t.Fatalf("span count %d", len(spans))
	}
	byID := func(id int) Span { return spans[id] }
	if byID(route).Parent != root || byID(shard).Parent != root || byID(gw).Parent != shard {
		t.Fatal("parent links wrong")
	}
	if byID(route).Begin != byID(route).End {
		t.Fatal("instant span has duration")
	}
	// Monotonic stamps in emission order.
	var prev uint64
	for _, s := range spans {
		if s.Begin < prev {
			t.Fatalf("begin stamps not monotone at span %d", s.ID)
		}
		prev = s.Begin
		if s.End < s.Begin {
			t.Fatalf("span %d ends before it begins", s.ID)
		}
	}
	// Children nest inside their parents.
	for _, s := range spans {
		if s.Parent < 0 {
			continue
		}
		p := byID(s.Parent)
		if s.Begin < p.Begin || s.End > p.End {
			t.Fatalf("span %d [%d,%d] escapes parent %d [%d,%d]",
				s.ID, s.Begin, s.End, p.ID, p.Begin, p.End)
		}
	}
	r := tr.Render()
	for _, want := range []string{"router", "gateway", "worker", "recv"} {
		if !strings.Contains(r, want) {
			t.Fatalf("render missing %q:\n%s", want, r)
		}
	}
	// Deterministic render.
	if tr.Render() != r {
		t.Fatal("render not stable")
	}
}

// TestTraceNilSafe: a nil trace (tracing disabled) must accept the
// whole emission protocol as no-ops.
func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	id := tr.Begin(-1, "router", "request")
	if id != -1 {
		t.Fatalf("nil Begin returned %d", id)
	}
	tr.End(id)
	tr.Mark(id, "x", "y")
	if tr.Now() != 0 || tr.Spans() != nil {
		t.Fatal("nil trace leaked state")
	}
	// A live trace must also ignore the -1 a nil path produced.
	live := NewTrace(nil)
	live.End(-1)
	live.End(99)
	if n := len(live.Spans()); n != 0 {
		t.Fatalf("out-of-range End created spans: %d", n)
	}
}
