package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestBucketBoundaries checks the structural invariants of the
// log-linear scheme: every value lands in exactly one bucket whose
// range contains it, bucket indices are monotone in the value, values
// below 2^histSubBits are exact, and relative bucket width above that
// never exceeds 1/histSubCount.
func TestBucketBoundaries(t *testing.T) {
	if got := bucketOf(0); got != 0 {
		t.Fatalf("bucketOf(0) = %d", got)
	}
	prev := -1
	probe := []uint64{0, 1, 2, 15, 16, 17, 31, 32, 33, 63, 64, 100, 255, 256,
		1 << 20, 1<<20 + 1, math.MaxUint64 >> 1, math.MaxUint64}
	for _, v := range probe {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucketOf not monotone at %d: %d < %d", v, b, prev)
		}
		prev = b
		if b < 0 || b >= histBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", v, b)
		}
		lo := bucketLo(b)
		var hi uint64 = math.MaxUint64
		if b+1 < histBuckets {
			hi = bucketLo(b+1) - 1
		}
		if v < lo || v > hi {
			t.Fatalf("value %d outside its bucket %d range [%d,%d]", v, b, lo, hi)
		}
	}
	// Exactness below 2^histSubBits.
	for v := uint64(0); v < histSubCount; v++ {
		if b := bucketOf(v); bucketLo(b) != v || bucketLo(b+1) != v+1 {
			t.Fatalf("value %d not exact: bucket [%d,%d)", v, bucketLo(b), bucketLo(b+1))
		}
	}
	// Bounded relative width above.
	for b := histSubCount; b < histBuckets-1; b++ {
		lo, next := bucketLo(b), bucketLo(b+1)
		width := next - lo
		if float64(width)/float64(lo) > 1.0/histSubCount+1e-12 {
			t.Fatalf("bucket %d width %d too wide for lo %d", b, width, lo)
		}
	}
	// bucketLo is the true lower boundary: lo maps into b, lo-1 below.
	for _, b := range []int{1, 15, 16, 17, 100, 500, 975} {
		lo := bucketLo(b)
		if bucketOf(lo) != b {
			t.Fatalf("bucketOf(bucketLo(%d)=%d) = %d", b, lo, bucketOf(lo))
		}
		if lo > 0 && bucketOf(lo-1) != b-1 {
			t.Fatalf("bucketOf(%d) = %d, want %d", lo-1, bucketOf(lo-1), b-1)
		}
	}
}

// TestQuantileInterpolation compares histogram quantiles against exact
// order statistics on a pseudo-random sample: error must stay within
// one bucket width (≈6% relative) plus interpolation slack.
func TestQuantileInterpolation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := NewHistogram()
	var samples []uint64
	for i := 0; i < 20000; i++ {
		// Log-uniform-ish spread over several octaves, like latencies.
		v := uint64(100 + rng.Intn(100000))
		samples = append(samples, v)
		h.ObserveOn(i, v)
	}
	sort.Slice(samples, func(a, b int) bool { return samples[a] < samples[b] })
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
		idx := int(q * float64(len(samples)))
		if idx >= len(samples) {
			idx = len(samples) - 1
		}
		exact := float64(samples[idx])
		got := h.Quantile(q)
		if relErr := math.Abs(got-exact) / exact; relErr > 1.0/histSubCount {
			t.Fatalf("q=%.3f: histogram %.1f vs exact %.1f (rel err %.4f)", q, got, exact, relErr)
		}
	}
	if h.Count() != 20000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != samples[0] || h.Max() != samples[len(samples)-1] {
		t.Fatalf("min/max %d/%d vs exact %d/%d", h.Min(), h.Max(), samples[0], samples[len(samples)-1])
	}
	// Quantiles clamp to recorded extremes.
	if h.Quantile(0) < float64(samples[0]) || h.Quantile(1) > float64(samples[len(samples)-1]) {
		t.Fatal("quantile escaped [min,max]")
	}
}

// TestHistogramMerge verifies Merge equals observing the union.
func TestHistogramMerge(t *testing.T) {
	a, b, union := NewHistogram(), NewHistogram(), NewHistogram()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		v := uint64(rng.Intn(1 << 18))
		if i%2 == 0 {
			a.ObserveOn(i, v)
		} else {
			b.ObserveOn(i, v)
		}
		union.Observe(v)
	}
	a.Merge(b)
	if a.Count() != union.Count() || a.Sum() != union.Sum() {
		t.Fatalf("merged count/sum %d/%d vs union %d/%d", a.Count(), a.Sum(), union.Count(), union.Sum())
	}
	if a.Min() != union.Min() || a.Max() != union.Max() {
		t.Fatalf("merged min/max %d/%d vs union %d/%d", a.Min(), a.Max(), union.Min(), union.Max())
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if got, want := a.Quantile(q), union.Quantile(q); got != want {
			t.Fatalf("q=%.3f merged %.2f vs union %.2f", q, got, want)
		}
	}
}

// TestHistogramEmptyAndNil covers the degenerate cases instrumented
// code relies on.
func TestHistogramEmptyAndNil(t *testing.T) {
	var nilH *Histogram
	nilH.Observe(5)
	nilH.Merge(NewHistogram())
	if nilH.Quantile(0.5) != 0 || nilH.Count() != 0 || nilH.Min() != 0 || nilH.Max() != 0 || nilH.Mean() != 0 {
		t.Fatal("nil histogram not inert")
	}
	h := NewHistogram()
	if h.Quantile(0.99) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zero")
	}
	h.Observe(7)
	if h.Quantile(0) != 7 || h.Quantile(1) != 7 || h.Mean() != 7 {
		t.Fatalf("single-sample quantiles: %v %v", h.Quantile(0), h.Quantile(1))
	}
}

// TestObserveZeroAlloc pins the hot-path discipline: recording a
// sample must not allocate.
func TestObserveZeroAlloc(t *testing.T) {
	h := NewHistogram()
	if n := testing.AllocsPerRun(1000, func() { h.ObserveOn(3, 12345) }); n != 0 {
		t.Fatalf("ObserveOn allocates %.1f/op", n)
	}
}
