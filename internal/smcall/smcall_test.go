package smcall

import (
	"errors"
	"testing"

	"sanctorum/internal/sm/api"
)

// fakeMonitor scripts Dispatch results and mimics the monitor's
// batch contract (stop at the first ErrRetry, fill the tail).
type fakeMonitor struct {
	// retriesBeforeOK makes each distinct request key fail with
	// ErrRetry this many times before succeeding.
	retriesBeforeOK map[api.Call]int
	status          map[api.Call]api.Error // terminal status (default OK)
	calls           []api.Call             // executed (non-cut) calls, in order
}

func newFake() *fakeMonitor {
	return &fakeMonitor{
		retriesBeforeOK: map[api.Call]int{},
		status:          map[api.Call]api.Error{},
	}
}

func (f *fakeMonitor) Dispatch(req api.Request) api.Response {
	if n := f.retriesBeforeOK[req.Call]; n > 0 {
		f.retriesBeforeOK[req.Call] = n - 1
		return api.Response{Status: api.ErrRetry}
	}
	f.calls = append(f.calls, req.Call)
	st := f.status[req.Call]
	return api.Response{Status: st, Values: [2]uint64{req.Args[0] + 1}}
}

func (f *fakeMonitor) DispatchBatch(reqs []api.Request) []api.Response {
	out := make([]api.Response, len(reqs))
	for i := range reqs {
		out[i] = f.Dispatch(reqs[i])
		if out[i].Status == api.ErrRetry {
			for j := i + 1; j < len(reqs); j++ {
				out[j] = api.Response{Status: api.ErrRetry}
			}
			break
		}
	}
	return out
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	f := newFake()
	f.retriesBeforeOK[api.CallCreateThread] = 3
	c := New(f)
	resp, err := c.Do(api.OSRequest(api.CallCreateThread, 41))
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if resp.Values[0] != 42 {
		t.Fatalf("response not threaded through: %+v", resp)
	}
	if got := c.Retries(); got != 3 {
		t.Fatalf("retry counter = %d, want 3", got)
	}
}

func TestDoStopsAtAttemptBound(t *testing.T) {
	f := newFake()
	f.retriesBeforeOK[api.CallCreateThread] = 1 << 30 // effectively forever
	c := New(f)
	c.MaxAttempts = 5
	_, err := c.Do(api.OSRequest(api.CallCreateThread))
	if !errors.Is(err, api.ErrRetry) {
		t.Fatalf("bounded retry returned %v, want ErrRetry", err)
	}
	if got := c.Retries(); got != 5 {
		t.Fatalf("retry counter = %d, want 5", got)
	}
}

func TestDoReturnsTerminalStatusAsError(t *testing.T) {
	f := newFake()
	f.status[api.CallInitEnclave] = api.ErrInvalidState
	c := New(f)
	_, err := c.Do(api.OSRequest(api.CallInitEnclave, 7))
	if !errors.Is(err, api.ErrInvalidState) {
		t.Fatalf("terminal error lost: %v", err)
	}
	if errors.Is(err, api.ErrRetry) {
		t.Fatal("error matches the wrong sentinel")
	}
}

func TestTryHandsBackRetryButCountsIt(t *testing.T) {
	f := newFake()
	f.retriesBeforeOK[api.CallEnterEnclave] = 1
	c := New(f)
	if st := c.TryEnterEnclave(0, 1, 2); st != api.ErrRetry {
		t.Fatalf("first try = %v, want ErrRetry", st)
	}
	if st := c.TryEnterEnclave(0, 1, 2); st != api.OK {
		t.Fatalf("second try = %v, want OK", st)
	}
	if got := c.Retries(); got != 1 {
		t.Fatalf("retry counter = %d, want 1", got)
	}
}

func TestBatchResumesAfterContentionCut(t *testing.T) {
	f := newFake()
	// The third element contends twice; the batch must cut there and
	// resume without re-running the first two.
	f.retriesBeforeOK[api.CallInitEnclave] = 2
	c := New(f)
	reqs := []api.Request{
		api.OSRequest(api.CallCreateEnclave, 1),
		api.OSRequest(api.CallLoadPage, 2),
		api.OSRequest(api.CallInitEnclave, 3),
		api.OSRequest(api.CallEnclaveStatus, 4),
	}
	resps, err := c.Batch(reqs)
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	if len(resps) != len(reqs) {
		t.Fatalf("%d responses for %d requests", len(resps), len(reqs))
	}
	for i, r := range resps {
		if r.Status != api.OK {
			t.Fatalf("element %d: %v", i, r.Status)
		}
		if r.Values[0] != reqs[i].Args[0]+1 {
			t.Fatalf("element %d executed out of order: %+v", i, r)
		}
	}
	want := []api.Call{api.CallCreateEnclave, api.CallLoadPage,
		api.CallInitEnclave, api.CallEnclaveStatus}
	if len(f.calls) != len(want) {
		t.Fatalf("monitor executed %v, want each element exactly once (%v)", f.calls, want)
	}
	for i := range want {
		if f.calls[i] != want[i] {
			t.Fatalf("execution order %v, want %v", f.calls, want)
		}
	}
	if got := c.Retries(); got != 2 {
		t.Fatalf("retry counter = %d, want 2", got)
	}
}

func TestBatchKeepsNonRetryFailuresInPlace(t *testing.T) {
	f := newFake()
	f.status[api.CallLoadPage] = api.ErrInvalidValue
	c := New(f)
	resps, err := c.Batch([]api.Request{
		api.OSRequest(api.CallCreateEnclave, 1),
		api.OSRequest(api.CallLoadPage, 2),
		api.OSRequest(api.CallInitEnclave, 3),
	})
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	if resps[0].Status != api.OK || resps[1].Status != api.ErrInvalidValue || resps[2].Status != api.OK {
		t.Fatalf("statuses %v %v %v", resps[0].Status, resps[1].Status, resps[2].Status)
	}
}

func TestBatchAttemptBound(t *testing.T) {
	f := newFake()
	f.retriesBeforeOK[api.CallInitEnclave] = 1 << 30
	c := New(f)
	c.MaxAttempts = 3
	resps, err := c.Batch([]api.Request{
		api.OSRequest(api.CallCreateEnclave, 1),
		api.OSRequest(api.CallInitEnclave, 2),
		api.OSRequest(api.CallEnclaveStatus, 3),
	})
	if !errors.Is(err, api.ErrRetry) {
		t.Fatalf("exhausted batch returned %v, want ErrRetry", err)
	}
	if resps[0].Status != api.OK {
		t.Fatalf("completed prefix lost: %v", resps[0].Status)
	}
	if resps[1].Status != api.ErrRetry || resps[2].Status != api.ErrRetry {
		t.Fatalf("unexecuted tail should report ErrRetry: %v %v", resps[1].Status, resps[2].Status)
	}
}

// TestStarvationErrorTyped pins the bounded-livelock guard's contract:
// an exhausted attempt budget surfaces as a *StarvationError carrying
// the call and attempt count, which still matches api.ErrRetry under
// errors.Is so requeue-style callers are unaffected.
func TestStarvationErrorTyped(t *testing.T) {
	f := newFake()
	f.retriesBeforeOK[api.CallCreateThread] = 1 << 30 // effectively forever
	c := New(f)
	c.MaxAttempts = 7
	_, err := c.Do(api.OSRequest(api.CallCreateThread))
	var se *StarvationError
	if !errors.As(err, &se) {
		t.Fatalf("exhausted Do returned %T (%v), want *StarvationError", err, err)
	}
	if se.Call != api.CallCreateThread || se.Attempts != 7 {
		t.Fatalf("starvation verdict %+v, want call %v after 7 attempts", se, api.CallCreateThread)
	}
	if !errors.Is(err, api.ErrRetry) {
		t.Fatal("starvation must still match api.ErrRetry under errors.Is")
	}
	if errors.Is(err, api.ErrInvalidState) {
		t.Fatal("starvation matches an unrelated sentinel")
	}
}

// TestBatchStarvationTyped is the batched-path variant: the error
// names the element the monitor kept cutting at.
func TestBatchStarvationTyped(t *testing.T) {
	f := newFake()
	f.retriesBeforeOK[api.CallAssignThread] = 1 << 30
	c := New(f)
	c.MaxAttempts = 4
	reqs := []api.Request{
		api.OSRequest(api.CallCreateThread, 1),
		api.OSRequest(api.CallAssignThread, 2, 1),
		api.OSRequest(api.CallCreateThread, 3),
	}
	resps, err := c.Batch(reqs)
	var se *StarvationError
	if !errors.As(err, &se) {
		t.Fatalf("exhausted Batch returned %T (%v), want *StarvationError", err, err)
	}
	if se.Call != api.CallAssignThread || se.Attempts != 4 {
		t.Fatalf("starvation verdict %+v, want call %v after 4 attempts", se, api.CallAssignThread)
	}
	if resps[0].Status != api.OK {
		t.Fatalf("executed head lost: %v", resps[0].Status)
	}
	if resps[1].Status != api.ErrRetry || resps[2].Status != api.ErrRetry {
		t.Fatalf("unexecuted tail should report ErrRetry: %v %v", resps[1].Status, resps[2].Status)
	}
}

// TestBackoffEscalationTerminates walks the full yield-escalation
// ladder — past escalateAfter, where every retry donates a starvation
// burst — and requires the loop to still terminate promptly.
func TestBackoffEscalationTerminates(t *testing.T) {
	f := newFake()
	f.retriesBeforeOK[api.CallCreateThread] = 1 << 30
	c := New(f)
	c.MaxAttempts = escalateAfter + 8
	_, err := c.Do(api.OSRequest(api.CallCreateThread))
	var se *StarvationError
	if !errors.As(err, &se) {
		t.Fatalf("escalated Do returned %v, want *StarvationError", err)
	}
	if se.Attempts != escalateAfter+8 {
		t.Fatalf("attempts = %d, want %d", se.Attempts, escalateAfter+8)
	}
}
