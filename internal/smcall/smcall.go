// Package smcall is the untrusted software's client for the security
// monitor's unified call ABI (internal/sm/api): typed wrappers over
// Monitor.Dispatch plus the one place the §V-A retry discipline lives.
// Monitor transactions fail with api.ErrRetry instead of blocking when
// another hart's transaction holds an object lock; every caller used to
// hand-roll its own retry loop, and this client centralizes them with
// bounded backoff and a shared retry counter (the scheduler's `retries`
// metric reads it).
//
// The client also owns batched submission: Batch forwards a request
// sequence to Monitor.DispatchBatch — which amortizes per-call enclave
// locking across consecutive same-enclave calls — and resubmits the
// unexecuted tail whenever the monitor cuts the batch at a contended
// element.
package smcall

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"sanctorum/internal/sm/api"
)

// Dispatcher is the monitor surface the client drives; *sm.Monitor
// implements it. Tests substitute fakes.
type Dispatcher interface {
	Dispatch(api.Request) api.Response
	DispatchBatch([]api.Request) []api.Response
}

// DefaultMaxAttempts bounds the retry loop: a transaction that stays
// contended this many times is reported to the caller as a
// StarvationError rather than spun on forever. The limit is
// deliberately generous — contention windows in the monitor are a few
// instructions long, and genuine livelock is a bug worth surfacing,
// not masking.
const DefaultMaxAttempts = 1 << 20

// StarvationError is the bounded-livelock guard's verdict: a call
// observed api.ErrRetry on every one of its attempts, through the full
// yield-escalation ladder, and the client refused to spin further. It
// matches api.ErrRetry under errors.Is — starvation is still the §V-A
// contention signal, just one the caller must now handle structurally
// (requeue, shed load, alert) instead of by retrying inline.
type StarvationError struct {
	Call     api.Call
	Attempts int
}

func (e *StarvationError) Error() string {
	return fmt.Sprintf("smcall: %v starved after %d contended attempts", e.Call, e.Attempts)
}

// Is reports api.ErrRetry as a match so errors.Is-based callers keep
// treating starvation as retryable contention.
func (e *StarvationError) Is(target error) bool { return target == api.ErrRetry }

// Client issues monitor calls for one untrusted caller (the OS model).
// The zero value is not usable; construct with New.
type Client struct {
	d Dispatcher

	// MaxAttempts overrides DefaultMaxAttempts when positive.
	MaxAttempts int

	retries atomic.Uint64
}

// New returns a client over the given dispatch surface.
func New(d Dispatcher) *Client { return &Client{d: d} }

// Retries reports how many times any call through this client observed
// api.ErrRetry — the §V-A contention signal — whether the client
// retried it or handed it back (Try variants). Deterministic-mode runs
// never contend; parallel runs count real cross-hart collisions.
func (c *Client) Retries() uint64 { return c.retries.Load() }

func (c *Client) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return DefaultMaxAttempts
}

// Yield-escalation ladder: bursts double up to 2^maxBackoffShift
// yields per retry; a transaction still contended after escalateAfter
// attempts is being actively starved, and from there every retry
// donates a starvedBurst-sized scheduling burst so whichever
// transaction keeps winning the object can drain completely.
const (
	maxBackoffShift = 6
	escalateAfter   = 1 << 12
	starvedBurst    = 1 << 10
)

// backoff yields the host thread progressively longer as a transaction
// stays contended: first a single reschedule, then doubling bursts
// capped well below a host timeslice, then the starvation-escalation
// burst. The monitor's critical sections are a few loads and stores
// long, so yielding — not sleeping — is the right grain; sleeping
// would also perturb the deterministic mode's host-time-free contract.
func backoff(attempt int) {
	spins := 1
	if attempt >= escalateAfter {
		spins = starvedBurst
	} else if attempt > 0 {
		shift := attempt
		if shift > maxBackoffShift {
			shift = maxBackoffShift
		}
		spins = 1 << uint(shift)
	}
	for i := 0; i < spins; i++ {
		runtime.Gosched()
	}
}

// Do dispatches one request, retrying api.ErrRetry with bounded
// backoff. The returned error is the final non-retry status's Err (nil
// for OK), or a *StarvationError if the attempt bound was exhausted.
func (c *Client) Do(req api.Request) (api.Response, error) {
	for attempt := 0; ; attempt++ {
		resp := c.d.Dispatch(req)
		if resp.Status != api.ErrRetry {
			return resp, resp.Status.Err()
		}
		c.retries.Add(1)
		if attempt+1 >= c.maxAttempts() {
			return resp, &StarvationError{Call: req.Call, Attempts: attempt + 1}
		}
		backoff(attempt)
	}
}

// Try dispatches one request exactly once, handing api.ErrRetry back to
// the caller (still counted). Schedulers that would rather run other
// work than spin on a contended object use this.
func (c *Client) Try(req api.Request) api.Response {
	resp := c.d.Dispatch(req)
	if resp.Status == api.ErrRetry {
		c.retries.Add(1)
	}
	return resp
}

// Batch submits the requests in order through the monitor's batched
// path and returns one Response per Request. When the monitor cuts the
// batch at a contended element (see Monitor.DispatchBatch), the client
// backs off and resubmits the unexecuted tail, so the caller sees
// sequential semantics: every element was executed exactly once, in
// order. Non-retry element failures do not stop the batch — callers
// inspect the statuses. The error is non-nil (a *StarvationError) only
// if the attempt bound was exhausted, in which case the unexecuted
// tail reports ErrRetry.
func (c *Client) Batch(reqs []api.Request) ([]api.Response, error) {
	out := make([]api.Response, 0, len(reqs))
	pending := reqs
	for attempt := 0; len(pending) > 0; attempt++ {
		resps := c.d.DispatchBatch(pending)
		cut := -1
		for i := range resps {
			if resps[i].Status == api.ErrRetry {
				cut = i
				break
			}
		}
		if cut < 0 {
			return append(out, resps...), nil
		}
		c.retries.Add(1)
		out = append(out, resps[:cut]...)
		pending = pending[cut:]
		if attempt+1 >= c.maxAttempts() {
			return append(out, resps[cut:]...),
				&StarvationError{Call: pending[0].Call, Attempts: attempt + 1}
		}
		backoff(attempt)
	}
	return out, nil
}

// call is the shared typed-wrapper body.
func (c *Client) call(call api.Call, args ...uint64) (api.Response, error) {
	return c.Do(api.OSRequest(call, args...))
}

// ABIVersion probes the monitor's ABI version (api.Version layout).
func (c *Client) ABIVersion() (uint64, error) {
	resp, err := c.call(api.CallGetABIVersion)
	return resp.Values[0], err
}

// CreateEnclave starts the enclave lifecycle (Fig 3).
func (c *Client) CreateEnclave(eid, evBase, evMask uint64) error {
	_, err := c.call(api.CallCreateEnclave, eid, evBase, evMask)
	return err
}

// AllocatePageTable allocates the enclave page-table page covering va
// at the given level, top-down.
func (c *Client) AllocatePageTable(eid, va uint64, level int) error {
	_, err := c.call(api.CallAllocPageTable, eid, va, uint64(level))
	return err
}

// LoadPage loads one measured page from OS memory into the enclave.
func (c *Client) LoadPage(eid, va, srcPA, perms uint64) error {
	_, err := c.call(api.CallLoadPage, eid, va, srcPA, perms)
	return err
}

// MapShared maps an OS-owned page as the enclave's untrusted window.
func (c *Client) MapShared(eid, va, pa uint64) error {
	_, err := c.call(api.CallMapShared, eid, va, pa)
	return err
}

// InitEnclave seals the enclave and finalizes its measurement.
func (c *Client) InitEnclave(eid uint64) error {
	_, err := c.call(api.CallInitEnclave, eid)
	return err
}

// DeleteEnclave tears an enclave down.
func (c *Client) DeleteEnclave(eid uint64) error {
	_, err := c.call(api.CallDeleteEnclave, eid)
	return err
}

// EnclaveStatus reports the enclave's lifecycle state; when measOutPA
// is non-zero the monitor writes the 32-byte measurement there (the
// address must be OS-owned).
func (c *Client) EnclaveStatus(eid, measOutPA uint64) (api.EnclaveState, error) {
	resp, err := c.call(api.CallEnclaveStatus, eid, measOutPA)
	return api.EnclaveState(resp.Values[0]), err
}

// LoadThread creates a measured thread during enclave loading.
func (c *Client) LoadThread(eid, tid, entryPC, entrySP uint64) error {
	_, err := c.call(api.CallLoadThread, eid, tid, entryPC, entrySP)
	return err
}

// CreateThread creates an unbound, unmeasured thread.
func (c *Client) CreateThread(tid uint64) error {
	_, err := c.call(api.CallCreateThread, tid)
	return err
}

// AssignThread offers an available thread to an initialized enclave.
func (c *Client) AssignThread(eid, tid uint64) error {
	_, err := c.call(api.CallAssignThread, eid, tid)
	return err
}

// UnassignThread takes a non-running thread away from its enclave.
func (c *Client) UnassignThread(tid uint64) error {
	_, err := c.call(api.CallUnassignThread, tid)
	return err
}

// DeleteThread destroys an available thread.
func (c *Client) DeleteThread(tid uint64) error {
	_, err := c.call(api.CallDeleteThread, tid)
	return err
}

// TryEnterEnclave schedules a thread onto an idle core, exactly once:
// contention comes back as api.ErrRetry so a scheduler can requeue the
// task instead of spinning on the core slot.
func (c *Client) TryEnterEnclave(coreID int, eid, tid uint64) api.Error {
	return c.Try(api.OSRequest(api.CallEnterEnclave, uint64(coreID), eid, tid)).Status
}

// SnapshotEnclave freezes an initialized, parked enclave read-only and
// registers the snapshot under snapID (a free SM metadata page).
func (c *Client) SnapshotEnclave(eid, snapID uint64) error {
	_, err := c.call(api.CallSnapshotEnclave, eid, snapID)
	return err
}

// CloneEnclave forks a sealed worker from a snapshot into the Loading
// enclave eid (matching evrange, granted regions, nothing loaded).
// Template thread i is recreated under tidBase + i*4096; a non-zero
// sharedPA rebases the template's single shared window onto that
// OS-owned page.
func (c *Client) CloneEnclave(eid, snapID, tidBase, sharedPA uint64) error {
	_, err := c.call(api.CallCloneEnclave, eid, snapID, tidBase, sharedPA)
	return err
}

// ReleaseSnapshot dissolves a snapshot with no outstanding clones,
// thawing the template.
func (c *Client) ReleaseSnapshot(snapID uint64) error {
	_, err := c.call(api.CallReleaseSnapshot, snapID)
	return err
}

// RingCreate registers a mailbox ring (ABI minor 2) between a fixed
// producer and consumer (api.DomainOS or eids) with the given capacity
// in messages. ringID must be a free SM metadata page.
func (c *Client) RingCreate(ringID, producer, consumer uint64, capacity int) error {
	_, err := c.call(api.CallRingCreate, ringID, producer, consumer, uint64(capacity))
	return err
}

// RingSend delivers count messages of api.RingMsgSize bytes each,
// staged contiguously at an OS-owned physical address, and returns how
// many were actually enqueued (a full ring refuses with
// api.ErrInvalidState having sent nothing; a nearly full one sends
// what fits).
func (c *Client) RingSend(ringID, srcPA uint64, count int) (int, error) {
	resp, err := c.call(api.CallRingSend, ringID, srcPA, uint64(count))
	return int(resp.Values[0]), err
}

// RingRecv drains up to max messages into OS-owned memory at outPA —
// one api.RingRecordSize record per message (sender measurement ‖
// sender id ‖ payload) — and returns the record count. An empty ring
// refuses with api.ErrInvalidState.
func (c *Client) RingRecv(ringID, outPA uint64, max int) (int, error) {
	resp, err := c.call(api.CallRingRecv, ringID, outPA, uint64(max))
	return int(resp.Values[0]), err
}

// RingWake explicitly wakes the ring's parked consumer, if any,
// reporting whether one was woken. Producer-only.
func (c *Client) RingWake(ringID uint64) (bool, error) {
	resp, err := c.call(api.CallRingWake, ringID)
	return resp.Values[0] != 0, err
}

// RingDestroy unregisters a ring, dropping undelivered messages and
// waking any parked consumer (whose re-executed park then fails — the
// shutdown signal).
func (c *Client) RingDestroy(ringID uint64) error {
	_, err := c.call(api.CallRingDestroy, ringID)
	return err
}

// BulkGrant registers a bulk buffer grant (ABI minor 3) over
// [basePA, basePA+pages·4096) in OS-owned memory between a fixed
// producer and consumer (api.DomainOS or eids), pinning every page.
// grantID must be a free SM metadata page; pages is 1..api.BulkMaxPages.
func (c *Client) BulkGrant(grantID, basePA uint64, pages int, producer, consumer uint64) error {
	_, err := c.call(api.CallBulkGrant, grantID, basePA, uint64(pages), producer, consumer)
	return err
}

// BulkRevoke unmaps a grant from every endpoint that bulk_mapped it,
// drops the page pins, and frees the id. Refused with
// api.ErrInvalidState while scatter-gather descriptors into the grant
// are still queued in a ring.
func (c *Client) BulkRevoke(grantID uint64) error {
	_, err := c.call(api.CallBulkRevoke, grantID)
	return err
}

// BulkSend delivers count scatter-gather descriptor messages — each an
// api.RingMsgSize payload parsing as a descriptor list into grantID's
// buffer (see api.EncodeBulkDescs) — staged contiguously at an
// OS-owned physical address, and returns how many were enqueued. The
// caller must be both the ring's producer and a grant endpoint; queued
// descriptors count as in-flight on the grant until bulk-received.
func (c *Client) BulkSend(ringID, srcPA uint64, count int, grantID uint64) (int, error) {
	resp, err := c.call(api.CallBulkSend, ringID, srcPA, uint64(count), grantID)
	return int(resp.Values[0]), err
}

// BulkRecv drains up to max of grantID's descriptor records from the
// ring head (stopping early at a plain message or another grant's)
// into OS-owned memory at outPA, one api.RingRecordSize record each,
// releasing their in-flight pins. The caller must be both the ring's
// consumer and a grant endpoint.
func (c *Client) BulkRecv(ringID, outPA uint64, max int, grantID uint64) (int, error) {
	resp, err := c.call(api.CallBulkRecv, ringID, outPA, uint64(max), grantID)
	return int(resp.Values[0]), err
}

// RegionInfo reports a region's lifecycle state and owner.
func (c *Client) RegionInfo(r int) (api.RegionState, uint64, error) {
	resp, err := c.call(api.CallRegionInfo, uint64(r))
	return api.RegionState(resp.Values[0]), resp.Values[1], err
}

// GrantRegion re-allocates an available or OS-owned region to newOwner.
func (c *Client) GrantRegion(r int, newOwner uint64) error {
	_, err := c.call(api.CallGrantRegion, uint64(r), newOwner)
	return err
}

// BlockRegion relinquishes an OS-owned region.
func (c *Client) BlockRegion(r int) error {
	_, err := c.call(api.CallBlockRegion, uint64(r))
	return err
}

// CleanRegion scrubs a blocked region and makes it available.
func (c *Client) CleanRegion(r int) error {
	_, err := c.call(api.CallCleanRegion, uint64(r))
	return err
}

// SendMail delivers n bytes staged at an OS-owned physical address to
// the recipient enclave's armed mailbox, stamped with the reserved OS
// identity.
func (c *Client) SendMail(recipientEID, srcPA uint64, n int) error {
	_, err := c.call(api.CallSendMail, recipientEID, srcPA, uint64(n))
	return err
}

// GetField copies a public monitor metadata field (§VI-C) into OS-owned
// memory at outPA (at most max bytes) and returns the byte count.
func (c *Client) GetField(f api.Field, outPA, max uint64) (int, error) {
	resp, err := c.call(api.CallGetField, uint64(f), outPA, max)
	return int(resp.Values[0]), err
}
