package smcall

import (
	"encoding/binary"
	"errors"
	"fmt"

	"sanctorum/internal/sm/api"
)

// Byte-blob transport over mailbox rings: the fleet layer's NIC model
// (DESIGN.md §12). Attestation handshake messages are far larger than
// one api.RingMsgSize message, so they travel as a length-prefixed
// fragment stream — first fragment carries a little-endian u64 total
// length in its leading 8 bytes — through the same monitor-mediated
// ring IPC every other message uses. The client stays memory-agnostic:
// callers pass their owned staging page plus read/write accessors
// (the OS model's ReadOwned/WriteOwned).

// maxBlob bounds a reassembled blob so a corrupted or hostile length
// prefix cannot drive unbounded allocation.
const maxBlob = 1 << 20

// SendBytes streams blob into the ring as length-prefixed fragments,
// staging up to api.RingMaxBatch fragments per batched ring send at
// stagePA (one owned page — a page holds more than a max batch). The
// whole framed blob must fit in the ring's free capacity; a full ring
// is an error, not a block, matching the monitor's try-lock ABI.
func (c *Client) SendBytes(ringID, stagePA uint64, write func(pa uint64, data []byte) error, blob []byte) error {
	if len(blob) > maxBlob {
		return fmt.Errorf("smcall: blob of %d bytes exceeds the %d transport bound", len(blob), maxBlob)
	}
	framed := make([]byte, 8+len(blob))
	binary.LittleEndian.PutUint64(framed, uint64(len(blob)))
	copy(framed[8:], blob)
	// Pad to a whole number of fragments.
	if rem := len(framed) % api.RingMsgSize; rem != 0 {
		framed = append(framed, make([]byte, api.RingMsgSize-rem)...)
	}
	for off := 0; off < len(framed); {
		n := (len(framed) - off) / api.RingMsgSize
		if n > api.RingMaxBatch {
			n = api.RingMaxBatch
		}
		if err := write(stagePA, framed[off:off+n*api.RingMsgSize]); err != nil {
			return err
		}
		sent, err := c.RingSend(ringID, stagePA, n)
		if err != nil {
			return fmt.Errorf("smcall: byte-transport send: %w", err)
		}
		off += sent * api.RingMsgSize
	}
	return nil
}

// RecvBytes reassembles one length-prefixed blob from the ring,
// draining records into stagePA and stripping the monitor's sender
// stamps. The sender's identity deliberately does not gate delivery
// here: the transport is the untrusted network, and trust decisions
// belong to the attestation layer on top. An empty ring before the
// blob completes is a truncation error.
func (c *Client) RecvBytes(ringID, stagePA uint64, read func(pa uint64, n int) ([]byte, error)) ([]byte, error) {
	var data []byte
	total := -1
	for total < 0 || len(data) < total {
		n, err := c.RingRecv(ringID, stagePA, api.RingMaxBatch)
		if errors.Is(err, api.ErrInvalidState) {
			return nil, fmt.Errorf("smcall: byte-transport blob truncated (%d of %d bytes)", len(data), total)
		}
		if err != nil {
			return nil, fmt.Errorf("smcall: byte-transport recv: %w", err)
		}
		records, err := read(stagePA, n*api.RingRecordSize)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			payload := records[i*api.RingRecordSize+api.RingStampSize : (i+1)*api.RingRecordSize]
			if total < 0 {
				length := binary.LittleEndian.Uint64(payload)
				if length > maxBlob {
					return nil, fmt.Errorf("smcall: byte-transport length %d exceeds the %d bound", length, maxBlob)
				}
				total = int(length)
				payload = payload[8:]
			}
			data = append(data, payload...)
		}
	}
	return data[:total], nil
}
